// Ablation of Varuna's design choices (beyond the paper's tables): starting
// from the full system, turn off one mechanism at a time and measure GPT-2
// 8.3B (18x3) and 2.5B (9x8) on commodity 1-GPU VMs:
//   - opportunistic scheduling (§3.2's runtime deviation under jitter),
//   - communication/compute overlap (§6's dedicated send/receive threads),
//   - the Varuna static schedule itself (replaced by GPipe's).
#include <cstdio>

#include "bench/bench_util.h"

namespace varuna {
namespace {

struct Variant {
  std::string name;
  ScheduleKind kind = ScheduleKind::kVaruna;
  bool opportunistic = true;
  bool overlap = true;
};

void Run() {
  std::printf("=== Ablation: which Varuna mechanisms buy what (commodity network) ===\n\n");
  const std::vector<Variant> variants = {
      {"full Varuna", ScheduleKind::kVaruna, true, true},
      {"- opportunistic scheduling", ScheduleKind::kVaruna, false, true},
      {"- communication overlap", ScheduleKind::kVaruna, true, false},
      {"- both (static schedule only)", ScheduleKind::kVaruna, false, false},
      {"GPipe schedule (overlapped comms)", ScheduleKind::kGpipe, false, true},
  };
  const std::vector<std::tuple<TransformerSpec, int, int>> workloads = {
      {Gpt2_8_3B(), 18, 3},
      {Gpt2_2_5B(), 9, 8},
  };

  for (const auto& [spec, depth, replicas] : workloads) {
    std::printf("%s, %dx%d, mini-batch 8192:\n", spec.name.c_str(), depth, replicas);
    Table table({"variant", "ex/s/GPU", "vs full"});
    double full_rate = 0.0;

    const OpGraph graph = BuildTransformerOpGraph(spec);
    const ModelSections sections = IdentifyCutPoints(graph, spec.num_layers).value();
    const Partition partition = PartitionModel(sections, depth).value();
    const TraceReport trace = TraceCrossPartitionState(graph, sections, TraceOptions());
    Cluster cluster(CommodityFabric());
    cluster.AddVms(Nc6V3(), depth * replicas);
    const Placement placement = PlaceJob(cluster, depth, replicas).value();
    const int m = 4;
    const int num_microbatches = 8192 / (m * replicas);
    const auto timings = ComputeStageTimings(sections, partition, Nc6V3().gpu, m);

    for (const Variant& variant : variants) {
      Schedule schedule = GenerateSchedule(variant.kind, depth, num_microbatches);
      schedule.opportunistic = variant.opportunistic;
      ExecutorOptions options;
      options.overlap_communication = variant.overlap;
      options.shared_state_sync_bytes = trace.TotalSyncBytes();
      Rng rng(1);
      PipelineExecutor executor(&cluster, &rng);
      double total = 0.0;
      const int runs = 3;
      for (int run = 0; run < runs; ++run) {
        total += executor.Run(schedule, placement, timings, m, options).total_time_s;
      }
      const double rate =
          static_cast<double>(m) * num_microbatches * replicas / (total / runs) /
          (depth * replicas);
      if (variant.name == "full Varuna") {
        full_rate = rate;
      }
      table.AddRow({variant.name, Table::Num(rate, 3),
                    Table::Num(100.0 * (rate / full_rate - 1.0), 1) + "%"});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf("Reading: opportunism and the schedule shape each buy a few percent under\n"
              "tail-latency jitter; communication overlap is the largest single win; the\n"
              "mechanisms compound (Observation 3).\n");
}

}  // namespace
}  // namespace varuna

int main() {
  varuna::Run();
  return 0;
}
