// Chaos campaign sweep (varuna-verify): runs N seeded random fault campaigns
// (src/chaos) against full elastic-training sessions and reports aggregate
// fault/recovery statistics plus wall-clock throughput of the campaign
// engine itself. Every campaign re-checks the engine's and manager's
// invariants (the process aborts on any violation) and a sample of seeds is
// re-run to prove bit-identical replay, so this doubles as a long-running
// smoke beyond the unit-test battery: `--campaigns 200` is the CI setting.
//
//   bench_chaos_campaigns [--campaigns N] [--smoke] [--json PATH]
//                         [--policy reactive|proactive|oracle] [--fast-recovery]
//
// `--campaigns=N` is accepted too. `--smoke` clamps the sweep to 8 campaigns
// and the head-to-head to 4 seeds. `--policy` selects the morph policy for
// the random-campaign sweep (the head-to-head always runs all three).
// `--fast-recovery` turns on the delta-checkpoint + locality-aware-restore +
// live-handoff recovery path for the random sweep; the dedicated recovery
// before/after section always runs both variants on identical seeds.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/legacy_sim_engine.h"
#include "bench/sim_core_workload.h"
#include "src/chaos/chaos.h"
#include "src/sim/engine.h"

namespace varuna {
namespace {

// IntFromArgs handles "--campaigns N"; this adds the "--campaigns=N" form.
int CampaignsFromArgs(int argc, char** argv, int fallback) {
  const std::string prefix = "--campaigns=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::atoi(arg.c_str() + prefix.size());
    }
  }
  return IntFromArgs(argc, argv, "--campaigns", fallback);
}

MorphPolicy PolicyFromArgs(int argc, char** argv) {
  std::string value;
  const std::string prefix = "--policy=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
    } else if (arg == "--policy" && i + 1 < argc) {
      value = argv[i + 1];
    }
  }
  if (value == "proactive") {
    return MorphPolicy::kProactive;
  }
  if (value == "oracle") {
    return MorphPolicy::kOracleProactive;
  }
  if (!value.empty() && value != "reactive") {
    std::fprintf(stderr, "unknown --policy '%s' (want reactive|proactive|oracle)\n",
                 value.c_str());
    std::exit(2);
  }
  return MorphPolicy::kReactive;
}

const char* PolicyName(MorphPolicy policy) {
  switch (policy) {
    case MorphPolicy::kReactive:
      return "reactive";
    case MorphPolicy::kProactive:
      return "proactive";
    case MorphPolicy::kOracleProactive:
      return "oracle";
  }
  return "?";
}

// Per-policy aggregates over the head-to-head storm campaigns.
struct PolicyAggregate {
  int64_t minibatches = 0;
  int64_t rolled_back = 0;
  int64_t restarts = 0;
  int64_t proactive_morphs = 0;
  int64_t premigrated_shards = 0;
  double premigrated_bytes = 0.0;
  int64_t live_handoffs = 0;
  double handoff_bytes = 0.0;
  double stalled_s = 0.0;
};

// Total modelled restore seconds a session spent, across every pricing tier.
double RestoreSeconds(const SessionStats& stats) {
  return stats.restore_setup_s + stats.restore_ssd_s + stats.restore_peer_s +
         stats.restore_cloud_s;
}

double Median(std::vector<double> values) {
  if (values.empty()) {
    return 0.0;
  }
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

// Recovery-path before/after: the same seeded storm campaigns (reactive
// policy) with the legacy restore path and with the fast recovery path.
// Identical fault schedules per seed, so the downtime delta isolates the
// delta-chain + locality + handoff machinery. Medians are per campaign.
struct RecoveryComparison {
  double before_median_downtime_s = 0.0;
  double after_median_downtime_s = 0.0;
  double before_restore_s = 0.0;  // summed over campaigns
  double after_restore_s = 0.0;
  int64_t after_live_handoffs = 0;
  int64_t after_delta_checkpoints = 0;
  int64_t after_records_pruned = 0;
};

RecoveryComparison RecoveryBeforeAfter(int seeds) {
  std::printf("=== Recovery path before/after: %d storm campaigns, reactive policy ===\n\n",
              seeds);
  RecoveryComparison cmp;
  std::vector<double> before_downtime;
  std::vector<double> after_downtime;
  before_downtime.reserve(static_cast<size_t>(seeds));
  after_downtime.reserve(static_cast<size_t>(seeds));
  for (int seed = 1; seed <= seeds; ++seed) {
    const ChaosCampaignSpec before_spec = StormyChaosCampaign(static_cast<uint64_t>(seed));
    const ChaosCampaignSpec after_spec =
        FastRecoveryStormCampaign(static_cast<uint64_t>(seed));
    const ChaosReport before = RunChaosCampaign(before_spec);
    const ChaosReport after = RunChaosCampaign(after_spec);
    // Replay assertion on a sample of seeds: the fast recovery path must stay
    // bit-replayable before its downtime numbers are trusted.
    if (seed % 4 == 1) {
      const ChaosReport replay = RunChaosCampaign(after_spec);
      if (replay.fingerprint != after.fingerprint || !(replay.trace == after.trace)) {
        std::fprintf(stderr, "FATAL: fast-recovery seed %d replay diverged\n", seed);
        std::exit(1);
      }
    }
    before_downtime.push_back(before.stats.stalled_s);
    after_downtime.push_back(after.stats.stalled_s);
    cmp.before_restore_s += RestoreSeconds(before.stats);
    cmp.after_restore_s += RestoreSeconds(after.stats);
    cmp.after_live_handoffs += after.stats.live_handoffs;
    cmp.after_delta_checkpoints += after.stats.delta_checkpoints;
    cmp.after_records_pruned += after.stats.checkpoint_records_pruned;
  }
  cmp.before_median_downtime_s = Median(before_downtime);
  cmp.after_median_downtime_s = Median(after_downtime);
  Table table({"recovery path", "median downtime s", "restore s (sum)", "live handoffs",
               "delta ckpts", "records pruned"});
  table.AddRow({"legacy (full ckpt, cloud restore)", Table::Num(cmp.before_median_downtime_s, 1),
                Table::Num(cmp.before_restore_s, 1), "0", "0", "0"});
  table.AddRow({"fast (delta+locality+handoff)", Table::Num(cmp.after_median_downtime_s, 1),
                Table::Num(cmp.after_restore_s, 1), std::to_string(cmp.after_live_handoffs),
                std::to_string(cmp.after_delta_checkpoints),
                std::to_string(cmp.after_records_pruned)});
  std::printf("%s\n", table.Render().c_str());
  const double reduction =
      cmp.before_median_downtime_s > 0.0
          ? 100.0 * (1.0 - cmp.after_median_downtime_s / cmp.before_median_downtime_s)
          : 0.0;
  std::printf("median downtime: %.1f s -> %.1f s (%.1f%% reduction, %s)\n\n",
              cmp.before_median_downtime_s, cmp.after_median_downtime_s, reduction,
              cmp.after_median_downtime_s <= cmp.before_median_downtime_s ? "fast path wins"
                                                                          : "NO WIN");
  return cmp;
}

// Runs the same seeded storm campaigns under all three morph policies and
// proves bit-identical replay of each policy before reporting. This is the
// headline liveput evaluation: identical fault schedule, only the policy
// differs.
void HeadToHead(int seeds, bool* proactive_beats_reactive, PolicyAggregate* out_aggs) {
  constexpr MorphPolicy kPolicies[] = {MorphPolicy::kReactive, MorphPolicy::kProactive,
                                       MorphPolicy::kOracleProactive};
  std::printf(
      "=== Head-to-head: %d fast-recovery storm campaigns x {reactive, proactive, oracle} "
      "===\n\n",
      seeds);
  for (int seed = 1; seed <= seeds; ++seed) {
    for (int p = 0; p < 3; ++p) {
      ChaosCampaignSpec spec = FastRecoveryStormCampaign(static_cast<uint64_t>(seed));
      spec.options.morph_policy = kPolicies[p];
      const ChaosReport report = RunChaosCampaign(spec);
      // Replay assertion before any numbers are trusted: every policy mode
      // must be bit-replayable on the shared DES.
      if (seed % 4 == 1) {
        const ChaosReport replay = RunChaosCampaign(spec);
        if (replay.fingerprint != report.fingerprint || !(replay.trace == report.trace)) {
          std::fprintf(stderr, "FATAL: head-to-head seed %d policy %s replay diverged\n",
                       seed, PolicyName(kPolicies[p]));
          std::exit(1);
        }
      }
      PolicyAggregate& agg = out_aggs[p];
      agg.minibatches += report.stats.minibatches_done;
      agg.rolled_back += report.stats.minibatches_rolled_back;
      agg.restarts += report.stats.restarts;
      agg.proactive_morphs += report.stats.proactive_morphs;
      agg.premigrated_shards += report.stats.premigrated_shards;
      agg.premigrated_bytes += report.stats.premigrated_bytes;
      agg.live_handoffs += report.stats.live_handoffs;
      agg.handoff_bytes += report.stats.handoff_bytes;
      agg.stalled_s += report.stats.stalled_s;
    }
  }
  Table table({"policy", "mini-batches", "rolled back", "restarts", "proactive morphs",
               "pre-migrated shards", "live handoffs", "handoff GB", "stalled s"});
  for (int p = 0; p < 3; ++p) {
    const PolicyAggregate& agg = out_aggs[p];
    table.AddRow({PolicyName(kPolicies[p]), std::to_string(agg.minibatches),
                  std::to_string(agg.rolled_back), std::to_string(agg.restarts),
                  std::to_string(agg.proactive_morphs), std::to_string(agg.premigrated_shards),
                  std::to_string(agg.live_handoffs), Table::Num(agg.handoff_bytes / 1e9, 2),
                  Table::Num(agg.stalled_s, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  *proactive_beats_reactive = out_aggs[1].minibatches >= out_aggs[0].minibatches &&
                              out_aggs[1].rolled_back < out_aggs[0].rolled_back;
  std::printf("proactive vs reactive: %+lld mini-batches, %+lld rolled back (%s)\n\n",
              static_cast<long long>(out_aggs[1].minibatches - out_aggs[0].minibatches),
              static_cast<long long>(out_aggs[1].rolled_back - out_aggs[0].rolled_back),
              *proactive_beats_reactive ? "proactive wins" : "NO WIN");
}

void Run(int argc, char** argv) {
  const BenchMode mode = ModeFromArgs(argc, argv);
  const int campaigns = CampaignsFromArgs(argc, argv, mode.smoke ? 8 : 200);
  const MorphPolicy policy = PolicyFromArgs(argc, argv);
  const bool fast_recovery = FlagInArgs(argc, argv, "--fast-recovery");

  std::printf(
      "=== Chaos campaign sweep: %d seeded random campaigns (policy=%s, recovery=%s) ===\n\n",
      campaigns, PolicyName(policy), fast_recovery ? "fast" : "legacy");

  int64_t actions = 0;
  int64_t preemptions = 0;
  int64_t heartbeat_timeouts = 0;
  int64_t restarts = 0;
  int64_t morph_retries = 0;
  int64_t reprovision_retries = 0;
  int64_t degraded_intervals = 0;
  int64_t shards_lost = 0;
  int64_t shards_corrupted = 0;
  int64_t minibatches_done = 0;
  int64_t minibatches_rolled_back = 0;
  int64_t with_progress = 0;
  int64_t replays_checked = 0;
  int64_t executor_events = 0;
  int64_t ring_cache_hits = 0;
  int64_t ring_cache_misses = 0;
  double downtime_s = 0.0;
  double restore_s = 0.0;
  int64_t live_handoffs = 0;
  int64_t delta_checkpoints = 0;

  const BenchStats wall = TimeIt(0, 1, [&] {
    for (int seed = 1; seed <= campaigns; ++seed) {
      ChaosCampaignSpec spec = RandomChaosCampaign(static_cast<uint64_t>(seed));
      spec.options.morph_policy = policy;
      if (fast_recovery) {
        // Mirror the FastRecoveryStormCampaign knobs onto the random plans.
        spec.options.checkpoint.full_checkpoint_every = 4;
        spec.options.checkpoint.delta_fraction = 0.25;
        spec.options.checkpoint.locality_aware_restore = true;
        spec.options.checkpoint.live_handoff = true;
      }
      const ChaosReport report = RunChaosCampaign(spec);
      actions += static_cast<int64_t>(spec.plan.actions.size());
      preemptions += report.stats.preemptions_hit;
      heartbeat_timeouts += report.stats.heartbeat_timeouts;
      restarts += report.stats.restarts;
      morph_retries += report.stats.morph_retries;
      reprovision_retries += report.stats.reprovision_retries;
      degraded_intervals += report.stats.degraded_intervals;
      shards_lost += report.stats.shards_lost;
      shards_corrupted += report.shards_corrupted_by_chaos;
      minibatches_done += report.stats.minibatches_done;
      minibatches_rolled_back += report.stats.minibatches_rolled_back;
      with_progress += report.stats.minibatches_done > 0 ? 1 : 0;
      executor_events += static_cast<int64_t>(report.stats.executor_events);
      ring_cache_hits += static_cast<int64_t>(report.stats.net_ring_cache_hits);
      ring_cache_misses += static_cast<int64_t>(report.stats.net_ring_cache_misses);
      downtime_s += report.stats.stalled_s;
      restore_s += RestoreSeconds(report.stats);
      live_handoffs += report.stats.live_handoffs;
      delta_checkpoints += report.stats.delta_checkpoints;
      // Every 16th seed: replay the whole campaign and require bit-identity.
      if (seed % 16 == 1) {
        const ChaosReport replay = RunChaosCampaign(spec);
        if (replay.fingerprint != report.fingerprint || !(replay.trace == report.trace)) {
          std::fprintf(stderr, "FATAL: seed %d replay diverged (%016llx vs %016llx)\n",
                       seed, static_cast<unsigned long long>(report.fingerprint),
                       static_cast<unsigned long long>(replay.fingerprint));
          std::exit(1);
        }
        ++replays_checked;
      }
    }
  });

  Table table({"metric", "total", "per campaign"});
  const double n = campaigns;
  const auto row = [&](const char* name, int64_t total) {
    table.AddRow({name, std::to_string(total), Table::Num(total / n, 2)});
  };
  row("plan actions", actions);
  row("announced preemptions hit", preemptions);
  row("heartbeat timeouts", heartbeat_timeouts);
  row("restarts (rollback+restore)", restarts);
  row("morph retries", morph_retries);
  row("re-provision retries", reprovision_retries);
  row("degraded-mode intervals", degraded_intervals);
  row("checkpoint shards lost", shards_lost);
  row("checkpoint shards corrupted", shards_corrupted);
  row("mini-batches committed", minibatches_done);
  row("mini-batches rolled back", minibatches_rolled_back);
  row("testbed sim events", executor_events);
  row("ring-cost cache hits", ring_cache_hits);
  row("ring-cost cache misses", ring_cache_misses);
  row("live handoffs", live_handoffs);
  row("delta checkpoints", delta_checkpoints);
  table.AddRow({"downtime (stalled) s", Table::Num(downtime_s, 1),
                Table::Num(downtime_s / n, 2)});
  table.AddRow({"restore seconds (all tiers)", Table::Num(restore_s, 1),
                Table::Num(restore_s / n, 2)});
  std::printf("%s\n", table.Render().c_str());
  std::printf("campaigns with forward progress: %lld / %d\n",
              static_cast<long long>(with_progress), campaigns);
  std::printf("bit-identical replays verified:  %lld\n",
              static_cast<long long>(replays_checked));
  std::printf("wall clock: %.1f ms total, %.2f ms per campaign\n\n", wall.mean_ms,
              wall.mean_ms / n);

  // Engine before/after: replay a storm sized to this sweep's per-campaign
  // event volume on the frozen pre-change engine and on the current one, so
  // every run of this bench re-derives the core speedup on this host.
  const uint64_t storm_target =
      static_cast<uint64_t>(executor_events > 0 ? executor_events / campaigns : 10'000);
  const BenchStats legacy_storm = TimeIt(mode.Warmup(1), mode.Repeats(3), [&] {
    SimCoreStorm<LegacySimEngine> storm(99, storm_target);
    storm.Run();
  });
  const BenchStats current_storm = TimeIt(mode.Warmup(1), mode.Repeats(3), [&] {
    SimCoreStorm<SimEngine> storm(99, storm_target);
    storm.Run();
  });
  const int head_to_head_seeds =
      IntFromArgs(argc, argv, "--h2h", mode.smoke ? 4 : 20);
  const RecoveryComparison recovery = RecoveryBeforeAfter(head_to_head_seeds);
  bool proactive_wins = false;
  PolicyAggregate policy_aggs[3];
  HeadToHead(head_to_head_seeds, &proactive_wins, policy_aggs);

  Table engines({"engine (storm = 1 campaign of events)", "before ms", "after ms", "speedup"});
  engines.AddRow({"legacy queue -> slot-pool 4-ary heap",
                  Table::Num(legacy_storm.median_ms, 3), Table::Num(current_storm.median_ms, 3),
                  Table::Num(legacy_storm.median_ms /
                                 (current_storm.median_ms > 0.0 ? current_storm.median_ms : 1.0),
                             2) + "x"});
  std::printf("%s\n", engines.Render().c_str());
  std::printf("Every campaign passed SimEngine + ElasticTrainer + CheckpointStore\n"
              "invariant checks (violations abort the process).\n");

  const std::string json_path = JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) {
    BenchJsonWriter json("bench_chaos_campaigns");
    AddBuildMetadata(&json);
    json.AddScalar("campaigns", n);
    json.AddScalar("preemptions_hit", static_cast<double>(preemptions));
    json.AddScalar("heartbeat_timeouts", static_cast<double>(heartbeat_timeouts));
    json.AddScalar("restarts", static_cast<double>(restarts));
    json.AddScalar("minibatches_done", static_cast<double>(minibatches_done));
    json.AddScalar("minibatches_rolled_back", static_cast<double>(minibatches_rolled_back));
    json.AddScalar("campaigns_with_progress", static_cast<double>(with_progress));
    json.AddScalar("replays_checked", static_cast<double>(replays_checked));
    json.AddScalar("campaign_ms", wall.mean_ms / n);
    json.AddScalar("executor_events", static_cast<double>(executor_events));
    json.AddScalar("executor_events_per_sec",
                   static_cast<double>(executor_events) / (wall.mean_ms / 1e3));
    json.AddScalar("ring_cache_hits", static_cast<double>(ring_cache_hits));
    json.AddScalar("ring_cache_misses", static_cast<double>(ring_cache_misses));
    json.AddScalar("fast_recovery", fast_recovery ? 1.0 : 0.0);
    json.AddScalar("downtime_s", downtime_s);
    json.AddScalar("restore_seconds", restore_s);
    json.AddScalar("live_handoffs", static_cast<double>(live_handoffs));
    json.AddScalar("delta_checkpoints", static_cast<double>(delta_checkpoints));
    json.AddScalar("recovery_before_median_downtime_s", recovery.before_median_downtime_s);
    json.AddScalar("recovery_after_median_downtime_s", recovery.after_median_downtime_s);
    json.AddScalar("recovery_before_restore_s", recovery.before_restore_s);
    json.AddScalar("recovery_after_restore_s", recovery.after_restore_s);
    json.AddScalar("recovery_after_live_handoffs",
                   static_cast<double>(recovery.after_live_handoffs));
    json.AddScalar("recovery_after_delta_checkpoints",
                   static_cast<double>(recovery.after_delta_checkpoints));
    json.AddScalar("head_to_head_seeds", static_cast<double>(head_to_head_seeds));
    json.AddScalar("head_to_head_proactive_wins", proactive_wins ? 1.0 : 0.0);
    const char* policy_keys[3] = {"reactive", "proactive", "oracle"};
    for (int p = 0; p < 3; ++p) {
      const std::string key = policy_keys[p];
      json.AddScalar(key + "_minibatches", static_cast<double>(policy_aggs[p].minibatches));
      json.AddScalar(key + "_rolled_back", static_cast<double>(policy_aggs[p].rolled_back));
      json.AddScalar(key + "_restarts", static_cast<double>(policy_aggs[p].restarts));
      json.AddScalar(key + "_proactive_morphs",
                     static_cast<double>(policy_aggs[p].proactive_morphs));
      json.AddScalar(key + "_premigrated_shards",
                     static_cast<double>(policy_aggs[p].premigrated_shards));
      json.AddScalar(key + "_live_handoffs",
                     static_cast<double>(policy_aggs[p].live_handoffs));
      json.AddScalar(key + "_stalled_s", policy_aggs[p].stalled_s);
    }
    json.AddResult("sweep", wall);
    json.AddResult("engine_storm_before", legacy_storm);
    json.AddResult("engine_storm_after", current_storm);
    json.WriteTo(json_path);
  }
}

}  // namespace
}  // namespace varuna

int main(int argc, char** argv) {
  varuna::Run(argc, argv);
  return 0;
}
