// §7.2 simulator/search runtime — the perf trajectory of the morph decision
// path. The paper quotes 660/376/391 ms per simulated configuration for
// P=36/24/18 on a 128-GPU, batch-8192 GPT-2 8.3B job, and parallelizes the
// config search over candidate configs (§4.4): morphing agility is bounded by
// how fast this loop runs at every preemption/arrival event.
//
// Measures, with warmup + repeated runs (median/min):
//   * one FastSimulator::EstimateMinibatch call at P=36/24/18 (the paper's
//     table), scratch buffers hot;
//   * the full joint P x m sweep at G=128, cold caches, serial vs pooled
//     (ThreadPool with one worker per hardware thread);
//   * the same sweep with warm memo (the repeated-cluster-size morph case);
//   * a spot trace: sweeps at previously-unseen GPU counts, where the
//     whole-sweep memo cannot hit and speed comes from candidate-level
//     reuse + bound pruning. Three variants per G — from-scratch cold,
//     incremental memo-only (prune off), incremental memo + pruning — with
//     every variant's winner asserted bit-identical to the cold oracle
//     before anything is timed. Headline: geomean per-G speedup vs cold.
// Pass --no-prune to run the pruned variant as an unpruned oracle instead.
// Writes BENCH_config_search.json (override with --json <path>).
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace varuna {
namespace {

struct Prepared {
  TransformerSpec spec;
  OpGraph graph;
  ModelSections sections;
  std::unique_ptr<Cluster> cluster;
  Calibration calibration;
};

Prepared Prepare(const TransformerSpec& spec, int gpus) {
  Prepared prepared{spec, BuildTransformerOpGraph(spec), {}, nullptr, {}};
  prepared.sections = IdentifyCutPoints(prepared.graph, spec.num_layers).value();
  prepared.cluster = std::make_unique<Cluster>(CommodityFabric());
  prepared.cluster->AddVms(Nc6V3(), gpus + 2);
  Rng rng(99);
  prepared.calibration =
      Calibrate(prepared.sections, *prepared.cluster, CalibrationOptions(), &rng).value();
  return prepared;
}

double Geomean(const std::vector<double>& values) {
  double log_sum = 0.0;
  for (const double value : values) {
    log_sum += std::log(value);
  }
  return values.empty() ? 0.0 : std::exp(log_sum / static_cast<double>(values.size()));
}

double Median(std::vector<double> values) {
  VARUNA_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const size_t mid = values.size() / 2;
  return values.size() % 2 == 1 ? values[mid] : 0.5 * (values[mid - 1] + values[mid]);
}

int Run(int argc, char** argv) {
  std::string json_path = JsonPathFromArgs(argc, argv);
  if (json_path.empty()) {
    json_path = "BENCH_config_search.json";
  }
  const BenchMode mode = ModeFromArgs(argc, argv);
  const bool prune = !FlagInArgs(argc, argv, "--no-prune");
  const int threads = ThreadPool::DefaultThreadCount();
  std::printf("=== config-search runtime (§7.2): GPT-2 8.3B, 128 GPUs, batch 8192 ===\n");
  std::printf("hardware threads: %d%s\n\n", threads,
              prune ? "" : "  [--no-prune: pruning disabled, oracle mode]");

  Prepared prepared = Prepare(Gpt2_8_3B(), 40);  // Calibration sample, reused for every case.
  SearchConstraints constraints;
  constraints.total_batch = 8192;
  constraints.budget.gpu_memory_bytes = Nc6V3().gpu.memory_bytes;
  constraints.prune = false;  // The exhaustive baseline the sweep section times.
  const int gpus = 128;

  BenchJsonWriter json("bench_config_search");
  AddBuildMetadata(&json);
  json.AddScalar("hardware_threads", threads);
  json.AddScalar("gpus", gpus);

  // --- Single-configuration simulator runtime (the paper's §7.2 table). -----
  std::printf("single-configuration FastSimulator runtime (paper: 660/376/391 ms):\n");
  Table sim_table({"P", "D", "Nm", "median (ms)", "min (ms)"});
  FastSimulator simulator(&prepared.calibration);
  for (const int depth : {36, 24, 18}) {
    const Partition partition = PartitionModel(prepared.sections, depth).value();
    const int replicas = gpus / depth;
    const int num_microbatches = static_cast<int>(std::ceil(8192.0 / (4.0 * replicas)));
    const Schedule schedule =
        GenerateSchedule(ScheduleKind::kVaruna, depth, num_microbatches);
    FastSimConfig config;
    config.sections = &prepared.sections;
    config.partition = &partition;
    config.data_parallel = replicas;
    config.microbatch_size = 4;
    config.gpus_per_node = 1;
    double sink = 0.0;
    const BenchStats stats = TimeIt(mode.Warmup(3), mode.Repeats(15), [&] {
      sink += simulator.EstimateMinibatch(schedule, config).minibatch_s;
    });
    VARUNA_CHECK_GT(sink, 0.0);
    sim_table.AddRow({std::to_string(depth), std::to_string(replicas),
                      std::to_string(num_microbatches), Table::Num(stats.median_ms, 3),
                      Table::Num(stats.min_ms, 3)});
    json.AddResult("simulate_P" + std::to_string(depth), stats);
  }
  std::printf("%s\n", sim_table.Render().c_str());

  // --- Full sweep: serial vs pooled, cold caches each repeat. ---------------
  ConfigSearch serial_search(&prepared.spec, &prepared.sections, &prepared.calibration);
  ThreadPool pool(threads);
  ConfigSearch pooled_search(&prepared.spec, &prepared.sections, &prepared.calibration, &pool);

  // Pooled must be bit-identical to serial (the determinism contract the
  // property tests pin); refuse to report numbers for divergent results.
  const auto serial_configs = serial_search.Sweep(gpus, constraints).value();
  const auto pooled_configs = pooled_search.Sweep(gpus, constraints).value();
  VARUNA_CHECK_EQ(serial_configs.size(), pooled_configs.size());
  for (size_t i = 0; i < serial_configs.size(); ++i) {
    VARUNA_CHECK(serial_configs[i] == pooled_configs[i])
        << "pooled sweep diverged from serial at config " << i;
  }
  std::printf("joint P x m sweep: %zu feasible configs (depths x %d micro-batch candidates), "
              "pooled == serial verified\n\n",
              serial_configs.size(), constraints.microbatch_candidates);

  const BenchStats serial_cold = TimeIt(mode.Warmup(1), mode.Repeats(7), [&] {
    serial_search.ClearCaches();
    (void)serial_search.Sweep(gpus, constraints);
  });
  const BenchStats pooled_cold = TimeIt(mode.Warmup(1), mode.Repeats(7), [&] {
    pooled_search.ClearCaches();
    (void)pooled_search.Sweep(gpus, constraints);
  });
  // Warm: the memoized path a spot trace hits when a cluster size recurs.
  const BenchStats warm = TimeIt(mode.Warmup(1), mode.Repeats(15), [&] {
    (void)serial_search.Sweep(gpus, constraints);
  });

  Table sweep_table({"variant", "median (ms)", "min (ms)", "mean (ms)"});
  sweep_table.AddRow({"cold sweep, serial", Table::Num(serial_cold.median_ms, 2),
                      Table::Num(serial_cold.min_ms, 2), Table::Num(serial_cold.mean_ms, 2)});
  sweep_table.AddRow({"cold sweep, pooled x" + std::to_string(threads),
                      Table::Num(pooled_cold.median_ms, 2), Table::Num(pooled_cold.min_ms, 2),
                      Table::Num(pooled_cold.mean_ms, 2)});
  sweep_table.AddRow({"warm sweep (memo hit)", Table::Num(warm.median_ms, 4),
                      Table::Num(warm.min_ms, 4), Table::Num(warm.mean_ms, 4)});
  std::printf("%s\n", sweep_table.Render().c_str());

  const double speedup = serial_cold.median_ms / pooled_cold.median_ms;
  std::printf("pooled speedup: %.2fx on %d hardware thread(s)"
              "%s\n\n",
              speedup, threads,
              threads < 4 ? " (the >=2x target applies on >=4 cores)" : "");

  // --- Spot trace: previously-unseen G, incremental vs from-scratch. --------
  // An elastic session never re-decides the same cluster size twice in a row;
  // it morphs to a G it has not seen. The whole-sweep memo misses there by
  // construction — this section measures what candidate-level reuse and bound
  // pruning recover. Warm history: a few sweeps at other sizes, as any live
  // session has after its first morphs.
  const int warm_points = mode.smoke ? 1 : 4;
  const int trace_points = mode.smoke ? 3 : 40;
  std::vector<int> sizes;  // 64..127, all distinct from the G=128 warmup.
  for (int g = 64; g < 128; ++g) {
    sizes.push_back(g);
  }
  Rng shuffle_rng(0xC0FFEE);  // Seeded: the trace is identical across runs.
  for (size_t i = sizes.size() - 1; i > 0; --i) {
    std::swap(sizes[i], sizes[shuffle_rng.UniformInt(0, static_cast<int64_t>(i))]);
  }
  VARUNA_CHECK_LE(static_cast<size_t>(warm_points + trace_points), sizes.size());
  const std::vector<int> history(sizes.begin(), sizes.begin() + warm_points);
  const std::vector<int> trace(sizes.begin() + warm_points,
                               sizes.begin() + warm_points + trace_points);

  SearchConstraints unpruned = constraints;  // prune already false.
  SearchConstraints pruned = constraints;
  pruned.prune = prune;

  // Verification first: at every trace G, both incremental variants must pick
  // the exact winner (operator==, doubles included) a from-scratch unpruned
  // sweep picks. Separate instances from the timed ones — verifying on the
  // timed instances would warm their memos and void the measurement.
  {
    ConfigSearch oracle(&prepared.spec, &prepared.sections, &prepared.calibration);
    ConfigSearch memo_check(&prepared.spec, &prepared.sections, &prepared.calibration);
    ConfigSearch pruned_check(&prepared.spec, &prepared.sections, &prepared.calibration);
    (void)memo_check.Sweep(gpus, unpruned);
    (void)pruned_check.Sweep(gpus, pruned);
    for (const int g : history) {
      (void)memo_check.Sweep(g, unpruned);
      (void)pruned_check.Sweep(g, pruned);
    }
    for (const int g : trace) {
      oracle.ClearCaches();
      const JobConfig expected = oracle.Best(g, unpruned).value();
      VARUNA_CHECK(memo_check.Best(g, unpruned).value() == expected)
          << "incremental memo-only winner diverged from cold sweep at G=" << g;
      VARUNA_CHECK(pruned_check.Best(g, pruned).value() == expected)
          << "incremental pruned winner diverged from cold sweep at G=" << g;
    }
    std::printf("spot trace: %d unseen G values, incremental winners == cold winners "
                "verified (pruned and unpruned)\n\n",
                trace_points);
  }

  ConfigSearch cold_search(&prepared.spec, &prepared.sections, &prepared.calibration);
  ConfigSearch memo_search(&prepared.spec, &prepared.sections, &prepared.calibration);
  ConfigSearch pruned_search(&prepared.spec, &prepared.sections, &prepared.calibration);
  (void)memo_search.Sweep(gpus, unpruned);
  (void)pruned_search.Sweep(gpus, pruned);
  for (const int g : history) {
    (void)memo_search.Sweep(g, unpruned);
    (void)pruned_search.Sweep(g, pruned);
  }
  const ConfigSearchStats trace_before = pruned_search.stats();

  std::vector<double> cold_ms, memo_ms, pruned_ms, memo_speedups, pruned_speedups;
  for (const int g : trace) {
    cold_search.ClearCaches();
    cold_ms.push_back(TimeOnceMs([&] { (void)cold_search.Sweep(g, unpruned); }));
    memo_ms.push_back(TimeOnceMs([&] { (void)memo_search.Sweep(g, unpruned); }));
    pruned_ms.push_back(TimeOnceMs([&] { (void)pruned_search.Sweep(g, pruned); }));
    memo_speedups.push_back(cold_ms.back() / memo_ms.back());
    pruned_speedups.push_back(cold_ms.back() / pruned_ms.back());
  }
  const ConfigSearchStats trace_after = pruned_search.stats();

  const double geomean_memo = Geomean(memo_speedups);
  const double geomean_pruned = Geomean(pruned_speedups);
  Table trace_table({"variant", "median per-G (ms)", "geomean speedup vs cold"});
  trace_table.AddRow({"from-scratch cold", Table::Num(Median(cold_ms), 2), "1.00x"});
  trace_table.AddRow({"incremental, memo only", Table::Num(Median(memo_ms), 3),
                      Table::Num(geomean_memo, 1) + "x"});
  trace_table.AddRow({prune ? "incremental, memo + pruning" : "incremental, no-prune oracle",
                      Table::Num(Median(pruned_ms), 3), Table::Num(geomean_pruned, 1) + "x"});
  std::printf("%s\n", trace_table.Render().c_str());
  std::printf("trace candidate counters (memo + pruning variant): "
              "%llu hits, %llu misses, %llu pruned\n\n",
              static_cast<unsigned long long>(trace_after.candidate_memo_hits -
                                              trace_before.candidate_memo_hits),
              static_cast<unsigned long long>(trace_after.candidate_memo_misses -
                                              trace_before.candidate_memo_misses),
              static_cast<unsigned long long>(trace_after.candidates_pruned -
                                              trace_before.candidates_pruned));

  json.AddResult("sweep_cold_serial", serial_cold);
  json.AddResult("sweep_cold_pooled", pooled_cold);
  json.AddResult("sweep_warm_memoized", warm);
  json.AddScalar("pool_threads", threads);
  if (threads < 2) {
    json.AddString("pooled_caveat",
                   "1 hardware thread: pooled == serial + dispatch, speedup is noise");
  }
  json.AddScalar("feasible_configs", static_cast<double>(serial_configs.size()));
  json.AddScalar("speedup_pooled_vs_serial", speedup);
  json.AddScalar("prune_enabled", prune ? 1.0 : 0.0);
  json.AddScalar("trace_points", trace_points);
  json.AddScalar("trace_cold_median_ms", Median(cold_ms));
  json.AddScalar("trace_memo_median_ms", Median(memo_ms));
  json.AddScalar("trace_pruned_median_ms", Median(pruned_ms));
  json.AddScalar("geomean_speedup_memo", geomean_memo);
  json.AddScalar("geomean_speedup_pruned", geomean_pruned);
  json.AddScalar("trace_candidate_memo_hits",
                 static_cast<double>(trace_after.candidate_memo_hits -
                                     trace_before.candidate_memo_hits));
  json.AddScalar("trace_candidate_memo_misses",
                 static_cast<double>(trace_after.candidate_memo_misses -
                                     trace_before.candidate_memo_misses));
  json.AddScalar("trace_candidates_pruned",
                 static_cast<double>(trace_after.candidates_pruned -
                                     trace_before.candidates_pruned));
  if (!json.WriteTo(json_path)) {
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace varuna

int main(int argc, char** argv) { return varuna::Run(argc, argv); }
