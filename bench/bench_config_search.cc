// §7.2 simulator/search runtime — the perf trajectory of the morph decision
// path. The paper quotes 660/376/391 ms per simulated configuration for
// P=36/24/18 on a 128-GPU, batch-8192 GPT-2 8.3B job, and parallelizes the
// config search over candidate configs (§4.4): morphing agility is bounded by
// how fast this loop runs at every preemption/arrival event.
//
// Measures, with warmup + repeated runs (median/min):
//   * one FastSimulator::EstimateMinibatch call at P=36/24/18 (the paper's
//     table), scratch buffers hot;
//   * the full joint P x m sweep at G=128, cold caches, serial vs pooled
//     (ThreadPool with one worker per hardware thread);
//   * the same sweep with warm memo (the repeated-cluster-size morph case).
// Verifies pooled results are bit-identical to serial before reporting, and
// writes BENCH_config_search.json (override with --json <path>).
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace varuna {
namespace {

struct Prepared {
  TransformerSpec spec;
  OpGraph graph;
  ModelSections sections;
  std::unique_ptr<Cluster> cluster;
  Calibration calibration;
};

Prepared Prepare(const TransformerSpec& spec, int gpus) {
  Prepared prepared{spec, BuildTransformerOpGraph(spec), {}, nullptr, {}};
  prepared.sections = IdentifyCutPoints(prepared.graph, spec.num_layers).value();
  prepared.cluster = std::make_unique<Cluster>(CommodityFabric());
  prepared.cluster->AddVms(Nc6V3(), gpus + 2);
  Rng rng(99);
  prepared.calibration =
      Calibrate(prepared.sections, *prepared.cluster, CalibrationOptions(), &rng).value();
  return prepared;
}

int Run(int argc, char** argv) {
  std::string json_path = JsonPathFromArgs(argc, argv);
  if (json_path.empty()) {
    json_path = "BENCH_config_search.json";
  }
  const BenchMode mode = ModeFromArgs(argc, argv);
  const int threads = ThreadPool::DefaultThreadCount();
  std::printf("=== config-search runtime (§7.2): GPT-2 8.3B, 128 GPUs, batch 8192 ===\n");
  std::printf("hardware threads: %d\n\n", threads);

  Prepared prepared = Prepare(Gpt2_8_3B(), 40);  // Calibration sample, reused for every case.
  SearchConstraints constraints;
  constraints.total_batch = 8192;
  constraints.budget.gpu_memory_bytes = Nc6V3().gpu.memory_bytes;
  const int gpus = 128;

  BenchJsonWriter json("bench_config_search");
  AddBuildMetadata(&json);
  json.AddScalar("hardware_threads", threads);
  json.AddScalar("gpus", gpus);

  // --- Single-configuration simulator runtime (the paper's §7.2 table). -----
  std::printf("single-configuration FastSimulator runtime (paper: 660/376/391 ms):\n");
  Table sim_table({"P", "D", "Nm", "median (ms)", "min (ms)"});
  FastSimulator simulator(&prepared.calibration);
  for (const int depth : {36, 24, 18}) {
    const Partition partition = PartitionModel(prepared.sections, depth).value();
    const int replicas = gpus / depth;
    const int num_microbatches = static_cast<int>(std::ceil(8192.0 / (4.0 * replicas)));
    const Schedule schedule =
        GenerateSchedule(ScheduleKind::kVaruna, depth, num_microbatches);
    FastSimConfig config;
    config.sections = &prepared.sections;
    config.partition = &partition;
    config.data_parallel = replicas;
    config.microbatch_size = 4;
    config.gpus_per_node = 1;
    double sink = 0.0;
    const BenchStats stats = TimeIt(mode.Warmup(3), mode.Repeats(15), [&] {
      sink += simulator.EstimateMinibatch(schedule, config).minibatch_s;
    });
    VARUNA_CHECK_GT(sink, 0.0);
    sim_table.AddRow({std::to_string(depth), std::to_string(replicas),
                      std::to_string(num_microbatches), Table::Num(stats.median_ms, 3),
                      Table::Num(stats.min_ms, 3)});
    json.AddResult("simulate_P" + std::to_string(depth), stats);
  }
  std::printf("%s\n", sim_table.Render().c_str());

  // --- Full sweep: serial vs pooled, cold caches each repeat. ---------------
  ConfigSearch serial_search(&prepared.spec, &prepared.sections, &prepared.calibration);
  ThreadPool pool(threads);
  ConfigSearch pooled_search(&prepared.spec, &prepared.sections, &prepared.calibration, &pool);

  // Pooled must be bit-identical to serial (the determinism contract the
  // property tests pin); refuse to report numbers for divergent results.
  const auto serial_configs = serial_search.Sweep(gpus, constraints).value();
  const auto pooled_configs = pooled_search.Sweep(gpus, constraints).value();
  VARUNA_CHECK_EQ(serial_configs.size(), pooled_configs.size());
  for (size_t i = 0; i < serial_configs.size(); ++i) {
    VARUNA_CHECK(serial_configs[i] == pooled_configs[i])
        << "pooled sweep diverged from serial at config " << i;
  }
  std::printf("joint P x m sweep: %zu feasible configs (depths x %d micro-batch candidates), "
              "pooled == serial verified\n\n",
              serial_configs.size(), constraints.microbatch_candidates);

  const BenchStats serial_cold = TimeIt(mode.Warmup(1), mode.Repeats(7), [&] {
    serial_search.ClearCaches();
    (void)serial_search.Sweep(gpus, constraints);
  });
  const BenchStats pooled_cold = TimeIt(mode.Warmup(1), mode.Repeats(7), [&] {
    pooled_search.ClearCaches();
    (void)pooled_search.Sweep(gpus, constraints);
  });
  // Warm: the memoized path a spot trace hits when a cluster size recurs.
  const BenchStats warm = TimeIt(mode.Warmup(1), mode.Repeats(15), [&] {
    (void)serial_search.Sweep(gpus, constraints);
  });

  Table sweep_table({"variant", "median (ms)", "min (ms)", "mean (ms)"});
  sweep_table.AddRow({"cold sweep, serial", Table::Num(serial_cold.median_ms, 2),
                      Table::Num(serial_cold.min_ms, 2), Table::Num(serial_cold.mean_ms, 2)});
  sweep_table.AddRow({"cold sweep, pooled x" + std::to_string(threads),
                      Table::Num(pooled_cold.median_ms, 2), Table::Num(pooled_cold.min_ms, 2),
                      Table::Num(pooled_cold.mean_ms, 2)});
  sweep_table.AddRow({"warm sweep (memo hit)", Table::Num(warm.median_ms, 4),
                      Table::Num(warm.min_ms, 4), Table::Num(warm.mean_ms, 4)});
  std::printf("%s\n", sweep_table.Render().c_str());

  const double speedup = serial_cold.median_ms / pooled_cold.median_ms;
  std::printf("pooled speedup: %.2fx on %d hardware thread(s)"
              "%s\n",
              speedup, threads,
              threads < 4 ? " (the >=2x target applies on >=4 cores)" : "");

  json.AddResult("sweep_cold_serial", serial_cold);
  json.AddResult("sweep_cold_pooled", pooled_cold);
  json.AddResult("sweep_warm_memoized", warm);
  json.AddScalar("pool_threads", threads);
  json.AddScalar("feasible_configs", static_cast<double>(serial_configs.size()));
  json.AddScalar("speedup_pooled_vs_serial", speedup);
  if (!json.WriteTo(json_path)) {
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace varuna

int main(int argc, char** argv) { return varuna::Run(argc, argv); }
