// Simulation-core microbenchmark (the PR-5 fast-sim work): before/after
// events/sec of the event engine on a chaos-campaign-shaped storm, plus the
// real chaos-campaign sweep with the new SessionStats perf counters.
//
//   bench_sim_core [--smoke] [--json PATH]
//
// Columns:
//   * storm/legacy  — the frozen pre-change engine (std::function callbacks,
//     priority_queue + unordered_set of live ids) on the storm workload.
//   * storm/current — the slot-pool + 4-ary-heap engine on the identical
//     stream (same seed, bit-identical fire count).
//   * chaos sweep   — end-to-end campaigns; ms/campaign, testbed events/sec
//     and ring-cost-cache hit rate come from the SessionStats counters.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/legacy_sim_engine.h"
#include "bench/sim_core_workload.h"
#include "src/chaos/chaos.h"
#include "src/common/table.h"
#include "src/sim/engine.h"

namespace varuna {
namespace {

constexpr uint64_t kStormSeed = 2026;

template <typename Engine>
uint64_t StormFires(uint64_t target) {
  SimCoreStorm<Engine> storm(kStormSeed, target);
  return storm.Run();
}

void Run(int argc, char** argv) {
  const BenchMode mode = ModeFromArgs(argc, argv);
  const uint64_t storm_target = mode.smoke ? 50'000 : 1'000'000;
  const int campaigns = mode.smoke ? 4 : 40;

  std::printf("=== Simulation core: event engine before/after ===\n\n");

  // Both engines must fire the identical deterministic stream.
  const uint64_t legacy_fires = StormFires<LegacySimEngine>(storm_target);
  const uint64_t current_fires = StormFires<SimEngine>(storm_target);
  VARUNA_CHECK_EQ(legacy_fires, current_fires)
      << "storm diverged between engine implementations";

  const BenchStats legacy_wall = TimeIt(mode.Warmup(1), mode.Repeats(5), [&] {
    (void)StormFires<LegacySimEngine>(storm_target);
  });
  const BenchStats current_wall = TimeIt(mode.Warmup(1), mode.Repeats(5), [&] {
    (void)StormFires<SimEngine>(storm_target);
  });
  uint64_t heap_fallbacks = 0;
  {
    SimCoreStorm<SimEngine> storm(kStormSeed, storm_target);
    storm.Run();
    heap_fallbacks = storm.engine().callback_heap_fallbacks();
  }

  const double legacy_eps = static_cast<double>(legacy_fires) / (legacy_wall.median_ms / 1e3);
  const double current_eps =
      static_cast<double>(current_fires) / (current_wall.median_ms / 1e3);
  const double speedup = legacy_eps > 0.0 ? current_eps / legacy_eps : 0.0;

  Table engine_table({"engine", "events fired", "median ms", "events/sec"});
  engine_table.AddRow({"legacy (pre-change)", std::to_string(legacy_fires),
                       Table::Num(legacy_wall.median_ms, 2), Table::Num(legacy_eps / 1e6, 2) + "M"});
  engine_table.AddRow({"current (slot pool)", std::to_string(current_fires),
                       Table::Num(current_wall.median_ms, 2), Table::Num(current_eps / 1e6, 2) + "M"});
  std::printf("%s\n", engine_table.Render().c_str());
  std::printf("speedup: %.2fx events/sec on the chaos-shaped storm "
              "(callback heap fallbacks: %llu)\n\n",
              speedup, static_cast<unsigned long long>(heap_fallbacks));

  std::printf("=== Chaos campaign sweep on the new core (%d campaigns) ===\n\n", campaigns);
  int64_t executor_events = 0;
  int64_t ring_hits = 0;
  int64_t ring_misses = 0;
  int64_t minibatches = 0;
  const BenchStats sweep_wall = TimeIt(0, 1, [&] {
    executor_events = ring_hits = ring_misses = minibatches = 0;
    for (int seed = 1; seed <= campaigns; ++seed) {
      const ChaosReport report = RunChaosCampaign(RandomChaosCampaign(static_cast<uint64_t>(seed)));
      executor_events += static_cast<int64_t>(report.stats.executor_events);
      ring_hits += static_cast<int64_t>(report.stats.net_ring_cache_hits);
      ring_misses += static_cast<int64_t>(report.stats.net_ring_cache_misses);
      minibatches += report.stats.minibatches_done;
    }
  });
  const double n = campaigns;
  const double sweep_eps = static_cast<double>(executor_events) / (sweep_wall.mean_ms / 1e3);
  const double hit_rate = ring_hits + ring_misses > 0
                              ? static_cast<double>(ring_hits) / (ring_hits + ring_misses)
                              : 0.0;
  Table sweep_table({"metric", "total", "per campaign"});
  sweep_table.AddRow({"wall ms", Table::Num(sweep_wall.mean_ms, 1),
                      Table::Num(sweep_wall.mean_ms / n, 2)});
  sweep_table.AddRow({"testbed events", std::to_string(executor_events),
                      Table::Num(executor_events / n, 0)});
  sweep_table.AddRow({"ring-cost cache hits", std::to_string(ring_hits),
                      Table::Num(ring_hits / n, 0)});
  sweep_table.AddRow({"ring-cost cache misses", std::to_string(ring_misses),
                      Table::Num(ring_misses / n, 0)});
  sweep_table.AddRow({"mini-batches committed", std::to_string(minibatches),
                      Table::Num(minibatches / n, 1)});
  std::printf("%s\n", sweep_table.Render().c_str());
  std::printf("testbed events/sec (sweep wall): %.2fM   ring-cache hit rate: %.1f%%\n",
              sweep_eps / 1e6, 100.0 * hit_rate);

  const std::string json_path = JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) {
    BenchJsonWriter json("bench_sim_core");
    AddBuildMetadata(&json);
    json.AddScalar("storm_events", static_cast<double>(current_fires));
    json.AddScalar("legacy_events_per_sec", legacy_eps);
    json.AddScalar("events_per_sec", current_eps);
    json.AddScalar("speedup_vs_legacy", speedup);
    json.AddScalar("callback_heap_fallbacks", static_cast<double>(heap_fallbacks));
    json.AddScalar("campaigns", n);
    json.AddScalar("campaign_ms", sweep_wall.mean_ms / n);
    json.AddScalar("executor_events", static_cast<double>(executor_events));
    json.AddScalar("executor_events_per_sec", sweep_eps);
    json.AddScalar("ring_cache_hits", static_cast<double>(ring_hits));
    json.AddScalar("ring_cache_misses", static_cast<double>(ring_misses));
    json.AddScalar("ring_cache_hit_rate", hit_rate);
    json.AddResult("storm_legacy", legacy_wall);
    json.AddResult("storm_current", current_wall);
    json.AddResult("chaos_sweep", sweep_wall);
    json.WriteTo(json_path);
  }
}

}  // namespace
}  // namespace varuna

int main(int argc, char** argv) {
  varuna::Run(argc, argv);
  return 0;
}
