// Simulation-core microbenchmark (the PR-5 fast-sim work): before/after
// events/sec of the event engine on a chaos-campaign-shaped storm, plus the
// real chaos-campaign sweep with the new SessionStats perf counters.
//
//   bench_sim_core [--smoke] [--json PATH]
//
// Columns:
//   * storm/legacy  — the frozen pre-change engine (std::function callbacks,
//     priority_queue + unordered_set of live ids) on the storm workload.
//   * storm/current — the slot-pool + 4-ary-heap engine on the identical
//     stream (same seed, bit-identical fire count).
//   * sharded storm — the node-sharded engine at 1/2/4/8 shards on a
//     contract-shaped storm; fingerprints are asserted bit-identical across
//     shard counts before anything is timed, and the per-shard window/parcel
//     counters land in the JSON.
//   * chaos sweep   — end-to-end campaigns; ms/campaign, testbed events/sec
//     and ring-cost-cache hit rate come from the SessionStats counters.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/legacy_sim_engine.h"
#include "bench/sim_core_workload.h"
#include "src/chaos/chaos.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/manager/elastic_trainer.h"
#include "src/sim/engine.h"
#include "src/sim/sharded_engine.h"

namespace varuna {
namespace {

constexpr uint64_t kStormSeed = 2026;

template <typename Engine>
uint64_t StormFires(uint64_t target) {
  SimCoreStorm<Engine> storm(kStormSeed, target);
  return storm.Run();
}

void Run(int argc, char** argv) {
  const BenchMode mode = ModeFromArgs(argc, argv);
  const uint64_t storm_target = mode.smoke ? 50'000 : 1'000'000;
  const int campaigns = mode.smoke ? 4 : 40;

  std::printf("=== Simulation core: event engine before/after ===\n\n");

  // Both engines must fire the identical deterministic stream.
  const uint64_t legacy_fires = StormFires<LegacySimEngine>(storm_target);
  const uint64_t current_fires = StormFires<SimEngine>(storm_target);
  VARUNA_CHECK_EQ(legacy_fires, current_fires)
      << "storm diverged between engine implementations";

  const BenchStats legacy_wall = TimeIt(mode.Warmup(1), mode.Repeats(5), [&] {
    (void)StormFires<LegacySimEngine>(storm_target);
  });
  const BenchStats current_wall = TimeIt(mode.Warmup(1), mode.Repeats(5), [&] {
    (void)StormFires<SimEngine>(storm_target);
  });
  uint64_t heap_fallbacks = 0;
  {
    SimCoreStorm<SimEngine> storm(kStormSeed, storm_target);
    storm.Run();
    heap_fallbacks = storm.engine().callback_heap_fallbacks();
  }

  const double legacy_eps = static_cast<double>(legacy_fires) / (legacy_wall.median_ms / 1e3);
  const double current_eps =
      static_cast<double>(current_fires) / (current_wall.median_ms / 1e3);
  const double speedup = legacy_eps > 0.0 ? current_eps / legacy_eps : 0.0;

  Table engine_table({"engine", "events fired", "median ms", "events/sec"});
  engine_table.AddRow({"legacy (pre-change)", std::to_string(legacy_fires),
                       Table::Num(legacy_wall.median_ms, 2), Table::Num(legacy_eps / 1e6, 2) + "M"});
  engine_table.AddRow({"current (slot pool)", std::to_string(current_fires),
                       Table::Num(current_wall.median_ms, 2), Table::Num(current_eps / 1e6, 2) + "M"});
  std::printf("%s\n", engine_table.Render().c_str());
  std::printf("speedup: %.2fx events/sec on the chaos-shaped storm "
              "(callback heap fallbacks: %llu)\n\n",
              speedup, static_cast<unsigned long long>(heap_fallbacks));

  std::printf("=== Sharded storm: scaling by shard count ===\n\n");

  constexpr int kStormNodes = 16;
  const unsigned hw = std::thread::hardware_concurrency();
  const int pool_threads = static_cast<int>(std::min(8u, hw == 0 ? 1u : hw));
  ThreadPool pool(pool_threads);

  struct ShardRun {
    int shards = 1;
    uint64_t fires = 0;
    BenchStats wall;
    uint64_t windows = 0;
    uint64_t parcels = 0;
    double imbalance = 1.0;
  };
  const int shard_counts[] = {1, 2, 4, 8};
  std::vector<ShardRun> shard_runs;
  std::vector<uint64_t> max_shard_events;  // Per-shard fires at the widest split.
  uint64_t reference_fp = 0;
  uint64_t sharded_fires = 0;
  SessionStats sharded_stats;  // The ShardedSimEngine observability snapshot.
  for (const int shards : shard_counts) {
    ShardedSimStorm probe(kStormSeed, storm_target, kStormNodes, shards, &pool);
    ShardRun run;
    run.shards = shards;
    run.fires = probe.Run();
    if (shards == 1) {
      reference_fp = probe.Fingerprint();
      sharded_fires = run.fires;
    }
    // Determinism contract: re-sharding may not change the replay.
    VARUNA_CHECK_EQ(probe.Fingerprint(), reference_fp)
        << "sharded storm diverged at " << shards << " shards";
    VARUNA_CHECK_EQ(run.fires, sharded_fires);
    run.windows = probe.engine().window_syncs();
    run.parcels = probe.engine().cross_shard_parcels();
    run.imbalance = probe.engine().shard_imbalance();
    if (shards == shard_counts[3]) {
      for (int shard = 0; shard < probe.engine().num_shards(); ++shard) {
        max_shard_events.push_back(probe.engine().shard_events_processed(shard));
      }
      sharded_stats.sim_window_syncs = run.windows;
      sharded_stats.sim_cross_shard_messages = run.parcels;
      sharded_stats.sim_shard_imbalance = run.imbalance;
    }
    run.wall = TimeIt(mode.Warmup(1), mode.Repeats(5), [&] {
      ShardedSimStorm storm(kStormSeed, storm_target, kStormNodes, shards, &pool);
      (void)storm.Run();
    });
    shard_runs.push_back(run);
  }

  Table shard_table({"shards", "events fired", "median ms", "events/sec", "speedup",
                     "windows", "parcels", "imbalance"});
  const double serial_eps = static_cast<double>(shard_runs[0].fires) /
                            (shard_runs[0].wall.median_ms / 1e3);
  for (const ShardRun& run : shard_runs) {
    const double eps = static_cast<double>(run.fires) / (run.wall.median_ms / 1e3);
    shard_table.AddRow({std::to_string(run.shards), std::to_string(run.fires),
                        Table::Num(run.wall.median_ms, 2), Table::Num(eps / 1e6, 2) + "M",
                        Table::Num(serial_eps > 0.0 ? eps / serial_eps : 0.0, 2) + "x",
                        std::to_string(run.windows), std::to_string(run.parcels),
                        Table::Num(run.imbalance, 2)});
  }
  std::printf("%s\n", shard_table.Render().c_str());
  std::printf("fingerprint bit-identical at every shard count; pool threads: %d "
              "(scaling needs a multi-core host)\n\n",
              pool.num_threads());

  std::printf("=== Chaos campaign sweep on the new core (%d campaigns) ===\n\n", campaigns);
  int64_t executor_events = 0;
  int64_t ring_hits = 0;
  int64_t ring_misses = 0;
  int64_t minibatches = 0;
  const BenchStats sweep_wall = TimeIt(0, 1, [&] {
    executor_events = ring_hits = ring_misses = minibatches = 0;
    for (int seed = 1; seed <= campaigns; ++seed) {
      const ChaosReport report = RunChaosCampaign(RandomChaosCampaign(static_cast<uint64_t>(seed)));
      executor_events += static_cast<int64_t>(report.stats.executor_events);
      ring_hits += static_cast<int64_t>(report.stats.net_ring_cache_hits);
      ring_misses += static_cast<int64_t>(report.stats.net_ring_cache_misses);
      minibatches += report.stats.minibatches_done;
    }
  });
  const double n = campaigns;
  const double sweep_eps = static_cast<double>(executor_events) / (sweep_wall.mean_ms / 1e3);
  const double hit_rate = ring_hits + ring_misses > 0
                              ? static_cast<double>(ring_hits) / (ring_hits + ring_misses)
                              : 0.0;
  Table sweep_table({"metric", "total", "per campaign"});
  sweep_table.AddRow({"wall ms", Table::Num(sweep_wall.mean_ms, 1),
                      Table::Num(sweep_wall.mean_ms / n, 2)});
  sweep_table.AddRow({"testbed events", std::to_string(executor_events),
                      Table::Num(executor_events / n, 0)});
  sweep_table.AddRow({"ring-cost cache hits", std::to_string(ring_hits),
                      Table::Num(ring_hits / n, 0)});
  sweep_table.AddRow({"ring-cost cache misses", std::to_string(ring_misses),
                      Table::Num(ring_misses / n, 0)});
  sweep_table.AddRow({"mini-batches committed", std::to_string(minibatches),
                      Table::Num(minibatches / n, 1)});
  std::printf("%s\n", sweep_table.Render().c_str());
  std::printf("testbed events/sec (sweep wall): %.2fM   ring-cache hit rate: %.1f%%\n",
              sweep_eps / 1e6, 100.0 * hit_rate);

  const std::string json_path = JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) {
    BenchJsonWriter json("bench_sim_core");
    AddBuildMetadata(&json);
    json.AddScalar("storm_events", static_cast<double>(current_fires));
    json.AddScalar("legacy_events_per_sec", legacy_eps);
    json.AddScalar("events_per_sec", current_eps);
    json.AddScalar("speedup_vs_legacy", speedup);
    json.AddScalar("callback_heap_fallbacks", static_cast<double>(heap_fallbacks));
    json.AddScalar("pool_threads", static_cast<double>(pool.num_threads()));
    json.AddScalar("sharded_storm_nodes", static_cast<double>(kStormNodes));
    json.AddScalar("sharded_storm_events", static_cast<double>(sharded_fires));
    for (const ShardRun& run : shard_runs) {
      const std::string suffix = "_" + std::to_string(run.shards) + "_shards";
      const double eps = static_cast<double>(run.fires) / (run.wall.median_ms / 1e3);
      json.AddScalar("sharded_events_per_sec" + suffix, eps);
      json.AddScalar("sharded_speedup" + suffix, serial_eps > 0.0 ? eps / serial_eps : 0.0);
      json.AddScalar("window_syncs" + suffix, static_cast<double>(run.windows));
      json.AddScalar("cross_shard_parcels" + suffix, static_cast<double>(run.parcels));
      json.AddScalar("shard_imbalance" + suffix, run.imbalance);
      json.AddResult("sharded_storm" + suffix, run.wall);
    }
    for (size_t shard = 0; shard < max_shard_events.size(); ++shard) {
      json.AddScalar("shard_events_8_shards_" + std::to_string(shard),
                     static_cast<double>(max_shard_events[shard]));
    }
    json.AddScalar("stats_sim_window_syncs",
                   static_cast<double>(sharded_stats.sim_window_syncs));
    json.AddScalar("stats_sim_cross_shard_messages",
                   static_cast<double>(sharded_stats.sim_cross_shard_messages));
    json.AddScalar("stats_sim_shard_imbalance", sharded_stats.sim_shard_imbalance);
    json.AddScalar("campaigns", n);
    json.AddScalar("campaign_ms", sweep_wall.mean_ms / n);
    json.AddScalar("executor_events", static_cast<double>(executor_events));
    json.AddScalar("executor_events_per_sec", sweep_eps);
    json.AddScalar("ring_cache_hits", static_cast<double>(ring_hits));
    json.AddScalar("ring_cache_misses", static_cast<double>(ring_misses));
    json.AddScalar("ring_cache_hit_rate", hit_rate);
    json.AddResult("storm_legacy", legacy_wall);
    json.AddResult("storm_current", current_wall);
    json.AddResult("chaos_sweep", sweep_wall);
    json.WriteTo(json_path);
  }
}

}  // namespace
}  // namespace varuna

int main(int argc, char** argv) {
  varuna::Run(argc, argv);
  return 0;
}
