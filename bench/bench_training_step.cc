// Training-step substrate perf: the numeric hot path every convergence
// experiment (Fig. 9 / Fig. 10) spends its wall-clock in. Times one full
// mini-batch of micro-batched gradient accumulation on the Fig. 9 model shape
// (vocab 16, width 24, 6 MLP blocks, batch 128, micro-batch 8) through four
// substrate configurations:
//   * seed          — the frozen pre-optimization substrate (transcribed
//                     below): triple-loop allocating GEMM kernels and
//                     by-value layers that copy inputs and allocate every
//                     intermediate;
//   * blocked       — cache-blocked, SIMD, B-packed kernels through the
//                     by-value ForwardBackward path;
//   * blocked+arena — blocked kernels through the zero-allocation TrainStep
//                     (arena scratch, explicit-output layers, view splits);
//   * pooled xN     — blocked+arena with micro-batches fanned over the
//                     deterministic thread pool (N = hardware threads).
// An equivalence gate runs before any timing: all in-tree variants must be
// bit-identical to each other; the seed substrate must match bitwise on the
// loss and every weight gradient, and to float tolerance on the 1-D
// (bias/gain) gradients — the seed accumulated those row-by-row straight into
// the running gradient, while the new substrate forms a per-micro-batch delta
// first (the two-phase rule that makes pooled execution order-free), so the
// same sum is associated differently. Writes BENCH_training_step.json
// (--json <path> overrides; --smoke for 1x1 CI runs).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace varuna {
namespace {

constexpr int kVocab = 16;
constexpr int kWidth = 24;
constexpr int kBlocks = 6;
constexpr int kBatch = 128;
constexpr int kMicrobatch = 8;

// --- Frozen seed substrate ---------------------------------------------------
// Transcribed from the v0 tree (src/tensor/tensor.cc and src/nn/layers.cc at
// the growth seed): the exact code the optimized substrate replaced, kept
// verbatim as the bench baseline. The in-tree naive *kernel* tier alone would
// under-count the win — it already runs through the reworked layers, so the
// memory/layout work would be credited to the baseline it was measured
// against.
namespace seedsub {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  const int m = a.dim(0);
  const int k = a.dim(1);
  const int n = b.dim(1);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float aip = a.data()[static_cast<size_t>(i) * k + p];
      if (aip == 0.0f) {
        continue;
      }
      const float* b_row = b.data() + static_cast<size_t>(p) * n;
      float* c_row = c.data() + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        c_row[j] += aip * b_row[j];
      }
    }
  }
  return c;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  const int m = a.dim(0);
  const int k = a.dim(1);
  const int n = b.dim(0);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const float* a_row = a.data() + static_cast<size_t>(i) * k;
      const float* b_row = b.data() + static_cast<size_t>(j) * k;
      float sum = 0.0f;
      for (int p = 0; p < k; ++p) {
        sum += a_row[p] * b_row[p];
      }
      c.data()[static_cast<size_t>(i) * n + j] = sum;
    }
  }
  return c;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  const int k = a.dim(0);
  const int m = a.dim(1);
  const int n = b.dim(1);
  Tensor c({m, n});
  for (int p = 0; p < k; ++p) {
    const float* a_row = a.data() + static_cast<size_t>(p) * m;
    const float* b_row = b.data() + static_cast<size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float api = a_row[i];
      if (api == 0.0f) {
        continue;
      }
      float* c_row = c.data() + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        c_row[j] += api * b_row[j];
      }
    }
  }
  return c;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  for (int64_t i = 0; i < c.size(); ++i) {
    c[i] += b[i];
  }
  return c;
}

Tensor AddRowVector(const Tensor& a, const Tensor& row) {
  Tensor c = a;
  const int n = a.dim(1);
  for (int i = 0; i < a.dim(0); ++i) {
    for (int j = 0; j < n; ++j) {
      c.data()[static_cast<size_t>(i) * n + j] += row[j];
    }
  }
  return c;
}

constexpr float kGeluC = 0.7978845608f;  // sqrt(2/pi)

float GeluValue(float x) {
  const float inner = kGeluC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

float GeluDerivative(float x) {
  const float inner = kGeluC * (x + 0.044715f * x * x * x);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
}

struct Linear {
  Tensor weight, bias, weight_grad, bias_grad, input;

  Tensor Forward(const Tensor& x) {
    input = x;
    return seedsub::AddRowVector(seedsub::MatMul(x, weight), bias);
  }

  Tensor Backward(const Tensor& grad_output) {
    weight_grad.AddInPlace(seedsub::MatMulTransposeA(input, grad_output));
    const int n = grad_output.dim(1);
    for (int i = 0; i < grad_output.dim(0); ++i) {
      for (int j = 0; j < n; ++j) {
        bias_grad[j] += grad_output.data()[static_cast<size_t>(i) * n + j];
      }
    }
    return seedsub::MatMulTransposeB(grad_output, weight);
  }
};

struct Gelu {
  Tensor input;

  Tensor Forward(const Tensor& x) {
    input = x;
    Tensor out = x;
    for (int64_t i = 0; i < out.size(); ++i) {
      out[i] = GeluValue(out[i]);
    }
    return out;
  }

  Tensor Backward(const Tensor& grad_output) {
    Tensor grad = grad_output;
    for (int64_t i = 0; i < grad.size(); ++i) {
      grad[i] *= GeluDerivative(input[i]);
    }
    return grad;
  }
};

struct LayerNorm {
  Tensor gain, bias, gain_grad, bias_grad, normalized, inv_std;

  Tensor Forward(const Tensor& x) {
    const int rows = x.dim(0);
    const int n = x.dim(1);
    normalized = Tensor({rows, n});
    inv_std = Tensor({rows});
    Tensor out({rows, n});
    constexpr float kEpsilon = 1e-5f;
    for (int i = 0; i < rows; ++i) {
      const float* row = x.data() + static_cast<size_t>(i) * n;
      float mean = 0.0f;
      for (int j = 0; j < n; ++j) {
        mean += row[j];
      }
      mean /= n;
      float variance = 0.0f;
      for (int j = 0; j < n; ++j) {
        const float centered = row[j] - mean;
        variance += centered * centered;
      }
      variance /= n;
      const float s = 1.0f / std::sqrt(variance + kEpsilon);
      inv_std[i] = s;
      for (int j = 0; j < n; ++j) {
        const float norm = (row[j] - mean) * s;
        normalized.data()[static_cast<size_t>(i) * n + j] = norm;
        out.data()[static_cast<size_t>(i) * n + j] = norm * gain[j] + bias[j];
      }
    }
    return out;
  }

  Tensor Backward(const Tensor& grad_output) {
    const int rows = grad_output.dim(0);
    const int n = grad_output.dim(1);
    Tensor grad_input({rows, n});
    for (int i = 0; i < rows; ++i) {
      const float* g_row = grad_output.data() + static_cast<size_t>(i) * n;
      const float* norm_row = normalized.data() + static_cast<size_t>(i) * n;
      float sum_g = 0.0f;
      float sum_g_norm = 0.0f;
      for (int j = 0; j < n; ++j) {
        const float g_hat = g_row[j] * gain[j];
        sum_g += g_hat;
        sum_g_norm += g_hat * norm_row[j];
        gain_grad[j] += g_row[j] * norm_row[j];
        bias_grad[j] += g_row[j];
      }
      const float inv_n = 1.0f / n;
      for (int j = 0; j < n; ++j) {
        const float g_hat = g_row[j] * gain[j];
        grad_input.data()[static_cast<size_t>(i) * n + j] =
            inv_std[i] * (g_hat - inv_n * sum_g - norm_row[j] * inv_n * sum_g_norm);
      }
    }
    return grad_input;
  }
};

struct MlpBlock {
  LayerNorm norm;
  Linear up;
  Gelu gelu;
  Linear down;

  Tensor Forward(const Tensor& x) {
    return seedsub::Add(x, down.Forward(gelu.Forward(up.Forward(norm.Forward(x)))));
  }

  Tensor Backward(const Tensor& grad_output) {
    Tensor branch = norm.Backward(up.Backward(gelu.Backward(down.Backward(grad_output))));
    return seedsub::Add(grad_output, branch);
  }
};

struct Model {
  Linear embed;
  std::vector<MlpBlock> blocks;
  Linear head;

  Tensor Forward(const Tensor& x) {
    Tensor h = embed.Forward(x);
    for (MlpBlock& block : blocks) {
      h = block.Forward(h);
    }
    return head.Forward(h);
  }

  void Backward(const Tensor& grad_output) {
    Tensor g = head.Backward(grad_output);
    for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
      g = it->Backward(g);
    }
    embed.Backward(g);
  }

  // Parameter/gradient pointers in BuildBlockModel order, so the seed model
  // can be initialized from (and compared against) an in-tree trainer.
  std::vector<Tensor*> Parameters() {
    std::vector<Tensor*> params = {&embed.weight, &embed.bias};
    for (MlpBlock& block : blocks) {
      for (Tensor* p : {&block.norm.gain, &block.norm.bias, &block.up.weight, &block.up.bias,
                        &block.down.weight, &block.down.bias}) {
        params.push_back(p);
      }
    }
    params.push_back(&head.weight);
    params.push_back(&head.bias);
    return params;
  }

  std::vector<Tensor*> Gradients() {
    std::vector<Tensor*> grads = {&embed.weight_grad, &embed.bias_grad};
    for (MlpBlock& block : blocks) {
      for (Tensor* g : {&block.norm.gain_grad, &block.norm.bias_grad, &block.up.weight_grad,
                        &block.up.bias_grad, &block.down.weight_grad, &block.down.bias_grad}) {
        grads.push_back(g);
      }
    }
    grads.push_back(&head.weight_grad);
    grads.push_back(&head.bias_grad);
    return grads;
  }
};

// Builds the seed model with parameters copied from `params` (BuildBlockModel
// order); gradients are zeroed at matching shapes.
Model FromParameters(const std::vector<Tensor*>& params) {
  Model model;
  model.blocks.resize(kBlocks);
  std::vector<Tensor*> own = model.Parameters();
  VARUNA_CHECK_EQ(own.size(), params.size());
  for (size_t i = 0; i < own.size(); ++i) {
    *own[i] = *params[i];
  }
  std::vector<Tensor*> grads = model.Gradients();
  for (size_t i = 0; i < grads.size(); ++i) {
    *grads[i] = Tensor(params[i]->shape());
  }
  return model;
}

// The seed trainer loop: copy-splitting micro-batches, by-value layer calls,
// gradient accumulation scaled to the full-batch mean.
double ForwardBackward(Model* model, const Batch& batch, int microbatch_size) {
  const std::vector<Batch> microbatches = SplitIntoMicrobatches(batch, microbatch_size);
  const float scale = 1.0f / static_cast<float>(microbatches.size());
  double total_loss = 0.0;
  SoftmaxCrossEntropy loss;
  for (const Batch& microbatch : microbatches) {
    const Tensor logits = model->Forward(microbatch.inputs);
    total_loss += loss.Loss(logits, microbatch.targets);
    Tensor grad = loss.Backward();
    grad.Scale(scale);
    model->Backward(grad);
  }
  return total_loss / static_cast<double>(microbatches.size());
}

void ZeroGradients(Model* model) {
  for (Tensor* grad : model->Gradients()) {
    grad->Fill(0.0f);
  }
}

}  // namespace seedsub

std::unique_ptr<Sequential> FreshModel() {
  Rng rng(42);
  return BuildBlockModel(kVocab, kWidth, kBlocks, &rng);
}

// Snapshot of (loss, all gradients) after one accumulation over `batch`.
struct StepResult {
  double loss = 0.0;
  std::vector<Tensor> grads;
};

StepResult RunOnce(ReferenceTrainer* trainer, const Batch& batch, bool fast_path) {
  trainer->model()->ZeroGradients();
  StepResult result;
  result.loss = fast_path ? trainer->TrainStep(batch, kMicrobatch)
                          : trainer->ForwardBackward(batch, kMicrobatch);
  for (Tensor* grad : trainer->Gradients()) {
    result.grads.push_back(*grad);
  }
  return result;
}

bool SameResult(const StepResult& a, const StepResult& b) {
  if (a.loss != b.loss || a.grads.size() != b.grads.size()) {
    return false;
  }
  for (size_t i = 0; i < a.grads.size(); ++i) {
    if (!Identical(a.grads[i], b.grads[i])) {
      return false;
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  std::string json_path = JsonPathFromArgs(argc, argv);
  if (json_path.empty()) {
    json_path = "BENCH_training_step.json";
  }
  const BenchMode mode = ModeFromArgs(argc, argv);
  const int threads = ThreadPool::DefaultThreadCount();

  std::printf("=== training-step substrate: Fig. 9 shape "
              "(vocab %d, width %d, %d blocks, batch %d, microbatch %d) ===\n\n",
              kVocab, kWidth, kBlocks, kBatch, kMicrobatch);

  Rng data_rng(1234);
  MarkovTask task(kVocab, 99, 1.5);
  const Batch batch = task.Sample(kBatch, &data_rng);

  // One trainer per variant, all cloned from identical initial parameters
  // (FreshModel reseeds), so gradients must agree bit for bit.
  ReferenceTrainer naive_trainer(FreshModel());
  ReferenceTrainer blocked_trainer(FreshModel());
  ReferenceTrainer arena_trainer(FreshModel());
  ReferenceTrainer pooled_trainer(FreshModel(), MathOptions{threads});
  seedsub::Model seed_model = seedsub::FromParameters(naive_trainer.Parameters());

  // --- Equivalence gate: refuse to time divergent variants. -----------------
  StepResult seed;
  seed.loss = seedsub::ForwardBackward(&seed_model, batch, kMicrobatch);
  for (Tensor* grad : seed_model.Gradients()) {
    seed.grads.push_back(*grad);
  }
  SetGemmKernel(GemmKernel::kNaive);
  const StepResult golden = RunOnce(&naive_trainer, batch, /*fast_path=*/false);
  SetGemmKernel(GemmKernel::kBlocked);
  const StepResult blocked = RunOnce(&blocked_trainer, batch, /*fast_path=*/false);
  const StepResult arena = RunOnce(&arena_trainer, batch, /*fast_path=*/true);
  const StepResult pooled = RunOnce(&pooled_trainer, batch, /*fast_path=*/true);
  VARUNA_CHECK(SameResult(golden, blocked)) << "blocked kernels diverged from naive";
  VARUNA_CHECK(SameResult(golden, arena)) << "arena TrainStep diverged from naive";
  VARUNA_CHECK(SameResult(golden, pooled)) << "pooled TrainStep diverged from naive";
  // Seed vs new substrate: loss and 2-D (weight) gradients are computed in
  // the exact seed float order, so they must match bitwise. 1-D (bias/gain)
  // gradients carry the same addends in a different association (two-phase
  // deltas vs the seed's direct row accumulation), so they match to float
  // tolerance only; the max deviation is printed and bounded.
  VARUNA_CHECK_EQ(seed.loss, golden.loss) << "seed substrate loss diverged";
  VARUNA_CHECK_EQ(seed.grads.size(), golden.grads.size());
  float max_vector_grad_diff = 0.0f;
  for (size_t i = 0; i < seed.grads.size(); ++i) {
    if (seed.grads[i].shape().size() == 2u) {
      VARUNA_CHECK(Identical(seed.grads[i], golden.grads[i]))
          << "seed weight gradient " << i << " diverged";
    } else {
      max_vector_grad_diff =
          std::max(max_vector_grad_diff, MaxAbsDiff(seed.grads[i], golden.grads[i]));
    }
  }
  VARUNA_CHECK_LT(max_vector_grad_diff, 1e-6f) << "seed bias/gain gradients diverged";
  std::printf("equivalence gate: in-tree variants bit-identical (loss %.6f, %zu gradient "
              "tensors); seed substrate bitwise on loss + weight grads, bias/gain grads "
              "within %.2e\n\n",
              golden.loss, golden.grads.size(), static_cast<double>(max_vector_grad_diff));

  // --- Timing. --------------------------------------------------------------
  const int warmup = mode.Warmup(10);
  const int repeats = mode.Repeats(50);
  double sink = 0.0;

  const BenchStats seed_stats = TimeIt(warmup, repeats, [&] {
    seedsub::ZeroGradients(&seed_model);
    sink += seedsub::ForwardBackward(&seed_model, batch, kMicrobatch);
  });
  const BenchStats blocked_stats = TimeIt(warmup, repeats, [&] {
    blocked_trainer.model()->ZeroGradients();
    sink += blocked_trainer.ForwardBackward(batch, kMicrobatch);
  });
  const BenchStats arena_stats = TimeIt(warmup, repeats, [&] {
    arena_trainer.model()->ZeroGradients();
    sink += arena_trainer.TrainStep(batch, kMicrobatch);
  });
  // Zero-alloc contract, measured in the bench too: the timed region must not
  // have touched the allocator for tensor buffers.
  const int64_t allocs_before = arena_trainer.heap_allocations();
  arena_trainer.model()->ZeroGradients();
  sink += arena_trainer.TrainStep(batch, kMicrobatch);
  const int64_t allocs_after = arena_trainer.heap_allocations();
  VARUNA_CHECK_EQ(allocs_before, allocs_after)
      << "steady-state TrainStep allocated tensor buffers";
  const BenchStats pooled_stats = TimeIt(warmup, repeats, [&] {
    pooled_trainer.model()->ZeroGradients();
    sink += pooled_trainer.TrainStep(batch, kMicrobatch);
  });
  VARUNA_CHECK_GT(sink, 0.0);

  Table table({"variant", "median (ms)", "min (ms)", "mean (ms)", "speedup vs seed"});
  const auto add_row = [&](const std::string& name, const BenchStats& stats) {
    table.AddRow({name, Table::Num(stats.median_ms, 3), Table::Num(stats.min_ms, 3),
                  Table::Num(stats.mean_ms, 3),
                  Table::Num(seed_stats.median_ms / stats.median_ms, 2) + "x"});
  };
  add_row("seed substrate (naive, by-value)", seed_stats);
  add_row("blocked kernels, by-value", blocked_stats);
  add_row("blocked + arena (TrainStep)", arena_stats);
  add_row("pooled x" + std::to_string(threads), pooled_stats);
  std::printf("%s\n", table.Render().c_str());

  const double arena_speedup = seed_stats.median_ms / arena_stats.median_ms;
  std::printf("blocked+arena speedup over seed substrate: %.2fx (target >= 3x); "
              "pooled x%d: %.2fx%s\n",
              arena_speedup, threads, seed_stats.median_ms / pooled_stats.median_ms,
              threads < 2 ? " (single hardware thread: pool adds no parallelism)" : "");
  std::printf("steady-state TrainStep heap allocations per step: 0 (asserted)\n");

  BenchJsonWriter json("bench_training_step");
  AddBuildMetadata(&json);
  json.AddScalar("vocab", kVocab);
  json.AddScalar("width", kWidth);
  json.AddScalar("blocks", kBlocks);
  json.AddScalar("batch", kBatch);
  json.AddScalar("microbatch", kMicrobatch);
  json.AddScalar("pool_threads", threads);
  json.AddScalar("speedup_blocked_arena_vs_seed", arena_speedup);
  json.AddScalar("speedup_pooled_vs_seed", seed_stats.median_ms / pooled_stats.median_ms);
  json.AddResult("seed_substrate", seed_stats);
  json.AddResult("blocked_by_value", blocked_stats);
  json.AddResult("blocked_arena_trainstep", arena_stats);
  json.AddResult("pooled_trainstep", pooled_stats);
  if (!json.WriteTo(json_path)) {
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace varuna

int main(int argc, char** argv) { return varuna::Run(argc, argv); }
