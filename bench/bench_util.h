// Shared helpers for the benchmark binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <string>

#include "src/varuna/varuna.h"

namespace varuna {

struct MegatronSetup {
  TransformerSpec spec;
  int tensor_parallel = 8;
  int data_parallel = 1;
  int microbatch_size = 8;
  double total_batch = 8192.0;
  VmType vm = Nc24V3();
  FabricSpec fabric = CommodityFabric();
};

// Evaluates the Megatron intra-layer baseline on a fresh cluster big enough
// for the requested configuration.
inline IntraLayerResult EvaluateMegatron(const MegatronSetup& setup) {
  Cluster cluster(setup.fabric);
  const int gpus = setup.tensor_parallel * setup.data_parallel;
  const int vms = (gpus + setup.vm.node.num_gpus - 1) / setup.vm.node.num_gpus + 1;
  cluster.AddVms(setup.vm, vms);
  IntraLayerConfig config;
  config.tensor_parallel = setup.tensor_parallel;
  config.data_parallel = setup.data_parallel;
  config.microbatch_size = setup.microbatch_size;
  config.total_batch = setup.total_batch;
  return EvaluateIntraLayer(setup.spec, cluster, config).value();
}

inline std::string ConfigLabel(int p, int d) {
  return std::to_string(p) + "x" + std::to_string(d);
}

}  // namespace varuna

#endif  // BENCH_BENCH_UTIL_H_
