// Shared helpers for the benchmark binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/varuna/varuna.h"

namespace varuna {

// --- Wall-clock micro-benchmark harness (warmup + repeats) ------------------
// Benches live outside src/, so wall-clock reads are allowed here (the
// determinism lint guards the simulators, not the measurement harness).

struct BenchStats {
  double min_ms = 0.0;
  double median_ms = 0.0;
  double mean_ms = 0.0;
  int repeats = 0;
};

// Runs `fn` `warmup` times unmeasured, then `repeats` measured times.
// Median is the headline (robust to scheduler noise), min bounds the
// intrinsic cost, mean exposes tail contamination.
template <typename Fn>
BenchStats TimeIt(int warmup, int repeats, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < warmup; ++i) {
    fn();
  }
  std::vector<double> samples_ms;
  samples_ms.reserve(static_cast<size_t>(std::max(1, repeats)));
  for (int i = 0; i < std::max(1, repeats); ++i) {
    const Clock::time_point begin = Clock::now();
    fn();
    const Clock::time_point end = Clock::now();
    samples_ms.push_back(
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(end - begin)
            .count());
  }
  std::sort(samples_ms.begin(), samples_ms.end());
  BenchStats stats;
  stats.repeats = static_cast<int>(samples_ms.size());
  stats.min_ms = samples_ms.front();
  const size_t mid = samples_ms.size() / 2;
  stats.median_ms = samples_ms.size() % 2 == 1
                        ? samples_ms[mid]
                        : 0.5 * (samples_ms[mid - 1] + samples_ms[mid]);
  for (const double sample : samples_ms) {
    stats.mean_ms += sample;
  }
  stats.mean_ms /= static_cast<double>(samples_ms.size());
  return stats;
}

// Parses `--json <path>` from argv; returns empty string when absent.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return argv[i + 1];
    }
  }
  return "";
}

// Minimal ordered JSON emitter for BENCH_*.json perf-trajectory files:
// a flat object of scalars plus one "results" array of named BenchStats.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  void AddScalar(const std::string& key, double value) { scalars_.emplace_back(key, value); }

  void AddResult(const std::string& name, const BenchStats& stats) {
    results_.emplace_back(name, stats);
  }

  // Returns false (after printing a warning) when the file cannot be written.
  bool WriteTo(const std::string& path) const {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(file, "{\n  \"bench\": \"%s\"", bench_name_.c_str());
    for (const auto& [key, value] : scalars_) {
      std::fprintf(file, ",\n  \"%s\": %.6g", key.c_str(), value);
    }
    std::fprintf(file, ",\n  \"results\": [");
    for (size_t i = 0; i < results_.size(); ++i) {
      const auto& [name, stats] = results_[i];
      std::fprintf(file,
                   "%s\n    {\"name\": \"%s\", \"min_ms\": %.4f, \"median_ms\": %.4f, "
                   "\"mean_ms\": %.4f, \"repeats\": %d}",
                   i == 0 ? "" : ",", name.c_str(), stats.min_ms, stats.median_ms,
                   stats.mean_ms, stats.repeats);
    }
    std::fprintf(file, "\n  ]\n}\n");
    std::fclose(file);
    return true;
  }

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, BenchStats>> results_;
};

struct MegatronSetup {
  TransformerSpec spec;
  int tensor_parallel = 8;
  int data_parallel = 1;
  int microbatch_size = 8;
  double total_batch = 8192.0;
  VmType vm = Nc24V3();
  FabricSpec fabric = CommodityFabric();
};

// Evaluates the Megatron intra-layer baseline on a fresh cluster big enough
// for the requested configuration.
inline IntraLayerResult EvaluateMegatron(const MegatronSetup& setup) {
  Cluster cluster(setup.fabric);
  const int gpus = setup.tensor_parallel * setup.data_parallel;
  const int vms = (gpus + setup.vm.node.num_gpus - 1) / setup.vm.node.num_gpus + 1;
  cluster.AddVms(setup.vm, vms);
  IntraLayerConfig config;
  config.tensor_parallel = setup.tensor_parallel;
  config.data_parallel = setup.data_parallel;
  config.microbatch_size = setup.microbatch_size;
  config.total_batch = setup.total_batch;
  return EvaluateIntraLayer(setup.spec, cluster, config).value();
}

inline std::string ConfigLabel(int p, int d) {
  return std::to_string(p) + "x" + std::to_string(d);
}

}  // namespace varuna

#endif  // BENCH_BENCH_UTIL_H_
