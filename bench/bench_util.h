// Shared helpers for the benchmark binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__)
#include <sys/utsname.h>
#endif

#include "src/varuna/varuna.h"

namespace varuna {

// --- Wall-clock micro-benchmark harness (warmup + repeats) ------------------
// Benches live outside src/, so wall-clock reads are allowed here (the
// determinism lint guards the simulators, not the measurement harness).

struct BenchStats {
  double min_ms = 0.0;
  double median_ms = 0.0;
  double mean_ms = 0.0;
  int repeats = 0;
};

// Runs `fn` `warmup` times unmeasured, then `repeats` measured times.
// Median is the headline (robust to scheduler noise), min bounds the
// intrinsic cost, mean exposes tail contamination.
template <typename Fn>
BenchStats TimeIt(int warmup, int repeats, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < warmup; ++i) {
    fn();
  }
  std::vector<double> samples_ms;
  samples_ms.reserve(static_cast<size_t>(std::max(1, repeats)));
  for (int i = 0; i < std::max(1, repeats); ++i) {
    const Clock::time_point begin = Clock::now();
    fn();
    const Clock::time_point end = Clock::now();
    samples_ms.push_back(
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(end - begin)
            .count());
  }
  std::sort(samples_ms.begin(), samples_ms.end());
  BenchStats stats;
  stats.repeats = static_cast<int>(samples_ms.size());
  stats.min_ms = samples_ms.front();
  const size_t mid = samples_ms.size() / 2;
  stats.median_ms = samples_ms.size() % 2 == 1
                        ? samples_ms[mid]
                        : 0.5 * (samples_ms[mid - 1] + samples_ms[mid]);
  for (const double sample : samples_ms) {
    stats.mean_ms += sample;
  }
  stats.mean_ms /= static_cast<double>(samples_ms.size());
  return stats;
}

// One measured wall-clock run, no warmup. For measurements that are only
// meaningful once — e.g. sweeping a previously-unseen input, where a repeat
// would hit a memo and measure nothing; sample across inputs instead.
template <typename Fn>
double TimeOnceMs(Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point begin = Clock::now();
  fn();
  const Clock::time_point end = Clock::now();
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(end - begin)
      .count();
}

// Parses `--json <path>` from argv; returns empty string when absent.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return argv[i + 1];
    }
  }
  return "";
}

// True when `flag` (e.g. "--smoke") appears in argv.
inline bool FlagInArgs(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) {
      return true;
    }
  }
  return false;
}

// Parses `<flag> <int>` from argv; returns `fallback` when absent.
inline int IntFromArgs(int argc, char** argv, const std::string& flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) {
      return std::atoi(argv[i + 1]);
    }
  }
  return fallback;
}

// Repeat-count policy: `--smoke` clamps every TimeIt to 1 warmup + 1 repeat so
// CI can prove the bench binaries still run without paying measurement time.
struct BenchMode {
  bool smoke = false;
  int Warmup(int full) const { return smoke ? 1 : full; }
  int Repeats(int full) const { return smoke ? 1 : full; }
};

inline BenchMode ModeFromArgs(int argc, char** argv) {
  BenchMode mode;
  mode.smoke = FlagInArgs(argc, argv, "--smoke");
  return mode;
}

// Minimal ordered JSON emitter for BENCH_*.json perf-trajectory files:
// a flat object of scalars plus one "results" array of named BenchStats.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  void AddScalar(const std::string& key, double value) { scalars_.emplace_back(key, value); }

  void AddString(const std::string& key, const std::string& value) {
    std::string escaped;
    escaped.reserve(value.size());
    for (const char c : value) {
      if (c == '"' || c == '\\') {
        escaped.push_back('\\');
      }
      escaped.push_back(c == '\n' ? ' ' : c);
    }
    strings_.emplace_back(key, escaped);
  }

  void AddResult(const std::string& name, const BenchStats& stats) {
    results_.emplace_back(name, stats);
  }

  // Returns false (after printing a warning) when the file cannot be written.
  bool WriteTo(const std::string& path) const {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(file, "{\n  \"bench\": \"%s\"", bench_name_.c_str());
    for (const auto& [key, value] : strings_) {
      std::fprintf(file, ",\n  \"%s\": \"%s\"", key.c_str(), value.c_str());
    }
    for (const auto& [key, value] : scalars_) {
      std::fprintf(file, ",\n  \"%s\": %.6g", key.c_str(), value);
    }
    std::fprintf(file, ",\n  \"results\": [");
    for (size_t i = 0; i < results_.size(); ++i) {
      const auto& [name, stats] = results_[i];
      std::fprintf(file,
                   "%s\n    {\"name\": \"%s\", \"min_ms\": %.4f, \"median_ms\": %.4f, "
                   "\"mean_ms\": %.4f, \"repeats\": %d}",
                   i == 0 ? "" : ",", name.c_str(), stats.min_ms, stats.median_ms,
                   stats.mean_ms, stats.repeats);
    }
    std::fprintf(file, "\n  ]\n}\n");
    std::fclose(file);
    return true;
  }

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, std::string>> strings_;  // Pre-escaped.
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, BenchStats>> results_;
};

// Records the build/host provenance every BENCH_*.json needs to be
// comparable across commits: compiler, optimization flags, and the machine.
inline void AddBuildMetadata(BenchJsonWriter* json) {
  json->AddString("compiler", __VERSION__);
#if defined(VARUNA_BENCH_FLAGS)
#define VARUNA_BENCH_STRINGIZE_IMPL(x) #x
#define VARUNA_BENCH_STRINGIZE(x) VARUNA_BENCH_STRINGIZE_IMPL(x)
  json->AddString("cxx_flags", VARUNA_BENCH_STRINGIZE(VARUNA_BENCH_FLAGS));
#if defined(VARUNA_BENCH_KERNEL_SIMD)
  json->AddString("kernel_simd", VARUNA_BENCH_STRINGIZE(VARUNA_BENCH_KERNEL_SIMD));
#endif
#undef VARUNA_BENCH_STRINGIZE
#undef VARUNA_BENCH_STRINGIZE_IMPL
#else
  json->AddString("cxx_flags", "unknown");
#endif
#if defined(__unix__)
  utsname uts{};
  if (uname(&uts) == 0) {
    json->AddString("host_os", std::string(uts.sysname) + " " + uts.release);
    json->AddString("host_machine", uts.machine);
  }
#endif
  json->AddScalar("host_hardware_threads",
                  static_cast<double>(std::thread::hardware_concurrency()));
}

struct MegatronSetup {
  TransformerSpec spec;
  int tensor_parallel = 8;
  int data_parallel = 1;
  int microbatch_size = 8;
  double total_batch = 8192.0;
  VmType vm = Nc24V3();
  FabricSpec fabric = CommodityFabric();
};

// Evaluates the Megatron intra-layer baseline on a fresh cluster big enough
// for the requested configuration.
inline IntraLayerResult EvaluateMegatron(const MegatronSetup& setup) {
  Cluster cluster(setup.fabric);
  const int gpus = setup.tensor_parallel * setup.data_parallel;
  const int vms = (gpus + setup.vm.node.num_gpus - 1) / setup.vm.node.num_gpus + 1;
  cluster.AddVms(setup.vm, vms);
  IntraLayerConfig config;
  config.tensor_parallel = setup.tensor_parallel;
  config.data_parallel = setup.data_parallel;
  config.microbatch_size = setup.microbatch_size;
  config.total_batch = setup.total_batch;
  return EvaluateIntraLayer(setup.spec, cluster, config).value();
}

inline std::string ConfigLabel(int p, int d) {
  return std::to_string(p) + "x" + std::to_string(d);
}

}  // namespace varuna

#endif  // BENCH_BENCH_UTIL_H_
