# Benchmark binaries: one per paper table/figure. They are defined from the
# top-level CMakeLists via include() so that build/bench/ contains only the
# runnable binaries (for `for b in build/bench/*; do $b; done`).

string(TOUPPER "${CMAKE_BUILD_TYPE}" _varuna_bench_build_type)
string(STRIP "${CMAKE_CXX_FLAGS} ${CMAKE_CXX_FLAGS_${_varuna_bench_build_type}}"
       _varuna_bench_flags)

function(varuna_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${name} PRIVATE ${VARUNA_ALL_LIBS} benchmark::benchmark Threads::Threads)
  # Build provenance for BENCH_*.json (bench_util.h AddBuildMetadata). The
  # value is raw tokens; bench_util.h stringizes it (quoting here does not
  # survive every generator's escaping).
  target_compile_definitions(${name} PRIVATE
      "VARUNA_BENCH_FLAGS=${_varuna_bench_flags} (${CMAKE_BUILD_TYPE})")
  # The numeric-kernel targets may carry extra SIMD flags (top-level
  # CMakeLists); record them so kernel-speed comparisons across hosts are
  # interpretable.
  if(VARUNA_KERNEL_SIMD_FLAGS)
    target_compile_definitions(${name} PRIVATE
        "VARUNA_BENCH_KERNEL_SIMD=${VARUNA_KERNEL_SIMD_FLAGS}")
  else()
    target_compile_definitions(${name} PRIVATE
        "VARUNA_BENCH_KERNEL_SIMD=baseline")
  endif()
endfunction()

varuna_add_bench(fig3_spot_availability)
varuna_add_bench(fig4_schedule_comparison)
varuna_add_bench(fig5_gpt2_8b)
varuna_add_bench(fig6_gpt2_2_5b)
varuna_add_bench(fig7_gantt_20b)
varuna_add_bench(fig8_morphing_timeline)
varuna_add_bench(fig9_convergence)
varuna_add_bench(fig10_pipedream_divergence)
varuna_add_bench(tab3_pipeline_depth)
varuna_add_bench(tab4_20b_comparison)
varuna_add_bench(tab5_gpipe_comparison)
varuna_add_bench(tab6_pipeline_systems)
varuna_add_bench(tab7_simulator_accuracy)
varuna_add_bench(bench_chaos_campaigns)
varuna_add_bench(bench_sim_core)
varuna_add_bench(bench_config_search)
varuna_add_bench(bench_training_step)
varuna_add_bench(ablation_varuna_design)
