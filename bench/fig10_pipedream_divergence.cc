// Figure 10 (appendix): PipeDream-2BW-style asynchronous training diverges
// where synchronous training converges. Asynchronous pipeline parallelism
// applies gradients computed on weights that are `pipeline depth` updates
// stale; with momentum, the same hyper-parameters that are stable for
// synchronous SGD blow up under staleness — the loss "shoots up" exactly as
// in the paper's 355M GPT-2 run.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

namespace varuna {
namespace {

constexpr int kVocab = 12;
constexpr int kWidth = 16;
constexpr int kBlocks = 6;

void Run(int math_threads) {
  std::printf("=== Figure 10: PipeDream-2BW asynchronous divergence ===\n\n");
  MarkovTask task(kVocab, 6);
  const float lr = 0.1f;
  const float momentum = 0.9f;
  const int steps = 500;
  const int batch = 32;

  std::printf("SGD lr=%.2f momentum=%.2f, batch %d; staleness = pipeline depth.\n\n", lr,
              momentum, batch);
  std::printf("  step | sync (staleness 0) | async staleness 4 | async staleness 6\n");

  std::vector<int> stalenesses = {0, 4, 6};
  std::vector<std::unique_ptr<StaleGradientTrainer>> trainers;
  std::vector<Rng> streams;
  for (const int staleness : stalenesses) {
    Rng model_rng(77);
    trainers.push_back(std::make_unique<StaleGradientTrainer>(
        BuildBlockModel(kVocab, kWidth, kBlocks, &model_rng), staleness, lr, momentum,
        MathOptions{math_threads}));
    streams.emplace_back(31);  // Identical data stream for every variant.
  }
  std::vector<double> last(stalenesses.size(), 0.0);
  std::vector<int> diverged_at(stalenesses.size(), -1);
  for (int step = 0; step < steps; ++step) {
    for (size_t variant = 0; variant < trainers.size(); ++variant) {
      if (diverged_at[variant] >= 0) {
        continue;
      }
      const double loss = trainers[variant]->Step(task.Sample(batch, &streams[variant]));
      last[variant] = loss;
      if (std::isnan(loss) || loss > 50.0) {
        diverged_at[variant] = step;
      }
    }
    if (step % 25 == 0 || step == steps - 1) {
      std::printf("  %4d |", step);
      for (size_t variant = 0; variant < trainers.size(); ++variant) {
        if (diverged_at[variant] >= 0) {
          std::printf("       DIVERGED     |");
        } else {
          std::printf("      %8.4f      |", last[variant]);
        }
      }
      std::printf("\n");
    }
  }

  std::printf("\nOutcome:\n");
  for (size_t variant = 0; variant < trainers.size(); ++variant) {
    if (diverged_at[variant] >= 0) {
      std::printf("  staleness %d: loss shot up at step %d (diverged)\n",
                  stalenesses[variant], diverged_at[variant]);
    } else {
      std::printf("  staleness %d: converged, final loss %.4f\n", stalenesses[variant],
                  last[variant]);
    }
  }
  std::printf("\nPaper: PipeDream-2BW's 355M GPT-2 run diverged after 16K iterations with\n"
              "the published hyper-parameters, while synchronous (Varuna/GPipe-semantics)\n"
              "training converged — the cost of sacrificing sync-SGD semantics.\n");
}

}  // namespace
}  // namespace varuna

int main(int argc, char** argv) {
  varuna::Run(varuna::IntFromArgs(argc, argv, "--math-threads", 1));
  return 0;
}
