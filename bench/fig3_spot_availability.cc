// Figure 3: aggregate GPU availability when low-priority VMs with 1 and 4
// GPUs are requested over 16 hours. The paper's observation: 1-GPU VMs yield
// substantially more aggregate capacity than 4-GPU VMs.
#include <cstdio>
#include <string>

#include "src/varuna/varuna.h"

namespace varuna {
namespace {

std::string Sparkline(double value, double max_value, int width = 40) {
  const int filled = static_cast<int>(value / max_value * width + 0.5);
  return std::string(static_cast<size_t>(filled), '#') +
         std::string(static_cast<size_t>(width - filled), '.');
}

void Run() {
  std::printf("=== Figure 3: spot VM availability, 1-GPU vs 4-GPU VMs (16 h) ===\n\n");
  SimEngine engine;
  SpotMarket market(&engine, Rng(2024), 60.0);

  // Both pools target the same aggregate GPU budget (320 GPUs).
  SpotPoolDynamics single_gpu;
  single_gpu.mean_availability = 0.85;
  single_gpu.volatility = 0.18;
  single_gpu.preemption_hazard = 1.0 / (10.0 * kHour);
  single_gpu.max_grants_per_tick = 32;

  SpotPoolDynamics quad_gpu;
  quad_gpu.mean_availability = 0.45;
  quad_gpu.volatility = 0.30;
  quad_gpu.preemption_hazard = 1.0 / (6.0 * kHour);
  quad_gpu.max_grants_per_tick = 8;

  const int pool1 = market.AddPool(Nc6V3(), 320, single_gpu);
  const int pool4 = market.AddPool(Nc24V3(), 80, quad_gpu);
  market.SetDemand(pool1, 320);
  market.SetDemand(pool4, 80);
  market.Start();

  RunningStats gpus1;
  RunningStats gpus4;
  std::printf("hour | 1-GPU aggregate GPUs                      | 4-GPU aggregate GPUs\n");
  for (double t = 0.5 * kHour; t <= 16.0 * kHour; t += 0.5 * kHour) {
    engine.RunUntil(t);
    const int g1 = market.GrantedGpus(pool1);
    const int g4 = market.GrantedGpus(pool4);
    gpus1.Add(g1);
    gpus4.Add(g4);
    std::printf("%4.1f | %s %3d | %s %3d\n", t / kHour, Sparkline(g1, 320).c_str(), g1,
                Sparkline(g4, 320).c_str(), g4);
  }

  std::printf("\nMean aggregate GPUs over 16 h: 1-GPU VMs = %.0f, 4-GPU VMs = %.0f (%.1fx)\n",
              gpus1.mean(), gpus4.mean(), gpus1.mean() / gpus4.mean());
  std::printf("Paper's takeaway (Observation 4): 1-GPU low-priority VMs are markedly more\n"
              "available, so Varuna requests 1-GPU VMs and tolerates the extra networking.\n");
}

}  // namespace
}  // namespace varuna

int main() {
  varuna::Run();
  return 0;
}
