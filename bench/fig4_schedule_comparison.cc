// Figure 4: Varuna's micro-batch schedule contrasted against GPipe for a
// 4-stage pipeline with 5 micro-batches (unit times: F = R = 1, B = 2), plus
// a makespan sweep across pipeline shapes for all four schedule generators.
#include <cstdio>

#include "src/varuna/varuna.h"

namespace varuna {
namespace {

void Run() {
  std::printf("=== Figure 4: Varuna vs GPipe micro-batch schedules (4 stages, 5 ubatches) ===\n\n");
  const Schedule varuna = GenerateSchedule(ScheduleKind::kVaruna, 4, 5);
  const Schedule gpipe = GenerateSchedule(ScheduleKind::kGpipe, 4, 5);

  std::printf("(a) Varuna schedule  —  makespan %.0f units\n%s\n",
              ScheduleMakespanUnits(varuna), RenderScheduleGantt(varuna, 112).c_str());
  std::printf("(b) GPipe schedule   —  makespan %.0f units\n%s\n",
              ScheduleMakespanUnits(gpipe), RenderScheduleGantt(gpipe, 112).c_str());

  std::printf("Properties reproduced from the paper:\n");
  std::printf("  * Varuna finishes earlier than GPipe (%.0f vs %.0f units);\n",
              ScheduleMakespanUnits(varuna), ScheduleMakespanUnits(gpipe));
  std::printf("  * Varuna's idle time is distributed through the schedule (jitter buffers),\n"
              "    GPipe's is concentrated in the middle;\n");
  std::printf("  * Varuna's last stage never recomputes (room for the LM head);\n");
  std::printf("  * forwards are interspersed, feeding opportunistic scheduling.\n\n");

  std::printf("Makespan (unit times) across shapes:\n");
  Table table({"P x Nm", "Varuna", "GPipe", "1F1B", "DeepSpeed", "4Nm+3(P-1)"});
  for (const auto& [depth, microbatches] :
       {std::pair{4, 5}, {4, 16}, {8, 16}, {8, 64}, {16, 64}, {16, 256}}) {
    std::vector<std::string> row;
    row.push_back(std::to_string(depth) + " x " + std::to_string(microbatches));
    for (const ScheduleKind kind : {ScheduleKind::kVaruna, ScheduleKind::kGpipe,
                                    ScheduleKind::kOneFOneB, ScheduleKind::kDeepSpeed}) {
      row.push_back(Table::Num(ScheduleMakespanUnits(GenerateSchedule(kind, depth, microbatches)), 0));
    }
    // Reference scale: interior stages need 4 units per micro-batch (F+R+B).
    row.push_back(Table::Num(4.0 * microbatches + 3.0 * (depth - 1), 0));
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace varuna

int main() {
  varuna::Run();
  return 0;
}
