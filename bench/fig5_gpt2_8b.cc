// Figure 5: performance of Varuna and Megatron on GPT-2 8.3B (mini-batch
// 8192) across 64/128/300 commodity low-priority GPUs, plus the hypercluster
// comparison. Metrics: examples/s/GPU and useful TFLOP/s/GPU (recompute
// removed), as the paper reports.
#include <cstdio>

#include "bench/bench_util.h"

namespace varuna {
namespace {

void Run() {
  std::printf("=== Figure 5: GPT-2 8.3B — Varuna vs Megatron, mini-batch 8192 ===\n\n");
  const TransformerSpec spec = Gpt2_8_3B();
  Table table({"system", "cluster", "GPUs", "config", "ex/s/GPU", "TFLOP/s/GPU"});

  // --- Varuna on low-priority 1-GPU VMs: 18x{3,7,16} (54/126/288 GPUs).
  for (const auto& [gpus, replicas] : {std::pair{64, 3}, {128, 7}, {300, 16}}) {
    PipelineEvalRequest request;
    request.spec = spec;
    request.pipeline_depth = 18;
    request.data_parallel = replicas;
    request.microbatch_size = 4;
    request.total_batch = 8192;
    request.vm = Nc6V3();
    request.fabric = CommodityFabric();
    const PipelineEvalResult result = EvaluatePipeline(request);
    table.AddRow({"Varuna", "low-pri", std::to_string(gpus) + " (uses " +
                                            std::to_string(result.gpus_used) + ")",
                  ConfigLabel(18, replicas), Table::Num(result.examples_per_s_per_gpu, 3),
                  Table::Num(result.tflops_per_gpu, 1)});
  }

  // --- Megatron on commodity 4-GPU VMs: 16-way intra-layer (8.3B does not
  // fit 8-way in 16 GB), data-parallel over the rest.
  for (const auto& [gpus, replicas] : {std::pair{64, 4}, {128, 8}, {300, 18}}) {
    MegatronSetup setup;
    setup.spec = spec;
    setup.tensor_parallel = 16;
    setup.data_parallel = replicas;
    setup.microbatch_size = 8;
    const IntraLayerResult result = EvaluateMegatron(setup);
    table.AddRow({"Megatron", "low-pri", std::to_string(gpus), "T16 x D" + std::to_string(replicas),
                  Table::Num(result.examples_per_s_per_gpu, 4),
                  Table::Num(result.examples_per_s_per_gpu * 3.0 * spec.TotalFwdFlops() / 1e12,
                             2)});
  }

  // --- Hypercluster: Megatron with 16-way partitioning inside one DGX-2.
  {
    MegatronSetup setup;
    setup.spec = spec;
    setup.tensor_parallel = 16;
    setup.data_parallel = 16;
    setup.microbatch_size = 8;
    setup.vm = Dgx2();
    setup.fabric = HyperclusterFabric();
    const IntraLayerResult result = EvaluateMegatron(setup);
    table.AddRow({"Megatron", "hyper", "256", "T16 x D16",
                  Table::Num(result.examples_per_s_per_gpu, 3),
                  Table::Num(result.examples_per_s_per_gpu * 3.0 * spec.TotalFwdFlops() / 1e12,
                             1)});
  }
  {
    PipelineEvalRequest request;
    request.spec = spec;
    request.pipeline_depth = 18;
    request.data_parallel = 16;
    request.microbatch_size = 4;
    request.total_batch = 8192;
    request.vm = Dgx2();
    request.fabric = HyperclusterFabric();
    const PipelineEvalResult result = EvaluatePipeline(request);
    table.AddRow({"Varuna", "hyper", "288", ConfigLabel(18, 16),
                  Table::Num(result.examples_per_s_per_gpu, 3),
                  Table::Num(result.tflops_per_gpu, 1)});
  }

  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shapes to compare with the paper:\n"
      "  * Varuna >> Megatron on commodity VMs (paper: up to 18x; the 10 Gbps wire\n"
      "    cannot carry Megatron's ~5 GB/example/GPU of synchronous allreduces);\n"
      "  * Varuna on 5x-cheaper spot VMs beats Megatron on the hypercluster (paper: +17%%);\n"
      "  * Varuna-hyper > Megatron-hyper (paper: +48%%) — intra-layer partitioning is\n"
      "    not the best choice even with NVLink (Observation 1);\n"
      "  * Varuna per-GPU throughput decays slowly from 54 to 288 GPUs (near-linear\n"
      "    scaling; paper: -7.5%% over 5.1x more GPUs).\n");
}

}  // namespace
}  // namespace varuna

int main() {
  varuna::Run();
  return 0;
}
