// Figure 6: performance of Varuna and Megatron on GPT-2 2.5B (mini-batch
// 8192) on commodity VMs and the hypercluster, plus the §7.1.1 BERT-large
// result (Varuna 4x8 on commodity VMs vs fully data-parallel training).
#include <cstdio>

#include "bench/bench_util.h"

namespace varuna {
namespace {

void Run() {
  std::printf("=== Figure 6: GPT-2 2.5B — Varuna vs Megatron, mini-batch 8192 ===\n\n");
  const TransformerSpec spec = Gpt2_2_5B();
  Table table({"system", "cluster", "GPUs", "config", "ex/s/GPU", "TFLOP/s/GPU"});

  // Varuna low-pri: 9x{7,14,28} (63/126/252 GPUs).
  for (const auto& [gpus, replicas] : {std::pair{64, 7}, {128, 14}, {256, 28}}) {
    PipelineEvalRequest request;
    request.spec = spec;
    request.pipeline_depth = 9;
    request.data_parallel = replicas;
    request.microbatch_size = 4;
    request.total_batch = 8192;
    const PipelineEvalResult result = EvaluatePipeline(request);
    table.AddRow({"Varuna", "low-pri",
                  std::to_string(gpus) + " (uses " + std::to_string(result.gpus_used) + ")",
                  ConfigLabel(9, replicas), Table::Num(result.examples_per_s_per_gpu, 2),
                  Table::Num(result.tflops_per_gpu, 1)});
  }

  // Megatron low-pri: 2.5B fits 4-way intra-layer, i.e. within one NC24_v3
  // node (PCIe allreduces) — why the commodity gap is only ~4x for this model.
  for (const auto& [gpus, replicas] : {std::pair{64, 16}, {128, 32}, {256, 64}}) {
    MegatronSetup setup;
    setup.spec = spec;
    setup.tensor_parallel = 4;
    setup.data_parallel = replicas;
    setup.microbatch_size = 8;
    const IntraLayerResult result = EvaluateMegatron(setup);
    table.AddRow({"Megatron", "low-pri", std::to_string(gpus), "T4 x D" + std::to_string(replicas),
                  Table::Num(result.examples_per_s_per_gpu, 2),
                  Table::Num(result.examples_per_s_per_gpu * 3.0 * spec.TotalFwdFlops() / 1e12,
                             1)});
  }

  // Hypercluster pair.
  {
    MegatronSetup setup;
    setup.spec = spec;
    setup.tensor_parallel = 4;
    setup.data_parallel = 63;
    setup.microbatch_size = 8;
    setup.vm = Dgx2();
    setup.fabric = HyperclusterFabric();
    const IntraLayerResult result = EvaluateMegatron(setup);
    table.AddRow({"Megatron", "hyper", "252", "T4 x D63",
                  Table::Num(result.examples_per_s_per_gpu, 2),
                  Table::Num(result.examples_per_s_per_gpu * 3.0 * spec.TotalFwdFlops() / 1e12,
                             1)});
  }
  {
    PipelineEvalRequest request;
    request.spec = spec;
    request.pipeline_depth = 9;
    request.data_parallel = 28;
    request.microbatch_size = 4;
    request.total_batch = 8192;
    request.vm = Dgx2();
    request.fabric = HyperclusterFabric();
    const PipelineEvalResult result = EvaluatePipeline(request);
    table.AddRow({"Varuna", "hyper", "252", ConfigLabel(9, 28),
                  Table::Num(result.examples_per_s_per_gpu, 2),
                  Table::Num(result.tflops_per_gpu, 1)});
  }
  std::printf("%s\n", table.Render().c_str());

  // --- §7.1.1: BERT-large, batch 32K, sequence 512 on 32 commodity GPUs.
  std::printf("=== BERT-large (340M), mini-batch 32768, 32 low-priority GPUs ===\n\n");
  Table bert({"system", "config", "ex/s (total)", "ex/s/GPU"});
  {
    PipelineEvalRequest request;
    request.spec = BertLarge();
    request.pipeline_depth = 4;
    request.data_parallel = 8;
    request.microbatch_size = 8;
    request.total_batch = 32768;
    const PipelineEvalResult result = EvaluatePipeline(request);
    bert.AddRow({"Varuna", "4x8", Table::Num(result.examples_per_s, 0),
                 Table::Num(result.examples_per_s_per_gpu, 2)});
  }
  {
    Cluster cluster(CommodityFabric());
    cluster.AddVms(Nc6V3(), 32);
    DataParallelConfig config;
    config.replicas = 32;
    config.microbatch_size = 8;
    config.total_batch = 32768;
    config.gradient_checkpointing = true;
    const DataParallelResult result = EvaluateDataParallel(BertLarge(), cluster, config).value();
    bert.AddRow({"Data-parallel", "1x32", Table::Num(result.examples_per_s, 0),
                 Table::Num(result.examples_per_s_per_gpu, 2)});
  }
  std::printf("%s\n", bert.Render().c_str());
  std::printf("Paper quotes 710 ex/s for Varuna 4x8 on commodity VMs (vs 700 ex/s NVIDIA\n"
              "DGX-1 reference); the data-parallel baseline pays a full-model allreduce\n"
              "per mini-batch on the 10 Gbps network.\n");
}

}  // namespace
}  // namespace varuna

int main() {
  varuna::Run();
  return 0;
}
