// Figure 7: Gantt chart of one Varuna mini-batch on the GPT-2 20B model in
// the 49x6 configuration (one of the 6 replicas shown). Forward, backward and
// recompute phases interleave per the Varuna schedule; the stage-wise 6-way
// gradient allreduce forms the band at the far right.
#include <cstdio>

#include "bench/bench_util.h"

namespace varuna {
namespace {

void Run() {
  std::printf("=== Figure 7: one mini-batch of GPT-2 20B, config 49x6 (replica 0) ===\n\n");
  PipelineEvalRequest request;
  request.spec = Gpt2_20B();
  request.pipeline_depth = 49;
  request.data_parallel = 6;
  request.microbatch_size = 2;
  // A reduced mini-batch keeps the chart legible; the full 8192 batch simply
  // stretches the steady-state band.
  request.total_batch = 1536;
  request.runs = 1;
  request.record_trace = true;
  const PipelineEvalResult result = EvaluatePipeline(request);
  if (!result.feasible) {
    std::printf("infeasible: %s\n", result.infeasible_reason.c_str());
    return;
  }

  GanttChart chart;
  std::vector<GanttRow> rows(49);
  for (int s = 0; s < 49; ++s) {
    rows[static_cast<size_t>(s)].name = s % 4 == 0 ? "S" + std::to_string(s + 1) : "";
  }
  for (const ExecTraceOp& op : result.last_run.trace) {
    char symbol = '?';
    switch (op.op.type) {
      case PipeOpType::kForward:
        symbol = 'F';
        break;
      case PipeOpType::kRecompute:
        symbol = 'r';
        break;
      case PipeOpType::kBackward:
        symbol = 'B';
        break;
      default:
        break;
    }
    rows[static_cast<size_t>(op.stage)].bars.push_back(
        GanttBar{op.start, op.end, std::string(1, symbol)});
  }
  // The allreduce band at the far right (purple region in the paper).
  for (auto& row : rows) {
    row.bars.push_back(GanttBar{result.last_run.trace_allreduce_start,
                                result.last_run.trace_allreduce_end, "A"});
  }
  for (auto& row : rows) {
    chart.AddRow(std::move(row));
  }
  std::printf("%s\n", chart.Render(150).c_str());
  std::printf("Legend: F forward, r recompute, B backward, A stage-wise 6-way allreduce.\n\n");
  std::printf("mini-batch: %.1f s pipeline + %.2f s allreduce + %.2f s shared-state sync\n",
              result.last_run.pipeline_time_s, result.last_run.allreduce_time_s,
              result.last_run.sync_time_s);
  std::printf("throughput: %.3f ex/s/GPU, %.1f useful TFLOP/s/GPU (paper: 0.2 ex/s/GPU,\n"
              "25 TFLOP/s/GPU for the full 8192 batch on 294 low-priority GPUs)\n",
              result.examples_per_s_per_gpu, result.tflops_per_gpu);

  // Full-batch headline number (no trace).
  request.total_batch = 8192;
  request.record_trace = false;
  request.runs = 1;
  const PipelineEvalResult full = EvaluatePipeline(request);
  std::printf("full 8192 batch: %.3f ex/s/GPU, %.1f TFLOP/s/GPU on %d GPUs\n",
              full.examples_per_s_per_gpu, full.tflops_per_gpu, full.gpus_used);
}

}  // namespace
}  // namespace varuna

int main() {
  varuna::Run();
  return 0;
}
