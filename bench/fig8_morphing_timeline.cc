// Figure 8: dynamic timeline of Varuna training GPT-2 2.5B on spot VMs over
// 60 hours — the manager grows/shrinks the job (morphing events annotated
// with the chosen P x D), rides out preemptions via checkpoints, and keeps
// per-GPU throughput nearly flat while total throughput tracks capacity.
// Also reproduces Observation 4's 1-GPU vs 4-GPU VM throughput comparison.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"

namespace varuna {
namespace {

void Run(int hours) {
  std::printf("=== Figure 8: %d h dynamic timeline, GPT-2 2.5B on spot VMs ===\n\n", hours);
  SimEngine engine;
  Cluster cluster(CommodityFabric());
  SpotMarket market(&engine, Rng(7), 300.0);
  SpotPoolDynamics dynamics;
  dynamics.mean_availability = 0.70;
  dynamics.volatility = 0.14;              // Slow, large capacity swings.
  dynamics.reversion_rate = 1.0 / (8.0 * kHour);
  dynamics.preemption_hazard = 1.0 / (200.0 * kHour);
  dynamics.max_grants_per_tick = 16;
  dynamics.reclaim_slack_vms = 12;  // Azure-like burst evictions, not per-tick churn.
  const int pool = market.AddPool(Nc6V3(), 160, dynamics);

  TrainerOptions options;
  options.total_batch = 8192;
  options.demand_vms = 160;
  options.checkpoint_every_minibatches = 10;
  options.provision_check_interval_s = 1800.0;
  options.seed = 11;
  ElasticTrainer trainer(&engine, &cluster, &market, pool, Nc6V3(), Gpt2_2_5B(), options);

  FailStutterInjector stutter(&engine, &cluster, Rng(13), FailStutterOptions());

  trainer.Start();
  market.Start();
  stutter.Start();
  engine.RunUntil(hours * kHour);

  const SessionStats& stats = trainer.stats();

  // Throughput series, hourly buckets.
  std::printf("hour | GPUs avail | GPUs used | config | ex/s   | ex/s/GPU\n");
  size_t sample_index = 0;
  size_t event_index = 0;
  RunningStats per_gpu;
  RunningStats total_rate;
  for (int hour = 1; hour <= hours; ++hour) {
    const double t = hour * kHour;
    TimelineSample latest{};
    bool have = false;
    while (sample_index < stats.samples.size() && stats.samples[sample_index].time_s <= t) {
      latest = stats.samples[sample_index];
      have = true;
      ++sample_index;
    }
    std::string events;
    while (event_index < stats.events.size() && stats.events[event_index].time_s <= t) {
      const TimelineEvent& event = stats.events[event_index];
      events += "  <-- " + event.kind + " to " +
                ConfigLabel(event.pipeline_depth, event.data_parallel);
      ++event_index;
    }
    if (have) {
      per_gpu.Add(latest.examples_per_s_per_gpu);
      total_rate.Add(latest.examples_per_s);
      std::printf("%4d | %10d | %9d | %-6s | %6.1f | %.2f%s\n", hour, latest.gpus_available,
                  latest.gpus_in_use,
                  ConfigLabel(latest.pipeline_depth, latest.data_parallel).c_str(),
                  latest.examples_per_s, latest.examples_per_s_per_gpu, events.c_str());
    } else {
      std::printf("%4d | (job reconfiguring or waiting for capacity)%s\n", hour, events.c_str());
    }
  }

  std::printf("\nSummary over %d h:\n", hours);
  std::printf("  mini-batches: %lld   examples: %.2e\n",
              static_cast<long long>(stats.minibatches_done), stats.examples_processed);
  std::printf("  morphs: %d   preemptions hit: %d   stutter replacements: %d   checkpoints: %d\n",
              stats.morphs, stats.preemptions_hit, stats.stutters_detected, stats.checkpoints);
  std::printf("  stalled (restores + waiting): %.1f h (%.1f%% of wall clock)\n",
              stats.stalled_s / kHour, 100.0 * stats.stalled_s / (hours * kHour));
  std::printf("  total ex/s varied %.0f..%.0f (%.1fx) while ex/s/GPU varied only "
              "%.2f..%.2f (+/-%.0f%%)\n",
              total_rate.min(), total_rate.max(), total_rate.max() / total_rate.min(),
              per_gpu.min(), per_gpu.max(),
              100.0 * (per_gpu.max() - per_gpu.min()) / (2.0 * per_gpu.mean()));
  std::printf("  (paper: total throughput varies ~5x with capacity; per-GPU only ~15%%)\n\n");

  // --- Observation 4: 1-GPU vs 4-GPU VMs at 72 GPUs (paper: 1.77 vs 1.81).
  std::printf("=== Observation 4: 1-GPU vs 4-GPU VMs, GPT-2 2.5B on 72 GPUs (9x8) ===\n\n");
  Table table({"VM type", "ex/s/GPU"});
  for (const bool quad : {false, true}) {
    PipelineEvalRequest request;
    request.spec = Gpt2_2_5B();
    request.pipeline_depth = 9;
    request.data_parallel = 8;
    request.microbatch_size = 4;
    request.total_batch = 8192;
    request.vm = quad ? Nc24V3() : Nc6V3();
    const PipelineEvalResult result = EvaluatePipeline(request);
    table.AddRow({quad ? "NC24_v3 (4-GPU)" : "NC6_v3 (1-GPU)",
                  Table::Num(result.examples_per_s_per_gpu, 2)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("Thrifty networking keeps 1-GPU VMs within a few %% of 4-GPU VMs, so Varuna\n"
              "can harvest the much larger 1-GPU spot pool (Figure 3).\n");
}

}  // namespace
}  // namespace varuna

int main(int argc, char** argv) {
  varuna::Run(argc > 1 ? std::atoi(argv[1]) : 60);
  return 0;
}
