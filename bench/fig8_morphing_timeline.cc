// Figure 8: dynamic timeline of Varuna training GPT-2 2.5B on spot VMs over
// 60 hours — the manager grows/shrinks the job (morphing events annotated
// with the chosen P x D), rides out preemptions via checkpoints, and keeps
// per-GPU throughput nearly flat while total throughput tracks capacity.
// Also reproduces Observation 4's 1-GPU vs 4-GPU VM throughput comparison.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "src/chaos/chaos.h"

namespace varuna {
namespace {

void Run(int hours) {
  std::printf("=== Figure 8: %d h dynamic timeline, GPT-2 2.5B on spot VMs ===\n\n", hours);
  SimEngine engine;
  Cluster cluster(CommodityFabric());
  SpotMarket market(&engine, Rng(7), 300.0);
  SpotPoolDynamics dynamics;
  dynamics.mean_availability = 0.70;
  dynamics.volatility = 0.14;              // Slow, large capacity swings.
  dynamics.reversion_rate = 1.0 / (8.0 * kHour);
  dynamics.preemption_hazard = 1.0 / (200.0 * kHour);
  dynamics.max_grants_per_tick = 16;
  dynamics.reclaim_slack_vms = 12;  // Azure-like burst evictions, not per-tick churn.
  const int pool = market.AddPool(Nc6V3(), 160, dynamics);

  TrainerOptions options;
  options.total_batch = 8192;
  options.demand_vms = 160;
  options.checkpoint_every_minibatches = 10;
  options.provision_check_interval_s = 1800.0;
  options.seed = 11;
  ElasticTrainer trainer(&engine, &cluster, &market, pool, Nc6V3(), Gpt2_2_5B(), options);

  FailStutterInjector stutter(&engine, &cluster, Rng(13), FailStutterOptions());

  trainer.Start();
  market.Start();
  stutter.Start();
  engine.RunUntil(hours * kHour);

  const SessionStats& stats = trainer.stats();

  // Throughput series, hourly buckets.
  std::printf("hour | GPUs avail | GPUs used | config | ex/s   | ex/s/GPU\n");
  size_t sample_index = 0;
  size_t event_index = 0;
  RunningStats per_gpu;
  RunningStats total_rate;
  for (int hour = 1; hour <= hours; ++hour) {
    const double t = hour * kHour;
    TimelineSample latest{};
    bool have = false;
    while (sample_index < stats.samples.size() && stats.samples[sample_index].time_s <= t) {
      latest = stats.samples[sample_index];
      have = true;
      ++sample_index;
    }
    std::string events;
    while (event_index < stats.events.size() && stats.events[event_index].time_s <= t) {
      const TimelineEvent& event = stats.events[event_index];
      events += "  <-- " + event.kind + " to " +
                ConfigLabel(event.pipeline_depth, event.data_parallel);
      ++event_index;
    }
    if (have) {
      per_gpu.Add(latest.examples_per_s_per_gpu);
      total_rate.Add(latest.examples_per_s);
      std::printf("%4d | %10d | %9d | %-6s | %6.1f | %.2f%s\n", hour, latest.gpus_available,
                  latest.gpus_in_use,
                  ConfigLabel(latest.pipeline_depth, latest.data_parallel).c_str(),
                  latest.examples_per_s, latest.examples_per_s_per_gpu, events.c_str());
    } else {
      std::printf("%4d | (job reconfiguring or waiting for capacity)%s\n", hour, events.c_str());
    }
  }

  std::printf("\nSummary over %d h:\n", hours);
  std::printf("  mini-batches: %lld   examples: %.2e\n",
              static_cast<long long>(stats.minibatches_done), stats.examples_processed);
  std::printf("  morphs: %d   preemptions hit: %d   stutter replacements: %d   checkpoints: %d\n",
              stats.morphs, stats.preemptions_hit, stats.stutters_detected, stats.checkpoints);
  std::printf("  recovery: %lld restarts, %lld heartbeat timeouts, %lld morph retries, "
              "%lld shards lost\n",
              static_cast<long long>(stats.restarts),
              static_cast<long long>(stats.heartbeat_timeouts),
              static_cast<long long>(stats.morph_retries),
              static_cast<long long>(stats.shards_lost));
  std::printf("  conservation: %lld attempted = %lld done + %lld rolled back "
              "(max rollback %lld)\n",
              static_cast<long long>(stats.minibatches_attempted),
              static_cast<long long>(stats.minibatches_done),
              static_cast<long long>(stats.minibatches_rolled_back),
              static_cast<long long>(stats.max_rollback_minibatches));
  std::printf("  stalled (restores + waiting): %.1f h (%.1f%% of wall clock)\n",
              stats.stalled_s / kHour, 100.0 * stats.stalled_s / (hours * kHour));
  std::printf("  total ex/s varied %.0f..%.0f (%.1fx) while ex/s/GPU varied only "
              "%.2f..%.2f (+/-%.0f%%)\n",
              total_rate.min(), total_rate.max(), total_rate.max() / total_rate.min(),
              per_gpu.min(), per_gpu.max(),
              100.0 * (per_gpu.max() - per_gpu.min()) / (2.0 * per_gpu.mean()));
  std::printf("  (paper: total throughput varies ~5x with capacity; per-GPU only ~15%%)\n\n");

  // --- Observation 4: 1-GPU vs 4-GPU VMs at 72 GPUs (paper: 1.77 vs 1.81).
  std::printf("=== Observation 4: 1-GPU vs 4-GPU VMs, GPT-2 2.5B on 72 GPUs (9x8) ===\n\n");
  Table table({"VM type", "ex/s/GPU"});
  for (const bool quad : {false, true}) {
    PipelineEvalRequest request;
    request.spec = Gpt2_2_5B();
    request.pipeline_depth = 9;
    request.data_parallel = 8;
    request.microbatch_size = 4;
    request.total_batch = 8192;
    request.vm = quad ? Nc24V3() : Nc6V3();
    const PipelineEvalResult result = EvaluatePipeline(request);
    table.AddRow({quad ? "NC24_v3 (4-GPU)" : "NC6_v3 (1-GPU)",
                  Table::Num(result.examples_per_s_per_gpu, 2)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("Thrifty networking keeps 1-GPU VMs within a few %% of 4-GPU VMs, so Varuna\n"
              "can harvest the much larger 1-GPU spot pool (Figure 3).\n");
}

// The same morphing story under a deliberately adversarial fault schedule
// (src/chaos): an eviction wave inside the checkpoint window, unannounced
// kills of shard-owning VMs mid-flush, a fail-stutter burst and a capacity
// crash. The session must end conserving every attempted mini-batch, and the
// whole campaign replays bit-identically.
void RunAdversarial() {
  std::printf("\n=== Figure 8 (adversarial): scripted chaos campaign, GPT-2 medium ===\n\n");
  ChaosCampaignSpec spec = DefaultChaosCampaign(/*seed=*/7);
  spec.horizon_s = 3.0 * kHour;
  spec.plan = ChaosPlan::Scripted({
      {/*at_s=*/1800.0, ChaosActionKind::kPreemptionStorm, /*count=*/4,
       /*duration_s=*/60.0, /*magnitude=*/0.0},
      {/*at_s=*/3600.0, ChaosActionKind::kTargetedShardKill, /*count=*/2,
       /*duration_s=*/1800.0, /*magnitude=*/0.0},
      {/*at_s=*/6000.0, ChaosActionKind::kFailStutterBurst, /*count=*/2,
       /*duration_s=*/1200.0, /*magnitude=*/0.3},
      {/*at_s=*/8400.0, ChaosActionKind::kCapacityCrash, /*count=*/1,
       /*duration_s=*/1200.0, /*magnitude=*/0.25},
  });
  const ChaosReport report = RunChaosCampaign(spec);
  const SessionStats& stats = report.stats;

  Table table({"recovery counter", "value"});
  table.AddRow({"announced preemptions hit", std::to_string(stats.preemptions_hit)});
  table.AddRow({"preemptions survived", std::to_string(stats.preemptions_survived)});
  table.AddRow({"heartbeat timeouts", std::to_string(stats.heartbeat_timeouts)});
  table.AddRow({"restarts (rollback+restore)", std::to_string(stats.restarts)});
  table.AddRow({"morph retries", std::to_string(stats.morph_retries)});
  table.AddRow({"re-provision retries", std::to_string(stats.reprovision_retries)});
  table.AddRow({"degraded-mode intervals", std::to_string(stats.degraded_intervals)});
  table.AddRow({"checkpoint shards lost", std::to_string(stats.shards_lost)});
  table.AddRow({"mini-batches committed", std::to_string(stats.minibatches_done)});
  table.AddRow({"mini-batches rolled back", std::to_string(stats.minibatches_rolled_back)});
  table.AddRow({"max rollback (mini-batches)", std::to_string(stats.max_rollback_minibatches)});
  std::printf("%s", table.Render().c_str());
  std::printf("conservation: %lld attempted = %lld done + %lld rolled back\n",
              static_cast<long long>(stats.minibatches_attempted),
              static_cast<long long>(stats.minibatches_done),
              static_cast<long long>(stats.minibatches_rolled_back));

  const ChaosReport replay = RunChaosCampaign(spec);
  std::printf("campaign fingerprint: %016llx (replay %s)\n",
              static_cast<unsigned long long>(report.fingerprint),
              replay.fingerprint == report.fingerprint && replay.trace == report.trace
                  ? "bit-identical"
                  : "DIVERGED");
}

// The liveput head-to-head on the same adversarial story (src/morph/liveput):
// the identical scripted campaign run under each morph policy. Reactive
// recovers after every hit; the proactive policy pre-migrates checkpoint
// shards when the predicted rollback re-work outweighs the stall, and the
// oracle variant gets the true hazard plus the storm schedule — the upper
// bound on what prediction can buy.
void RunHeadToHead() {
  std::printf("\n=== Figure 8 (liveput): reactive vs proactive vs oracle, same campaign ===\n\n");
  ChaosCampaignSpec base = StormyChaosCampaign(/*seed=*/7);
  Table table({"policy", "mini-batches", "rolled back", "restarts",
               "pre-migrated shards", "proactive morphs"});
  struct Row {
    const char* name;
    MorphPolicy policy;
  };
  for (const Row& row : {Row{"reactive", MorphPolicy::kReactive},
                         Row{"proactive", MorphPolicy::kProactive},
                         Row{"oracle", MorphPolicy::kOracleProactive}}) {
    ChaosCampaignSpec spec = base;
    spec.options.morph_policy = row.policy;
    const ChaosReport report = RunChaosCampaign(spec);
    const ChaosReport replay = RunChaosCampaign(spec);
    if (replay.fingerprint != report.fingerprint) {
      std::printf("FATAL: %s policy did not replay bit-identically\n", row.name);
      std::exit(1);
    }
    table.AddRow({row.name, std::to_string(report.stats.minibatches_done),
                  std::to_string(report.stats.minibatches_rolled_back),
                  std::to_string(report.stats.restarts),
                  std::to_string(report.stats.premigrated_shards),
                  std::to_string(report.stats.proactive_morphs)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("every policy replayed bit-identically on the shared seeded campaign\n");
}

}  // namespace
}  // namespace varuna

int main(int argc, char** argv) {
  varuna::Run(argc > 1 ? std::atoi(argv[1]) : 60);
  varuna::RunAdversarial();
  varuna::RunHeadToHead();
  return 0;
}
