// Figure 9 / §7.3: convergence with a 16x larger mini-batch. The paper trains
// GPT-2 2.5B with batch 8192 for 16x fewer iterations than the Megatron
// baseline (batch 512) and reaches the same validation perplexity. We
// reproduce the semantics at laptop scale: the same block model is trained
// through the *Varuna pipeline trainer* (partitioned, micro-batched,
// recompute) with a small batch for N steps and a 16x batch for N/16 steps;
// both must land at the same validation perplexity — which has a crisp
// ground truth (the Markov chain's entropy).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

namespace varuna {
namespace {

constexpr int kVocab = 16;
constexpr int kWidth = 24;
constexpr int kBlocks = 6;
constexpr int kDepth = 3;  // Pipeline stages.

struct CurvePoint {
  int64_t examples;
  double train_loss;
  double val_ppl;
};

std::vector<CurvePoint> Train(const MarkovTask& task, int batch, int steps, float lr,
                              uint64_t seed, int math_threads) {
  Rng model_rng(seed);
  auto model = BuildBlockModel(kVocab, kWidth, kBlocks, &model_rng);
  // Cut at block boundaries: embedding+2 blocks | 2 blocks | 2 blocks+head.
  // Stage wavefronts run pooled when --math-threads > 1; the curve is
  // bit-identical either way (pooled == serial contract).
  SyncPipelineTrainer trainer(std::move(model), {0, 3, 5, kBlocks + 2},
                              MathOptions{math_threads});
  AdamOptimizer optimizer(trainer.Parameters(), trainer.Gradients(), lr);
  Rng data_rng(1234);
  Rng val_rng(77);

  std::vector<CurvePoint> curve;
  const int microbatch = std::max(1, batch / 16);
  const int report_every = std::max(1, steps / 12);
  for (int step = 0; step < steps; ++step) {
    const Batch data = task.Sample(batch, &data_rng);
    optimizer.ZeroGradients();
    const double loss = trainer.ForwardBackward(data, microbatch);
    trainer.ClipByGlobalNorm(1.0f, /*sync_across_stages=*/true);
    optimizer.Step();
    if (step % report_every == 0 || step == steps - 1) {
      Rng eval_rng = val_rng;  // Same validation set at every report.
      const Batch val = task.Sample(4096, &eval_rng);
      SoftmaxCrossEntropy eval_loss;
      const double val_value = eval_loss.Loss(trainer.Forward(val.inputs), val.targets);
      curve.push_back(CurvePoint{static_cast<int64_t>(step + 1) * batch, loss,
                                 std::exp(val_value)});
    }
  }
  return curve;
}

void PrintCurve(const char* name, const std::vector<CurvePoint>& curve) {
  std::printf("%s\n", name);
  std::printf("  examples  | train loss | val ppl\n");
  for (const CurvePoint& point : curve) {
    std::printf("  %9lld | %10.4f | %7.3f\n", static_cast<long long>(point.examples),
                point.train_loss, point.val_ppl);
  }
}

void Run(int math_threads) {
  std::printf("=== Figure 9: convergence with a 16x larger mini-batch ===\n\n");
  MarkovTask task(kVocab, 99, 1.5);
  std::printf("task: order-1 Markov chain, vocab %d; optimal (entropy) perplexity = %.3f; "
              "math threads %d\n\n",
              kVocab, task.OptimalPerplexity(), math_threads);

  // Same number of training examples for both runs (the §7.3 protocol).
  const int small_batch = 128;
  const int small_steps = 1024;
  const int large_batch = 16 * small_batch;
  const int large_steps = small_steps / 16;

  const auto baseline = Train(task, small_batch, small_steps, 3e-3f, 42, math_threads);
  const auto varuna = Train(task, large_batch, large_steps, 3e-3f, 42, math_threads);

  PrintCurve("Baseline (batch 128, 1024 steps) — 'Megatron' protocol:", baseline);
  std::printf("\n");
  PrintCurve("Varuna (batch 2048, 64 steps, same examples, same hyper-parameters):", varuna);

  const double baseline_ppl = baseline.back().val_ppl;
  const double varuna_ppl = varuna.back().val_ppl;
  std::printf("\nfinal validation perplexity: baseline %.3f vs 16x-batch %.3f "
              "(optimal %.3f; relative gap %.1f%%)\n",
              baseline_ppl, varuna_ppl, task.OptimalPerplexity(),
              100.0 * std::abs(varuna_ppl - baseline_ppl) / baseline_ppl);
  std::printf("Paper: 2.5B GPT-2 at batch 8192 for 18.75K iterations matches the\n"
              "batch-512/300K-iteration baseline (val ppl 10.81, WikiText 12.78 vs 12.76).\n");
}

}  // namespace
}  // namespace varuna

int main(int argc, char** argv) {
  varuna::Run(varuna::IntFromArgs(argc, argv, "--math-threads", 1));
  return 0;
}
