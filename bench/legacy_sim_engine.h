// Frozen copy of the pre-slot-pool SimEngine: std::function callbacks, a
// std::priority_queue of callback-owning events, and an unordered_set of live
// ids. Kept verbatim (modulo the class name and header-only inlining) so
// bench_sim_core can report a true before/after column against the current
// slot-pool engine on identical workloads. Bench-only — never link this into
// src/ (the hot-path lint bans these containers there for a reason).
#ifndef BENCH_LEGACY_SIM_ENGINE_H_
#define BENCH_LEGACY_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace varuna {

using LegacySimTime = double;

class LegacySimEngine {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  EventId Schedule(LegacySimTime delay, Callback callback) {
    VARUNA_CHECK_GE(delay, 0.0);
    return ScheduleAt(now_ + delay, std::move(callback));
  }

  EventId ScheduleAt(LegacySimTime when, Callback callback) {
    VARUNA_CHECK_GE(when, now_);
    const EventId id = next_id_++;
    queue_.push(Event{when, id, std::move(callback)});
    live_.insert(id);
    return id;
  }

  void Cancel(EventId id) { live_.erase(id); }

  void Run() {
    stopped_ = false;
    while (!stopped_ && Step()) {
    }
  }

  void RunUntil(LegacySimTime until) {
    VARUNA_CHECK_GE(until, now_);
    stopped_ = false;
    while (!stopped_ && !queue_.empty() && queue_.top().when <= until) {
      Step();
    }
    if (!stopped_) {
      now_ = until;
    }
  }

  void Stop() { stopped_ = true; }

  LegacySimTime now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return live_.size(); }

 private:
  struct Event {
    LegacySimTime when;
    EventId id;  // Also the tie-breaker: lower id fires first.
    Callback callback;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;  // Min-heap on time.
      }
      return a.id > b.id;
    }
  };

  bool Step() {
    while (!queue_.empty()) {
      Event event = queue_.top();
      queue_.pop();
      if (live_.erase(event.id) == 0) {
        continue;  // Cancelled while queued; purged here on fire.
      }
      VARUNA_CHECK_GE(event.when, now_) << "LegacySimEngine time went backwards";
      now_ = event.when;
      ++events_processed_;
      event.callback();
      return true;
    }
    return false;
  }

  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<EventId> live_;
  LegacySimTime now_ = 0.0;
  EventId next_id_ = 1;
  uint64_t events_processed_ = 0;
  bool stopped_ = false;
};

}  // namespace varuna

#endif  // BENCH_LEGACY_SIM_ENGINE_H_
