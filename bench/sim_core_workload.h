// The "storm" workload: a synthetic event stream shaped like a chaos
// campaign's engine traffic, templated over the engine type so the legacy
// (std::function + priority_queue) and current (slot pool + 4-ary heap)
// engines run the exact same logical stream. Mix, per pump iteration:
//   * one self-rescheduling continuation with an executor-sized capture
//     (~24-32 bytes: the StartOp/FinishOp lambda shape),
//   * every 4th iteration a cancellable filler event (heartbeat-timeout
//     shape), and every 8th a Cancel() of a pseudo-random recent filler
//     (roughly half still pending — exercising both live-cancel and
//     stale-id no-op paths),
//   * a RunUntil() boundary every `kEpochEvents` fires (mini-batch cadence).
// Deterministic for a given seed, so both engines fire the same event count.
#ifndef BENCH_SIM_CORE_WORKLOAD_H_
#define BENCH_SIM_CORE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace varuna {

template <typename Engine>
class SimCoreStorm {
 public:
  SimCoreStorm(uint64_t seed, uint64_t target_fires) : rng_(seed), remaining_(target_fires) {
    recent_.assign(64, 0);
  }

  // Runs the storm to completion; returns events fired (cancelled fillers
  // don't fire, so this is < the scheduled count and identical across engine
  // implementations for a given seed/target).
  uint64_t Run() {
    // A handful of independent pump chains keeps the queue populated the way
    // a P x D worker grid does.
    for (int pump = 0; pump < 16; ++pump) {
      Pump();
    }
    while (engine_.pending_events() > 0) {
      // Mini-batch cadence: drain in bounded windows like the elastic
      // harness's RunUntil loop, not one monolithic Run().
      engine_.RunUntil(engine_.now() + 0.25);
    }
    return engine_.events_processed();
  }

  double checksum() const { return sink_; }
  const Engine& engine() const { return engine_; }

 private:
  void Pump() {
    if (remaining_ == 0) {
      return;
    }
    --remaining_;
    const uint64_t draw = rng_.NextUint64();
    const double delay = static_cast<double>(draw % 1024) * 1e-5;
    // Capture shape of the executor's hot lambdas: this + two words.
    const double pad = delay * 0.5;
    const uint64_t tag = draw;
    engine_.Schedule(delay, [this, pad, tag] {
      sink_ += pad + static_cast<double>(tag % 7);
      Pump();
    });
    if ((remaining_ & 3) == 0) {
      const uint64_t filler_delay_draw = rng_.NextUint64();
      const uint64_t id = engine_.Schedule(
          static_cast<double>(filler_delay_draw % 4096) * 1e-5, [this] { sink_ += 1.0; });
      recent_[recent_pos_++ & 63] = id;
    }
    if ((remaining_ & 7) == 0) {
      const uint64_t victim = recent_[rng_.NextUint64() & 63];
      if (victim != 0) {  // 0 = ring entry never filled, not an issued id.
        engine_.Cancel(victim);
      }
    }
  }

  Engine engine_;
  Rng rng_;
  uint64_t remaining_ = 0;
  std::vector<uint64_t> recent_;  // Ring of recent filler ids (0 = never issued).
  size_t recent_pos_ = 0;
  double sink_ = 0.0;
};

}  // namespace varuna

#endif  // BENCH_SIM_CORE_WORKLOAD_H_
