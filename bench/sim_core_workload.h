// The "storm" workload: a synthetic event stream shaped like a chaos
// campaign's engine traffic, templated over the engine type so the legacy
// (std::function + priority_queue) and current (slot pool + 4-ary heap)
// engines run the exact same logical stream. Mix, per pump iteration:
//   * one self-rescheduling continuation with an executor-sized capture
//     (~24-32 bytes: the StartOp/FinishOp lambda shape),
//   * every 4th iteration a cancellable filler event (heartbeat-timeout
//     shape), and every 8th a Cancel() of a pseudo-random recent filler
//     (roughly half still pending — exercising both live-cancel and
//     stale-id no-op paths),
//   * a RunUntil() boundary every `kEpochEvents` fires (mini-batch cadence).
// Deterministic for a given seed, so both engines fire the same event count.
#ifndef BENCH_SIM_CORE_WORKLOAD_H_
#define BENCH_SIM_CORE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/sim/sharded_engine.h"

namespace varuna {

template <typename Engine>
class SimCoreStorm {
 public:
  SimCoreStorm(uint64_t seed, uint64_t target_fires) : rng_(seed), remaining_(target_fires) {
    recent_.assign(64, 0);
  }

  // Runs the storm to completion; returns events fired (cancelled fillers
  // don't fire, so this is < the scheduled count and identical across engine
  // implementations for a given seed/target).
  uint64_t Run() {
    // A handful of independent pump chains keeps the queue populated the way
    // a P x D worker grid does.
    for (int pump = 0; pump < 16; ++pump) {
      Pump();
    }
    while (engine_.pending_events() > 0) {
      // Mini-batch cadence: drain in bounded windows like the elastic
      // harness's RunUntil loop, not one monolithic Run().
      engine_.RunUntil(engine_.now() + 0.25);
    }
    return engine_.events_processed();
  }

  double checksum() const { return sink_; }
  const Engine& engine() const { return engine_; }

 private:
  void Pump() {
    if (remaining_ == 0) {
      return;
    }
    --remaining_;
    const uint64_t draw = rng_.NextUint64();
    const double delay = static_cast<double>(draw % 1024) * 1e-5;
    // Capture shape of the executor's hot lambdas: this + two words.
    const double pad = delay * 0.5;
    const uint64_t tag = draw;
    engine_.Schedule(delay, [this, pad, tag] {
      sink_ += pad + static_cast<double>(tag % 7);
      Pump();
    });
    if ((remaining_ & 3) == 0) {
      const uint64_t filler_delay_draw = rng_.NextUint64();
      const uint64_t id = engine_.Schedule(
          static_cast<double>(filler_delay_draw % 4096) * 1e-5, [this] { sink_ += 1.0; });
      recent_[recent_pos_++ & 63] = id;
    }
    if ((remaining_ & 7) == 0) {
      const uint64_t victim = recent_[rng_.NextUint64() & 63];
      if (victim != 0) {  // 0 = ring entry never filled, not an issued id.
        engine_.Cancel(victim);
      }
    }
  }

  Engine engine_;
  Rng rng_;
  uint64_t remaining_ = 0;
  std::vector<uint64_t> recent_;  // Ring of recent filler ids (0 = never issued).
  size_t recent_pos_ = 0;
  double sink_ = 0.0;
};

// The sharded storm: the same chaos-shaped traffic expressed against the
// ShardedSimEngine workload contract — per-node Rng forks, node-local side
// effects (each node folds an FNV chain), cross-node chatter through Send()
// with delays at or above the lookahead floor, and periodic cancels hitting
// both the live and the stale-id path. Fingerprint() digests every node's
// chain in node order; the determinism contract makes it bit-identical at
// every shard count, which the bench asserts before timing anything.
class ShardedSimStorm {
 public:
  // Cross-node send floor. A WAN-ish 1 ms keeps each conservative window
  // dense (hundreds of events per shard per barrier with the pump cadence
  // below), so the parallel phase has real work to amortize the barrier.
  static constexpr double kLookahead = 1e-3;
  // Independent pump chains per node: the queue depth a P x D worker grid
  // sustains, and the knob that sets events-per-window density.
  static constexpr int kChainsPerNode = 4;

  ShardedSimStorm(uint64_t seed, uint64_t target_fires, int num_nodes, int num_shards,
                  ThreadPool* pool)
      : engine_(num_nodes, num_shards, kLookahead, pool) {
    VARUNA_CHECK_GE(num_nodes, 1);
    Rng root(seed);
    nodes_.resize(static_cast<size_t>(num_nodes));
    const uint64_t per_node = target_fires / static_cast<uint64_t>(num_nodes);
    for (NodeState& node : nodes_) {
      node.rng = root.Fork();  // Per-node stream: invariant under re-sharding.
      node.remaining = per_node;
    }
  }

  // Drains the storm completely (mini-batch-sized RunUntil windows) and
  // returns total events fired across all shards.
  uint64_t Run() {
    for (int node = 0; node < engine_.num_nodes(); ++node) {
      for (int chain = 0; chain < kChainsPerNode; ++chain) {
        Pump(node);
      }
    }
    while (engine_.pending_events() > 0) {
      engine_.RunUntil(engine_.now() + 0.25);
    }
    return engine_.events_processed();
  }

  // Order-sensitive digest of every node-local side-effect stream.
  uint64_t Fingerprint() const {
    uint64_t digest = kChainSeed;
    for (const NodeState& node : nodes_) {
      digest = (digest ^ node.chain) * kChainPrime;
    }
    return digest;
  }

  const ShardedSimEngine& engine() const { return engine_; }

 private:
  static constexpr uint64_t kChainSeed = 1469598103934665603ull;  // FNV-1a offset
  static constexpr uint64_t kChainPrime = 1099511628211ull;       // FNV-1a prime

  struct NodeState {
    Rng rng{0};
    uint64_t remaining = 0;
    uint64_t pumps = 0;
    uint64_t chain = kChainSeed;
    ShardedSimEngine::LocalEventId doomed{};
  };

  void Fold(int node_id, uint64_t payload) {
    NodeState& node = nodes_[static_cast<size_t>(node_id)];
    node.chain = (node.chain ^ payload) * kChainPrime;
  }

  void Pump(int node_id) {
    NodeState& node = nodes_[static_cast<size_t>(node_id)];
    if (node.remaining == 0) {
      return;
    }
    --node.remaining;
    ++node.pumps;
    const uint64_t draw = node.rng.NextUint64();
    Fold(node_id, draw);
    if ((node.pumps & 3) == 0) {
      // Cross-node chatter. The delay honours the lookahead floor for every
      // node pair, so the stream is valid at any shard count.
      const int peer = static_cast<int>(draw % static_cast<uint64_t>(nodes_.size()));
      const double delay = kLookahead * (1.0 + static_cast<double>(draw % 128) / 64.0);
      engine_.Send(node_id, peer, delay,
                   [this, peer, draw] { Fold(peer, draw * 0x9e3779b97f4a7c15ull); });
    }
    if (node.pumps % 5 == 0) {
      // Heartbeat-timeout shape: armed, usually cancelled before firing.
      node.doomed = engine_.ScheduleLocal(node_id, 500e-6,
                                          [this, node_id] { Fold(node_id, 0xD00Dull); });
    }
    if (node.pumps % 7 == 0) {
      engine_.Cancel(node.doomed);  // Often stale: both cancel paths run.
    }
    // Mean ~42 us between pumps: with kChainsPerNode chains per node each
    // 1 ms window carries hundreds of events, spread across the shards.
    const double delay = 10e-6 + static_cast<double>(draw % 64) * 1e-6;
    engine_.ScheduleLocal(node_id, delay, [this, node_id] { Pump(node_id); });
  }

  ShardedSimEngine engine_;
  std::vector<NodeState> nodes_;
};

}  // namespace varuna

#endif  // BENCH_SIM_CORE_WORKLOAD_H_
