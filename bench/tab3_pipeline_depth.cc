// Table 3: sensitivity to pipeline depth for GPT-2 2.5B on 36 and 100
// commodity GPUs (mini-batch 8192). The paper's point (Observation 2): the
// optimal depth P grows with the GPU count G, because shrinking P inflates
// the data-parallel width D = G/P and with it the allreduce cost 2N/P over
// D-sized rings — a deep pipeline is not always worse.
#include <cstdio>

#include "bench/bench_util.h"

namespace varuna {
namespace {

void Run() {
  std::printf("=== Table 3: pipeline-depth sensitivity, GPT-2 2.5B, batch 8192 ===\n\n");
  const TransformerSpec spec = Gpt2_2_5B();
  Table table({"Num GPUs", "Config (PxD)", "Total Ex/s", "Ex/s/GPU"});
  const std::vector<std::pair<int, std::vector<std::pair<int, int>>>> cases = {
      {36, {{6, 6}, {9, 4}, {18, 2}}},
      {100, {{6, 16}, {9, 11}, {18, 5}}},
  };
  for (const auto& [gpus, configs] : cases) {
    for (const auto& [depth, replicas] : configs) {
      PipelineEvalRequest request;
      request.spec = spec;
      request.pipeline_depth = depth;
      request.data_parallel = replicas;
      request.microbatch_size = 4;
      request.total_batch = 8192;
      const PipelineEvalResult result = EvaluatePipeline(request);
      table.AddRow({std::to_string(gpus), ConfigLabel(depth, replicas),
                    Table::Num(result.examples_per_s, 2),
                    Table::Num(result.examples_per_s_per_gpu, 2)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper's Table 3 for reference:\n"
      "  36 GPUs : 6x6 66.60 (1.85) | 9x4 65.88 (1.83) | 18x2 50.04 (1.39)\n"
      "  100 GPUs: 6x16 155.52 (1.62) | 9x11 164.34 (1.66) | 18x5 99.00 (1.10)\n"
      "Shape to match: shallow wins at 36 GPUs; at 100 GPUs the 9-deep pipeline\n"
      "overtakes the 6-deep one (and uses 99 instead of 96 GPUs).\n");
}

}  // namespace
}  // namespace varuna

int main() {
  varuna::Run();
  return 0;
}
