// Table 4: the 20B-parameter model. Varuna runs 49x6 on 294 low-priority
// GPUs; Megatron on the hypercluster fits only a 19.2B variant with 16-way
// intra-layer partitioning (inside one DGX-2) — forcing the full 20B model
// to 18-way partitioning spills the allreduces onto Infiniband and drops
// performance ~10x. Also includes the 200B run (102-stage-style pipeline
// with CPU-offloaded optimizer state, §7.1.1).
#include <cstdio>

#include "bench/bench_util.h"

namespace varuna {
namespace {

TransformerSpec Gpt2_19_2B() {
  TransformerSpec spec = Gpt2_20B();
  spec.name = "GPT-2-19.2B";
  spec.hidden = 4096;  // 12 * 96 * 4096^2 ~= 19.3B.
  return spec;
}

void Run() {
  std::printf("=== Table 4: Varuna vs Megatron on the 20B model (batch 8192) ===\n\n");
  Table table({"System", "Num GPUs", "Ex/s/GPU", "TFlops/s/GPU"});

  {  // 20B Varuna on low-priority VMs, 49x6.
    PipelineEvalRequest request;
    request.spec = Gpt2_20B();
    request.pipeline_depth = 49;
    request.data_parallel = 6;
    request.microbatch_size = 2;
    request.total_batch = 8192;
    request.runs = 1;
    const PipelineEvalResult result = EvaluatePipeline(request);
    table.AddRow({"20B Varuna (LP)", std::to_string(result.gpus_used),
                  Table::Num(result.examples_per_s_per_gpu, 3),
                  Table::Num(result.tflops_per_gpu, 1)});
  }
  {  // 19.2B Megatron on hypercluster: 16-way within a DGX-2.
    MegatronSetup setup;
    setup.spec = Gpt2_19_2B();
    setup.tensor_parallel = 16;
    setup.data_parallel = 16;
    setup.microbatch_size = 4;
    setup.vm = Dgx2();
    setup.fabric = HyperclusterFabric();
    const IntraLayerResult result = EvaluateMegatron(setup);
    table.AddRow({"19.2B Megatron (HC)", "256", Table::Num(result.examples_per_s_per_gpu, 3),
                  Table::Num(result.examples_per_s_per_gpu * 3.0 *
                                 Gpt2_19_2B().TotalFwdFlops() / 1e12,
                             1)});
  }
  {  // 20B Megatron forced to 18-way: the partition crosses the NVLink island.
    MegatronSetup setup;
    setup.spec = Gpt2_20B();
    setup.tensor_parallel = 18;
    setup.data_parallel = 14;
    setup.microbatch_size = 4;
    setup.vm = Dgx2();
    setup.fabric = HyperclusterFabric();
    const IntraLayerResult result = EvaluateMegatron(setup);
    table.AddRow({"20B Megatron (HC)", "256", Table::Num(result.examples_per_s_per_gpu, 3),
                  Table::Num(result.examples_per_s_per_gpu * 3.0 * Gpt2_20B().TotalFwdFlops() /
                                 1e12,
                             1)});
  }
  {  // 20B Varuna on the hypercluster.
    PipelineEvalRequest request;
    request.spec = Gpt2_20B();
    request.pipeline_depth = 49;
    request.data_parallel = 5;
    request.microbatch_size = 2;
    request.total_batch = 8192;
    request.vm = Dgx2();
    request.fabric = HyperclusterFabric();
    request.runs = 1;
    const PipelineEvalResult result = EvaluatePipeline(request);
    table.AddRow({"20B Varuna (HC)", "256 (uses 245)",
                  Table::Num(result.examples_per_s_per_gpu, 3),
                  Table::Num(result.tflops_per_gpu, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Paper's Table 4: Varuna LP 0.200 (25 TF) | Megatron 19.2B HC 0.112 (14 TF) |\n"
              "Megatron 20B HC 0.015 (1.9 TF) | Varuna HC 0.257 (32.1 TF).\n\n");

  // --- §7.1.1 extreme scale: the 200B model, 100 stages, no data parallelism,
  // micro-batch 1, batch 512, optimizer state offloaded to CPU.
  std::printf("=== 200B model: 100-stage pipeline, CPU-offloaded optimizer ===\n\n");
  PipelineEvalRequest request;
  request.spec = Gpt2_200B();
  request.pipeline_depth = 100;
  request.data_parallel = 1;
  request.microbatch_size = 1;
  request.total_batch = 512;
  request.cpu_offload_optimizer = true;
  request.runs = 1;
  const PipelineEvalResult result = EvaluatePipeline(request);
  std::printf("200B Varuna (LP, 100x1): %.4f ex/s/GPU, %.1f TFlops/s/GPU "
              "(paper: 0.022 ex/s/GPU, 27.3 TFlops/s/GPU on 102 GPUs)\n",
              result.examples_per_s_per_gpu, result.tflops_per_gpu);
}

}  // namespace
}  // namespace varuna

int main() {
  varuna::Run();
  return 0;
}
