// Table 5: Varuna vs GPipe. The public GPipe implementation only partitions
// within a single node, so the direct comparison uses BERT-72 on one 4-GPU
// VM (4-stage pipeline) at micro-batch sizes 16 and 32; the multi-node 8.3B
// comparison runs GPipe's schedule on the simulated cluster under normal,
// 1.5x-slower and 2x-slower networks (mini-batch 8192 throughout).
#include <cstdio>

#include "bench/bench_util.h"

namespace varuna {
namespace {

PipelineEvalResult Eval(const TransformerSpec& spec, SystemUnderTest system, int depth,
                        int replicas, int m, const VmType& vm, double slowdown) {
  PipelineEvalRequest request;
  request.spec = spec;
  request.system = system;
  request.pipeline_depth = depth;
  request.data_parallel = replicas;
  request.microbatch_size = m;
  request.total_batch = 8192;
  request.vm = vm;
  request.network_slowdown = slowdown;
  return EvaluatePipeline(request);
}

void Run() {
  std::printf("=== Table 5: Varuna vs GPipe (4-stage pipelines, batch 8192) ===\n\n");
  Table table({"Workload", "Varuna ex/s/GPU", "GPipe ex/s/GPU", "Varuna advantage"});

  // BERT-72 on one NC24_v3 (single node, like the public GPipe code).
  for (const int m : {16, 32}) {
    const auto varuna = Eval(Bert72(), SystemUnderTest::kVaruna, 4, 1, m, Nc24V3(), 1.0);
    const auto gpipe = Eval(Bert72(), SystemUnderTest::kGpipe, 4, 1, m, Nc24V3(), 1.0);
    table.AddRow({"BERT-72 (m=" + std::to_string(m) + ")",
                  Table::Num(varuna.examples_per_s_per_gpu, 1),
                  Table::Num(gpipe.examples_per_s_per_gpu, 1),
                  "+" + Table::Num(100.0 * (varuna.examples_per_s_per_gpu /
                                                gpipe.examples_per_s_per_gpu -
                                            1.0),
                                   0) +
                      "%"});
  }

  // Simulated 8.3B multi-node comparison under degraded networks (18x3 on
  // 1-GPU VMs; the paper used its simulator for this sweep).
  for (const double slowdown : {1.0, 1.5, 2.0}) {
    const auto varuna = Eval(Gpt2_8_3B(), SystemUnderTest::kVaruna, 18, 3, 4, Nc6V3(), slowdown);
    const auto gpipe = Eval(Gpt2_8_3B(), SystemUnderTest::kGpipe, 18, 3, 4, Nc6V3(), slowdown);
    std::string label = "Simulated 8.3B";
    if (slowdown == 1.0) {
      label += " (normal network)";
    } else {
      label += " (" + Table::Num(slowdown, 1) + "x slower net)";
    }
    table.AddRow({label, Table::Num(varuna.examples_per_s_per_gpu, 2),
                  Table::Num(gpipe.examples_per_s_per_gpu, 2),
                  "+" + Table::Num(100.0 * (varuna.examples_per_s_per_gpu /
                                                gpipe.examples_per_s_per_gpu -
                                            1.0),
                                   0) +
                      "%"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper's Table 5: BERT-72 m=16: 35.9 vs 21.1 (+70%%); m=32: 41.8 vs 36.2 (+15%%);\n"
      "8.3B: 0.60 vs 0.55 / 0.59 vs 0.48 (1.5x) / 0.59 vs 0.426 (2x).\n"
      "Shapes: GPipe is far more sensitive to small micro-batches (bubble overhead)\n"
      "and its bunched schedule degrades faster as the network slows, while Varuna's\n"
      "jitter-tolerant schedule holds nearly flat.\n");
}

}  // namespace
}  // namespace varuna

int main() {
  varuna::Run();
  return 0;
}
