// Table 6: Varuna vs DeepSpeed vs Megatron-1F1B vs PipeDream on single-GPU
// commodity VMs, mini-batch 2400 (intra-layer parallelism and ZeRO disabled
// everywhere for a pure pipeline-schedule comparison). PipeDream's P weight
// versions do not fit 16 GB for these models — it reports OOM, as in the
// paper.
#include <cstdio>

#include "bench/bench_util.h"

namespace varuna {
namespace {

void Run() {
  std::printf("=== Table 6: pipeline systems on 1-GPU VMs, mini-batch 2400 ===\n\n");
  const std::vector<std::tuple<TransformerSpec, int, int>> workloads = {
      {Gpt2_8_3B(), 18, 4},
      {Gpt2_2_5B(), 9, 8},
  };
  const std::vector<SystemUnderTest> systems = {
      SystemUnderTest::kVaruna, SystemUnderTest::kDeepSpeed, SystemUnderTest::kOneFOneB,
      SystemUnderTest::kPipeDreamAsync};

  Table table({"Model (PxD)", "Varuna", "DeepSpeed", "Megatron-1F1B", "PipeDream"});
  for (const auto& [spec, depth, replicas] : workloads) {
    std::vector<std::string> row = {spec.name + " (" + ConfigLabel(depth, replicas) + ")"};
    double varuna_rate = 0.0;
    for (const SystemUnderTest system : systems) {
      PipelineEvalRequest request;
      request.spec = spec;
      request.system = system;
      request.pipeline_depth = depth;
      request.data_parallel = replicas;
      request.microbatch_size = 4;
      request.total_batch = 2400;
      request.runs = 3;
      const PipelineEvalResult result = EvaluatePipeline(request);
      if (!result.feasible) {
        row.push_back("OOM");
        continue;
      }
      if (system == SystemUnderTest::kVaruna) {
        varuna_rate = result.examples_per_s_per_gpu;
        row.push_back(Table::Num(result.examples_per_s_per_gpu, 2));
      } else {
        row.push_back(Table::Num(result.examples_per_s_per_gpu, 2) + " (" +
                      Table::Num(100.0 * (varuna_rate / result.examples_per_s_per_gpu - 1.0),
                                 0) +
                      "% behind)");
      }
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper's Table 6 (ex/s/GPU): 8.3B (18x4): Varuna 0.59, DeepSpeed 0.47,\n"
      "Megatron-1F1B 0.52, PipeDream OOM; 2.5B (9x8): 1.5 / 1.24 / 1.31 / OOM.\n"
      "Shapes: Varuna leads both (its opportunistic, interspersed schedule rides\n"
      "out network jitter); DeepSpeed's slotted schedule trails 1F1B; PipeDream's\n"
      "weight stashing cannot fit massive models.\n");
}

}  // namespace
}  // namespace varuna

int main() {
  varuna::Run();
  return 0;
}
