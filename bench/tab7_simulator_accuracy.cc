// Table 7: accuracy of the fast parametrized simulator's mini-batch time
// estimates against "actual" runs (here: the noisy discrete-event testbed,
// averaged over several mini-batches), for the paper's twelve 8.3B / 2.5B
// configurations. Also benchmarks the simulator's own runtime (§7.2: 660 ms
// for P=36, 376 ms for P=24, 391 ms for P=18 on a 128-GPU, batch-8192 job)
// using google-benchmark.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace varuna {
namespace {

struct Case {
  TransformerSpec spec;
  int depth;
  int replicas;
};

struct Prepared {
  TransformerSpec spec;
  OpGraph graph;
  ModelSections sections;
  std::unique_ptr<Cluster> cluster;
  Calibration calibration;
};

Prepared Prepare(const TransformerSpec& spec, int gpus) {
  Prepared prepared{spec, BuildTransformerOpGraph(spec), {}, nullptr, {}};
  prepared.sections = IdentifyCutPoints(prepared.graph, spec.num_layers).value();
  prepared.cluster = std::make_unique<Cluster>(CommodityFabric());
  prepared.cluster->AddVms(Nc6V3(), gpus + 2);
  Rng rng(99);
  prepared.calibration =
      Calibrate(prepared.sections, *prepared.cluster, CalibrationOptions(), &rng).value();
  return prepared;
}

void Run() {
  std::printf("=== Table 7: simulator estimates vs actual mini-batch times ===\n\n");
  const std::vector<Case> cases = {
      {Gpt2_8_3B(), 36, 3}, {Gpt2_8_3B(), 36, 2}, {Gpt2_8_3B(), 36, 1}, {Gpt2_8_3B(), 24, 4},
      {Gpt2_8_3B(), 24, 2}, {Gpt2_8_3B(), 18, 6}, {Gpt2_8_3B(), 18, 4}, {Gpt2_8_3B(), 18, 3},
      {Gpt2_2_5B(), 27, 2}, {Gpt2_2_5B(), 18, 3}, {Gpt2_2_5B(), 9, 7},  {Gpt2_2_5B(), 6, 10},
  };

  Table table({"Model", "Config (PxD)", "Estimated (s)", "Actual (s)", "error"});
  double worst_error = 0.0;
  for (const Case& test_case : cases) {
    const int m = 4;
    const int num_microbatches =
        static_cast<int>(std::ceil(8192.0 / (m * test_case.replicas)));
    Prepared prepared = Prepare(test_case.spec, test_case.depth * test_case.replicas);
    const Partition partition = PartitionModel(prepared.sections, test_case.depth).value();
    const Schedule schedule =
        GenerateSchedule(ScheduleKind::kVaruna, test_case.depth, num_microbatches);

    FastSimulator simulator(&prepared.calibration);
    FastSimConfig config;
    config.sections = &prepared.sections;
    config.partition = &partition;
    config.data_parallel = test_case.replicas;
    config.microbatch_size = m;
    config.gpus_per_node = 1;
    const double estimated = simulator.EstimateMinibatch(schedule, config).minibatch_s;

    const Placement placement =
        PlaceJob(*prepared.cluster, test_case.depth, test_case.replicas).value();
    const auto timings = ComputeStageTimings(prepared.sections, partition, Nc6V3().gpu, m);
    Rng rng(7);
    PipelineExecutor executor(prepared.cluster.get(), &rng);
    double actual = 0.0;
    const int runs = 4;
    for (int run = 0; run < runs; ++run) {
      actual += executor.Run(schedule, placement, timings, m).total_time_s;
    }
    actual /= runs;

    const double error = 100.0 * (estimated - actual) / actual;
    worst_error = std::max(worst_error, std::abs(error));
    table.AddRow({test_case.spec.name, ConfigLabel(test_case.depth, test_case.replicas),
                  Table::Num(estimated, 1), Table::Num(actual, 1),
                  (error >= 0 ? "+" : "") + Table::Num(error, 1) + "%"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("worst absolute error: %.1f%% (paper: estimates within ~5%% of measured)\n\n",
              worst_error);
  std::printf("=== §7.2 simulator runtime (google-benchmark) ===\n"
              "(paper quotes 660/376/391 ms for P=36/24/18, 128-GPU batch-8192 job)\n\n");
}

// --- Simulator runtime benchmarks (§7.2). -----------------------------------

void BenchmarkSimulator(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  static Prepared prepared = Prepare(Gpt2_8_3B(), 40);  // Calibration reused.
  const Partition partition = PartitionModel(prepared.sections, depth).value();
  const int replicas = 128 / depth;
  const int num_microbatches = static_cast<int>(std::ceil(8192.0 / (4.0 * replicas)));
  const Schedule schedule = GenerateSchedule(ScheduleKind::kVaruna, depth, num_microbatches);
  FastSimulator simulator(&prepared.calibration);
  FastSimConfig config;
  config.sections = &prepared.sections;
  config.partition = &partition;
  config.data_parallel = replicas;
  config.microbatch_size = 4;
  config.gpus_per_node = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.EstimateMinibatch(schedule, config).minibatch_s);
  }
}
BENCHMARK(BenchmarkSimulator)->Arg(36)->Arg(24)->Arg(18)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace varuna

int main(int argc, char** argv) {
  varuna::Run();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
