file(REMOVE_RECURSE
  "CMakeFiles/ablation_varuna_design.dir/bench/ablation_varuna_design.cc.o"
  "CMakeFiles/ablation_varuna_design.dir/bench/ablation_varuna_design.cc.o.d"
  "bench/ablation_varuna_design"
  "bench/ablation_varuna_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_varuna_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
