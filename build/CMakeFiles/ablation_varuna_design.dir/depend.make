# Empty dependencies file for ablation_varuna_design.
# This may be replaced when dependencies are built.
