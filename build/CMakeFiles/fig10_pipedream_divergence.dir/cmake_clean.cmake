file(REMOVE_RECURSE
  "CMakeFiles/fig10_pipedream_divergence.dir/bench/fig10_pipedream_divergence.cc.o"
  "CMakeFiles/fig10_pipedream_divergence.dir/bench/fig10_pipedream_divergence.cc.o.d"
  "bench/fig10_pipedream_divergence"
  "bench/fig10_pipedream_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pipedream_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
