# Empty compiler generated dependencies file for fig10_pipedream_divergence.
# This may be replaced when dependencies are built.
