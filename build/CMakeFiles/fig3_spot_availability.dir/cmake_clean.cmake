file(REMOVE_RECURSE
  "CMakeFiles/fig3_spot_availability.dir/bench/fig3_spot_availability.cc.o"
  "CMakeFiles/fig3_spot_availability.dir/bench/fig3_spot_availability.cc.o.d"
  "bench/fig3_spot_availability"
  "bench/fig3_spot_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_spot_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
