# Empty compiler generated dependencies file for fig3_spot_availability.
# This may be replaced when dependencies are built.
