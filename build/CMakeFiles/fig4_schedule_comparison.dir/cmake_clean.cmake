file(REMOVE_RECURSE
  "CMakeFiles/fig4_schedule_comparison.dir/bench/fig4_schedule_comparison.cc.o"
  "CMakeFiles/fig4_schedule_comparison.dir/bench/fig4_schedule_comparison.cc.o.d"
  "bench/fig4_schedule_comparison"
  "bench/fig4_schedule_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_schedule_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
