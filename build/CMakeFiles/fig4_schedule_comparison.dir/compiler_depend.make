# Empty compiler generated dependencies file for fig4_schedule_comparison.
# This may be replaced when dependencies are built.
