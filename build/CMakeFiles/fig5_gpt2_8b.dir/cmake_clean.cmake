file(REMOVE_RECURSE
  "CMakeFiles/fig5_gpt2_8b.dir/bench/fig5_gpt2_8b.cc.o"
  "CMakeFiles/fig5_gpt2_8b.dir/bench/fig5_gpt2_8b.cc.o.d"
  "bench/fig5_gpt2_8b"
  "bench/fig5_gpt2_8b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gpt2_8b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
