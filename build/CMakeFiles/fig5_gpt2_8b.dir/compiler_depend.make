# Empty compiler generated dependencies file for fig5_gpt2_8b.
# This may be replaced when dependencies are built.
