
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_gpt2_2_5b.cc" "CMakeFiles/fig6_gpt2_2_5b.dir/bench/fig6_gpt2_2_5b.cc.o" "gcc" "CMakeFiles/fig6_gpt2_2_5b.dir/bench/fig6_gpt2_2_5b.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/varuna/CMakeFiles/varuna_core.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/varuna_train.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/varuna_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/varuna_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/manager/CMakeFiles/varuna_manager.dir/DependInfo.cmake"
  "/root/repo/build/src/morph/CMakeFiles/varuna_morph.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/varuna_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/varuna_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/varuna_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/varuna_model.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/varuna_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/varuna_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/varuna_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
