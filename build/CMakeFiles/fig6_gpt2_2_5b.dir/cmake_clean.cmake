file(REMOVE_RECURSE
  "CMakeFiles/fig6_gpt2_2_5b.dir/bench/fig6_gpt2_2_5b.cc.o"
  "CMakeFiles/fig6_gpt2_2_5b.dir/bench/fig6_gpt2_2_5b.cc.o.d"
  "bench/fig6_gpt2_2_5b"
  "bench/fig6_gpt2_2_5b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gpt2_2_5b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
