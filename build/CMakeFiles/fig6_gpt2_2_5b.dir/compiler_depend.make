# Empty compiler generated dependencies file for fig6_gpt2_2_5b.
# This may be replaced when dependencies are built.
