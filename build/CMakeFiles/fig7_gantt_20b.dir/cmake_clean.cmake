file(REMOVE_RECURSE
  "CMakeFiles/fig7_gantt_20b.dir/bench/fig7_gantt_20b.cc.o"
  "CMakeFiles/fig7_gantt_20b.dir/bench/fig7_gantt_20b.cc.o.d"
  "bench/fig7_gantt_20b"
  "bench/fig7_gantt_20b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_gantt_20b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
