# Empty compiler generated dependencies file for fig7_gantt_20b.
# This may be replaced when dependencies are built.
