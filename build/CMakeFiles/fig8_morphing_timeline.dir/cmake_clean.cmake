file(REMOVE_RECURSE
  "CMakeFiles/fig8_morphing_timeline.dir/bench/fig8_morphing_timeline.cc.o"
  "CMakeFiles/fig8_morphing_timeline.dir/bench/fig8_morphing_timeline.cc.o.d"
  "bench/fig8_morphing_timeline"
  "bench/fig8_morphing_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_morphing_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
