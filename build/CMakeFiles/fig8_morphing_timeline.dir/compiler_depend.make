# Empty compiler generated dependencies file for fig8_morphing_timeline.
# This may be replaced when dependencies are built.
