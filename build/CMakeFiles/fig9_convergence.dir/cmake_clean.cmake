file(REMOVE_RECURSE
  "CMakeFiles/fig9_convergence.dir/bench/fig9_convergence.cc.o"
  "CMakeFiles/fig9_convergence.dir/bench/fig9_convergence.cc.o.d"
  "bench/fig9_convergence"
  "bench/fig9_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
