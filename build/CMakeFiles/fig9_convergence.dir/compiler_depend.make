# Empty compiler generated dependencies file for fig9_convergence.
# This may be replaced when dependencies are built.
