file(REMOVE_RECURSE
  "CMakeFiles/tab3_pipeline_depth.dir/bench/tab3_pipeline_depth.cc.o"
  "CMakeFiles/tab3_pipeline_depth.dir/bench/tab3_pipeline_depth.cc.o.d"
  "bench/tab3_pipeline_depth"
  "bench/tab3_pipeline_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_pipeline_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
