# Empty dependencies file for tab3_pipeline_depth.
# This may be replaced when dependencies are built.
