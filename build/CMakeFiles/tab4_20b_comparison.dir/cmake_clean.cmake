file(REMOVE_RECURSE
  "CMakeFiles/tab4_20b_comparison.dir/bench/tab4_20b_comparison.cc.o"
  "CMakeFiles/tab4_20b_comparison.dir/bench/tab4_20b_comparison.cc.o.d"
  "bench/tab4_20b_comparison"
  "bench/tab4_20b_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_20b_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
