# Empty compiler generated dependencies file for tab4_20b_comparison.
# This may be replaced when dependencies are built.
