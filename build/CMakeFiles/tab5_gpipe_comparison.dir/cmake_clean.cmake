file(REMOVE_RECURSE
  "CMakeFiles/tab5_gpipe_comparison.dir/bench/tab5_gpipe_comparison.cc.o"
  "CMakeFiles/tab5_gpipe_comparison.dir/bench/tab5_gpipe_comparison.cc.o.d"
  "bench/tab5_gpipe_comparison"
  "bench/tab5_gpipe_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab5_gpipe_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
