# Empty compiler generated dependencies file for tab5_gpipe_comparison.
# This may be replaced when dependencies are built.
