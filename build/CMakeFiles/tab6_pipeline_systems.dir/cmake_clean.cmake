file(REMOVE_RECURSE
  "CMakeFiles/tab6_pipeline_systems.dir/bench/tab6_pipeline_systems.cc.o"
  "CMakeFiles/tab6_pipeline_systems.dir/bench/tab6_pipeline_systems.cc.o.d"
  "bench/tab6_pipeline_systems"
  "bench/tab6_pipeline_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_pipeline_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
