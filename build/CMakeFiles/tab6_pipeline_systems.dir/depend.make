# Empty dependencies file for tab6_pipeline_systems.
# This may be replaced when dependencies are built.
