file(REMOVE_RECURSE
  "CMakeFiles/tab7_simulator_accuracy.dir/bench/tab7_simulator_accuracy.cc.o"
  "CMakeFiles/tab7_simulator_accuracy.dir/bench/tab7_simulator_accuracy.cc.o.d"
  "bench/tab7_simulator_accuracy"
  "bench/tab7_simulator_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab7_simulator_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
