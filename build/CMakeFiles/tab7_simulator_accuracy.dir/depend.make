# Empty dependencies file for tab7_simulator_accuracy.
# This may be replaced when dependencies are built.
