file(REMOVE_RECURSE
  "CMakeFiles/autoconfig_sweep.dir/autoconfig_sweep.cpp.o"
  "CMakeFiles/autoconfig_sweep.dir/autoconfig_sweep.cpp.o.d"
  "autoconfig_sweep"
  "autoconfig_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoconfig_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
