# Empty dependencies file for autoconfig_sweep.
# This may be replaced when dependencies are built.
