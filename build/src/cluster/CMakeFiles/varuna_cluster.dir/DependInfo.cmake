
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/varuna_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/varuna_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/fail_stutter.cc" "src/cluster/CMakeFiles/varuna_cluster.dir/fail_stutter.cc.o" "gcc" "src/cluster/CMakeFiles/varuna_cluster.dir/fail_stutter.cc.o.d"
  "/root/repo/src/cluster/placement.cc" "src/cluster/CMakeFiles/varuna_cluster.dir/placement.cc.o" "gcc" "src/cluster/CMakeFiles/varuna_cluster.dir/placement.cc.o.d"
  "/root/repo/src/cluster/spot_market.cc" "src/cluster/CMakeFiles/varuna_cluster.dir/spot_market.cc.o" "gcc" "src/cluster/CMakeFiles/varuna_cluster.dir/spot_market.cc.o.d"
  "/root/repo/src/cluster/vm.cc" "src/cluster/CMakeFiles/varuna_cluster.dir/vm.cc.o" "gcc" "src/cluster/CMakeFiles/varuna_cluster.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/varuna_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/varuna_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/varuna_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
