file(REMOVE_RECURSE
  "CMakeFiles/varuna_cluster.dir/cluster.cc.o"
  "CMakeFiles/varuna_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/varuna_cluster.dir/fail_stutter.cc.o"
  "CMakeFiles/varuna_cluster.dir/fail_stutter.cc.o.d"
  "CMakeFiles/varuna_cluster.dir/placement.cc.o"
  "CMakeFiles/varuna_cluster.dir/placement.cc.o.d"
  "CMakeFiles/varuna_cluster.dir/spot_market.cc.o"
  "CMakeFiles/varuna_cluster.dir/spot_market.cc.o.d"
  "CMakeFiles/varuna_cluster.dir/vm.cc.o"
  "CMakeFiles/varuna_cluster.dir/vm.cc.o.d"
  "libvaruna_cluster.a"
  "libvaruna_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varuna_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
