file(REMOVE_RECURSE
  "libvaruna_cluster.a"
)
