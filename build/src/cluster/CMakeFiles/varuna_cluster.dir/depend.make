# Empty dependencies file for varuna_cluster.
# This may be replaced when dependencies are built.
