file(REMOVE_RECURSE
  "CMakeFiles/varuna_common.dir/gantt.cc.o"
  "CMakeFiles/varuna_common.dir/gantt.cc.o.d"
  "CMakeFiles/varuna_common.dir/rng.cc.o"
  "CMakeFiles/varuna_common.dir/rng.cc.o.d"
  "CMakeFiles/varuna_common.dir/stats.cc.o"
  "CMakeFiles/varuna_common.dir/stats.cc.o.d"
  "CMakeFiles/varuna_common.dir/table.cc.o"
  "CMakeFiles/varuna_common.dir/table.cc.o.d"
  "libvaruna_common.a"
  "libvaruna_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varuna_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
