file(REMOVE_RECURSE
  "libvaruna_common.a"
)
