# Empty compiler generated dependencies file for varuna_common.
# This may be replaced when dependencies are built.
