file(REMOVE_RECURSE
  "CMakeFiles/varuna_manager.dir/checkpoint.cc.o"
  "CMakeFiles/varuna_manager.dir/checkpoint.cc.o.d"
  "CMakeFiles/varuna_manager.dir/elastic_trainer.cc.o"
  "CMakeFiles/varuna_manager.dir/elastic_trainer.cc.o.d"
  "libvaruna_manager.a"
  "libvaruna_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varuna_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
