file(REMOVE_RECURSE
  "libvaruna_manager.a"
)
