# Empty dependencies file for varuna_manager.
# This may be replaced when dependencies are built.
