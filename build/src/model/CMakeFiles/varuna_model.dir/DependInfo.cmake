
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/cutpoints.cc" "src/model/CMakeFiles/varuna_model.dir/cutpoints.cc.o" "gcc" "src/model/CMakeFiles/varuna_model.dir/cutpoints.cc.o.d"
  "/root/repo/src/model/op_graph.cc" "src/model/CMakeFiles/varuna_model.dir/op_graph.cc.o" "gcc" "src/model/CMakeFiles/varuna_model.dir/op_graph.cc.o.d"
  "/root/repo/src/model/tracer.cc" "src/model/CMakeFiles/varuna_model.dir/tracer.cc.o" "gcc" "src/model/CMakeFiles/varuna_model.dir/tracer.cc.o.d"
  "/root/repo/src/model/transformer.cc" "src/model/CMakeFiles/varuna_model.dir/transformer.cc.o" "gcc" "src/model/CMakeFiles/varuna_model.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/varuna_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
