file(REMOVE_RECURSE
  "CMakeFiles/varuna_model.dir/cutpoints.cc.o"
  "CMakeFiles/varuna_model.dir/cutpoints.cc.o.d"
  "CMakeFiles/varuna_model.dir/op_graph.cc.o"
  "CMakeFiles/varuna_model.dir/op_graph.cc.o.d"
  "CMakeFiles/varuna_model.dir/tracer.cc.o"
  "CMakeFiles/varuna_model.dir/tracer.cc.o.d"
  "CMakeFiles/varuna_model.dir/transformer.cc.o"
  "CMakeFiles/varuna_model.dir/transformer.cc.o.d"
  "libvaruna_model.a"
  "libvaruna_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varuna_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
