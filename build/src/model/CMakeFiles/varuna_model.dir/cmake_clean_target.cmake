file(REMOVE_RECURSE
  "libvaruna_model.a"
)
