# Empty compiler generated dependencies file for varuna_model.
# This may be replaced when dependencies are built.
