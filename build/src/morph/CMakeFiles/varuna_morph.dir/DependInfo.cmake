
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/morph/calibration.cc" "src/morph/CMakeFiles/varuna_morph.dir/calibration.cc.o" "gcc" "src/morph/CMakeFiles/varuna_morph.dir/calibration.cc.o.d"
  "/root/repo/src/morph/config_search.cc" "src/morph/CMakeFiles/varuna_morph.dir/config_search.cc.o" "gcc" "src/morph/CMakeFiles/varuna_morph.dir/config_search.cc.o.d"
  "/root/repo/src/morph/fast_sim.cc" "src/morph/CMakeFiles/varuna_morph.dir/fast_sim.cc.o" "gcc" "src/morph/CMakeFiles/varuna_morph.dir/fast_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/varuna_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/varuna_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/varuna_model.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/varuna_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/varuna_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/varuna_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
