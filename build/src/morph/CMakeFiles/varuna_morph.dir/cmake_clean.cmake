file(REMOVE_RECURSE
  "CMakeFiles/varuna_morph.dir/calibration.cc.o"
  "CMakeFiles/varuna_morph.dir/calibration.cc.o.d"
  "CMakeFiles/varuna_morph.dir/config_search.cc.o"
  "CMakeFiles/varuna_morph.dir/config_search.cc.o.d"
  "CMakeFiles/varuna_morph.dir/fast_sim.cc.o"
  "CMakeFiles/varuna_morph.dir/fast_sim.cc.o.d"
  "libvaruna_morph.a"
  "libvaruna_morph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varuna_morph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
