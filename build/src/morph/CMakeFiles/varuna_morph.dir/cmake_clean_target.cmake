file(REMOVE_RECURSE
  "libvaruna_morph.a"
)
