# Empty compiler generated dependencies file for varuna_morph.
# This may be replaced when dependencies are built.
