file(REMOVE_RECURSE
  "CMakeFiles/varuna_net.dir/network.cc.o"
  "CMakeFiles/varuna_net.dir/network.cc.o.d"
  "CMakeFiles/varuna_net.dir/topology.cc.o"
  "CMakeFiles/varuna_net.dir/topology.cc.o.d"
  "libvaruna_net.a"
  "libvaruna_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varuna_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
