file(REMOVE_RECURSE
  "libvaruna_net.a"
)
