# Empty dependencies file for varuna_net.
# This may be replaced when dependencies are built.
