file(REMOVE_RECURSE
  "CMakeFiles/varuna_nn.dir/layers.cc.o"
  "CMakeFiles/varuna_nn.dir/layers.cc.o.d"
  "CMakeFiles/varuna_nn.dir/optimizer.cc.o"
  "CMakeFiles/varuna_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/varuna_nn.dir/synthetic_task.cc.o"
  "CMakeFiles/varuna_nn.dir/synthetic_task.cc.o.d"
  "libvaruna_nn.a"
  "libvaruna_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varuna_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
