file(REMOVE_RECURSE
  "libvaruna_nn.a"
)
