# Empty compiler generated dependencies file for varuna_nn.
# This may be replaced when dependencies are built.
