file(REMOVE_RECURSE
  "CMakeFiles/varuna_parallel.dir/data_parallel.cc.o"
  "CMakeFiles/varuna_parallel.dir/data_parallel.cc.o.d"
  "CMakeFiles/varuna_parallel.dir/intra_layer.cc.o"
  "CMakeFiles/varuna_parallel.dir/intra_layer.cc.o.d"
  "libvaruna_parallel.a"
  "libvaruna_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varuna_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
