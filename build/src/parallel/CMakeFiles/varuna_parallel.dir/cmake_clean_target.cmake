file(REMOVE_RECURSE
  "libvaruna_parallel.a"
)
