# Empty dependencies file for varuna_parallel.
# This may be replaced when dependencies are built.
