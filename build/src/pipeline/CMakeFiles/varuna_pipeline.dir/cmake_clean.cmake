file(REMOVE_RECURSE
  "CMakeFiles/varuna_pipeline.dir/executor.cc.o"
  "CMakeFiles/varuna_pipeline.dir/executor.cc.o.d"
  "CMakeFiles/varuna_pipeline.dir/memory.cc.o"
  "CMakeFiles/varuna_pipeline.dir/memory.cc.o.d"
  "CMakeFiles/varuna_pipeline.dir/schedule.cc.o"
  "CMakeFiles/varuna_pipeline.dir/schedule.cc.o.d"
  "CMakeFiles/varuna_pipeline.dir/stage_timing.cc.o"
  "CMakeFiles/varuna_pipeline.dir/stage_timing.cc.o.d"
  "libvaruna_pipeline.a"
  "libvaruna_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varuna_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
