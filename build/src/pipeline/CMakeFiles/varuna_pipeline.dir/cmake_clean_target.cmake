file(REMOVE_RECURSE
  "libvaruna_pipeline.a"
)
