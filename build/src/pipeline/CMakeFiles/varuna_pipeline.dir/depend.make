# Empty dependencies file for varuna_pipeline.
# This may be replaced when dependencies are built.
