file(REMOVE_RECURSE
  "CMakeFiles/varuna_sim.dir/engine.cc.o"
  "CMakeFiles/varuna_sim.dir/engine.cc.o.d"
  "libvaruna_sim.a"
  "libvaruna_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varuna_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
