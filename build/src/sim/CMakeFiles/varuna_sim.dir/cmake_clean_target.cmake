file(REMOVE_RECURSE
  "libvaruna_sim.a"
)
