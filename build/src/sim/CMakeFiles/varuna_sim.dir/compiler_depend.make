# Empty compiler generated dependencies file for varuna_sim.
# This may be replaced when dependencies are built.
