file(REMOVE_RECURSE
  "CMakeFiles/varuna_tensor.dir/tensor.cc.o"
  "CMakeFiles/varuna_tensor.dir/tensor.cc.o.d"
  "libvaruna_tensor.a"
  "libvaruna_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varuna_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
