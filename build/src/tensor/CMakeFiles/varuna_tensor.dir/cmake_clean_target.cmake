file(REMOVE_RECURSE
  "libvaruna_tensor.a"
)
