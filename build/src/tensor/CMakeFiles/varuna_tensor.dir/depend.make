# Empty dependencies file for varuna_tensor.
# This may be replaced when dependencies are built.
