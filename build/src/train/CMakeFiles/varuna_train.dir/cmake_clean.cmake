file(REMOVE_RECURSE
  "CMakeFiles/varuna_train.dir/trainers.cc.o"
  "CMakeFiles/varuna_train.dir/trainers.cc.o.d"
  "libvaruna_train.a"
  "libvaruna_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varuna_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
