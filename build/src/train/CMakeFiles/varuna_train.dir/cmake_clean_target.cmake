file(REMOVE_RECURSE
  "libvaruna_train.a"
)
