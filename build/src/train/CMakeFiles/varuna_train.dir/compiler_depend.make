# Empty compiler generated dependencies file for varuna_train.
# This may be replaced when dependencies are built.
