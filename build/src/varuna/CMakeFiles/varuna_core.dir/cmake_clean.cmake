file(REMOVE_RECURSE
  "CMakeFiles/varuna_core.dir/experiment.cc.o"
  "CMakeFiles/varuna_core.dir/experiment.cc.o.d"
  "libvaruna_core.a"
  "libvaruna_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varuna_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
