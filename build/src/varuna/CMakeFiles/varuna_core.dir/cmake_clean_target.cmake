file(REMOVE_RECURSE
  "libvaruna_core.a"
)
