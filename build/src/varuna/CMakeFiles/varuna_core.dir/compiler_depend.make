# Empty compiler generated dependencies file for varuna_core.
# This may be replaced when dependencies are built.
