file(REMOVE_RECURSE
  "CMakeFiles/morph_test.dir/morph_test.cc.o"
  "CMakeFiles/morph_test.dir/morph_test.cc.o.d"
  "morph_test"
  "morph_test.pdb"
  "morph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
