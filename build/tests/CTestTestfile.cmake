# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/morph_test[1]_include.cmake")
include("/root/repo/build/tests/manager_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
