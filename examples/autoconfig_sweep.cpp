// Auto-configuration walkthrough (§4.3-§4.4): one-time scale-invariant
// calibration, then the O(G) sweep the manager runs on every morphing event.
// Shows the chosen micro-batch size, every feasible P x D with its
// fast-simulator estimate, and how the best configuration shifts as the
// number of available GPUs changes.
//
// Usage: autoconfig_sweep [gpus...]     (default: 24 36 64 100)
#include <cstdio>
#include <cstdlib>

#include "src/varuna/varuna.h"

int main(int argc, char** argv) {
  using namespace varuna;

  const TransformerSpec spec = Gpt2_2_5B();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const ModelSections sections = IdentifyCutPoints(graph, spec.num_layers).value();

  std::vector<int> gpu_counts = {24, 36, 64, 100};
  if (argc > 1) {
    gpu_counts.clear();
    for (int i = 1; i < argc; ++i) {
      gpu_counts.push_back(std::atoi(argv[i]));
    }
  }

  // A cluster sample big enough for the largest sweep.
  int max_gpus = 8;
  for (const int gpus : gpu_counts) {
    max_gpus = std::max(max_gpus, gpus);
  }
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc6V3(), max_gpus + 4);

  // One-time calibration (§4.3): a few mocked micro-batches per cut-point.
  Rng rng(2024);
  const Calibration calibration =
      Calibrate(sections, cluster, CalibrationOptions(), &rng).value();
  std::printf("calibration: %zu sections profiled; allreduce fit bw=%.2f Gbps, "
              "step latency %.2f ms; transfer tail p=%.3f mean=%.0f ms\n\n",
              calibration.sections.size(), calibration.allreduce.bandwidth_bps * 8 / 1e9,
              calibration.allreduce.step_latency_s * 1e3, calibration.send_stall_probability,
              calibration.send_stall_mean_s * 1e3);

  ConfigSearch search(&spec, &sections, &calibration);
  SearchConstraints constraints;
  constraints.total_batch = 8192;
  constraints.budget.gpu_memory_bytes = Nc6V3().gpu.memory_bytes;
  // This example prints the full feasibility table; bound pruning would thin
  // it to the competitive configs (the winner is identical either way).
  constraints.prune = false;
  std::printf("micro-batch size picked once: m = %d (lowest m where F(m)/m stops improving)\n\n",
              search.PickMicrobatchSize(constraints.microbatch_tolerance));

  for (const int gpus : gpu_counts) {
    const auto sweep = search.Sweep(gpus, constraints);
    if (!sweep.ok()) {
      std::printf("G=%d: %s\n\n", gpus, sweep.error().c_str());
      continue;
    }
    Table table({"P x D", "Nm", "est. mini-batch (s)", "est. ex/s", "est. ex/s/GPU"});
    for (const JobConfig& config : sweep.value()) {
      table.AddRow({std::to_string(config.pipeline_depth) + "x" +
                        std::to_string(config.data_parallel),
                    std::to_string(config.num_microbatches),
                    Table::Num(config.est_minibatch_s, 1),
                    Table::Num(config.est_examples_per_s, 1),
                    Table::Num(config.est_examples_per_s / config.gpus_used, 2)});
    }
    const JobConfig best = search.Best(gpus, constraints).value();
    std::printf("G = %d available GPUs (%zu feasible configs, exploration O(G)):\n%s"
                "  -> chosen: %dx%d using %d GPUs, est. %.1f ex/s\n\n",
                gpus, sweep.value().size(), table.Render().c_str(), best.pipeline_depth,
                best.data_parallel, best.gpus_used, best.est_examples_per_s);
  }
  return 0;
}
