// Correctness-preserving training semantics, demonstrated on real numerics:
//
//  1. The pipeline-partitioned, micro-batched, recompute-based trainer
//     produces *bit-identical* gradients to single-device execution.
//  2. Cross-partition shared state (the NVLAMB-style global gradient norm)
//     must be synchronized across stages — skipping the sync silently
//     changes the update (the bug Varuna's tracer catches, §5.2).
//  3. Training through the Varuna pipeline converges to the task's
//     information-theoretic optimum; asynchronous (PipeDream-style) staleness
//     diverges at the same hyper-parameters.
#include <cmath>
#include <cstdio>

#include "src/varuna/varuna.h"

int main() {
  using namespace varuna;

  constexpr int kVocab = 16;
  constexpr int kWidth = 24;
  constexpr int kBlocks = 6;
  MarkovTask task(kVocab, 11);
  std::printf("task: synthetic Markov LM, vocab %d, optimal perplexity %.3f\n\n", kVocab,
              task.OptimalPerplexity());

  auto fresh_model = [&](uint64_t seed) {
    Rng rng(seed);
    return BuildBlockModel(kVocab, kWidth, kBlocks, &rng);
  };

  // --- 1. Gradient equivalence.
  {
    Rng data_rng(3);
    const Batch batch = task.Sample(32, &data_rng);
    ReferenceTrainer reference(fresh_model(42));
    SyncPipelineTrainer pipeline(fresh_model(42), {0, 3, 5, kBlocks + 2});
    reference.ForwardBackward(batch, 4);
    pipeline.ForwardBackward(batch, 4);
    float max_diff = 0.0f;
    const auto ref = reference.Gradients();
    const auto pipe = pipeline.Gradients();
    for (size_t i = 0; i < ref.size(); ++i) {
      max_diff = std::max(max_diff, MaxAbsDiff(*ref[i], *pipe[i]));
    }
    std::printf("1. pipeline (3 stages, 8 micro-batches, recompute) vs single device:\n"
                "   max gradient difference = %g  %s\n\n",
                max_diff, max_diff == 0.0f ? "(bit-identical)" : "(MISMATCH!)");
  }

  // --- 2. Global-norm sync across partitions.
  {
    Rng data_rng(5);
    const Batch batch = task.Sample(32, &data_rng);
    SyncPipelineTrainer synced(fresh_model(7), {0, 4, kBlocks + 2});
    SyncPipelineTrainer unsynced(fresh_model(7), {0, 4, kBlocks + 2});
    synced.ForwardBackward(batch, 4);
    unsynced.ForwardBackward(batch, 4);
    const double global = synced.ClipByGlobalNorm(0.5f, /*sync_across_stages=*/true);
    const double local = unsynced.ClipByGlobalNorm(0.5f, /*sync_across_stages=*/false);
    float divergence = 0.0f;
    const auto a = synced.Gradients();
    const auto b = unsynced.Gradients();
    for (size_t i = 0; i < a.size(); ++i) {
      divergence = std::max(divergence, MaxAbsDiff(*a[i], *b[i]));
    }
    std::printf("2. global-norm clipping: synced norm %.4f vs per-stage norms (max %.4f);\n"
                "   skipping the cross-partition allreduce perturbs gradients by up to %g\n\n",
                global, local, divergence);
  }

  // --- 3. Convergence through the pipeline; divergence under staleness.
  {
    SyncPipelineTrainer trainer(fresh_model(21), {0, 3, 5, kBlocks + 2});
    AdamOptimizer optimizer(trainer.Parameters(), trainer.Gradients(), 3e-3f);
    Rng data_rng(9);
    Rng val_rng(101);
    std::printf("3a. training through the Varuna pipeline (batch 256, m=16):\n");
    for (int step = 0; step <= 400; ++step) {
      const Batch batch = task.Sample(256, &data_rng);
      optimizer.ZeroGradients();
      const double loss = trainer.ForwardBackward(batch, 16);
      trainer.ClipByGlobalNorm(1.0f, true);
      optimizer.Step();
      if (step % 80 == 0 || step == 400) {
        Rng eval = val_rng;
        const Batch val = task.Sample(2048, &eval);
        SoftmaxCrossEntropy eval_loss;
        const double ppl = std::exp(eval_loss.Loss(trainer.Forward(val.inputs), val.targets));
        std::printf("    step %4d: train loss %.4f, val ppl %.3f\n", step, loss, ppl);
      }
    }
    std::printf("    (optimal ppl %.3f)\n\n", task.OptimalPerplexity());

    // Same setup as the Figure 10 bench (vocab 12, width 16): hyper-parameters
    // at which synchronous SGD is stable but pipeline staleness is not.
    std::printf("3b. PipeDream-style staleness (SGD lr=0.1, momentum 0.9):\n");
    MarkovTask stale_task(12, 6);
    for (const int staleness : {0, 6}) {
      Rng stale_rng(77);
      StaleGradientTrainer stale(BuildBlockModel(12, 16, 6, &stale_rng), staleness, 0.1f, 0.9f);
      Rng stream(31);
      double last = 0.0;
      bool diverged = false;
      for (int step = 0; step < 300 && !diverged; ++step) {
        last = stale.Step(stale_task.Sample(32, &stream));
        diverged = std::isnan(last) || last > 1e3;
      }
      if (diverged) {
        std::printf("    staleness %d: DIVERGED\n", staleness);
      } else {
        std::printf("    staleness %d: final loss %.4f\n", staleness, last);
      }
    }
  }
  return 0;
}
