// Quickstart: the 60-second tour of the Varuna library.
//
//  1. Describe a model (GPT-2 2.5B) and derive its profiled op graph.
//  2. Auto-partition it: identify cut-points, trace cross-partition state.
//  3. Build a commodity spot cluster and place a 9x4 job.
//  4. Generate the Varuna micro-batch schedule and run one mini-batch on the
//     discrete-event testbed.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "src/varuna/varuna.h"

int main() {
  using namespace varuna;

  // 1. The model, as the profiler would see it.
  const TransformerSpec spec = Gpt2_2_5B();
  std::printf("model: %s — %.2fB parameters, %d layers, hidden %d\n", spec.name.c_str(),
              spec.TotalParams() / 1e9, spec.num_layers, spec.hidden);

  const OpGraph graph = BuildTransformerOpGraph(spec);
  const ModelSections sections = IdentifyCutPoints(graph, spec.num_layers).value();
  std::printf("auto-partitioner: %d cut-point sections (boundary activation %.2f MiB/example)\n",
              sections.num_sections(), spec.BoundaryActivationBytes() / kMiB);

  // 2. Cross-partition dependencies the tracer would flag (§5.2).
  const TraceReport trace = TraceCrossPartitionState(graph, sections, TraceOptions());
  for (const SharedTensor& tensor : trace.shared) {
    std::printf("tracer: shared tensor '%s' (%.1f MB synced per mini-batch)\n",
                tensor.name.c_str(), tensor.sync_bytes / 1e6);
  }

  // 3. A commodity cluster of 1-GPU spot VMs, and a 9x4 placement.
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc6V3(), 36);
  const int depth = 9;
  const int replicas = 4;
  const Placement placement = PlaceJob(cluster, depth, replicas).value();
  const Partition partition = PartitionModel(sections, depth).value();
  std::printf("placement: %dx%d on %d active GPUs\n", depth, replicas,
              cluster.NumActiveGpus());

  // 4. One mini-batch (batch 2400, micro-batch 4) through the Varuna schedule.
  const int m = 4;
  const int num_microbatches = 2400 / (m * replicas);
  const Schedule schedule = GenerateSchedule(ScheduleKind::kVaruna, depth, num_microbatches);
  const auto timings = ComputeStageTimings(sections, partition, Nc6V3().gpu, m);

  Rng rng(1);
  PipelineExecutor executor(&cluster, &rng);
  ExecutorOptions options;
  options.shared_state_sync_bytes = trace.TotalSyncBytes();
  const MinibatchResult result =
      executor.Run(schedule, placement, timings, m, options);

  std::printf("\nmini-batch of %.0f examples: %.1f s "
              "(pipeline %.1f s, allreduce %.2f s, shared sync %.2f s)\n",
              result.examples, result.total_time_s, result.pipeline_time_s,
              result.allreduce_time_s, result.sync_time_s);
  std::printf("throughput: %.1f ex/s total, %.2f ex/s/GPU, GPU busy %.0f%%\n",
              result.ExamplesPerSecond(), result.ExamplesPerSecondPerGpu(depth * replicas),
              100.0 * result.mean_busy_fraction);
  return 0;
}
