// Interactive schedule explorer: renders the static micro-batch schedules of
// Varuna, GPipe, 1F1B and DeepSpeed side by side for any pipeline shape, in
// unit times (F = R = 1, B = 2), with makespans and idle fractions.
//
// Usage: schedule_explorer [depth] [microbatches]    (default: 4 8)
#include <cstdio>
#include <cstdlib>

#include "src/varuna/varuna.h"

int main(int argc, char** argv) {
  using namespace varuna;

  const int depth = argc > 1 ? std::atoi(argv[1]) : 4;
  const int microbatches = argc > 2 ? std::atoi(argv[2]) : 8;
  if (depth < 1 || depth > 64 || microbatches < 1 || microbatches > 512) {
    std::fprintf(stderr, "usage: %s [depth 1..64] [microbatches 1..512]\n", argv[0]);
    return 1;
  }

  std::printf("pipeline %d stages, %d micro-batches (unit times F=R=1, B=2)\n\n", depth,
              microbatches);
  // Work per stage: interior stages run F+R+B per micro-batch, the last stage
  // of Varuna runs F+B only.
  for (const ScheduleKind kind : {ScheduleKind::kVaruna, ScheduleKind::kGpipe,
                                  ScheduleKind::kOneFOneB, ScheduleKind::kDeepSpeed}) {
    const Schedule schedule = GenerateSchedule(kind, depth, microbatches);
    const double makespan = ScheduleMakespanUnits(schedule);
    const double busy_units = 4.0 * microbatches;  // Interior-stage work.
    std::printf("--- %s: makespan %.0f units, interior-stage utilisation %.0f%%%s\n",
                ToString(kind).c_str(), makespan, 100.0 * busy_units / makespan,
                schedule.opportunistic ? " (opportunistic at runtime)" : "");
    if (depth <= 12 && microbatches <= 24) {
      std::printf("%s\n", RenderScheduleGantt(schedule, 120).c_str());
    } else {
      std::printf("(too large to render; reduce depth/microbatches to see the Gantt)\n\n");
    }
  }
  return 0;
}
