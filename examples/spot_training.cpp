// Elastic training on spot VMs, end to end: the Varuna manager requests
// 1-GPU low-priority VMs from a churny market, calibrates once, configures
// the job, checkpoints continuously, replaces fail-stuttering VMs, and morphs
// through preemptions — a compressed (12-hour) version of the paper's
// Figure 8 run.
//
// Usage: spot_training [hours] [max_vms]     (default: 12 h, 96 VMs)
#include <cstdio>
#include <cstdlib>

#include "src/varuna/varuna.h"

int main(int argc, char** argv) {
  using namespace varuna;

  const double hours = argc > 1 ? std::atof(argv[1]) : 12.0;
  const int max_vms = argc > 2 ? std::atoi(argv[2]) : 96;

  SimEngine engine;
  Cluster cluster(CommodityFabric());
  SpotMarket market(&engine, Rng(5), 60.0);
  SpotPoolDynamics dynamics;
  dynamics.mean_availability = 0.7;
  dynamics.volatility = 0.14;
  dynamics.reversion_rate = 1.0 / (6.0 * kHour);
  dynamics.preemption_hazard = 1.0 / (60.0 * kHour);
  dynamics.max_grants_per_tick = 16;
  dynamics.reclaim_slack_vms = 8;
  const int pool = market.AddPool(Nc6V3(), max_vms, dynamics);

  TrainerOptions options;
  options.total_batch = 8192;
  options.demand_vms = max_vms;
  options.checkpoint_every_minibatches = 10;
  options.provision_check_interval_s = 1200.0;
  ElasticTrainer trainer(&engine, &cluster, &market, pool, Nc6V3(), Gpt2_2_5B(), options);
  FailStutterInjector stutter(&engine, &cluster, Rng(3), FailStutterOptions());

  trainer.Start();
  market.Start();
  stutter.Start();

  std::printf("training GPT-2 2.5B on up to %d spot VMs for %.0f simulated hours...\n\n",
              max_vms, hours);
  engine.RunUntil(hours * kHour);

  const SessionStats& stats = trainer.stats();
  std::printf("events:\n");
  for (const TimelineEvent& event : stats.events) {
    std::printf("  t=%6.2f h  %-10s -> %dx%d  (%d GPUs available)\n", event.time_s / kHour,
                event.kind.c_str(), event.pipeline_depth, event.data_parallel,
                event.gpus_available);
  }
  std::printf("\nafter %.0f h: %lld mini-batches (%.2e examples), %d morphs,\n"
              "%d preemptions hit the job, %d stutter replacements, %d checkpoints,\n"
              "%.2f h stalled (%.1f%% of wall clock)\n",
              hours, static_cast<long long>(stats.minibatches_done), stats.examples_processed,
              stats.morphs, stats.preemptions_hit, stats.stutters_detected, stats.checkpoints,
              stats.stalled_s / kHour, 100.0 * stats.stalled_s / (hours * kHour));
  if (trainer.current_config().has_value()) {
    std::printf("current config: %dx%d\n", trainer.current_config()->pipeline_depth,
                trainer.current_config()->data_parallel);
  }
  return 0;
}
