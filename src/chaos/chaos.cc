#include "src/chaos/chaos.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/cluster/vm.h"
#include "src/common/check.h"
#include "src/common/units.h"

namespace varuna {
namespace {

// Poll cadence for the mid-flush shard hunt. Coarse enough to stay cheap,
// fine enough to land inside a flush window (tens of seconds at the default
// checkpoint bandwidths).
constexpr double kShardPollIntervalS = 5.0;

}  // namespace

ChaosPlan ChaosPlan::Scripted(std::vector<ChaosAction> actions) {
  ChaosPlan plan;
  plan.actions = std::move(actions);
  return plan;
}

ChaosPlan ChaosPlan::Random(Rng* rng, double horizon_s, int num_actions) {
  VARUNA_CHECK_GT(horizon_s, 0.0);
  ChaosPlan plan;
  for (int i = 0; i < num_actions; ++i) {
    ChaosAction action;
    action.at_s = rng->Uniform(0.05, 0.90) * horizon_s;
    action.kind = static_cast<ChaosActionKind>(rng->UniformInt(0, 6));
    switch (action.kind) {
      case ChaosActionKind::kPreemptionStorm:
        action.count = static_cast<int>(rng->UniformInt(1, 5));
        action.duration_s = rng->Uniform(10.0, 120.0);
        break;
      case ChaosActionKind::kTargetedShardKill:
        action.count = static_cast<int>(rng->UniformInt(1, 8));
        action.duration_s = rng->Uniform(120.0, 900.0);
        break;
      case ChaosActionKind::kFailStutterBurst:
        action.count = static_cast<int>(rng->UniformInt(1, 4));
        action.magnitude = rng->Uniform(0.15, 0.5);
        action.duration_s = rng->Uniform(300.0, 1800.0);
        break;
      case ChaosActionKind::kHeartbeatLoss:
        action.count = static_cast<int>(rng->UniformInt(1, 3));
        action.duration_s = rng->Uniform(60.0, 600.0);
        break;
      case ChaosActionKind::kCorruptShard:
        action.count = static_cast<int>(rng->UniformInt(1, 2));
        break;
      case ChaosActionKind::kMidMorphPreempt:
        action.count = static_cast<int>(rng->UniformInt(1, 2));
        break;
      case ChaosActionKind::kCapacityCrash:
        action.magnitude = rng->Uniform(0.05, 0.5);
        action.duration_s = rng->Uniform(600.0, 2400.0);
        break;
    }
    plan.actions.push_back(action);
  }
  return plan;
}

ChaosEngine::ChaosEngine(SimEngine* engine, Cluster* cluster, SpotMarket* market,
                         int market_pool, ElasticTrainer* trainer,
                         FailStutterInjector* stutter, double baseline_mean_availability,
                         Rng rng, ChaosPlan plan)
    : engine_(engine),
      cluster_(cluster),
      market_(market),
      market_pool_(market_pool),
      trainer_(trainer),
      stutter_(stutter),
      baseline_mean_availability_(baseline_mean_availability),
      rng_(rng),
      plan_(std::move(plan)) {}

void ChaosEngine::Start() {
  VARUNA_CHECK(!started_) << "ChaosEngine started twice";
  started_ = true;
  trainer_->set_morph_observer(
      [this](const std::string& /*kind*/, double restore_delay_s) { OnMorph(restore_delay_s); });
  for (const ChaosAction& action : plan_.actions) {
    VARUNA_CHECK_GE(action.at_s, 0.0);
    engine_->Schedule(action.at_s, [this, action] { Fire(action); });
    ForecastAction(action);
  }
}

void ChaosEngine::ForecastAction(const ChaosAction& action) {
  // Storm forecasts for the oracle-proactive upper bound. The trainer drops
  // them unless its policy is kOracleProactive, so reactive and online-
  // predictor campaigns are untouched.
  switch (action.kind) {
    case ChaosActionKind::kPreemptionStorm:
      // Mirror Fire()'s spread: each kill is its own forecast entry.
      for (int i = 0; i < action.count; ++i) {
        const double delay =
            action.count > 1 ? action.duration_s * i / (action.count - 1) : 0.0;
        trainer_->ForecastStorm(action.at_s + delay, 1);
      }
      break;
    case ChaosActionKind::kMidMorphPreempt:
      // Fires mid-restore of the next morph after arming — timing unknowable
      // in advance, so forecast at the arming time (conservative).
      trainer_->ForecastStorm(action.at_s, action.count);
      break;
    case ChaosActionKind::kCapacityCrash: {
      const double fraction = std::clamp(action.magnitude, 0.0, 1.0);
      const int kills = static_cast<int>(
          std::ceil((1.0 - fraction) * market_->PoolMaxVms(market_pool_)));
      trainer_->ForecastStorm(action.at_s, kills);
      break;
    }
    default:
      break;  // Stutter/heartbeat/corruption actions do not evict VMs.
  }
}

void ChaosEngine::Fire(const ChaosAction& action) {
  ++actions_fired_;
  switch (action.kind) {
    case ChaosActionKind::kPreemptionStorm: {
      // Spread the kills over the window; each is a separate announced
      // market reclaim, so the manager's coalescing is genuinely exercised.
      for (int i = 0; i < action.count; ++i) {
        const double delay =
            action.count > 1 ? action.duration_s * i / (action.count - 1) : 0.0;
        engine_->Schedule(delay,
                          [this] { vms_killed_ += market_->ForcePreempt(market_pool_, 1); });
      }
      break;
    }
    case ChaosActionKind::kTargetedShardKill:
      PollShardKill(engine_->now() + action.duration_s, action.count);
      break;
    case ChaosActionKind::kFailStutterBurst:
      if (stutter_ != nullptr) {
        stutter_->Burst(action.count, 1.0 + std::max(0.05, action.magnitude),
                        action.duration_s);
      }
      break;
    case ChaosActionKind::kHeartbeatLoss: {
      const std::vector<VmId> vms = trainer_->PlacementVms();
      if (vms.empty()) {
        break;
      }
      for (int i = 0; i < action.count; ++i) {
        const VmId vm = vms[static_cast<size_t>(
            rng_.UniformInt(0, static_cast<int64_t>(vms.size()) - 1))];
        trainer_->MuteHeartbeats(vm, action.duration_s);
      }
      break;
    }
    case ChaosActionKind::kCorruptShard: {
      const int64_t target = trainer_->checkpoints().LatestUsable();
      if (target < 0) {
        break;
      }
      const CheckpointRecord* record = trainer_->checkpoints().Record(target);
      VARUNA_CHECK(record != nullptr);
      const int num_shards = static_cast<int>(record->shards.size());
      for (int i = 0; i < action.count; ++i) {
        const int shard = static_cast<int>(rng_.UniformInt(0, num_shards - 1));
        if (trainer_->mutable_checkpoints()->CorruptShard(target, shard)) {
          ++shards_corrupted_;
        }
      }
      break;
    }
    case ChaosActionKind::kMidMorphPreempt:
      armed_mid_morph_ += action.count;
      break;
    case ChaosActionKind::kCapacityCrash: {
      const double fraction = std::clamp(action.magnitude, 0.0, 1.0);
      market_->CrashAvailability(market_pool_, fraction);
      // Pin the mean down for the window so the process does not revert
      // immediately, then release it.
      market_->SetMeanAvailability(market_pool_, fraction);
      engine_->Schedule(action.duration_s, [this] {
        market_->SetMeanAvailability(market_pool_, baseline_mean_availability_);
      });
      break;
    }
  }
}

void ChaosEngine::PollShardKill(double deadline_s, int count) {
  const std::vector<VmId> owners = trainer_->checkpoints().ShardOwnersInFlight();
  if (!owners.empty()) {
    int killed = 0;
    for (const VmId vm : owners) {
      if (killed >= count) {
        break;
      }
      if (!cluster_->IsActive(vm)) {
        continue;
      }
      // Unannounced: straight at the cluster, behind the market's back. The
      // manager must notice via missed heartbeats; the checkpoint store's
      // preemption observer demotes the mid-flush shards to kLost.
      cluster_->Preempt(vm);
      ++killed;
    }
    vms_killed_ += killed;
    if (killed > 0) {
      return;
    }
  }
  if (engine_->now() + kShardPollIntervalS > deadline_s) {
    return;  // Window closed without catching a flush in flight.
  }
  engine_->Schedule(kShardPollIntervalS,
                    [this, deadline_s, count] { PollShardKill(deadline_s, count); });
}

void ChaosEngine::OnMorph(double restore_delay_s) {
  if (armed_mid_morph_ <= 0 || restore_delay_s <= 0.0) {
    return;
  }
  const int count = armed_mid_morph_;
  armed_mid_morph_ = 0;
  // Land in the middle of the restore window, killing the morph in flight.
  engine_->Schedule(restore_delay_s * 0.5, [this, count] {
    vms_killed_ += market_->ForcePreempt(market_pool_, count);
  });
}

ChaosCampaignSpec DefaultChaosCampaign(uint64_t seed) {
  ChaosCampaignSpec spec;
  spec.spec = Gpt2Medium();
  spec.options.total_batch = 1024;
  spec.options.demand_vms = spec.max_vms;
  spec.options.checkpoint_every_minibatches = 4;
  spec.options.provision_check_interval_s = 600.0;
  spec.options.seed = seed;
  return spec;
}

ChaosCampaignSpec RandomChaosCampaign(uint64_t seed) {
  ChaosCampaignSpec spec = DefaultChaosCampaign(seed);
  // The plan generator forks off a distinct stream so the campaign seed
  // simultaneously drives the session (via options.seed) and the plan.
  Rng plan_rng(seed * 6364136223846793005ULL + 1442695040888963407ULL);
  const int num_actions = 2 + static_cast<int>(plan_rng.UniformInt(0, 4));
  spec.plan = ChaosPlan::Random(&plan_rng, spec.horizon_s, num_actions);
  return spec;
}

ChaosCampaignSpec StormyChaosCampaign(uint64_t seed) {
  ChaosCampaignSpec spec = DefaultChaosCampaign(seed);
  // Elevated baseline churn plus scripted eviction waves over a longer
  // horizon. Sparse checkpoint cadence so a storm that lands between
  // checkpoints rolls back real work — the gap pre-migration closes.
  spec.preemption_hazard_per_s = 1.0 / (2.5 * 3600.0);
  spec.horizon_s = 2.0 * 3600.0;
  spec.options.checkpoint_every_minibatches = 16;
  Rng storm_rng(seed * 2654435761ULL + 99991ULL);
  const int num_storms = 3 + static_cast<int>(storm_rng.UniformInt(0, 2));
  for (int i = 0; i < num_storms; ++i) {
    ChaosAction storm;
    storm.kind = ChaosActionKind::kPreemptionStorm;
    storm.at_s = storm_rng.Uniform(0.10, 0.85) * spec.horizon_s;
    storm.count = static_cast<int>(storm_rng.UniformInt(2, 6));
    storm.duration_s = storm_rng.Uniform(30.0, 240.0);
    spec.plan.actions.push_back(storm);
  }
  std::sort(spec.plan.actions.begin(), spec.plan.actions.end(),
            [](const ChaosAction& a, const ChaosAction& b) { return a.at_s < b.at_s; });
  return spec;
}

ChaosCampaignSpec FastRecoveryStormCampaign(uint64_t seed) {
  ChaosCampaignSpec spec = StormyChaosCampaign(seed);
  // Same storms, same seeds — only the recovery machinery differs: full
  // snapshot every 4th cadence with ~25% deltas between, restores priced per
  // shard from the cheapest live source, voluntary morphs hand state over
  // peer-to-peer.
  spec.options.checkpoint.full_checkpoint_every = 4;
  spec.options.checkpoint.delta_fraction = 0.25;
  spec.options.checkpoint.locality_aware_restore = true;
  spec.options.checkpoint.live_handoff = true;
  return spec;
}

ChaosReport RunChaosCampaign(const ChaosCampaignSpec& spec) {
  SimEngine engine;
  Cluster cluster(CommodityFabric());
  SpotMarket market(&engine, Rng(spec.options.seed * 7919 + 17), 60.0);

  SpotPoolDynamics dynamics;
  dynamics.mean_availability = spec.mean_availability;
  dynamics.volatility = spec.volatility;
  dynamics.preemption_hazard = spec.preemption_hazard_per_s;
  dynamics.max_grants_per_tick = 64;
  const int pool = market.AddPool(Nc6V3(), spec.max_vms, dynamics);

  ElasticTrainer trainer(&engine, &cluster, &market, pool, Nc6V3(), spec.spec, spec.options);

  FailStutterOptions stutter_options;
  stutter_options.autonomous_onsets = spec.organic_stutter;
  FailStutterInjector stutter(&engine, &cluster, Rng(spec.options.seed * 31337 + 7),
                              stutter_options);

  ChaosEngine chaos(&engine, &cluster, &market, pool, &trainer, &stutter,
                    spec.mean_availability, Rng(spec.options.seed * 104729 + 3), spec.plan);

  // Registration order is part of the determinism contract: the trainer's
  // checkpoint observer attaches before the stutter injector's.
  trainer.Start();
  stutter.Start();
  chaos.Start();
  market.Start();
  engine.RunUntil(spec.horizon_s);

  engine.CheckInvariants();
  trainer.CheckInvariants();

  ChaosReport report;
  report.trace = CaptureElasticTrace(engine, trainer);
  report.fingerprint = report.trace.Fingerprint();
  report.stats = trainer.stats();
  report.latest_usable_checkpoint = trainer.checkpoints().LatestUsable();
  report.latest_complete_checkpoint = trainer.checkpoints().LatestComplete();
  report.vms_killed_by_chaos = chaos.vms_killed();
  report.shards_corrupted_by_chaos = chaos.shards_corrupted();
  return report;
}

}  // namespace varuna
