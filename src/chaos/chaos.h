// Chaos campaign engine (varuna-verify): seeded, deterministic fault
// injection against a full elastic-training session on the DES. A ChaosPlan
// is a list of timed actions — preemption storms, targeted kills of VMs
// holding checkpoint shards mid-flush, fail-stutter bursts, heartbeat
// drops, checkpoint-shard corruption, mid-morph preemptions and capacity
// crashes — either scripted or drawn from a seeded Rng. The ChaosEngine
// schedules them on the same engine the manager runs on, so every campaign
// is bit-replayable: same seed + same plan => identical ElasticTrace
// fingerprint (src/varuna/determinism.h). The property tests in
// tests/chaos_test.cc run dozens of random campaigns per seed and assert the
// recovery invariants the manager must hold under ANY fault interleaving.
#ifndef SRC_CHAOS_CHAOS_H_
#define SRC_CHAOS_CHAOS_H_

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/fail_stutter.h"
#include "src/cluster/spot_market.h"
#include "src/common/rng.h"
#include "src/manager/elastic_trainer.h"
#include "src/model/transformer.h"
#include "src/sim/engine.h"
#include "src/varuna/determinism.h"

namespace varuna {

enum class ChaosActionKind : uint8_t {
  // Reclaims `count` granted VMs through the market (announced), spread over
  // `duration_s` — the classic eviction wave inside a checkpoint window.
  kPreemptionStorm,
  // Waits (polling, up to `duration_s`) until some checkpoint shards are
  // mid-flush, then kills up to `count` of their owner VMs directly at the
  // cluster — *unannounced*, so the manager must discover the deaths via
  // heartbeat timeout and resume must fall back over the lost shards.
  kTargetedShardKill,
  // Degrades `count` healthy VMs by slow factor 1 + `magnitude` for
  // `duration_s` each (FailStutterInjector::Burst).
  kFailStutterBurst,
  // Mutes heartbeats of `count` placement VMs for `duration_s`. The VMs keep
  // computing; the manager must decide via the timeout policy.
  kHeartbeatLoss,
  // Corrupts `count` shards of the newest usable checkpoint, forcing resume
  // to fall back to an older complete one.
  kCorruptShard,
  // Arms `count` market preemptions that fire in the middle of the *next*
  // restore window (killing a morph in flight).
  kMidMorphPreempt,
  // Collapses pool availability to `magnitude` (fraction of max) for
  // `duration_s`, then lets it revert — the degraded-mode trigger.
  kCapacityCrash,
};

struct ChaosAction {
  double at_s = 0.0;
  ChaosActionKind kind = ChaosActionKind::kPreemptionStorm;
  int count = 1;
  double duration_s = 300.0;
  double magnitude = 0.0;
};

struct ChaosPlan {
  std::vector<ChaosAction> actions;

  static ChaosPlan Scripted(std::vector<ChaosAction> actions);
  // Draws `num_actions` actions with kinds, times and intensities from `rng`,
  // spread over [5%, 90%] of the horizon.
  static ChaosPlan Random(Rng* rng, double horizon_s, int num_actions);
};

// Schedules a plan's actions against a live session. All randomness flows
// from the injected Rng; all timing from the shared SimEngine.
class ChaosEngine {
 public:
  ChaosEngine(SimEngine* engine, Cluster* cluster, SpotMarket* market, int market_pool,
              ElasticTrainer* trainer, FailStutterInjector* stutter,
              double baseline_mean_availability, Rng rng, ChaosPlan plan);

  // Schedules every action and hooks the trainer's morph observer (for
  // kMidMorphPreempt). Call once before running the engine.
  void Start();

  int64_t actions_fired() const { return actions_fired_; }
  int64_t vms_killed() const { return vms_killed_; }
  int64_t shards_corrupted() const { return shards_corrupted_; }

 private:
  void Fire(const ChaosAction& action);
  // Feeds the trainer's oracle predictor the storm schedule (no-op for the
  // reactive and online-predictor policies).
  void ForecastAction(const ChaosAction& action);
  // Polls until shards are mid-flush (or `deadline_s` passes), then kills up
  // to `count` owner VMs unannounced.
  void PollShardKill(double deadline_s, int count);
  void OnMorph(double restore_delay_s);

  SimEngine* engine_;
  Cluster* cluster_;
  SpotMarket* market_;
  int market_pool_;
  ElasticTrainer* trainer_;
  FailStutterInjector* stutter_;
  double baseline_mean_availability_;
  Rng rng_;
  ChaosPlan plan_;
  bool started_ = false;
  int armed_mid_morph_ = 0;
  int64_t actions_fired_ = 0;
  int64_t vms_killed_ = 0;
  int64_t shards_corrupted_ = 0;
};

// A full self-contained campaign: scenario shape + trainer options + plan.
struct ChaosCampaignSpec {
  TransformerSpec spec;  // Defaults to Gpt2Medium() (set in the factories).
  int max_vms = 20;
  double mean_availability = 0.9;
  double volatility = 0.1;
  double preemption_hazard_per_s = 1.0 / (6.0 * 3600.0);
  double horizon_s = 1.5 * 3600.0;
  // Also run the organic fail-stutter onset process alongside the plan.
  bool organic_stutter = false;
  TrainerOptions options;  // options.seed seeds the whole campaign.
  ChaosPlan plan;
};

// Campaign with sensible defaults and an empty plan (callers script it).
ChaosCampaignSpec DefaultChaosCampaign(uint64_t seed);
// Campaign whose plan (kinds, times, intensities) is drawn from `seed` — the
// property-test generator.
ChaosCampaignSpec RandomChaosCampaign(uint64_t seed);
// Storm-heavy head-to-head testbed: elevated baseline hazard plus several
// seeded preemption storms over a longer horizon and a sparser checkpoint
// cadence — the regime where reactive recovery bleeds rollbacks and the
// liveput policy (spec.options.morph_policy, default reactive) can pay off.
ChaosCampaignSpec StormyChaosCampaign(uint64_t seed);
// StormyChaosCampaign with the fast recovery path switched on: delta
// checkpoint chains, locality-aware restore pricing and live handoff on
// voluntary morphs. Same storms on the same seed, so before/after downtime
// comparisons isolate the recovery path. A separate factory (rather than a
// Stormy default) keeps the recorded stormy orderings and goldens valid.
ChaosCampaignSpec FastRecoveryStormCampaign(uint64_t seed);

struct ChaosReport {
  ElasticTrace trace;
  uint64_t fingerprint = 0;
  SessionStats stats;
  int64_t latest_usable_checkpoint = -1;
  int64_t latest_complete_checkpoint = -1;
  int64_t vms_killed_by_chaos = 0;
  int64_t shards_corrupted_by_chaos = 0;
};

// Builds engine + cluster + market + trainer + injectors, runs the campaign
// to its horizon, validates engine and manager invariants, and returns the
// fingerprinted report. Deterministic: same spec => identical report.
ChaosReport RunChaosCampaign(const ChaosCampaignSpec& spec);

}  // namespace varuna

#endif  // SRC_CHAOS_CHAOS_H_
