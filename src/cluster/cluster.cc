#include "src/cluster/cluster.h"

#include "src/common/check.h"

namespace varuna {

VmId Cluster::AddVm(const VmType& type) {
  const VmId id = num_vms();
  VmInstance instance;
  instance.type = type;
  instance.node = topology_.AddNode(type.node);
  vms_.push_back(instance);
  for (int g = 0; g < type.node.num_gpus; ++g) {
    gpu_to_vm_.push_back(id);
  }
  return id;
}

void Cluster::AddVms(const VmType& type, int count) {
  for (int i = 0; i < count; ++i) {
    AddVm(type);
  }
}

void Cluster::Preempt(VmId vm) {
  VARUNA_CHECK_GE(vm, 0);
  VARUNA_CHECK_LT(vm, num_vms());
  if (!vms_[static_cast<size_t>(vm)].active) {
    return;  // Already dead; observers were notified the first time.
  }
  vms_[static_cast<size_t>(vm)].active = false;
  for (const PreemptionObserver& observer : preemption_observers_) {
    observer(vm);
  }
}

void Cluster::AddPreemptionObserver(PreemptionObserver observer) {
  preemption_observers_.push_back(std::move(observer));
}

void Cluster::SetSlowFactor(VmId vm, double factor) {
  VARUNA_CHECK_GE(vm, 0);
  VARUNA_CHECK_LT(vm, num_vms());
  VARUNA_CHECK_GE(factor, 1.0);
  vms_[static_cast<size_t>(vm)].slow_factor = factor;
}

const VmInstance& Cluster::Vm(VmId vm) const {
  VARUNA_CHECK_GE(vm, 0);
  VARUNA_CHECK_LT(vm, num_vms());
  return vms_[static_cast<size_t>(vm)];
}

VmId Cluster::VmOfGpu(GpuId gpu) const {
  VARUNA_CHECK_GE(gpu, 0);
  VARUNA_CHECK_LT(gpu, static_cast<GpuId>(gpu_to_vm_.size()));
  return gpu_to_vm_[static_cast<size_t>(gpu)];
}

std::vector<GpuId> Cluster::ActiveGpus() const {
  std::vector<GpuId> gpus;
  for (GpuId g = 0; g < static_cast<GpuId>(gpu_to_vm_.size()); ++g) {
    if (GpuActive(g)) {
      gpus.push_back(g);
    }
  }
  return gpus;
}

}  // namespace varuna
