// The cluster holds VM instances (each contributing a topology node), their
// liveness (spot preemptions) and performance state (fail-stutter slowdowns).
// The topology is append-only so GpuIds stay stable; preempted VMs are simply
// excluded from the active set — replacement capacity arrives as new VMs.
#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <functional>
#include <vector>

#include "src/cluster/vm.h"
#include "src/net/network.h"
#include "src/net/topology.h"

namespace varuna {

using VmId = int;

struct VmInstance {
  VmType type;
  NodeId node = -1;
  bool active = true;
  // Compute-time multiplier; > 1 while the VM is fail-stuttering (§4.6).
  double slow_factor = 1.0;
};

class Cluster {
 public:
  explicit Cluster(const FabricSpec& fabric) : topology_(fabric), network_(&topology_) {}

  VmId AddVm(const VmType& type);

  // Convenience: add `count` identical VMs.
  void AddVms(const VmType& type, int count);

  // Deactivates `vm` and notifies every registered observer, in registration
  // order. Idempotent: preempting an already-inactive VM is a no-op and does
  // not re-notify (chaos kills and market reclaims can race on the same VM).
  void Preempt(VmId vm);
  bool IsActive(VmId vm) const { return Vm(vm).active; }

  // Observers fire synchronously from Preempt() exactly once per VM death.
  // Registration order is the notification order, so runs stay deterministic.
  // Used by the checkpoint store (local shards die with their VM) and the
  // fail-stutter injector (a preempted VM must leave the exclusion set).
  using PreemptionObserver = std::function<void(VmId)>;
  void AddPreemptionObserver(PreemptionObserver observer);

  void SetSlowFactor(VmId vm, double factor);

  int num_vms() const { return static_cast<int>(vms_.size()); }
  const VmInstance& Vm(VmId vm) const;

  VmId VmOfGpu(GpuId gpu) const;
  const GpuSpec& Gpu(GpuId gpu) const { return Vm(VmOfGpu(gpu)).type.gpu; }
  double SlowFactor(GpuId gpu) const { return Vm(VmOfGpu(gpu)).slow_factor; }
  bool GpuActive(GpuId gpu) const { return Vm(VmOfGpu(gpu)).active; }

  // Active GPUs ordered by node, which makes contiguous slices node-packed —
  // the property the placement policy relies on.
  std::vector<GpuId> ActiveGpus() const;
  int NumActiveGpus() const { return static_cast<int>(ActiveGpus().size()); }

  const Topology& topology() const { return topology_; }
  const Network& network() const { return network_; }

 private:
  Topology topology_;
  Network network_;
  std::vector<VmInstance> vms_;
  std::vector<VmId> gpu_to_vm_;
  std::vector<PreemptionObserver> preemption_observers_;
};

}  // namespace varuna

#endif  // SRC_CLUSTER_CLUSTER_H_
