// The cluster holds VM instances (each contributing a topology node), their
// liveness (spot preemptions) and performance state (fail-stutter slowdowns).
// The topology is append-only so GpuIds stay stable; preempted VMs are simply
// excluded from the active set — replacement capacity arrives as new VMs.
#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <vector>

#include "src/cluster/vm.h"
#include "src/net/network.h"
#include "src/net/topology.h"

namespace varuna {

using VmId = int;

struct VmInstance {
  VmType type;
  NodeId node = -1;
  bool active = true;
  // Compute-time multiplier; > 1 while the VM is fail-stuttering (§4.6).
  double slow_factor = 1.0;
};

class Cluster {
 public:
  explicit Cluster(const FabricSpec& fabric) : topology_(fabric), network_(&topology_) {}

  VmId AddVm(const VmType& type);

  // Convenience: add `count` identical VMs.
  void AddVms(const VmType& type, int count);

  void Preempt(VmId vm);
  bool IsActive(VmId vm) const { return Vm(vm).active; }

  void SetSlowFactor(VmId vm, double factor);

  int num_vms() const { return static_cast<int>(vms_.size()); }
  const VmInstance& Vm(VmId vm) const;

  VmId VmOfGpu(GpuId gpu) const;
  const GpuSpec& Gpu(GpuId gpu) const { return Vm(VmOfGpu(gpu)).type.gpu; }
  double SlowFactor(GpuId gpu) const { return Vm(VmOfGpu(gpu)).slow_factor; }
  bool GpuActive(GpuId gpu) const { return Vm(VmOfGpu(gpu)).active; }

  // Active GPUs ordered by node, which makes contiguous slices node-packed —
  // the property the placement policy relies on.
  std::vector<GpuId> ActiveGpus() const;
  int NumActiveGpus() const { return static_cast<int>(ActiveGpus().size()); }

  const Topology& topology() const { return topology_; }
  const Network& network() const { return network_; }

 private:
  Topology topology_;
  Network network_;
  std::vector<VmInstance> vms_;
  std::vector<VmId> gpu_to_vm_;
};

}  // namespace varuna

#endif  // SRC_CLUSTER_CLUSTER_H_
