#include "src/cluster/fail_stutter.h"

#include <vector>

namespace varuna {

void FailStutterInjector::Start() { ScheduleNextOnset(); }

void FailStutterInjector::ScheduleNextOnset() {
  engine_->Schedule(rng_.Exponential(options_.mean_onset_interval_s), [this] { Onset(); });
}

void FailStutterInjector::Onset() {
  // Pick a random active, currently-healthy VM.
  std::vector<VmId> candidates;
  for (VmId vm = 0; vm < cluster_->num_vms(); ++vm) {
    if (cluster_->IsActive(vm) && cluster_->Vm(vm).slow_factor == 1.0) {
      candidates.push_back(vm);
    }
  }
  if (!candidates.empty()) {
    const VmId victim = candidates[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
    const double factor = rng_.Uniform(options_.min_slow_factor, options_.max_slow_factor);
    cluster_->SetSlowFactor(victim, factor);
    engine_->Schedule(rng_.Exponential(options_.mean_duration_s), [this, victim] {
      // The VM may have been preempted meanwhile; resetting is still harmless.
      cluster_->SetSlowFactor(victim, 1.0);
    });
  }
  ScheduleNextOnset();
}

}  // namespace varuna
