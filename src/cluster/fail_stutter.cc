#include "src/cluster/fail_stutter.h"

#include <vector>

#include "src/common/check.h"

namespace varuna {

void FailStutterInjector::Start() {
  VARUNA_CHECK(!started_) << "FailStutterInjector started twice";
  started_ = true;
  cluster_->AddPreemptionObserver([this](VmId vm) { OnVmPreempted(vm); });
  if (options_.autonomous_onsets) {
    ScheduleNextOnset();
  }
}

void FailStutterInjector::ScheduleNextOnset() {
  engine_->Schedule(rng_.Exponential(options_.mean_onset_interval_s), [this] { Onset(); });
}

VmId FailStutterInjector::PickVictim() {
  std::vector<VmId> candidates;
  for (VmId vm = 0; vm < cluster_->num_vms(); ++vm) {
    if (cluster_->IsActive(vm) && cluster_->Vm(vm).slow_factor == 1.0 &&
        degraded_.count(vm) == 0) {
      candidates.push_back(vm);
    }
  }
  if (candidates.empty()) {
    return -1;
  }
  return candidates[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
}

void FailStutterInjector::BeginEpisode(VmId victim, double factor, double duration_s) {
  const int64_t generation = next_generation_++;
  degraded_[victim] = generation;
  ++episodes_started_;
  cluster_->SetSlowFactor(victim, factor);
  engine_->Schedule(duration_s, [this, victim, generation] { EndEpisode(victim, generation); });
}

void FailStutterInjector::EndEpisode(VmId victim, int64_t generation) {
  const auto it = degraded_.find(victim);
  if (it == degraded_.end() || it->second != generation) {
    return;  // Victim preempted (or superseded) meanwhile; nothing to undo.
  }
  degraded_.erase(it);
  ++episodes_ended_;
  cluster_->SetSlowFactor(victim, 1.0);
}

void FailStutterInjector::OnVmPreempted(VmId vm) {
  // The fix for the stale-exclusion leak: a preempted victim leaves the set
  // immediately. Its pending EndEpisode event becomes a generation-mismatch
  // no-op, and the slot never pins future accounting.
  if (degraded_.erase(vm) > 0) {
    ++episodes_cleared_by_preemption_;
  }
}

void FailStutterInjector::Onset() {
  const VmId victim = PickVictim();
  if (victim >= 0) {
    const double factor = rng_.Uniform(options_.min_slow_factor, options_.max_slow_factor);
    BeginEpisode(victim, factor, rng_.Exponential(options_.mean_duration_s));
  }
  ScheduleNextOnset();
}

int FailStutterInjector::Burst(int count, double slow_factor, double duration_s) {
  VARUNA_CHECK_GT(slow_factor, 1.0);
  VARUNA_CHECK_GT(duration_s, 0.0);
  int started = 0;
  for (int i = 0; i < count; ++i) {
    const VmId victim = PickVictim();
    if (victim < 0) {
      break;
    }
    BeginEpisode(victim, slow_factor, duration_s);
    ++started;
  }
  return started;
}

}  // namespace varuna
