// Fail-stutter fault injection (§4.6): on pre-emptible VMs, individual
// machines intermittently run slower than the rest, "often by as much as 30%".
// The injector randomly degrades active VMs for exponentially-distributed
// episodes; the manager is expected to notice via heartbeat outliers.
#ifndef SRC_CLUSTER_FAIL_STUTTER_H_
#define SRC_CLUSTER_FAIL_STUTTER_H_

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/sim/engine.h"

namespace varuna {

struct FailStutterOptions {
  // Expected time between stutter onsets across the whole cluster.
  double mean_onset_interval_s = 2.0 * kHour;
  // Episode duration is Exponential(mean_duration_s).
  double mean_duration_s = 30.0 * kMinute;
  // Slow factor drawn uniformly in [min_slow_factor, max_slow_factor].
  double min_slow_factor = 1.15;
  double max_slow_factor = 1.35;
};

class FailStutterInjector {
 public:
  FailStutterInjector(SimEngine* engine, Cluster* cluster, Rng rng, FailStutterOptions options)
      : engine_(engine), cluster_(cluster), rng_(rng), options_(options) {}

  // Begins injecting. Call once before running the engine.
  void Start();

 private:
  void ScheduleNextOnset();
  void Onset();

  SimEngine* engine_;
  Cluster* cluster_;
  Rng rng_;
  FailStutterOptions options_;
};

}  // namespace varuna

#endif  // SRC_CLUSTER_FAIL_STUTTER_H_
