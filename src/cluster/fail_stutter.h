// Fail-stutter fault injection (§4.6): on pre-emptible VMs, individual
// machines intermittently run slower than the rest, "often by as much as 30%".
// The injector randomly degrades active VMs for exponentially-distributed
// episodes; the manager is expected to notice via heartbeat outliers.
//
// The injector tracks its current victims in an explicit exclusion set (so it
// never stacks episodes on one VM, and never stomps a slow factor some other
// injector — e.g. the chaos engine — set). A VM that is preempted mid-episode
// is removed from the set immediately via the cluster's preemption observer;
// without that, dead VMs would accumulate in the exclusion set forever (the
// same stale-id leak class as the PR-1 SimEngine cancel bug).
#ifndef SRC_CLUSTER_FAIL_STUTTER_H_
#define SRC_CLUSTER_FAIL_STUTTER_H_

#include <cstdint>
#include <map>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/sim/engine.h"

namespace varuna {

struct FailStutterOptions {
  // Expected time between stutter onsets across the whole cluster.
  double mean_onset_interval_s = 2.0 * kHour;
  // Episode duration is Exponential(mean_duration_s).
  double mean_duration_s = 30.0 * kMinute;
  // Slow factor drawn uniformly in [min_slow_factor, max_slow_factor].
  double min_slow_factor = 1.15;
  double max_slow_factor = 1.35;
  // false disables the autonomous onset process (chaos campaigns then drive
  // episodes exclusively through Burst()).
  bool autonomous_onsets = true;
};

class FailStutterInjector {
 public:
  FailStutterInjector(SimEngine* engine, Cluster* cluster, Rng rng, FailStutterOptions options)
      : engine_(engine), cluster_(cluster), rng_(rng), options_(options) {}

  // Begins injecting and registers the preemption observer. Call once before
  // running the engine.
  void Start();

  // Chaos hook: degrades up to `count` currently-healthy VMs by `slow_factor`
  // for `duration_s` each, immediately. Returns how many episodes started.
  int Burst(int count, double slow_factor, double duration_s);

  bool IsDegraded(VmId vm) const { return degraded_.count(vm) > 0; }
  int active_episodes() const { return static_cast<int>(degraded_.size()); }
  int64_t episodes_started() const { return episodes_started_; }
  int64_t episodes_ended() const { return episodes_ended_; }
  int64_t episodes_cleared_by_preemption() const { return episodes_cleared_by_preemption_; }

 private:
  void ScheduleNextOnset();
  void Onset();
  // Picks an active, healthy (factor 1.0), not-already-degraded VM; -1 if none.
  VmId PickVictim();
  void BeginEpisode(VmId victim, double factor, double duration_s);
  void EndEpisode(VmId victim, int64_t generation);
  void OnVmPreempted(VmId vm);

  SimEngine* engine_;
  Cluster* cluster_;
  Rng rng_;
  FailStutterOptions options_;
  bool started_ = false;
  // Current victims, keyed by episode generation so a stale end-of-episode
  // event (its VM preempted meanwhile) is a detectable no-op.
  std::map<VmId, int64_t> degraded_;
  int64_t next_generation_ = 0;
  int64_t episodes_started_ = 0;
  int64_t episodes_ended_ = 0;
  int64_t episodes_cleared_by_preemption_ = 0;
};

}  // namespace varuna

#endif  // SRC_CLUSTER_FAIL_STUTTER_H_
