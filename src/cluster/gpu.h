// GPU compute model. The testbed derives per-op execution times from an
// achieved-FLOPs curve: small per-kernel work runs at low efficiency (poor
// tensor-core utilisation), saturating as work grows. This reproduces the
// paper's observation that the micro-batch size m is constrained from below
// ("in BERT-large, m = 8 performs 26% better than m = 4", §4.1) and from
// above (GPU memory).
#ifndef SRC_CLUSTER_GPU_H_
#define SRC_CLUSTER_GPU_H_

#include <string>

#include "src/common/units.h"

namespace varuna {

struct GpuSpec {
  std::string name = "V100-16GB";
  // Peak mixed-precision tensor-core throughput.
  double peak_flops = 125.0 * kTera;
  // Fraction of peak achievable by a fully saturating kernel (cuBLAS-realistic).
  double max_efficiency = 0.40;
  // Per-kernel work (FLOPs) at which efficiency reaches half of max. Fitted to
  // the paper's BERT-large m=8 vs m=4 26% throughput gap.
  double half_work_flops = 3.6e10;
  double memory_bytes = 16.0 * kGiB;

  // Sustained FLOP/s for a kernel of `work_flops`.
  double AchievedFlops(double work_flops) const {
    if (work_flops <= 0.0) {
      return peak_flops * max_efficiency;
    }
    return peak_flops * max_efficiency * work_flops / (work_flops + half_work_flops);
  }

  // Execution time of a kernel of `work_flops`.
  double ComputeTime(double work_flops) const {
    if (work_flops <= 0.0) {
      return 0.0;
    }
    return work_flops / AchievedFlops(work_flops);
  }
};

}  // namespace varuna

#endif  // SRC_CLUSTER_GPU_H_
