#include "src/cluster/placement.h"

#include <algorithm>
#include <sstream>

namespace varuna {

std::vector<GpuId> Placement::StageRing(int stage) const {
  std::vector<GpuId> ring;
  ring.reserve(gpus.size());
  for (const auto& pipeline : gpus) {
    ring.push_back(pipeline[static_cast<size_t>(stage)]);
  }
  return ring;
}

std::vector<GpuId> Placement::AllGpus() const {
  std::vector<GpuId> all;
  for (const auto& pipeline : gpus) {
    all.insert(all.end(), pipeline.begin(), pipeline.end());
  }
  return all;
}

Result<Placement> PlaceJob(const Cluster& cluster, int pipeline_depth, int data_parallel,
                           const std::vector<GpuId>& exclude) {
  VARUNA_CHECK_GT(pipeline_depth, 0);
  VARUNA_CHECK_GT(data_parallel, 0);
  std::vector<GpuId> pool = cluster.ActiveGpus();
  if (!exclude.empty()) {
    pool.erase(std::remove_if(pool.begin(), pool.end(),
                              [&](GpuId g) {
                                return std::find(exclude.begin(), exclude.end(), g) !=
                                       exclude.end();
                              }),
               pool.end());
  }
  const int needed = pipeline_depth * data_parallel;
  if (static_cast<int>(pool.size()) < needed) {
    std::ostringstream message;
    message << "placement needs " << needed << " GPUs (" << pipeline_depth << "x"
            << data_parallel << ") but only " << pool.size() << " are available";
    return Result<Placement>::Error(message.str());
  }

  Placement placement;
  placement.pipeline_depth = pipeline_depth;
  placement.data_parallel = data_parallel;
  placement.gpus.resize(static_cast<size_t>(data_parallel));
  // Pipeline-major fill over the node-ordered pool: replica d takes GPUs
  // [d*P, (d+1)*P), putting consecutive stages on the same node when the node
  // has multiple GPUs.
  for (int d = 0; d < data_parallel; ++d) {
    auto& pipeline = placement.gpus[static_cast<size_t>(d)];
    pipeline.assign(pool.begin() + static_cast<long>(d) * pipeline_depth,
                    pool.begin() + static_cast<long>(d + 1) * pipeline_depth);
  }
  return placement;
}

}  // namespace varuna
