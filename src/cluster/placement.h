// Placement of a P x D job onto active GPUs. The manager's policy (§4.6):
// GPUs are taken in node order and filled pipeline-major, so consecutive
// stages of the same pipeline share a node where possible (activations ride
// the fast intra-node link) while data-parallel rings cross nodes — which is
// why the §4.3 calibration measures allreduce with k rings in flight per NIC.
#ifndef SRC_CLUSTER_PLACEMENT_H_
#define SRC_CLUSTER_PLACEMENT_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/result.h"

namespace varuna {

struct Placement {
  int pipeline_depth = 0;  // P
  int data_parallel = 0;   // D
  // gpus[replica][stage] — GPU running stage `stage` of pipeline replica `replica`.
  std::vector<std::vector<GpuId>> gpus;

  GpuId At(int replica, int stage) const { return gpus[static_cast<size_t>(replica)][static_cast<size_t>(stage)]; }

  // GPUs forming the data-parallel allreduce ring for `stage`.
  std::vector<GpuId> StageRing(int stage) const;

  // All GPUs in use (P * D of them).
  std::vector<GpuId> AllGpus() const;
};

// Places P x D onto the cluster's active GPUs; fails if fewer than P*D active.
// `exclude` lists GPUs the manager has blacklisted (fail-stutter outliers).
Result<Placement> PlaceJob(const Cluster& cluster, int pipeline_depth, int data_parallel,
                           const std::vector<GpuId>& exclude = {});

}  // namespace varuna

#endif  // SRC_CLUSTER_PLACEMENT_H_
