#include "src/cluster/spot_market.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace varuna {

SpotMarket::SpotMarket(SimEngine* engine, Rng rng, SimTime tick_interval)
    : engine_(engine), rng_(rng), tick_interval_(tick_interval) {
  VARUNA_CHECK_GT(tick_interval, 0.0);
}

int SpotMarket::AddPool(const VmType& type, int max_vms, const SpotPoolDynamics& dynamics) {
  VARUNA_CHECK_GT(max_vms, 0);
  Pool pool;
  pool.type = type;
  pool.max_vms = max_vms;
  pool.dynamics = dynamics;
  pool.availability = dynamics.mean_availability;
  pools_.push_back(pool);
  return static_cast<int>(pools_.size()) - 1;
}

void SpotMarket::SetDemand(int pool, int vms) {
  VARUNA_CHECK_GE(vms, 0);
  pools_.at(static_cast<size_t>(pool)).demand = vms;
}

void SpotMarket::SetMeanAvailability(int pool, double mean) {
  VARUNA_CHECK(mean >= 0.0 && mean <= 1.0);
  pools_.at(static_cast<size_t>(pool)).dynamics.mean_availability = mean;
}

int SpotMarket::ForcePreempt(int pool, int count) {
  VARUNA_CHECK_GE(count, 0);
  Pool& p = pools_.at(static_cast<size_t>(pool));
  int preempted = 0;
  while (preempted < count && p.granted > 0) {
    PreemptOne(pool);
    ++preempted;
  }
  return preempted;
}

void SpotMarket::CrashAvailability(int pool, double fraction) {
  VARUNA_CHECK(fraction >= 0.0 && fraction <= 1.0);
  Pool& p = pools_.at(static_cast<size_t>(pool));
  p.availability = fraction;
  const int capacity = Capacity(pool);
  while (p.granted > capacity) {
    PreemptOne(pool);
  }
}

void SpotMarket::Start() {
  VARUNA_CHECK(!started_) << "SpotMarket started twice";
  started_ = true;
  engine_->Schedule(tick_interval_, [this] { Tick(); });
}

void SpotMarket::AddGrantObserver(GrantObserver observer) {
  grant_observers_.push_back(std::move(observer));
}

void SpotMarket::AddPreemptObserver(PreemptObserver observer) {
  preempt_observers_.push_back(std::move(observer));
}

int SpotMarket::GrantedVms(int pool) const { return pools_.at(static_cast<size_t>(pool)).granted; }

int SpotMarket::GrantedGpus(int pool) const {
  const Pool& p = pools_.at(static_cast<size_t>(pool));
  return p.granted * p.type.node.num_gpus;
}

int SpotMarket::Capacity(int pool) const {
  const Pool& p = pools_.at(static_cast<size_t>(pool));
  return static_cast<int>(std::lround(p.availability * p.max_vms));
}

int SpotMarket::PoolMaxVms(int pool) const {
  return pools_.at(static_cast<size_t>(pool)).max_vms;
}

const SpotPoolDynamics& SpotMarket::PoolDynamics(int pool) const {
  return pools_.at(static_cast<size_t>(pool)).dynamics;
}

void SpotMarket::PreemptOne(int pool) {
  // Reclaim a uniformly random granted VM from the pool.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < granted_.size(); ++i) {
    if (granted_[i].pool == pool) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return;
  }
  const size_t victim =
      candidates[static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
  const MarketVmId id = granted_[victim].id;
  granted_.erase(granted_.begin() + static_cast<long>(victim));
  --pools_[static_cast<size_t>(pool)].granted;
  for (const PreemptObserver& observer : preempt_observers_) {
    observer(pool, id);
  }
  if (on_preempt_) {
    on_preempt_(id);
  }
}

void SpotMarket::Tick() {
  const double dt = tick_interval_;
  for (size_t pool_index = 0; pool_index < pools_.size(); ++pool_index) {
    Pool& pool = pools_[pool_index];
    // Mean-reverting availability (Ornstein-Uhlenbeck, Euler step, clamped).
    const SpotPoolDynamics& dyn = pool.dynamics;
    const double noise = dyn.volatility * std::sqrt(dt / 3600.0) * rng_.Gaussian();
    pool.availability += dyn.reversion_rate * (dyn.mean_availability - pool.availability) * dt +
                         noise;
    pool.availability = std::clamp(pool.availability, 0.0, 1.0);

    // Baseline preemption hazard per granted VM.
    const double preempt_probability = 1.0 - std::exp(-dyn.preemption_hazard * dt);
    const int granted_before = pool.granted;
    for (int v = 0; v < granted_before; ++v) {
      if (rng_.Bernoulli(preempt_probability)) {
        PreemptOne(static_cast<int>(pool_index));
      }
    }

    // Capacity drops reclaim VMs beyond what the pool can sustain, with
    // hysteresis: small wiggles are absorbed, genuine drops evict in a burst.
    const int capacity = Capacity(static_cast<int>(pool_index));
    const int slack = dyn.reclaim_slack_vms >= 0 ? dyn.reclaim_slack_vms
                                                 : std::max(2, pool.max_vms / 32);
    if (pool.granted > capacity + slack) {
      while (pool.granted > capacity) {
        PreemptOne(static_cast<int>(pool_index));
      }
    }

    // Fill demand up to capacity, rate-limited per tick.
    int grants = std::min({pool.demand - pool.granted, capacity - pool.granted,
                           pool.dynamics.max_grants_per_tick});
    while (grants-- > 0) {
      const MarketVmId id = next_vm_id_++;
      granted_.push_back(GrantedVm{id, static_cast<int>(pool_index)});
      ++pool.granted;
      for (const GrantObserver& observer : grant_observers_) {
        observer(static_cast<int>(pool_index), id, pool.type);
      }
      if (on_grant_) {
        on_grant_(id, pool.type);
      }
    }
  }
  engine_->Schedule(tick_interval_, [this] { Tick(); });
}

}  // namespace varuna
