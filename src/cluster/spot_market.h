// Stochastic spot-VM market. Azure low-priority capacity fluctuates with
// data-center load; the paper (Fig. 3) observes that 1-GPU VMs are far more
// available than 4-GPU VMs. We model per-pool capacity as a mean-reverting
// process; granted VMs additionally face a baseline preemption hazard.
//
// The market only *signals* grants and preemptions; gluing those to a Cluster
// (and to job morphing) is the manager's job.
#ifndef SRC_CLUSTER_SPOT_MARKET_H_
#define SRC_CLUSTER_SPOT_MARKET_H_

#include <functional>
#include <string>
#include <vector>

#include "src/cluster/vm.h"
#include "src/common/rng.h"
#include "src/sim/engine.h"

namespace varuna {

struct SpotPoolDynamics {
  // Long-run mean fraction of `max_vms` that is obtainable.
  double mean_availability = 0.7;
  // Mean-reversion speed (1/s) and volatility of the availability process.
  double reversion_rate = 1.0 / 3600.0;
  double volatility = 0.15;  // Per sqrt(hour).
  // Baseline per-VM preemption hazard (1/s), independent of capacity drops.
  double preemption_hazard = 1.0 / (8.0 * 3600.0);
  // How many VM grants the provisioning API returns per tick at most.
  int max_grants_per_tick = 8;
  // Eviction hysteresis: capacity wiggles smaller than this are absorbed
  // (real spot markets evict in bursts when capacity genuinely drops, not on
  // every fluctuation). -1 = auto: max(2, max_vms / 32).
  int reclaim_slack_vms = -1;
};

class SpotMarket {
 public:
  using MarketVmId = int;
  // on_grant fires when a requested VM is allocated; on_preempt when a granted
  // VM is reclaimed (capacity drop or baseline hazard).
  using GrantHandler = std::function<void(MarketVmId, const VmType&)>;
  using PreemptHandler = std::function<void(MarketVmId)>;

  SpotMarket(SimEngine* engine, Rng rng, SimTime tick_interval = 60.0);

  // Registers a pool of up to `max_vms` VMs of `type`. Returns the pool index.
  int AddPool(const VmType& type, int max_vms, const SpotPoolDynamics& dynamics);

  // Sets the standing demand for a pool (the manager "periodically keeps
  // trying to grow the cluster", §4.6). Grants never exceed demand.
  void SetDemand(int pool, int vms);

  // Changes the pool's long-run mean availability (capacity regime change —
  // e.g. a datacenter-wide load spike). The availability process reverts
  // toward the new mean at the configured rate.
  void SetMeanAvailability(int pool, double mean);

  // Chaos hooks (src/chaos): adversarial event timings the organic dynamics
  // cannot be steered into on demand.
  //
  // Immediately reclaims up to `count` granted VMs from the pool (uniformly at
  // random via the market Rng, so storms replay deterministically). Returns
  // how many were actually preempted.
  int ForcePreempt(int pool, int count);
  // Instantly collapses the pool's availability to `fraction` of max_vms and
  // reclaims every granted VM above the new capacity (no hysteresis — this
  // models a datacenter-wide eviction wave, not a wiggle). The mean is left
  // unchanged, so availability reverts afterwards unless the caller also
  // lowers it with SetMeanAvailability().
  void CrashAvailability(int pool, double fraction);

  void set_grant_handler(GrantHandler handler) { on_grant_ = std::move(handler); }
  void set_preempt_handler(PreemptHandler handler) { on_preempt_ = std::move(handler); }

  // Passive observers of the grant/preemption stream (estimators, loggers):
  // fired in registration order *before* the single control handler, for
  // every pool. Unlike the handlers they cannot be replaced — observing the
  // market must not steal the manager's control path.
  using GrantObserver = std::function<void(int pool, MarketVmId, const VmType&)>;
  using PreemptObserver = std::function<void(int pool, MarketVmId)>;
  void AddGrantObserver(GrantObserver observer);
  void AddPreemptObserver(PreemptObserver observer);

  // Starts the tick loop. Must be called once before running the engine.
  void Start();

  int GrantedVms(int pool) const;
  int GrantedGpus(int pool) const;
  // Current obtainable capacity (VM count) of the pool.
  int Capacity(int pool) const;
  int PoolMaxVms(int pool) const;
  // The pool's true stochastic parameters. For the oracle-mode availability
  // predictor and diagnostics only — online policy code must *learn* from the
  // observed stream instead (the liveput predictor contract, DESIGN.md §4).
  const SpotPoolDynamics& PoolDynamics(int pool) const;

 private:
  struct GrantedVm {
    MarketVmId id;
    int pool;
  };
  struct Pool {
    VmType type;
    int max_vms = 0;
    SpotPoolDynamics dynamics;
    double availability = 0.0;  // In [0, 1].
    int demand = 0;
    int granted = 0;
  };

  void Tick();
  void PreemptOne(int pool);

  SimEngine* engine_;
  Rng rng_;
  SimTime tick_interval_;
  std::vector<Pool> pools_;
  std::vector<GrantedVm> granted_;
  MarketVmId next_vm_id_ = 0;
  GrantHandler on_grant_;
  PreemptHandler on_preempt_;
  std::vector<GrantObserver> grant_observers_;
  std::vector<PreemptObserver> preempt_observers_;
  bool started_ = false;
};

}  // namespace varuna

#endif  // SRC_CLUSTER_SPOT_MARKET_H_
