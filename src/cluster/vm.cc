#include "src/cluster/vm.h"

namespace varuna {

VmType Nc6V3() {
  VmType vm;
  vm.name = "NC6_v3";
  vm.node.num_gpus = 1;
  vm.node.intra_bandwidth_bps = GbpsToBytesPerSec(96.0);  // PCIe 3.0 x16 ~ 12 GB/s
  vm.node.intra_latency_s = 10.0 * kMicrosecond;
  vm.node.nic_bandwidth_bps = GbpsToBytesPerSec(10.0);
  vm.price_per_gpu_hour = 1.0;
  return vm;
}

VmType Nc24V3() {
  VmType vm = Nc6V3();
  vm.name = "NC24_v3";
  vm.node.num_gpus = 4;
  return vm;
}

VmType Dgx2() {
  VmType vm;
  vm.name = "DGX-2";
  vm.node.num_gpus = 16;
  // NVLink via NVSwitch: 2.4 Tbps all-to-all (~300 GB/s per GPU).
  vm.node.intra_bandwidth_bps = GbpsToBytesPerSec(2400.0);
  vm.node.intra_latency_s = 3.0 * kMicrosecond;
  vm.node.nic_bandwidth_bps = GbpsToBytesPerSec(200.0);  // Infiniband.
  vm.price_per_gpu_hour = 5.0;  // Dedicated VMs cost ~5x low-priority (§1).
  return vm;
}

FabricSpec CommodityFabric() {
  FabricSpec fabric;
  // VMs share a region with no locality guarantee; flows are routed through
  // multiple levels of oversubscribed switches (§7 setup), so a single flow
  // rarely sees the full 10 Gbps NIC rate.
  fabric.per_flow_bandwidth_bps = GbpsToBytesPerSec(5.0);
  fabric.base_latency_s = 300.0 * kMicrosecond;
  fabric.jitter_sigma = 0.35;
  // TCP tail stalls: retransmission timeouts on oversubscribed switches park
  // a flow for RTO_min-scale delays (~250 ms), a few times per hundred
  // transfers. These are the latency spikes Varuna's opportunistic schedule
  // is designed to ride out (§3.2).
  fabric.stall_probability = 0.02;
  fabric.stall_mean_s = 250.0 * kMillisecond;
  return fabric;
}

FabricSpec HyperclusterFabric() {
  FabricSpec fabric;
  fabric.per_flow_bandwidth_bps = GbpsToBytesPerSec(100.0);
  fabric.base_latency_s = 5.0 * kMicrosecond;
  fabric.jitter_sigma = 0.05;
  fabric.stall_probability = 0.0;
  fabric.stall_mean_s = 0.0;
  return fabric;
}

}  // namespace varuna
