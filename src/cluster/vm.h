// VM types from the paper's evaluation (§7): Azure NC6_v3 (1 GPU) and
// NC24_v3 (4 GPUs) low-priority VMs on 10 Gbps Ethernet, and DGX-2 nodes
// (16 GPUs, NVLink, 200 Gbps Infiniband) forming the "hypercluster".
#ifndef SRC_CLUSTER_VM_H_
#define SRC_CLUSTER_VM_H_

#include <string>

#include "src/cluster/gpu.h"
#include "src/common/units.h"
#include "src/net/topology.h"

namespace varuna {

struct VmType {
  std::string name;
  NodeSpec node;              // Network characteristics contributed to the topology.
  GpuSpec gpu;                // All GPUs of a VM are identical.
  double price_per_gpu_hour = 0.0;  // Relative cost units; low-pri ~ 1, dedicated ~ 5.
};

// Azure NC6_v3: 1x V100, 10 Gbps NIC. Low-priority price normalised to 1.
VmType Nc6V3();

// Azure NC24_v3: 4x V100 on PCIe, 10 Gbps NIC shared by the 4 GPUs.
VmType Nc24V3();

// DGX-2: 16x V100 on NVLink (2.4 Tbps all-to-all), 200 Gbps Infiniband.
// Dedicated pricing (~5x the low-priority rate per the paper).
VmType Dgx2();

// Fabric presets.
FabricSpec CommodityFabric();     // Multi-level bottleneck switches, jitter, tail stalls.
FabricSpec HyperclusterFabric();  // Infiniband: high bandwidth, microsecond latency.

}  // namespace varuna

#endif  // SRC_CLUSTER_VM_H_
