// Assertion macros. VARUNA_CHECK aborts with a message on contract violations;
// it is always on (simulation correctness depends on these invariants, and the
// cost is negligible next to the work they guard).
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace varuna {

// Collects a failure message via operator<< and aborts on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace varuna

#define VARUNA_CHECK(condition) \
  if (condition) {              \
  } else                        \
    ::varuna::CheckFailure(__FILE__, __LINE__, #condition)

#define VARUNA_CHECK_EQ(a, b) VARUNA_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define VARUNA_CHECK_NE(a, b) VARUNA_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define VARUNA_CHECK_LT(a, b) VARUNA_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define VARUNA_CHECK_LE(a, b) VARUNA_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define VARUNA_CHECK_GT(a, b) VARUNA_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define VARUNA_CHECK_GE(a, b) VARUNA_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // SRC_COMMON_CHECK_H_
