#include "src/common/gantt.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace varuna {

std::string GanttChart::Render(int width) const {
  double max_time = 0.0;
  size_t name_width = 0;
  for (const auto& row : rows_) {
    name_width = std::max(name_width, row.name.size());
    for (const auto& bar : row.bars) {
      max_time = std::max(max_time, bar.end);
    }
  }
  if (max_time <= 0.0) {
    return "";
  }
  const double scale = static_cast<double>(width) / max_time;

  std::ostringstream out;
  for (const auto& row : rows_) {
    std::string line(static_cast<size_t>(width), '.');
    for (const auto& bar : row.bars) {
      auto col_begin = static_cast<size_t>(std::lround(bar.start * scale));
      auto col_end = static_cast<size_t>(std::lround(bar.end * scale));
      col_begin = std::min(col_begin, static_cast<size_t>(width));
      col_end = std::min(std::max(col_end, col_begin + 1), static_cast<size_t>(width));
      for (size_t col = col_begin; col < col_end; ++col) {
        const size_t offset = col - col_begin;
        line[col] = offset < bar.label.size() ? bar.label[offset] : '=';
      }
    }
    out << row.name << std::string(name_width - row.name.size(), ' ') << " |" << line << "|\n";
  }

  // Time axis with a tick label every ~20 columns.
  out << std::string(name_width, ' ') << "  ";
  std::string axis(static_cast<size_t>(width), ' ');
  for (int col = 0; col < width; col += 20) {
    const double t = static_cast<double>(col) / scale;
    std::ostringstream tick;
    tick << (max_time >= 100 ? std::lround(t) : std::lround(t * 10) / 10.0);
    const std::string text = tick.str();
    for (size_t i = 0; i < text.size() && col + static_cast<int>(i) < width; ++i) {
      axis[static_cast<size_t>(col) + i] = text[i];
    }
  }
  out << axis << "\n";
  return out.str();
}

}  // namespace varuna
