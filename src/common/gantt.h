// ASCII Gantt-chart rendering for pipeline schedules and execution traces
// (Figures 4 and 7 of the paper).
#ifndef SRC_COMMON_GANTT_H_
#define SRC_COMMON_GANTT_H_

#include <string>
#include <vector>

namespace varuna {

// One bar on a Gantt row. Times are in arbitrary units; the renderer scales
// them to a fixed character width.
struct GanttBar {
  double start = 0.0;
  double end = 0.0;
  // Short label drawn inside the bar, e.g. "F3" (forward, micro-batch 3).
  std::string label;
};

struct GanttRow {
  std::string name;  // e.g. "S1" for pipeline stage 1.
  std::vector<GanttBar> bars;
};

class GanttChart {
 public:
  void AddRow(GanttRow row) { rows_.push_back(std::move(row)); }

  // Renders all rows against a shared time axis, `width` characters wide.
  // Bars are drawn with their label followed by '=' fill; gaps are '.'.
  std::string Render(int width = 120) const;

 private:
  std::vector<GanttRow> rows_;
};

}  // namespace varuna

#endif  // SRC_COMMON_GANTT_H_
