// Lightweight value-or-error type used across Varuna for operations that can
// fail for reasons the caller must handle (infeasible configurations, OOM,
// missing checkpoints). Programmer errors use VARUNA_CHECK instead.
#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/check.h"

namespace varuna {

// A Result<T> holds either a value of type T or an error message.
// Typical use:
//   Result<Partition> r = partitioner.Partition(graph, depth);
//   if (!r.ok()) return Result<Plan>::Error(r.error());
//   UsePartition(r.value());
template <typename T>
class Result {
 public:
  // Implicit conversion from a value keeps call sites terse: `return plan;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  static Result Error(std::string message) { return Result(ErrorTag{}, std::move(message)); }

  bool ok() const { return value_.has_value(); }

  const T& value() const& {
    VARUNA_CHECK(ok()) << "Result accessed without value: " << error_;
    return *value_;
  }
  T& value() & {
    VARUNA_CHECK(ok()) << "Result accessed without value: " << error_;
    return *value_;
  }
  T&& value() && {
    VARUNA_CHECK(ok()) << "Result accessed without value: " << error_;
    return std::move(*value_);
  }

  const std::string& error() const {
    VARUNA_CHECK(!ok()) << "Result holds a value; no error to read";
    return error_;
  }

 private:
  struct ErrorTag {};
  Result(ErrorTag, std::string message) : error_(std::move(message)) {}

  std::optional<T> value_;
  std::string error_;
};

}  // namespace varuna

#endif  // SRC_COMMON_RESULT_H_
