#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace varuna {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed expansion per the xoshiro authors' recommendation.
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  VARUNA_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full-width range [INT64_MIN, INT64_MAX].
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t draw = NextUint64();
  while (draw >= limit) {
    draw = NextUint64();
  }
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

double Rng::Exponential(double mean) {
  VARUNA_CHECK_GT(mean, 0.0);
  double u = NextDouble();
  while (u <= 1e-300) {
    u = NextDouble();
  }
  return -mean * std::log(u);
}

double Rng::LogNormalMedian(double median, double sigma) {
  VARUNA_CHECK_GT(median, 0.0);
  return median * std::exp(sigma * Gaussian());
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace varuna
