// Deterministic random number generation for the simulators. A single seeded
// Rng drives every stochastic choice (jitter, preemptions, compute noise) so
// that experiments are reproducible run-to-run.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace varuna {

// xoshiro256** — small, fast, high-quality; plenty for simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextUint64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box-Muller (cached second value).
  double Gaussian();
  double Gaussian(double mean, double stddev);

  // Exponential with the given mean (not rate). Requires mean > 0.
  double Exponential(double mean);

  // Log-normal such that the *median* of the distribution is `median` and the
  // underlying normal has standard deviation `sigma`. Used for heavy-tailed
  // network jitter.
  double LogNormalMedian(double median, double sigma);

  // True with probability p.
  bool Bernoulli(double p);

  // Spawns an independent stream (for parallel-in-concept subsystems that must
  // not perturb each other's draws when one of them changes).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace varuna

#endif  // SRC_COMMON_RNG_H_
