#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"

namespace varuna {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> samples, double q) {
  VARUNA_CHECK(!samples.empty());
  VARUNA_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double position = q * static_cast<double>(samples.size() - 1);
  const size_t lower = static_cast<size_t>(position);
  const size_t upper = std::min(lower + 1, samples.size() - 1);
  const double fraction = position - static_cast<double>(lower);
  return samples[lower] * (1.0 - fraction) + samples[upper] * fraction;
}

double Mean(const std::vector<double>& samples) {
  VARUNA_CHECK(!samples.empty());
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

}  // namespace varuna
