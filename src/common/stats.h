// Running statistics (Welford) and small helpers used by the profiler, the
// fail-stutter detector and experiment harnesses.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>
#include <vector>

namespace varuna {

// Numerically stable streaming mean/variance/min/max.
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample set (linear interpolation between order statistics).
// `q` in [0, 1]. Requires a non-empty sample vector; copies and sorts.
double Percentile(std::vector<double> samples, double q);

// Mean of a sample set. Requires non-empty.
double Mean(const std::vector<double>& samples);

}  // namespace varuna

#endif  // SRC_COMMON_STATS_H_
