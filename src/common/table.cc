#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/check.h"

namespace varuna {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  VARUNA_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };

  emit_row(headers_);
  out << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

}  // namespace varuna
