// ASCII table rendering for benchmark/experiment output. Every bench binary
// prints paper-style tables through this.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace varuna {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Numeric convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 2);

  // Renders with aligned columns and a header separator.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace varuna

#endif  // SRC_COMMON_TABLE_H_
