#include "src/common/thread_pool.h"

#include <algorithm>

#include "src/common/check.h"

namespace varuna {

ThreadPool::ThreadPool(int num_threads) {
  const int spawned = std::max(1, num_threads) - 1;
  workers_.reserve(static_cast<size_t>(spawned));
  for (int i = 0; i < spawned; ++i) {
    // Worker 0 is the calling thread; spawned threads are workers 1..spawned.
    workers_.emplace_back([this, worker = i + 1] { WorkerLoop(worker); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

int ThreadPool::DefaultThreadCount() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hardware));
}

void ThreadPool::DrainBatch(int worker, std::unique_lock<std::mutex>* lock) {
  while (next_item_ < num_items_) {
    const int item = next_item_++;
    lock->unlock();
    (*task_)(item, worker);
    lock->lock();
    ++items_done_;
  }
}

void ThreadPool::ParallelFor(int num_items,
                             const std::function<void(int item, int worker)>& fn) {
  if (num_items <= 0) {
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  VARUNA_CHECK(task_ == nullptr) << "ThreadPool::ParallelFor is not reentrant";
  task_ = &fn;
  num_items_ = num_items;
  next_item_ = 0;
  items_done_ = 0;
  ++batch_id_;
  work_cv_.notify_all();

  // The caller participates as worker 0, then waits for stragglers.
  DrainBatch(/*worker=*/0, &lock);
  done_cv_.wait(lock, [this] { return items_done_ == num_items_; });
  task_ = nullptr;
  num_items_ = 0;
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_batch = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this, seen_batch] { return shutdown_ || batch_id_ != seen_batch; });
    if (shutdown_) {
      return;
    }
    seen_batch = batch_id_;
    DrainBatch(worker, &lock);
    if (items_done_ == num_items_) {
      done_cv_.notify_one();
    }
  }
}

}  // namespace varuna
