// Deterministic fan-out/join thread pool — the only place in the tree that may
// create threads (enforced by tools/varuna_lint.py rule "threading").
//
// The pool exists for one pattern: evaluate N independent work items and join
// before anything observes the results. Determinism is preserved by contract,
// not by luck:
//   * ParallelFor(n, fn) runs fn(item, worker) for every item in [0, n) and
//     blocks until all items finished — no work escapes the call.
//   * fn's result for an item must be a pure function of `item` (any RNG it
//     uses must be seeded from the item, never shared). The `worker` index
//     (in [0, num_threads())) exists only to address per-worker scratch
//     buffers whose contents are fully overwritten per item.
//   * Which worker runs which item is scheduling-dependent; callers therefore
//     write results into an item-indexed slot and merge in item order, making
//     the output bit-identical to a serial loop over the same fn.
//
// The calling thread participates as worker 0, so ThreadPool(1) spawns no
// threads and degenerates to an inline serial loop — serial and pooled
// executions share one code path.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace varuna {

class ThreadPool {
 public:
  // `num_threads` total workers including the calling thread; clamped to >= 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total workers (spawned threads + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Hardware concurrency, clamped to >= 1 (hardware_concurrency() may be 0).
  static int DefaultThreadCount();

  // Runs fn(item, worker) for every item in [0, num_items), blocking until all
  // items complete. The calling thread is worker 0 and claims items alongside
  // the pool threads. Not reentrant: fn must not call ParallelFor on this
  // pool. fn must not throw (contract failures abort via VARUNA_CHECK).
  void ParallelFor(int num_items, const std::function<void(int item, int worker)>& fn);

 private:
  void WorkerLoop(int worker);
  // Claims and runs items until the current batch is exhausted. Caller must
  // hold `mutex_`; the lock is released around each fn invocation.
  void DrainBatch(int worker, std::unique_lock<std::mutex>* lock);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  // Workers: a new batch is available.
  std::condition_variable done_cv_;  // Caller: the batch completed.
  const std::function<void(int, int)>* task_ = nullptr;
  int num_items_ = 0;
  int next_item_ = 0;
  int items_done_ = 0;
  uint64_t batch_id_ = 0;  // Bumped per ParallelFor so workers detect new work.
  bool shutdown_ = false;
};

}  // namespace varuna

#endif  // SRC_COMMON_THREAD_POOL_H_
