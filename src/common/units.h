// Unit helpers. All simulator times are in seconds (double), sizes in bytes
// (double, since they participate in bandwidth arithmetic), rates in
// bytes/second and FLOP/second.
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

namespace varuna {

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * kKiB;
constexpr double kGiB = 1024.0 * kMiB;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

constexpr double kMicrosecond = 1e-6;
constexpr double kMillisecond = 1e-3;
constexpr double kSecond = 1.0;
constexpr double kMinute = 60.0;
constexpr double kHour = 3600.0;

// Network rates are usually quoted in bits/second; convert to bytes/second.
constexpr double GbpsToBytesPerSec(double gbps) { return gbps * 1e9 / 8.0; }

}  // namespace varuna

#endif  // SRC_COMMON_UNITS_H_
