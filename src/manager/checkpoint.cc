#include "src/manager/checkpoint.h"

#include <algorithm>

#include "src/common/check.h"

namespace varuna {

double CheckpointStore::BeginCheckpoint(int64_t minibatch_id, double total_params,
                                        int data_parallel) {
  VARUNA_CHECK_GE(data_parallel, 1);
  VARUNA_CHECK_GT(total_params, 0.0);
  const double total_bytes = kCheckpointBytesPerParam * total_params;
  // Replicas shard the write; each stage writes its own layers, all in
  // parallel, so the stall is one shard over local SSD.
  const double shard_bytes = total_bytes / data_parallel;
  const double stall = shard_bytes / options_.ssd_write_bps;
  latest_local_ = minibatch_id;
  ++checkpoints_written_;

  // Background upload of the whole checkpoint (VMs upload their shards in
  // parallel; the slowest shard gates completion).
  const double upload = shard_bytes / options_.cloud_upload_bps;
  engine_->Schedule(stall + upload, [this, minibatch_id] {
    latest_cloud_ = std::max(latest_cloud_, minibatch_id);
  });
  return stall;
}

int64_t CheckpointStore::LatestRestorable(bool local_shards_lost) const {
  return local_shards_lost ? latest_cloud_ : latest_local_;
}

double CheckpointStore::RestoreDuration(double total_params, int data_parallel) const {
  const double total_bytes = kCheckpointBytesPerParam * total_params;
  const double shard_bytes = total_bytes / std::max(1, data_parallel);
  return options_.restore_setup_s + shard_bytes / options_.cloud_read_bps;
}

}  // namespace varuna
