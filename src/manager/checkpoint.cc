#include "src/manager/checkpoint.h"

#include <algorithm>

#include "src/common/check.h"

namespace varuna {

bool CheckpointRecord::Complete() const {
  if (shards.empty()) {
    return false;
  }
  return std::all_of(shards.begin(), shards.end(), [](const CheckpointShard& shard) {
    return shard.state == ShardState::kFlushed;
  });
}

bool CheckpointRecord::Usable() const {
  if (shards.empty()) {
    return false;
  }
  return std::all_of(shards.begin(), shards.end(), [](const CheckpointShard& shard) {
    return shard.state == ShardState::kWritten || shard.state == ShardState::kFlushed;
  });
}

double CheckpointStore::BeginCheckpoint(int64_t minibatch_id, double total_params,
                                        int data_parallel,
                                        const std::vector<VmId>& shard_owners) {
  VARUNA_CHECK_GE(data_parallel, 1);
  VARUNA_CHECK_GT(total_params, 0.0);
  VARUNA_CHECK(shard_owners.empty() ||
               shard_owners.size() == static_cast<size_t>(data_parallel));
  const double total_bytes = kCheckpointBytesPerParam * total_params;
  // Replicas shard the write; each stage writes its own layers, all in
  // parallel, so the stall is one shard over local SSD.
  const double shard_bytes = total_bytes / data_parallel;
  const double stall = shard_bytes / options_.ssd_write_bps;

  CheckpointRecord record;
  record.minibatch_id = minibatch_id;
  const int64_t generation = ++next_generation_;
  record.generation = generation;
  record.shards.resize(static_cast<size_t>(data_parallel));
  for (size_t s = 0; s < record.shards.size(); ++s) {
    record.shards[s].owner = shard_owners.empty() ? -1 : shard_owners[s];
  }
  // A rollback past this step and re-checkpoint overwrites the old record;
  // the generation keeps the old record's in-flight flush events inert.
  records_[minibatch_id] = std::move(record);
  ++checkpoints_written_;

  // Background upload, one event per shard (VMs upload their shards in
  // parallel). A shard whose local copy is lost mid-flight never promotes.
  const double upload = shard_bytes / options_.cloud_upload_bps;
  for (int s = 0; s < data_parallel; ++s) {
    engine_->Schedule(stall + upload, [this, minibatch_id, generation, s] {
      const auto it = records_.find(minibatch_id);
      if (it == records_.end() || it->second.generation != generation) {
        return;  // Record superseded by a re-checkpoint of the same step.
      }
      CheckpointShard& shard = it->second.shards[static_cast<size_t>(s)];
      if (shard.state == ShardState::kWritten) {
        shard.state = ShardState::kFlushed;
        ++flushes_completed_;
      }
    });
  }
  return stall;
}

int64_t CheckpointStore::LatestComplete() const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->second.Complete()) {
      return it->first;
    }
  }
  return -1;
}

int64_t CheckpointStore::LatestUsable() const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->second.Usable()) {
      return it->first;
    }
  }
  return -1;
}

double CheckpointStore::CheckpointStallEstimate(double total_params,
                                                int data_parallel) const {
  const double shard_bytes =
      kCheckpointBytesPerParam * total_params / std::max(1, data_parallel);
  return shard_bytes / options_.ssd_write_bps;
}

double CheckpointStore::RestoreDuration(double total_params, int data_parallel) const {
  const double total_bytes = kCheckpointBytesPerParam * total_params;
  const double shard_bytes = total_bytes / std::max(1, data_parallel);
  return options_.restore_setup_s + shard_bytes / options_.cloud_read_bps;
}

void CheckpointStore::OnVmLost(VmId vm) {
  if (vm < 0) {
    return;
  }
  for (auto& [id, record] : records_) {
    for (CheckpointShard& shard : record.shards) {
      if (shard.owner == vm && shard.state == ShardState::kWritten) {
        shard.state = ShardState::kLost;
        ++shards_lost_;
      }
    }
  }
}

bool CheckpointStore::CorruptShard(int64_t minibatch_id, int shard) {
  const auto it = records_.find(minibatch_id);
  if (it == records_.end() || shard < 0 ||
      shard >= static_cast<int>(it->second.shards.size())) {
    return false;
  }
  CheckpointShard& target = it->second.shards[static_cast<size_t>(shard)];
  if (target.state == ShardState::kLost || target.state == ShardState::kCorrupt) {
    return false;
  }
  target.state = ShardState::kCorrupt;
  ++shards_corrupted_;
  return true;
}

std::vector<VmId> CheckpointStore::ShardOwnersInFlight() const {
  std::vector<VmId> owners;
  for (const auto& [id, record] : records_) {
    for (const CheckpointShard& shard : record.shards) {
      if (shard.state == ShardState::kWritten && shard.owner >= 0) {
        owners.push_back(shard.owner);
      }
    }
  }
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  return owners;
}

const CheckpointRecord* CheckpointStore::Record(int64_t minibatch_id) const {
  const auto it = records_.find(minibatch_id);
  return it == records_.end() ? nullptr : &it->second;
}

void CheckpointStore::CheckInvariants() const {
  // Re-checkpoints of a rolled-back step overwrite their record, so the
  // written counter bounds the live record count rather than equalling it.
  VARUNA_CHECK_GE(checkpoints_written_, static_cast<int>(records_.size()));
  int64_t lost = 0;
  int64_t corrupt = 0;
  int64_t flushed = 0;
  for (const auto& [id, record] : records_) {
    VARUNA_CHECK_EQ(record.minibatch_id, id);
    VARUNA_CHECK(!record.shards.empty());
    for (const CheckpointShard& shard : record.shards) {
      switch (shard.state) {
        case ShardState::kLost:
          ++lost;
          break;
        case ShardState::kCorrupt:
          ++corrupt;
          break;
        case ShardState::kFlushed:
          ++flushed;
          break;
        case ShardState::kWritten:
          break;
      }
    }
  }
  // The counters are monotone event counts; overwritten records took their
  // shard states with them, so the live scan can only undercount.
  VARUNA_CHECK_GE(shards_lost_, lost);
  VARUNA_CHECK_GE(shards_corrupted_, corrupt);
  VARUNA_CHECK_GE(flushes_completed_, flushed);
  // Complete => Usable, so the complete frontier can never be newer.
  VARUNA_CHECK_LE(LatestComplete(), LatestUsable());
}

}  // namespace varuna
