#include "src/manager/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "src/common/check.h"

namespace varuna {
namespace {

// Local FNV-1a for the restore-context fingerprint (same construction as the
// determinism module; doubles hash by IEEE-754 bit pattern).
struct Fnv {
  uint64_t state = 1469598103934665603ULL;
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state ^= (v >> (8 * i)) & 0xffULL;
      state *= 1099511628211ULL;
    }
  }
  void F64(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
};

bool HasWrittenShard(const CheckpointRecord& record) {
  return std::any_of(record.shards.begin(), record.shards.end(),
                     [](const CheckpointShard& shard) {
                       return shard.state == ShardState::kWritten;
                     });
}

}  // namespace

bool CheckpointRecord::Complete() const {
  if (shards.empty()) {
    return false;
  }
  return std::all_of(shards.begin(), shards.end(), [](const CheckpointShard& shard) {
    return shard.state == ShardState::kFlushed;
  });
}

bool CheckpointRecord::Usable() const {
  if (shards.empty()) {
    return false;
  }
  return std::all_of(shards.begin(), shards.end(), [](const CheckpointShard& shard) {
    return shard.state == ShardState::kWritten || shard.state == ShardState::kFlushed;
  });
}

CheckpointRecord* CheckpointStore::FindRecord(int64_t minibatch_id) {
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), minibatch_id,
      [](const CheckpointRecord& record, int64_t id) { return record.minibatch_id < id; });
  return it != records_.end() && it->minibatch_id == minibatch_id ? &*it : nullptr;
}

const CheckpointRecord* CheckpointStore::FindRecord(int64_t minibatch_id) const {
  return const_cast<CheckpointStore*>(this)->FindRecord(minibatch_id);
}

bool CheckpointStore::ChainUsable(const CheckpointRecord& record) const {
  const CheckpointRecord* cur = &record;
  while (true) {
    if (!cur->Usable()) {
      return false;
    }
    if (!cur->is_delta) {
      return true;
    }
    cur = FindRecord(cur->base_minibatch_id);
    if (cur == nullptr) {
      return false;  // Base pruned or never written: the chain is broken.
    }
  }
}

bool CheckpointStore::ChainComplete(const CheckpointRecord& record) const {
  const CheckpointRecord* cur = &record;
  while (true) {
    if (!cur->Complete()) {
      return false;
    }
    if (!cur->is_delta) {
      return true;
    }
    cur = FindRecord(cur->base_minibatch_id);
    if (cur == nullptr) {
      return false;
    }
  }
}

bool CheckpointStore::NextIsDelta(int64_t minibatch_id) const {
  if (options_.full_checkpoint_every <= 1 || records_.empty()) {
    return false;
  }
  const CheckpointRecord& newest = records_.back();
  // Only chain forward onto a chain that is whole right now; a rollback
  // re-checkpoint (id at or below the newest) and a broken chain both
  // self-heal with a full snapshot.
  return newest.minibatch_id < minibatch_id &&
         newest.chain_length + 1 < options_.full_checkpoint_every && ChainUsable(newest);
}

double CheckpointStore::NextShardBytes(double total_params, int data_parallel,
                                       int64_t minibatch_id) const {
  const double full_shard_bytes =
      kCheckpointBytesPerParam * total_params / std::max(1, data_parallel);
  return NextIsDelta(minibatch_id) ? full_shard_bytes * options_.delta_fraction
                                   : full_shard_bytes;
}

double CheckpointStore::BeginCheckpoint(int64_t minibatch_id, double total_params,
                                        int data_parallel,
                                        const std::vector<VmId>& shard_owners,
                                        bool premigrated) {
  VARUNA_CHECK_GE(data_parallel, 1);
  VARUNA_CHECK_GT(total_params, 0.0);
  VARUNA_CHECK(shard_owners.empty() ||
               shard_owners.size() == static_cast<size_t>(data_parallel));
  // Replicas shard the write; each stage writes its own layers, all in
  // parallel, so the stall is one shard over local SSD. Delta records write
  // only the changed fraction.
  const bool is_delta = NextIsDelta(minibatch_id);
  const double shard_bytes = NextShardBytes(total_params, data_parallel, minibatch_id);
  const double stall = shard_bytes / options_.ssd_write_bps;

  CheckpointRecord record;
  record.minibatch_id = minibatch_id;
  const int64_t generation = ++next_generation_;
  record.generation = generation;
  record.shards.resize(static_cast<size_t>(data_parallel));
  for (size_t s = 0; s < record.shards.size(); ++s) {
    record.shards[s].owner = shard_owners.empty() ? -1 : shard_owners[s];
  }
  record.is_delta = is_delta;
  if (is_delta) {
    record.base_minibatch_id = records_.back().minibatch_id;
    record.chain_length = records_.back().chain_length + 1;
    ++delta_checkpoints_written_;
  }
  record.shard_bytes = shard_bytes;
  record.premigrated = premigrated;
  last_checkpoint_bytes_ = shard_bytes * data_parallel;

  // A rollback past this step and re-checkpoint overwrites the old record;
  // the generation keeps the old record's in-flight flush events inert.
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), minibatch_id,
      [](const CheckpointRecord& existing, int64_t id) { return existing.minibatch_id < id; });
  if (it != records_.end() && it->minibatch_id == minibatch_id) {
    *it = std::move(record);
  } else {
    records_.insert(it, std::move(record));
  }
  ++checkpoints_written_;

  // Background upload, one event per shard (VMs upload their shards in
  // parallel). A shard whose local copy is lost mid-flight never promotes.
  const double upload = shard_bytes / options_.cloud_upload_bps;
  for (int s = 0; s < data_parallel; ++s) {
    engine_->Schedule(stall + upload, [this, minibatch_id, generation, s] {
      CheckpointRecord* target = FindRecord(minibatch_id);
      if (target == nullptr || target->generation != generation) {
        return;  // Record superseded by a re-checkpoint, or garbage-collected.
      }
      CheckpointShard& shard = target->shards[static_cast<size_t>(s)];
      if (shard.state == ShardState::kWritten) {
        shard.state = ShardState::kFlushed;
        ++flushes_completed_;
      }
    });
  }
  GarbageCollect();
  return stall;
}

int64_t CheckpointStore::LatestComplete() const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (ChainComplete(*it)) {
      return it->minibatch_id;
    }
  }
  return -1;
}

int64_t CheckpointStore::LatestUsable() const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (ChainUsable(*it)) {
      return it->minibatch_id;
    }
  }
  return -1;
}

double CheckpointStore::CheckpointStallEstimate(double total_params,
                                                int data_parallel) const {
  // Estimate for the next *forward* checkpoint (a fresh id above every
  // existing record); shares NextShardBytes with BeginCheckpoint so the
  // estimate and the charged stall cannot drift.
  return NextShardBytes(total_params, data_parallel,
                        std::numeric_limits<int64_t>::max()) /
         options_.ssd_write_bps;
}

double CheckpointStore::RestoreDuration(double total_params, int data_parallel) const {
  const double total_bytes = kCheckpointBytesPerParam * total_params;
  const double shard_bytes = total_bytes / std::max(1, data_parallel);
  return options_.restore_setup_s + shard_bytes / options_.cloud_read_bps;
}

double CheckpointStore::RestoreSeconds(int64_t minibatch_id, double total_params,
                                       int data_parallel,
                                       const std::vector<VmId>& target_vms, int warm_vms,
                                       RestoreBreakdown* breakdown) const {
  RestoreBreakdown scratch;
  RestoreBreakdown& out = breakdown != nullptr ? *breakdown : scratch;
  out = RestoreBreakdown{};

  const bool fast =
      options_.locality_aware_restore || options_.full_checkpoint_every > 1;
  const CheckpointRecord* record = FindRecord(minibatch_id);

  // Resolve the chain, newest first, then reverse: deltas apply onto their
  // base in order. A broken chain (or the legacy model) prices as one full
  // cloud restore.
  std::vector<const CheckpointRecord*> chain;
  if (fast && record != nullptr) {
    const CheckpointRecord* cur = record;
    while (cur != nullptr) {
      chain.push_back(cur);
      if (!cur->is_delta) {
        break;
      }
      cur = FindRecord(cur->base_minibatch_id);
    }
    if (chain.empty() || chain.back()->is_delta) {
      chain.clear();  // Missing full base: fall back to the pessimistic model.
    }
  }
  if (chain.empty()) {
    const double duration = RestoreDuration(total_params, data_parallel);
    out.setup_s = options_.restore_setup_s;
    out.cloud_s = duration - options_.restore_setup_s;
    if (record != nullptr) {
      out.chain_records = 1;
      out.shards_cloud = static_cast<int>(record->shards.size());
    }
    return duration;
  }
  std::reverse(chain.begin(), chain.end());

  // Setup warms with the fraction of the restoring placement that survived
  // the morph (their processes and images are already resident; the blend
  // models the staggered restart overlapping the survivors' rebuild).
  double setup = options_.restore_setup_s;
  if (options_.locality_aware_restore && !target_vms.empty()) {
    const int warm =
        std::max(0, std::min(warm_vms, static_cast<int>(target_vms.size())));
    const double warm_fraction = static_cast<double>(warm) /
                                 static_cast<double>(target_vms.size());
    setup = options_.warm_restore_setup_s +
            (options_.restore_setup_s - options_.warm_restore_setup_s) *
                (1.0 - warm_fraction);
  }
  out.setup_s = setup;

  enum class Tier : uint8_t { kSsd, kPeer, kCloud };
  std::vector<Tier> tiers;
  for (const CheckpointRecord* rec : chain) {
    ++out.chain_records;
    if (rec->premigrated) {
      // Premigration already moved this record toward the new placement.
      out.shards_premigrated += static_cast<int>(rec->shards.size());
      continue;
    }
    tiers.clear();
    int peer_flows = 0;
    for (const CheckpointShard& shard : rec->shards) {
      Tier tier = Tier::kCloud;
      if (options_.locality_aware_restore && shard.owner >= 0 &&
          (shard.state == ShardState::kWritten || shard.state == ShardState::kFlushed)) {
        // kWritten shards live on their owner's SSD by bookkeeping (a dead
        // owner would have marked them kLost); kFlushed shards keep the local
        // copy too, as long as the owner VM is verifiably still up.
        const bool owner_alive =
            shard.state == ShardState::kWritten ||
            (cluster_ != nullptr && shard.owner < cluster_->num_vms() &&
             cluster_->IsActive(shard.owner));
        if (owner_alive) {
          const bool owner_in_placement =
              std::find(target_vms.begin(), target_vms.end(), shard.owner) !=
              target_vms.end();
          if (owner_in_placement) {
            tier = Tier::kSsd;
          } else if (cluster_ != nullptr && !target_vms.empty()) {
            tier = Tier::kPeer;
            ++peer_flows;
          }
        }
      }
      tiers.push_back(tier);
    }
    // Shards of one record restore in parallel (each replica reads its own),
    // so the record contributes its slowest shard; peer pulls share NICs.
    double record_s = 0.0;
    Tier slowest = Tier::kSsd;
    for (size_t s = 0; s < tiers.size(); ++s) {
      double shard_s = 0.0;
      switch (tiers[s]) {
        case Tier::kSsd:
          shard_s = rec->shard_bytes / options_.ssd_read_bps;
          ++out.shards_ssd;
          break;
        case Tier::kPeer: {
          const VmId owner = rec->shards[s].owner;
          const VmId target = target_vms[s % target_vms.size()];
          const GpuId src = cluster_->topology().GpusOfNode(cluster_->Vm(owner).node).front();
          const GpuId dst = cluster_->topology().GpusOfNode(cluster_->Vm(target).node).front();
          shard_s = cluster_->network().MeanTransferTime(src, dst, rec->shard_bytes,
                                                         std::max(1, peer_flows));
          ++out.shards_peer;
          break;
        }
        case Tier::kCloud:
          shard_s = rec->shard_bytes / options_.cloud_read_bps;
          ++out.shards_cloud;
          break;
      }
      if (shard_s > record_s || s == 0) {
        record_s = shard_s;
        slowest = tiers[s];
      }
    }
    switch (slowest) {
      case Tier::kSsd:
        out.ssd_s += record_s;
        break;
      case Tier::kPeer:
        out.peer_s += record_s;
        break;
      case Tier::kCloud:
        out.cloud_s += record_s;
        break;
    }
  }
  return out.Total();
}

void CheckpointStore::OnVmLost(VmId vm) {
  if (vm < 0) {
    return;
  }
  for (CheckpointRecord& record : records_) {
    for (CheckpointShard& shard : record.shards) {
      if (shard.owner == vm && shard.state == ShardState::kWritten) {
        shard.state = ShardState::kLost;
        ++shards_lost_;
      }
    }
  }
}

bool CheckpointStore::CorruptShard(int64_t minibatch_id, int shard) {
  CheckpointRecord* record = FindRecord(minibatch_id);
  if (record == nullptr || shard < 0 ||
      shard >= static_cast<int>(record->shards.size())) {
    return false;
  }
  CheckpointShard& target = record->shards[static_cast<size_t>(shard)];
  if (target.state == ShardState::kLost || target.state == ShardState::kCorrupt) {
    return false;
  }
  target.state = ShardState::kCorrupt;
  ++shards_corrupted_;
  return true;
}

std::vector<VmId> CheckpointStore::ShardOwnersInFlight() const {
  std::vector<VmId> owners;
  for (const CheckpointRecord& record : records_) {
    for (const CheckpointShard& shard : record.shards) {
      if (shard.state == ShardState::kWritten && shard.owner >= 0) {
        owners.push_back(shard.owner);
      }
    }
  }
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  return owners;
}

const CheckpointRecord* CheckpointStore::Record(int64_t minibatch_id) const {
  return FindRecord(minibatch_id);
}

uint64_t CheckpointStore::RestoreContextFingerprint() const {
  Fnv fnv;
  fnv.U64(options_.locality_aware_restore ? 1 : 0);
  fnv.U64(static_cast<uint64_t>(options_.full_checkpoint_every));
  fnv.F64(options_.delta_fraction);
  fnv.F64(options_.restore_setup_s);
  fnv.F64(options_.warm_restore_setup_s);
  fnv.F64(options_.ssd_read_bps);
  fnv.F64(options_.cloud_read_bps);
  // Shape of the newest usable chain: ids, premigration, per-shard state and
  // owner. Any change that could reprice a restore perturbs this hash.
  const CheckpointRecord* cur = FindRecord(LatestUsable());
  while (cur != nullptr) {
    fnv.U64(static_cast<uint64_t>(cur->minibatch_id));
    fnv.U64(cur->premigrated ? 1 : 0);
    fnv.F64(cur->shard_bytes);
    for (const CheckpointShard& shard : cur->shards) {
      fnv.U64(static_cast<uint64_t>(shard.state));
      fnv.U64(static_cast<uint64_t>(static_cast<int64_t>(shard.owner)));
    }
    cur = cur->is_delta ? FindRecord(cur->base_minibatch_id) : nullptr;
  }
  return fnv.state;
}

void CheckpointStore::GarbageCollect() {
  if (records_.size() <= 1) {
    return;
  }
  // Retention floor: the second-newest chain-complete full checkpoint. One
  // complete fallback level stays below the newest, matching the corruption-
  // fallback depth the recovery battery exercises; everything older can only
  // be reached after BOTH retained chains break.
  int64_t keep_from = std::numeric_limits<int64_t>::min();
  int complete_fulls = 0;
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (!it->is_delta && ChainComplete(*it)) {
      if (++complete_fulls == 2) {
        keep_from = it->minibatch_id;
        break;
      }
    }
  }
  const auto dead = [&](const CheckpointRecord& record) {
    if (HasWrittenShard(record)) {
      return false;  // Flush in flight: keep the bookkeeping target.
    }
    if (record.minibatch_id < keep_from) {
      return true;  // Superseded by two complete fallback levels.
    }
    // A broken chain with nothing left to flush can never be restored or
    // mutate a counter again.
    return !ChainUsable(record);
  };
  // Flag first, compact second: the chain walks inside `dead` search
  // records_, which must stay intact while the flags are computed.
  std::vector<char> dead_flags(records_.size(), 0);
  for (size_t i = 0; i < records_.size(); ++i) {
    dead_flags[i] = dead(records_[i]) ? 1 : 0;
  }
  size_t keep = 0;
  for (size_t i = 0; i < records_.size(); ++i) {
    if (dead_flags[i] == 0) {
      if (keep != i) {
        records_[keep] = std::move(records_[i]);
      }
      ++keep;
    }
  }
  records_pruned_ += static_cast<int64_t>(records_.size() - keep);
  records_.resize(keep);
}

void CheckpointStore::CheckInvariants() const {
  // Re-checkpoints of a rolled-back step overwrite their record and GC prunes
  // dead ones, so the written counter bounds live + pruned rather than
  // equalling the live count.
  VARUNA_CHECK_GE(checkpoints_written_,
                  static_cast<int>(records_.size()) + static_cast<int>(records_pruned_));
  VARUNA_CHECK_GE(checkpoints_written_, static_cast<int>(delta_checkpoints_written_));
  int64_t lost = 0;
  int64_t corrupt = 0;
  int64_t flushed = 0;
  int64_t previous_id = std::numeric_limits<int64_t>::min();
  for (const CheckpointRecord& record : records_) {
    VARUNA_CHECK_GT(record.minibatch_id, previous_id);  // Sorted, unique.
    previous_id = record.minibatch_id;
    VARUNA_CHECK(!record.shards.empty());
    // Chain bookkeeping: full records are their own base; deltas point
    // strictly backwards and never exceed the configured chain room.
    if (record.is_delta) {
      VARUNA_CHECK_GE(record.chain_length, 1);
      VARUNA_CHECK_LT(record.base_minibatch_id, record.minibatch_id);
      VARUNA_CHECK_LT(record.chain_length,
                      std::max(1, options_.full_checkpoint_every));
    } else {
      VARUNA_CHECK_EQ(record.chain_length, 0);
      VARUNA_CHECK_EQ(record.base_minibatch_id, -1);
    }
    for (const CheckpointShard& shard : record.shards) {
      switch (shard.state) {
        case ShardState::kLost:
          ++lost;
          break;
        case ShardState::kCorrupt:
          ++corrupt;
          break;
        case ShardState::kFlushed:
          ++flushed;
          break;
        case ShardState::kWritten:
          break;
      }
    }
  }
  // The counters are monotone event counts; overwritten and pruned records
  // took their shard states with them, so the live scan can only undercount.
  VARUNA_CHECK_GE(shards_lost_, lost);
  VARUNA_CHECK_GE(shards_corrupted_, corrupt);
  VARUNA_CHECK_GE(flushes_completed_, flushed);
  // Complete => Usable per record, and the chain walks are identical, so the
  // complete frontier can never be newer.
  VARUNA_CHECK_LE(LatestComplete(), LatestUsable());
}

}  // namespace varuna
