// Continuous checkpointing (§4.5). Model state is checkpointed per cut-point
// section at mini-batch boundaries; data-parallel replicas shard the writes.
// Checkpoints land on local SSD first (briefly blocking training) and upload
// to cloud storage in the background; after a preemption the job resumes from
// the newest checkpoint that is still *complete* — every shard either safely
// in cloud storage or on a VM that is still alive. Shards are tracked
// individually (written / flushed / lost / corrupt) because the hostile spot
// market kills shard-holding VMs mid-flush and cloud objects can be damaged;
// resume must then fall back to the newest earlier complete checkpoint, never
// to a checkpoint with holes.
//
// Fast recovery path (all opt-in via CheckpointOptions; defaults reproduce
// the original maximally-pessimistic model bit-for-bit):
//   * Delta checkpoints — a full snapshot every `full_checkpoint_every`
//     cadences with delta records (`delta_fraction` of the state) between.
//     A restore resolves a *chain*: the record plus its contiguous ancestors
//     back to the full base; a lost or corrupt record anywhere in the chain
//     invalidates everything chained on top of it, so resume falls back to
//     the newest older chain that is still whole.
//   * Locality-aware restore — RestoreSeconds() prices each shard of each
//     chain record from the cheapest live source: the owner VM's SSD when the
//     owner is part of the restoring placement, a peer transfer over the
//     simulated Network when the owner is alive elsewhere, and a cloud read
//     otherwise; `restore_setup_s` shrinks toward `warm_restore_setup_s` as
//     the fraction of restoring VMs that survived the morph grows, and
//     premigrated records restore for free (their bytes moved early).
//   * Live handoff is the trainer's job (ElasticTrainer schedules the
//     peer-to-peer transfer events); the store only prices checkpoint-based
//     restores.
#ifndef SRC_MANAGER_CHECKPOINT_H_
#define SRC_MANAGER_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/sim/engine.h"

namespace varuna {

struct CheckpointOptions {
  double ssd_write_bps = 1.0e9;     // Local NVMe.
  double cloud_upload_bps = 250e6;  // Background blob upload per VM.
  // Fixed cost to restart processes, rebuild process groups and load state.
  double restore_setup_s = 45.0;
  double cloud_read_bps = 500e6;

  // --- Fast recovery path (defaults = all disabled / legacy behavior). ---
  // Full snapshot every K cadence checkpoints, delta records between (1
  // disables deltas: every record is full). A delta chains onto the newest
  // record only while that record's whole chain is usable; otherwise the
  // store self-heals by writing a full snapshot.
  int full_checkpoint_every = 1;
  // Fraction of the full state a delta record writes. Adam moments churn
  // every step but fp16 activations and many master weights compress well
  // against the previous snapshot, so this is a tunable model input rather
  // than a derived quantity.
  double delta_fraction = 0.25;
  // Price restores per shard from the cheapest live source instead of always
  // charging full setup plus a full cloud read.
  bool locality_aware_restore = false;
  double ssd_read_bps = 2.0e9;  // Local NVMe read (owner-survives tier).
  // Setup floor when every restoring VM survived the morph: process-group
  // rebuild only, no re-provisioning / image pull / process start.
  double warm_restore_setup_s = 8.0;
  // On voluntary morphs the trainer hands live state peer-to-peer between
  // the outgoing and incoming placements (overlapped with process-group
  // rebuild) instead of a checkpoint-restore round trip. Involuntary
  // preemptions always fall back to checkpoint restore.
  bool live_handoff = false;
};

// Bytes checkpointed per parameter: fp32 master + Adam m/v + fp16 weights.
constexpr double kCheckpointBytesPerParam = 14.0;

// Lifecycle of one data-parallel shard of one checkpoint.
enum class ShardState : uint8_t {
  kWritten,  // On the owner VM's local SSD; cloud upload in flight.
  kFlushed,  // Replicated to cloud storage; survives any VM death.
  kLost,     // Local copy died with its VM before the flush completed.
  kCorrupt,  // Cloud object lost or corrupted; detected at restore scan.
};

struct CheckpointShard {
  ShardState state = ShardState::kWritten;
  VmId owner = -1;  // VM holding the local copy (-1 = untracked).
};

struct CheckpointRecord {
  int64_t minibatch_id = -1;
  // Distinguishes re-checkpoints of the same step (training rolled back past
  // it and re-covered it): stale flush events from an overwritten record must
  // not promote the new record's shards.
  int64_t generation = 0;
  std::vector<CheckpointShard> shards;
  // Delta-chain bookkeeping. A full record is its own chain (base -1,
  // chain_length 0); a delta chains onto the immediately preceding record
  // (chain_length = predecessor's + 1 <= full_checkpoint_every - 1).
  bool is_delta = false;
  int64_t base_minibatch_id = -1;
  int chain_length = 0;
  // Bytes one shard of THIS record wrote (delta records write the
  // delta_fraction of a full shard); restore pricing reads this back.
  double shard_bytes = 0.0;
  // Written early by the liveput premigration trigger: the bytes already
  // moved toward the next placement, so a locality-aware restore reads this
  // record for free.
  bool premigrated = false;

  // Every shard reached cloud storage: restorable no matter which VMs die.
  bool Complete() const;
  // No shard lost or corrupt: restorable right now (kWritten shards read from
  // their still-alive owners' SSDs, the rest from cloud).
  bool Usable() const;
};

// How a restore's seconds split across recovery tiers. Chain records restore
// sequentially (deltas apply in order); within a record the data-parallel
// shards read in parallel, so each record contributes its slowest shard and
// that contribution is attributed to the slowest shard's tier.
struct RestoreBreakdown {
  double setup_s = 0.0;  // Process (re)start + process-group rebuild.
  double ssd_s = 0.0;    // Shards read from a surviving owner inside the placement.
  double peer_s = 0.0;   // Shards pulled from an alive owner outside the placement.
  double cloud_s = 0.0;  // Shards (re-)read from cloud storage.
  int chain_records = 0;  // Records resolved: 1 full base + trailing deltas.
  int shards_ssd = 0;
  int shards_peer = 0;
  int shards_cloud = 0;
  int shards_premigrated = 0;  // Restored free: premigration moved them early.
  double Total() const { return setup_s + ssd_s + peer_s + cloud_s; }
};

class CheckpointStore {
 public:
  // `cluster` (optional) prices the peer-transfer restore tier over the
  // simulated network; without it peer reads fall back to cloud pricing.
  CheckpointStore(SimEngine* engine, CheckpointOptions options,
                  const Cluster* cluster = nullptr)
      : engine_(engine), options_(options), cluster_(cluster) {}

  // Begins a checkpoint of `total_params` parameters at `minibatch_id`,
  // sharded across `data_parallel` replicas. Returns the foreground stall
  // (local SSD write of one shard); each shard's cloud flush completes later
  // and is tracked per shard. `shard_owners` (optional, size data_parallel)
  // names the VM holding each shard's local copy so OnVmLost() can mark the
  // right shards lost. `premigrated` marks the record as written by the
  // liveput premigration trigger (restores read it for free).
  double BeginCheckpoint(int64_t minibatch_id, double total_params, int data_parallel,
                         const std::vector<VmId>& shard_owners = {},
                         bool premigrated = false);

  // Newest checkpoint whose whole chain reached cloud storage (-1 if none).
  int64_t LatestComplete() const;
  // Newest checkpoint whose whole chain has no lost/corrupt shard (-1 if
  // none): restorable as long as the kWritten shards' owners stay up. This is
  // what resume uses — the "last complete global step" resolution. With
  // deltas disabled every chain is a single full record and this degenerates
  // to the original per-record scan.
  int64_t LatestUsable() const;

  // Legacy view kept for the pre-shard-tracking call sites:
  // local_shards_lost=false -> LatestUsable(), true -> LatestComplete().
  int64_t LatestRestorable(bool local_shards_lost) const {
    return local_shards_lost ? LatestComplete() : LatestUsable();
  }

  // Time to restore the given checkpoint onto a new configuration. Legacy
  // model: full setup plus one full shard read from cloud, regardless of
  // which record is restored or who survived.
  double RestoreDuration(double total_params, int data_parallel) const;

  // Record-aware restore pricing. Resolves the chain of `minibatch_id` and
  // prices it: with locality_aware_restore each shard reads from its cheapest
  // live source and setup warms with the surviving-VM fraction (`warm_vms` of
  // `target_vms` carried over from the previous placement); without it every
  // chain record reads from cloud at full setup. When deltas are also
  // disabled (or the record is unknown, e.g. a fresh start) this returns
  // exactly RestoreDuration(). `breakdown` (optional) receives the per-tier
  // split either way, so downtime telemetry works before and after enabling
  // the fast path.
  double RestoreSeconds(int64_t minibatch_id, double total_params, int data_parallel,
                        const std::vector<VmId>& target_vms, int warm_vms,
                        RestoreBreakdown* breakdown = nullptr) const;

  // Foreground stall a BeginCheckpoint of this shape *would* cost (one shard
  // over local SSD) — the liveput policy's pre-migration cost model compares
  // it against the expected rollback work before committing to a checkpoint.
  // Delta-aware: consults the same next-record decision BeginCheckpoint will
  // make, so the estimate and the charged stall never drift.
  double CheckpointStallEstimate(double total_params, int data_parallel) const;

  // Marks every not-yet-flushed shard owned by `vm` as lost (the local copy
  // died with the VM). Idempotent; called from the cluster's preemption
  // observer for announced *and* unannounced VM deaths.
  void OnVmLost(VmId vm);

  // Chaos hook: damages the cloud object of shard `shard` of checkpoint
  // `minibatch_id` (loss and corruption are indistinguishable at restore —
  // missing blob vs. checksum mismatch both make the shard unusable). Returns
  // false if no such shard exists or it is already unusable.
  bool CorruptShard(int64_t minibatch_id, int shard);

  // VMs owning a shard whose flush is still in flight (state kWritten), over
  // all records, deduplicated ascending. The chaos engine targets these for
  // the "kill every VM holding a shard mid-flush" storm.
  std::vector<VmId> ShardOwnersInFlight() const;

  const CheckpointRecord* Record(int64_t minibatch_id) const;

  // Structural fingerprint of the restore cost model: options plus the shape
  // of the newest usable chain (ids, premigration, per-shard source tiers).
  // The trainer folds it into the config-search memo context so checkpoint
  // progress that changes recovery pricing rotates the memo.
  uint64_t RestoreContextFingerprint() const;

  int64_t latest_local() const { return LatestUsable(); }
  int64_t latest_cloud() const { return LatestComplete(); }
  int checkpoints_written() const { return checkpoints_written_; }
  int64_t shards_lost() const { return shards_lost_; }
  int64_t shards_corrupted() const { return shards_corrupted_; }
  int64_t flushes_completed() const { return flushes_completed_; }
  int64_t delta_checkpoints_written() const { return delta_checkpoints_written_; }
  int64_t records_pruned() const { return records_pruned_; }
  // Total bytes (all shards) the most recent BeginCheckpoint wrote.
  double last_checkpoint_bytes() const { return last_checkpoint_bytes_; }
  size_t live_records() const { return records_.size(); }

  // Aborts via VARUNA_CHECK on inconsistent shard bookkeeping.
  void CheckInvariants() const;

 private:
  // Flat sorted-vector idiom: ordered (and therefore iterated) by mini-batch
  // id ascending, so the latest-usable scan is deterministic by construction
  // and OnVmLost touches a GC-bounded window instead of every record ever
  // written.
  CheckpointRecord* FindRecord(int64_t minibatch_id);
  const CheckpointRecord* FindRecord(int64_t minibatch_id) const;

  // Whole-chain predicates: record plus contiguous ancestors to a full base.
  // A missing ancestor (pruned or never written) fails the chain.
  bool ChainUsable(const CheckpointRecord& record) const;
  bool ChainComplete(const CheckpointRecord& record) const;

  // The next-record shape BeginCheckpoint will produce given current state:
  // a delta only when deltas are enabled, the chain has room, and the newest
  // record's whole chain is still usable (never chain onto a broken base).
  bool NextIsDelta(int64_t minibatch_id) const;
  // Bytes one shard of the next checkpoint writes (shared by the stall
  // charge and the stall estimate so the two can never drift).
  double NextShardBytes(double total_params, int data_parallel,
                        int64_t minibatch_id) const;

  // Prunes records that can no longer influence any observable outcome:
  // everything older than the *second*-newest chain-complete full checkpoint
  // (keeping one complete fallback level below the newest, matching the
  // corruption-fallback depth the recovery tests exercise), provided the
  // record has no flush still in flight; plus bookkeeping-inert records whose
  // chain is already broken (never restorable, nothing left to flush).
  void GarbageCollect();

  SimEngine* engine_;
  CheckpointOptions options_;
  const Cluster* cluster_;
  std::vector<CheckpointRecord> records_;  // Sorted by minibatch_id ascending.
  int64_t next_generation_ = 0;
  int checkpoints_written_ = 0;
  int64_t shards_lost_ = 0;
  int64_t shards_corrupted_ = 0;
  int64_t flushes_completed_ = 0;
  int64_t delta_checkpoints_written_ = 0;
  int64_t records_pruned_ = 0;
  double last_checkpoint_bytes_ = 0.0;
};

}  // namespace varuna

#endif  // SRC_MANAGER_CHECKPOINT_H_
