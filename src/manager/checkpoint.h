// Continuous checkpointing (§4.5). Model state is checkpointed per cut-point
// section at mini-batch boundaries; data-parallel replicas shard the writes.
// Checkpoints land on local SSD first (briefly blocking training) and upload
// to cloud storage in the background; after a preemption the job resumes from
// the newest checkpoint that is still *complete* — every shard either safely
// in cloud storage or on a VM that is still alive. Shards are tracked
// individually (written / flushed / lost / corrupt) because the hostile spot
// market kills shard-holding VMs mid-flush and cloud objects can be damaged;
// resume must then fall back to the newest earlier complete checkpoint, never
// to a checkpoint with holes.
#ifndef SRC_MANAGER_CHECKPOINT_H_
#define SRC_MANAGER_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/sim/engine.h"

namespace varuna {

struct CheckpointOptions {
  double ssd_write_bps = 1.0e9;     // Local NVMe.
  double cloud_upload_bps = 250e6;  // Background blob upload per VM.
  // Fixed cost to restart processes, rebuild process groups and load state.
  double restore_setup_s = 45.0;
  double cloud_read_bps = 500e6;
};

// Bytes checkpointed per parameter: fp32 master + Adam m/v + fp16 weights.
constexpr double kCheckpointBytesPerParam = 14.0;

// Lifecycle of one data-parallel shard of one checkpoint.
enum class ShardState : uint8_t {
  kWritten,  // On the owner VM's local SSD; cloud upload in flight.
  kFlushed,  // Replicated to cloud storage; survives any VM death.
  kLost,     // Local copy died with its VM before the flush completed.
  kCorrupt,  // Cloud object lost or corrupted; detected at restore scan.
};

struct CheckpointShard {
  ShardState state = ShardState::kWritten;
  VmId owner = -1;  // VM holding the local copy (-1 = untracked).
};

struct CheckpointRecord {
  int64_t minibatch_id = -1;
  // Distinguishes re-checkpoints of the same step (training rolled back past
  // it and re-covered it): stale flush events from an overwritten record must
  // not promote the new record's shards.
  int64_t generation = 0;
  std::vector<CheckpointShard> shards;

  // Every shard reached cloud storage: restorable no matter which VMs die.
  bool Complete() const;
  // No shard lost or corrupt: restorable right now (kWritten shards read from
  // their still-alive owners' SSDs, the rest from cloud).
  bool Usable() const;
};

class CheckpointStore {
 public:
  CheckpointStore(SimEngine* engine, CheckpointOptions options)
      : engine_(engine), options_(options) {}

  // Begins a checkpoint of `total_params` parameters at `minibatch_id`,
  // sharded across `data_parallel` replicas. Returns the foreground stall
  // (local SSD write of one shard); each shard's cloud flush completes later
  // and is tracked per shard. `shard_owners` (optional, size data_parallel)
  // names the VM holding each shard's local copy so OnVmLost() can mark the
  // right shards lost.
  double BeginCheckpoint(int64_t minibatch_id, double total_params, int data_parallel,
                         const std::vector<VmId>& shard_owners = {});

  // Newest checkpoint whose shards all reached cloud storage (-1 if none).
  int64_t LatestComplete() const;
  // Newest checkpoint with no lost/corrupt shard (-1 if none): restorable as
  // long as the kWritten shards' owners stay up. This is what resume uses —
  // the "last complete global step" resolution.
  int64_t LatestUsable() const;

  // Legacy view kept for the pre-shard-tracking call sites:
  // local_shards_lost=false -> LatestUsable(), true -> LatestComplete().
  int64_t LatestRestorable(bool local_shards_lost) const {
    return local_shards_lost ? LatestComplete() : LatestUsable();
  }

  // Time to restore the given checkpoint onto a new configuration.
  double RestoreDuration(double total_params, int data_parallel) const;

  // Foreground stall a BeginCheckpoint of this shape *would* cost (one shard
  // over local SSD) — the liveput policy's pre-migration cost model compares
  // it against the expected rollback work before committing to a checkpoint.
  double CheckpointStallEstimate(double total_params, int data_parallel) const;

  // Marks every not-yet-flushed shard owned by `vm` as lost (the local copy
  // died with the VM). Idempotent; called from the cluster's preemption
  // observer for announced *and* unannounced VM deaths.
  void OnVmLost(VmId vm);

  // Chaos hook: damages the cloud object of shard `shard` of checkpoint
  // `minibatch_id` (loss and corruption are indistinguishable at restore —
  // missing blob vs. checksum mismatch both make the shard unusable). Returns
  // false if no such shard exists or it is already unusable.
  bool CorruptShard(int64_t minibatch_id, int shard);

  // VMs owning a shard whose flush is still in flight (state kWritten), over
  // all records, deduplicated ascending. The chaos engine targets these for
  // the "kill every VM holding a shard mid-flush" storm.
  std::vector<VmId> ShardOwnersInFlight() const;

  const CheckpointRecord* Record(int64_t minibatch_id) const;

  int64_t latest_local() const { return LatestUsable(); }
  int64_t latest_cloud() const { return LatestComplete(); }
  int checkpoints_written() const { return checkpoints_written_; }
  int64_t shards_lost() const { return shards_lost_; }
  int64_t shards_corrupted() const { return shards_corrupted_; }
  int64_t flushes_completed() const { return flushes_completed_; }

  // Aborts via VARUNA_CHECK on inconsistent shard bookkeeping.
  void CheckInvariants() const;

 private:
  SimEngine* engine_;
  CheckpointOptions options_;
  // Keyed (and therefore iterated) by mini-batch id, ascending: the
  // latest-complete scan is deterministic by construction.
  std::map<int64_t, CheckpointRecord> records_;
  int64_t next_generation_ = 0;
  int checkpoints_written_ = 0;
  int64_t shards_lost_ = 0;
  int64_t shards_corrupted_ = 0;
  int64_t flushes_completed_ = 0;
};

}  // namespace varuna

#endif  // SRC_MANAGER_CHECKPOINT_H_
