// Continuous checkpointing (§4.5). Model state is checkpointed per cut-point
// section at mini-batch boundaries; data-parallel replicas shard the writes.
// Checkpoints land on local SSD first (briefly blocking training) and upload
// to cloud storage in the background; after a preemption the job resumes from
// the latest *cloud-complete* checkpoint, possibly with a different pipeline
// depth (per-section granularity is what makes re-mapping possible).
#ifndef SRC_MANAGER_CHECKPOINT_H_
#define SRC_MANAGER_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "src/sim/engine.h"

namespace varuna {

struct CheckpointOptions {
  double ssd_write_bps = 1.0e9;     // Local NVMe.
  double cloud_upload_bps = 250e6;  // Background blob upload per VM.
  // Fixed cost to restart processes, rebuild process groups and load state.
  double restore_setup_s = 45.0;
  double cloud_read_bps = 500e6;
};

// Bytes checkpointed per parameter: fp32 master + Adam m/v + fp16 weights.
constexpr double kCheckpointBytesPerParam = 14.0;

class CheckpointStore {
 public:
  CheckpointStore(SimEngine* engine, CheckpointOptions options)
      : engine_(engine), options_(options) {}

  // Begins a checkpoint of `total_params` parameters at `minibatch_id`,
  // sharded across `data_parallel` replicas. Returns the foreground stall
  // (local SSD write of the largest shard); the cloud upload completes later
  // and is tracked internally.
  double BeginCheckpoint(int64_t minibatch_id, double total_params, int data_parallel);

  // Latest mini-batch whose checkpoint has fully reached cloud storage
  // (-1 if none). Local-only checkpoints are usable too unless a VM holding a
  // shard was lost; the caller tells us via `local_shards_lost`.
  int64_t LatestRestorable(bool local_shards_lost) const;

  // Time to restore the given checkpoint onto a new configuration.
  double RestoreDuration(double total_params, int data_parallel) const;

  int64_t latest_local() const { return latest_local_; }
  int64_t latest_cloud() const { return latest_cloud_; }
  int checkpoints_written() const { return checkpoints_written_; }

 private:
  SimEngine* engine_;
  CheckpointOptions options_;
  int64_t latest_local_ = -1;
  int64_t latest_cloud_ = -1;
  int checkpoints_written_ = 0;
};

}  // namespace varuna

#endif  // SRC_MANAGER_CHECKPOINT_H_
