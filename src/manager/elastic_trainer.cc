#include "src/manager/elastic_trainer.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/pipeline/stage_timing.h"

namespace varuna {

ElasticTrainer::ElasticTrainer(SimEngine* engine, Cluster* cluster, SpotMarket* market,
                               int market_pool, const VmType& vm_type,
                               const TransformerSpec& spec, TrainerOptions options)
    : engine_(engine),
      cluster_(cluster),
      market_(market),
      market_pool_(market_pool),
      vm_type_(vm_type),
      spec_(spec),
      options_(options),
      rng_(options.seed),
      graph_(BuildTransformerOpGraph(spec)),
      sections_(IdentifyCutPoints(graph_, spec.num_layers).value()),
      checkpoints_(engine, options.checkpoint) {
  const TraceReport trace = TraceCrossPartitionState(graph_, sections_, TraceOptions());
  shared_sync_bytes_ = trace.TotalSyncBytes();
  if (options_.budget.gpu_memory_bytes <= 0.0) {
    options_.budget.gpu_memory_bytes = vm_type.gpu.memory_bytes;
  }
}

void ElasticTrainer::Start() {
  market_->set_grant_handler(
      [this](SpotMarket::MarketVmId id, const VmType& type) { OnVmGranted(id, type); });
  market_->set_preempt_handler([this](SpotMarket::MarketVmId id) { OnVmPreempted(id); });
  market_->SetDemand(market_pool_, options_.demand_vms);
  stall_started_ = engine_->now();
  engine_->Schedule(options_.provision_check_interval_s, [this] { ProvisionTick(); });
}

int ElasticTrainer::AvailableGpus() const {
  int count = 0;
  for (const GpuId gpu : cluster_->ActiveGpus()) {
    if (std::find(blacklist_.begin(), blacklist_.end(), gpu) == blacklist_.end()) {
      ++count;
    }
  }
  return count;
}

void ElasticTrainer::OnVmGranted(SpotMarket::MarketVmId id, const VmType& type) {
  market_to_vm_[id] = cluster_->AddVm(type);
  if (!running_) {
    TryBootstrap();
  }
}

void ElasticTrainer::OnVmPreempted(SpotMarket::MarketVmId id) {
  const auto it = market_to_vm_.find(id);
  if (it == market_to_vm_.end()) {
    return;
  }
  const VmId vm = it->second;
  market_to_vm_.erase(it);
  cluster_->Preempt(vm);

  if (!running_ || !placement_.has_value()) {
    return;
  }
  // Did the preempted VM host part of the job? The manager notices via the
  // missing heartbeat (one timeout interval later), which naturally coalesces
  // a burst of evictions into a single restore + morph.
  for (const GpuId gpu : placement_->AllGpus()) {
    if (cluster_->VmOfGpu(gpu) == vm) {
      ++stats_.preemptions_hit;
      running_ = false;
      minibatch_in_flight_ = false;
      ++epoch_;
      if (stall_started_ < 0.0) {
        stall_started_ = engine_->now();
      }
      if (!preemption_morph_pending_) {
        preemption_morph_pending_ = true;
        engine_->Schedule(30.0, [this] { DeferredPreemptionMorph(); });
      }
      return;
    }
  }
}

void ElasticTrainer::DeferredPreemptionMorph() {
  preemption_morph_pending_ = false;
  if (running_) {
    return;  // Something else already reconfigured.
  }
  // Progress after the last restorable checkpoint is lost (local shards died
  // with the evicted VMs).
  const int64_t restorable = checkpoints_.LatestRestorable(/*local_shards_lost=*/true);
  const int64_t lost =
      std::max<int64_t>(0, stats_.minibatches_done - std::max<int64_t>(restorable, 0));
  stats_.minibatches_done -= lost;
  stats_.examples_processed -= static_cast<double>(lost) * options_.total_batch;
  Reconfigure("morph", /*lost_state=*/true);
}

void ElasticTrainer::TryBootstrap() {
  if (calibration_.has_value()) {
    Reconfigure("configure", /*lost_state=*/false);
    return;
  }
  if (cluster_->NumActiveGpus() < 4) {
    return;  // Wait for enough capacity to calibrate.
  }
  Rng calibration_rng = rng_.Fork();
  Result<Calibration> calibration =
      Calibrate(sections_, *cluster_, options_.calibration, &calibration_rng);
  if (!calibration.ok()) {
    return;
  }
  calibration_ = std::move(calibration).value();
  if (options_.search_threads > 1 && !search_pool_) {
    search_pool_ = std::make_unique<ThreadPool>(options_.search_threads);
  }
  search_ = std::make_unique<ConfigSearch>(&spec_, &sections_, &calibration_.value(),
                                           search_pool_.get());
  Reconfigure("configure", /*lost_state=*/false);
}

void ElasticTrainer::Reconfigure(const std::string& event_kind, bool lost_state) {
  if (!search_) {
    TryBootstrap();
    return;
  }
  SearchConstraints constraints;
  constraints.total_batch = options_.total_batch;
  constraints.budget = options_.budget;
  constraints.gpus_per_node = vm_type_.node.num_gpus;
  constraints.shared_sync_bytes = shared_sync_bytes_;
  constraints.cpu_offload_optimizer = options_.cpu_offload_optimizer;

  const Result<JobConfig> best = search_->Best(AvailableGpus(), constraints);
  SyncSearchStats();
  if (!best.ok()) {
    // Not enough capacity for any configuration: stay stalled; ProvisionTick
    // and future grants will retry.
    running_ = false;
    return;
  }
  Result<Placement> placement =
      PlaceJob(*cluster_, best.value().pipeline_depth, best.value().data_parallel, blacklist_);
  if (!placement.ok()) {
    running_ = false;
    return;
  }

  ++epoch_;
  last_growth_check_gpus_ = AvailableGpus();
  config_ = best.value();
  placement_ = std::move(placement).value();
  partition_ = PartitionModel(sections_, config_->pipeline_depth).value();
  cached_minibatch_s_ = 0.0;  // Force re-measurement.
  cached_slow_factors_.clear();

  double restore_delay = 0.0;
  if (lost_state || stats_.minibatches_done > 0) {
    // Planned morphs checkpoint first, then every morph restores state.
    restore_delay =
        checkpoints_.RestoreDuration(spec_.TotalParams(), config_->data_parallel);
  }
  if (stall_started_ >= 0.0) {
    stats_.stalled_s += engine_->now() - stall_started_;
    stall_started_ = -1.0;
  }
  stats_.stalled_s += restore_delay;
  ++stats_.morphs;
  running_ = true;
  RecordEvent(event_kind);
  ScheduleNextMinibatch(restore_delay);
}

double ElasticTrainer::MeasuredMinibatchSeconds() {
  std::vector<double> slow_factors;
  for (const GpuId gpu : placement_->AllGpus()) {
    slow_factors.push_back(cluster_->SlowFactor(gpu));
  }
  if (cached_minibatch_s_ > 0.0 && slow_factors == cached_slow_factors_) {
    return cached_minibatch_s_;
  }
  // The sweep already generated+validated this shape; the cache hands it back.
  const Schedule& schedule = search_->schedule_cache()->Get(
      ScheduleKind::kVaruna, config_->pipeline_depth, config_->num_microbatches);
  const std::vector<StageTiming> timings = ComputeStageTimings(
      sections_, partition_.value(), vm_type_.gpu, config_->microbatch_size);
  ExecutorOptions exec_options;
  exec_options.shared_state_sync_bytes = shared_sync_bytes_;
  exec_options.cpu_offload_optimizer = options_.cpu_offload_optimizer;
  if (options_.cpu_offload_optimizer) {
    exec_options.cpu_offload_bytes_per_stage =
        12.0 * spec_.TotalParams() / config_->pipeline_depth;
  }
  PipelineExecutor executor(cluster_, &rng_);
  const MinibatchResult result = executor.Run(schedule, placement_.value(), timings,
                                              config_->microbatch_size, exec_options);
  cached_minibatch_s_ = result.total_time_s;
  cached_slow_factors_ = std::move(slow_factors);
  return cached_minibatch_s_;
}

void ElasticTrainer::ScheduleNextMinibatch(double extra_delay) {
  if (!running_ || minibatch_in_flight_) {
    return;
  }
  double duration = MeasuredMinibatchSeconds();
  if (options_.minibatch_noise_sigma > 0.0) {
    duration = rng_.LogNormalMedian(duration, options_.minibatch_noise_sigma);
  }
  bool checkpointing = false;
  if (stats_.minibatches_done - last_checkpointed_minibatch_ >=
      options_.checkpoint_every_minibatches) {
    duration += checkpoints_.BeginCheckpoint(stats_.minibatches_done, spec_.TotalParams(),
                                             config_->data_parallel);
    last_checkpointed_minibatch_ = stats_.minibatches_done;
    ++stats_.checkpoints;
    checkpointing = true;
  }
  minibatch_in_flight_ = true;
  RecordSample(config_->ActualBatch() / duration, checkpointing);
  engine_->Schedule(extra_delay + duration,
                    [this, epoch = epoch_] { OnMinibatchDone(epoch); });
}

void ElasticTrainer::OnMinibatchDone(int64_t epoch) {
  if (epoch != epoch_) {
    return;  // A reconfiguration superseded this mini-batch while in flight.
  }
  minibatch_in_flight_ = false;
  if (!running_) {
    return;
  }
  ++stats_.minibatches_done;
  stats_.examples_processed += config_->ActualBatch();
  ProcessHeartbeats();
  if (epoch != epoch_ || !running_) {
    return;  // Heartbeat processing replaced the configuration.
  }
  ScheduleNextMinibatch(0.0);
}

void ElasticTrainer::ProcessHeartbeats() {
  // Each task reports its per-micro-batch compute time; with identical
  // stages+replicas, outliers against the median expose fail-stutter VMs.
  if (!running_ || !placement_.has_value()) {
    return;
  }
  std::vector<double> heartbeat_times;
  std::vector<GpuId> gpus = placement_->AllGpus();
  for (const GpuId gpu : gpus) {
    heartbeat_times.push_back(cluster_->SlowFactor(gpu) *
                              rng_.LogNormalMedian(1.0, 0.01));
  }
  const double median = Percentile(heartbeat_times, 0.5);
  std::vector<GpuId> stutterers;
  for (size_t i = 0; i < gpus.size(); ++i) {
    if (heartbeat_times[i] > options_.stutter_threshold * median) {
      stutterers.push_back(gpus[i]);
    }
  }
  if (stutterers.empty()) {
    return;
  }
  // Omit the slow VMs' GPUs from future placements and re-place.
  for (const GpuId gpu : stutterers) {
    const VmId vm = cluster_->VmOfGpu(gpu);
    for (const GpuId sibling : cluster_->ActiveGpus()) {
      if (cluster_->VmOfGpu(sibling) == vm &&
          std::find(blacklist_.begin(), blacklist_.end(), sibling) == blacklist_.end()) {
        blacklist_.push_back(sibling);
      }
    }
  }
  stats_.stutters_detected += static_cast<int>(stutterers.size());
  running_ = false;
  minibatch_in_flight_ = false;
  ++epoch_;
  stall_started_ = engine_->now();
  Reconfigure("replace", /*lost_state=*/false);
}

void ElasticTrainer::ProvisionTick() {
  engine_->Schedule(options_.provision_check_interval_s, [this] { ProvisionTick(); });
  // Heal the blacklist: VMs recover from stutter episodes; give them another
  // chance if they are no longer slow.
  std::erase_if(blacklist_, [this](GpuId gpu) { return cluster_->SlowFactor(gpu) == 1.0; });

  if (!running_) {
    TryBootstrap();
    if (!running_ && search_) {
      Reconfigure("configure", stats_.minibatches_done > 0);
    }
    return;
  }
  // Growth: if spare capacity admits a materially better configuration,
  // checkpoint and morph into it. The sweep only reruns when availability
  // moved materially since the last evaluation.
  const int available = AvailableGpus();
  if (std::abs(available - last_growth_check_gpus_) <
      std::max(4, last_growth_check_gpus_ / 12)) {
    return;
  }
  last_growth_check_gpus_ = available;
  SearchConstraints constraints;
  constraints.total_batch = options_.total_batch;
  constraints.budget = options_.budget;
  constraints.gpus_per_node = vm_type_.node.num_gpus;
  constraints.shared_sync_bytes = shared_sync_bytes_;
  constraints.cpu_offload_optimizer = options_.cpu_offload_optimizer;
  const Result<JobConfig> best = search_->Best(AvailableGpus(), constraints);
  SyncSearchStats();
  if (!best.ok()) {
    return;
  }
  const double current_rate = config_->ActualBatch() / std::max(1e-9, cached_minibatch_s_);
  if (best.value().est_examples_per_s >
          (1.0 + options_.morph_improvement_threshold) * current_rate &&
      (best.value().pipeline_depth != config_->pipeline_depth ||
       best.value().data_parallel != config_->data_parallel)) {
    running_ = false;
    minibatch_in_flight_ = false;
    ++epoch_;
    stall_started_ = engine_->now();
    Reconfigure("morph", /*lost_state=*/false);
  }
}

void ElasticTrainer::RecordSample(double examples_per_s, bool checkpointing) {
  TimelineSample sample;
  sample.time_s = engine_->now();
  sample.examples_per_s = examples_per_s;
  sample.pipeline_depth = config_.has_value() ? config_->pipeline_depth : 0;
  sample.data_parallel = config_.has_value() ? config_->data_parallel : 0;
  sample.gpus_in_use = config_.has_value() ? config_->gpus_used : 0;
  sample.examples_per_s_per_gpu =
      sample.gpus_in_use > 0 ? examples_per_s / sample.gpus_in_use : 0.0;
  sample.gpus_available = cluster_->NumActiveGpus();
  sample.checkpointing = checkpointing;
  stats_.samples.push_back(sample);
}

void ElasticTrainer::SyncSearchStats() {
  const ConfigSearchStats stats = search_->stats();
  stats_.sweep_cache_hits = stats.sweep_cache_hits;
  stats_.sweep_cache_misses = stats.sweep_cache_misses;
}

void ElasticTrainer::RecordEvent(const std::string& kind) {
  TimelineEvent event;
  event.time_s = engine_->now();
  event.kind = kind;
  event.pipeline_depth = config_.has_value() ? config_->pipeline_depth : 0;
  event.data_parallel = config_.has_value() ? config_->data_parallel : 0;
  event.gpus_available = cluster_->NumActiveGpus();
  stats_.events.push_back(event);
}

}  // namespace varuna
