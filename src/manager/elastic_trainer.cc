#include "src/manager/elastic_trainer.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/pipeline/stage_timing.h"

namespace varuna {

ElasticTrainer::ElasticTrainer(SimEngine* engine, Cluster* cluster, SpotMarket* market,
                               int market_pool, const VmType& vm_type,
                               const TransformerSpec& spec, TrainerOptions options)
    : engine_(engine),
      cluster_(cluster),
      market_(market),
      market_pool_(market_pool),
      vm_type_(vm_type),
      spec_(spec),
      options_(options),
      rng_(options.seed),
      executor_(cluster, &rng_),
      graph_(BuildTransformerOpGraph(spec)),
      sections_(IdentifyCutPoints(graph_, spec.num_layers).value()),
      checkpoints_(engine, options.checkpoint, cluster),
      predictor_(options.predictor) {
  const TraceReport trace = TraceCrossPartitionState(graph_, sections_, TraceOptions());
  shared_sync_bytes_ = trace.TotalSyncBytes();
  if (options_.budget.gpu_memory_bytes <= 0.0) {
    options_.budget.gpu_memory_bytes = vm_type.gpu.memory_bytes;
  }
  predictor_.SetDemandHint(options_.demand_vms);
  if (options_.morph_policy == MorphPolicy::kOracleProactive) {
    // Upper-bound mode: the predictor is handed the pool's true hazard (the
    // one thing the online estimator has to learn) plus any storm forecasts
    // the chaos scripts feed through ForecastStorm().
    predictor_.EnableOracle(market_->PoolDynamics(market_pool_).preemption_hazard);
  }
}

void ElasticTrainer::Start() {
  // The availability estimator taps the market's announced grant/preemption
  // stream through passive observers — it sees the whole pool, not just the
  // placement, and never the market's hidden dynamics. Observers draw no
  // randomness and schedule no events, so feeding the predictor leaves the
  // reactive decision sequence bit-identical.
  market_->AddGrantObserver(
      [this](int pool, SpotMarket::MarketVmId /*id*/, const VmType& /*type*/) {
        if (pool == market_pool_) {
          predictor_.ObserveGrant(engine_->now());
          stats_.predictor_updates = predictor_.updates();
        }
      });
  market_->AddPreemptObserver([this](int pool, SpotMarket::MarketVmId /*id*/) {
    if (pool == market_pool_) {
      predictor_.ObservePreemption(engine_->now());
      stats_.predictor_updates = predictor_.updates();
    }
  });
  market_->set_grant_handler(
      [this](SpotMarket::MarketVmId id, const VmType& type) { OnVmGranted(id, type); });
  market_->set_preempt_handler([this](SpotMarket::MarketVmId id) { OnVmPreempted(id); });
  // Physical-layer bookkeeping for *every* VM death, announced or not: local
  // checkpoint shards die with their VM. The control path deliberately does
  // not hang off this observer — unannounced deaths must be discovered
  // through missed heartbeats, which is the recovery path under test.
  cluster_->AddPreemptionObserver([this](VmId vm) {
    checkpoints_.OnVmLost(vm);
    stats_.shards_lost = checkpoints_.shards_lost();
  });
  market_->SetDemand(market_pool_, options_.demand_vms);
  stall_started_ = engine_->now();
  engine_->Schedule(options_.provision_check_interval_s, [this] { ProvisionTick(); });
}

int ElasticTrainer::AvailableGpus() const {
  int count = 0;
  for (const GpuId gpu : cluster_->ActiveGpus()) {
    if (std::find(blacklist_.begin(), blacklist_.end(), gpu) == blacklist_.end()) {
      ++count;
    }
  }
  return count;
}

void ElasticTrainer::OnVmGranted(SpotMarket::MarketVmId id, const VmType& type) {
  market_to_vm_[id] = cluster_->AddVm(type);
  if (!running_) {
    TryBootstrap();
  }
}

void ElasticTrainer::OnVmPreempted(SpotMarket::MarketVmId id) {
  const auto it = market_to_vm_.find(id);
  if (it == market_to_vm_.end()) {
    return;
  }
  const VmId vm = it->second;
  market_to_vm_.erase(it);
  cluster_->Preempt(vm);

  if (!running_ || !placement_.has_value()) {
    return;
  }
  // Did the preempted VM host part of the job? The manager notices via the
  // missing heartbeat (one timeout interval later), which naturally coalesces
  // a burst of evictions into a single restore + morph.
  for (const GpuId gpu : placement_->AllGpus()) {
    if (cluster_->VmOfGpu(gpu) == vm) {
      ++stats_.preemptions_hit;
      ++unsurvived_preemptions_;
      if (restore_in_flight_) {
        // The restore window itself was killed; the coming morph is a retry.
        ++stats_.morph_retries;
        ++consecutive_recovery_failures_;
      }
      running_ = false;
      minibatch_in_flight_ = false;
      ++epoch_;
      if (stall_started_ < 0.0) {
        stall_started_ = engine_->now();
      }
      if (!preemption_morph_pending_) {
        preemption_morph_pending_ = true;
        // Within the retry budget, re-morph quickly; past it, assume the
        // market is churning faster than we can restore and back off.
        const double delay = consecutive_recovery_failures_ >= options_.max_morph_attempts
                                 ? BackoffDelay()
                                 : 30.0;
        engine_->Schedule(delay, [this] { DeferredPreemptionMorph(); });
      }
      return;
    }
  }
}

void ElasticTrainer::DeferredPreemptionMorph() {
  preemption_morph_pending_ = false;
  if (running_) {
    return;  // Something else already reconfigured.
  }
  RollbackToCheckpoint();
  Reconfigure("morph", /*lost_state=*/true);
}

int64_t ElasticTrainer::RollbackToCheckpoint() {
  // Per-shard tracking makes LatestUsable() the true resume frontier: shards
  // whose owners died mid-flush were already demoted by OnVmLost, so this
  // falls back to the newest checkpoint with no holes.
  const int64_t restorable = checkpoints_.LatestUsable();
  const int64_t target = std::max<int64_t>(restorable, 0);
  const int64_t lost = std::max<int64_t>(0, stats_.minibatches_done - target);
  ++stats_.restarts;
  stats_.last_restore_step = restorable;
  stats_.shards_lost = checkpoints_.shards_lost();
  if (lost > 0) {
    // Refund exactly what each lost mini-batch committed (ActualBatch varies
    // across morphs, so a flat total_batch refund would leak examples).
    double lost_examples = 0.0;
    while (!committed_ledger_.empty() && committed_ledger_.back().first >= target) {
      lost_examples += committed_ledger_.back().second;
      committed_ledger_.pop_back();
    }
    stats_.minibatches_done -= lost;
    stats_.minibatches_rolled_back += lost;
    stats_.max_rollback_minibatches = std::max(stats_.max_rollback_minibatches, lost);
    stats_.examples_processed -= lost_examples;
    stats_.examples_rolled_back += lost_examples;
  }
  // The next checkpoint must re-cover everything after the restore point.
  last_checkpointed_minibatch_ = std::min(last_checkpointed_minibatch_, restorable);
  return restorable;
}

void ElasticTrainer::TryBootstrap() {
  if (calibration_.has_value()) {
    Reconfigure("configure", /*lost_state=*/false);
    return;
  }
  if (cluster_->NumActiveGpus() < 4) {
    return;  // Wait for enough capacity to calibrate.
  }
  Rng calibration_rng = rng_.Fork();
  Result<Calibration> calibration =
      Calibrate(sections_, *cluster_, options_.calibration, &calibration_rng);
  if (!calibration.ok()) {
    return;
  }
  calibration_ = std::move(calibration).value();
  if (options_.search_threads > 1 && !search_pool_) {
    search_pool_ = std::make_unique<ThreadPool>(options_.search_threads);
  }
  search_ = std::make_unique<ConfigSearch>(&spec_, &sections_, &calibration_.value(),
                                           search_pool_.get());
  Reconfigure("configure", /*lost_state=*/false);
}

SearchConstraints ElasticTrainer::MakeConstraints(bool degraded) const {
  SearchConstraints constraints;
  constraints.total_batch = options_.total_batch;
  constraints.budget = options_.budget;
  constraints.gpus_per_node = vm_type_.node.num_gpus;
  constraints.shared_sync_bytes = shared_sync_bytes_;
  // Degraded mode forces the CPU-offload memory model: slower steps, but the
  // smaller per-GPU footprint lets shallower pipelines fit when capacity has
  // collapsed below what the normal model can place.
  constraints.cpu_offload_optimizer = options_.cpu_offload_optimizer || degraded;
  if (ProactiveEngaged()) {
    // Fold the predictor state into the memo context (stale hits against an
    // older predictor become structurally impossible), and sweep unpruned:
    // bound pruning keeps only candidates that can win on *time*, which would
    // hide the slow-but-small configs the liveput argmax may prefer.
    constraints.predictor_fingerprint = predictor_.Fingerprint();
    // The liveput rescoring consumes the recovery cost model; folding its
    // structural fingerprint makes stale hits against an older restore
    // pricing (new chain, premigrated records, changed survivors)
    // structurally impossible, mirroring the predictor fold above.
    constraints.recovery_fingerprint = checkpoints_.RestoreContextFingerprint();
    constraints.prune = false;
  }
  return constraints;
}

int ElasticTrainer::PlacementVmsUsed() const {
  if (!config_.has_value()) {
    return 0;
  }
  const int gpus_per_vm = std::max(1, vm_type_.node.num_gpus);
  return (config_->gpus_used + gpus_per_vm - 1) / gpus_per_vm;
}

double ElasticTrainer::EstimatedRestoreSeconds(int data_parallel) const {
  // An involuntary hit restores onto roughly the current placement minus the
  // dead VM: everyone else is warm and keeps their SSD shards.
  const std::vector<VmId> vms = PlacementVms();
  const int warm = std::max(0, static_cast<int>(vms.size()) - 1);
  return checkpoints_.RestoreSeconds(checkpoints_.LatestUsable(), spec_.TotalParams(),
                                     data_parallel, vms, warm);
}

double ElasticTrainer::RecoveryCostS() const {
  double cost = 0.0;
  if (config_.has_value()) {
    cost += EstimatedRestoreSeconds(config_->data_parallel);
  }
  if (cached_minibatch_s_ > 0.0) {
    cost += 0.5 * static_cast<double>(options_.checkpoint_every_minibatches) *
            cached_minibatch_s_;
  }
  return cost;
}

double ElasticTrainer::EstimatedHandoffSeconds(const JobConfig& config) const {
  const CheckpointOptions& ckpt = options_.checkpoint;
  const int gpus_per_vm = std::max(1, vm_type_.node.num_gpus);
  const int needed = std::max(1, (config.gpus_used + gpus_per_vm - 1) / gpus_per_vm);
  const int cold = std::max(0, needed - PlacementVmsUsed());
  const double cold_fraction = static_cast<double>(cold) / static_cast<double>(needed);
  const double setup =
      ckpt.warm_restore_setup_s +
      (ckpt.restore_setup_s - ckpt.warm_restore_setup_s) * cold_fraction;
  if (cold == 0 || !placement_.has_value()) {
    return setup;  // Pure repack: state reshuffles in place during rebuild.
  }
  // The cold VMs' share of the live state moves in `cold` parallel streams;
  // price one representative cross-node flow (the real flows are priced in
  // BeginLiveHandoff once PlaceJob names the incoming VMs).
  const GpuId src = placement_->AllGpus().front();
  GpuId dst = src;
  for (const GpuId gpu : cluster_->ActiveGpus()) {
    if (!cluster_->topology().SameNode(gpu, src)) {
      dst = gpu;
      break;
    }
  }
  const double total_bytes =
      kCheckpointBytesPerParam * spec_.TotalParams() * cold_fraction;
  const double per_stream_bytes = total_bytes / static_cast<double>(cold);
  const double transfer =
      cluster_->network().MeanTransferTime(src, dst, per_stream_bytes, cold);
  return std::max(setup, transfer);
}

double ElasticTrainer::BeginLiveHandoff(const std::vector<VmId>& outgoing,
                                        const std::vector<VmId>& incoming) {
  ++stats_.live_handoffs;
  const CheckpointOptions& ckpt = options_.checkpoint;
  std::vector<VmId> cold;
  for (const VmId vm : incoming) {
    if (!std::binary_search(outgoing.begin(), outgoing.end(), vm)) {
      cold.push_back(vm);
    }
  }
  const double incoming_count = static_cast<double>(std::max<size_t>(1, incoming.size()));
  const double setup =
      ckpt.warm_restore_setup_s +
      (ckpt.restore_setup_s - ckpt.warm_restore_setup_s) *
          static_cast<double>(cold.size()) / incoming_count;
  if (cold.empty()) {
    return setup;  // Same VM set, new shape: state reshuffles locally.
  }
  // The cold VMs' share of the state streams from the outgoing placement,
  // one flow per cold VM, all concurrent, overlapped with the process-group
  // rebuild of the warm survivors.
  const double total_bytes = kCheckpointBytesPerParam * spec_.TotalParams() *
                             static_cast<double>(cold.size()) / incoming_count;
  const double per_stream_bytes = total_bytes / static_cast<double>(cold.size());
  std::vector<std::pair<GpuId, GpuId>> flows;
  flows.reserve(cold.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    const VmId src_vm = outgoing[i % outgoing.size()];
    flows.emplace_back(
        cluster_->topology().GpusOfNode(cluster_->Vm(src_vm).node).front(),
        cluster_->topology().GpusOfNode(cluster_->Vm(cold[i]).node).front());
  }
  const double transfer =
      cluster_->network().MeanParallelTransferTime(flows, per_stream_bytes);
  // One completion event per stream: the bytes land when the transfer does;
  // a morph that supersedes this one (epoch moved on) aborts the transfer
  // and lands nothing.
  const int concurrent = static_cast<int>(flows.size());
  for (const auto& [src, dst] : flows) {
    const double stream_s =
        cluster_->network().MeanTransferTime(src, dst, per_stream_bytes, concurrent);
    engine_->Schedule(stream_s, [this, epoch = epoch_, per_stream_bytes] {
      if (epoch == epoch_) {
        stats_.handoff_bytes += per_stream_bytes;
      }
    });
  }
  return std::max(setup, transfer);
}

Result<JobConfig> ElasticTrainer::ChooseConfig(int gpus, const SearchConstraints& constraints) {
  if (!ProactiveEngaged()) {
    return search_->Best(gpus, constraints);
  }
  const Result<std::vector<JobConfig>> sweep = search_->Sweep(gpus, constraints);
  if (!sweep.ok()) {
    return Result<JobConfig>::Error(sweep.error());
  }
  if (sweep.value().empty()) {
    return Result<JobConfig>::Error("no feasible configuration");
  }
  const LiveputObjective objective(&predictor_, options_.liveput_horizon_s,
                                   std::max(1, vm_type_.node.num_gpus), RecoveryCostS());
  const JobConfig* liveput_best = objective.BestLiveput(sweep.value());
  // Throughput argmax with the same tie-break (strict >, earliest (P, m)
  // wins) — what Best() would have picked.
  const JobConfig* throughput_best = &sweep.value().front();
  for (const JobConfig& config : sweep.value()) {
    if (config.est_examples_per_s > throughput_best->est_examples_per_s) {
      throughput_best = &config;
    }
  }
  if (!(*liveput_best == *throughput_best)) {
    ++stats_.liveput_wins;
  }
  return *liveput_best;
}

bool ElasticTrainer::EvaluateProactiveMorph(int available_gpus) {
  const Result<std::vector<JobConfig>> sweep =
      search_->Sweep(available_gpus, MakeConstraints(degraded_));
  SyncSearchStats();
  if (!sweep.ok() || sweep.value().empty()) {
    return false;
  }
  const LiveputObjective objective(&predictor_, options_.liveput_horizon_s,
                                   std::max(1, vm_type_.node.num_gpus), RecoveryCostS());
  const JobConfig* best = objective.BestLiveput(sweep.value());
  if (best->pipeline_depth == config_->pipeline_depth &&
      best->data_parallel == config_->data_parallel) {
    return false;
  }
  // Score the incumbent with its *measured* rate (what we would actually keep
  // earning) and the candidate with its estimate; both survival-weighted.
  const double current_rate = config_->ActualBatch() / std::max(1e-9, cached_minibatch_s_);
  const double current_score = objective.Score(
      current_rate, predictor_.PlacementSurvival(PlacementVmsUsed(), options_.liveput_horizon_s));
  const double best_score = objective.Score(*best);
  if (best_score <= (1.0 + options_.liveput_gain_threshold) * current_score) {
    return false;
  }
  // Cost model: the examples the liveput gain buys over the horizon must pay
  // for the examples forgone during the morph stall — the live handoff when
  // enabled (a voluntary morph moves state peer-to-peer), the record-aware
  // checkpoint restore otherwise.
  const double restore_s = options_.checkpoint.live_handoff
                               ? EstimatedHandoffSeconds(*best)
                               : EstimatedRestoreSeconds(best->data_parallel);
  if ((best_score - current_score) * options_.liveput_horizon_s <=
      current_rate * restore_s) {
    return false;
  }
  ++stats_.proactive_morphs;
  running_ = false;
  minibatch_in_flight_ = false;
  ++epoch_;
  stall_started_ = engine_->now();
  Reconfigure("proactive-morph", /*lost_state=*/false);
  return true;
}

void ElasticTrainer::ForecastStorm(double at_s, int vms) {
  if (options_.morph_policy != MorphPolicy::kOracleProactive) {
    return;  // The online predictor must learn from the observed stream.
  }
  predictor_.ForecastStorm(at_s, vms);
}

void ElasticTrainer::Reconfigure(const std::string& event_kind, bool lost_state) {
  if (!search_) {
    TryBootstrap();
    if (!search_) {
      ScheduleReprovisionRetry();  // Not even enough capacity to calibrate.
    }
    return;
  }
  const int gpus = AvailableGpus();
  const bool was_degraded = degraded_;
  // Outgoing placement, captured before a successful attempt() overwrites it:
  // the live-handoff path sources state from these VMs.
  const std::vector<VmId> outgoing_vms = PlacementVms();

  const auto attempt = [&](bool degraded) {
    const Result<JobConfig> best = ChooseConfig(gpus, MakeConstraints(degraded));
    SyncSearchStats();
    if (!best.ok()) {
      return false;
    }
    Result<Placement> placement = PlaceJob(*cluster_, best.value().pipeline_depth,
                                           best.value().data_parallel, blacklist_);
    if (!placement.ok()) {
      return false;
    }
    config_ = best.value();
    placement_ = std::move(placement).value();
    return true;
  };

  bool configured = attempt(/*degraded=*/false);
  if (configured) {
    degraded_ = false;
  } else if (options_.allow_degraded_mode) {
    configured = attempt(/*degraded=*/true);
    if (configured && !was_degraded) {
      degraded_ = true;
      ++stats_.degraded_intervals;
    } else if (configured) {
      degraded_ = true;
    }
  }
  if (!configured) {
    // Not enough capacity for any configuration, even degraded: stay stalled
    // and retry with backoff (grants and ProvisionTick also retry).
    running_ = false;
    ++consecutive_recovery_failures_;
    ScheduleReprovisionRetry();
    return;
  }

  ++epoch_;
  last_growth_check_gpus_ = gpus;
  partition_ = PartitionModel(sections_, config_->pipeline_depth).value();
  cached_minibatch_s_ = 0.0;  // Force re-measurement.
  cached_slow_factors_.clear();

  double restore_delay = 0.0;
  if (lost_state || stats_.minibatches_done > 0) {
    const std::vector<VmId> incoming_vms = PlacementVms();
    const bool outgoing_intact =
        !outgoing_vms.empty() &&
        std::all_of(outgoing_vms.begin(), outgoing_vms.end(),
                    [this](VmId vm) { return cluster_->IsActive(vm); });
    if (!lost_state && options_.checkpoint.live_handoff &&
        stats_.minibatches_done > 0 && outgoing_intact) {
      // Voluntary morph with the outgoing placement still alive: hand the
      // live state over peer-to-peer instead of a checkpoint round trip.
      restore_delay = BeginLiveHandoff(outgoing_vms, incoming_vms);
    } else {
      // Involuntary (or handoff-ineligible) morph restores from the newest
      // usable checkpoint chain; VMs carried across the morph count as warm.
      int warm_vms = 0;
      for (const VmId vm : incoming_vms) {
        if (std::binary_search(outgoing_vms.begin(), outgoing_vms.end(), vm)) {
          ++warm_vms;
        }
      }
      RestoreBreakdown breakdown;
      restore_delay = checkpoints_.RestoreSeconds(
          checkpoints_.LatestUsable(), spec_.TotalParams(), config_->data_parallel,
          incoming_vms, warm_vms, &breakdown);
      stats_.restore_chain_records += breakdown.chain_records;
      stats_.restore_setup_s += breakdown.setup_s;
      stats_.restore_ssd_s += breakdown.ssd_s;
      stats_.restore_peer_s += breakdown.peer_s;
      stats_.restore_cloud_s += breakdown.cloud_s;
      stats_.restore_shards_ssd += breakdown.shards_ssd;
      stats_.restore_shards_peer += breakdown.shards_peer;
      stats_.restore_shards_cloud += breakdown.shards_cloud;
      stats_.restore_shards_premigrated += breakdown.shards_premigrated;
    }
  }
  if (stall_started_ >= 0.0) {
    stats_.stalled_s += engine_->now() - stall_started_;
    stall_started_ = -1.0;
  }
  stats_.stalled_s += restore_delay;
  ++stats_.morphs;
  running_ = true;
  restore_in_flight_ = true;
  if (was_degraded && !degraded_) {
    RecordEvent("recover");
  } else if (!was_degraded && degraded_) {
    RecordEvent("degraded");
  }
  RecordEvent(event_kind);
  if (morph_observer_) {
    morph_observer_(event_kind, restore_delay);
  }
  ScheduleNextMinibatch(restore_delay);
}

double ElasticTrainer::BackoffDelay() {
  const int failures = std::min(consecutive_recovery_failures_, 16);
  const double delay = std::min(std::ldexp(options_.reprovision_backoff_base_s, failures),
                                options_.reprovision_backoff_max_s);
  // Seeded jitter decorrelates retry storms without breaking replayability.
  return delay * rng_.Uniform(0.75, 1.25);
}

void ElasticTrainer::ScheduleReprovisionRetry() {
  if (reprovision_retry_pending_) {
    return;
  }
  reprovision_retry_pending_ = true;
  ++stats_.reprovision_retries;
  engine_->Schedule(BackoffDelay(), [this] {
    reprovision_retry_pending_ = false;
    if (running_) {
      return;  // A grant or provision tick already recovered the job.
    }
    if (!search_) {
      TryBootstrap();
      if (!search_) {
        ScheduleReprovisionRetry();
      }
      return;
    }
    Reconfigure("configure", stats_.minibatches_done > 0);
  });
}

double ElasticTrainer::MeasuredMinibatchSeconds() {
  std::vector<double> slow_factors;
  bool placement_intact = true;
  for (const GpuId gpu : placement_->AllGpus()) {
    slow_factors.push_back(cluster_->SlowFactor(gpu));
    placement_intact = placement_intact && cluster_->GpuActive(gpu);
  }
  if (cached_minibatch_s_ > 0.0 && (slow_factors == cached_slow_factors_ || !placement_intact)) {
    // A dead VM in the placement means the job is limping toward a heartbeat
    // timeout; keep the cadence rather than re-measuring a broken pipeline.
    return cached_minibatch_s_;
  }
  // The sweep already generated+validated this shape; the cache hands it back.
  const Schedule& schedule = search_->schedule_cache()->Get(
      ScheduleKind::kVaruna, config_->pipeline_depth, config_->num_microbatches);
  const std::vector<StageTiming> timings = ComputeStageTimings(
      sections_, partition_.value(), vm_type_.gpu, config_->microbatch_size);
  ExecutorOptions exec_options;
  exec_options.shared_state_sync_bytes = shared_sync_bytes_;
  exec_options.cpu_offload_optimizer = OffloadActive();
  if (OffloadActive()) {
    exec_options.cpu_offload_bytes_per_stage =
        12.0 * spec_.TotalParams() / config_->pipeline_depth;
  }
  const MinibatchResult result = executor_.Run(schedule, placement_.value(), timings,
                                               config_->microbatch_size, exec_options);
  cached_minibatch_s_ = result.total_time_s;
  cached_slow_factors_ = std::move(slow_factors);
  // Snapshot the simulation-core counters (bench JSON reads them off stats()).
  stats_.executor_events = executor_.events_processed();
  stats_.executor_heap_fallbacks = executor_.callback_heap_fallbacks();
  stats_.executor_scratch_growths = executor_.scratch_growths();
  stats_.net_ring_cache_hits = cluster_->network().ring_cache_hits();
  stats_.net_ring_cache_misses = cluster_->network().ring_cache_misses();
  return cached_minibatch_s_;
}

void ElasticTrainer::ScheduleNextMinibatch(double extra_delay) {
  if (!running_ || minibatch_in_flight_) {
    return;
  }
  double duration = MeasuredMinibatchSeconds();
  if (options_.minibatch_noise_sigma > 0.0) {
    duration = rng_.LogNormalMedian(duration, options_.minibatch_noise_sigma);
  }
  bool checkpointing = false;
  bool checkpoint_due = stats_.minibatches_done - last_checkpointed_minibatch_ >=
                        options_.checkpoint_every_minibatches;
  bool premigration = false;
  if (!checkpoint_due && ProactiveEngaged() &&
      stats_.minibatches_done > last_checkpointed_minibatch_) {
    // Pre-migration (liveput policy) under a marginal cost model. This
    // decision recurs at every mini-batch boundary, so the comparison is
    // "checkpoint now" vs "defer one mini-batch": deferring risks a hit
    // *during the next mini-batch* destroying the uncovered tail plus that
    // mini-batch; checkpointing costs one foreground stall. The restore
    // stall is excluded on both sides — a hit pays it either way.
    const int64_t uncovered = stats_.minibatches_done - last_checkpointed_minibatch_;
    const double hit_probability =
        1.0 - predictor_.PlacementSurvival(PlacementVmsUsed(), duration);
    const double rework_s = static_cast<double>(uncovered + 1) * duration;
    // A pre-migration resets the cadence clock, replacing the upcoming
    // cadence checkpoint — so late in the window it is nearly free and only
    // the brought-forward fraction of the stall is a real extra cost.
    const int64_t cadence = std::max<int64_t>(1, options_.checkpoint_every_minibatches);
    const double stall_s = checkpoints_.CheckpointStallEstimate(spec_.TotalParams(),
                                                                config_->data_parallel) *
                           static_cast<double>(cadence - std::min(uncovered, cadence)) /
                           static_cast<double>(cadence);
    if (predictor_.ElevatedRisk(duration) &&
        hit_probability * rework_s > options_.premigrate_cost_ratio * stall_s) {
      checkpoint_due = true;
      premigration = true;
    }
  }
  if (checkpoint_due) {
    // Each data-parallel replica's stage-0 VM owns that replica's shard; the
    // store needs the owners to demote shards when their VM dies mid-flush.
    std::vector<VmId> shard_owners;
    shard_owners.reserve(static_cast<size_t>(config_->data_parallel));
    for (int replica = 0; replica < config_->data_parallel; ++replica) {
      shard_owners.push_back(cluster_->VmOfGpu(placement_->At(replica, 0)));
    }
    duration += checkpoints_.BeginCheckpoint(stats_.minibatches_done, spec_.TotalParams(),
                                             config_->data_parallel, shard_owners,
                                             premigration);
    last_checkpointed_minibatch_ = stats_.minibatches_done;
    ++stats_.checkpoints;
    stats_.delta_checkpoints = checkpoints_.delta_checkpoints_written();
    stats_.checkpoint_records_pruned = checkpoints_.records_pruned();
    checkpointing = true;
    if (premigration) {
      stats_.premigrated_shards += config_->data_parallel;
      // A premigrated delta record moves only the changed fraction.
      stats_.premigrated_bytes += checkpoints_.last_checkpoint_bytes();
    }
  }
  minibatch_in_flight_ = true;
  RecordSample(config_->ActualBatch() / duration, checkpointing);
  engine_->Schedule(extra_delay + duration,
                    [this, epoch = epoch_] { OnMinibatchDone(epoch); });
}

void ElasticTrainer::OnMinibatchDone(int64_t epoch) {
  if (epoch != epoch_) {
    return;  // A reconfiguration superseded this mini-batch while in flight.
  }
  minibatch_in_flight_ = false;
  if (!running_) {
    return;
  }
  const int64_t minibatch_id = stats_.minibatches_done;
  const double batch = config_->ActualBatch();
  ++stats_.minibatches_attempted;
  ++stats_.minibatches_done;
  stats_.examples_attempted += batch;
  stats_.examples_processed += batch;
  committed_ledger_.emplace_back(minibatch_id, batch);
  if (restore_in_flight_) {
    // First commit of the new configuration: the recovery stuck.
    restore_in_flight_ = false;
    consecutive_recovery_failures_ = 0;
  }
  if (unsurvived_preemptions_ > 0) {
    stats_.preemptions_survived += unsurvived_preemptions_;
    unsurvived_preemptions_ = 0;
  }
  ProcessHeartbeats();
  if (epoch != epoch_ || !running_) {
    return;  // Heartbeat processing replaced the configuration.
  }
  ScheduleNextMinibatch(0.0);
}

bool ElasticTrainer::HeartbeatsMuted(VmId vm) const {
  const auto it = heartbeat_mute_until_.find(vm);
  return it != heartbeat_mute_until_.end() && it->second > engine_->now();
}

void ElasticTrainer::MuteHeartbeats(VmId vm, double duration_s) {
  VARUNA_CHECK_GE(vm, 0);
  VARUNA_CHECK_GT(duration_s, 0.0);
  double& deadline = heartbeat_mute_until_[vm];
  deadline = std::max(deadline, engine_->now() + duration_s);
}

std::vector<VmId> ElasticTrainer::PlacementVms() const {
  std::vector<VmId> vms;
  if (!placement_.has_value()) {
    return vms;
  }
  for (const GpuId gpu : placement_->AllGpus()) {
    vms.push_back(cluster_->VmOfGpu(gpu));
  }
  std::sort(vms.begin(), vms.end());
  vms.erase(std::unique(vms.begin(), vms.end()), vms.end());
  return vms;
}

void ElasticTrainer::ProcessHeartbeats() {
  // Each task reports its per-micro-batch compute time; with identical
  // stages+replicas, outliers against the median expose fail-stutter VMs.
  // VMs that died unannounced (or whose heartbeats chaos dropped) report
  // nothing at all and accumulate missed beats toward the timeout.
  if (!running_ || !placement_.has_value()) {
    return;
  }
  const std::vector<GpuId> gpus = placement_->AllGpus();
  std::vector<GpuId> reporting;
  std::vector<double> heartbeat_times;
  std::vector<VmId> silent;
  for (const GpuId gpu : gpus) {
    const VmId vm = cluster_->VmOfGpu(gpu);
    if (!cluster_->IsActive(vm) || HeartbeatsMuted(vm)) {
      if (std::find(silent.begin(), silent.end(), vm) == silent.end()) {
        silent.push_back(vm);
      }
      continue;
    }
    reporting.push_back(gpu);
    heartbeat_times.push_back(cluster_->SlowFactor(gpu) *
                              rng_.LogNormalMedian(1.0, 0.01));
  }
  for (const GpuId gpu : reporting) {
    missed_heartbeats_.erase(cluster_->VmOfGpu(gpu));
  }
  std::vector<VmId> dead;
  for (const VmId vm : silent) {
    if (++missed_heartbeats_[vm] >= options_.heartbeat_timeout_beats) {
      dead.push_back(vm);
    }
  }
  if (!dead.empty()) {
    std::sort(dead.begin(), dead.end());
    HandleHeartbeatTimeout(dead);
    return;
  }
  if (reporting.empty()) {
    return;
  }
  const double median = Percentile(heartbeat_times, 0.5);
  std::vector<GpuId> stutterers;
  for (size_t i = 0; i < reporting.size(); ++i) {
    if (heartbeat_times[i] > options_.stutter_threshold * median) {
      stutterers.push_back(reporting[i]);
    }
  }
  if (stutterers.empty()) {
    return;
  }
  // Omit the slow VMs' GPUs from future placements and re-place.
  for (const GpuId gpu : stutterers) {
    const VmId vm = cluster_->VmOfGpu(gpu);
    for (const GpuId sibling : cluster_->ActiveGpus()) {
      if (cluster_->VmOfGpu(sibling) == vm &&
          std::find(blacklist_.begin(), blacklist_.end(), sibling) == blacklist_.end()) {
        blacklist_.push_back(sibling);
      }
    }
  }
  stats_.stutters_detected += static_cast<int>(stutterers.size());
  running_ = false;
  minibatch_in_flight_ = false;
  ++epoch_;
  stall_started_ = engine_->now();
  Reconfigure("replace", /*lost_state=*/false);
}

void ElasticTrainer::HandleHeartbeatTimeout(const std::vector<VmId>& dead) {
  for (const VmId vm : dead) {
    missed_heartbeats_.erase(vm);
    // A VM the manager cannot reach is a VM whose local shards it cannot
    // read; treat them as lost even if the VM is merely partitioned.
    checkpoints_.OnVmLost(vm);
    for (const GpuId gpu : cluster_->topology().GpusOfNode(cluster_->Vm(vm).node)) {
      if (std::find(blacklist_.begin(), blacklist_.end(), gpu) == blacklist_.end()) {
        blacklist_.push_back(gpu);
      }
    }
    ++stats_.heartbeat_timeouts;
    ++unsurvived_preemptions_;
  }
  if (restore_in_flight_) {
    ++stats_.morph_retries;
    ++consecutive_recovery_failures_;
  }
  running_ = false;
  minibatch_in_flight_ = false;
  ++epoch_;
  if (stall_started_ < 0.0) {
    stall_started_ = engine_->now();
  }
  RollbackToCheckpoint();
  Reconfigure("heartbeat-timeout", /*lost_state=*/true);
}

void ElasticTrainer::ProvisionTick() {
  engine_->Schedule(options_.provision_check_interval_s, [this] { ProvisionTick(); });
  // Exposure accrues between market events too (a quiet market is evidence of
  // stability). Pure counter arithmetic: no draws, no events.
  predictor_.ObserveQuiet(engine_->now());
  stats_.predictor_updates = predictor_.updates();
  // Heal the blacklist: VMs recover from stutter episodes; give them another
  // chance if they are no longer slow. Entries for dead VMs are dropped too
  // (they can never be placed again), which keeps the list bounded, and muted
  // VMs stay blacklisted until their heartbeats come back.
  std::erase_if(blacklist_, [this](GpuId gpu) {
    const VmId vm = cluster_->VmOfGpu(gpu);
    if (!cluster_->IsActive(vm)) {
      return true;
    }
    return cluster_->SlowFactor(gpu) == 1.0 && !HeartbeatsMuted(vm);
  });

  if (!running_) {
    TryBootstrap();
    if (!running_ && search_) {
      Reconfigure("configure", stats_.minibatches_done > 0);
    }
    return;
  }
  const int available = AvailableGpus();
  if (degraded_) {
    // Degraded mode is a stopgap: leave it the moment the normal memory model
    // fits again (the sweep is memoized, so re-asking is cheap).
    const Result<JobConfig> normal = search_->Best(available, MakeConstraints(false));
    SyncSearchStats();
    if (normal.ok()) {
      running_ = false;
      minibatch_in_flight_ = false;
      ++epoch_;
      stall_started_ = engine_->now();
      Reconfigure("morph", /*lost_state=*/false);
      return;
    }
  }
  if (ProactiveEngaged()) {
    // Proactive pass first: the predictor state moves even when capacity does
    // not, so this reruns every tick. When it declines to morph, fall through
    // to the ordinary growth gate — liveput must never *slow down* regrowth
    // after a storm drains the placement.
    if (EvaluateProactiveMorph(available)) {
      return;
    }
  }
  // Growth: if spare capacity admits a materially better configuration,
  // checkpoint and morph into it. The sweep only reruns when availability
  // moved materially since the last evaluation.
  if (std::abs(available - last_growth_check_gpus_) <
      std::max(4, last_growth_check_gpus_ / 12)) {
    return;
  }
  last_growth_check_gpus_ = available;
  const Result<JobConfig> best = ChooseConfig(available, MakeConstraints(degraded_));
  SyncSearchStats();
  if (!best.ok()) {
    return;
  }
  const double current_rate = config_->ActualBatch() / std::max(1e-9, cached_minibatch_s_);
  if (best.value().est_examples_per_s >
          (1.0 + options_.morph_improvement_threshold) * current_rate &&
      (best.value().pipeline_depth != config_->pipeline_depth ||
       best.value().data_parallel != config_->data_parallel)) {
    running_ = false;
    minibatch_in_flight_ = false;
    ++epoch_;
    stall_started_ = engine_->now();
    Reconfigure("morph", /*lost_state=*/false);
  }
}

void ElasticTrainer::CheckInvariants() const {
  checkpoints_.CheckInvariants();
  // Conservation: every attempted mini-batch is either committed or rolled
  // back — no silent sample loss, re-work bounded by the checkpoint cadence.
  VARUNA_CHECK_EQ(stats_.minibatches_attempted,
                  stats_.minibatches_done + stats_.minibatches_rolled_back);
  const double example_drift = std::abs(
      stats_.examples_attempted - (stats_.examples_processed + stats_.examples_rolled_back));
  VARUNA_CHECK_LE(example_drift, 1e-6 * std::max(1.0, stats_.examples_attempted));
  // The ledger mirrors the committed set exactly, in order.
  VARUNA_CHECK_EQ(static_cast<int64_t>(committed_ledger_.size()), stats_.minibatches_done);
  for (size_t i = 1; i < committed_ledger_.size(); ++i) {
    VARUNA_CHECK_LT(committed_ledger_[i - 1].first, committed_ledger_[i].first);
  }
  VARUNA_CHECK_GE(stats_.minibatches_done, 0);
  VARUNA_CHECK_GE(stats_.examples_processed, -1e-9);
  // Survived recoveries come from announced evictions (preemptions_hit) and
  // from unannounced kills discovered via heartbeat timeout.
  VARUNA_CHECK_GE(stats_.preemptions_hit + stats_.heartbeat_timeouts,
                  stats_.preemptions_survived);
  VARUNA_CHECK_EQ(stats_.shards_lost, checkpoints_.shards_lost());
  if (running_) {
    VARUNA_CHECK(config_.has_value());
    VARUNA_CHECK(placement_.has_value());
    VARUNA_CHECK(partition_.has_value());
  }
}

void ElasticTrainer::RecordSample(double examples_per_s, bool checkpointing) {
  TimelineSample sample;
  sample.time_s = engine_->now();
  sample.examples_per_s = examples_per_s;
  sample.pipeline_depth = config_.has_value() ? config_->pipeline_depth : 0;
  sample.data_parallel = config_.has_value() ? config_->data_parallel : 0;
  sample.gpus_in_use = config_.has_value() ? config_->gpus_used : 0;
  sample.examples_per_s_per_gpu =
      sample.gpus_in_use > 0 ? examples_per_s / sample.gpus_in_use : 0.0;
  sample.gpus_available = cluster_->NumActiveGpus();
  sample.checkpointing = checkpointing;
  stats_.samples.push_back(sample);
}

void ElasticTrainer::SyncSearchStats() {
  const ConfigSearchStats stats = search_->stats();
  stats_.sweep_cache_hits = stats.sweep_cache_hits;
  stats_.sweep_cache_misses = stats.sweep_cache_misses;
  stats_.candidate_memo_hits = stats.candidate_memo_hits;
  stats_.candidate_memo_misses = stats.candidate_memo_misses;
  stats_.candidates_pruned = stats.candidates_pruned;
}

void ElasticTrainer::RecordEvent(const std::string& kind) {
  TimelineEvent event;
  event.time_s = engine_->now();
  event.kind = kind;
  event.pipeline_depth = config_.has_value() ? config_->pipeline_depth : 0;
  event.data_parallel = config_.has_value() ? config_->data_parallel : 0;
  event.gpus_available = cluster_->NumActiveGpus();
  stats_.events.push_back(event);
}

}  // namespace varuna
