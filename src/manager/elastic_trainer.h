// The Varuna manager (§4.6) driving an elastic training session on the
// simulated cluster: it wires the spot market to the cluster, calibrates once
// at startup, picks configurations with the O(G) search, runs mini-batches on
// the DES testbed, checkpoints continuously, watches heartbeats for
// fail-stutter outliers and timeouts, morphs on preemptions and on growth
// opportunities, and records the Figure-8 timeline.
//
// Recovery paths (hardened against the src/chaos campaigns):
//  * Heartbeat timeout — a VM that misses `heartbeat_timeout_beats`
//    consecutive heartbeat evaluations (unannounced death, or chaos-dropped
//    heartbeats) is declared dead; the job rolls back to the newest usable
//    checkpoint and reconfigures without it.
//  * Re-provisioning backoff — when no configuration fits (capacity collapse),
//    retries are scheduled with exponential backoff and seeded jitter rather
//    than busy-spinning on the market.
//  * Morph retry budget — a restore window killed by another preemption
//    retries; after `max_morph_attempts` consecutive recovery failures the
//    manager stops assuming the optimal config will ever place and falls back.
//  * Degraded mode — when capacity collapses below what the optimal search can
//    use, the manager re-searches with the CPU-offload memory model (slower,
//    but feasible at shallower depths) instead of stalling; it morphs back to
//    the normal mode as soon as a provision tick finds capacity for it.
// All of it is driven by the one seeded Rng, so chaos campaigns replay
// bit-identically (src/varuna/determinism.h).
#ifndef SRC_MANAGER_ELASTIC_TRAINER_H_
#define SRC_MANAGER_ELASTIC_TRAINER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/placement.h"
#include "src/cluster/spot_market.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/manager/checkpoint.h"
#include "src/model/cutpoints.h"
#include "src/model/op_graph.h"
#include "src/model/tracer.h"
#include "src/model/transformer.h"
#include "src/morph/calibration.h"
#include "src/morph/config_search.h"
#include "src/morph/liveput.h"
#include "src/pipeline/executor.h"
#include "src/sim/engine.h"

namespace varuna {

struct TrainerOptions {
  double total_batch = 8192.0;
  int demand_vms = 120;  // Standing spot demand the manager maintains.
  // Heartbeats carry per-micro-batch compute times and are evaluated at every
  // mini-batch boundary. A VM whose compute heartbeat exceeds
  // median * threshold is blacklisted.
  double stutter_threshold = 1.12;
  int checkpoint_every_minibatches = 10;
  // How often the manager looks for growth / better configurations.
  double provision_check_interval_s = 900.0;
  // Planned morphs require at least this relative throughput gain.
  double morph_improvement_threshold = 0.10;
  // A VM missing this many consecutive heartbeat evaluations is declared
  // dead (process crash / unannounced preemption / partition).
  int heartbeat_timeout_beats = 3;
  // Exponential backoff for re-provisioning retries after a failed
  // reconfiguration: base * 2^k, capped, with +/-25% seeded jitter.
  double reprovision_backoff_base_s = 60.0;
  double reprovision_backoff_max_s = 1800.0;
  // Consecutive recovery failures (failed searches/placements, killed restore
  // windows) before the manager gives up on the optimal configuration and
  // tries the degraded fallback immediately.
  int max_morph_attempts = 4;
  // Allow the degraded (CPU-offload) fallback when the normal search finds
  // nothing for the current capacity.
  bool allow_degraded_mode = true;
  CalibrationOptions calibration;
  CheckpointOptions checkpoint;
  MemoryBudget budget;
  bool cpu_offload_optimizer = false;
  // Mini-batch-to-mini-batch duration noise when replaying the cached
  // executor measurement.
  double minibatch_noise_sigma = 0.02;
  // Workers for the pooled config search (§4.4 parallelises the sweep over
  // candidate configs). <= 1 keeps the sweep serial; pooled and serial
  // sweeps are bit-identical, so this never changes the training trace.
  int search_threads = 1;
  // --- Liveput policy (src/morph/liveput.h). -------------------------------
  // kReactive reproduces the paper's recover-after-preemption behavior
  // exactly; the proactive modes add liveput-weighted config selection and
  // risk-triggered pre-migration checkpoints on top, falling back to the
  // reactive path bit-for-bit while the predictor is cold.
  MorphPolicy morph_policy = MorphPolicy::kReactive;
  // Horizon H the liveput objective scores survival over.
  double liveput_horizon_s = 900.0;
  PredictorOptions predictor;
  // Pre-migration cost model: checkpoint early when the expected rollback
  // re-work (hit probability before the cadence checkpoint × uncovered work
  // seconds) exceeds this multiple of the checkpoint's own stall cost.
  double premigrate_cost_ratio = 3.0;
  // Proactive morphs need this relative liveput gain over the current config
  // (and the projected gain must also pay for the restore stall).
  double liveput_gain_threshold = 0.5;
  uint64_t seed = 1;
};

struct TimelineEvent {
  double time_s = 0.0;
  // "configure", "morph", "replace", "heartbeat-timeout", "degraded",
  // "recover".
  std::string kind;
  int pipeline_depth = 0;
  int data_parallel = 0;
  int gpus_available = 0;
};

struct TimelineSample {
  double time_s = 0.0;
  double examples_per_s = 0.0;
  double examples_per_s_per_gpu = 0.0;
  int pipeline_depth = 0;
  int data_parallel = 0;
  int gpus_in_use = 0;
  int gpus_available = 0;
  bool checkpointing = false;
};

// Every field is classified for the replay contract, and varuna_analyze
// (tools/analyze) cross-checks the tags against the serialization in
// src/varuna/determinism.cc in every CI leg:
//   // fingerprint    part of the bit-identical replay contract — MUST be
//                     captured into the ElasticTrace and hashed;
//   // observability  reporting/perf only — MUST NOT be fingerprinted (its
//                     value may legitimately vary with cache warmth etc.,
//                     or is derivable from fingerprinted state).
// Adding a field without a tag, or tagging one inconsistently with
// determinism.cc, fails the `lint` ctest label.
struct SessionStats {
  double examples_processed = 0.0;  // fingerprint
  int64_t minibatches_done = 0;     // fingerprint
  int morphs = 0;                   // fingerprint
  int preemptions_hit = 0;  // fingerprint: preemptions that interrupted the job.
  // fingerprint: preemptions after which training subsequently made progress
  // again — the paper's headline "training survives" counter.
  int preemptions_survived = 0;
  // observability: advisory fail-stutter detections; thresholds may be tuned
  // without invalidating recorded traces.
  int stutters_detected = 0;
  int checkpoints = 0;      // fingerprint
  // observability: time spent restoring / waiting for capacity — derivable
  // from the fingerprinted event timeline.
  double stalled_s = 0.0;
  // --- Recovery counters (chaos campaigns assert against these). -----------
  int restarts = 0;            // fingerprint: rollback-and-restore recoveries.
  int heartbeat_timeouts = 0;  // fingerprint: VMs declared dead via heartbeats.
  int morph_retries = 0;       // fingerprint: restore windows re-attempted.
  int reprovision_retries = 0; // fingerprint: backoff reconfiguration retries.
  int degraded_intervals = 0;  // fingerprint: entries into degraded mode.
  int64_t shards_lost = 0;     // fingerprint: shards that died with their VM.
  // Conservation ledger: every mini-batch completion is attempted; a restore
  // rolls the uncheckpointed tail back. attempted == done + rolled_back
  // always (ElasticTrainer::CheckInvariants), so no sample is ever silently
  // lost and re-work is bounded by the checkpoint cadence.
  // observability: exactly minibatches_done + minibatches_rolled_back.
  int64_t minibatches_attempted = 0;
  int64_t minibatches_rolled_back = 0;  // fingerprint
  // observability: exactly examples_processed + examples_rolled_back.
  double examples_attempted = 0.0;
  double examples_rolled_back = 0.0;  // fingerprint
  // observability: deepest single rollback, derivable from the ledger events.
  int64_t max_rollback_minibatches = 0;
  // fingerprint: checkpoint id of the latest restore.
  int64_t last_restore_step = -1;
  // Morph-decision cost trackers (snapshots of the ConfigSearch counters):
  // whole sweeps memoized by (G, calibration, constraints) resolve without
  // re-simulation when a spot trace revisits a cluster size, and individual
  // fast-sim evaluations are memoized per (P, D, m, Nm) candidate so a morph
  // to a previously-unseen G re-simulates only genuinely new tuples, with
  // bound-pruned candidates skipping simulation entirely.
  uint64_t sweep_cache_hits = 0;    // observability: cache warmth, not state.
  uint64_t sweep_cache_misses = 0;  // observability
  uint64_t candidate_memo_hits = 0;    // observability: candidate-grain reuse.
  uint64_t candidate_memo_misses = 0;  // observability
  uint64_t candidates_pruned = 0;      // observability: bound-pruned, unsimulated.
  // Simulation-core perf counters (snapshots of the persistent executor and
  // the cluster Network; reported by the benches, never fingerprinted).
  uint64_t executor_events = 0;           // observability: DES events fired.
  uint64_t executor_heap_fallbacks = 0;   // observability: spilled captures.
  uint64_t executor_scratch_growths = 0;  // observability: arena growths.
  uint64_t net_ring_cache_hits = 0;       // observability: ring-cost memo.
  uint64_t net_ring_cache_misses = 0;     // observability
  // Sharded-simulation perf counters, snapshotted from a ShardedSimEngine by
  // harnesses that drive one (bench_sim_core's sharded storm); sessions on
  // the serial engine leave them zero. Never fingerprinted: shard count and
  // window cadence are execution details the replay contract hides.
  uint64_t sim_window_syncs = 0;          // observability: window barriers.
  uint64_t sim_cross_shard_messages = 0;  // observability: mailbox parcels.
  double sim_shard_imbalance = 0.0;       // observability: max/mean shard load.
  // --- Liveput policy counters (src/morph/liveput.h). ----------------------
  // fingerprint: morphs initiated by the liveput objective ahead of any
  // preemption — part of the replayed decision sequence.
  int proactive_morphs = 0;
  // fingerprint: checkpoint shards written early by the pre-migration
  // trigger (expected rollback re-work exceeded the checkpoint stall cost).
  int64_t premigrated_shards = 0;
  // observability: bytes moved by pre-migration checkpoints — derivable from
  // premigrated_shards and the model size.
  double premigrated_bytes = 0.0;
  // observability: predictor observation count; pure instrumentation.
  int64_t predictor_updates = 0;
  // observability: searches where the liveput argmax differed from the
  // throughput argmax. Advisory — horizon/threshold tuning may change it
  // without invalidating recorded traces.
  int64_t liveput_wins = 0;
  // --- Fast recovery path (delta checkpoints / locality / live handoff). ---
  // fingerprint: voluntary morphs whose state moved peer-to-peer between the
  // outgoing and incoming placements instead of a checkpoint-restore round
  // trip — part of the replayed decision sequence.
  int live_handoffs = 0;
  // observability: bytes landed by completed handoff transfer events —
  // derivable from the fingerprinted morph timeline and the model size.
  double handoff_bytes = 0.0;
  // observability: delta checkpoint records written (mirror of the store
  // counter; derivable from the fingerprinted checkpoint sequence).
  int64_t delta_checkpoints = 0;
  // observability: superseded/inert records garbage-collected by the store.
  int64_t checkpoint_records_pruned = 0;
  // observability: chain records resolved across all priced restores (one
  // full base + trailing deltas each) — the delta-chain-length telemetry.
  int64_t restore_chain_records = 0;
  // observability: restore seconds by source, summed over restores —
  // derivable from the fingerprinted event timeline and cluster state.
  double restore_setup_s = 0.0;
  double restore_ssd_s = 0.0;    // observability: surviving-owner SSD reads.
  double restore_peer_s = 0.0;   // observability: peer transfers over the fabric.
  double restore_cloud_s = 0.0;  // observability: cloud object reads.
  // observability: shards priced per source tier across all restores.
  int64_t restore_shards_ssd = 0;
  int64_t restore_shards_peer = 0;      // observability
  int64_t restore_shards_cloud = 0;     // observability
  int64_t restore_shards_premigrated = 0;  // observability: restored free.
  std::vector<TimelineEvent> events;      // fingerprint: the event timeline.
  std::vector<TimelineSample> samples;    // fingerprint: throughput samples.
};

class ElasticTrainer {
 public:
  ElasticTrainer(SimEngine* engine, Cluster* cluster, SpotMarket* market, int market_pool,
                 const VmType& vm_type, const TransformerSpec& spec, TrainerOptions options);

  // Registers market handlers and kicks off the session. Call once, then run
  // the engine (RunUntil for a bounded experiment).
  void Start();

  const SessionStats& stats() const { return stats_; }
  bool job_running() const { return running_; }
  bool degraded() const { return degraded_; }
  const std::optional<JobConfig>& current_config() const { return config_; }
  const CheckpointStore& checkpoints() const { return checkpoints_; }

  // --- Chaos hooks (src/chaos; also usable from tests). --------------------
  // Drops `vm`'s heartbeats for `duration_s` simulated seconds. The VM keeps
  // computing; the manager just stops hearing from it and must decide via the
  // timeout policy.
  void MuteHeartbeats(VmId vm, double duration_s);
  // Distinct VMs hosting the current placement (empty when not running).
  std::vector<VmId> PlacementVms() const;
  // Mutable store access for shard-corruption injection.
  CheckpointStore* mutable_checkpoints() { return &checkpoints_; }
  // Observer fired when a reconfiguration succeeds, with the restore delay
  // about to be paid (0 for a fresh configure). The chaos engine uses it to
  // land mid-morph preemptions inside the restore window.
  using MorphObserver = std::function<void(const std::string& kind, double restore_delay_s)>;
  void set_morph_observer(MorphObserver observer) { morph_observer_ = std::move(observer); }

  // Oracle storm forecast (src/chaos feeds scripted storms through this).
  // No-op unless the policy is kOracleProactive: the online predictor must
  // learn from the observed stream alone.
  void ForecastStorm(double at_s, int vms);
  const AvailabilityPredictor& predictor() const { return predictor_; }

  // Aborts via VARUNA_CHECK if the manager state or the conservation ledger
  // is inconsistent. O(session) on the stats vectors — call from tests and
  // campaign teardown, not hot loops.
  void CheckInvariants() const;

 private:
  void OnVmGranted(SpotMarket::MarketVmId id, const VmType& type);
  void OnVmPreempted(SpotMarket::MarketVmId id);

  // Calibrates once when enough GPUs exist, then configures.
  void TryBootstrap();
  // Coalesces a burst of preemptions into one restore+morph (the manager
  // notices missing heartbeats, which batches naturally).
  void DeferredPreemptionMorph();
  // Picks the best config for current capacity and (re)starts the job.
  // `lost_state` true when restoring from a checkpoint after a preemption.
  void Reconfigure(const std::string& event_kind, bool lost_state);
  void ScheduleNextMinibatch(double extra_delay);
  void OnMinibatchDone(int64_t epoch);
  void ProcessHeartbeats();
  // Declares `dead` (ordered, deduplicated) lost after missed heartbeats:
  // blacklists them, rolls back, reconfigures.
  void HandleHeartbeatTimeout(const std::vector<VmId>& dead);
  void ProvisionTick();

  // Rolls the session back to the newest usable checkpoint; updates the
  // conservation ledger. Returns the checkpoint step restored (-1 = from
  // scratch).
  int64_t RollbackToCheckpoint();
  // Schedules a jittered exponential-backoff reconfiguration retry (no-op if
  // one is already pending).
  void ScheduleReprovisionRetry();
  double BackoffDelay();
  // True while `vm`'s heartbeats are muted by chaos.
  bool HeartbeatsMuted(VmId vm) const;
  SearchConstraints MakeConstraints(bool degraded) const;
  // The liveput policy is live: proactive mode requested AND the predictor
  // has warmed past its gates. Everywhere this is false — reactive policy,
  // cold predictor, stable market — the manager's decision sequence is
  // bit-identical to the reactive path (property-tested).
  bool ProactiveEngaged() const {
    return options_.morph_policy != MorphPolicy::kReactive && !predictor_.Cold();
  }
  // Config selection: throughput argmax (Best) reactively, liveput argmax
  // over the sweep when the proactive policy is engaged.
  Result<JobConfig> ChooseConfig(int gpus, const SearchConstraints& constraints);
  // Proactive morph evaluation on the provision tick: morph when the liveput
  // argmax materially beats the current config and the projected gain over
  // the horizon pays for the restore stall. Returns true if it morphed.
  bool EvaluateProactiveMorph(int available_gpus);
  int PlacementVmsUsed() const;
  // What one placement hit costs right now: expected rollback re-work (half
  // the checkpoint cadence at the measured rate) plus the restore stall. The
  // liveput objective amortizes survival risk by this, not the whole horizon.
  double RecoveryCostS() const;
  // Record-aware restore estimate for an involuntary hit on the current
  // placement (one VM presumed lost, the rest warm). Bit-identical to the
  // legacy RestoreDuration while the fast-recovery options are disabled.
  double EstimatedRestoreSeconds(int data_parallel) const;
  // Decision-time estimate of a voluntary morph's live-handoff delay onto
  // `config` (the real placement is unknown until PlaceJob): warm-blended
  // setup plus the cold VMs' state over a representative cross-node flow.
  double EstimatedHandoffSeconds(const JobConfig& config) const;
  // Commits a live handoff from the outgoing onto the incoming placement:
  // schedules the peer-to-peer transfer completion events (aborted transfers
  // — epoch moved on — land nothing) and returns the morph delay, the
  // transfer overlapped with the warm process-group rebuild.
  double BeginLiveHandoff(const std::vector<VmId>& outgoing,
                          const std::vector<VmId>& incoming);
  // Offload applies when the user asked for it or degraded mode forces it.
  bool OffloadActive() const { return options_.cpu_offload_optimizer || degraded_; }

  // Measured mini-batch duration for the current placement (re-measured when
  // the placement or any member's slow factor changes).
  double MeasuredMinibatchSeconds();

  int AvailableGpus() const;
  void RecordSample(double examples_per_s, bool checkpointing);
  void RecordEvent(const std::string& kind);
  // Mirrors the ConfigSearch cache counters into stats_ after a search.
  void SyncSearchStats();

  SimEngine* engine_;
  Cluster* cluster_;
  SpotMarket* market_;
  int market_pool_;
  VmType vm_type_;
  TransformerSpec spec_;
  TrainerOptions options_;
  Rng rng_;
  // Persistent testbed: its scratch (engine pool, worker table, flag arena)
  // is reused across every measurement of the session.
  PipelineExecutor executor_;

  OpGraph graph_;
  ModelSections sections_;
  double shared_sync_bytes_ = 0.0;
  std::optional<Calibration> calibration_;
  // Fan-out/join pool for the config sweep (null when search_threads <= 1).
  std::unique_ptr<ThreadPool> search_pool_;
  std::unique_ptr<ConfigSearch> search_;
  CheckpointStore checkpoints_;
  // Availability estimator for the liveput policy. Always fed (cheap counts,
  // no Rng draws, no engine events), only *consulted* when engaged.
  AvailabilityPredictor predictor_;

  std::map<SpotMarket::MarketVmId, VmId> market_to_vm_;
  std::vector<GpuId> blacklist_;

  bool running_ = false;
  bool minibatch_in_flight_ = false;
  bool preemption_morph_pending_ = false;
  // Bumped on every reconfiguration/stop; in-flight mini-batch completions
  // from an older epoch are ignored (the preempted run's events still fire).
  int64_t epoch_ = 0;
  std::optional<JobConfig> config_;
  std::optional<Placement> placement_;
  std::optional<Partition> partition_;
  double cached_minibatch_s_ = 0.0;
  std::vector<double> cached_slow_factors_;
  int64_t last_checkpointed_minibatch_ = -1;
  // Capacity at the last growth evaluation; the O(G) sweep only reruns when
  // availability moved materially (morphs are not free).
  int last_growth_check_gpus_ = 0;
  double stall_started_ = -1.0;

  // --- Recovery state. -----------------------------------------------------
  bool degraded_ = false;
  // True from a successful Reconfigure until the first mini-batch of the new
  // epoch completes — a preemption in this window is a failed morph.
  bool restore_in_flight_ = false;
  int consecutive_recovery_failures_ = 0;
  bool reprovision_retry_pending_ = false;
  // Simulated-time deadline until which each muted VM stays silent.
  std::map<VmId, double> heartbeat_mute_until_;
  std::map<VmId, int> missed_heartbeats_;
  // (mini-batch id, examples committed) for every committed-and-not-rolled-
  // back mini-batch, in order: rollbacks refund exactly what each lost
  // mini-batch committed, even across morphs that changed ActualBatch().
  std::deque<std::pair<int64_t, double>> committed_ledger_;
  // Preemptions hit since the last committed mini-batch; they count as
  // "survived" once training makes progress again.
  int unsurvived_preemptions_ = 0;

  MorphObserver morph_observer_;

  SessionStats stats_;
};

}  // namespace varuna

#endif  // SRC_MANAGER_ELASTIC_TRAINER_H_
