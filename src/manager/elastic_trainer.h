// The Varuna manager (§4.6) driving an elastic training session on the
// simulated cluster: it wires the spot market to the cluster, calibrates once
// at startup, picks configurations with the O(G) search, runs mini-batches on
// the DES testbed, checkpoints continuously, watches heartbeats for
// fail-stutter outliers, morphs on preemptions and on growth opportunities,
// and records the Figure-8 timeline.
#ifndef SRC_MANAGER_ELASTIC_TRAINER_H_
#define SRC_MANAGER_ELASTIC_TRAINER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/placement.h"
#include "src/cluster/spot_market.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/manager/checkpoint.h"
#include "src/model/cutpoints.h"
#include "src/model/op_graph.h"
#include "src/model/tracer.h"
#include "src/model/transformer.h"
#include "src/morph/calibration.h"
#include "src/morph/config_search.h"
#include "src/pipeline/executor.h"
#include "src/sim/engine.h"

namespace varuna {

struct TrainerOptions {
  double total_batch = 8192.0;
  int demand_vms = 120;  // Standing spot demand the manager maintains.
  // Heartbeats carry per-micro-batch compute times and are evaluated at every
  // mini-batch boundary. A VM whose compute heartbeat exceeds
  // median * threshold is blacklisted.
  double stutter_threshold = 1.12;
  int checkpoint_every_minibatches = 10;
  // How often the manager looks for growth / better configurations.
  double provision_check_interval_s = 900.0;
  // Planned morphs require at least this relative throughput gain.
  double morph_improvement_threshold = 0.10;
  CalibrationOptions calibration;
  CheckpointOptions checkpoint;
  MemoryBudget budget;
  bool cpu_offload_optimizer = false;
  // Mini-batch-to-mini-batch duration noise when replaying the cached
  // executor measurement.
  double minibatch_noise_sigma = 0.02;
  // Workers for the pooled config search (§4.4 parallelises the sweep over
  // candidate configs). <= 1 keeps the sweep serial; pooled and serial
  // sweeps are bit-identical, so this never changes the training trace.
  int search_threads = 1;
  uint64_t seed = 1;
};

struct TimelineEvent {
  double time_s = 0.0;
  std::string kind;  // "configure", "morph", "replace", "preempt-stall", "stutter".
  int pipeline_depth = 0;
  int data_parallel = 0;
  int gpus_available = 0;
};

struct TimelineSample {
  double time_s = 0.0;
  double examples_per_s = 0.0;
  double examples_per_s_per_gpu = 0.0;
  int pipeline_depth = 0;
  int data_parallel = 0;
  int gpus_in_use = 0;
  int gpus_available = 0;
  bool checkpointing = false;
};

struct SessionStats {
  double examples_processed = 0.0;
  int64_t minibatches_done = 0;
  int morphs = 0;
  int preemptions_hit = 0;  // Preemptions that interrupted the job.
  int stutters_detected = 0;
  int checkpoints = 0;
  double stalled_s = 0.0;  // Time spent restoring / waiting for capacity.
  // Morph-decision cost trackers: sweeps memoized by (G, calibration,
  // constraints) resolve without re-simulation when a spot trace revisits a
  // cluster size (snapshot of the ConfigSearch counters).
  uint64_t sweep_cache_hits = 0;
  uint64_t sweep_cache_misses = 0;
  std::vector<TimelineEvent> events;
  std::vector<TimelineSample> samples;
};

class ElasticTrainer {
 public:
  ElasticTrainer(SimEngine* engine, Cluster* cluster, SpotMarket* market, int market_pool,
                 const VmType& vm_type, const TransformerSpec& spec, TrainerOptions options);

  // Registers market handlers and kicks off the session. Call once, then run
  // the engine (RunUntil for a bounded experiment).
  void Start();

  const SessionStats& stats() const { return stats_; }
  bool job_running() const { return running_; }
  const std::optional<JobConfig>& current_config() const { return config_; }

 private:
  void OnVmGranted(SpotMarket::MarketVmId id, const VmType& type);
  void OnVmPreempted(SpotMarket::MarketVmId id);

  // Calibrates once when enough GPUs exist, then configures.
  void TryBootstrap();
  // Coalesces a burst of preemptions into one restore+morph (the manager
  // notices missing heartbeats, which batches naturally).
  void DeferredPreemptionMorph();
  // Picks the best config for current capacity and (re)starts the job.
  // `lost_state` true when restoring from a checkpoint after a preemption.
  void Reconfigure(const std::string& event_kind, bool lost_state);
  void ScheduleNextMinibatch(double extra_delay);
  void OnMinibatchDone(int64_t epoch);
  void ProcessHeartbeats();
  void ProvisionTick();

  // Measured mini-batch duration for the current placement (re-measured when
  // the placement or any member's slow factor changes).
  double MeasuredMinibatchSeconds();

  int AvailableGpus() const;
  void RecordSample(double examples_per_s, bool checkpointing);
  void RecordEvent(const std::string& kind);
  // Mirrors the ConfigSearch cache counters into stats_ after a search.
  void SyncSearchStats();

  SimEngine* engine_;
  Cluster* cluster_;
  SpotMarket* market_;
  int market_pool_;
  VmType vm_type_;
  TransformerSpec spec_;
  TrainerOptions options_;
  Rng rng_;

  OpGraph graph_;
  ModelSections sections_;
  double shared_sync_bytes_ = 0.0;
  std::optional<Calibration> calibration_;
  // Fan-out/join pool for the config sweep (null when search_threads <= 1).
  std::unique_ptr<ThreadPool> search_pool_;
  std::unique_ptr<ConfigSearch> search_;
  CheckpointStore checkpoints_;

  std::map<SpotMarket::MarketVmId, VmId> market_to_vm_;
  std::vector<GpuId> blacklist_;

  bool running_ = false;
  bool minibatch_in_flight_ = false;
  bool preemption_morph_pending_ = false;
  // Bumped on every reconfiguration/stop; in-flight mini-batch completions
  // from an older epoch are ignored (the preempted run's events still fire).
  int64_t epoch_ = 0;
  std::optional<JobConfig> config_;
  std::optional<Placement> placement_;
  std::optional<Partition> partition_;
  double cached_minibatch_s_ = 0.0;
  std::vector<double> cached_slow_factors_;
  int64_t last_checkpointed_minibatch_ = -1;
  // Capacity at the last growth evaluation; the O(G) sweep only reruns when
  // availability moved materially (morphs are not free).
  int last_growth_check_gpus_ = 0;
  double stall_started_ = -1.0;

  SessionStats stats_;
};

}  // namespace varuna

#endif  // SRC_MANAGER_ELASTIC_TRAINER_H_
