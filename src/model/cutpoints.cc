#include "src/model/cutpoints.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace varuna {
namespace {

// Fills the derived per-section profile fields from the boundary list.
void FillSectionProfile(const OpGraph& graph, ModelSections* sections) {
  const int k = static_cast<int>(sections->boundaries.size()) - 1;
  sections->fwd_flops.resize(static_cast<size_t>(k));
  sections->params.resize(static_cast<size_t>(k));
  sections->boundary_activation_bytes.resize(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    const int begin = sections->boundaries[static_cast<size_t>(i)];
    const int end = sections->boundaries[static_cast<size_t>(i) + 1];
    sections->fwd_flops[static_cast<size_t>(i)] = graph.RangeFwdFlops(begin, end);
    sections->params[static_cast<size_t>(i)] = graph.RangeParams(begin, end);
    sections->boundary_activation_bytes[static_cast<size_t>(i)] =
        graph.op(end - 1).out_activation_bytes;
  }
}

}  // namespace

Result<ModelSections> IdentifyCutPoints(const OpGraph& graph, int num_sections) {
  if (num_sections < 1) {
    return Result<ModelSections>::Error("num_sections must be >= 1");
  }
  if (graph.size() < num_sections) {
    std::ostringstream message;
    message << "op graph has " << graph.size() << " ops; cannot form " << num_sections
            << " sections";
    return Result<ModelSections>::Error(message.str());
  }

  // Cut-points live inside the model's repetitive structure (§5.1: massive
  // models "inherently use repetitive structures"): pre-block ops (embedding)
  // attach to the first section and post-block ops (LM head, loss) to the
  // last. Targets are therefore equal shares of *block* compute, and
  // candidate boundaries are ends of block ops only.
  std::vector<double> block_prefix(static_cast<size_t>(graph.size()) + 1, 0.0);
  int first_block_op = -1;
  int last_block_op = -1;
  for (int i = 0; i < graph.size(); ++i) {
    const bool in_block = graph.op(i).layer >= 0;
    block_prefix[static_cast<size_t>(i) + 1] =
        block_prefix[static_cast<size_t>(i)] + (in_block ? graph.op(i).fwd_flops : 0.0);
    if (in_block) {
      if (first_block_op < 0) {
        first_block_op = i;
      }
      last_block_op = i;
    }
  }
  if (first_block_op < 0 || last_block_op - first_block_op + 1 < num_sections) {
    // Degenerate graph (no repetitive structure): fall back to one op per cut.
    if (graph.size() < num_sections) {
      return Result<ModelSections>::Error("graph too small for requested sections");
    }
    first_block_op = 0;
    last_block_op = graph.size() - 1;
    for (int i = 0; i < graph.size(); ++i) {
      block_prefix[static_cast<size_t>(i) + 1] =
          block_prefix[static_cast<size_t>(i)] + graph.op(i).fwd_flops;
    }
  }

  const double block_total = block_prefix[static_cast<size_t>(graph.size())];
  const double section_target = block_total / num_sections;

  ModelSections sections;
  sections.boundaries.push_back(0);
  for (int cut = 1; cut < num_sections; ++cut) {
    const double target = cut * section_target;
    // Candidate boundaries: block-op ends whose cumulative block compute is
    // within 60% of a section of the target. Among them pick the lowest
    // output activation, breaking ties toward the target.
    const double slack = 0.6 * section_target;
    int best = -1;
    double best_activation = std::numeric_limits<double>::infinity();
    double best_distance = std::numeric_limits<double>::infinity();
    const int min_end = std::max(sections.boundaries.back() + 1, first_block_op + 1);
    // Leave room for the remaining cuts (one block op each minimum).
    const int max_end = last_block_op + 1 - (num_sections - cut);
    for (int end = min_end; end <= max_end; ++end) {
      if (graph.op(end - 1).layer < 0) {
        continue;
      }
      const double cumulative = block_prefix[static_cast<size_t>(end)];
      if (std::abs(cumulative - target) > slack) {
        continue;
      }
      const double activation = graph.op(end - 1).out_activation_bytes;
      const double distance = std::abs(cumulative - target);
      if (activation < best_activation ||
          (activation == best_activation && distance < best_distance)) {
        best = end;
        best_activation = activation;
        best_distance = distance;
      }
    }
    if (best < 0) {
      // No block op inside the slack window (heavily skewed graphs): fall back
      // to the block-op end closest to the target within the legal range.
      for (int end = min_end; end <= max_end; ++end) {
        if (graph.op(end - 1).layer < 0) {
          continue;
        }
        if (best < 0 || std::abs(block_prefix[static_cast<size_t>(end)] - target) <
                            std::abs(block_prefix[static_cast<size_t>(best)] - target)) {
          best = end;
        }
      }
      if (best < 0) {
        best = min_end;  // Last resort; keeps boundaries strictly increasing.
      }
    }
    sections.boundaries.push_back(best);
  }
  sections.boundaries.push_back(graph.size());

  FillSectionProfile(graph, &sections);
  return sections;
}

Result<Partition> PartitionModel(const ModelSections& sections, int depth,
                                 const PartitionOptions& options) {
  const int k = sections.num_sections();
  if (depth < 1 || depth > k) {
    std::ostringstream message;
    message << "pipeline depth " << depth << " must be in [1, " << k << "] (number of cut-point"
            << " sections)";
    return Result<Partition>::Error(message.str());
  }

  // DP over contiguous partitions: cost[i][p] = min over j of
  // max(cost[j][p-1], weight(p) * flops(j..i)). Stage weights are 1 except the
  // last stage (no recompute).
  std::vector<double> prefix(static_cast<size_t>(k) + 1, 0.0);
  for (int i = 0; i < k; ++i) {
    prefix[static_cast<size_t>(i) + 1] =
        prefix[static_cast<size_t>(i)] + sections.fwd_flops[static_cast<size_t>(i)];
  }
  auto range_flops = [&](int begin, int end) {
    return prefix[static_cast<size_t>(end)] - prefix[static_cast<size_t>(begin)];
  };

  constexpr double kInfinity = std::numeric_limits<double>::infinity();
  // cost[p][i]: best max-stage-cost splitting the first i sections into p stages,
  // where stage p (1-based) may be the last stage only when p == depth.
  std::vector<std::vector<double>> cost(static_cast<size_t>(depth) + 1,
                                        std::vector<double>(static_cast<size_t>(k) + 1, kInfinity));
  std::vector<std::vector<int>> split(static_cast<size_t>(depth) + 1,
                                      std::vector<int>(static_cast<size_t>(k) + 1, -1));
  cost[0][0] = 0.0;
  for (int p = 1; p <= depth; ++p) {
    const double weight = (p == depth) ? options.last_stage_weight : 1.0;
    for (int i = p; i <= k - (depth - p); ++i) {
      for (int j = p - 1; j < i; ++j) {
        if (cost[static_cast<size_t>(p) - 1][static_cast<size_t>(j)] == kInfinity) {
          continue;
        }
        const double candidate =
            std::max(cost[static_cast<size_t>(p) - 1][static_cast<size_t>(j)],
                     weight * range_flops(j, i));
        if (candidate < cost[static_cast<size_t>(p)][static_cast<size_t>(i)]) {
          cost[static_cast<size_t>(p)][static_cast<size_t>(i)] = candidate;
          split[static_cast<size_t>(p)][static_cast<size_t>(i)] = j;
        }
      }
    }
  }

  Partition partition;
  partition.stage_begin.assign(static_cast<size_t>(depth) + 1, 0);
  partition.stage_begin[static_cast<size_t>(depth)] = k;
  for (int p = depth; p >= 1; --p) {
    const int end = partition.stage_begin[static_cast<size_t>(p)];
    partition.stage_begin[static_cast<size_t>(p) - 1] =
        split[static_cast<size_t>(p)][static_cast<size_t>(end)];
  }

  partition.stage_fwd_flops.resize(static_cast<size_t>(depth));
  partition.stage_params.resize(static_cast<size_t>(depth));
  partition.send_activation_bytes.resize(static_cast<size_t>(depth) - 1);
  for (int p = 0; p < depth; ++p) {
    const int begin = partition.stage_begin[static_cast<size_t>(p)];
    const int end = partition.stage_begin[static_cast<size_t>(p) + 1];
    double flops = 0.0;
    double params = 0.0;
    for (int i = begin; i < end; ++i) {
      flops += sections.fwd_flops[static_cast<size_t>(i)];
      params += sections.params[static_cast<size_t>(i)];
    }
    partition.stage_fwd_flops[static_cast<size_t>(p)] = flops;
    partition.stage_params[static_cast<size_t>(p)] = params;
    if (p + 1 < depth) {
      partition.send_activation_bytes[static_cast<size_t>(p)] =
          sections.boundary_activation_bytes[static_cast<size_t>(end) - 1];
    }
  }
  return partition;
}

}  // namespace varuna
