// Cut-point identification and partitioning (§5.1). Cut-points slice the op
// graph into K roughly compute-equal sections ending at low-activation ops;
// at run time, contiguous sections are grouped into P <= K pipeline stages
// balanced in forward compute.
#ifndef SRC_MODEL_CUTPOINTS_H_
#define SRC_MODEL_CUTPOINTS_H_

#include <vector>

#include "src/common/result.h"
#include "src/model/op_graph.h"

namespace varuna {

// K sections delimited by K+1 op-index boundaries. boundary[0] == 0 and
// boundary[K] == graph.size(); section i covers ops [boundary[i], boundary[i+1]).
struct ModelSections {
  std::vector<int> boundaries;
  // Per-section profile, derived from the graph at identification time.
  std::vector<double> fwd_flops;
  std::vector<double> params;
  // Activation bytes per example crossing the boundary *after* section i
  // (output of its last op). The final entry is the loss scalar.
  std::vector<double> boundary_activation_bytes;

  int num_sections() const { return static_cast<int>(fwd_flops.size()); }
};

// Splits the graph into `num_sections` sections. Near each equal-compute
// target the op with the smallest output activation is chosen (§5.1: "picks
// those with lowest activation size to maintain a high compute-communication
// ratio"). Fails if the graph has fewer ops than sections.
Result<ModelSections> IdentifyCutPoints(const OpGraph& graph, int num_sections);

struct PartitionOptions {
  // Relative weight of the last stage's compute when balancing. Varuna's
  // schedule never recomputes on the last stage (§3.2), so a unit of forward
  // work there costs 3 time units (F+B) instead of 4 (F+R+B); balancing with
  // weight 0.75 lets the partitioner pack the LM head into the final stage.
  double last_stage_weight = 0.75;
};

// Contiguous grouping of sections into P stages.
struct Partition {
  // stage_begin has P+1 entries over section indices.
  std::vector<int> stage_begin;
  std::vector<double> stage_fwd_flops;
  std::vector<double> stage_params;
  // Activation bytes per example sent from stage s to stage s+1 (P-1 entries).
  std::vector<double> send_activation_bytes;

  int depth() const { return static_cast<int>(stage_fwd_flops.size()); }
};

// Balanced contiguous partition of the sections into `depth` stages
// (minimises the maximum weighted stage compute; O(K^2 P) DP).
Result<Partition> PartitionModel(const ModelSections& sections, int depth,
                                 const PartitionOptions& options = {});

}  // namespace varuna

#endif  // SRC_MODEL_CUTPOINTS_H_
