#include "src/model/op_graph.h"

#include "src/common/check.h"

namespace varuna {

double OpGraph::TotalFwdFlops() const { return RangeFwdFlops(0, size()); }

double OpGraph::TotalParams() const { return RangeParams(0, size()); }

double OpGraph::RangeFwdFlops(int begin, int end) const {
  VARUNA_CHECK(begin >= 0 && begin <= end && end <= size());
  double total = 0.0;
  for (int i = begin; i < end; ++i) {
    total += ops_[static_cast<size_t>(i)].fwd_flops;
  }
  return total;
}

double OpGraph::RangeParams(int begin, int end) const {
  VARUNA_CHECK(begin >= 0 && begin <= end && end <= size());
  double total = 0.0;
  for (int i = begin; i < end; ++i) {
    total += ops_[static_cast<size_t>(i)].param_count;
  }
  return total;
}

OpGraph BuildTransformerOpGraph(const TransformerSpec& spec) {
  OpGraph graph;
  const double h = spec.hidden;
  const double s = spec.seq_len;
  constexpr ParamId kTokenEmbeddingParam = 0;
  ParamId next_param = 1;

  {
    OpNode embedding;
    embedding.name = "embedding";
    embedding.fwd_flops = spec.EmbeddingFwdFlops();
    embedding.param_count = spec.EmbeddingParams();
    embedding.out_activation_bytes = 2.0 * s * h;
    embedding.param_ids = {kTokenEmbeddingParam};
    graph.Add(embedding);
  }

  for (int layer = 0; layer < spec.num_layers; ++layer) {
    // LayerNorm + QKV projection. Output holds Q, K, V: 3 * s * h fp16.
    OpNode qkv;
    qkv.name = "block" + std::to_string(layer) + ".qkv";
    qkv.fwd_flops = 6.0 * s * h * h;
    qkv.param_count = 3.0 * h * h + 3.0 * h + 2.0 * h;  // QKV + one LayerNorm.
    qkv.out_activation_bytes = 3.0 * 2.0 * s * h;
    qkv.param_ids = {next_param++};
    qkv.layer = layer;
    graph.Add(qkv);

    // Attention scores + weighted sum. Output: context s * h, but the scores
    // tensor (s^2 * heads) dominates the live activation.
    OpNode attention;
    attention.name = "block" + std::to_string(layer) + ".attn";
    attention.fwd_flops = 4.0 * s * s * h;
    attention.out_activation_bytes = 2.0 * s * s * spec.heads / 8.0 + 2.0 * s * h;
    attention.layer = layer;
    graph.Add(attention);

    // Attention output projection. Cutting here would have to ship both the
    // projection output and the residual stream (the add happens after), so
    // the crossing activation is two tensors — larger than the block boundary.
    OpNode attn_out;
    attn_out.name = "block" + std::to_string(layer) + ".attn_out";
    attn_out.fwd_flops = 2.0 * s * h * h;
    attn_out.param_count = h * h + h;
    attn_out.out_activation_bytes = 2.0 * 2.0 * s * h;
    attn_out.param_ids = {next_param++};
    attn_out.layer = layer;
    graph.Add(attn_out);

    // MLP up-projection (h -> 4h). Large intermediate activation.
    OpNode mlp_in;
    mlp_in.name = "block" + std::to_string(layer) + ".mlp_in";
    mlp_in.fwd_flops = 8.0 * s * h * h;
    mlp_in.param_count = 4.0 * h * h + 4.0 * h + 2.0 * h;  // + second LayerNorm.
    mlp_in.out_activation_bytes = 4.0 * 2.0 * s * h;
    mlp_in.param_ids = {next_param++};
    mlp_in.layer = layer;
    graph.Add(mlp_in);

    // MLP down-projection (4h -> h). Output is the block boundary: 2 s h bytes,
    // the smallest activation in the block -> the natural cut-point.
    OpNode mlp_out;
    mlp_out.name = "block" + std::to_string(layer) + ".mlp_out";
    mlp_out.fwd_flops = 8.0 * s * h * h;
    mlp_out.param_count = 4.0 * h * h + h;
    mlp_out.out_activation_bytes = 2.0 * s * h;
    mlp_out.param_ids = {next_param++};
    mlp_out.layer = layer;
    graph.Add(mlp_out);
  }

  {
    OpNode head;
    head.name = "lm_head";
    head.fwd_flops = spec.HeadFwdFlops();
    // Tied embeddings: the head reuses the token-embedding parameter (§5.2);
    // untied models own a separate matrix.
    if (spec.tied_embeddings) {
      head.param_ids = {kTokenEmbeddingParam};
    } else {
      head.param_count = static_cast<double>(spec.vocab) * h;
      head.param_ids = {next_param++};
    }
    head.out_activation_bytes = 2.0 * s * spec.vocab;
    graph.Add(head);

    OpNode loss;
    loss.name = "loss";
    loss.fwd_flops = 5.0 * s * spec.vocab;  // Softmax + NLL.
    loss.out_activation_bytes = 4.0;        // Scalar loss.
    graph.Add(loss);
  }

  return graph;
}

}  // namespace varuna
