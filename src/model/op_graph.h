// Profiled operation graph. Varuna's auto-partitioner (§5.1) works on "the
// model profiled for execution times and activation sizes for each operation";
// this is the C++ analogue: an ordered op list with per-op FLOPs, parameters
// and output activation sizes. For transformers the graph is generated from a
// TransformerSpec, mimicking what the dry-run profiler would observe.
#ifndef SRC_MODEL_OP_GRAPH_H_
#define SRC_MODEL_OP_GRAPH_H_

#include <string>
#include <vector>

#include "src/model/transformer.h"

namespace varuna {

using ParamId = int;

struct OpNode {
  std::string name;
  // Forward-pass FLOPs per input example. Backward is ~2x, recompute == forward.
  double fwd_flops = 0.0;
  // Parameter elements owned by this op.
  double param_count = 0.0;
  // fp16 bytes of the op's output activation per input example.
  double out_activation_bytes = 0.0;
  // Parameter identity, for shared-parameter detection (tied embeddings reuse
  // the ParamId of the token embedding at the LM head).
  std::vector<ParamId> param_ids;
  // Block index, or -1 for pre/post ops (embedding, head, loss).
  int layer = -1;
};

class OpGraph {
 public:
  void Add(OpNode op) { ops_.push_back(std::move(op)); }

  int size() const { return static_cast<int>(ops_.size()); }
  const OpNode& op(int i) const { return ops_[static_cast<size_t>(i)]; }
  const std::vector<OpNode>& ops() const { return ops_; }

  double TotalFwdFlops() const;
  double TotalParams() const;

  // Sum of fwd FLOPs of ops [begin, end).
  double RangeFwdFlops(int begin, int end) const;
  double RangeParams(int begin, int end) const;

 private:
  std::vector<OpNode> ops_;
};

// Builds the op graph a profiling dry-run of the transformer would record:
// embedding, then per block {qkv, attention, attn-out, mlp-in, mlp-out}, then
// the (tied) LM head and loss. Intra-block activations are larger than block
// boundaries, so boundaries are the natural cut-points.
OpGraph BuildTransformerOpGraph(const TransformerSpec& spec);

}  // namespace varuna

#endif  // SRC_MODEL_OP_GRAPH_H_
