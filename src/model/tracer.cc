#include "src/model/tracer.h"

#include <map>
#include <set>

#include "src/common/check.h"

namespace varuna {

double TraceReport::TotalSyncBytes() const {
  double total = 0.0;
  for (const auto& tensor : shared) {
    total += tensor.sync_bytes;
  }
  return total;
}

TraceReport TraceCrossPartitionState(const OpGraph& graph, const ModelSections& sections,
                                     const TraceOptions& options) {
  const int k = sections.num_sections();

  // Dry run: walk ops in order, track which section each op belongs to, and
  // record which sections touch each ParamId. param_bytes records the fp32
  // gradient size to allreduce when the parameter turns out to be shared.
  std::map<ParamId, std::set<int>> param_sections;
  std::map<ParamId, double> param_bytes;
  std::map<ParamId, std::string> param_owner_name;
  int section = 0;
  for (int i = 0; i < graph.size(); ++i) {
    while (section + 1 < k && i >= sections.boundaries[static_cast<size_t>(section) + 1]) {
      ++section;
    }
    const OpNode& op = graph.op(i);
    for (const ParamId id : op.param_ids) {
      param_sections[id].insert(section);
      // The op that declares a nonzero parameter count owns the storage; ops
      // that reuse the id (tied head) contribute no extra bytes.
      if (op.param_count > 0.0) {
        param_bytes[id] += 4.0 * op.param_count;  // fp32 master gradient.
        param_owner_name[id] = op.name;
      }
    }
  }

  TraceReport report;
  for (const auto& [id, used_by] : param_sections) {
    if (used_by.size() <= 1) {
      continue;
    }
    SharedTensor tensor;
    tensor.name = "tied:" + (param_owner_name.count(id) ? param_owner_name[id]
                                                        : "param" + std::to_string(id));
    tensor.sections.assign(used_by.begin(), used_by.end());
    tensor.sync_bytes = param_bytes.count(id) ? param_bytes[id] : 0.0;
    tensor.kind = SharedTensor::Kind::kTiedParameter;
    report.shared.push_back(tensor);
  }

  std::vector<int> all_sections(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    all_sections[static_cast<size_t>(i)] = i;
  }
  if (options.mixed_precision_loss_scaler) {
    // APEX tracks a per-step overflow flag; with partitions, one stage may
    // overflow while others do not, so the flag becomes a pipeline-group
    // allreduce of one scalar (§5.2).
    SharedTensor tensor;
    tensor.name = "library:loss_scale_overflow_flag";
    tensor.sections = all_sections;
    tensor.sync_bytes = 4.0;
    tensor.kind = SharedTensor::Kind::kLibraryGlobal;
    report.shared.push_back(tensor);
  }
  if (options.global_norm_optimizer) {
    // NVLAMB's global norm is a sum of squared gradients across all layers.
    SharedTensor tensor;
    tensor.name = "library:global_grad_norm";
    tensor.sections = all_sections;
    tensor.sync_bytes = 4.0;
    tensor.kind = SharedTensor::Kind::kLibraryGlobal;
    report.shared.push_back(tensor);
  }
  return report;
}

}  // namespace varuna
