// Cross-partition dependency tracer (§5.2). During a dry run, every tensor is
// marked with the cut-point section that created it; any use spanning sections
// is flagged and must be synchronized (allreduced over the pipeline process
// group) every mini-batch. This catches:
//   * tied weights (GPT-2/BERT embedding reused by the LM head),
//   * library state hidden from the model author: APEX-style loss-scale
//     overflow flags, NVLAMB-style global gradient norms.
#ifndef SRC_MODEL_TRACER_H_
#define SRC_MODEL_TRACER_H_

#include <string>
#include <vector>

#include "src/model/cutpoints.h"
#include "src/model/op_graph.h"

namespace varuna {

struct TraceOptions {
  // Mixed-precision loss scaling (APEX): each partition produces an overflow
  // flag that the scaler combines globally.
  bool mixed_precision_loss_scaler = true;
  // NVLAMB-style optimizer using a global gradient norm across all layers.
  bool global_norm_optimizer = false;
};

// One tensor that crosses partition boundaries and must be synchronized.
struct SharedTensor {
  std::string name;
  // Sections whose processes must participate in the sync. For tied weights
  // these are the owning sections; library globals involve every section.
  std::vector<int> sections;
  // Bytes allreduced per mini-batch (gradient for weights, scalars for flags).
  double sync_bytes = 0.0;
  enum class Kind { kTiedParameter, kLibraryGlobal } kind = Kind::kTiedParameter;
};

struct TraceReport {
  std::vector<SharedTensor> shared;
  // Total bytes allreduced over the pipeline group per mini-batch.
  double TotalSyncBytes() const;
};

// Dry-runs the graph against the section assignment and reports every
// cross-partition dependency.
TraceReport TraceCrossPartitionState(const OpGraph& graph, const ModelSections& sections,
                                     const TraceOptions& options = {});

}  // namespace varuna

#endif  // SRC_MODEL_TRACER_H_
