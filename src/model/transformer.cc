#include "src/model/transformer.h"

namespace varuna {

double TransformerSpec::LayerParams() const {
  const double h = hidden;
  return 12.0 * h * h + 13.0 * h;
}

double TransformerSpec::EmbeddingParams() const {
  return static_cast<double>(vocab) * hidden + static_cast<double>(seq_len) * hidden;
}

double TransformerSpec::TotalParams() const {
  double params = num_layers * LayerParams() + EmbeddingParams();
  if (!tied_embeddings) {
    params += static_cast<double>(vocab) * hidden;  // Separate LM head.
  }
  return params;
}

double TransformerSpec::LayerFwdFlops() const {
  const double h = hidden;
  const double s = seq_len;
  return 24.0 * s * h * h + 4.0 * s * s * h;
}

double TransformerSpec::EmbeddingFwdFlops() const {
  // Table lookup + positional add: ~2 FLOPs per element.
  return 2.0 * seq_len * static_cast<double>(hidden);
}

double TransformerSpec::HeadFwdFlops() const {
  // Logits matmul: s x h times h x vocab.
  return 2.0 * seq_len * static_cast<double>(hidden) * vocab;
}

double TransformerSpec::TotalFwdFlops() const {
  return num_layers * LayerFwdFlops() + EmbeddingFwdFlops() + HeadFwdFlops();
}

double TransformerSpec::BoundaryActivationBytes() const {
  return 2.0 * seq_len * static_cast<double>(hidden);
}

double TransformerSpec::IntraLayerAllReduceBytes() const {
  return 2.0 * 2.0 * seq_len * static_cast<double>(hidden);
}

namespace {

TransformerSpec Make(std::string name, int layers, int hidden, int seq, int heads) {
  TransformerSpec spec;
  spec.name = std::move(name);
  spec.num_layers = layers;
  spec.hidden = hidden;
  spec.seq_len = seq;
  spec.heads = heads;
  return spec;
}

}  // namespace

TransformerSpec BertLarge() {
  TransformerSpec spec = Make("BERT-large-340M", 24, 1024, 512, 16);
  spec.vocab = 30522;
  return spec;
}

TransformerSpec Bert72() {
  // Phase-1 BERT pre-training sequence length (128): the GPipe comparison's
  // absolute throughput in the paper implies this setting.
  TransformerSpec spec = Make("BERT-72", 72, 1024, 128, 16);
  spec.vocab = 30522;
  return spec;
}

TransformerSpec Gpt2Medium() { return Make("GPT-2-355M", 24, 1024, 1024, 16); }

TransformerSpec Gpt2_2_5B() { return Make("GPT-2-2.5B", 54, 1920, 1024, 20); }

TransformerSpec Gpt2_8_3B() { return Make("GPT-2-8.3B", 72, 3072, 1024, 32); }

TransformerSpec Gpt2_20B() { return Make("GPT-2-20B", 96, 4160, 1024, 32); }

TransformerSpec Gpt2_200B() { return Make("GPT-2-200B", 100, 12960, 1024, 96); }

}  // namespace varuna
