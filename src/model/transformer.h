// Analytic transformer model descriptions for every workload in the paper's
// evaluation (§7): BERT-large, BERT-72, and GPT-2 at 355M / 2.5B / 8.3B /
// 20B / 200B parameters. Parameter counts, FLOPs and activation sizes follow
// the standard decoder-block arithmetic; the paper's own figures (3.75 MB
// boundary activation per example for GPT-2 2.5B, 2.4 GB/example/GPU
// intra-layer transfer) are reproduced by these formulas and locked in tests.
#ifndef SRC_MODEL_TRANSFORMER_H_
#define SRC_MODEL_TRANSFORMER_H_

#include <string>

namespace varuna {

struct TransformerSpec {
  std::string name;
  int num_layers = 0;
  int hidden = 0;
  int seq_len = 0;
  int vocab = 50257;
  int heads = 16;
  // GPT-2/BERT tie the input embedding and the LM head (§5.2).
  bool tied_embeddings = true;

  // Parameters per transformer block: 12 h^2 + 13 h
  // (QKV 3h^2+3h, attn-out h^2+h, MLP 8h^2+5h, 2 LayerNorms 4h).
  double LayerParams() const;
  double EmbeddingParams() const;  // Token (vocab*h) + positional (seq*h).
  double TotalParams() const;

  // Forward FLOPs per example per block: 24 s h^2 + 4 s^2 h.
  double LayerFwdFlops() const;
  // Embedding lookup + LM head matmul, per example.
  double EmbeddingFwdFlops() const;
  double HeadFwdFlops() const;
  double TotalFwdFlops() const;  // Per example, whole model.

  // fp16 activation crossing a block boundary, per example: 2 s h bytes.
  // (For GPT-2 2.5B this is 3.75 MiB, as quoted in §3.1.)
  double BoundaryActivationBytes() const;

  // Bytes a Megatron-style intra-layer partition moves per allreduce per
  // example: 2 * s * h fp16 values = 4 s h bytes (§3.1, Observation 1).
  double IntraLayerAllReduceBytes() const;
};

// Factory functions for the paper's workloads.
TransformerSpec BertLarge();   // 340M, 24 layers, h=1024, s=512.
TransformerSpec Bert72();      // 72 layers, h=1024, s=512 (GPipe comparison, §7.1.2).
TransformerSpec Gpt2Medium();  // 355M, 24 layers, h=1024, s=1024 (Fig. 10).
TransformerSpec Gpt2_2_5B();   // 54 layers, h=1920, s=1024.
TransformerSpec Gpt2_8_3B();   // 72 layers, h=3072, s=1024.
TransformerSpec Gpt2_20B();    // 96 layers, h=4160, s=1024.
TransformerSpec Gpt2_200B();   // 100 layers, h=12960, s=1024.

}  // namespace varuna

#endif  // SRC_MODEL_TRANSFORMER_H_
