#include "src/morph/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.h"
#include "src/common/stats.h"

namespace varuna {
namespace {

// Piecewise-linear lookup over the profiled (m, seconds) points; linear
// extrapolation from the outermost segment.
double Interpolate(const std::map<int, double>& points, int m) {
  VARUNA_CHECK(!points.empty());
  if (points.size() == 1) {
    // Single point: assume proportionality in m.
    return points.begin()->second * m / points.begin()->first;
  }
  auto upper = points.lower_bound(m);
  if (upper == points.end()) {
    --upper;
  }
  if (upper == points.begin()) {
    ++upper;
  }
  auto lower = std::prev(upper);
  const double x0 = lower->first;
  const double y0 = lower->second;
  const double x1 = upper->first;
  const double y1 = upper->second;
  return y0 + (y1 - y0) * (m - x0) / (x1 - x0);
}

}  // namespace

double Calibration::ForwardTime(int section, int m) const {
  return Interpolate(sections[static_cast<size_t>(section)].forward_s, m);
}

double Calibration::BackwardTime(int section, int m) const {
  return Interpolate(sections[static_cast<size_t>(section)].backward_s, m);
}

double Calibration::SendTime(int section, int m, bool cross_node) const {
  const SectionCalibration& calib = sections[static_cast<size_t>(section)];
  return Interpolate(cross_node ? calib.send_inter_s : calib.send_intra_s, m);
}

Result<Calibration> Calibrate(const ModelSections& sections, const Cluster& cluster,
                              const CalibrationOptions& options, Rng* rng) {
  const std::vector<GpuId> pool = cluster.ActiveGpus();
  if (pool.size() < 4) {
    return Result<Calibration>::Error("calibration needs at least 4 active GPUs");
  }
  // Pick a cross-node GPU pair for network micro-benchmarks.
  GpuId local = pool[0];
  GpuId remote = -1;
  GpuId neighbor = -1;  // Same node as `local`, if the node has several GPUs.
  for (const GpuId gpu : pool) {
    if (gpu == local) {
      continue;
    }
    if (cluster.topology().SameNode(local, gpu)) {
      neighbor = gpu;
    } else if (remote < 0) {
      remote = gpu;
    }
  }
  if (remote < 0) {
    return Result<Calibration>::Error("calibration needs GPUs on at least two nodes");
  }
  const int gpus_per_node = cluster.topology().Node(cluster.topology().NodeOf(local)).num_gpus;
  const GpuSpec& gpu = cluster.Gpu(local);

  Calibration calibration;
  int64_t stall_count = 0;
  int64_t transfer_count = 0;
  double stall_excess_sum = 0.0;
  double stall_threshold_sum = 0.0;
  calibration.microbatch_sizes = options.microbatch_sizes;
  std::sort(calibration.microbatch_sizes.begin(), calibration.microbatch_sizes.end());
  calibration.sections.resize(static_cast<size_t>(sections.num_sections()));

  // --- F_i(m), B_i(m): run a few mocked micro-batches per section (random
  // inputs standing in for the previous stage, §4.3) and average. These are
  // measurements of the *testbed's* noisy execution, not formula lookups.
  for (int i = 0; i < sections.num_sections(); ++i) {
    SectionCalibration& section = calibration.sections[static_cast<size_t>(i)];
    section.params = sections.params[static_cast<size_t>(i)];
    for (const int m : calibration.microbatch_sizes) {
      RunningStats fwd;
      RunningStats bwd;
      for (int run = 0; run < options.samples; ++run) {
        const double fwd_base = gpu.ComputeTime(sections.fwd_flops[static_cast<size_t>(i)] * m);
        const double bwd_base =
            gpu.ComputeTime(2.0 * sections.fwd_flops[static_cast<size_t>(i)] * m);
        fwd.Add(options.compute_noise_sigma > 0.0
                    ? rng->LogNormalMedian(fwd_base, options.compute_noise_sigma)
                    : fwd_base);
        bwd.Add(options.compute_noise_sigma > 0.0
                    ? rng->LogNormalMedian(bwd_base, options.compute_noise_sigma)
                    : bwd_base);
      }
      section.forward_s[m] = fwd.mean();
      section.backward_s[m] = bwd.mean();
    }

    // --- Act/Grad transfer latencies for the section's boundary activation,
    // measured with the node's k flows in flight (k = GPUs per node). The
    // sample set is split into a typical component (stored per m) and a tail
    // (stall) component pooled across sections.
    const double act_bytes = sections.boundary_activation_bytes[static_cast<size_t>(i)];
    for (const int m : calibration.microbatch_sizes) {
      std::vector<double> samples;
      samples.reserve(static_cast<size_t>(options.network_samples));
      for (int run = 0; run < options.network_samples; ++run) {
        samples.push_back(cluster.network().SampleTransferTime(local, remote, act_bytes * m,
                                                               gpus_per_node, rng));
      }
      const double typical = Percentile(samples, 0.5);
      const double stall_threshold = 1.5 * typical + 0.05;
      RunningStats body;
      for (const double sample : samples) {
        if (sample > stall_threshold) {
          ++stall_count;
          stall_excess_sum += sample - typical;
          stall_threshold_sum += stall_threshold - typical;
        } else {
          body.Add(sample);
        }
        ++transfer_count;
      }
      calibration.sections[static_cast<size_t>(i)].send_inter_s[m] = body.mean();
      RunningStats intra;
      if (neighbor >= 0) {
        for (int run = 0; run < options.samples; ++run) {
          intra.Add(cluster.network().SampleTransferTime(local, neighbor, act_bytes * m,
                                                         gpus_per_node, rng));
        }
      } else {
        intra.Add(body.mean());  // 1-GPU VMs: every hop is cross-node anyway.
      }
      calibration.sections[static_cast<size_t>(i)].send_intra_s[m] = intra.mean();
    }
  }
  if (transfer_count > 0 && stall_count > 0) {
    calibration.send_stall_probability =
        static_cast<double>(stall_count) / static_cast<double>(transfer_count);
    calibration.send_stall_mean_s = stall_excess_sum / static_cast<double>(stall_count);
    calibration.send_stall_offset_s = stall_threshold_sum / static_cast<double>(stall_count);
    calibration.send_stall_scale_s =
        std::max(1e-6, calibration.send_stall_mean_s - calibration.send_stall_offset_s);
  }

  // --- AR_i(D): profile a gradient-sized allreduce at two ring sizes with k
  // rings in flight, then fit the two-parameter ring model so any D can be
  // predicted without further profiling (scale invariance).
  std::vector<GpuId> cross_node_pool;
  NodeId last_node = -1;
  for (const GpuId g : pool) {
    const NodeId node = cluster.topology().NodeOf(g);
    if (node != last_node) {
      cross_node_pool.push_back(g);
      last_node = node;
    }
  }
  if (cross_node_pool.size() < 2) {
    return Result<Calibration>::Error("calibration needs GPUs on at least two nodes");
  }
  const double probe_bytes = 2.0 * calibration.sections[1 % sections.num_sections()].params;
  auto measure_ring = [&](int size) {
    std::vector<GpuId> ring;
    for (int i = 0; i < size; ++i) {
      ring.push_back(cross_node_pool[static_cast<size_t>(i) % cross_node_pool.size()]);
    }
    RunningStats stats;
    for (int run = 0; run < options.samples; ++run) {
      stats.Add(cluster.network().SampleAllReduceTime(ring, probe_bytes, gpus_per_node, rng));
    }
    return stats.mean();
  };
  // The tail term reuses the per-message stall statistics profiled above —
  // a ring step stalls when any of its D messages does.
  calibration.allreduce.stall_probability = calibration.send_stall_probability;
  calibration.allreduce.stall_mean_s = calibration.send_stall_mean_s;
  const int d1 = 2;
  const int d2 = std::min<int>(4, static_cast<int>(cross_node_pool.size()));
  const double ar1 = measure_ring(d1);
  if (d2 > d1) {
    const double ar2 = measure_ring(d2);
    // Solve AR/(2(D-1)) = S/(D*bw) + lat0 + tail(D) for (bw, lat0).
    const double lhs1 = ar1 / (2.0 * (d1 - 1)) - calibration.allreduce.StepTail(d1);
    const double lhs2 = ar2 / (2.0 * (d2 - 1)) - calibration.allreduce.StepTail(d2);
    const double inv_bw =
        (lhs1 - lhs2) / (probe_bytes * (1.0 / d1 - 1.0 / d2));
    calibration.allreduce.bandwidth_bps = inv_bw > 0.0 ? 1.0 / inv_bw : 1e12;
    calibration.allreduce.step_latency_s =
        std::max(0.0, lhs1 - probe_bytes / (d1 * calibration.allreduce.bandwidth_bps));
  } else {
    calibration.allreduce.bandwidth_bps = probe_bytes / std::max(ar1 / 2.0, 1e-9);
    calibration.allreduce.step_latency_s = 0.0;
  }

  return calibration;
}

uint64_t Calibration::Fingerprint() const {
  // FNV-1a, matching the determinism harness's hashing discipline: doubles
  // enter via their raw bit pattern, so two calibrations fingerprint equal
  // iff they are bit-identical.
  uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffULL;
      hash *= 1099511628211ULL;
    }
  };
  const auto mix_double = [&mix](double value) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  const auto mix_map = [&](const std::map<int, double>& points) {
    mix(points.size());
    for (const auto& [m, seconds] : points) {
      mix(static_cast<uint64_t>(m));
      mix_double(seconds);
    }
  };
  mix(sections.size());
  for (const SectionCalibration& section : sections) {
    mix_map(section.forward_s);
    mix_map(section.backward_s);
    mix_map(section.send_intra_s);
    mix_map(section.send_inter_s);
    mix_double(section.params);
  }
  mix_double(allreduce.bandwidth_bps);
  mix_double(allreduce.step_latency_s);
  mix_double(allreduce.stall_probability);
  mix_double(allreduce.stall_mean_s);
  mix(microbatch_sizes.size());
  for (const int m : microbatch_sizes) {
    mix(static_cast<uint64_t>(m));
  }
  mix_double(send_stall_probability);
  mix_double(send_stall_mean_s);
  mix_double(send_stall_offset_s);
  mix_double(send_stall_scale_s);
  return hash;
}

}  // namespace varuna
