// Scale-invariant calibration (§4.3, Table 2). A one-time profiling step
// measures primitive, mutually-orthogonal parameters on a *small sample* of
// the cluster — per-cut-point compute times F_i(m)/B_i(m), activation and
// gradient transfer latencies (intra- and cross-node, including jitter), and
// a ring-allreduce model fitted from a few ring sizes. The parameters are
// independent of the total GPU count G, so they are measured once at job
// start and reused across every morphing decision.
#ifndef SRC_MORPH_CALIBRATION_H_
#define SRC_MORPH_CALIBRATION_H_

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/model/cutpoints.h"

namespace varuna {

// Measurements for one cut-point section C_i.
struct SectionCalibration {
  // Micro-batch size -> measured seconds (mean over profiling runs).
  std::map<int, double> forward_s;
  std::map<int, double> backward_s;
  // Activation/gradient transfer time for this section's boundary at size m.
  // Cross-node times include mean latency and jitter (Table 2 note).
  std::map<int, double> send_intra_s;
  std::map<int, double> send_inter_s;
  double params = 0.0;
};

// Ring-allreduce model fitted from profiled runs at two ring sizes:
//   AR(D, S) = 2 (D-1) (S / (D * bw) + lat0 + stall_mean * (1 - (1-p)^D)).
// The last term is the tail amplification: each synchronous step waits on the
// slowest of D concurrent hops, so per-message stalls (probability p,
// profiled from the transfer micro-benchmarks) hit nearly every step once D
// is large — the cost that makes wide data parallelism expensive on
// commodity networks (Observation 2).
struct AllReduceModel {
  double bandwidth_bps = 1.0;
  double step_latency_s = 0.0;
  double stall_probability = 0.0;
  double stall_mean_s = 0.0;

  double StepTail(int ring_size) const {
    if (stall_probability <= 0.0) {
      return 0.0;
    }
    // 0.35: fraction of a stall a chunk-pipelined ring cannot hide (matches
    // the testbed's ring model).
    return 0.35 * stall_mean_s *
           (1.0 - std::pow(1.0 - stall_probability, static_cast<double>(ring_size)));
  }

  double Predict(double bytes, int ring_size) const {
    if (ring_size <= 1 || bytes <= 0.0) {
      return 0.0;
    }
    const double d = ring_size;
    return 2.0 * (d - 1.0) *
           (bytes / (d * bandwidth_bps) + step_latency_s + StepTail(ring_size));
  }
};

struct Calibration {
  std::vector<SectionCalibration> sections;
  AllReduceModel allreduce;
  // Micro-batch sizes that were profiled (ascending).
  std::vector<int> microbatch_sizes;
  // Tail behaviour of cross-node transfers: with probability
  // `send_stall_probability` a transfer takes an extra `send_stall_mean_s`
  // (TCP retransmission timeouts). Profiled from the same micro-benchmarks;
  // the fast simulator replays the tail because stalls on the
  // gradient-dependency chain do not average out (Table 2: times "include
  // mean latency and jitter").
  double send_stall_probability = 0.0;
  double send_stall_mean_s = 0.0;    // Mean excess of a detected stall.
  // Detected stalls decompose as detection-threshold offset + an exponential
  // tail; replaying the exact conditional distribution matters because path
  // impact is convex in stall size.
  double send_stall_offset_s = 0.0;
  double send_stall_scale_s = 0.0;

  // Linear interpolation/extension over the profiled m values.
  double ForwardTime(int section, int m) const;
  double BackwardTime(int section, int m) const;
  double SendTime(int section, int m, bool cross_node) const;

  // FNV-1a over every calibrated scalar (doubles hashed via their IEEE-754
  // bits). Memoized search results are keyed on this, so *any* recalibration
  // — even one changing a single profiled point — invalidates them.
  uint64_t Fingerprint() const;
};

struct CalibrationOptions {
  std::vector<int> microbatch_sizes = {1, 2, 4, 8, 16};
  // Profiling runs averaged per measurement ("a few micro-batches", §4.3).
  int samples = 5;
  // Network micro-benchmarks are cheap; more samples pin down the tail.
  int network_samples = 200;
  // Compute-noise the testbed exhibits; profiled times inherit it.
  double compute_noise_sigma = 0.01;
};

// Runs the calibration micro-benchmarks against the cluster sample. Needs at
// least 4 active GPUs (2 nodes) to measure cross-node paths and fit the
// allreduce model; fails otherwise.
Result<Calibration> Calibrate(const ModelSections& sections, const Cluster& cluster,
                              const CalibrationOptions& options, Rng* rng);

}  // namespace varuna

#endif  // SRC_MORPH_CALIBRATION_H_
