#include "src/morph/config_search.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/check.h"
#include "src/morph/fast_sim.h"

namespace varuna {

int ConfigSearch::PickMicrobatchSize(double tolerance) const {
  const std::vector<int>& sizes = calibration_->microbatch_sizes;
  VARUNA_CHECK(!sizes.empty());
  // Probe an interior cut-point (homogeneous-block models: any block works).
  const int section = sections_->num_sections() > 2 ? 1 : 0;
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    const double per_example = calibration_->ForwardTime(section, sizes[i]) / sizes[i];
    const double next_per_example =
        calibration_->ForwardTime(section, sizes[i + 1]) / sizes[i + 1];
    if (per_example - next_per_example <= tolerance * per_example) {
      return sizes[i];
    }
  }
  return sizes.back();
}

bool ConfigSearch::StageMemoryFits(const Partition& partition, int m, int num_microbatches,
                                   const SearchConstraints& constraints) const {
  const double block_full_act = BlockFullActivationBytes(*spec_);
  const double blocks_per_section =
      static_cast<double>(spec_->num_layers) / sections_->num_sections();
  for (int stage = 0; stage < partition.depth(); ++stage) {
    const int begin = partition.stage_begin[static_cast<size_t>(stage)];
    const int end = partition.stage_begin[static_cast<size_t>(stage) + 1];
    MemoryModelInputs inputs;
    inputs.stage_params = partition.stage_params[static_cast<size_t>(stage)];
    inputs.input_activation_bytes_per_example =
        stage == 0 ? 4.0 * spec_->seq_len : spec_->BoundaryActivationBytes();
    inputs.full_activation_bytes_per_example = block_full_act * blocks_per_section * (end - begin);
    inputs.microbatch_size = m;
    inputs.num_microbatches = num_microbatches;
    inputs.pipeline_depth = partition.depth();
    inputs.stage_index = stage;
    inputs.cpu_offload_optimizer = constraints.cpu_offload_optimizer;
    if (!Fits(EstimateStageMemory(ScheduleKind::kVaruna, inputs), constraints.budget)) {
      return false;
    }
  }
  return true;
}

Result<std::vector<JobConfig>> ConfigSearch::Sweep(int gpus,
                                                   const SearchConstraints& constraints) const {
  VARUNA_CHECK_GT(constraints.total_batch, 0.0);
  if (gpus < 1) {
    return Result<std::vector<JobConfig>>::Error("no GPUs available");
  }
  const int m = PickMicrobatchSize(constraints.microbatch_tolerance);
  const int max_depth = std::min(gpus, sections_->num_sections());

  std::vector<JobConfig> feasible;
  FastSimulator simulator(calibration_);
  for (int depth = 1; depth <= max_depth; ++depth) {
    Result<Partition> partition = PartitionModel(*sections_, depth);
    if (!partition.ok()) {
      continue;
    }
    const int replicas = gpus / depth;
    if (replicas < 1) {
      continue;
    }
    const int num_microbatches = static_cast<int>(
        std::ceil(constraints.total_batch / (static_cast<double>(m) * replicas)));
    if (!StageMemoryFits(partition.value(), m, num_microbatches, constraints)) {
      continue;  // Depth too shallow: a stage does not fit in GPU memory.
    }

    const Schedule schedule = GenerateSchedule(ScheduleKind::kVaruna, depth, num_microbatches);
    FastSimConfig sim_config;
    sim_config.sections = sections_;
    sim_config.partition = &partition.value();
    sim_config.data_parallel = replicas;
    sim_config.microbatch_size = m;
    sim_config.gpus_per_node = constraints.gpus_per_node;
    sim_config.shared_sync_bytes = constraints.shared_sync_bytes;
    const FastSimResult sim = simulator.EstimateMinibatch(schedule, sim_config);

    JobConfig config;
    config.pipeline_depth = depth;
    config.data_parallel = replicas;
    config.microbatch_size = m;
    config.num_microbatches = num_microbatches;
    config.est_minibatch_s = sim.minibatch_s;
    config.est_examples_per_s = config.ActualBatch() / sim.minibatch_s;
    config.gpus_used = depth * replicas;
    feasible.push_back(config);
  }
  if (feasible.empty()) {
    std::ostringstream message;
    message << "no feasible configuration for " << gpus << " GPUs (model " << spec_->name
            << ", m=" << m << ")";
    return Result<std::vector<JobConfig>>::Error(message.str());
  }
  return feasible;
}

Result<JobConfig> ConfigSearch::Best(int gpus, const SearchConstraints& constraints) const {
  Result<std::vector<JobConfig>> sweep = Sweep(gpus, constraints);
  if (!sweep.ok()) {
    return Result<JobConfig>::Error(sweep.error());
  }
  const std::vector<JobConfig>& configs = sweep.value();
  const JobConfig* best = &configs[0];
  for (const JobConfig& candidate : configs) {
    // M_total is fixed, so maximising throughput == minimising the time to
    // process one mini-batch's worth of examples.
    if (candidate.est_examples_per_s > best->est_examples_per_s) {
      best = &candidate;
    }
  }
  return *best;
}

}  // namespace varuna
