#include "src/morph/config_search.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "src/common/check.h"

namespace varuna {

int ConfigSearch::PickMicrobatchSize(double tolerance) const {
  const std::vector<int>& sizes = calibration_->microbatch_sizes;
  VARUNA_CHECK(!sizes.empty());
  // Probe an interior cut-point (homogeneous-block models: any block works).
  const int section = sections_->num_sections() > 2 ? 1 : 0;
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    const double per_example = calibration_->ForwardTime(section, sizes[i]) / sizes[i];
    const double next_per_example =
        calibration_->ForwardTime(section, sizes[i + 1]) / sizes[i + 1];
    if (per_example - next_per_example <= tolerance * per_example) {
      return sizes[i];
    }
  }
  return sizes.back();
}

std::vector<int> ConfigSearch::PickMicrobatchCandidates(double tolerance,
                                                        int max_candidates) const {
  const std::vector<int>& sizes = calibration_->microbatch_sizes;
  const int saturating = PickMicrobatchSize(tolerance);
  std::vector<int> candidates;
  // The saturating m maximises Nm (least bubble, least memory) at near-best
  // per-example compute; larger profiled sizes trade bubble fraction for
  // compute efficiency — which side wins depends on P, so both are swept.
  // Sizes below saturation are dominated (worse per-example compute AND no
  // bubble advantage over the saturating m is large enough to matter) and are
  // skipped, keeping the sweep O(G * max_candidates).
  for (const int m : sizes) {
    if (m < saturating || static_cast<int>(candidates.size()) >= std::max(1, max_candidates)) {
      continue;
    }
    candidates.push_back(m);
  }
  if (candidates.empty()) {
    candidates.push_back(saturating);
  }
  return candidates;
}

bool ConfigSearch::StageMemoryFits(const Partition& partition, int m, int num_microbatches,
                                   const SearchConstraints& constraints) const {
  const double block_full_act = BlockFullActivationBytes(*spec_);
  const double blocks_per_section =
      static_cast<double>(spec_->num_layers) / sections_->num_sections();
  for (int stage = 0; stage < partition.depth(); ++stage) {
    const int begin = partition.stage_begin[static_cast<size_t>(stage)];
    const int end = partition.stage_begin[static_cast<size_t>(stage) + 1];
    MemoryModelInputs inputs;
    inputs.stage_params = partition.stage_params[static_cast<size_t>(stage)];
    inputs.input_activation_bytes_per_example =
        stage == 0 ? 4.0 * spec_->seq_len : spec_->BoundaryActivationBytes();
    inputs.full_activation_bytes_per_example = block_full_act * blocks_per_section * (end - begin);
    inputs.microbatch_size = m;
    inputs.num_microbatches = num_microbatches;
    inputs.pipeline_depth = partition.depth();
    inputs.stage_index = stage;
    inputs.cpu_offload_optimizer = constraints.cpu_offload_optimizer;
    if (!Fits(EstimateStageMemory(ScheduleKind::kVaruna, inputs), constraints.budget)) {
      return false;
    }
  }
  return true;
}

std::vector<JobConfig> ConfigSearch::EvaluateDepth(int depth, int gpus,
                                                   const std::vector<int>& ms,
                                                   const SearchConstraints& constraints,
                                                   FastSimulator* simulator) const {
  std::vector<JobConfig> feasible;
  const Result<Partition> partition = PartitionModel(*sections_, depth);
  if (!partition.ok()) {
    return feasible;
  }
  const int replicas = gpus / depth;
  if (replicas < 1) {
    return feasible;
  }
  for (const int m : ms) {
    const int num_microbatches = static_cast<int>(
        std::ceil(constraints.total_batch / (static_cast<double>(m) * replicas)));
    if (!StageMemoryFits(partition.value(), m, num_microbatches, constraints)) {
      continue;  // Depth too shallow for this m: a stage does not fit in GPU memory.
    }

    const Schedule& schedule =
        schedule_cache_.Get(ScheduleKind::kVaruna, depth, num_microbatches);
    FastSimConfig sim_config;
    sim_config.sections = sections_;
    sim_config.partition = &partition.value();
    sim_config.data_parallel = replicas;
    sim_config.microbatch_size = m;
    sim_config.gpus_per_node = constraints.gpus_per_node;
    sim_config.shared_sync_bytes = constraints.shared_sync_bytes;
    const FastSimResult sim = simulator->EstimateMinibatch(schedule, sim_config);

    JobConfig config;
    config.pipeline_depth = depth;
    config.data_parallel = replicas;
    config.microbatch_size = m;
    config.num_microbatches = num_microbatches;
    config.est_minibatch_s = sim.minibatch_s;
    config.est_examples_per_s = config.ActualBatch() / sim.minibatch_s;
    config.gpus_used = depth * replicas;
    feasible.push_back(config);
  }
  return feasible;
}

ConfigSearch::SweepKey ConfigSearch::MakeSweepKey(int gpus,
                                                  const SearchConstraints& constraints) const {
  return SweepKey{gpus,
                  calibration_->Fingerprint(),
                  constraints.total_batch,
                  constraints.budget.gpu_memory_bytes,
                  constraints.budget.usable_fraction,
                  constraints.gpus_per_node,
                  constraints.shared_sync_bytes,
                  constraints.cpu_offload_optimizer,
                  constraints.microbatch_tolerance,
                  constraints.microbatch_candidates};
}

Result<std::vector<JobConfig>> ConfigSearch::Sweep(int gpus,
                                                   const SearchConstraints& constraints) const {
  VARUNA_CHECK_GT(constraints.total_batch, 0.0);
  const auto infeasible = [&] {
    std::ostringstream message;
    message << "no feasible configuration for " << gpus << " GPUs (model " << spec_->name
            << ")";
    return Result<std::vector<JobConfig>>::Error(message.str());
  };
  if (gpus < 1) {
    return Result<std::vector<JobConfig>>::Error("no GPUs available");
  }
  std::unique_lock<std::mutex> sweep_lock(sweep_mutex_);

  // Memo lookup: the key covers every input of the sweep (G, the calibration
  // fingerprint, all constraint fields), so a hit is exact — the cached
  // vector is the bit-identical result a fresh sweep would produce.
  const SweepKey key = MakeSweepKey(gpus, constraints);
  int workers = 1;
  {
    std::unique_lock<std::mutex> lock(cache_mutex_);
    ++stats_.sweeps;
    const auto it = sweep_cache_.find(key);
    if (it != sweep_cache_.end()) {
      ++stats_.sweep_cache_hits;
      if (it->second.empty()) {
        return infeasible();
      }
      return it->second;
    }
    ++stats_.sweep_cache_misses;
    workers = (pool_ != nullptr) ? pool_->num_threads() : 1;
    if (static_cast<int>(simulators_.size()) < workers) {
      simulators_.resize(static_cast<size_t>(workers), FastSimulator(calibration_));
    }
  }

  const std::vector<int> ms =
      PickMicrobatchCandidates(constraints.microbatch_tolerance, constraints.microbatch_candidates);
  const int max_depth = std::min(gpus, sections_->num_sections());

  // Fan out across candidate depths (each is an independent pure function of
  // the depth), join, then merge in ascending depth order — the output is
  // bit-identical to the serial loop regardless of worker interleaving.
  std::vector<std::vector<JobConfig>> per_depth(static_cast<size_t>(max_depth));
  const auto evaluate = [&](int item, int worker) {
    per_depth[static_cast<size_t>(item)] =
        EvaluateDepth(item + 1, gpus, ms, constraints, &simulators_[static_cast<size_t>(worker)]);
  };
  if (pool_ != nullptr && pool_->num_threads() > 1 && max_depth > 1) {
    pool_->ParallelFor(max_depth, evaluate);
  } else {
    for (int item = 0; item < max_depth; ++item) {
      evaluate(item, 0);
    }
  }

  std::vector<JobConfig> feasible;
  for (std::vector<JobConfig>& configs : per_depth) {
    feasible.insert(feasible.end(), configs.begin(), configs.end());
  }
  {
    std::unique_lock<std::mutex> lock(cache_mutex_);
    // Every simulated candidate yields exactly one JobConfig.
    stats_.candidates_simulated += feasible.size();
    sweep_cache_.emplace(key, feasible);
  }
  if (feasible.empty()) {
    return infeasible();
  }
  return feasible;
}

Result<JobConfig> ConfigSearch::Best(int gpus, const SearchConstraints& constraints) const {
  Result<std::vector<JobConfig>> sweep = Sweep(gpus, constraints);
  if (!sweep.ok()) {
    return Result<JobConfig>::Error(sweep.error());
  }
  const std::vector<JobConfig>& configs = sweep.value();
  const JobConfig* best = &configs[0];
  for (const JobConfig& candidate : configs) {
    // M_total is fixed, so maximising throughput == minimising the time to
    // process one mini-batch's worth of examples. Strict > keeps the first
    // (lowest (P, m)) of exact ties, independent of pool interleaving.
    if (candidate.est_examples_per_s > best->est_examples_per_s) {
      best = &candidate;
    }
  }
  return *best;
}

ConfigSearchStats ConfigSearch::stats() const {
  std::unique_lock<std::mutex> lock(cache_mutex_);
  return stats_;
}

void ConfigSearch::ClearCaches() const {
  std::unique_lock<std::mutex> sweep_lock(sweep_mutex_);
  {
    std::unique_lock<std::mutex> lock(cache_mutex_);
    sweep_cache_.clear();
    stats_ = ConfigSearchStats();
  }
  schedule_cache_.Clear();
}

}  // namespace varuna
