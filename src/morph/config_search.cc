#include "src/morph/config_search.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "src/common/check.h"

namespace varuna {

namespace {

// Un-memoized candidates are simulated in rounds of this many, with pruning
// re-evaluated against the incumbent between rounds. A compile-time constant
// — never the pool size — so which candidates get pruned is a pure function
// of the sweep inputs, and pooled sweeps stay bit-identical to serial ones.
constexpr size_t kSimulationRound = 16;

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

// --- CandidateMemo ----------------------------------------------------------

uint64_t CandidateMemo::Hash(const CandidateKey& key) {
  const uint64_t a = (static_cast<uint64_t>(static_cast<uint32_t>(key.depth)) << 32) |
                     static_cast<uint32_t>(key.replicas);
  const uint64_t b = (static_cast<uint64_t>(static_cast<uint32_t>(key.microbatch)) << 32) |
                     static_cast<uint32_t>(key.num_microbatches);
  return Mix64(a ^ Mix64(b ^ static_cast<uint64_t>(key.schedule_kind)));
}

bool CandidateMemo::SyncContext(uint64_t context_fingerprint) {
  if (context_fingerprint == context_fingerprint_) {
    return false;
  }
  Clear();
  context_fingerprint_ = context_fingerprint;
  return true;
}

const FastSimResult* CandidateMemo::Find(const CandidateKey& key) const {
  if (slots_.empty()) {
    return nullptr;
  }
  const size_t mask = slots_.size() - 1;
  for (size_t probe = Hash(key) & mask;; probe = (probe + 1) & mask) {
    const Slot& slot = slots_[probe];
    if (!slot.occupied) {
      return nullptr;
    }
    if (slot.key == key) {
      return &slot.result;
    }
  }
}

void CandidateMemo::Insert(const CandidateKey& key, const FastSimResult& result) {
  if (slots_.empty() || (size_ + 1) * 4 >= slots_.size() * 3) {
    Grow();
  }
  const size_t mask = slots_.size() - 1;
  for (size_t probe = Hash(key) & mask;; probe = (probe + 1) & mask) {
    Slot& slot = slots_[probe];
    if (!slot.occupied) {
      slot.key = key;
      slot.result = result;
      slot.occupied = true;
      ++size_;
      return;
    }
    if (slot.key == key) {
      slot.result = result;  // Re-insert after an external Clear race: benign.
      return;
    }
  }
}

void CandidateMemo::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.empty() ? 256 : old.size() * 2, Slot{});
  size_ = 0;
  const size_t mask = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (!slot.occupied) {
      continue;
    }
    for (size_t probe = Hash(slot.key) & mask;; probe = (probe + 1) & mask) {
      if (!slots_[probe].occupied) {
        slots_[probe] = slot;
        ++size_;
        break;
      }
    }
  }
}

void CandidateMemo::Clear() {
  slots_.clear();
  size_ = 0;
}

// --- ConfigSearch -----------------------------------------------------------

int ConfigSearch::PickMicrobatchSize(double tolerance) const {
  const std::vector<int>& sizes = calibration_->microbatch_sizes;
  VARUNA_CHECK(!sizes.empty());
  // Probe an interior cut-point (homogeneous-block models: any block works).
  const int section = sections_->num_sections() > 2 ? 1 : 0;
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    const double per_example = calibration_->ForwardTime(section, sizes[i]) / sizes[i];
    const double next_per_example =
        calibration_->ForwardTime(section, sizes[i + 1]) / sizes[i + 1];
    if (per_example - next_per_example <= tolerance * per_example) {
      return sizes[i];
    }
  }
  return sizes.back();
}

std::vector<int> ConfigSearch::PickMicrobatchCandidates(double tolerance,
                                                        int max_candidates) const {
  const std::vector<int>& sizes = calibration_->microbatch_sizes;
  const int saturating = PickMicrobatchSize(tolerance);
  std::vector<int> candidates;
  // The saturating m maximises Nm (least bubble, least memory) at near-best
  // per-example compute; larger profiled sizes trade bubble fraction for
  // compute efficiency — which side wins depends on P, so both are swept.
  // Sizes below saturation are dominated (worse per-example compute AND no
  // bubble advantage over the saturating m is large enough to matter) and are
  // skipped, keeping the sweep O(G * max_candidates).
  for (const int m : sizes) {
    if (m < saturating || static_cast<int>(candidates.size()) >= std::max(1, max_candidates)) {
      continue;
    }
    candidates.push_back(m);
  }
  if (candidates.empty()) {
    candidates.push_back(saturating);
  }
  return candidates;
}

bool ConfigSearch::StageMemoryFits(const Partition& partition, int m, int num_microbatches,
                                   const SearchConstraints& constraints) const {
  const double block_full_act = BlockFullActivationBytes(*spec_);
  const double blocks_per_section =
      static_cast<double>(spec_->num_layers) / sections_->num_sections();
  for (int stage = 0; stage < partition.depth(); ++stage) {
    const int begin = partition.stage_begin[static_cast<size_t>(stage)];
    const int end = partition.stage_begin[static_cast<size_t>(stage) + 1];
    MemoryModelInputs inputs;
    inputs.stage_params = partition.stage_params[static_cast<size_t>(stage)];
    inputs.input_activation_bytes_per_example =
        stage == 0 ? 4.0 * spec_->seq_len : spec_->BoundaryActivationBytes();
    inputs.full_activation_bytes_per_example = block_full_act * blocks_per_section * (end - begin);
    inputs.microbatch_size = m;
    inputs.num_microbatches = num_microbatches;
    inputs.pipeline_depth = partition.depth();
    inputs.stage_index = stage;
    inputs.cpu_offload_optimizer = constraints.cpu_offload_optimizer;
    if (!Fits(EstimateStageMemory(ScheduleKind::kVaruna, inputs), constraints.budget)) {
      return false;
    }
  }
  return true;
}

const Partition* ConfigSearch::PartitionForDepth(int depth) const {
  const size_t index = static_cast<size_t>(depth);
  if (partition_known_.size() <= index) {
    partition_known_.resize(index + 1, 0);
    partitions_.resize(index + 1);
  }
  if (!partition_known_[index]) {
    Result<Partition> partition = PartitionModel(*sections_, depth);
    if (partition.ok()) {
      partitions_[index] = std::make_unique<Partition>(std::move(partition).value());
    }
    partition_known_[index] = 1;
  }
  return partitions_[index].get();
}

uint64_t ConfigSearch::ContextFingerprint(const SearchConstraints& constraints) const {
  uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffULL;
      hash *= 1099511628211ULL;
    }
  };
  const auto mix_double = [&mix](double value) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  mix(calibration_->Fingerprint());
  mix_double(constraints.total_batch);
  mix_double(constraints.budget.gpu_memory_bytes);
  mix_double(constraints.budget.usable_fraction);
  mix(static_cast<uint64_t>(constraints.gpus_per_node));
  mix_double(constraints.shared_sync_bytes);
  mix(constraints.cpu_offload_optimizer ? 1 : 0);
  mix_double(constraints.microbatch_tolerance);
  mix(static_cast<uint64_t>(constraints.microbatch_candidates));
  mix(constraints.predictor_fingerprint);
  mix(constraints.recovery_fingerprint);
  // constraints.prune is deliberately excluded: pruning changes which
  // candidates get simulated, never what a simulation returns, so memoized
  // results stay exact across prune-mode flips.
  return hash;
}

ConfigSearch::SweepKey ConfigSearch::MakeSweepKey(int gpus,
                                                  const SearchConstraints& constraints) const {
  return SweepKey{gpus,
                  calibration_->Fingerprint(),
                  constraints.total_batch,
                  constraints.budget.gpu_memory_bytes,
                  constraints.budget.usable_fraction,
                  constraints.gpus_per_node,
                  constraints.shared_sync_bytes,
                  constraints.cpu_offload_optimizer,
                  constraints.microbatch_tolerance,
                  constraints.microbatch_candidates,
                  constraints.prune,
                  constraints.predictor_fingerprint,
                  constraints.recovery_fingerprint};
}

Result<std::vector<JobConfig>> ConfigSearch::Sweep(int gpus,
                                                   const SearchConstraints& constraints) const {
  VARUNA_CHECK_GT(constraints.total_batch, 0.0);
  const auto infeasible = [&] {
    std::ostringstream message;
    message << "no feasible configuration for " << gpus << " GPUs (model " << spec_->name
            << ")";
    return Result<std::vector<JobConfig>>::Error(message.str());
  };
  if (gpus < 1) {
    return Result<std::vector<JobConfig>>::Error("no GPUs available");
  }
  std::unique_lock<std::mutex> sweep_lock(sweep_mutex_);

  // L1: the whole-sweep memo. The key covers every input of the sweep (G, the
  // calibration fingerprint, all constraint fields), so a hit is exact — the
  // cached vector is the bit-identical result a fresh sweep would produce.
  const SweepKey key = MakeSweepKey(gpus, constraints);
  int workers = 1;
  {
    std::unique_lock<std::mutex> lock(cache_mutex_);
    ++stats_.sweeps;
    const auto it = std::lower_bound(
        sweep_cache_.begin(), sweep_cache_.end(), key,
        [](const auto& entry, const SweepKey& probe) { return entry.first < probe; });
    if (it != sweep_cache_.end() && it->first == key) {
      ++stats_.sweep_cache_hits;
      if (it->second.empty()) {
        return infeasible();
      }
      return it->second;
    }
    ++stats_.sweep_cache_misses;
    workers = (pool_ != nullptr) ? pool_->num_threads() : 1;
    if (static_cast<int>(simulators_.size()) < workers) {
      simulators_.resize(static_cast<size_t>(workers), FastSimulator(calibration_));
    }
  }

  // L2: the candidate memo survives across G but not across calibration or
  // constraint changes — a stale hit would be a silent wrong morph.
  candidate_memo_.SyncContext(ContextFingerprint(constraints));

  const std::vector<int> ms =
      PickMicrobatchCandidates(constraints.microbatch_tolerance, constraints.microbatch_candidates);
  const int max_depth = std::min(gpus, sections_->num_sections());

  // Enumerate every memory-feasible candidate in ascending (P, m) order —
  // the output order, and the order pruning walks. Memo probes resolve here,
  // serially and lock-free (sweep_mutex_ already excludes other sweeps).
  struct Candidate {
    CandidateKey key;
    const Partition* partition = nullptr;
    FastSimResult sim;
    double lower_bound_s = 0.0;
    bool resolved = false;  // sim is valid (memo hit or simulated this sweep).
    bool pruned = false;
  };
  const auto actual_batch = [](const Candidate& c) {
    return static_cast<double>(c.key.microbatch) * c.key.num_microbatches * c.key.replicas;
  };
  const auto make_sim_config = [&](const Candidate& c) {
    FastSimConfig sim_config;
    sim_config.sections = sections_;
    sim_config.partition = c.partition;
    sim_config.data_parallel = c.key.replicas;
    sim_config.microbatch_size = c.key.microbatch;
    sim_config.gpus_per_node = constraints.gpus_per_node;
    sim_config.shared_sync_bytes = constraints.shared_sync_bytes;
    return sim_config;
  };

  std::vector<Candidate> candidates;
  std::vector<size_t> pending;  // Indices of memo misses, ascending (P, m).
  uint64_t memo_hits = 0;
  for (int depth = 1; depth <= max_depth; ++depth) {
    const Partition* partition = PartitionForDepth(depth);
    if (partition == nullptr) {
      continue;
    }
    const int replicas = gpus / depth;
    if (replicas < 1) {
      continue;
    }
    for (const int m : ms) {
      const int num_microbatches = static_cast<int>(
          std::ceil(constraints.total_batch / (static_cast<double>(m) * replicas)));
      if (!StageMemoryFits(*partition, m, num_microbatches, constraints)) {
        continue;  // Depth too shallow for this m: a stage does not fit in GPU memory.
      }
      Candidate candidate;
      candidate.key = CandidateKey{depth, replicas, m, num_microbatches,
                                   static_cast<int32_t>(ScheduleKind::kVaruna)};
      candidate.partition = partition;
      if (const FastSimResult* hit = candidate_memo_.Find(candidate.key)) {
        candidate.sim = *hit;
        candidate.resolved = true;
        ++memo_hits;
      } else {
        pending.push_back(candidates.size());
      }
      candidates.push_back(candidate);
    }
  }

  // Incumbent throughput from memo hits: at a previously-unseen G most
  // candidates resolve here, so pruning has a strong incumbent before the
  // first simulation round.
  double incumbent = 0.0;
  for (const Candidate& candidate : candidates) {
    if (candidate.resolved) {
      incumbent = std::max(incumbent, actual_batch(candidate) / candidate.sim.minibatch_s);
    }
  }

  // Bounds for the misses (cheap: O(P) in calibrated scalars, no schedule).
  for (const size_t index : pending) {
    Candidate& candidate = candidates[index];
    candidate.lower_bound_s =
        simulators_[0].LowerBoundMinibatch(make_sim_config(candidate), candidate.key.num_microbatches);
  }

  // Simulate the misses in fixed-size rounds, re-pruning against the
  // incumbent between rounds. Within a round the fan-out writes results into
  // item-indexed slots and the merge walks them in ascending (P, m) order, so
  // worker interleaving never shows: pooled == serial, bit for bit.
  uint64_t pruned = 0;
  uint64_t simulated = 0;
  std::vector<size_t> round;
  size_t next_pending = 0;
  while (next_pending < pending.size()) {
    round.clear();
    while (next_pending < pending.size() && round.size() < kSimulationRound) {
      const size_t index = pending[next_pending++];
      Candidate& candidate = candidates[index];
      // Prune iff even the bound-optimistic throughput strictly loses to the
      // incumbent: actual <= upper bound < incumbent, so the candidate can
      // neither win nor tie (ties keep the lowest (P, m), which Best()'s
      // strict > already guarantees for the un-pruned survivors).
      if (constraints.prune && incumbent > 0.0 && candidate.lower_bound_s > 0.0 &&
          actual_batch(candidate) / candidate.lower_bound_s < incumbent) {
        candidate.pruned = true;
        ++pruned;
        continue;
      }
      round.push_back(index);
    }
    if (round.empty()) {
      continue;
    }
    const auto simulate = [&](int item, int worker) {
      Candidate& candidate = candidates[round[static_cast<size_t>(item)]];
      const Schedule& schedule = schedule_cache_.Get(
          ScheduleKind::kVaruna, candidate.key.depth, candidate.key.num_microbatches);
      candidate.sim = simulators_[static_cast<size_t>(worker)].EstimateMinibatch(
          schedule, make_sim_config(candidate));
    };
    if (pool_ != nullptr && pool_->num_threads() > 1 && round.size() > 1) {
      pool_->ParallelFor(static_cast<int>(round.size()), simulate);
    } else {
      // 1-worker pools short-circuit to the serial path: same code, no
      // dispatch overhead, and trivially identical results.
      for (int item = 0; item < static_cast<int>(round.size()); ++item) {
        simulate(item, 0);
      }
    }
    simulated += round.size();
    for (const size_t index : round) {
      Candidate& candidate = candidates[index];
      candidate.resolved = true;
      candidate_memo_.Insert(candidate.key, candidate.sim);
      incumbent = std::max(incumbent, actual_batch(candidate) / candidate.sim.minibatch_s);
    }
  }

  // Assemble the result in enumeration order (ascending (P, m)).
  std::vector<JobConfig> feasible;
  feasible.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    if (!candidate.resolved) {
      continue;  // Pruned.
    }
    JobConfig config;
    config.pipeline_depth = candidate.key.depth;
    config.data_parallel = candidate.key.replicas;
    config.microbatch_size = candidate.key.microbatch;
    config.num_microbatches = candidate.key.num_microbatches;
    config.est_minibatch_s = candidate.sim.minibatch_s;
    config.est_examples_per_s = config.ActualBatch() / candidate.sim.minibatch_s;
    config.gpus_used = candidate.key.depth * candidate.key.replicas;
    feasible.push_back(config);
  }
  {
    std::unique_lock<std::mutex> lock(cache_mutex_);
    stats_.candidates_simulated += simulated;
    stats_.candidate_memo_hits += memo_hits;
    stats_.candidate_memo_misses += pending.size();
    stats_.candidates_pruned += pruned;
    const auto it = std::lower_bound(
        sweep_cache_.begin(), sweep_cache_.end(), key,
        [](const auto& entry, const SweepKey& probe) { return entry.first < probe; });
    sweep_cache_.insert(it, {key, feasible});
  }
  if (feasible.empty()) {
    return infeasible();
  }
  return feasible;
}

Result<JobConfig> ConfigSearch::Best(int gpus, const SearchConstraints& constraints) const {
  Result<std::vector<JobConfig>> sweep = Sweep(gpus, constraints);
  if (!sweep.ok()) {
    return Result<JobConfig>::Error(sweep.error());
  }
  const std::vector<JobConfig>& configs = sweep.value();
  const JobConfig* best = &configs[0];
  for (const JobConfig& candidate : configs) {
    // M_total is fixed, so maximising throughput == minimising the time to
    // process one mini-batch's worth of examples. Strict > keeps the first
    // (lowest (P, m)) of exact ties, independent of pool interleaving.
    if (candidate.est_examples_per_s > best->est_examples_per_s) {
      best = &candidate;
    }
  }
  return *best;
}

ConfigSearchStats ConfigSearch::stats() const {
  std::unique_lock<std::mutex> lock(cache_mutex_);
  return stats_;
}

void ConfigSearch::ClearCaches() const {
  std::unique_lock<std::mutex> sweep_lock(sweep_mutex_);
  {
    std::unique_lock<std::mutex> lock(cache_mutex_);
    sweep_cache_.clear();
    stats_ = ConfigSearchStats();
  }
  candidate_memo_.Clear();
  candidate_memo_.SyncContext(0);
  partitions_.clear();
  partition_known_.clear();
  schedule_cache_.Clear();
}

}  // namespace varuna
