// Auto-configuration (§4.4): given G available GPUs and the one-time
// calibration, pick the best (P, D, m, Nm). The exploration is O(G * |m|):
//   1. The top micro-batch candidates are ranked once — the lowest m at which
//      F_i(m)/m stops improving, plus the next larger profiled sizes (larger m
//      trades pipeline-bubble fraction for per-example compute efficiency, so
//      the winner couples to P and must be explored jointly, §4.4).
//   2. P sweeps from the smallest memory-feasible depth up to the number of
//      cut-points (or G); D = G / P; for each (P, m) one balanced cut-point
//      assignment is evaluated with the fast simulator.
// M_total stays fixed across configurations (correctness-preserving
// morphing, §4.2): Nm = ceil(M_total / (m * D)) via gradient accumulation.
//
// The sweep is the hot path of every morph decision (§7.2), so it is built to
// be re-run at every preemption/arrival event:
//   * Candidate depths are independent, so with a ThreadPool attached they are
//     evaluated fan-out/join in parallel — one FastSimulator per worker, stall
//     RNG seeded per candidate, results merged in ascending (P, m) order, so
//     pooled output is bit-identical to a serial sweep.
//   * A ScheduleCache generates+validates each (kind, P, Nm) shape once.
//   * Whole sweeps are memoized by (G, calibration fingerprint, constraints):
//     a spot trace revisits the same cluster sizes for hours, and those morph
//     events resolve without any re-simulation. Recalibrating changes the
//     fingerprint and naturally invalidates every memoized sweep.
#ifndef SRC_MORPH_CONFIG_SEARCH_H_
#define SRC_MORPH_CONFIG_SEARCH_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "src/common/result.h"
#include "src/common/thread_pool.h"
#include "src/model/cutpoints.h"
#include "src/model/transformer.h"
#include "src/morph/calibration.h"
#include "src/morph/fast_sim.h"
#include "src/pipeline/memory.h"
#include "src/pipeline/schedule_cache.h"

namespace varuna {

struct JobConfig {
  int pipeline_depth = 0;   // P
  int data_parallel = 0;    // D
  int microbatch_size = 0;  // m
  int num_microbatches = 0; // Nm per replica per mini-batch.
  double est_minibatch_s = 0.0;
  double est_examples_per_s = 0.0;
  int gpus_used = 0;        // P * D (<= G).

  double ActualBatch() const {
    return static_cast<double>(microbatch_size) * num_microbatches * data_parallel;
  }

  // Exact comparison (doubles included): the parallel-sweep property tests
  // assert pooled results are bit-identical to serial ones.
  bool operator==(const JobConfig&) const = default;
};

struct SearchConstraints {
  double total_batch = 0.0;           // M_total, fixed by the user.
  MemoryBudget budget;                // Per-GPU memory.
  int gpus_per_node = 1;              // Placement packing for the fast sim.
  double shared_sync_bytes = 0.0;     // From the tracer.
  bool cpu_offload_optimizer = false;
  // Relative throughput improvement below which F(m)/m has "stopped
  // improving" when picking m (§4.4).
  double microbatch_tolerance = 0.05;
  // How many micro-batch sizes the joint P x m sweep explores: the saturating
  // m plus up to this many - 1 larger profiled sizes. 1 recovers the old
  // fixed-m sweep.
  int microbatch_candidates = 3;
};

// Cumulative cache/workload counters (monotone; snapshot and subtract to
// meter one call).
struct ConfigSearchStats {
  uint64_t sweeps = 0;                  // Sweep() calls (cached or not).
  uint64_t sweep_cache_hits = 0;
  uint64_t sweep_cache_misses = 0;
  uint64_t candidates_simulated = 0;    // FastSimulator invocations.
};

class ConfigSearch {
 public:
  // `pool` is optional: null (or a 1-thread pool) keeps the sweep serial.
  // Pooled and serial sweeps return bit-identical results.
  ConfigSearch(const TransformerSpec* spec, const ModelSections* sections,
               const Calibration* calibration, ThreadPool* pool = nullptr)
      : spec_(spec), sections_(sections), calibration_(calibration), pool_(pool) {}

  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  // Lowest profiled m whose per-example forward time is within `tolerance` of
  // the next profiled size's. Done once; reused across morphs.
  int PickMicrobatchSize(double tolerance) const;

  // The joint-sweep candidate set: the saturating m plus up to
  // `max_candidates` - 1 larger profiled sizes, ascending.
  std::vector<int> PickMicrobatchCandidates(double tolerance, int max_candidates) const;

  // Best configuration for `gpus` available GPUs. Returns an error when even
  // the deepest pipeline cannot fit (too few GPUs or memory).
  Result<JobConfig> Best(int gpus, const SearchConstraints& constraints) const;

  // All feasible configurations evaluated during the sweep (for diagnostics
  // and the Table 3 bench), ascending by (P, m).
  Result<std::vector<JobConfig>> Sweep(int gpus, const SearchConstraints& constraints) const;

  // The shared schedule memo (also used by the manager for executor runs).
  ScheduleCache* schedule_cache() const { return &schedule_cache_; }

  ConfigSearchStats stats() const;

  // Drops memoized sweeps and schedules (for cold-start benchmarking).
  void ClearCaches() const;

 private:
  bool StageMemoryFits(const Partition& partition, int m, int num_microbatches,
                       const SearchConstraints& constraints) const;

  // Evaluates every feasible (depth, m) candidate at this depth, ascending in
  // m. Pure function of its arguments; `simulator` is per-worker scratch.
  std::vector<JobConfig> EvaluateDepth(int depth, int gpus, const std::vector<int>& ms,
                                       const SearchConstraints& constraints,
                                       FastSimulator* simulator) const;

  // (G, calibration fingerprint, every constraint field): the complete input
  // of Sweep. An empty cached vector records an infeasible sweep.
  using SweepKey =
      std::tuple<int, uint64_t, double, double, double, int, double, bool, double, int>;
  SweepKey MakeSweepKey(int gpus, const SearchConstraints& constraints) const;

  const TransformerSpec* spec_;
  const ModelSections* sections_;
  const Calibration* calibration_;
  ThreadPool* pool_;

  // Serialises whole sweeps: the per-worker simulators are shared state, so
  // two externally concurrent Sweep() calls on one instance must not overlap
  // (the internal fan-out is unaffected).
  mutable std::mutex sweep_mutex_;
  mutable ScheduleCache schedule_cache_;
  mutable std::mutex cache_mutex_;  // Guards sweep_cache_, stats_, simulators_.
  mutable std::map<SweepKey, std::vector<JobConfig>> sweep_cache_;
  mutable ConfigSearchStats stats_;
  // One simulator per worker, constructed once and reused across sweeps so
  // the scratch buffers amortise (hoisted out of the per-candidate loop).
  mutable std::vector<FastSimulator> simulators_;
};

}  // namespace varuna

#endif  // SRC_MORPH_CONFIG_SEARCH_H_
