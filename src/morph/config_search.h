// Auto-configuration (§4.4): given G available GPUs and the one-time
// calibration, pick the best (P, D, m, Nm). The exploration is O(G):
//   1. m is chosen once — the lowest m at which F_i(m)/m stops improving.
//   2. P sweeps from the smallest memory-feasible depth up to the number of
//      cut-points (or G); D = G / P; for each P one balanced cut-point
//      assignment is evaluated with the fast simulator.
// M_total stays fixed across configurations (correctness-preserving
// morphing, §4.2): Nm = ceil(M_total / (m * D)) via gradient accumulation.
#ifndef SRC_MORPH_CONFIG_SEARCH_H_
#define SRC_MORPH_CONFIG_SEARCH_H_

#include <vector>

#include "src/common/result.h"
#include "src/model/cutpoints.h"
#include "src/model/transformer.h"
#include "src/morph/calibration.h"
#include "src/pipeline/memory.h"

namespace varuna {

struct JobConfig {
  int pipeline_depth = 0;   // P
  int data_parallel = 0;    // D
  int microbatch_size = 0;  // m
  int num_microbatches = 0; // Nm per replica per mini-batch.
  double est_minibatch_s = 0.0;
  double est_examples_per_s = 0.0;
  int gpus_used = 0;        // P * D (<= G).

  double ActualBatch() const {
    return static_cast<double>(microbatch_size) * num_microbatches * data_parallel;
  }
};

struct SearchConstraints {
  double total_batch = 0.0;           // M_total, fixed by the user.
  MemoryBudget budget;                // Per-GPU memory.
  int gpus_per_node = 1;              // Placement packing for the fast sim.
  double shared_sync_bytes = 0.0;     // From the tracer.
  bool cpu_offload_optimizer = false;
  // Relative throughput improvement below which F(m)/m has "stopped
  // improving" when picking m (§4.4).
  double microbatch_tolerance = 0.05;
};

class ConfigSearch {
 public:
  ConfigSearch(const TransformerSpec* spec, const ModelSections* sections,
               const Calibration* calibration)
      : spec_(spec), sections_(sections), calibration_(calibration) {}

  // Lowest profiled m whose per-example forward time is within `tolerance` of
  // the next profiled size's. Done once; reused across morphs.
  int PickMicrobatchSize(double tolerance) const;

  // Best configuration for `gpus` available GPUs. Returns an error when even
  // the deepest pipeline cannot fit (too few GPUs or memory).
  Result<JobConfig> Best(int gpus, const SearchConstraints& constraints) const;

  // All feasible configurations evaluated during the sweep (for diagnostics
  // and the Table 3 bench).
  Result<std::vector<JobConfig>> Sweep(int gpus, const SearchConstraints& constraints) const;

 private:
  bool StageMemoryFits(const Partition& partition, int m, int num_microbatches,
                       const SearchConstraints& constraints) const;

  const TransformerSpec* spec_;
  const ModelSections* sections_;
  const Calibration* calibration_;
};

}  // namespace varuna

#endif  // SRC_MORPH_CONFIG_SEARCH_H_
