// Auto-configuration (§4.4): given G available GPUs and the one-time
// calibration, pick the best (P, D, m, Nm). The exploration is O(G * |m|):
//   1. The top micro-batch candidates are ranked once — the lowest m at which
//      F_i(m)/m stops improving, plus the next larger profiled sizes (larger m
//      trades pipeline-bubble fraction for per-example compute efficiency, so
//      the winner couples to P and must be explored jointly, §4.4).
//   2. P sweeps from the smallest memory-feasible depth up to the number of
//      cut-points (or G); D = G / P; for each (P, m) one balanced cut-point
//      assignment is evaluated with the fast simulator.
// M_total stays fixed across configurations (correctness-preserving
// morphing, §4.2): Nm = ceil(M_total / (m * D)) via gradient accumulation.
//
// The sweep is the hot path of every morph decision (§7.2), so it is built to
// be re-run at every preemption/arrival event, with reuse at three grains:
//   * Individual FastSimulator evaluations are memoized per candidate,
//     keyed (P, D, m, Nm, schedule kind) within a context fingerprint over
//     the calibration and every constraint field. Nm depends only on (D, m),
//     so sweeps at neighboring G share almost all candidates: a morph from
//     G=128 to a previously-unseen G=120 re-simulates only the handful of
//     genuinely new (P, D, m) tuples. Any recalibration or constraint change
//     rotates the context fingerprint and clears the table — a stale hit
//     would be a silent wrong morph.
//   * A cheap analytic lower bound (FastSimulator::LowerBoundMinibatch:
//     zero-bubble compute + minimal allreduce from calibrated scalars) prunes
//     candidates that provably cannot beat the incumbent best before they are
//     simulated. Pruning never changes Best(); it thins Sweep()'s list.
//   * Un-memoized, un-pruned candidates are simulated in fixed-size rounds
//     fanned out over the optional ThreadPool (one FastSimulator per worker,
//     stall RNG seeded per candidate) and merged in ascending (P, m) order.
//     Round size is a constant — never the worker count — so pruning
//     decisions, and therefore the full result vector, are bit-identical
//     across serial and pooled sweeps (property-tested).
// Whole sweeps are additionally memoized by (G, calibration fingerprint,
// constraints): an exact revisit of a cluster size resolves without touching
// the candidate table at all. A ScheduleCache generates+validates each
// (kind, P, Nm) shape once; hits on the candidate memo never need a schedule.
// All sweep-path tables are flat (sorted vectors / open addressing) per the
// varuna_lint hot-path rule.
#ifndef SRC_MORPH_CONFIG_SEARCH_H_
#define SRC_MORPH_CONFIG_SEARCH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "src/common/result.h"
#include "src/common/thread_pool.h"
#include "src/model/cutpoints.h"
#include "src/model/transformer.h"
#include "src/morph/calibration.h"
#include "src/morph/fast_sim.h"
#include "src/pipeline/memory.h"
#include "src/pipeline/schedule_cache.h"

namespace varuna {

struct JobConfig {
  int pipeline_depth = 0;   // P
  int data_parallel = 0;    // D
  int microbatch_size = 0;  // m
  int num_microbatches = 0; // Nm per replica per mini-batch.
  double est_minibatch_s = 0.0;
  double est_examples_per_s = 0.0;
  int gpus_used = 0;        // P * D (<= G).

  double ActualBatch() const {
    return static_cast<double>(microbatch_size) * num_microbatches * data_parallel;
  }

  // Exact comparison (doubles included): the parallel-sweep property tests
  // assert pooled results are bit-identical to serial ones.
  bool operator==(const JobConfig&) const = default;
};

struct SearchConstraints {
  double total_batch = 0.0;           // M_total, fixed by the user.
  MemoryBudget budget;                // Per-GPU memory.
  int gpus_per_node = 1;              // Placement packing for the fast sim.
  double shared_sync_bytes = 0.0;     // From the tracer.
  bool cpu_offload_optimizer = false;
  // Relative throughput improvement below which F(m)/m has "stopped
  // improving" when picking m (§4.4).
  double microbatch_tolerance = 0.05;
  // How many micro-batch sizes the joint P x m sweep explores: the saturating
  // m plus up to this many - 1 larger profiled sizes. 1 recovers the old
  // fixed-m sweep.
  int microbatch_candidates = 3;
  // Skip simulating candidates whose analytic lower bound already exceeds the
  // incumbent best. Sound: the bound never exceeds the simulated time, so the
  // winner — and Best() — are bit-identical with or without pruning; only
  // Sweep()'s returned list thins. Disable for exhaustive diagnostics.
  bool prune = true;
  // AvailabilityPredictor fingerprint (src/morph/liveput.h), folded in by the
  // liveput policy; 0 when reactive or cold. Part of the memo context: any
  // predictor learning step rotates the candidate memo and the sweep key, so
  // a liveput rescoring can never reuse results cached under an older
  // predictor state (conservative, like the budget field — simulated times do
  // not depend on it, but stale-hit bugs stay structurally impossible).
  uint64_t predictor_fingerprint = 0;
  // CheckpointStore::RestoreContextFingerprint(), folded in by the liveput
  // policy alongside the predictor fold; 0 when reactive or cold. The
  // liveput rescoring amortizes survival risk by the recovery cost, so any
  // restore-pricing change (chain frontier moved, records premigrated,
  // survivors changed) rotates the memo context the same conservative way.
  uint64_t recovery_fingerprint = 0;
};

// Cumulative cache/workload counters (monotone; snapshot and subtract to
// meter one call).
struct ConfigSearchStats {
  uint64_t sweeps = 0;                  // Sweep() calls (cached or not).
  uint64_t sweep_cache_hits = 0;
  uint64_t sweep_cache_misses = 0;
  uint64_t candidates_simulated = 0;    // FastSimulator invocations.
  // Candidate-grain reuse: probes of the per-candidate fast-sim memo during
  // un-memoized sweeps, and candidates skipped by the bound check (a pruned
  // candidate is a memo miss that never reaches the simulator).
  uint64_t candidate_memo_hits = 0;
  uint64_t candidate_memo_misses = 0;
  uint64_t candidates_pruned = 0;
};

// Identity of one fast-sim evaluation within a fixed (calibration,
// constraints) context. The context itself is not part of the key: the memo
// stores a context fingerprint and clears wholesale when it rotates.
struct CandidateKey {
  int32_t depth = 0;             // P
  int32_t replicas = 0;          // D
  int32_t microbatch = 0;        // m
  int32_t num_microbatches = 0;  // Nm = ceil(M_total / (m * D)).
  int32_t schedule_kind = 0;

  bool operator==(const CandidateKey&) const = default;
};

// Flat open-addressing (linear-probe, power-of-two capacity) table from
// CandidateKey to FastSimResult. Not thread-safe: ConfigSearch only touches
// it from the serial phases of a sweep (probes before the fan-out, inserts
// after each round's join), which is what keeps the hit path lock-free.
class CandidateMemo {
 public:
  // Clears the table when `context_fingerprint` differs from the stored one
  // (recalibration or changed constraints). Returns true if it cleared.
  bool SyncContext(uint64_t context_fingerprint);

  // Null on miss. The pointer is invalidated by the next Insert().
  const FastSimResult* Find(const CandidateKey& key) const;
  void Insert(const CandidateKey& key, const FastSimResult& result);

  size_t size() const { return size_; }
  void Clear();

 private:
  struct Slot {
    CandidateKey key;
    FastSimResult result;
    bool occupied = false;
  };

  static uint64_t Hash(const CandidateKey& key);
  void Grow();

  std::vector<Slot> slots_;  // Capacity a power of two (or empty).
  size_t size_ = 0;
  uint64_t context_fingerprint_ = 0;
};

class ConfigSearch {
 public:
  // `pool` is optional: null (or a 1-worker pool) keeps the sweep serial.
  // Pooled and serial sweeps return bit-identical results.
  ConfigSearch(const TransformerSpec* spec, const ModelSections* sections,
               const Calibration* calibration, ThreadPool* pool = nullptr)
      : spec_(spec), sections_(sections), calibration_(calibration), pool_(pool) {}

  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  // Lowest profiled m whose per-example forward time is within `tolerance` of
  // the next profiled size's. Done once; reused across morphs.
  int PickMicrobatchSize(double tolerance) const;

  // The joint-sweep candidate set: the saturating m plus up to
  // `max_candidates` - 1 larger profiled sizes, ascending.
  std::vector<int> PickMicrobatchCandidates(double tolerance, int max_candidates) const;

  // Best configuration for `gpus` available GPUs. Returns an error when even
  // the deepest pipeline cannot fit (too few GPUs or memory).
  Result<JobConfig> Best(int gpus, const SearchConstraints& constraints) const;

  // The feasible configurations evaluated during the sweep (for diagnostics
  // and the Table 3 bench), ascending by (P, m). With constraints.prune set,
  // bound-pruned candidates are omitted (they are provably not the best);
  // disable pruning for the exhaustive list.
  Result<std::vector<JobConfig>> Sweep(int gpus, const SearchConstraints& constraints) const;

  // The shared schedule memo (also used by the manager for executor runs).
  ScheduleCache* schedule_cache() const { return &schedule_cache_; }

  ConfigSearchStats stats() const;

  // Drops memoized sweeps, candidate evaluations, partitions and schedules
  // (for cold-start benchmarking).
  void ClearCaches() const;

 private:
  bool StageMemoryFits(const Partition& partition, int m, int num_microbatches,
                       const SearchConstraints& constraints) const;

  // Balanced partition for `depth`, computed once per depth and cached
  // (it depends only on the fixed model sections). Null when infeasible.
  const Partition* PartitionForDepth(int depth) const;

  // FNV-1a over the calibration fingerprint and every constraint field that
  // can influence a candidate's enumeration or simulated time. The candidate
  // memo clears when this rotates (conservative: a budget change cannot alter
  // sim results, but forcing re-simulation makes stale-hit bugs structurally
  // impossible and is covered by the invalidation tests).
  uint64_t ContextFingerprint(const SearchConstraints& constraints) const;

  // (G, calibration fingerprint, every constraint field): the complete input
  // of Sweep. An empty cached vector records an infeasible sweep.
  using SweepKey = std::tuple<int, uint64_t, double, double, double, int, double, bool,
                              double, int, bool, uint64_t, uint64_t>;
  SweepKey MakeSweepKey(int gpus, const SearchConstraints& constraints) const;

  const TransformerSpec* spec_;
  const ModelSections* sections_;
  const Calibration* calibration_;
  ThreadPool* pool_;

  // Serialises whole sweeps: the per-worker simulators, the candidate memo
  // and the partition cache are shared state, so two externally concurrent
  // Sweep() calls on one instance must not overlap (the internal fan-out is
  // unaffected).
  mutable std::mutex sweep_mutex_;
  mutable ScheduleCache schedule_cache_;
  mutable std::mutex cache_mutex_;  // Guards sweep_cache_, stats_, simulators_.
  // Whole-sweep memo, sorted by key (flat: binary-search hits, O(n) miss-only
  // inserts — a session sees hundreds of sweeps, not millions).
  mutable std::vector<std::pair<SweepKey, std::vector<JobConfig>>> sweep_cache_;
  mutable ConfigSearchStats stats_;
  // One simulator per worker, constructed once and reused across sweeps so
  // the scratch buffers amortise (hoisted out of the per-candidate loop).
  mutable std::vector<FastSimulator> simulators_;
  // Candidate-grain fast-sim memo (guarded by sweep_mutex_, not cache_mutex_:
  // it is only touched from the serial phases of a sweep).
  mutable CandidateMemo candidate_memo_;
  // partitions_[depth] once computed; partition_known_[depth] distinguishes
  // "not yet tried" from "infeasible" (null entry).
  mutable std::vector<std::unique_ptr<Partition>> partitions_;
  mutable std::vector<uint8_t> partition_known_;
};

}  // namespace varuna

#endif  // SRC_MORPH_CONFIG_SEARCH_H_
