#include "src/morph/fast_sim.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace varuna {

double FastSimulator::LowerBoundMinibatch(const FastSimConfig& config,
                                          int num_microbatches) const {
  VARUNA_CHECK(config.sections != nullptr && config.partition != nullptr);
  const int depth = config.partition->depth();
  const int m = config.microbatch_size;
  const double microbatches = static_cast<double>(num_microbatches);
  // Per-stage sums accumulate in the same ascending-section order as
  // EstimateMinibatch's prologue, so each stage's fwd/bwd/allreduce scalars
  // are bit-equal to the simulator's. The simulated critical path for stage s
  // is at least: the fill chain of first forwards through stages < s, plus
  // Nm serial (forward + backward) executions at s, plus s's allreduce — the
  // zero-bubble floor. Sends, stalls and schedule bubbles only add time.
  double prefix_fwd = 0.0;
  double bound = 0.0;
  for (int s = 0; s < depth; ++s) {
    const int begin = config.partition->stage_begin[static_cast<size_t>(s)];
    const int end = config.partition->stage_begin[static_cast<size_t>(s) + 1];
    double fwd = 0.0;
    double bwd = 0.0;
    double allreduce = 0.0;
    for (int section = begin; section < end; ++section) {
      fwd += calibration_->ForwardTime(section, m);
      bwd += calibration_->BackwardTime(section, m);
      allreduce += calibration_->allreduce.Predict(
          2.0 * config.sections->params[static_cast<size_t>(section)], config.data_parallel);
    }
    bound = std::max(bound, prefix_fwd + microbatches * (fwd + bwd) + allreduce);
    prefix_fwd += fwd;
  }
  if (config.shared_sync_bytes > 0.0 && depth > 1) {
    bound += calibration_->allreduce.Predict(config.shared_sync_bytes, 2);
  }
  // The simulator accumulates the same quantities through sequential adds
  // (free_at_ += duration, Nm times) while this closed form multiplies; the
  // two can differ by a few ulps in either direction. Scale down by 1e-9
  // relative — orders of magnitude above the accumulated rounding error — so
  // the bound stays a true lower bound of the simulated double, and pruning
  // can never drop a candidate that would have tied or won bit-exactly.
  return bound * (1.0 - 1e-9);
}

FastSimResult FastSimulator::EstimateMinibatch(const Schedule& schedule,
                                               const FastSimConfig& config) {
  VARUNA_CHECK(config.sections != nullptr && config.partition != nullptr);
  const int depth = schedule.depth;
  VARUNA_CHECK_EQ(depth, config.partition->depth());
  const int microbatches = schedule.num_microbatches;
  const int m = config.microbatch_size;
  const size_t stages = static_cast<size_t>(depth);
  const size_t cells = stages * static_cast<size_t>(microbatches);
  const auto at = [microbatches](int s, int mb) {
    return static_cast<size_t>(s) * static_cast<size_t>(microbatches) + static_cast<size_t>(mb);
  };

  // Per-stage primitives assembled from the calibrated cut-point parameters.
  // assign() both sizes the scratch and erases any previous candidate's state.
  fwd_.assign(stages, 0.0);
  bwd_.assign(stages, 0.0);
  send_.assign(stages, 0.0);
  allreduce_.assign(stages, 0.0);
  hop_cross_node_.assign(stages, 0);
  for (int s = 0; s < depth; ++s) {
    const int begin = config.partition->stage_begin[static_cast<size_t>(s)];
    const int end = config.partition->stage_begin[static_cast<size_t>(s) + 1];
    for (int section = begin; section < end; ++section) {
      fwd_[static_cast<size_t>(s)] += calibration_->ForwardTime(section, m);
      bwd_[static_cast<size_t>(s)] += calibration_->BackwardTime(section, m);
      allreduce_[static_cast<size_t>(s)] += calibration_->allreduce.Predict(
          2.0 * config.sections->params[static_cast<size_t>(section)], config.data_parallel);
    }
    if (s + 1 < depth) {
      const bool cross_node = ((s + 1) % std::max(1, config.gpus_per_node)) == 0;
      hop_cross_node_[static_cast<size_t>(s)] = cross_node ? 1 : 0;
      send_[static_cast<size_t>(s)] = calibration_->SendTime(end - 1, m, cross_node);
    }
  }

  // Replay the profiled transfer tail (§4.3: profiled times "include mean
  // latency and jitter"): stalls on the gradient chain add to the critical
  // path instead of averaging out, so they are sampled per transfer from a
  // fixed-seed stream (deterministic estimates for a given configuration).
  // Stall sizes follow the profiled exponential tail — large stalls punch
  // through pipeline slack, so replaying the mean alone underestimates.
  fwd_stall_.assign(cells, 0.0);
  bwd_stall_.assign(cells, 0.0);
  auto sample_stalls = [&](Rng* stall_rng) {
    for (int s = 0; s + 1 < depth; ++s) {
      for (int mb = 0; mb < microbatches; ++mb) {
        fwd_stall_[at(s, mb)] = 0.0;
        bwd_stall_[at(s, mb)] = 0.0;
        if (hop_cross_node_[static_cast<size_t>(s)] == 0 ||
            calibration_->send_stall_probability <= 0.0) {
          continue;
        }
        if (stall_rng->Bernoulli(calibration_->send_stall_probability)) {
          fwd_stall_[at(s, mb)] = calibration_->send_stall_offset_s +
                                  stall_rng->Exponential(calibration_->send_stall_scale_s);
        }
        if (stall_rng->Bernoulli(calibration_->send_stall_probability)) {
          // A stage waiting on a stalled gradient opportunistically runs a
          // pending forward (§3.2), recovering up to one forward's worth of
          // work from the stall (minus the expected overshoot when the
          // gradient lands mid-forward; long stalls fit several forwards).
          const double stall = calibration_->send_stall_offset_s +
                               stall_rng->Exponential(calibration_->send_stall_scale_s);
          bwd_stall_[at(s, mb)] = std::max(0.0, stall - 1.25 * fwd_[static_cast<size_t>(s)]);
        }
      }
    }
  };

  auto duration = [&](int s, PipeOpType type) {
    switch (type) {
      case PipeOpType::kForward:
      case PipeOpType::kRecompute:
      case PipeOpType::kIdleForward:
        return fwd_[static_cast<size_t>(s)];
      case PipeOpType::kBackward:
        return bwd_[static_cast<size_t>(s)];
      case PipeOpType::kIdleBackward:
        return fwd_[static_cast<size_t>(s)] + bwd_[static_cast<size_t>(s)];
    }
    return 0.0;
  };

  // Longest-path evaluation of the schedule under strict per-stage op order.
  cursor_.assign(stages, 0);
  free_at_.assign(stages, 0.0);
  f_done_.assign(cells, -1.0);
  b_done_.assign(cells, -1.0);
  auto reset_state = [&] {
    std::fill(cursor_.begin(), cursor_.end(), 0);
    std::fill(free_at_.begin(), free_at_.end(), 0.0);
    std::fill(f_done_.begin(), f_done_.end(), -1.0);
    std::fill(b_done_.begin(), b_done_.end(), -1.0);
  };

  auto ready_time = [&](int s, const PipeOp& op) -> double {
    switch (op.type) {
      case PipeOpType::kForward:
        if (s == 0) {
          return 0.0;
        }
        if (f_done_[at(s - 1, op.microbatch)] < 0.0) {
          return -1.0;
        }
        return f_done_[at(s - 1, op.microbatch)] + send_[static_cast<size_t>(s) - 1] +
               fwd_stall_[at(s - 1, op.microbatch)];
      case PipeOpType::kBackward:
        if (s == depth - 1) {
          return f_done_[at(s, op.microbatch)];
        }
        if (b_done_[at(s + 1, op.microbatch)] < 0.0) {
          return -1.0;
        }
        return b_done_[at(s + 1, op.microbatch)] + send_[static_cast<size_t>(s)] +
               bwd_stall_[at(s, op.microbatch)];
      case PipeOpType::kRecompute:
      case PipeOpType::kIdleForward:
      case PipeOpType::kIdleBackward:
        return 0.0;
    }
    return 0.0;
  };

  auto drain_stage = [&](int s) {
    bool progressed = false;
    while (cursor_[static_cast<size_t>(s)] < schedule.ops[static_cast<size_t>(s)].size()) {
      const PipeOp& op = schedule.ops[static_cast<size_t>(s)][cursor_[static_cast<size_t>(s)]];
      const double ready = ready_time(s, op);
      if (ready < 0.0) {
        break;
      }
      const double start = std::max(free_at_[static_cast<size_t>(s)], ready);
      const double end = start + duration(s, op.type);
      free_at_[static_cast<size_t>(s)] = end;
      if (op.type == PipeOpType::kForward) {
        f_done_[at(s, op.microbatch)] = end;
      } else if (op.type == PipeOpType::kBackward) {
        b_done_[at(s, op.microbatch)] = end;
      }
      ++cursor_[static_cast<size_t>(s)];
      progressed = true;
    }
    return progressed;
  };
  auto run_once = [&] {
    reset_state();
    // Forward dependencies resolve in the ascending sweep, backward chains in
    // the descending sweep, so the pass count stays O(1) instead of O(P).
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (int s = 0; s < depth; ++s) {
        progressed |= drain_stage(s);
      }
      for (int s = depth - 1; s >= 0; --s) {
        progressed |= drain_stage(s);
      }
    }
    for (int s = 0; s < depth; ++s) {
      VARUNA_CHECK_EQ(cursor_[static_cast<size_t>(s)], schedule.ops[static_cast<size_t>(s)].size())
          << "fast-sim schedule deadlock at stage " << s;
    }
  };

  // The mini-batch is gated by the slowest data-parallel replica: replay up
  // to four independent stall streams and keep the worst pipeline.
  Rng stall_rng(0x5eedULL ^ (static_cast<uint64_t>(depth) << 32) ^
                static_cast<uint64_t>(microbatches));
  const int replays = std::max(1, std::min(config.data_parallel, 4));
  FastSimResult result;
  for (int replay = 0; replay < replays; ++replay) {
    sample_stalls(&stall_rng);
    run_once();
    for (int s = 0; s < depth; ++s) {
      result.pipeline_s = std::max(result.pipeline_s, free_at_[static_cast<size_t>(s)]);
      result.minibatch_s = std::max(result.minibatch_s,
                                    free_at_[static_cast<size_t>(s)] +
                                        allreduce_[static_cast<size_t>(s)]);
    }
  }
  for (int s = 0; s < depth; ++s) {
    result.allreduce_s = std::max(result.allreduce_s, allreduce_[static_cast<size_t>(s)]);
  }
  if (config.shared_sync_bytes > 0.0 && depth > 1) {
    result.sync_s = calibration_->allreduce.Predict(config.shared_sync_bytes, 2);
  }
  result.minibatch_s += result.sync_s;
  return result;
}

}  // namespace varuna
