#include "src/morph/fast_sim.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace varuna {

FastSimResult FastSimulator::EstimateMinibatch(const Schedule& schedule,
                                               const FastSimConfig& config) const {
  VARUNA_CHECK(config.sections != nullptr && config.partition != nullptr);
  const int depth = schedule.depth;
  VARUNA_CHECK_EQ(depth, config.partition->depth());
  const int microbatches = schedule.num_microbatches;
  const int m = config.microbatch_size;

  // Per-stage primitives assembled from the calibrated cut-point parameters.
  std::vector<double> fwd(static_cast<size_t>(depth), 0.0);
  std::vector<double> bwd(static_cast<size_t>(depth), 0.0);
  std::vector<double> send(static_cast<size_t>(depth), 0.0);  // To next stage.
  std::vector<bool> hop_cross_node(static_cast<size_t>(depth), false);
  std::vector<double> allreduce(static_cast<size_t>(depth), 0.0);
  for (int s = 0; s < depth; ++s) {
    const int begin = config.partition->stage_begin[static_cast<size_t>(s)];
    const int end = config.partition->stage_begin[static_cast<size_t>(s) + 1];
    for (int section = begin; section < end; ++section) {
      fwd[static_cast<size_t>(s)] += calibration_->ForwardTime(section, m);
      bwd[static_cast<size_t>(s)] += calibration_->BackwardTime(section, m);
      allreduce[static_cast<size_t>(s)] += calibration_->allreduce.Predict(
          2.0 * config.sections->params[static_cast<size_t>(section)], config.data_parallel);
    }
    if (s + 1 < depth) {
      const bool cross_node = ((s + 1) % std::max(1, config.gpus_per_node)) == 0;
      hop_cross_node[static_cast<size_t>(s)] = cross_node;
      send[static_cast<size_t>(s)] = calibration_->SendTime(end - 1, m, cross_node);
    }
  }

  // Replay the profiled transfer tail (§4.3: profiled times "include mean
  // latency and jitter"): stalls on the gradient chain add to the critical
  // path instead of averaging out, so they are sampled per transfer from a
  // fixed-seed stream (deterministic estimates for a given configuration).
  // Stall sizes follow the profiled exponential tail — large stalls punch
  // through pipeline slack, so replaying the mean alone underestimates.
  std::vector<std::vector<double>> fwd_stall(
      static_cast<size_t>(depth), std::vector<double>(static_cast<size_t>(microbatches), 0.0));
  std::vector<std::vector<double>> bwd_stall(
      static_cast<size_t>(depth), std::vector<double>(static_cast<size_t>(microbatches), 0.0));
  auto sample_stalls = [&](Rng* stall_rng) {
    for (int s = 0; s + 1 < depth; ++s) {
      for (int mb = 0; mb < microbatches; ++mb) {
        fwd_stall[static_cast<size_t>(s)][static_cast<size_t>(mb)] = 0.0;
        bwd_stall[static_cast<size_t>(s)][static_cast<size_t>(mb)] = 0.0;
        if (!hop_cross_node[static_cast<size_t>(s)] ||
            calibration_->send_stall_probability <= 0.0) {
          continue;
        }
        if (stall_rng->Bernoulli(calibration_->send_stall_probability)) {
          fwd_stall[static_cast<size_t>(s)][static_cast<size_t>(mb)] =
              calibration_->send_stall_offset_s +
              stall_rng->Exponential(calibration_->send_stall_scale_s);
        }
        if (stall_rng->Bernoulli(calibration_->send_stall_probability)) {
          // A stage waiting on a stalled gradient opportunistically runs a
          // pending forward (§3.2), recovering up to one forward's worth of
          // work from the stall (minus the expected overshoot when the
          // gradient lands mid-forward; long stalls fit several forwards).
          const double stall = calibration_->send_stall_offset_s +
                               stall_rng->Exponential(calibration_->send_stall_scale_s);
          bwd_stall[static_cast<size_t>(s)][static_cast<size_t>(mb)] =
              std::max(0.0, stall - 1.25 * fwd[static_cast<size_t>(s)]);
        }
      }
    }
  };

  auto duration = [&](int s, PipeOpType type) {
    switch (type) {
      case PipeOpType::kForward:
      case PipeOpType::kRecompute:
      case PipeOpType::kIdleForward:
        return fwd[static_cast<size_t>(s)];
      case PipeOpType::kBackward:
        return bwd[static_cast<size_t>(s)];
      case PipeOpType::kIdleBackward:
        return fwd[static_cast<size_t>(s)] + bwd[static_cast<size_t>(s)];
    }
    return 0.0;
  };

  // Longest-path evaluation of the schedule under strict per-stage op order.
  std::vector<size_t> cursor(static_cast<size_t>(depth), 0);
  std::vector<double> free_at(static_cast<size_t>(depth), 0.0);
  std::vector<std::vector<double>> f_done(
      static_cast<size_t>(depth), std::vector<double>(static_cast<size_t>(microbatches), -1.0));
  std::vector<std::vector<double>> b_done(
      static_cast<size_t>(depth), std::vector<double>(static_cast<size_t>(microbatches), -1.0));
  auto reset_state = [&] {
    std::fill(cursor.begin(), cursor.end(), 0);
    std::fill(free_at.begin(), free_at.end(), 0.0);
    for (int s = 0; s < depth; ++s) {
      std::fill(f_done[static_cast<size_t>(s)].begin(), f_done[static_cast<size_t>(s)].end(),
                -1.0);
      std::fill(b_done[static_cast<size_t>(s)].begin(), b_done[static_cast<size_t>(s)].end(),
                -1.0);
    }
  };

  auto ready_time = [&](int s, const PipeOp& op) -> double {
    switch (op.type) {
      case PipeOpType::kForward:
        if (s == 0) {
          return 0.0;
        }
        if (f_done[static_cast<size_t>(s) - 1][static_cast<size_t>(op.microbatch)] < 0.0) {
          return -1.0;
        }
        return f_done[static_cast<size_t>(s) - 1][static_cast<size_t>(op.microbatch)] +
               send[static_cast<size_t>(s) - 1] +
               fwd_stall[static_cast<size_t>(s) - 1][static_cast<size_t>(op.microbatch)];
      case PipeOpType::kBackward:
        if (s == depth - 1) {
          return f_done[static_cast<size_t>(s)][static_cast<size_t>(op.microbatch)];
        }
        if (b_done[static_cast<size_t>(s) + 1][static_cast<size_t>(op.microbatch)] < 0.0) {
          return -1.0;
        }
        return b_done[static_cast<size_t>(s) + 1][static_cast<size_t>(op.microbatch)] +
               send[static_cast<size_t>(s)] +
               bwd_stall[static_cast<size_t>(s)][static_cast<size_t>(op.microbatch)];
      case PipeOpType::kRecompute:
      case PipeOpType::kIdleForward:
      case PipeOpType::kIdleBackward:
        return 0.0;
    }
    return 0.0;
  };

  auto drain_stage = [&](int s) {
    bool progressed = false;
    while (cursor[static_cast<size_t>(s)] < schedule.ops[static_cast<size_t>(s)].size()) {
      const PipeOp& op = schedule.ops[static_cast<size_t>(s)][cursor[static_cast<size_t>(s)]];
      const double ready = ready_time(s, op);
      if (ready < 0.0) {
        break;
      }
      const double start = std::max(free_at[static_cast<size_t>(s)], ready);
      const double end = start + duration(s, op.type);
      free_at[static_cast<size_t>(s)] = end;
      if (op.type == PipeOpType::kForward) {
        f_done[static_cast<size_t>(s)][static_cast<size_t>(op.microbatch)] = end;
      } else if (op.type == PipeOpType::kBackward) {
        b_done[static_cast<size_t>(s)][static_cast<size_t>(op.microbatch)] = end;
      }
      ++cursor[static_cast<size_t>(s)];
      progressed = true;
    }
    return progressed;
  };
  auto run_once = [&] {
    reset_state();
    // Forward dependencies resolve in the ascending sweep, backward chains in
    // the descending sweep, so the pass count stays O(1) instead of O(P).
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (int s = 0; s < depth; ++s) {
        progressed |= drain_stage(s);
      }
      for (int s = depth - 1; s >= 0; --s) {
        progressed |= drain_stage(s);
      }
    }
    for (int s = 0; s < depth; ++s) {
      VARUNA_CHECK_EQ(cursor[static_cast<size_t>(s)], schedule.ops[static_cast<size_t>(s)].size())
          << "fast-sim schedule deadlock at stage " << s;
    }
  };

  // The mini-batch is gated by the slowest data-parallel replica: replay up
  // to four independent stall streams and keep the worst pipeline.
  Rng stall_rng(0x5eedULL ^ (static_cast<uint64_t>(depth) << 32) ^
                static_cast<uint64_t>(microbatches));
  const int replays = std::max(1, std::min(config.data_parallel, 4));
  FastSimResult result;
  for (int replay = 0; replay < replays; ++replay) {
    sample_stalls(&stall_rng);
    run_once();
    for (int s = 0; s < depth; ++s) {
      result.pipeline_s = std::max(result.pipeline_s, free_at[static_cast<size_t>(s)]);
      result.minibatch_s = std::max(result.minibatch_s,
                                    free_at[static_cast<size_t>(s)] +
                                        allreduce[static_cast<size_t>(s)]);
    }
  }
  for (int s = 0; s < depth; ++s) {
    result.allreduce_s = std::max(result.allreduce_s, allreduce[static_cast<size_t>(s)]);
  }
  if (config.shared_sync_bytes > 0.0 && depth > 1) {
    result.sync_s = calibration_->allreduce.Predict(config.shared_sync_bytes, 2);
  }
  result.minibatch_s += result.sync_s;
  return result;
}

}  // namespace varuna
