// Parametrized simulator (§4.4). Given the calibrated primitives and a
// candidate configuration (P, D, m, Nm + the cut-point-to-stage mapping), it
// simulates one full mini-batch — Nm micro-batches through the Varuna
// schedule followed by the allreduce — and outputs the estimated
// time-per-mini-batch. It deliberately shares no code with the DES testbed:
// it consumes only calibrated scalars, which is what makes Table 7 a genuine
// accuracy test. Runtime is O(P * Nm), fast enough to sweep every P on each
// morphing event (§7.2).
//
// The simulator owns flat, row-major scratch buffers (indexed [s * Nm + mb])
// that are resized and fully reinitialised per call, so sweeping hundreds of
// candidates allocates O(1) instead of ~6 nested vector<vector<double>> per
// candidate. Estimates are a pure function of (schedule, config, calibration):
// the stall RNG is seeded per candidate, never carried across calls, which is
// what lets ConfigSearch evaluate candidates on ThreadPool workers (one
// simulator per worker) with bit-identical results to a serial sweep.
#ifndef SRC_MORPH_FAST_SIM_H_
#define SRC_MORPH_FAST_SIM_H_

#include <cstdint>
#include <vector>

#include "src/model/cutpoints.h"
#include "src/morph/calibration.h"
#include "src/pipeline/schedule.h"

namespace varuna {

struct FastSimConfig {
  const ModelSections* sections = nullptr;
  const Partition* partition = nullptr;
  int data_parallel = 1;
  int microbatch_size = 1;
  // Node packing of the placement: with g GPUs per node and pipeline-major
  // placement, the hop from stage s to s+1 stays on-node unless (s+1) % g == 0.
  int gpus_per_node = 1;
  // Cross-partition shared-state sync (tied embeddings etc.) per mini-batch.
  double shared_sync_bytes = 0.0;
};

struct FastSimResult {
  double minibatch_s = 0.0;
  double pipeline_s = 0.0;
  double allreduce_s = 0.0;
  double sync_s = 0.0;
};

class FastSimulator {
 public:
  explicit FastSimulator(const Calibration* calibration) : calibration_(calibration) {}

  // Non-const: reuses the member scratch buffers. The result depends only on
  // the arguments and the calibration, never on prior calls.
  FastSimResult EstimateMinibatch(const Schedule& schedule, const FastSimConfig& config);

  // Analytic lower bound on EstimateMinibatch(...).minibatch_s for the same
  // config at `num_microbatches`, computed from the calibrated scalars alone
  // (no schedule needed): zero-bubble pipeline fill + per-stage serial compute
  // + that stage's allreduce + the shared-state sync. Stalls, sends and
  // schedule bubbles only ever add time, so the bound never exceeds the
  // simulated value; ConfigSearch uses it to skip simulating candidates that
  // cannot beat the incumbent best. O(P), allocation-free, pure.
  double LowerBoundMinibatch(const FastSimConfig& config, int num_microbatches) const;

 private:
  const Calibration* calibration_;

  // Per-stage primitives, length `depth`.
  std::vector<double> fwd_;
  std::vector<double> bwd_;
  std::vector<double> send_;  // To next stage.
  std::vector<double> allreduce_;
  std::vector<uint8_t> hop_cross_node_;
  // Per-(stage, micro-batch) state, flat row-major, length depth * Nm.
  std::vector<double> fwd_stall_;
  std::vector<double> bwd_stall_;
  std::vector<double> f_done_;
  std::vector<double> b_done_;
  // Longest-path evaluation state, length `depth`.
  std::vector<size_t> cursor_;
  std::vector<double> free_at_;
};

}  // namespace varuna

#endif  // SRC_MORPH_FAST_SIM_H_
