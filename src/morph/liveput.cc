#include "src/morph/liveput.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.h"

namespace varuna {

void AvailabilityPredictor::EnableOracle(double true_hazard_per_s) {
  VARUNA_CHECK_GE(true_hazard_per_s, 0.0);
  oracle_ = true;
  oracle_hazard_per_s_ = true_hazard_per_s;
}

void AvailabilityPredictor::Advance(double now_s) {
  if (!have_now_) {
    have_now_ = true;
    last_now_s_ = now_s;
    return;
  }
  VARUNA_CHECK_GE(now_s, last_now_s_);
  const double dt = now_s - last_now_s_;
  if (dt > 0.0) {
    if (options_.decay_tau_s > 0.0) {
      const double keep = std::exp(-dt / options_.decay_tau_s);
      decayed_up_exposure_ *= keep;
      decayed_down_exposure_ *= keep;
      decayed_preemptions_ *= keep;
      decayed_grants_ *= keep;
    }
    const double windows = dt / options_.window_s;
    const double up_windows = static_cast<double>(up_) * windows;
    const double down_windows =
        static_cast<double>(std::max(0, demand_hint_ - up_)) * windows;
    up_exposure_windows_ += up_windows;
    down_exposure_windows_ += down_windows;
    decayed_up_exposure_ += up_windows;
    decayed_down_exposure_ += down_windows;
    last_now_s_ = now_s;
  }
  // Storms that already fired are history, not forecast.
  while (!forecasts_.empty() && forecasts_.front().first <= now_s) {
    forecasts_.erase(forecasts_.begin());
  }
}

void AvailabilityPredictor::ObserveGrant(double now_s) {
  Advance(now_s);
  ++up_;
  ++grants_;
  decayed_grants_ += 1.0;
  ++updates_;
}

void AvailabilityPredictor::ObservePreemption(double now_s) {
  Advance(now_s);
  up_ = std::max(0, up_ - 1);
  ++preemptions_;
  decayed_preemptions_ += 1.0;
  ++updates_;
}

void AvailabilityPredictor::ObserveQuiet(double now_s) {
  Advance(now_s);
  ++updates_;
}

void AvailabilityPredictor::SetDemandHint(int vms) {
  VARUNA_CHECK_GE(vms, 0);
  demand_hint_ = vms;
}

void AvailabilityPredictor::ForecastStorm(double at_s, int vms) {
  VARUNA_CHECK_GE(vms, 0);
  if (vms == 0) {
    return;
  }
  const auto it = std::lower_bound(
      forecasts_.begin(), forecasts_.end(), at_s,
      [](const std::pair<double, int>& entry, double t) { return entry.first < t; });
  forecasts_.insert(it, {at_s, vms});
}

bool AvailabilityPredictor::Cold() const {
  if (oracle_) {
    return false;
  }
  return preemptions_ < options_.min_preemption_events ||
         up_exposure_windows_ < options_.min_exposure_windows;
}

bool AvailabilityPredictor::ElevatedRisk(double window_s) const {
  if (oracle_) {
    // The oracle's hit probabilities are exact (true hazard + scripted storm
    // forecasts), so the cost model needs no noise gate in front of it.
    return true;
  }
  (void)window_s;
  if (options_.decay_tau_s <= 0.0) {
    return true;  // No recency signal: defer to the cost model alone.
  }
  return decayed_preemptions_ >= options_.storm_gate_kills;
}

double AvailabilityPredictor::PreemptProbabilityPerWindow() const {
  const double alpha = options_.laplace_alpha;
  return (decayed_preemptions_ + alpha) / (decayed_up_exposure_ + 2.0 * alpha);
}

double AvailabilityPredictor::RestoreProbabilityPerWindow() const {
  const double alpha = options_.laplace_alpha;
  return (decayed_grants_ + alpha) / (decayed_down_exposure_ + 2.0 * alpha);
}

double AvailabilityPredictor::ForecastKills(double horizon_s) const {
  double kills = 0.0;
  for (const auto& [at_s, vms] : forecasts_) {
    if (at_s > last_now_s_ + horizon_s) {
      break;  // Sorted: everything later is outside the horizon too.
    }
    kills += static_cast<double>(vms);
  }
  return kills;
}

double AvailabilityPredictor::NodeSurvival(double horizon_s) const {
  if (horizon_s <= 0.0) {
    return 1.0;
  }
  double survival = 0.0;
  if (oracle_) {
    survival = std::exp(-oracle_hazard_per_s_ * horizon_s);
    const double kills = ForecastKills(horizon_s);
    if (kills > 0.0) {
      // Storms reclaim uniformly among granted VMs: a node dodges the storm
      // with probability 1 - kills/up (clamped).
      const double hit =
          std::min(1.0, kills / static_cast<double>(std::max(1, up_)));
      survival *= 1.0 - hit;
    }
    return survival;
  }
  const double p = std::clamp(PreemptProbabilityPerWindow(), 0.0, 1.0);
  return std::pow(1.0 - p, horizon_s / options_.window_s);
}

double AvailabilityPredictor::PlacementSurvival(int vms_used, double horizon_s) const {
  VARUNA_CHECK_GE(vms_used, 0);
  if (vms_used == 0) {
    return 1.0;
  }
  return std::pow(NodeSurvival(horizon_s), static_cast<double>(vms_used));
}

uint64_t AvailabilityPredictor::Fingerprint() const {
  uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffULL;
      hash *= 1099511628211ULL;
    }
  };
  const auto mix_double = [&mix](double value) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  mix(oracle_ ? 1 : 0);
  mix_double(oracle_hazard_per_s_);
  mix(static_cast<uint64_t>(preemptions_));
  mix(static_cast<uint64_t>(grants_));
  // Quantized at window granularity: quiet accrual inside one window keeps
  // the fingerprint (and therefore the candidate-memo context) stable.
  mix(static_cast<uint64_t>(std::floor(up_exposure_windows_)));
  mix(static_cast<uint64_t>(std::floor(down_exposure_windows_)));
  // The decayed shadows drive the estimates, so they are covered too —
  // quarter-count / whole-window resolution bounds how often pure decay
  // rotates the memo context (conservative: a rotation only costs misses).
  mix(static_cast<uint64_t>(std::llround(decayed_preemptions_ * 4.0)));
  mix(static_cast<uint64_t>(std::llround(decayed_grants_ * 4.0)));
  mix(static_cast<uint64_t>(std::floor(decayed_up_exposure_)));
  mix(static_cast<uint64_t>(std::floor(decayed_down_exposure_)));
  mix_double(options_.decay_tau_s);
  mix_double(options_.storm_gate_kills);
  mix(static_cast<uint64_t>(up_));
  mix(static_cast<uint64_t>(demand_hint_));
  mix(forecasts_.size());
  for (const auto& [at_s, vms] : forecasts_) {
    mix_double(at_s);
    mix(static_cast<uint64_t>(vms));
  }
  mix_double(options_.window_s);
  mix_double(options_.laplace_alpha);
  return hash;
}

int LiveputObjective::VmsUsed(const JobConfig& config) const {
  VARUNA_CHECK_GT(gpus_per_vm_, 0);
  return (config.gpus_used + gpus_per_vm_ - 1) / gpus_per_vm_;
}

double LiveputObjective::PlacementSurvival(const JobConfig& config) const {
  return predictor_->PlacementSurvival(VmsUsed(config), horizon_s_);
}

double LiveputObjective::Score(double est_examples_per_s,
                               double placement_survival) const {
  // Fraction of the horizon one placement hit actually forfeits. Negative
  // recovery cost (the default) means a hit forfeits everything — the pure
  // liveput product.
  double loss_fraction = 1.0;
  if (recovery_cost_s_ >= 0.0 && horizon_s_ > 0.0) {
    loss_fraction = std::min(1.0, recovery_cost_s_ / horizon_s_);
  }
  return est_examples_per_s * (1.0 - (1.0 - placement_survival) * loss_fraction);
}

double LiveputObjective::Score(const JobConfig& config) const {
  return Score(config.est_examples_per_s, PlacementSurvival(config));
}

const JobConfig* LiveputObjective::BestLiveput(const std::vector<JobConfig>& sweep) const {
  const JobConfig* best = nullptr;
  double best_score = 0.0;
  for (const JobConfig& config : sweep) {
    const double score = Score(config);
    if (best == nullptr || score > best_score) {
      best = &config;
      best_score = score;
    }
  }
  return best;
}

}  // namespace varuna
