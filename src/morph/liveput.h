// Liveput-optimized morphing (Parcae, PAPERS.md): instead of reacting to
// preemptions after they cost a rollback, the manager predicts availability
// and picks the next (P, D, m) to maximize expected *liveput* — estimated
// throughput × P(the placement survives the next horizon H).
//
// Two pieces, both policy-side (no simulation changes):
//   * AvailabilityPredictor — an online estimator of the spot pool's 2-state
//     (up/down) Markov transition probabilities, learned from the *observed*
//     grant/preemption stream with Laplace smoothing. The contract: it never
//     reads SpotMarket's hidden SpotPoolDynamics (this header deliberately
//     includes nothing from src/cluster); everything it knows arrives through
//     Observe*() calls fed by the manager's market observers. An oracle mode
//     accepts the true hazard (and scripted storm forecasts) from the caller
//     for upper-bound comparisons. The predictor draws no randomness and
//     schedules no events — its state is a pure function of the observation
//     stream, which keeps every policy mode bit-replayable.
//   * LiveputObjective — rescores ConfigSearch candidates by survival-weighted
//     throughput. "P(≥ required nodes survive H)" for a placement with no
//     spare VMs is exactly P(every used VM survives H) = s^V. The raw liveput
//     product thr × s^V assumes a hit forfeits the whole horizon, which
//     overprices risk so badly the argmax collapses to tiny placements; the
//     objective therefore amortizes: a hit costs only the recovery window
//     (rollback re-work + restore stall), so
//       Score = thr × (1 − (1 − s^V) × recovery_cost/H)
//     which degrades to the pure liveput product exactly when recovery costs
//     the whole horizon. Fewer VMs still ⇒ higher survival, but the argmax
//     only trades throughput for robustness when the recovery cost warrants.
//
// The predictor's Fingerprint() is folded into SearchConstraints (and from
// there into the candidate-memo context and the sweep key), so any learning
// step rotates the memo context: a liveput decision can never be served a
// candidate memoized under an older predictor state.
#ifndef SRC_MORPH_LIVEPUT_H_
#define SRC_MORPH_LIVEPUT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/morph/config_search.h"

namespace varuna {

// How the manager chooses and times morphs.
enum class MorphPolicy : uint8_t {
  kReactive = 0,         // Varuna §4.6: morph only after a preemption lands.
  kProactive = 1,        // Liveput argmax + pre-migration, online predictor.
  kOracleProactive = 2,  // Same policy, predictor fed the true hazard/storms.
};

struct PredictorOptions {
  // Discretization of the Markov chain: one "window" of exposure.
  double window_s = 60.0;
  // Laplace pseudo-counts smoothing both transition estimates.
  double laplace_alpha = 1.0;
  // Warm-up gates: below either, Cold() is true and the manager must stay on
  // the reactive path (the estimate is noise, not signal).
  double min_exposure_windows = 30.0;
  int min_preemption_events = 3;
  // Recency half-life of the transition estimates: counts and exposure decay
  // by exp(-dt/tau), so risk spikes while a storm is landing and relaxes in
  // calm stretches instead of smearing storm kills over the whole session.
  // For a stationary chain the decayed ratio stays an unbiased estimate of
  // the same transition probability (just higher-variance). <= 0 disables
  // decay (the pure cumulative estimator, used by the convergence test).
  double decay_tau_s = 120.0;
  // ElevatedRisk() (the pre-migration storm gate) needs at least this many
  // decayed kills in the recency window — roughly "a multi-kill storm is
  // landing right now", which is where early checkpoints actually pay.
  double storm_gate_kills = 1.5;
};

// Online 2-state Markov availability estimator. Feed it every announced
// grant/preemption (ObserveGrant/ObservePreemption) plus periodic quiet
// ticks (ObserveQuiet) so exposure time accrues between events.
class AvailabilityPredictor {
 public:
  AvailabilityPredictor() = default;
  explicit AvailabilityPredictor(const PredictorOptions& options) : options_(options) {}

  // Oracle mode: survival comes from the true per-second hazard plus any
  // forecast storms instead of the learned counts. The counts still accrue
  // (so instrumentation stays comparable); they are just not consulted.
  void EnableOracle(double true_hazard_per_s);
  bool oracle() const { return oracle_; }

  // One node joined (down -> up transition observed).
  void ObserveGrant(double now_s);
  // One node was reclaimed (up -> down transition observed).
  void ObservePreemption(double now_s);
  // Nothing happened; accrue exposure up to now_s.
  void ObserveQuiet(double now_s);
  // Standing demand: bounds the down-state population (demand - up) whose
  // exposure feeds the restore-probability estimate.
  void SetDemandHint(int vms);

  // Oracle storm forecast: `vms` expected kills at absolute time at_s.
  // Forecasts in the past are dropped as time advances.
  void ForecastStorm(double at_s, int vms);

  // True until the warm-up gates are met. Oracle mode is never cold.
  bool Cold() const;
  // Storm gate for the pre-migration trigger: online, true while at least
  // ~storm_gate_kills decayed kills sit inside the recency window (a storm is
  // landing) — premigrating outside those windows buys rollback depth the
  // noisy estimate does not justify. Oracle mode always passes: its hit
  // probabilities are exact, so the cost model needs no noise gate.
  bool ElevatedRisk(double window_s) const;
  int up_vms() const { return up_; }
  int64_t updates() const { return updates_; }
  int64_t preemptions_observed() const { return preemptions_; }

  // The estimated transition matrix, smoothed. Row "up": [1-p, p]; row
  // "down": [q, 1-q]. Exposed for the convergence property test.
  double PreemptProbabilityPerWindow() const;   // p: P(up -> down in a window)
  double RestoreProbabilityPerWindow() const;   // q: P(down -> up in a window)

  // P(one currently-up node is still up horizon_s from now). In oracle mode
  // exp(-hazard * h) discounted by forecast storms inside the horizon.
  double NodeSurvival(double horizon_s) const;
  // P(all `vms_used` placement nodes survive) = NodeSurvival^vms_used.
  double PlacementSurvival(int vms_used, double horizon_s) const;

  // FNV-1a over the decision-relevant state: transition counts, quantized
  // exposure, population and forecasts. Any observation that can change a
  // survival estimate rotates it; quiet accrual within one window does not.
  uint64_t Fingerprint() const;

 private:
  // Accrues exposure windows for the up and down populations up to now_s and
  // drops stale forecasts. Time never runs backwards on the DES.
  void Advance(double now_s);
  // Expected storm kills scheduled within (now, now + horizon_s].
  double ForecastKills(double horizon_s) const;

  PredictorOptions options_;
  bool oracle_ = false;
  double oracle_hazard_per_s_ = 0.0;
  bool have_now_ = false;
  double last_now_s_ = 0.0;
  int up_ = 0;
  int demand_hint_ = 0;
  // Raw cumulative tallies: warm-up gates + instrumentation.
  double up_exposure_windows_ = 0.0;
  double down_exposure_windows_ = 0.0;
  int64_t preemptions_ = 0;  // Observed up -> down transitions.
  int64_t grants_ = 0;       // Observed down -> up transitions.
  int64_t updates_ = 0;      // Every Observe* call.
  // Recency-decayed shadows of the four tallies above — what the transition
  // estimates actually consult (identical to the raw tallies when decay is
  // disabled).
  double decayed_up_exposure_ = 0.0;
  double decayed_down_exposure_ = 0.0;
  double decayed_preemptions_ = 0.0;
  double decayed_grants_ = 0.0;
  // (at_s, expected kills), sorted ascending by time. Flat per the hot-path
  // rule; a campaign scripts at most a handful of storms.
  std::vector<std::pair<double, int>> forecasts_;
};

// Survival-weighted scoring of ConfigSearch candidates.
class LiveputObjective {
 public:
  // `recovery_cost_s` is what one placement hit actually costs (expected
  // rollback re-work + restore stall). Negative means "the whole horizon",
  // i.e. the pure liveput product.
  LiveputObjective(const AvailabilityPredictor* predictor, double horizon_s,
                   int gpus_per_vm, double recovery_cost_s = -1.0)
      : predictor_(predictor),
        horizon_s_(horizon_s),
        gpus_per_vm_(gpus_per_vm),
        recovery_cost_s_(recovery_cost_s) {}

  // Distinct VMs a candidate occupies (ceil over the per-VM GPU count).
  int VmsUsed(const JobConfig& config) const;
  double PlacementSurvival(const JobConfig& config) const;

  // Pure liveput = est_examples_per_s × P(placement survives the horizon).
  // Monotone in survival at fixed throughput (property-tested).
  static double Liveput(double est_examples_per_s, double placement_survival) {
    return est_examples_per_s * placement_survival;
  }
  // Recovery-amortized score (see header comment). Also monotone in survival
  // at fixed throughput; equals Liveput() when recovery covers the horizon.
  double Score(double est_examples_per_s, double placement_survival) const;
  double Score(const JobConfig& config) const;

  // Liveput argmax over a sweep (ascending (P, m) order): strict >, so ties
  // keep the earliest candidate — deterministic and thread-count independent.
  // Null when the sweep is empty.
  const JobConfig* BestLiveput(const std::vector<JobConfig>& sweep) const;

 private:
  const AvailabilityPredictor* predictor_;
  double horizon_s_;
  int gpus_per_vm_;
  double recovery_cost_s_;
};

}  // namespace varuna

#endif  // SRC_MORPH_LIVEPUT_H_
