#include "src/net/network.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace varuna {

// Fraction of a tail stall that a chunk-pipelined ring collective cannot
// hide (the rest overlaps with other chunks' transfers).
constexpr double kRingStallExposure = 0.35;

size_t Network::RingKeyHash::HashSpan(const GpuId* data, size_t size, int rings) {
  // FNV-1a over the member ids then the ring count.
  uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  for (size_t i = 0; i < size; ++i) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(data[i])));
  }
  mix(static_cast<uint64_t>(static_cast<uint32_t>(rings)));
  return static_cast<size_t>(hash);
}

double Network::FlowBandwidth(GpuId src, GpuId dst, int concurrent_flows) const {
  VARUNA_CHECK_GE(concurrent_flows, 1);
  if (src == dst) {
    // Loopback copies are not modelled; treat as effectively instantaneous by
    // giving them intra-node bandwidth.
    return topology_->Node(topology_->NodeOf(src)).intra_bandwidth_bps;
  }
  const LinkClass link =
      topology_->PairClass(topology_->NodeOfFast(src), topology_->NodeOfFast(dst));
  if (!link.crosses_node) {
    return link.bandwidth_bps;
  }
  // Both NICs split across the concurrent flows; the fabric caps each flow.
  const double nic_share = link.bandwidth_bps / concurrent_flows;
  return std::min(nic_share, topology_->fabric().per_flow_bandwidth_bps);
}

double Network::MeanLatency(GpuId src, GpuId dst) const {
  if (src == dst) {
    return 0.0;
  }
  return topology_->PairClass(topology_->NodeOfFast(src), topology_->NodeOfFast(dst))
      .latency_s;
}

double Network::MeanTransferTime(GpuId src, GpuId dst, double bytes,
                                 int concurrent_flows) const {
  VARUNA_CHECK_GE(bytes, 0.0);
  if (src == dst) {
    return 0.0;
  }
  return MeanLatency(src, dst) + bytes / FlowBandwidth(src, dst, concurrent_flows);
}

double Network::SampleTransferTime(GpuId src, GpuId dst, double bytes, int concurrent_flows,
                                   Rng* rng) const {
  VARUNA_CHECK_GE(bytes, 0.0);
  if (src == dst) {
    return 0.0;
  }
  const LinkClass link =
      topology_->PairClass(topology_->NodeOfFast(src), topology_->NodeOfFast(dst));
  if (!link.crosses_node) {
    return link.latency_s + bytes / link.bandwidth_bps;
  }
  const double bandwidth =
      std::min(link.bandwidth_bps / concurrent_flows, topology_->fabric().per_flow_bandwidth_bps);
  const double serialization = bytes / bandwidth;
  const FabricSpec& fabric = topology_->fabric();
  double latency = fabric.jitter_sigma > 0.0
                       ? rng->LogNormalMedian(fabric.base_latency_s, fabric.jitter_sigma)
                       : fabric.base_latency_s;
  if (fabric.stall_probability > 0.0 && rng->Bernoulli(fabric.stall_probability)) {
    latency += rng->Exponential(fabric.stall_mean_s);
  }
  return latency + serialization;
}

Network::RingStep Network::SlowestHop(const std::vector<GpuId>& members,
                                      int concurrent_rings) const {
  // Seed from the first *real* hop (distinct endpoints) rather than members[0]'s
  // intra-node parameters: a seed faster than every real hop used to win the
  // min and report an intra-class bottleneck for an all-cross-node ring.
  RingStep step;
  bool seeded = false;
  for (size_t i = 0; i < members.size(); ++i) {
    const GpuId a = members[i];
    const GpuId b = members[(i + 1) % members.size()];
    if (a == b) {
      continue;
    }
    const double bandwidth = FlowBandwidth(a, b, concurrent_rings);
    if (!seeded || bandwidth < step.bandwidth) {
      seeded = true;
      step.bandwidth = bandwidth;
      step.latency_s = MeanLatency(a, b);
      step.crosses_node = !topology_->SameNode(a, b);
    }
  }
  if (!seeded) {
    // Degenerate ring (every member is the same GPU): no hop ever moves data;
    // report the member's intra-node link.
    const NodeSpec& node = topology_->Node(topology_->NodeOf(members[0]));
    step.bandwidth = node.intra_bandwidth_bps;
    step.latency_s = node.intra_latency_s;
  }
  return step;
}

const Network::RingCosts& Network::RingCostsFor(const std::vector<GpuId>& members,
                                                int concurrent_rings) const {
  const RingKeyView view{members.data(), members.size(), concurrent_rings};
  auto it = ring_cache_.find(view);
  if (it != ring_cache_.end()) {
    ++ring_cache_hits_;
    return it->second;
  }
  ++ring_cache_misses_;
  RingCosts costs;
  costs.hop = SlowestHop(members, concurrent_rings);
  // Each synchronous ring step completes when the *slowest* of the D
  // concurrent hop messages lands, so latency jitter and tail stalls amplify
  // with ring size — the reason large data-parallel widths are expensive on
  // commodity networks (Observation 2).
  costs.mean_step_latency_s = costs.hop.latency_s;
  if (costs.hop.crosses_node) {
    const double d = static_cast<double>(members.size());
    const FabricSpec& fabric = topology_->fabric();
    // E[max of D log-normal latencies] ~ median * exp(sigma * sqrt(2 ln D)).
    double latency = fabric.base_latency_s;
    if (fabric.jitter_sigma > 0.0 && d >= 2.0) {
      latency *= std::exp(fabric.jitter_sigma * std::sqrt(2.0 * std::log(d)));
    }
    double stall = 0.0;
    if (fabric.stall_probability > 0.0) {
      // NCCL-style rings pipeline many chunks, so a stalled message overlaps
      // with other chunks' progress; only ~kRingStallExposure of each stall
      // reaches the critical path.
      stall = kRingStallExposure *
              (1.0 - std::pow(1.0 - fabric.stall_probability, d)) * fabric.stall_mean_s;
    }
    costs.mean_step_latency_s = latency + stall;
  }
  auto inserted =
      ring_cache_.emplace(RingKey{members, concurrent_rings}, costs);
  return inserted.first->second;
}

double Network::MeanAllReduceTime(const std::vector<GpuId>& members, double bytes,
                                  int concurrent_rings) const {
  VARUNA_CHECK(!members.empty());
  if (members.size() == 1 || bytes <= 0.0) {
    return 0.0;
  }
  const double d = static_cast<double>(members.size());
  const RingCosts& costs = RingCostsFor(members, concurrent_rings);
  const double steps = 2.0 * (d - 1.0);
  return steps * (bytes / d / costs.hop.bandwidth + costs.mean_step_latency_s);
}

double Network::SampleAllReduceTime(const std::vector<GpuId>& members, double bytes,
                                    int concurrent_rings, Rng* rng) const {
  VARUNA_CHECK(!members.empty());
  if (members.size() == 1 || bytes <= 0.0) {
    return 0.0;
  }
  const double d = static_cast<double>(members.size());
  const RingCosts& costs = RingCostsFor(members, concurrent_rings);
  const int steps = static_cast<int>(2.0 * (d - 1.0));
  const double bytes_term = bytes / d / costs.hop.bandwidth;
  if (!costs.hop.crosses_node) {
    return steps * (bytes_term + costs.hop.latency_s);
  }
  const FabricSpec& fabric = topology_->fabric();
  // Draw each step's slowest hop explicitly: O(D^2) draws, fine for the ring
  // sizes the evaluation uses; fall back to the analytic mean for huge rings.
  // Contract (see header): this branch consumes ZERO draws from `rng`.
  if (d > 64.0) {
    return MeanAllReduceTime(members, bytes, concurrent_rings);
  }
  double total = 0.0;
  for (int step = 0; step < steps; ++step) {
    double slowest = 0.0;
    for (int hop_index = 0; hop_index < static_cast<int>(d); ++hop_index) {
      double latency = fabric.jitter_sigma > 0.0
                           ? rng->LogNormalMedian(fabric.base_latency_s, fabric.jitter_sigma)
                           : fabric.base_latency_s;
      if (fabric.stall_probability > 0.0 && rng->Bernoulli(fabric.stall_probability)) {
        latency += kRingStallExposure * rng->Exponential(fabric.stall_mean_s);
      }
      slowest = std::max(slowest, latency);
    }
    total += bytes_term + slowest;
  }
  return total;
}

}  // namespace varuna
