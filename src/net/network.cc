#include "src/net/network.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace varuna {

// Fraction of a tail stall that a chunk-pipelined ring collective cannot
// hide (the rest overlaps with other chunks' transfers).
constexpr double kRingStallExposure = 0.35;

size_t Network::ShapeKeyHash::HashParts(uint32_t size, int rings, int degenerate_class,
                                        const uint64_t* profile, size_t profile_size) {
  // FNV-1a over the scalar fields then the sorted hop-class profile.
  uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(size));
  mix(static_cast<uint64_t>(static_cast<uint32_t>(rings)));
  mix(static_cast<uint64_t>(static_cast<uint32_t>(degenerate_class)));
  for (size_t i = 0; i < profile_size; ++i) {
    mix(profile[i]);
  }
  return static_cast<size_t>(hash);
}

double Network::FlowBandwidth(GpuId src, GpuId dst, int concurrent_flows) const {
  VARUNA_CHECK_GE(concurrent_flows, 1);
  if (src == dst) {
    // Loopback copies are not modelled; treat as effectively instantaneous by
    // giving them intra-node bandwidth.
    return topology_->Node(topology_->NodeOf(src)).intra_bandwidth_bps;
  }
  const LinkClass link =
      topology_->PairClass(topology_->NodeOfFast(src), topology_->NodeOfFast(dst));
  if (!link.crosses_node) {
    return link.bandwidth_bps;
  }
  // Both NICs split across the concurrent flows; the fabric caps each flow.
  const double nic_share = link.bandwidth_bps / concurrent_flows;
  return std::min(nic_share, topology_->fabric().per_flow_bandwidth_bps);
}

double Network::MeanLatency(GpuId src, GpuId dst) const {
  if (src == dst) {
    return 0.0;
  }
  return topology_->PairClass(topology_->NodeOfFast(src), topology_->NodeOfFast(dst))
      .latency_s;
}

double Network::MeanTransferTime(GpuId src, GpuId dst, double bytes,
                                 int concurrent_flows) const {
  VARUNA_CHECK_GE(bytes, 0.0);
  if (src == dst) {
    return 0.0;
  }
  return MeanLatency(src, dst) + bytes / FlowBandwidth(src, dst, concurrent_flows);
}

double Network::MeanParallelTransferTime(
    const std::vector<std::pair<GpuId, GpuId>>& flows, double flow_bytes) const {
  double slowest = 0.0;
  const int concurrent = static_cast<int>(flows.size());
  for (const auto& [src, dst] : flows) {
    slowest = std::max(slowest, MeanTransferTime(src, dst, flow_bytes, concurrent));
  }
  return slowest;
}

double Network::SampleTransferTime(GpuId src, GpuId dst, double bytes, int concurrent_flows,
                                   Rng* rng) const {
  VARUNA_CHECK_GE(bytes, 0.0);
  if (src == dst) {
    return 0.0;
  }
  const LinkClass link =
      topology_->PairClass(topology_->NodeOfFast(src), topology_->NodeOfFast(dst));
  if (!link.crosses_node) {
    return link.latency_s + bytes / link.bandwidth_bps;
  }
  const double bandwidth =
      std::min(link.bandwidth_bps / concurrent_flows, topology_->fabric().per_flow_bandwidth_bps);
  const double serialization = bytes / bandwidth;
  const FabricSpec& fabric = topology_->fabric();
  double latency = fabric.jitter_sigma > 0.0
                       ? rng->LogNormalMedian(fabric.base_latency_s, fabric.jitter_sigma)
                       : fabric.base_latency_s;
  if (fabric.stall_probability > 0.0 && rng->Bernoulli(fabric.stall_probability)) {
    latency += rng->Exponential(fabric.stall_mean_s);
  }
  return latency + serialization;
}

int Network::InternHopClass(int class_lo, int class_hi, bool crosses_node) const {
  for (size_t i = 0; i < hop_classes_.size(); ++i) {
    const HopClass& hop = hop_classes_[i];
    if (hop.class_lo == class_lo && hop.class_hi == class_hi &&
        hop.crosses_node == crosses_node) {
      return static_cast<int>(i);
    }
  }
  hop_classes_.push_back(HopClass{class_lo, class_hi, crosses_node});
  hop_counts_.push_back(0);
  return static_cast<int>(hop_classes_.size()) - 1;
}

Network::RingCosts Network::ComputeShapeCosts(const ShapeKeyView& key, int num_members) const {
  RingCosts costs;
  if (key.profile_size == 0) {
    // Degenerate ring (every member is the same GPU): no hop ever moves data;
    // report the member's intra-node link.
    const NodeSpec& node = topology_->LinkClassSpec(key.degenerate_class);
    costs.hop.bandwidth = node.intra_bandwidth_bps;
    costs.hop.latency_s = node.intra_latency_s;
    costs.mean_step_latency_s = costs.hop.latency_s;
    return costs;
  }
  // Slowest hop over the hop-class set. The tie-break is *value-canonical* —
  // lowest bandwidth, then highest latency, then crosses_node — so the result
  // depends only on the shape key, never on member walk order (a walk-order
  // first-min would make shape keying unsound under rotation/reversal).
  bool seeded = false;
  for (size_t i = 0; i < key.profile_size; ++i) {
    const HopClass& hop = hop_classes_[static_cast<size_t>(key.profile[i] >> 32)];
    RingStep step;
    step.crosses_node = hop.crosses_node;
    if (hop.crosses_node) {
      const NodeSpec& lo = topology_->LinkClassSpec(hop.class_lo);
      const NodeSpec& hi = topology_->LinkClassSpec(hop.class_hi);
      const double nic = lo.nic_bandwidth_bps < hi.nic_bandwidth_bps ? lo.nic_bandwidth_bps
                                                                     : hi.nic_bandwidth_bps;
      // Both NICs split across the concurrent rings; the fabric caps each flow.
      step.bandwidth = std::min(nic / key.concurrent_rings,
                                topology_->fabric().per_flow_bandwidth_bps);
      step.latency_s = topology_->fabric_mean_latency_s();
    } else {
      const NodeSpec& node = topology_->LinkClassSpec(hop.class_lo);
      step.bandwidth = node.intra_bandwidth_bps;
      step.latency_s = node.intra_latency_s;
    }
    const bool slower =
        !seeded || step.bandwidth < costs.hop.bandwidth ||
        (step.bandwidth == costs.hop.bandwidth &&
         (step.latency_s > costs.hop.latency_s ||
          (step.latency_s == costs.hop.latency_s && step.crosses_node &&
           !costs.hop.crosses_node)));
    if (slower) {
      seeded = true;
      costs.hop = step;
    }
  }
  // Each synchronous ring step completes when the *slowest* of the D
  // concurrent hop messages lands, so latency jitter and tail stalls amplify
  // with ring size — the reason large data-parallel widths are expensive on
  // commodity networks (Observation 2).
  costs.mean_step_latency_s = costs.hop.latency_s;
  if (costs.hop.crosses_node) {
    const double d = static_cast<double>(num_members);
    const FabricSpec& fabric = topology_->fabric();
    // E[max of D log-normal latencies] ~ median * exp(sigma * sqrt(2 ln D)).
    double latency = fabric.base_latency_s;
    if (fabric.jitter_sigma > 0.0 && d >= 2.0) {
      latency *= std::exp(fabric.jitter_sigma * std::sqrt(2.0 * std::log(d)));
    }
    double stall = 0.0;
    if (fabric.stall_probability > 0.0) {
      // NCCL-style rings pipeline many chunks, so a stalled message overlaps
      // with other chunks' progress; only ~kRingStallExposure of each stall
      // reaches the critical path.
      stall = kRingStallExposure *
              (1.0 - std::pow(1.0 - fabric.stall_probability, d)) * fabric.stall_mean_s;
    }
    costs.mean_step_latency_s = latency + stall;
  }
  return costs;
}

const Network::RingCosts& Network::RingCostsFor(const std::vector<GpuId>& members,
                                                int concurrent_rings) const {
  VARUNA_CHECK_GE(concurrent_rings, 1);
  // Walk the ring once to build the canonical shape profile: count real hops
  // per hop class (same-GPU hops move no data and are skipped), then emit the
  // sorted (class_id << 32 | count) multiset into the reused scratch.
  touched_classes_.clear();
  for (size_t i = 0; i < members.size(); ++i) {
    const GpuId a = members[i];
    const GpuId b = members[(i + 1) % members.size()];
    if (a == b) {
      continue;
    }
    const NodeId node_a = topology_->NodeOfFast(a);
    const NodeId node_b = topology_->NodeOfFast(b);
    const int class_a = topology_->LinkClassOfFast(node_a);
    int hop_id;
    if (node_a == node_b) {
      hop_id = InternHopClass(class_a, class_a, false);
    } else {
      const int class_b = topology_->LinkClassOfFast(node_b);
      hop_id = InternHopClass(class_a < class_b ? class_a : class_b,
                              class_a < class_b ? class_b : class_a, true);
    }
    if (hop_counts_[static_cast<size_t>(hop_id)]++ == 0) {
      touched_classes_.push_back(hop_id);
    }
  }
  ShapeKeyView view;
  view.size = static_cast<uint32_t>(members.size());
  view.concurrent_rings = concurrent_rings;
  profile_scratch_.clear();
  if (touched_classes_.empty()) {
    view.degenerate_class = topology_->LinkClassOfFast(topology_->NodeOfFast(members[0]));
  } else {
    for (const int hop_id : touched_classes_) {
      profile_scratch_.push_back((static_cast<uint64_t>(static_cast<uint32_t>(hop_id)) << 32) |
                                 hop_counts_[static_cast<size_t>(hop_id)]);
      hop_counts_[static_cast<size_t>(hop_id)] = 0;
    }
    std::sort(profile_scratch_.begin(), profile_scratch_.end());
  }
  view.profile = profile_scratch_.data();
  view.profile_size = profile_scratch_.size();

  auto it = ring_cache_.find(view);
  if (it != ring_cache_.end()) {
    ++ring_cache_hits_;
    return it->second;
  }
  ++ring_cache_misses_;
  const RingCosts costs = ComputeShapeCosts(view, static_cast<int>(members.size()));
  ShapeKey key;
  key.size = view.size;
  key.concurrent_rings = view.concurrent_rings;
  key.degenerate_class = view.degenerate_class;
  key.profile.assign(view.profile, view.profile + view.profile_size);
  auto inserted = ring_cache_.emplace(std::move(key), costs);
  return inserted.first->second;
}

double Network::MeanAllReduceTime(const std::vector<GpuId>& members, double bytes,
                                  int concurrent_rings) const {
  VARUNA_CHECK(!members.empty());
  if (members.size() == 1 || bytes <= 0.0) {
    return 0.0;
  }
  const double d = static_cast<double>(members.size());
  const RingCosts& costs = RingCostsFor(members, concurrent_rings);
  const double steps = 2.0 * (d - 1.0);
  return steps * (bytes / d / costs.hop.bandwidth + costs.mean_step_latency_s);
}

double Network::SampleAllReduceTime(const std::vector<GpuId>& members, double bytes,
                                    int concurrent_rings, Rng* rng) const {
  VARUNA_CHECK(!members.empty());
  if (members.size() == 1 || bytes <= 0.0) {
    return 0.0;
  }
  const double d = static_cast<double>(members.size());
  const RingCosts& costs = RingCostsFor(members, concurrent_rings);
  const int steps = static_cast<int>(2.0 * (d - 1.0));
  const double bytes_term = bytes / d / costs.hop.bandwidth;
  if (!costs.hop.crosses_node) {
    return steps * (bytes_term + costs.hop.latency_s);
  }
  const FabricSpec& fabric = topology_->fabric();
  // Draw each step's slowest hop explicitly: O(D^2) draws, fine for the ring
  // sizes the evaluation uses; fall back to the analytic mean for huge rings.
  // Contract (see header): this branch consumes ZERO draws from `rng`.
  if (d > 64.0) {
    return MeanAllReduceTime(members, bytes, concurrent_rings);
  }
  double total = 0.0;
  for (int step = 0; step < steps; ++step) {
    double slowest = 0.0;
    for (int hop_index = 0; hop_index < static_cast<int>(d); ++hop_index) {
      double latency = fabric.jitter_sigma > 0.0
                           ? rng->LogNormalMedian(fabric.base_latency_s, fabric.jitter_sigma)
                           : fabric.base_latency_s;
      if (fabric.stall_probability > 0.0 && rng->Bernoulli(fabric.stall_probability)) {
        latency += kRingStallExposure * rng->Exponential(fabric.stall_mean_s);
      }
      slowest = std::max(slowest, latency);
    }
    total += bytes_term + slowest;
  }
  return total;
}

}  // namespace varuna
