#include "src/net/network.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace varuna {

// Fraction of a tail stall that a chunk-pipelined ring collective cannot
// hide (the rest overlaps with other chunks' transfers).
constexpr double kRingStallExposure = 0.35;

double Network::FlowBandwidth(GpuId src, GpuId dst, int concurrent_flows) const {
  VARUNA_CHECK_GE(concurrent_flows, 1);
  if (src == dst) {
    // Loopback copies are not modelled; treat as effectively instantaneous by
    // giving them intra-node bandwidth.
    return topology_->Node(topology_->NodeOf(src)).intra_bandwidth_bps;
  }
  if (topology_->SameNode(src, dst)) {
    return topology_->Node(topology_->NodeOf(src)).intra_bandwidth_bps;
  }
  const double src_share =
      topology_->Node(topology_->NodeOf(src)).nic_bandwidth_bps / concurrent_flows;
  const double dst_share =
      topology_->Node(topology_->NodeOf(dst)).nic_bandwidth_bps / concurrent_flows;
  const double fabric = topology_->fabric().per_flow_bandwidth_bps;
  return std::min({src_share, dst_share, fabric});
}

double Network::MeanLatency(GpuId src, GpuId dst) const {
  if (src == dst) {
    return 0.0;
  }
  if (topology_->SameNode(src, dst)) {
    return topology_->Node(topology_->NodeOf(src)).intra_latency_s;
  }
  const FabricSpec& fabric = topology_->fabric();
  // Expected value of the stall term is probability * mean.
  return fabric.base_latency_s + fabric.stall_probability * fabric.stall_mean_s;
}

double Network::MeanTransferTime(GpuId src, GpuId dst, double bytes,
                                 int concurrent_flows) const {
  VARUNA_CHECK_GE(bytes, 0.0);
  if (src == dst) {
    return 0.0;
  }
  return MeanLatency(src, dst) + bytes / FlowBandwidth(src, dst, concurrent_flows);
}

double Network::SampleTransferTime(GpuId src, GpuId dst, double bytes, int concurrent_flows,
                                   Rng* rng) const {
  VARUNA_CHECK_GE(bytes, 0.0);
  if (src == dst) {
    return 0.0;
  }
  const double serialization = bytes / FlowBandwidth(src, dst, concurrent_flows);
  if (topology_->SameNode(src, dst)) {
    return topology_->Node(topology_->NodeOf(src)).intra_latency_s + serialization;
  }
  const FabricSpec& fabric = topology_->fabric();
  double latency = fabric.jitter_sigma > 0.0
                       ? rng->LogNormalMedian(fabric.base_latency_s, fabric.jitter_sigma)
                       : fabric.base_latency_s;
  if (fabric.stall_probability > 0.0 && rng->Bernoulli(fabric.stall_probability)) {
    latency += rng->Exponential(fabric.stall_mean_s);
  }
  return latency + serialization;
}

Network::RingStep Network::SlowestHop(const std::vector<GpuId>& members,
                                      int concurrent_rings) const {
  RingStep step;
  step.bandwidth = topology_->Node(topology_->NodeOf(members[0])).intra_bandwidth_bps;
  step.latency_s = topology_->Node(topology_->NodeOf(members[0])).intra_latency_s;
  for (size_t i = 0; i < members.size(); ++i) {
    const GpuId a = members[i];
    const GpuId b = members[(i + 1) % members.size()];
    if (a == b) {
      continue;
    }
    const double bandwidth = FlowBandwidth(a, b, concurrent_rings);
    if (bandwidth < step.bandwidth) {
      step.bandwidth = bandwidth;
      step.latency_s = MeanLatency(a, b);
      step.crosses_node = !topology_->SameNode(a, b);
    }
  }
  return step;
}

double Network::MeanAllReduceTime(const std::vector<GpuId>& members, double bytes,
                                  int concurrent_rings) const {
  VARUNA_CHECK(!members.empty());
  if (members.size() == 1 || bytes <= 0.0) {
    return 0.0;
  }
  const double d = static_cast<double>(members.size());
  const RingStep hop = SlowestHop(members, concurrent_rings);
  const double steps = 2.0 * (d - 1.0);
  // Each synchronous ring step completes when the *slowest* of the D
  // concurrent hop messages lands, so latency jitter and tail stalls amplify
  // with ring size — the reason large data-parallel widths are expensive on
  // commodity networks (Observation 2).
  double step_latency = hop.latency_s;
  if (hop.crosses_node) {
    const FabricSpec& fabric = topology_->fabric();
    // E[max of D log-normal latencies] ~ median * exp(sigma * sqrt(2 ln D)).
    double latency = fabric.base_latency_s;
    if (fabric.jitter_sigma > 0.0 && d >= 2.0) {
      latency *= std::exp(fabric.jitter_sigma * std::sqrt(2.0 * std::log(d)));
    }
    double stall = 0.0;
    if (fabric.stall_probability > 0.0) {
      // NCCL-style rings pipeline many chunks, so a stalled message overlaps
      // with other chunks' progress; only ~kRingStallExposure of each stall
      // reaches the critical path.
      stall = kRingStallExposure *
              (1.0 - std::pow(1.0 - fabric.stall_probability, d)) * fabric.stall_mean_s;
    }
    step_latency = latency + stall;
  }
  return steps * (bytes / d / hop.bandwidth + step_latency);
}

double Network::SampleAllReduceTime(const std::vector<GpuId>& members, double bytes,
                                    int concurrent_rings, Rng* rng) const {
  VARUNA_CHECK(!members.empty());
  if (members.size() == 1 || bytes <= 0.0) {
    return 0.0;
  }
  const double d = static_cast<double>(members.size());
  const RingStep hop = SlowestHop(members, concurrent_rings);
  const int steps = static_cast<int>(2.0 * (d - 1.0));
  const double bytes_term = bytes / d / hop.bandwidth;
  if (!hop.crosses_node) {
    return steps * (bytes_term + hop.latency_s);
  }
  const FabricSpec& fabric = topology_->fabric();
  // Draw each step's slowest hop explicitly: O(D^2) draws, fine for the ring
  // sizes the evaluation uses; fall back to the analytic mean for huge rings.
  if (d > 64.0) {
    return MeanAllReduceTime(members, bytes, concurrent_rings);
  }
  double total = 0.0;
  for (int step = 0; step < steps; ++step) {
    double slowest = 0.0;
    for (int hop_index = 0; hop_index < static_cast<int>(d); ++hop_index) {
      double latency = fabric.jitter_sigma > 0.0
                           ? rng->LogNormalMedian(fabric.base_latency_s, fabric.jitter_sigma)
                           : fabric.base_latency_s;
      if (fabric.stall_probability > 0.0 && rng->Bernoulli(fabric.stall_probability)) {
        latency += kRingStallExposure * rng->Exponential(fabric.stall_mean_s);
      }
      slowest = std::max(slowest, latency);
    }
    total += bytes_term + slowest;
  }
  return total;
}

}  // namespace varuna
