// Point-to-point transfer timing and ring-allreduce cost model on top of a
// Topology. Two entry points per quantity:
//   * Sample...  — draws jitter/stalls from an Rng; used by the DES testbed.
//   * Mean...    — expectation only; used by analytical baselines.
// Varuna's own fast simulator uses neither directly: it consumes values that
// the calibrator *measured* on the sampled testbed (§4.3).
//
// Performance: the testbed executor resolves a ring's slowest-hop parameters
// for every mini-batch allreduce, and re-walking the ring is O(D) pair
// resolutions each time. Since the topology is append-only (node specs never
// change once added), the slowest hop and the derived per-step latency are
// memoized by canonical ring *shape class*: the multiset of hop link classes
// (Topology::LinkClassOf vocabulary), the member count, and concurrent_rings
// (plus the sole member's node class for degenerate all-same-GPU rings).
// Every quantity in RingCosts is a function of exactly those inputs, so
// rotations, reversals, and substitutions of same-class GPUs all map to one
// entry — morphed rings re-hit instead of re-paying the walk. Entries never
// invalidate. The memo is deliberately unsynchronized: the cost models run on
// the session's single DES thread (the pooled config sweep consumes
// calibrated values through FastSimulator instead).
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/net/topology.h"

namespace varuna {

class Network {
 public:
  // Cross-node flows from one node share its NIC. The `concurrent_flows`
  // argument to the transfer functions says how many flows the caller expects
  // to be in flight on the same NIC (the §4.3 calibration micro-benchmark
  // measures allreduce with k concurrent rings).
  explicit Network(const Topology* topology) : topology_(topology) {}

  // Effective bandwidth for one flow between the two GPUs, with
  // `concurrent_flows` flows sharing each NIC involved (>= 1).
  double FlowBandwidth(GpuId src, GpuId dst, int concurrent_flows) const;

  // Mean one-way latency between the two GPUs.
  double MeanLatency(GpuId src, GpuId dst) const;

  // Expected transfer time of `bytes` between the GPUs.
  double MeanTransferTime(GpuId src, GpuId dst, double bytes, int concurrent_flows) const;

  // Expected completion time of `flows` point-to-point transfers of
  // `flow_bytes` each, all in flight at once and sharing NICs with each
  // other: the max over flows, each priced with concurrent_flows =
  // flows.size(). The recovery path prices peer-restore shard pulls and
  // live-handoff streams this way. Empty `flows` is free.
  double MeanParallelTransferTime(const std::vector<std::pair<GpuId, GpuId>>& flows,
                                  double flow_bytes) const;

  // Transfer time with sampled latency jitter and tail stalls.
  double SampleTransferTime(GpuId src, GpuId dst, double bytes, int concurrent_flows,
                            Rng* rng) const;

  // Bandwidth-optimal ring allreduce of `bytes` across `members` (Patarasuk &
  // Yuan): 2(D-1) steps, each moving bytes/D over the slowest ring link.
  // `concurrent_rings` models k allreduces in flight sharing NICs (§4.3).
  // With a single member this is free.
  double MeanAllReduceTime(const std::vector<GpuId>& members, double bytes,
                           int concurrent_rings) const;
  // Draw-stream contract: rings with more than 64 members fall back to the
  // analytic mean and consume ZERO draws from `rng` — the per-step explicit
  // max over D hop samples is O(D^2) draws and only the evaluation-scale
  // rings warrant it. Callers may therefore change a ring's size across the
  // threshold without perturbing any downstream consumer of the same Rng
  // beyond the draws of the <= 64 case itself.
  double SampleAllReduceTime(const std::vector<GpuId>& members, double bytes,
                             int concurrent_rings, Rng* rng) const;

  // Ring-cost memo counters (SessionStats mirrors these into the bench JSON).
  uint64_t ring_cache_hits() const { return ring_cache_hits_; }
  uint64_t ring_cache_misses() const { return ring_cache_misses_; }

 private:
  // Slowest link time parameters around the ring formed by `members` in order.
  struct RingStep {
    double bandwidth = 0.0;   // bytes/sec of the slowest hop
    double latency_s = 0.0;   // mean latency (seconds) of the slowest hop
    bool crosses_node = false;
  };
  // Everything about a ring that does not depend on the payload size: the
  // slowest hop and the jitter/stall-amplified expected per-step latency.
  struct RingCosts {
    RingStep hop;
    double mean_step_latency_s = 0.0;
  };

  // A *hop class* is the link-class pair an adjacent ring hop resolves to:
  // intra-node hops carry the node's link class, cross-node hops the unordered
  // pair of endpoint classes (the cost model only reads min NIC + fabric).
  // Classes are interned per Network in first-encounter order; the ids are
  // private to this instance's memo and never observable in any output.
  struct HopClass {
    int class_lo = 0;
    int class_hi = 0;
    bool crosses_node = false;
  };

  // Canonical ring shape key. Two rings with the same key have bit-identical
  // RingCosts: the slowest hop is a value-canonical min over the hop-class
  // set, the bytes term divides by `size`, and the jitter/stall amplification
  // reads only `size` and crosses_node. `profile` is the sorted multiset of
  // (hop_class_id << 32 | hop count); same-GPU hops move no data and are
  // excluded, so an all-same-GPU ring has an empty profile and is keyed by
  // its sole member's node link class instead.
  struct ShapeKey {
    uint32_t size = 0;  // member count D
    int concurrent_rings = 0;
    int degenerate_class = -1;
    std::vector<uint64_t> profile;
  };
  struct ShapeKeyView {
    uint32_t size = 0;
    int concurrent_rings = 0;
    int degenerate_class = -1;
    const uint64_t* profile = nullptr;
    size_t profile_size = 0;
  };
  struct ShapeKeyHash {
    using is_transparent = void;
    static size_t HashParts(uint32_t size, int rings, int degenerate_class,
                            const uint64_t* profile, size_t profile_size);
    size_t operator()(const ShapeKey& key) const {
      return HashParts(key.size, key.concurrent_rings, key.degenerate_class,
                       key.profile.data(), key.profile.size());
    }
    size_t operator()(const ShapeKeyView& key) const {
      return HashParts(key.size, key.concurrent_rings, key.degenerate_class, key.profile,
                       key.profile_size);
    }
  };
  struct ShapeKeyEq {
    using is_transparent = void;
    static bool Eq(const ShapeKey& a, uint32_t size, int rings, int degenerate_class,
                   const uint64_t* profile, size_t profile_size) {
      if (a.size != size || a.concurrent_rings != rings ||
          a.degenerate_class != degenerate_class || a.profile.size() != profile_size) {
        return false;
      }
      for (size_t i = 0; i < profile_size; ++i) {
        if (a.profile[i] != profile[i]) {
          return false;
        }
      }
      return true;
    }
    bool operator()(const ShapeKey& a, const ShapeKey& b) const {
      return Eq(a, b.size, b.concurrent_rings, b.degenerate_class, b.profile.data(),
                b.profile.size());
    }
    bool operator()(const ShapeKeyView& a, const ShapeKey& b) const {
      return Eq(b, a.size, a.concurrent_rings, a.degenerate_class, a.profile, a.profile_size);
    }
    bool operator()(const ShapeKey& a, const ShapeKeyView& b) const { return operator()(b, a); }
  };

  // Interns the hop class, growing the table on first encounter. Linear scan:
  // real clusters have a handful of VM types, so the table stays tiny.
  int InternHopClass(int class_lo, int class_hi, bool crosses_node) const;

  // Computes RingCosts from a shape key (slowest hop with the value-canonical
  // tie-break, then the jitter/stall-amplified per-step latency).
  RingCosts ComputeShapeCosts(const ShapeKeyView& key, int num_members) const;

  // Memoized (slowest hop + expected per-step latency) for the ring.
  const RingCosts& RingCostsFor(const std::vector<GpuId>& members, int concurrent_rings) const;

  const Topology* topology_;
  mutable std::unordered_map<ShapeKey, RingCosts, ShapeKeyHash, ShapeKeyEq> ring_cache_;
  mutable std::vector<HopClass> hop_classes_;
  // Reused per-call scratch for the shape walk (counts indexed by hop class).
  mutable std::vector<uint32_t> hop_counts_;
  mutable std::vector<int> touched_classes_;
  mutable std::vector<uint64_t> profile_scratch_;
  mutable uint64_t ring_cache_hits_ = 0;
  mutable uint64_t ring_cache_misses_ = 0;
};

}  // namespace varuna

#endif  // SRC_NET_NETWORK_H_
