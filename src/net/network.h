// Point-to-point transfer timing and ring-allreduce cost model on top of a
// Topology. Two entry points per quantity:
//   * Sample...  — draws jitter/stalls from an Rng; used by the DES testbed.
//   * Mean...    — expectation only; used by analytical baselines.
// Varuna's own fast simulator uses neither directly: it consumes values that
// the calibrator *measured* on the sampled testbed (§4.3).
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <vector>

#include "src/common/rng.h"
#include "src/net/topology.h"

namespace varuna {

class Network {
 public:
  // Cross-node flows from one node share its NIC. The `concurrent_flows`
  // argument to the transfer functions says how many flows the caller expects
  // to be in flight on the same NIC (the §4.3 calibration micro-benchmark
  // measures allreduce with k concurrent rings).
  explicit Network(const Topology* topology) : topology_(topology) {}

  // Effective bandwidth for one flow between the two GPUs, with
  // `concurrent_flows` flows sharing each NIC involved (>= 1).
  double FlowBandwidth(GpuId src, GpuId dst, int concurrent_flows) const;

  // Mean one-way latency between the two GPUs.
  double MeanLatency(GpuId src, GpuId dst) const;

  // Expected transfer time of `bytes` between the GPUs.
  double MeanTransferTime(GpuId src, GpuId dst, double bytes, int concurrent_flows) const;

  // Transfer time with sampled latency jitter and tail stalls.
  double SampleTransferTime(GpuId src, GpuId dst, double bytes, int concurrent_flows,
                            Rng* rng) const;

  // Bandwidth-optimal ring allreduce of `bytes` across `members` (Patarasuk &
  // Yuan): 2(D-1) steps, each moving bytes/D over the slowest ring link.
  // `concurrent_rings` models k allreduces in flight sharing NICs (§4.3).
  // With a single member this is free.
  double MeanAllReduceTime(const std::vector<GpuId>& members, double bytes,
                           int concurrent_rings) const;
  double SampleAllReduceTime(const std::vector<GpuId>& members, double bytes,
                             int concurrent_rings, Rng* rng) const;

 private:
  // Slowest link time parameters around the ring formed by `members` in order.
  struct RingStep {
    double bandwidth = 0.0;   // bytes/sec of the slowest hop
    double latency_s = 0.0;   // mean latency (seconds) of the slowest hop
    bool crosses_node = false;
  };
  RingStep SlowestHop(const std::vector<GpuId>& members, int concurrent_rings) const;

  const Topology* topology_;
};

}  // namespace varuna

#endif  // SRC_NET_NETWORK_H_
