// Point-to-point transfer timing and ring-allreduce cost model on top of a
// Topology. Two entry points per quantity:
//   * Sample...  — draws jitter/stalls from an Rng; used by the DES testbed.
//   * Mean...    — expectation only; used by analytical baselines.
// Varuna's own fast simulator uses neither directly: it consumes values that
// the calibrator *measured* on the sampled testbed (§4.3).
//
// Performance: the testbed executor resolves a ring's slowest-hop parameters
// for every mini-batch allreduce, and re-walking the ring is O(D) pair
// resolutions each time. Since the topology is append-only (node specs never
// change once added), the slowest hop and the derived per-step latency are
// memoized per (member sequence, concurrent_rings) — the key is the exact
// GpuId sequence because hops between *identical* GPUs are skipped, so two
// rings with the same node pattern but different GPU repetition patterns are
// distinct. Entries never invalidate. The memo is deliberately unsynchronized:
// the cost models run on the session's single DES thread (the pooled config
// sweep consumes calibrated values through FastSimulator instead).
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/net/topology.h"

namespace varuna {

class Network {
 public:
  // Cross-node flows from one node share its NIC. The `concurrent_flows`
  // argument to the transfer functions says how many flows the caller expects
  // to be in flight on the same NIC (the §4.3 calibration micro-benchmark
  // measures allreduce with k concurrent rings).
  explicit Network(const Topology* topology) : topology_(topology) {}

  // Effective bandwidth for one flow between the two GPUs, with
  // `concurrent_flows` flows sharing each NIC involved (>= 1).
  double FlowBandwidth(GpuId src, GpuId dst, int concurrent_flows) const;

  // Mean one-way latency between the two GPUs.
  double MeanLatency(GpuId src, GpuId dst) const;

  // Expected transfer time of `bytes` between the GPUs.
  double MeanTransferTime(GpuId src, GpuId dst, double bytes, int concurrent_flows) const;

  // Transfer time with sampled latency jitter and tail stalls.
  double SampleTransferTime(GpuId src, GpuId dst, double bytes, int concurrent_flows,
                            Rng* rng) const;

  // Bandwidth-optimal ring allreduce of `bytes` across `members` (Patarasuk &
  // Yuan): 2(D-1) steps, each moving bytes/D over the slowest ring link.
  // `concurrent_rings` models k allreduces in flight sharing NICs (§4.3).
  // With a single member this is free.
  double MeanAllReduceTime(const std::vector<GpuId>& members, double bytes,
                           int concurrent_rings) const;
  // Draw-stream contract: rings with more than 64 members fall back to the
  // analytic mean and consume ZERO draws from `rng` — the per-step explicit
  // max over D hop samples is O(D^2) draws and only the evaluation-scale
  // rings warrant it. Callers may therefore change a ring's size across the
  // threshold without perturbing any downstream consumer of the same Rng
  // beyond the draws of the <= 64 case itself.
  double SampleAllReduceTime(const std::vector<GpuId>& members, double bytes,
                             int concurrent_rings, Rng* rng) const;

  // Ring-cost memo counters (SessionStats mirrors these into the bench JSON).
  uint64_t ring_cache_hits() const { return ring_cache_hits_; }
  uint64_t ring_cache_misses() const { return ring_cache_misses_; }

 private:
  // Slowest link time parameters around the ring formed by `members` in order.
  struct RingStep {
    double bandwidth = 0.0;   // bytes/sec of the slowest hop
    double latency_s = 0.0;   // mean latency (seconds) of the slowest hop
    bool crosses_node = false;
  };
  // Everything about a ring that does not depend on the payload size: the
  // slowest hop and the jitter/stall-amplified expected per-step latency.
  struct RingCosts {
    RingStep hop;
    double mean_step_latency_s = 0.0;
  };

  struct RingKey {
    std::vector<GpuId> members;
    int concurrent_rings = 0;
  };
  struct RingKeyView {
    const GpuId* members = nullptr;
    size_t size = 0;
    int concurrent_rings = 0;
  };
  struct RingKeyHash {
    using is_transparent = void;
    static size_t HashSpan(const GpuId* data, size_t size, int rings);
    size_t operator()(const RingKey& key) const {
      return HashSpan(key.members.data(), key.members.size(), key.concurrent_rings);
    }
    size_t operator()(const RingKeyView& key) const {
      return HashSpan(key.members, key.size, key.concurrent_rings);
    }
  };
  struct RingKeyEq {
    using is_transparent = void;
    static bool Eq(const GpuId* a, size_t an, int ar, const GpuId* b, size_t bn, int br) {
      if (an != bn || ar != br) {
        return false;
      }
      for (size_t i = 0; i < an; ++i) {
        if (a[i] != b[i]) {
          return false;
        }
      }
      return true;
    }
    bool operator()(const RingKey& a, const RingKey& b) const {
      return Eq(a.members.data(), a.members.size(), a.concurrent_rings, b.members.data(),
                b.members.size(), b.concurrent_rings);
    }
    bool operator()(const RingKeyView& a, const RingKey& b) const {
      return Eq(a.members, a.size, a.concurrent_rings, b.members.data(), b.members.size(),
                b.concurrent_rings);
    }
    bool operator()(const RingKey& a, const RingKeyView& b) const { return operator()(b, a); }
  };

  RingStep SlowestHop(const std::vector<GpuId>& members, int concurrent_rings) const;
  // Memoized (SlowestHop + expected per-step latency) for the ring.
  const RingCosts& RingCostsFor(const std::vector<GpuId>& members, int concurrent_rings) const;

  const Topology* topology_;
  mutable std::unordered_map<RingKey, RingCosts, RingKeyHash, RingKeyEq> ring_cache_;
  mutable uint64_t ring_cache_hits_ = 0;
  mutable uint64_t ring_cache_misses_ = 0;
};

}  // namespace varuna

#endif  // SRC_NET_NETWORK_H_
