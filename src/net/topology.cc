#include "src/net/topology.h"

namespace varuna {

NodeId Topology::AddNode(const NodeSpec& spec) {
  VARUNA_CHECK_GT(spec.num_gpus, 0);
  const NodeId id = num_nodes();
  nodes_.push_back(spec);
  for (int g = 0; g < spec.num_gpus; ++g) {
    gpu_to_node_.push_back(id);
  }
  return id;
}

std::vector<GpuId> Topology::GpusOfNode(NodeId node) const {
  std::vector<GpuId> gpus;
  for (GpuId g = 0; g < num_gpus(); ++g) {
    if (gpu_to_node_[static_cast<size_t>(g)] == node) {
      gpus.push_back(g);
    }
  }
  return gpus;
}

}  // namespace varuna
