#include "src/net/topology.h"

namespace varuna {

NodeId Topology::AddNode(const NodeSpec& spec) {
  VARUNA_CHECK_GT(spec.num_gpus, 0);
  const NodeId id = num_nodes();
  nodes_.push_back(spec);
  for (int g = 0; g < spec.num_gpus; ++g) {
    gpu_to_node_.push_back(id);
  }
  // Assign the node's link class: reuse an existing class whose link-relevant
  // fields match bit-for-bit, else mint a new one. Clusters have a handful of
  // VM types, so a linear scan over classes is cheaper than any hashing.
  int link_class = -1;
  for (int c = 0; c < num_link_classes(); ++c) {
    const NodeSpec& rep = nodes_[static_cast<size_t>(link_class_specs_[static_cast<size_t>(c)])];
    if (rep.intra_bandwidth_bps == spec.intra_bandwidth_bps &&
        rep.intra_latency_s == spec.intra_latency_s &&
        rep.nic_bandwidth_bps == spec.nic_bandwidth_bps) {
      link_class = c;
      break;
    }
  }
  if (link_class < 0) {
    link_class = num_link_classes();
    link_class_specs_.push_back(id);
  }
  node_link_class_.push_back(link_class);
  return id;
}

double Topology::MinCrossShardLatency(const std::vector<int>& shard_of_node) const {
  VARUNA_CHECK_EQ(static_cast<int>(shard_of_node.size()), num_nodes());
  double min_latency = -1.0;
  for (NodeId a = 0; a < num_nodes(); ++a) {
    for (NodeId b = a + 1; b < num_nodes(); ++b) {
      if (shard_of_node[static_cast<size_t>(a)] == shard_of_node[static_cast<size_t>(b)]) {
        continue;
      }
      const double latency = PairClass(a, b).latency_s;
      if (min_latency < 0.0 || latency < min_latency) {
        min_latency = latency;
      }
    }
  }
  return min_latency < 0.0 ? 0.0 : min_latency;
}

std::vector<GpuId> Topology::GpusOfNode(NodeId node) const {
  std::vector<GpuId> gpus;
  for (GpuId g = 0; g < num_gpus(); ++g) {
    if (gpu_to_node_[static_cast<size_t>(g)] == node) {
      gpus.push_back(g);
    }
  }
  return gpus;
}

}  // namespace varuna
