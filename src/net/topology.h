// Cluster network topology: nodes (VMs) with some number of GPUs each,
// an intra-node interconnect (PCIe or NVLink), a NIC, and a shared data-center
// fabric. This is the paper's "commodity networking" model: VM pairs may be
// routed through multiple levels of bottleneck switches (§7 experimental
// setup), which we capture as a fabric bandwidth cap and added latency/jitter.
//
// Hot-path contract: the testbed executor resolves link parameters once per
// simulated message, so the per-node-pair class parameters (same-node intra
// link vs cross-node NIC+fabric) are precomputed — node specs are flat and
// immutable once added, the fabric's expected latency is folded at
// construction, and LinkClass() classifies a pair with two unchecked loads.
// AddNode() is append-only (GpuIds stay stable across morphs and sessions add
// nodes continuously), so everything derived from existing nodes stays valid
// forever; nothing here is ever invalidated.
#ifndef SRC_NET_TOPOLOGY_H_
#define SRC_NET_TOPOLOGY_H_

#include <vector>

#include "src/common/check.h"

namespace varuna {

using GpuId = int;
using NodeId = int;

struct NodeSpec {
  int num_gpus = 1;
  // Intra-node GPU-to-GPU link (PCIe ~ 100 Gbps on NC24, NVLink 2.4 Tbps on DGX-2).
  double intra_bandwidth_bps = 0.0;  // bytes/sec
  double intra_latency_s = 0.0;
  // NIC shared by all GPUs of the node.
  double nic_bandwidth_bps = 0.0;  // bytes/sec
};

struct FabricSpec {
  // Per-flow cap through the data-center fabric (bottleneck switches). A flow
  // never gets more than min(src NIC share, dst NIC share, fabric cap).
  double per_flow_bandwidth_bps = 0.0;  // bytes/sec
  double base_latency_s = 0.0;          // propagation + switching, mean
  // Log-normal jitter sigma applied to cross-node latency samples. 0 = none.
  double jitter_sigma = 0.0;
  // Occasional long-tail stall: with probability `stall_probability` a
  // transfer is delayed by an extra Exponential(stall_mean_s). Models TCP
  // retransmits / incast on oversubscribed switches.
  double stall_probability = 0.0;
  double stall_mean_s = 0.0;
};

// Link-class parameters of one (node, node) pair, resolved for the cost
// models: either the intra-node link or the NIC/fabric class.
struct LinkClass {
  // Same-node: the intra link bandwidth. Cross-node: min of the two NIC
  // bandwidths, *before* dividing by concurrent flows and capping at the
  // fabric per-flow limit (both depend on the caller's flow count).
  double bandwidth_bps = 0.0;
  // Mean one-way latency of the class (cross-node folds the expected stall).
  double latency_s = 0.0;
  bool crosses_node = false;
};

class Topology {
 public:
  explicit Topology(FabricSpec fabric)
      : fabric_(fabric),
        fabric_mean_latency_s_(fabric.base_latency_s +
                               fabric.stall_probability * fabric.stall_mean_s) {}

  // Adds a node; returns its id. GPUs get consecutive global ids.
  NodeId AddNode(const NodeSpec& spec);

  // Removes nothing — preempted VMs are handled at the cluster layer by
  // excluding their GPUs from placements; the topology stays append-only so
  // GpuIds remain stable across morphs.

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_gpus() const { return static_cast<int>(gpu_to_node_.size()); }

  NodeId NodeOf(GpuId gpu) const {
    VARUNA_CHECK_GE(gpu, 0);
    VARUNA_CHECK_LT(gpu, num_gpus());
    return gpu_to_node_[static_cast<size_t>(gpu)];
  }

  const NodeSpec& Node(NodeId node) const {
    VARUNA_CHECK_GE(node, 0);
    VARUNA_CHECK_LT(node, num_nodes());
    return nodes_[static_cast<size_t>(node)];
  }

  // Global GPU ids hosted by `node`.
  std::vector<GpuId> GpusOfNode(NodeId node) const;

  bool SameNode(GpuId a, GpuId b) const { return NodeOf(a) == NodeOf(b); }

  const FabricSpec& fabric() const { return fabric_; }

  // E[latency] of one cross-node message: base + stall_probability * mean
  // stall, folded once at construction.
  double fabric_mean_latency_s() const { return fabric_mean_latency_s_; }

  // --- Link classes ---------------------------------------------------------
  // Nodes are binned into *link classes*: nodes whose link-relevant parameters
  // (intra bandwidth/latency, NIC bandwidth) are bit-identical share a class.
  // Every pairwise link cost in this model is a function of the two endpoint
  // classes alone, so the classes are the vocabulary for canonical ring
  // *shape* keys (Network's ring-cost memo) and for conservative-lookahead
  // bounds (the sharded simulation engine). Classes are assigned densely in
  // AddNode order and, like everything else here, never invalidate.
  int num_link_classes() const { return static_cast<int>(link_class_specs_.size()); }

  int LinkClassOf(NodeId node) const {
    VARUNA_CHECK_GE(node, 0);
    VARUNA_CHECK_LT(node, num_nodes());
    return node_link_class_[static_cast<size_t>(node)];
  }

  // Representative spec of a link class (all members agree on the link fields).
  const NodeSpec& LinkClassSpec(int link_class) const {
    VARUNA_CHECK_GE(link_class, 0);
    VARUNA_CHECK_LT(link_class, num_link_classes());
    return nodes_[static_cast<size_t>(link_class_specs_[static_cast<size_t>(link_class)])];
  }

  // Minimum link latency between any two nodes assigned to *different* shards
  // under `shard_of_node` (one entry per node). This is the conservative
  // lookahead bound for a node-sharded simulation: no cross-shard interaction
  // can take effect sooner than this. Returns 0 when fewer than two shards
  // are populated (no cross-shard pair exists).
  double MinCrossShardLatency(const std::vector<int>& shard_of_node) const;

  // --- Hot-path accessors (per-message cost resolution) ---------------------
  // Unchecked GpuId -> NodeId map; callers pass ids they obtained from the
  // topology itself (placements only hold valid ids).
  NodeId NodeOfFast(GpuId gpu) const { return gpu_to_node_[static_cast<size_t>(gpu)]; }

  // Unchecked NodeId -> link class map (hot path of the ring-shape walk).
  int LinkClassOfFast(NodeId node) const {
    return node_link_class_[static_cast<size_t>(node)];
  }

  // Class parameters of the (NodeOf(src), NodeOf(dst)) pair: two unchecked
  // loads and a branch, no bounds re-validation.
  LinkClass PairClass(NodeId a, NodeId b) const {
    const NodeSpec& node_a = nodes_[static_cast<size_t>(a)];
    if (a == b) {
      return LinkClass{node_a.intra_bandwidth_bps, node_a.intra_latency_s, false};
    }
    const NodeSpec& node_b = nodes_[static_cast<size_t>(b)];
    const double nic = node_a.nic_bandwidth_bps < node_b.nic_bandwidth_bps
                           ? node_a.nic_bandwidth_bps
                           : node_b.nic_bandwidth_bps;
    return LinkClass{nic, fabric_mean_latency_s_, true};
  }

 private:
  FabricSpec fabric_;
  double fabric_mean_latency_s_ = 0.0;
  std::vector<NodeSpec> nodes_;
  std::vector<NodeId> gpu_to_node_;
  // Dense link-class ids: node -> class, and class -> representative node.
  std::vector<int> node_link_class_;
  std::vector<NodeId> link_class_specs_;
};

}  // namespace varuna

#endif  // SRC_NET_TOPOLOGY_H_
