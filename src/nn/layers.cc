#include "src/nn/layers.h"

#include <cmath>

#include "src/common/check.h"

namespace varuna {

void Layer::ZeroGradients() {
  for (Tensor* grad : Gradients()) {
    grad->Fill(0.0f);
  }
}

Tensor Layer::Forward(const Tensor& input) {
  // Copy first: the Into contract needs the input alive until Backward, and
  // callers of the by-value API (tests, inference helpers) pass temporaries.
  // Self-assignment is fine when a caller feeds our own buffer back in.
  wrapped_input_ = input;
  ForwardInto(wrapped_input_, &wrapped_output_, &wrapper_arena_);
  return wrapped_output_;
}

Tensor Layer::Backward(const Tensor& grad_output) {
  BackwardInto(grad_output, &wrapped_grad_input_, &wrapper_arena_);
  return wrapped_grad_input_;
}

// --- Linear ----------------------------------------------------------------

Linear::Linear(int in_features, int out_features, Rng* rng)
    : weight_(Tensor::Randn({in_features, out_features}, rng,
                            1.0f / std::sqrt(static_cast<float>(in_features)))),
      bias_(Tensor::Zeros({out_features})),
      weight_grad_(Tensor::Zeros({in_features, out_features})),
      bias_grad_(Tensor::Zeros({out_features})) {}

Linear::Linear(const Linear& other)
    : Layer(other),
      weight_(other.weight_),
      bias_(other.bias_),
      weight_grad_(other.weight_grad_),
      bias_grad_(other.bias_grad_) {}

void Linear::ForwardInto(const Tensor& input, Tensor* out, TensorArena*) {
  input_ = &input;
  MatMulInto(out, input, weight_);
  AddRowVectorInPlace(out, bias_);
}

void Linear::BackwardInto(const Tensor& grad_output, Tensor* grad_input, TensorArena* arena) {
  VARUNA_CHECK(input_ != nullptr) << "Linear::Backward without Forward";
  Tensor* weight_delta = arena->Acquire(weight_grad_.shape());
  MatMulTransposeAInto(weight_delta, *input_, grad_output);
  weight_grad_.AddInPlace(*weight_delta);
  arena->Release(weight_delta);

  Tensor* bias_delta = arena->Acquire(bias_grad_.shape());
  bias_delta->Fill(0.0f);
  AccumulateRowSumsInto(bias_delta, grad_output);
  bias_grad_.AddInPlace(*bias_delta);
  arena->Release(bias_delta);

  MatMulTransposeBInto(grad_input, grad_output, weight_);
}

// --- Gelu --------------------------------------------------------------------

namespace {
constexpr float kGeluC = 0.7978845608f;  // sqrt(2/pi)

inline float GeluTanh(float x) {
  const float inner = kGeluC * (x + 0.044715f * x * x * x);
  return std::tanh(inner);
}

// Derivative with t = GeluTanh(x) supplied by the caller. Identical expression
// to the seed's GeluDerivative — stashing t in forward and substituting it
// here reuses the exact same float value, so backward stays bit-identical
// while evaluating tanh once per element instead of twice.
inline float GeluDerivativeFromTanh(float x, float t) {
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
}
}  // namespace

void Gelu::ForwardInto(const Tensor& input, Tensor* out, TensorArena*) {
  input_ = &input;
  out->ResizeTo(input.shape());
  tanh_.ResizeTo(input.shape());
  const int64_t n = input.size();
  // Three passes with the same per-element float ops as the fused seed loop:
  // the polynomial and the output blend auto-vectorize (lane-exact), leaving
  // only the libm tanh calls in the scalar middle pass.
  for (int64_t i = 0; i < n; ++i) {
    const float x = input[i];
    tanh_[i] = kGeluC * (x + 0.044715f * x * x * x);
  }
  for (int64_t i = 0; i < n; ++i) {
    tanh_[i] = std::tanh(tanh_[i]);
  }
  for (int64_t i = 0; i < n; ++i) {
    (*out)[i] = 0.5f * input[i] * (1.0f + tanh_[i]);
  }
}

void Gelu::BackwardInto(const Tensor& grad_output, Tensor* grad_input, TensorArena*) {
  VARUNA_CHECK(input_ != nullptr) << "Gelu::Backward without Forward";
  VARUNA_CHECK(grad_output.shape() == input_->shape());
  VARUNA_CHECK(tanh_.shape() == input_->shape());
  grad_input->ResizeTo(grad_output.shape());
  const int64_t n = grad_output.size();
  for (int64_t i = 0; i < n; ++i) {
    (*grad_input)[i] = grad_output[i] * GeluDerivativeFromTanh((*input_)[i], tanh_[i]);
  }
}

// --- LayerNorm ---------------------------------------------------------------

LayerNorm::LayerNorm(int features)
    : gain_(Tensor::Zeros({features})),
      bias_(Tensor::Zeros({features})),
      gain_grad_(Tensor::Zeros({features})),
      bias_grad_(Tensor::Zeros({features})) {
  gain_.Fill(1.0f);
}

LayerNorm::LayerNorm(const LayerNorm& other)
    : Layer(other),
      gain_(other.gain_),
      bias_(other.bias_),
      gain_grad_(other.gain_grad_),
      bias_grad_(other.bias_grad_) {}

void LayerNorm::ForwardInto(const Tensor& input, Tensor* out, TensorArena*) {
  const int rows = input.dim(0);
  const int n = input.dim(1);
  normalized_.ResizeTo({rows, n});
  inv_std_.ResizeTo({rows});
  out->ResizeTo({rows, n});
  has_state_ = true;
  constexpr float kEpsilon = 1e-5f;
  for (int i = 0; i < rows; ++i) {
    const float* row = input.data() + static_cast<size_t>(i) * n;
    float mean = 0.0f;
    for (int j = 0; j < n; ++j) {
      mean += row[j];
    }
    mean /= n;
    float variance = 0.0f;
    for (int j = 0; j < n; ++j) {
      const float centered = row[j] - mean;
      variance += centered * centered;
    }
    variance /= n;
    const float inv_std = 1.0f / std::sqrt(variance + kEpsilon);
    inv_std_[i] = inv_std;
    for (int j = 0; j < n; ++j) {
      const float normalized = (row[j] - mean) * inv_std;
      normalized_.data()[static_cast<size_t>(i) * n + j] = normalized;
      out->data()[static_cast<size_t>(i) * n + j] = normalized * gain_[j] + bias_[j];
    }
  }
}

void LayerNorm::BackwardInto(const Tensor& grad_output, Tensor* grad_input, TensorArena* arena) {
  VARUNA_CHECK(has_state_) << "LayerNorm::Backward without Forward";
  const int rows = grad_output.dim(0);
  const int n = grad_output.dim(1);
  VARUNA_CHECK_EQ(rows, normalized_.dim(0));
  grad_input->ResizeTo({rows, n});
  Tensor* gain_delta = arena->Acquire(gain_grad_.shape());
  Tensor* bias_delta = arena->Acquire(bias_grad_.shape());
  gain_delta->Fill(0.0f);
  bias_delta->Fill(0.0f);
  for (int i = 0; i < rows; ++i) {
    const float* g_row = grad_output.data() + static_cast<size_t>(i) * n;
    const float* norm_row = normalized_.data() + static_cast<size_t>(i) * n;
    float sum_g = 0.0f;
    float sum_g_norm = 0.0f;
    for (int j = 0; j < n; ++j) {
      const float g_hat = g_row[j] * gain_[j];
      sum_g += g_hat;
      sum_g_norm += g_hat * norm_row[j];
      (*gain_delta)[j] += g_row[j] * norm_row[j];
      (*bias_delta)[j] += g_row[j];
    }
    const float inv_n = 1.0f / n;
    for (int j = 0; j < n; ++j) {
      const float g_hat = g_row[j] * gain_[j];
      grad_input->data()[static_cast<size_t>(i) * n + j] =
          inv_std_[i] * (g_hat - inv_n * sum_g - norm_row[j] * inv_n * sum_g_norm);
    }
  }
  gain_grad_.AddInPlace(*gain_delta);
  bias_grad_.AddInPlace(*bias_delta);
  arena->Release(gain_delta);
  arena->Release(bias_delta);
}

// --- MlpBlock ----------------------------------------------------------------

MlpBlock::MlpBlock(int features, int hidden_multiplier, Rng* rng)
    : norm_(features),
      up_(features, features * hidden_multiplier, rng),
      down_(features * hidden_multiplier, features, rng) {}

MlpBlock::MlpBlock(const MlpBlock& other)
    : Layer(other),
      norm_(other.norm_),
      up_(other.up_),
      gelu_(other.gelu_),
      down_(other.down_) {}

void MlpBlock::ForwardInto(const Tensor& input, Tensor* out, TensorArena* arena) {
  norm_.ForwardInto(input, &norm_out_, arena);
  up_.ForwardInto(norm_out_, &up_out_, arena);
  gelu_.ForwardInto(up_out_, &gelu_out_, arena);
  down_.ForwardInto(gelu_out_, &down_out_, arena);
  AddInto(out, input, down_out_);
}

void MlpBlock::BackwardInto(const Tensor& grad_output, Tensor* grad_input, TensorArena* arena) {
  // Residual: gradient flows both through the branch and straight through.
  down_.BackwardInto(grad_output, &branch_grad_a_, arena);
  gelu_.BackwardInto(branch_grad_a_, &branch_grad_b_, arena);
  up_.BackwardInto(branch_grad_b_, &branch_grad_a_, arena);
  norm_.BackwardInto(branch_grad_a_, &branch_grad_b_, arena);
  AddInto(grad_input, grad_output, branch_grad_b_);
}

std::vector<Tensor*> MlpBlock::Parameters() {
  std::vector<Tensor*> params = norm_.Parameters();
  for (Layer* layer : {static_cast<Layer*>(&up_), static_cast<Layer*>(&down_)}) {
    for (Tensor* p : layer->Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

std::vector<Tensor*> MlpBlock::Gradients() {
  std::vector<Tensor*> grads = norm_.Gradients();
  for (Layer* layer : {static_cast<Layer*>(&up_), static_cast<Layer*>(&down_)}) {
    for (Tensor* g : layer->Gradients()) {
      grads.push_back(g);
    }
  }
  return grads;
}

// --- Sequential ----------------------------------------------------------------

void Sequential::ForwardInto(const Tensor& input, Tensor* out, TensorArena* arena) {
  VARUNA_CHECK(!layers_.empty());
  const size_t n = layers_.size();
  // vector::resize reuses existing Tensor elements (and their buffers).
  activations_.resize(n - 1);
  const Tensor* x = &input;
  for (size_t i = 0; i < n; ++i) {
    Tensor* dst = (i + 1 == n) ? out : &activations_[i];
    layers_[i]->ForwardInto(*x, dst, arena);
    x = dst;
  }
}

void Sequential::BackwardInto(const Tensor& grad_output, Tensor* grad_input,
                              TensorArena* arena) {
  VARUNA_CHECK(!layers_.empty());
  const int n = static_cast<int>(layers_.size());
  const Tensor* g = &grad_output;
  for (int i = n - 1; i >= 0; --i) {
    // Alternate scratch buffers so a layer never writes the tensor it reads.
    Tensor* dst = (i == 0) ? grad_input : &backward_grads_[static_cast<size_t>(i % 2)];
    layers_[static_cast<size_t>(i)]->BackwardInto(*g, dst, arena);
    g = dst;
  }
}

std::unique_ptr<Sequential> Sequential::CloneStack() const {
  auto copy = std::make_unique<Sequential>();
  for (const auto& layer : layers_) {
    copy->Append(layer->Clone());
  }
  return copy;
}

std::vector<Tensor*> Sequential::Parameters() {
  std::vector<Tensor*> params;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

std::vector<Tensor*> Sequential::Gradients() {
  std::vector<Tensor*> grads;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->Gradients()) {
      grads.push_back(g);
    }
  }
  return grads;
}

std::vector<std::unique_ptr<Sequential>> Sequential::Split(
    std::unique_ptr<Sequential> model, const std::vector<int>& stage_begin) {
  VARUNA_CHECK_GE(stage_begin.size(), 2u);
  VARUNA_CHECK_EQ(stage_begin.front(), 0);
  VARUNA_CHECK_EQ(stage_begin.back(), model->num_layers());
  std::vector<std::unique_ptr<Sequential>> stages;
  for (size_t s = 0; s + 1 < stage_begin.size(); ++s) {
    auto stage = std::make_unique<Sequential>();
    for (int i = stage_begin[s]; i < stage_begin[s + 1]; ++i) {
      VARUNA_CHECK_LT(i, static_cast<int>(model->layers_.size()));
      stage->Append(std::move(model->layers_[static_cast<size_t>(i)]));
    }
    stages.push_back(std::move(stage));
  }
  return stages;
}

// --- SoftmaxCrossEntropy ---------------------------------------------------

double SoftmaxCrossEntropy::Loss(const Tensor& logits, const std::vector<int>& targets) {
  return Loss(logits, targets.data(), static_cast<int>(targets.size()));
}

double SoftmaxCrossEntropy::Loss(const Tensor& logits, const int* targets, int count) {
  VARUNA_CHECK_EQ(logits.dim(0), count);
  RowSoftmaxInto(&probabilities_, logits);
  targets_.assign(targets, targets + count);
  double loss = 0.0;
  const int n = logits.dim(1);
  for (int i = 0; i < count; ++i) {
    VARUNA_CHECK(targets[i] >= 0 && targets[i] < n);
    const float p = probabilities_.data()[static_cast<size_t>(i) * n +
                                          static_cast<size_t>(targets[i])];
    loss -= std::log(std::max(p, 1e-12f));
  }
  return loss / static_cast<double>(count);
}

Tensor SoftmaxCrossEntropy::Backward() const {
  Tensor grad;
  BackwardInto(&grad);
  return grad;
}

void SoftmaxCrossEntropy::BackwardInto(Tensor* grad) const {
  VARUNA_CHECK(!targets_.empty()) << "Backward before Loss";
  grad->ResizeTo(probabilities_.shape());
  const int n = probabilities_.dim(1);
  const float inv_batch = 1.0f / static_cast<float>(targets_.size());
  std::copy(probabilities_.data(), probabilities_.data() + probabilities_.size(),
            grad->data());
  for (size_t i = 0; i < targets_.size(); ++i) {
    grad->data()[i * static_cast<size_t>(n) + static_cast<size_t>(targets_[i])] -= 1.0f;
  }
  grad->Scale(inv_batch);
}

}  // namespace varuna
