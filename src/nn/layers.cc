#include "src/nn/layers.h"

#include <cmath>

#include "src/common/check.h"

namespace varuna {

void Layer::ZeroGradients() {
  for (Tensor* grad : Gradients()) {
    grad->Fill(0.0f);
  }
}

// --- Linear ----------------------------------------------------------------

Linear::Linear(int in_features, int out_features, Rng* rng)
    : weight_(Tensor::Randn({in_features, out_features}, rng,
                            1.0f / std::sqrt(static_cast<float>(in_features)))),
      bias_(Tensor::Zeros({out_features})),
      weight_grad_(Tensor::Zeros({in_features, out_features})),
      bias_grad_(Tensor::Zeros({out_features})) {}

Tensor Linear::Forward(const Tensor& input) {
  input_ = input;
  return AddRowVector(MatMul(input, weight_), bias_);
}

Tensor Linear::Backward(const Tensor& grad_output) {
  VARUNA_CHECK(!input_.empty()) << "Linear::Backward without Forward";
  weight_grad_.AddInPlace(MatMulTransposeA(input_, grad_output));
  const int n = grad_output.dim(1);
  for (int i = 0; i < grad_output.dim(0); ++i) {
    for (int j = 0; j < n; ++j) {
      bias_grad_[j] += grad_output.data()[static_cast<size_t>(i) * n + j];
    }
  }
  return MatMulTransposeB(grad_output, weight_);
}

// --- Gelu --------------------------------------------------------------------

namespace {
constexpr float kGeluC = 0.7978845608f;  // sqrt(2/pi)

float GeluValue(float x) {
  const float inner = kGeluC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

float GeluDerivative(float x) {
  const float inner = kGeluC * (x + 0.044715f * x * x * x);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
}
}  // namespace

Tensor Gelu::Forward(const Tensor& input) {
  input_ = input;
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) {
    out[i] = GeluValue(out[i]);
  }
  return out;
}

Tensor Gelu::Backward(const Tensor& grad_output) {
  VARUNA_CHECK(!input_.empty()) << "Gelu::Backward without Forward";
  Tensor grad = grad_output;
  for (int64_t i = 0; i < grad.size(); ++i) {
    grad[i] *= GeluDerivative(input_[i]);
  }
  return grad;
}

// --- LayerNorm ---------------------------------------------------------------

LayerNorm::LayerNorm(int features)
    : gain_(Tensor::Zeros({features})),
      bias_(Tensor::Zeros({features})),
      gain_grad_(Tensor::Zeros({features})),
      bias_grad_(Tensor::Zeros({features})) {
  gain_.Fill(1.0f);
}

Tensor LayerNorm::Forward(const Tensor& input) {
  input_ = input;
  const int rows = input.dim(0);
  const int n = input.dim(1);
  normalized_ = Tensor({rows, n});
  inv_std_ = Tensor({rows});
  Tensor out({rows, n});
  constexpr float kEpsilon = 1e-5f;
  for (int i = 0; i < rows; ++i) {
    const float* row = input.data() + static_cast<size_t>(i) * n;
    float mean = 0.0f;
    for (int j = 0; j < n; ++j) {
      mean += row[j];
    }
    mean /= n;
    float variance = 0.0f;
    for (int j = 0; j < n; ++j) {
      const float centered = row[j] - mean;
      variance += centered * centered;
    }
    variance /= n;
    const float inv_std = 1.0f / std::sqrt(variance + kEpsilon);
    inv_std_[i] = inv_std;
    for (int j = 0; j < n; ++j) {
      const float normalized = (row[j] - mean) * inv_std;
      normalized_.data()[static_cast<size_t>(i) * n + j] = normalized;
      out.data()[static_cast<size_t>(i) * n + j] = normalized * gain_[j] + bias_[j];
    }
  }
  return out;
}

Tensor LayerNorm::Backward(const Tensor& grad_output) {
  VARUNA_CHECK(!input_.empty()) << "LayerNorm::Backward without Forward";
  const int rows = grad_output.dim(0);
  const int n = grad_output.dim(1);
  Tensor grad_input({rows, n});
  for (int i = 0; i < rows; ++i) {
    const float* g_row = grad_output.data() + static_cast<size_t>(i) * n;
    const float* norm_row = normalized_.data() + static_cast<size_t>(i) * n;
    float sum_g = 0.0f;
    float sum_g_norm = 0.0f;
    for (int j = 0; j < n; ++j) {
      const float g_hat = g_row[j] * gain_[j];
      sum_g += g_hat;
      sum_g_norm += g_hat * norm_row[j];
      gain_grad_[j] += g_row[j] * norm_row[j];
      bias_grad_[j] += g_row[j];
    }
    const float inv_n = 1.0f / n;
    for (int j = 0; j < n; ++j) {
      const float g_hat = g_row[j] * gain_[j];
      grad_input.data()[static_cast<size_t>(i) * n + j] =
          inv_std_[i] * (g_hat - inv_n * sum_g - norm_row[j] * inv_n * sum_g_norm);
    }
  }
  return grad_input;
}

// --- MlpBlock ----------------------------------------------------------------

MlpBlock::MlpBlock(int features, int hidden_multiplier, Rng* rng)
    : norm_(features),
      up_(features, features * hidden_multiplier, rng),
      down_(features * hidden_multiplier, features, rng) {}

Tensor MlpBlock::Forward(const Tensor& input) {
  return Add(input, down_.Forward(gelu_.Forward(up_.Forward(norm_.Forward(input)))));
}

Tensor MlpBlock::Backward(const Tensor& grad_output) {
  // Residual: gradient flows both through the branch and straight through.
  Tensor branch = norm_.Backward(up_.Backward(gelu_.Backward(down_.Backward(grad_output))));
  return Add(grad_output, branch);
}

std::vector<Tensor*> MlpBlock::Parameters() {
  std::vector<Tensor*> params = norm_.Parameters();
  for (Layer* layer : {static_cast<Layer*>(&up_), static_cast<Layer*>(&down_)}) {
    for (Tensor* p : layer->Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

std::vector<Tensor*> MlpBlock::Gradients() {
  std::vector<Tensor*> grads = norm_.Gradients();
  for (Layer* layer : {static_cast<Layer*>(&up_), static_cast<Layer*>(&down_)}) {
    for (Tensor* g : layer->Gradients()) {
      grads.push_back(g);
    }
  }
  return grads;
}

// --- Sequential ----------------------------------------------------------------

Tensor Sequential::Forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) {
    x = layer->Forward(x);
  }
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Tensor*> Sequential::Parameters() {
  std::vector<Tensor*> params;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

std::vector<Tensor*> Sequential::Gradients() {
  std::vector<Tensor*> grads;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->Gradients()) {
      grads.push_back(g);
    }
  }
  return grads;
}

std::vector<std::unique_ptr<Sequential>> Sequential::Split(
    std::unique_ptr<Sequential> model, const std::vector<int>& stage_begin) {
  VARUNA_CHECK_GE(stage_begin.size(), 2u);
  VARUNA_CHECK_EQ(stage_begin.front(), 0);
  VARUNA_CHECK_EQ(stage_begin.back(), model->num_layers());
  std::vector<std::unique_ptr<Sequential>> stages;
  for (size_t s = 0; s + 1 < stage_begin.size(); ++s) {
    auto stage = std::make_unique<Sequential>();
    for (int i = stage_begin[s]; i < stage_begin[s + 1]; ++i) {
      VARUNA_CHECK_LT(i, static_cast<int>(model->layers_.size()));
      stage->Append(std::move(model->layers_[static_cast<size_t>(i)]));
    }
    stages.push_back(std::move(stage));
  }
  return stages;
}

// --- SoftmaxCrossEntropy ---------------------------------------------------

double SoftmaxCrossEntropy::Loss(const Tensor& logits, const std::vector<int>& targets) {
  VARUNA_CHECK_EQ(static_cast<size_t>(logits.dim(0)), targets.size());
  probabilities_ = RowSoftmax(logits);
  targets_ = targets;
  double loss = 0.0;
  const int n = logits.dim(1);
  for (size_t i = 0; i < targets.size(); ++i) {
    VARUNA_CHECK(targets[i] >= 0 && targets[i] < n);
    const float p =
        probabilities_.data()[i * static_cast<size_t>(n) + static_cast<size_t>(targets[i])];
    loss -= std::log(std::max(p, 1e-12f));
  }
  return loss / static_cast<double>(targets.size());
}

Tensor SoftmaxCrossEntropy::Backward() const {
  VARUNA_CHECK(!targets_.empty()) << "Backward before Loss";
  Tensor grad = probabilities_;
  const int n = grad.dim(1);
  const float inv_batch = 1.0f / static_cast<float>(targets_.size());
  for (size_t i = 0; i < targets_.size(); ++i) {
    grad.data()[i * static_cast<size_t>(n) + static_cast<size_t>(targets_[i])] -= 1.0f;
  }
  grad.Scale(inv_batch);
  return grad;
}

}  // namespace varuna
