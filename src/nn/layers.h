// Neural-network layers with hand-written backward passes. Layers keep the
// state of exactly one forward pass (the last one); pipeline trainers
// re-establish that state by re-running Forward from the stashed stage input
// right before Backward — which is precisely gradient-checkpointed recompute
// (§2, §3.1), so the numerics of the real system carry over.
#ifndef SRC_NN_LAYERS_H_
#define SRC_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace varuna {

class Layer {
 public:
  virtual ~Layer() = default;

  // Computes the output and caches whatever Backward needs.
  virtual Tensor Forward(const Tensor& input) = 0;
  // Propagates the output gradient, *accumulating* parameter gradients.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  virtual std::vector<Tensor*> Parameters() { return {}; }
  virtual std::vector<Tensor*> Gradients() { return {}; }
  virtual std::string name() const = 0;

  void ZeroGradients();
};

// y = x W + b, with W [in, out] and b [out].
class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, Rng* rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> Gradients() override { return {&weight_grad_, &bias_grad_}; }
  std::string name() const override { return "linear"; }

  Tensor& weight() { return weight_; }

 private:
  Tensor weight_;
  Tensor bias_;
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor input_;
};

// GELU activation (tanh approximation).
class Gelu : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "gelu"; }

 private:
  Tensor input_;
};

// LayerNorm over the last dimension with learnable gain and bias.
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(int features);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Parameters() override { return {&gain_, &bias_}; }
  std::vector<Tensor*> Gradients() override { return {&gain_grad_, &bias_grad_}; }
  std::string name() const override { return "layernorm"; }

 private:
  Tensor gain_;
  Tensor bias_;
  Tensor gain_grad_;
  Tensor bias_grad_;
  Tensor normalized_;
  Tensor inv_std_;  // [rows].
  Tensor input_;
};

// Pre-norm residual MLP block: x + W2 gelu(W1 ln(x)) — the repetitive
// structure the auto-partitioner exploits; the block boundary is the natural
// cut-point.
class MlpBlock : public Layer {
 public:
  MlpBlock(int features, int hidden_multiplier, Rng* rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Parameters() override;
  std::vector<Tensor*> Gradients() override;
  std::string name() const override { return "mlp_block"; }

 private:
  LayerNorm norm_;
  Linear up_;
  Gelu gelu_;
  Linear down_;
};

// Ordered stack of layers. Supports slicing into pipeline stages.
class Sequential : public Layer {
 public:
  Sequential() = default;

  void Append(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Parameters() override;
  std::vector<Tensor*> Gradients() override;
  std::string name() const override { return "sequential"; }

  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int i) { return *layers_[static_cast<size_t>(i)]; }

  // Moves layers [begin, end) into a new Sequential (this keeps the rest).
  // Used by the pipeline trainer to split a model at cut-points.
  static std::vector<std::unique_ptr<Sequential>> Split(std::unique_ptr<Sequential> model,
                                                        const std::vector<int>& stage_begin);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

// Softmax cross-entropy against integer targets; mean over the batch.
class SoftmaxCrossEntropy {
 public:
  // logits [batch, classes]; targets one id per row.
  double Loss(const Tensor& logits, const std::vector<int>& targets);
  // d(loss)/d(logits) for the last Loss() call.
  Tensor Backward() const;

 private:
  Tensor probabilities_;
  std::vector<int> targets_;
};

}  // namespace varuna

#endif  // SRC_NN_LAYERS_H_
