// Neural-network layers with hand-written backward passes. Layers keep the
// state of exactly one forward pass (the last one); pipeline trainers
// re-establish that state by re-running Forward from the stashed stage input
// right before Backward — which is precisely gradient-checkpointed recompute
// (§2, §3.1), so the numerics of the real system carry over.
//
// Execution has two surfaces over ONE numeric implementation:
//  * ForwardInto/BackwardInto — the explicit-output hot path. Cross-call state
//    (stashed inputs, normalizer statistics, intermediate activations) lives
//    in member buffers resized in place, and within-call scratch comes from a
//    caller-provided TensorArena, so steady-state execution performs zero
//    heap allocations.
//  * Forward/Backward — the seed by-value API, now thin base-class wrappers
//    that copy the input (to satisfy the Into lifetime contract) and call the
//    Into path. Both surfaces produce bit-identical tensors.
//
// Parameter-gradient accumulation is two-phase: each Backward forms its
// per-call gradient delta in scratch and applies it with a single AddInPlace.
// That makes per-micro-batch gradients pure functions of the micro-batch, so
// pooled trainers can compute them in any order and merge in ascending
// micro-batch order, reproducing serial accumulation bit for bit.
#ifndef SRC_NN_LAYERS_H_
#define SRC_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"
#include "src/tensor/tensor_arena.h"

namespace varuna {

class Layer {
 public:
  virtual ~Layer() = default;

  // Computes the output into *out and caches whatever BackwardInto needs.
  // The caller must keep `input` alive and unmodified until the matching
  // BackwardInto (layers stash a pointer, not a copy). `input` must not alias
  // *out. `arena` provides within-call scratch only (released on return).
  virtual void ForwardInto(const Tensor& input, Tensor* out, TensorArena* arena) = 0;
  // Propagates the output gradient into *grad_input (which must alias neither
  // `grad_output` nor the forward input), *accumulating* parameter gradients
  // two-phase (see file comment).
  virtual void BackwardInto(const Tensor& grad_output, Tensor* grad_input,
                            TensorArena* arena) = 0;

  // By-value wrappers over the Into path; same numerics, plus an input copy
  // so the stashed-pointer contract holds without caller cooperation.
  Tensor Forward(const Tensor& input);
  Tensor Backward(const Tensor& grad_output);

  // Structural copy: parameters, gradients and layer config are duplicated;
  // transient forward/backward state starts fresh. Used to build per-worker
  // replicas for pooled micro-batch execution.
  virtual std::unique_ptr<Layer> Clone() const = 0;

  virtual std::vector<Tensor*> Parameters() { return {}; }
  virtual std::vector<Tensor*> Gradients() { return {}; }
  virtual std::string name() const = 0;

  void ZeroGradients();

 protected:
  Layer() = default;
  // Copying never carries wrapper scratch (it is transient per-instance).
  Layer(const Layer&) {}
  Layer& operator=(const Layer&) = delete;

 private:
  // State backing the by-value wrappers.
  Tensor wrapped_input_;
  Tensor wrapped_output_;
  Tensor wrapped_grad_input_;
  TensorArena wrapper_arena_;
};

// y = x W + b, with W [in, out] and b [out].
class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, Rng* rng);
  Linear(const Linear& other);

  void ForwardInto(const Tensor& input, Tensor* out, TensorArena* arena) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input, TensorArena* arena) override;
  std::unique_ptr<Layer> Clone() const override { return std::make_unique<Linear>(*this); }
  std::vector<Tensor*> Parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> Gradients() override { return {&weight_grad_, &bias_grad_}; }
  std::string name() const override { return "linear"; }

  Tensor& weight() { return weight_; }

 private:
  Tensor weight_;
  Tensor bias_;
  Tensor weight_grad_;
  Tensor bias_grad_;
  const Tensor* input_ = nullptr;  // Caller-owned; valid until BackwardInto.
};

// GELU activation (tanh approximation).
class Gelu : public Layer {
 public:
  Gelu() = default;
  // Transient forward state (tanh stash) starts fresh in the copy.
  Gelu(const Gelu& other) : Layer(other) {}

  void ForwardInto(const Tensor& input, Tensor* out, TensorArena* arena) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input, TensorArena* arena) override;
  std::unique_ptr<Layer> Clone() const override { return std::make_unique<Gelu>(*this); }
  std::string name() const override { return "gelu"; }

 private:
  const Tensor* input_ = nullptr;  // Caller-owned; valid until BackwardInto.
  // tanh(inner(x)) per element from the last forward. Backward substitutes the
  // cached value into the seed derivative expression — same float, same
  // result — and skips the second tanh evaluation (the expensive part of the
  // derivative).
  Tensor tanh_;
};

// LayerNorm over the last dimension with learnable gain and bias.
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(int features);
  LayerNorm(const LayerNorm& other);

  void ForwardInto(const Tensor& input, Tensor* out, TensorArena* arena) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input, TensorArena* arena) override;
  std::unique_ptr<Layer> Clone() const override { return std::make_unique<LayerNorm>(*this); }
  std::vector<Tensor*> Parameters() override { return {&gain_, &bias_}; }
  std::vector<Tensor*> Gradients() override { return {&gain_grad_, &bias_grad_}; }
  std::string name() const override { return "layernorm"; }

 private:
  Tensor gain_;
  Tensor bias_;
  Tensor gain_grad_;
  Tensor bias_grad_;
  // Forward statistics BackwardInto reads (value state, so no lifetime
  // coupling to the caller's input).
  Tensor normalized_;
  Tensor inv_std_;  // [rows].
  bool has_state_ = false;
};

// Pre-norm residual MLP block: x + W2 gelu(W1 ln(x)) — the repetitive
// structure the auto-partitioner exploits; the block boundary is the natural
// cut-point.
class MlpBlock : public Layer {
 public:
  MlpBlock(int features, int hidden_multiplier, Rng* rng);
  MlpBlock(const MlpBlock& other);

  void ForwardInto(const Tensor& input, Tensor* out, TensorArena* arena) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input, TensorArena* arena) override;
  std::unique_ptr<Layer> Clone() const override { return std::make_unique<MlpBlock>(*this); }
  std::vector<Tensor*> Parameters() override;
  std::vector<Tensor*> Gradients() override;
  std::string name() const override { return "mlp_block"; }

 private:
  LayerNorm norm_;
  Linear up_;
  Gelu gelu_;
  Linear down_;
  // Intermediate activations, reused in place across calls.
  Tensor norm_out_;
  Tensor up_out_;
  Tensor gelu_out_;
  Tensor down_out_;
  // Backward ping-pong buffers for the branch gradient.
  Tensor branch_grad_a_;
  Tensor branch_grad_b_;
};

// Ordered stack of layers. Supports slicing into pipeline stages.
class Sequential : public Layer {
 public:
  Sequential() = default;

  void Append(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  void ForwardInto(const Tensor& input, Tensor* out, TensorArena* arena) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input, TensorArena* arena) override;
  std::unique_ptr<Layer> Clone() const override { return CloneStack(); }
  // Typed clone (deep-copies each layer via Layer::Clone).
  std::unique_ptr<Sequential> CloneStack() const;
  std::vector<Tensor*> Parameters() override;
  std::vector<Tensor*> Gradients() override;
  std::string name() const override { return "sequential"; }

  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int i) { return *layers_[static_cast<size_t>(i)]; }

  // Moves layers [begin, end) into a new Sequential (this keeps the rest).
  // Used by the pipeline trainer to split a model at cut-points.
  static std::vector<std::unique_ptr<Sequential>> Split(std::unique_ptr<Sequential> model,
                                                        const std::vector<int>& stage_begin);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  // Per-boundary activations, reused in place across calls.
  std::vector<Tensor> activations_;
  // Backward ping-pong buffers between layers.
  Tensor backward_grads_[2];
};

// Softmax cross-entropy against integer targets; mean over the batch.
class SoftmaxCrossEntropy {
 public:
  // logits [batch, classes]; targets one id per row.
  double Loss(const Tensor& logits, const std::vector<int>& targets);
  // Pointer-based overload for zero-copy target views into a full batch.
  double Loss(const Tensor& logits, const int* targets, int count);
  // d(loss)/d(logits) for the last Loss() call.
  Tensor Backward() const;
  // Explicit-output variant of Backward (buffer reused across calls).
  void BackwardInto(Tensor* grad) const;

 private:
  Tensor probabilities_;
  std::vector<int> targets_;
};

}  // namespace varuna

#endif  // SRC_NN_LAYERS_H_
