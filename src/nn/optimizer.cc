#include "src/nn/optimizer.h"

#include <cmath>

#include "src/common/check.h"

namespace varuna {

Optimizer::Optimizer(std::vector<Tensor*> params, std::vector<Tensor*> grads)
    : params_(std::move(params)), grads_(std::move(grads)) {
  VARUNA_CHECK_EQ(params_.size(), grads_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    VARUNA_CHECK(params_[i]->shape() == grads_[i]->shape());
  }
}

void Optimizer::ZeroGradients() {
  for (Tensor* grad : grads_) {
    grad->Fill(0.0f);
  }
}

double Optimizer::GradientSquaredNorm() const {
  double sum = 0.0;
  for (const Tensor* grad : grads_) {
    sum += grad->SquaredNorm();
  }
  return sum;
}

void Optimizer::ScaleGradients(float factor) {
  for (Tensor* grad : grads_) {
    grad->Scale(factor);
  }
}

SgdOptimizer::SgdOptimizer(std::vector<Tensor*> params, std::vector<Tensor*> grads,
                           float learning_rate, float momentum)
    : Optimizer(std::move(params), std::move(grads)),
      learning_rate_(learning_rate),
      momentum_(momentum) {
  for (const Tensor* param : params_) {
    velocity_.push_back(Tensor::Zeros(param->shape()));
  }
}

void SgdOptimizer::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& velocity = velocity_[i];
    if (momentum_ != 0.0f) {
      velocity.Scale(momentum_);
      velocity.AddInPlace(*grads_[i]);
      params_[i]->Axpy(-learning_rate_, velocity);
    } else {
      params_[i]->Axpy(-learning_rate_, *grads_[i]);
    }
  }
}

void SgdOptimizer::ImportState(const std::vector<Tensor>& state) {
  VARUNA_CHECK_EQ(state.size(), velocity_.size());
  for (size_t i = 0; i < state.size(); ++i) {
    VARUNA_CHECK(state[i].shape() == velocity_[i].shape());
  }
  velocity_ = state;
}

AdamOptimizer::AdamOptimizer(std::vector<Tensor*> params, std::vector<Tensor*> grads,
                             float learning_rate, float beta1, float beta2, float epsilon)
    : Optimizer(std::move(params), std::move(grads)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  for (const Tensor* param : params_) {
    first_moment_.push_back(Tensor::Zeros(param->shape()));
    second_moment_.push_back(Tensor::Zeros(param->shape()));
  }
}

std::vector<Tensor> AdamOptimizer::ExportState() const {
  std::vector<Tensor> state = first_moment_;
  state.insert(state.end(), second_moment_.begin(), second_moment_.end());
  Tensor step({1});
  step[0] = static_cast<float>(step_count_);
  state.push_back(step);
  return state;
}

void AdamOptimizer::ImportState(const std::vector<Tensor>& state) {
  VARUNA_CHECK_EQ(state.size(), first_moment_.size() + second_moment_.size() + 1);
  for (size_t i = 0; i < first_moment_.size(); ++i) {
    VARUNA_CHECK(state[i].shape() == first_moment_[i].shape());
    first_moment_[i] = state[i];
    second_moment_[i] = state[first_moment_.size() + i];
  }
  step_count_ = static_cast<int64_t>(state.back()[0]);
}

void AdamOptimizer::Step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& m = first_moment_[i];
    Tensor& v = second_moment_[i];
    Tensor& param = *params_[i];
    const Tensor& grad = *grads_[i];
    for (int64_t j = 0; j < param.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      param[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace varuna
