// Optimizers over a stage's parameter group. Gradients are accumulated by
// the layers (micro-batching / gradient accumulation, §4.2); Step() applies
// one update and the caller zeroes gradients for the next mini-batch.
#ifndef SRC_NN_OPTIMIZER_H_
#define SRC_NN_OPTIMIZER_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace varuna {

class Optimizer {
 public:
  Optimizer(std::vector<Tensor*> params, std::vector<Tensor*> grads);
  virtual ~Optimizer() = default;

  virtual void Step() = 0;
  void ZeroGradients();

  // Sum of squared gradient elements across the group — the NVLAMB-style
  // "global norm" contribution that must be allreduced across partitions
  // when the model is split (§5.2).
  double GradientSquaredNorm() const;

  // Scales every gradient (used for global-norm clipping after the
  // cross-partition norm reduction).
  void ScaleGradients(float factor);

  // Checkpointing (§4.5): optimizer state is part of the per-layer
  // checkpoint (the paper's 14-16 B/param includes the Adam moments), so a
  // restore — possibly onto a different pipeline depth — continues the exact
  // trajectory. Export order matches the parameter-group order.
  virtual std::vector<Tensor> ExportState() const = 0;
  virtual void ImportState(const std::vector<Tensor>& state) = 0;

 protected:
  std::vector<Tensor*> params_;
  std::vector<Tensor*> grads_;
};

class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(std::vector<Tensor*> params, std::vector<Tensor*> grads, float learning_rate,
               float momentum = 0.0f);

  void Step() override;
  std::vector<Tensor> ExportState() const override { return velocity_; }
  void ImportState(const std::vector<Tensor>& state) override;

  void set_learning_rate(float lr) { learning_rate_ = lr; }

 private:
  float learning_rate_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(std::vector<Tensor*> params, std::vector<Tensor*> grads, float learning_rate,
                float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f);

  void Step() override;
  // State layout: first moments, then second moments, then a 1-element tensor
  // holding the step count.
  std::vector<Tensor> ExportState() const override;
  void ImportState(const std::vector<Tensor>& state) override;

  void set_learning_rate(float lr) { learning_rate_ = lr; }

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  int64_t step_count_ = 0;
  std::vector<Tensor> first_moment_;
  std::vector<Tensor> second_moment_;
};

}  // namespace varuna

#endif  // SRC_NN_OPTIMIZER_H_
