#include "src/nn/synthetic_task.h"

#include <cmath>

#include "src/common/check.h"

namespace varuna {

MarkovTask::MarkovTask(int vocab, uint64_t seed, double peakedness) : vocab_(vocab) {
  VARUNA_CHECK_GE(vocab, 2);
  Rng rng(seed);
  transitions_.assign(static_cast<size_t>(vocab) * vocab, 0.0);
  for (int from = 0; from < vocab; ++from) {
    double row_sum = 0.0;
    for (int to = 0; to < vocab; ++to) {
      const double weight = std::exp(peakedness * rng.Gaussian());
      transitions_[static_cast<size_t>(from) * vocab + to] = weight;
      row_sum += weight;
    }
    for (int to = 0; to < vocab; ++to) {
      transitions_[static_cast<size_t>(from) * vocab + to] /= row_sum;
    }
  }
  // Stationary distribution by power iteration.
  stationary_.assign(static_cast<size_t>(vocab), 1.0 / vocab);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<double> next(static_cast<size_t>(vocab), 0.0);
    for (int from = 0; from < vocab; ++from) {
      for (int to = 0; to < vocab; ++to) {
        next[static_cast<size_t>(to)] +=
            stationary_[static_cast<size_t>(from)] *
            transitions_[static_cast<size_t>(from) * vocab + to];
      }
    }
    stationary_ = next;
  }
}

Batch MarkovTask::Sample(int batch_size, Rng* rng) const {
  Batch batch;
  batch.inputs = Tensor::Zeros({batch_size, vocab_});
  batch.targets.resize(static_cast<size_t>(batch_size));
  for (int i = 0; i < batch_size; ++i) {
    // Draw the current token from the stationary distribution.
    double u = rng->NextDouble();
    int current = vocab_ - 1;
    for (int token = 0; token < vocab_; ++token) {
      u -= stationary_[static_cast<size_t>(token)];
      if (u <= 0.0) {
        current = token;
        break;
      }
    }
    batch.inputs.at(i, current) = 1.0f;
    // Draw the next token from the transition row.
    double v = rng->NextDouble();
    int next = vocab_ - 1;
    for (int token = 0; token < vocab_; ++token) {
      v -= transitions_[static_cast<size_t>(current) * vocab_ + token];
      if (v <= 0.0) {
        next = token;
        break;
      }
    }
    batch.targets[static_cast<size_t>(i)] = next;
  }
  return batch;
}

double MarkovTask::OptimalPerplexity() const {
  double entropy = 0.0;
  for (int from = 0; from < vocab_; ++from) {
    for (int to = 0; to < vocab_; ++to) {
      const double p = transitions_[static_cast<size_t>(from) * vocab_ + to];
      if (p > 0.0) {
        entropy -= stationary_[static_cast<size_t>(from)] * p * std::log(p);
      }
    }
  }
  return std::exp(entropy);
}

double MarkovTask::ValidationLoss(Layer* model, int batch_size, Rng* rng) const {
  const Batch batch = Sample(batch_size, rng);
  SoftmaxCrossEntropy loss;
  return loss.Loss(model->Forward(batch.inputs), batch.targets);
}

std::unique_ptr<Sequential> BuildBlockModel(int vocab, int width, int blocks, Rng* rng) {
  auto model = std::make_unique<Sequential>();
  model->Append(std::make_unique<Linear>(vocab, width, rng));  // Embedding.
  for (int b = 0; b < blocks; ++b) {
    model->Append(std::make_unique<MlpBlock>(width, 4, rng));
  }
  model->Append(std::make_unique<Linear>(width, vocab, rng));  // LM head.
  return model;
}

}  // namespace varuna
