// Synthetic language-modelling task: a random first-order Markov chain over a
// small vocabulary. The model sees the current token (one-hot) and predicts
// the next; the achievable validation perplexity is the chain's conditional
// entropy, so convergence quality has a crisp ground truth. This stands in
// for WebText in the convergence experiments (Fig. 9 / Fig. 10) — deliverable
// semantics (batch scaling, staleness) are task-independent.
#ifndef SRC_NN_SYNTHETIC_TASK_H_
#define SRC_NN_SYNTHETIC_TASK_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/layers.h"
#include "src/tensor/tensor.h"

namespace varuna {

struct Batch {
  Tensor inputs;             // [batch, vocab] one-hot current tokens.
  std::vector<int> targets;  // Next tokens.
};

class MarkovTask {
 public:
  // `peakedness` > 0 sharpens transitions (lower entropy). Deterministic for
  // a given seed.
  MarkovTask(int vocab, uint64_t seed, double peakedness = 2.0);

  int vocab() const { return vocab_; }

  Batch Sample(int batch_size, Rng* rng) const;

  // exp(conditional entropy): the perplexity a perfect model achieves.
  double OptimalPerplexity() const;

  // Mean cross-entropy of `model` on freshly sampled validation data.
  double ValidationLoss(Layer* model, int batch_size, Rng* rng) const;

 private:
  int vocab_;
  std::vector<double> stationary_;   // Stationary distribution over tokens.
  std::vector<double> transitions_;  // Row-major [vocab, vocab].
};

// Builds the benchmark model: embedding (Linear from one-hot), `blocks`
// residual MLP blocks (the repetitive structure cut-points slice), and an LM
// head. Layer 0 is the embedding; layer blocks+1 is the head.
std::unique_ptr<Sequential> BuildBlockModel(int vocab, int width, int blocks, Rng* rng);

}  // namespace varuna

#endif  // SRC_NN_SYNTHETIC_TASK_H_
