#include "src/parallel/data_parallel.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"
#include "src/pipeline/memory.h"

namespace varuna {

Result<DataParallelResult> EvaluateDataParallel(const TransformerSpec& spec,
                                                const Cluster& cluster,
                                                const DataParallelConfig& config) {
  VARUNA_CHECK_GE(config.replicas, 1);
  VARUNA_CHECK_GE(config.microbatch_size, 1);
  VARUNA_CHECK_GT(config.total_batch, 0.0);

  const std::vector<GpuId> pool = cluster.ActiveGpus();
  if (static_cast<int>(pool.size()) < config.replicas) {
    std::ostringstream message;
    message << "data-parallel needs " << config.replicas << " GPUs, have " << pool.size();
    return Result<DataParallelResult>::Error(message.str());
  }
  const GpuSpec& gpu = cluster.Gpu(pool[0]);

  DataParallelResult result;
  const double m = config.microbatch_size;
  const double state_bytes = 16.0 * spec.TotalParams();
  const double live_activations =
      config.gradient_checkpointing
          ? BlockFullActivationBytes(spec) * m  // One block's working set.
          : BlockFullActivationBytes(spec) * m * spec.num_layers;
  result.fits_memory = state_bytes + live_activations <= 0.92 * gpu.memory_bytes;

  const double layer_work = spec.LayerFwdFlops() * m;
  const double fwd = spec.num_layers * gpu.ComputeTime(layer_work) +
                     gpu.ComputeTime(spec.HeadFwdFlops() * m);
  const double passes = config.gradient_checkpointing ? 4.0 : 3.0;
  const double steps = std::max(1.0, config.total_batch / (m * config.replicas));
  result.compute_s = steps * passes * fwd;

  if (config.replicas > 1) {
    std::vector<GpuId> ring(pool.begin(), pool.begin() + config.replicas);
    // Every GPU of a node participates in the same global ring (ordered by
    // node), so each NIC carries one inbound and one outbound ring hop.
    result.allreduce_s =
        cluster.network().MeanAllReduceTime(ring, 2.0 * spec.TotalParams(), 1);
  }

  result.minibatch_s = result.compute_s + result.allreduce_s;
  result.examples_per_s = config.total_batch / result.minibatch_s;
  result.examples_per_s_per_gpu = result.examples_per_s / config.replicas;
  return result;
}

}  // namespace varuna
