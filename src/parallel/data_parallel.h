// Fully data-parallel training cost model — the baseline for models that fit
// in a single GPU (BERT-large in §7.1.1, Figure 1b). Each of the G replicas
// runs forward+backward on its share of the mini-batch, then a global ring
// allreduce averages gradients.
#ifndef SRC_PARALLEL_DATA_PARALLEL_H_
#define SRC_PARALLEL_DATA_PARALLEL_H_

#include "src/cluster/cluster.h"
#include "src/common/result.h"
#include "src/model/transformer.h"

namespace varuna {

struct DataParallelConfig {
  int replicas = 1;          // G
  int microbatch_size = 1;   // m per accumulation step.
  double total_batch = 0.0;
  bool gradient_checkpointing = false;  // Adds the recompute pass.
};

struct DataParallelResult {
  bool fits_memory = false;
  double minibatch_s = 0.0;
  double compute_s = 0.0;
  double allreduce_s = 0.0;
  double examples_per_s = 0.0;
  double examples_per_s_per_gpu = 0.0;
};

Result<DataParallelResult> EvaluateDataParallel(const TransformerSpec& spec,
                                                const Cluster& cluster,
                                                const DataParallelConfig& config);

}  // namespace varuna

#endif  // SRC_PARALLEL_DATA_PARALLEL_H_
