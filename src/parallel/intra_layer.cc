#include "src/parallel/intra_layer.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"
#include "src/common/units.h"

namespace varuna {

Result<IntraLayerResult> EvaluateIntraLayer(const TransformerSpec& spec,
                                            const Cluster& cluster,
                                            const IntraLayerConfig& config) {
  VARUNA_CHECK_GE(config.tensor_parallel, 1);
  VARUNA_CHECK_GE(config.data_parallel, 1);
  VARUNA_CHECK_GE(config.microbatch_size, 1);
  VARUNA_CHECK_GT(config.total_batch, 0.0);

  const int t = config.tensor_parallel;
  const int d = config.data_parallel;
  const std::vector<GpuId> pool = cluster.ActiveGpus();
  if (static_cast<int>(pool.size()) < t * d) {
    std::ostringstream message;
    message << "intra-layer " << t << "x" << d << " needs " << t * d << " GPUs, have "
            << pool.size();
    return Result<IntraLayerResult>::Error(message.str());
  }

  IntraLayerResult result;
  result.gpus_used = t * d;
  const GpuSpec& gpu = cluster.Gpu(pool[0]);

  // --- Memory: parameters shard T ways; activations shard likewise.
  const double params_per_gpu = spec.TotalParams() / t;
  const double state_bytes = 16.0 * params_per_gpu;
  const double act_bytes =
      2.0 * 20.0 * spec.seq_len * static_cast<double>(spec.hidden) / t * config.microbatch_size *
      spec.num_layers / 8.0;  // Checkpointed: ~1/8 of full activations live.
  result.fits_memory = state_bytes + act_bytes <= 0.92 * gpu.memory_bytes;

  // --- Compute per accumulation step: each GPU runs 1/T of every layer's
  // matmuls at per-layer kernel granularity (sharded kernels are smaller, so
  // they run further from peak efficiency).
  const double m = config.microbatch_size;
  const double layer_work = spec.LayerFwdFlops() * m / t;
  const double fwd = spec.num_layers * gpu.ComputeTime(layer_work) +
                     gpu.ComputeTime(spec.HeadFwdFlops() * m / t);
  const double step_compute = 4.0 * fwd;  // Forward + recompute + 2x backward.

  // --- Synchronous tensor-parallel allreduces: 2 per layer per pass, 3
  // passes with recompute (§3.1: "two allreduces each in the forward,
  // backward, and recompute passes").
  const std::vector<GpuId> group(pool.begin(), pool.begin() + t);
  const double allreduce_bytes = spec.IntraLayerAllReduceBytes() * m;
  const double per_allreduce = cluster.network().MeanAllReduceTime(group, allreduce_bytes, 1);
  const double step_comm = 6.0 * spec.num_layers * per_allreduce;

  // --- Gradient accumulation steps to reach the mini-batch.
  const double steps = std::max(1.0, config.total_batch / (m * d));

  // --- Data-parallel allreduce of the sharded gradients (fp16), one ring per
  // shard; all T rings cross the NICs concurrently.
  double dp_allreduce = 0.0;
  if (d > 1) {
    std::vector<GpuId> ring;
    for (int r = 0; r < d; ++r) {
      ring.push_back(pool[static_cast<size_t>(r) * t]);
    }
    const int gpus_per_node = cluster.topology().Node(cluster.topology().NodeOf(pool[0])).num_gpus;
    dp_allreduce = cluster.network().MeanAllReduceTime(ring, 2.0 * params_per_gpu,
                                                       std::max(1, gpus_per_node));
  }

  result.compute_s = steps * step_compute;
  result.tensor_comm_s = steps * step_comm;
  result.dp_allreduce_s = dp_allreduce;
  result.minibatch_s = result.compute_s + result.tensor_comm_s + dp_allreduce;
  result.examples_per_s = config.total_batch / result.minibatch_s;
  result.examples_per_s_per_gpu = result.examples_per_s / result.gpus_used;
  return result;
}

}  // namespace varuna
