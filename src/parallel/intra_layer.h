// Megatron-style intra-layer (tensor) model parallelism cost model
// (Observation 1, §3.1; baselines in §7.1.1 and Table 4). Each layer's
// matmuls are split across a tensor-parallel group of T GPUs; every layer
// requires two synchronous allreduces in each of the forward, backward and
// recompute passes — communication that cannot overlap with compute. Groups
// of T are combined with data parallelism over the remaining GPUs.
#ifndef SRC_PARALLEL_INTRA_LAYER_H_
#define SRC_PARALLEL_INTRA_LAYER_H_

#include "src/cluster/cluster.h"
#include "src/common/result.h"
#include "src/model/transformer.h"

namespace varuna {

struct IntraLayerConfig {
  int tensor_parallel = 1;  // T: GPUs a single layer is split across.
  int data_parallel = 1;    // D: replicas of the T-way sharded model.
  int microbatch_size = 1;  // m: examples per accumulation step per replica.
  double total_batch = 0.0; // Mini-batch size (examples) per optimizer step.
};

struct IntraLayerResult {
  bool fits_memory = false;
  double minibatch_s = 0.0;
  double compute_s = 0.0;        // GPU compute on the critical path.
  double tensor_comm_s = 0.0;    // Synchronous intra-layer allreduces.
  double dp_allreduce_s = 0.0;   // End-of-mini-batch gradient allreduce.
  double examples_per_s = 0.0;
  double examples_per_s_per_gpu = 0.0;
  int gpus_used = 0;
};

// Evaluates the Megatron configuration on the given cluster. The first
// T * D active GPUs are used, in node order (tensor-parallel groups packed
// onto nodes first — the placement Megatron itself requires for efficiency).
Result<IntraLayerResult> EvaluateIntraLayer(const TransformerSpec& spec,
                                            const Cluster& cluster,
                                            const IntraLayerConfig& config);

}  // namespace varuna

#endif  // SRC_PARALLEL_INTRA_LAYER_H_
