#include "src/pipeline/executor.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/sim/engine.h"

namespace varuna {

// Reusable working set. Every container is grow-only: Run() resizes upward
// when the workload shape grows and otherwise reuses the retained capacity,
// so a steady-state mini-batch performs no heap allocations.
struct ExecutorScratch {
  // State of one (replica, stage) worker following its per-stage op list.
  // The per-op / per-micro-batch flags are byte spans carved out of `flags`
  // (one shared arena instead of five vector<bool> per worker).
  struct Worker {
    int replica = 0;
    int stage = 0;
    GpuId gpu = -1;
    double slow_factor = 1.0;  // Snapshot: cluster state is frozen during Run().
    const std::vector<PipeOp>* ops = nullptr;
    unsigned char* done = nullptr;              // ops->size() entries
    unsigned char* act_arrived = nullptr;       // num_microbatches entries
    unsigned char* grad_arrived = nullptr;      // num_microbatches entries
    unsigned char* recompute_needed = nullptr;  // Per micro-batch: list contains R(m).
    unsigned char* recompute_done = nullptr;    // num_microbatches entries
    size_t cursor = 0;
    bool busy = false;
    // Rule 2: after a recompute completes the stage is committed to that
    // micro-batch's backward; at most one opportunistic forward may run while
    // the gradient is late (tracked by opportunistic_debt).
    int committed_backward = -1;
    bool opportunistic_debt = false;
    double busy_seconds = 0.0;
    double finish_time = 0.0;
    bool finished = false;
  };

  SimEngine engine;
  std::vector<Worker> workers;
  std::vector<unsigned char> flags;  // Arena backing the per-worker flag spans.
  // Job GPUs sharing each node's NIC, indexed by NodeId; only the entries for
  // the current placement's nodes are maintained (others may hold stale
  // counts from earlier placements and are never read).
  std::vector<int> node_flows;
  std::vector<double> stage_end;
  std::vector<GpuId> ring;   // Reused StageRing buffer (no alloc per allreduce).
  std::vector<GpuId> group;  // Reused shared-state sync pair.
  uint64_t growths = 0;      // Runs that had to grow any of the above.
};

namespace {

using Worker = ExecutorScratch::Worker;

class MinibatchRun {
 public:
  MinibatchRun(const Cluster* cluster, Rng* rng, ExecutorScratch* scratch,
      const Schedule& schedule, const Placement& placement,
      const std::vector<StageTiming>& timings, int microbatch_size,
      const ExecutorOptions& options)
      : cluster_(cluster),
        rng_(rng),
        scratch_(*scratch),
        engine_(scratch->engine),
        workers_(scratch->workers),
        schedule_(schedule),
        placement_(placement),
        timings_(timings),
        microbatch_size_(microbatch_size),
        options_(options) {}

  MinibatchResult Execute();

 private:
  int depth() const { return schedule_.depth; }
  int replicas() const { return placement_.data_parallel; }
  bool IsLast(int stage) const { return stage == depth() - 1; }

  Worker& WorkerAt(int replica, int stage) {
    return workers_[static_cast<size_t>(replica) * depth() + static_cast<size_t>(stage)];
  }

  void PrepareScratch();

  double OpDuration(const Worker& worker, const PipeOp& op) const;
  double TransferTime(GpuId src, GpuId dst, double bytes) const;
  int ConcurrentFlows(GpuId gpu) const;

  bool Runnable(const Worker& worker, const PipeOp& op) const;
  void TryDispatch(Worker* worker);
  void StartOp(Worker* worker, size_t index);
  void FinishOp(Worker* worker, size_t index);

  const Cluster* cluster_;
  Rng* rng_;
  ExecutorScratch& scratch_;
  SimEngine& engine_;
  std::vector<Worker>& workers_;
  const Schedule& schedule_;
  const Placement& placement_;
  const std::vector<StageTiming>& timings_;
  int microbatch_size_;
  const ExecutorOptions& options_;

  MinibatchResult result_;
};

double MinibatchRun::OpDuration(const Worker& worker, const PipeOp& op) const {
  const StageTiming& timing = timings_[static_cast<size_t>(worker.stage)];
  double base = 0.0;
  switch (op.type) {
    case PipeOpType::kForward:
      base = timing.forward_s;
      break;
    case PipeOpType::kRecompute:
      base = timing.recompute_s;
      break;
    case PipeOpType::kBackward:
      base = timing.backward_s;
      break;
    case PipeOpType::kIdleForward:
      return timing.forward_s;  // Idle slots burn nominal time; no noise.
    case PipeOpType::kIdleBackward:
      return timing.recompute_s + timing.backward_s;
  }
  base *= worker.slow_factor;
  if (options_.compute_noise_sigma > 0.0) {
    base = rng_->LogNormalMedian(base, options_.compute_noise_sigma);
  }
  return base;
}

int MinibatchRun::ConcurrentFlows(GpuId gpu) const {
  // Only placement GPUs reach here, and PrepareScratch() refreshed exactly
  // their nodes' counts.
  const int flows = scratch_.node_flows[static_cast<size_t>(
      cluster_->topology().NodeOfFast(gpu))];
  return flows > 1 ? flows : 1;
}

double MinibatchRun::TransferTime(GpuId src, GpuId dst, double bytes) const {
  const int flows = std::max(ConcurrentFlows(src), ConcurrentFlows(dst));
  if (options_.sample_network) {
    return cluster_->network().SampleTransferTime(src, dst, bytes, flows, rng_);
  }
  return cluster_->network().MeanTransferTime(src, dst, bytes, flows);
}

bool MinibatchRun::Runnable(const Worker& worker, const PipeOp& op) const {
  switch (op.type) {
    case PipeOpType::kForward:
      return worker.stage == 0 || worker.act_arrived[static_cast<size_t>(op.microbatch)] != 0;
    case PipeOpType::kRecompute:
      return true;  // Stashed input activation is local (list order guarantees F ran).
    case PipeOpType::kBackward: {
      const size_t m = static_cast<size_t>(op.microbatch);
      if (worker.recompute_needed[m] != 0 && worker.recompute_done[m] == 0) {
        return false;
      }
      return worker.grad_arrived[m] != 0;
    }
    case PipeOpType::kIdleForward:
    case PipeOpType::kIdleBackward:
      return true;
  }
  return false;
}

void MinibatchRun::StartOp(Worker* worker, size_t index) {
  const PipeOp& op = (*worker->ops)[index];
  worker->busy = true;
  if (op.type == PipeOpType::kBackward) {
    worker->committed_backward = -1;
    worker->opportunistic_debt = false;
  }
  const double duration = OpDuration(*worker, op);
  worker->busy_seconds += duration;
  const double start = engine_.now();
  engine_.Schedule(duration, [this, worker, index, start] {
    const PipeOp& finished = (*worker->ops)[index];
    if (options_.record_trace && worker->replica == 0) {
      result_.trace.push_back(ExecTraceOp{worker->stage, finished, start, engine_.now()});
    }
    FinishOp(worker, index);
  });
}

void MinibatchRun::FinishOp(Worker* worker, size_t index) {
  const PipeOp op = (*worker->ops)[index];
  worker->busy = false;
  worker->done[index] = 1;
  double blocking_send = 0.0;  // Non-overlapped implementations stall here.

  switch (op.type) {
    case PipeOpType::kForward: {
      if (IsLast(worker->stage)) {
        // Loss gradient is local; backward is ready and activations are live.
        worker->grad_arrived[static_cast<size_t>(op.microbatch)] = 1;
        worker->recompute_done[static_cast<size_t>(op.microbatch)] = 1;
      } else {
        // Ship the activation to the next stage (overlapped with compute).
        Worker* next = &WorkerAt(worker->replica, worker->stage + 1);
        const double bytes = timings_[static_cast<size_t>(worker->stage)].send_activation_bytes;
        const double delay = TransferTime(worker->gpu, next->gpu, bytes);
        if (!options_.overlap_communication) {
          blocking_send = std::max(blocking_send, delay);
        }
        engine_.Schedule(delay, [this, next, op] {
          next->act_arrived[static_cast<size_t>(op.microbatch)] = 1;
          TryDispatch(next);
        });
      }
      break;
    }
    case PipeOpType::kRecompute:
      worker->recompute_done[static_cast<size_t>(op.microbatch)] = 1;
      worker->committed_backward = op.microbatch;  // Rule 2.
      break;
    case PipeOpType::kBackward: {
      if (worker->stage > 0) {
        Worker* previous = &WorkerAt(worker->replica, worker->stage - 1);
        // The gradient w.r.t. the stage input has the same shape as the
        // activation the previous stage sent.
        const double bytes =
            timings_[static_cast<size_t>(worker->stage) - 1].send_activation_bytes;
        const double delay = TransferTime(worker->gpu, previous->gpu, bytes);
        if (!options_.overlap_communication) {
          blocking_send = std::max(blocking_send, delay);
        }
        engine_.Schedule(delay, [this, previous, op] {
          previous->grad_arrived[static_cast<size_t>(op.microbatch)] = 1;
          TryDispatch(previous);
        });
      }
      break;
    }
    case PipeOpType::kIdleForward:
    case PipeOpType::kIdleBackward:
      break;
  }

  // Advance past completed ops; detect worker completion.
  while (worker->cursor < worker->ops->size() && worker->done[worker->cursor] != 0) {
    ++worker->cursor;
  }
  if (worker->cursor >= worker->ops->size()) {
    worker->finished = true;
    worker->finish_time = engine_.now();
    return;
  }
  if (blocking_send > 0.0) {
    // The stage's compute thread is parked until the synchronous send drains.
    worker->busy = true;
    worker->busy_seconds += blocking_send;
    engine_.Schedule(blocking_send, [this, worker] {
      worker->busy = false;
      TryDispatch(worker);
    });
    return;
  }
  TryDispatch(worker);
}

void MinibatchRun::TryDispatch(Worker* worker) {
  if (worker->busy || worker->finished) {
    return;
  }
  // Skip already-completed ops (possible after opportunistic deviation).
  while (worker->cursor < worker->ops->size() && worker->done[worker->cursor] != 0) {
    ++worker->cursor;
  }
  if (worker->cursor >= worker->ops->size()) {
    return;
  }
  const PipeOp& next = (*worker->ops)[worker->cursor];
  if (Runnable(*worker, next)) {
    StartOp(worker, worker->cursor);
    return;
  }
  // Opportunistic deviation (§3.2): "the schedule for stage k may indicate
  // that the backward pass for micro-batch m must be scheduled, but the
  // gradients for m may not have arrived yet; in those cases, Varuna deviates
  // from the schedule and opportunistically schedules another ready task
  // (e.g., forward pass)". While committed to a post-recompute backward
  // (rule 2) at most one forward may slip in — its working set briefly
  // coexists with the recomputed activations, which the working-set budget
  // tolerates; an unbounded run-ahead would not be.
  if (!schedule_.opportunistic) {
    return;
  }
  if (worker->committed_backward >= 0 && worker->opportunistic_debt) {
    return;
  }
  for (size_t i = worker->cursor; i < worker->ops->size(); ++i) {
    if (worker->done[i] != 0) {
      continue;
    }
    const PipeOp& op = (*worker->ops)[i];
    if (op.type != PipeOpType::kForward) {
      continue;
    }
    if (Runnable(*worker, op)) {
      worker->opportunistic_debt = worker->committed_backward >= 0;
      StartOp(worker, i);
    }
    // Forwards must stay in order: only the first pending forward qualifies.
    break;
  }
}

void MinibatchRun::PrepareScratch() {
  const size_t capacity_before = workers_.capacity() + scratch_.flags.capacity() +
                                 scratch_.node_flows.capacity() + scratch_.stage_end.capacity() +
                                 scratch_.ring.capacity() + scratch_.group.capacity();
  engine_.Reset();

  // How many job GPUs share each node's NIC (flow-concurrency estimate).
  // Zero exactly the placement's nodes (other entries are stale, never read),
  // then count.
  const Topology& topology = cluster_->topology();
  if (scratch_.node_flows.size() < static_cast<size_t>(topology.num_nodes())) {
    scratch_.node_flows.resize(static_cast<size_t>(topology.num_nodes()), 0);
  }
  for (int r = 0; r < replicas(); ++r) {
    for (int s = 0; s < depth(); ++s) {
      scratch_.node_flows[static_cast<size_t>(topology.NodeOfFast(placement_.At(r, s)))] = 0;
    }
  }
  for (int r = 0; r < replicas(); ++r) {
    for (int s = 0; s < depth(); ++s) {
      ++scratch_.node_flows[static_cast<size_t>(topology.NodeOfFast(placement_.At(r, s)))];
    }
  }

  // Carve all per-worker flag spans out of one zeroed arena.
  const size_t microbatches = static_cast<size_t>(schedule_.num_microbatches);
  size_t flag_bytes = 0;
  for (int s = 0; s < depth(); ++s) {
    flag_bytes += schedule_.ops[static_cast<size_t>(s)].size() + 4 * microbatches;
  }
  flag_bytes *= static_cast<size_t>(replicas());
  if (scratch_.flags.size() < flag_bytes) {
    scratch_.flags.resize(flag_bytes);
  }
  std::memset(scratch_.flags.data(), 0, flag_bytes);

  workers_.resize(static_cast<size_t>(replicas()) * depth());
  unsigned char* arena = scratch_.flags.data();
  for (int r = 0; r < replicas(); ++r) {
    for (int s = 0; s < depth(); ++s) {
      Worker& worker = WorkerAt(r, s);
      worker = Worker{};
      worker.replica = r;
      worker.stage = s;
      worker.gpu = placement_.At(r, s);
      worker.slow_factor = cluster_->SlowFactor(worker.gpu);
      worker.ops = &schedule_.ops[static_cast<size_t>(s)];
      worker.done = arena;
      arena += worker.ops->size();
      worker.act_arrived = arena;
      arena += microbatches;
      worker.grad_arrived = arena;
      arena += microbatches;
      worker.recompute_needed = arena;
      arena += microbatches;
      worker.recompute_done = arena;
      arena += microbatches;
      for (const PipeOp& op : *worker.ops) {
        if (op.type == PipeOpType::kRecompute) {
          worker.recompute_needed[static_cast<size_t>(op.microbatch)] = 1;
        }
      }
    }
  }

  scratch_.stage_end.assign(static_cast<size_t>(depth()), 0.0);
  const size_t capacity_after = workers_.capacity() + scratch_.flags.capacity() +
                                scratch_.node_flows.capacity() + scratch_.stage_end.capacity() +
                                scratch_.ring.capacity() + scratch_.group.capacity();
  if (capacity_after > capacity_before) {
    ++scratch_.growths;
  }
}

MinibatchResult MinibatchRun::Execute() {
  VARUNA_CHECK_EQ(schedule_.depth, placement_.pipeline_depth);
  VARUNA_CHECK_EQ(static_cast<int>(timings_.size()), schedule_.depth);

  PrepareScratch();

  for (auto& worker : workers_) {
    TryDispatch(&worker);
  }
  engine_.Run();

  double pipeline_end = 0.0;
  double busy_fraction_sum = 0.0;
  std::vector<double>& stage_end = scratch_.stage_end;
  for (const auto& worker : workers_) {
    VARUNA_CHECK(worker.finished) << "pipeline deadlock: replica " << worker.replica
                                  << " stage " << worker.stage << " stalled at op "
                                  << worker.cursor;
    pipeline_end = std::max(pipeline_end, worker.finish_time);
    stage_end[static_cast<size_t>(worker.stage)] =
        std::max(stage_end[static_cast<size_t>(worker.stage)], worker.finish_time);
    busy_fraction_sum += worker.busy_seconds;
  }

  // End-of-mini-batch collectives. Each stage's data-parallel ring allreduce
  // starts once all its replicas finished; rings of co-located stages run
  // concurrently, which the k-flows NIC sharing inside Network captures.
  double collectives_end = pipeline_end;
  result_.allreduce_time_s = 0.0;
  std::vector<GpuId>& ring = scratch_.ring;
  for (int s = 0; s < depth(); ++s) {
    ring.clear();
    for (int r = 0; r < replicas(); ++r) {
      ring.push_back(placement_.At(r, s));
    }
    const int concurrent = ConcurrentFlows(ring[0]);
    const double bytes = timings_[static_cast<size_t>(s)].grad_allreduce_bytes;
    const double time =
        options_.sample_network
            ? cluster_->network().SampleAllReduceTime(ring, bytes, concurrent, rng_)
            : cluster_->network().MeanAllReduceTime(ring, bytes, concurrent);
    result_.allreduce_time_s = std::max(result_.allreduce_time_s, time);
    collectives_end = std::max(collectives_end, stage_end[static_cast<size_t>(s)] + time);
  }

  // Cross-partition shared-state sync over each pipeline's process group
  // (first and last stage hold the tied embedding).
  double sync = 0.0;
  if (options_.shared_state_sync_bytes > 0.0 && depth() > 1) {
    std::vector<GpuId>& group = scratch_.group;
    group.resize(2);
    for (int r = 0; r < replicas(); ++r) {
      group[0] = placement_.At(r, 0);
      group[1] = placement_.At(r, depth() - 1);
      const double time = options_.sample_network
                              ? cluster_->network().SampleAllReduceTime(
                                    group, options_.shared_state_sync_bytes, 1, rng_)
                              : cluster_->network().MeanAllReduceTime(
                                    group, options_.shared_state_sync_bytes, 1);
      sync = std::max(sync, time);
    }
  }
  if (options_.cpu_offload_optimizer && options_.cpu_offload_bytes_per_stage > 0.0) {
    // Optimizer state shuttles GPU->CPU->GPU over PCIe at mini-batch end.
    sync += 2.0 * options_.cpu_offload_bytes_per_stage / options_.pcie_bandwidth_bps;
  }
  result_.sync_time_s = sync;

  result_.pipeline_time_s = pipeline_end;
  result_.total_time_s = collectives_end + sync;
  result_.examples = static_cast<double>(microbatch_size_) * schedule_.num_microbatches *
                     replicas();
  result_.mean_busy_fraction =
      pipeline_end > 0.0
          ? busy_fraction_sum / (static_cast<double>(workers_.size()) * pipeline_end)
          : 0.0;
  if (options_.record_trace) {
    result_.trace_allreduce_start = pipeline_end;
    result_.trace_allreduce_end = result_.total_time_s;
    std::sort(result_.trace.begin(), result_.trace.end(),
              [](const ExecTraceOp& a, const ExecTraceOp& b) { return a.start < b.start; });
  }
  return result_;
}

}  // namespace

PipelineExecutor::PipelineExecutor(const Cluster* cluster, Rng* rng)
    : cluster_(cluster), rng_(rng), scratch_(new ExecutorScratch()) {}

PipelineExecutor::~PipelineExecutor() = default;

uint64_t PipelineExecutor::scratch_growths() const { return scratch_->growths; }

MinibatchResult PipelineExecutor::Run(const Schedule& schedule, const Placement& placement,
                                      const std::vector<StageTiming>& timings,
                                      int microbatch_size, const ExecutorOptions& options) {
  MinibatchRun run(cluster_, rng_, scratch_.get(), schedule, placement, timings,
                   microbatch_size, options);
  MinibatchResult result = run.Execute();
  events_processed_ += scratch_->engine.events_processed();
  callback_heap_fallbacks_ += scratch_->engine.callback_heap_fallbacks();
  return result;
}

}  // namespace varuna
