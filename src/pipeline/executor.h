// Discrete-event pipeline executor — the "testbed" on which configurations
// are actually run. It executes any static Schedule over a Placement on a
// Cluster, sampling per-op compute noise, per-message network jitter and tail
// stalls, fail-stutter slow factors, and the end-of-mini-batch data-parallel
// allreduce plus cross-partition shared-state sync. Varuna schedules may
// deviate opportunistically (run a ready forward when the scheduled op's
// inputs are late, §3.2).
//
// Performance: one executor instance owns an ExecutorScratch (sim engine,
// worker table, flag arena, flow-count table) that is reset — not reallocated
// — between mini-batches, so a long training session reaches a steady state
// where Run() performs no heap allocations (asserted by the executor tests
// via scratch_growths() and callback_heap_fallbacks()).
#ifndef SRC_PIPELINE_EXECUTOR_H_
#define SRC_PIPELINE_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/placement.h"
#include "src/common/rng.h"
#include "src/pipeline/schedule.h"
#include "src/pipeline/stage_timing.h"

namespace varuna {

struct ExecutorOptions {
  // Log-normal sigma of per-op compute-time noise (kernel timing variance).
  double compute_noise_sigma = 0.01;
  // Sample network jitter/stalls (true) or use means only (false).
  bool sample_network = true;
  // Varuna overlaps activation/gradient sends with compute via dedicated
  // communication threads (§6). Primitive implementations (the public GPipe,
  // DeepSpeed's slotted engine) block the stage while sending.
  bool overlap_communication = true;
  // Bytes allreduced over each pipeline's process group at mini-batch end for
  // cross-partition shared state (tied embeddings, loss-scale flag; §5.2).
  double shared_state_sync_bytes = 0.0;
  // 200B-style CPU-offloaded optimizer: bytes moved GPU<->CPU per stage at
  // mini-batch end (§7.1.1), at PCIe bandwidth.
  bool cpu_offload_optimizer = false;
  double cpu_offload_bytes_per_stage = 0.0;
  double pcie_bandwidth_bps = 12.0e9;
  // Record a Gantt trace of replica 0 (Figure 7).
  bool record_trace = false;
};

struct ExecTraceOp {
  int stage = 0;
  PipeOp op;
  double start = 0.0;
  double end = 0.0;
};

struct MinibatchResult {
  double total_time_s = 0.0;      // Pipeline + allreduce + shared sync (+ offload).
  double pipeline_time_s = 0.0;   // Until the last worker finished its ops.
  double allreduce_time_s = 0.0;  // Slowest stage ring allreduce.
  double sync_time_s = 0.0;       // Shared-state sync + optimizer offload.
  double examples = 0.0;          // m * Nm * D.
  // Mean busy fraction across workers during the pipeline phase.
  double mean_busy_fraction = 0.0;
  std::vector<ExecTraceOp> trace;        // Replica 0, if record_trace.
  double trace_allreduce_start = 0.0;    // For Gantt rendering.
  double trace_allreduce_end = 0.0;

  double ExamplesPerSecond() const { return examples / total_time_s; }
  double ExamplesPerSecondPerGpu(int gpus) const { return ExamplesPerSecond() / gpus; }
};

// Reusable per-executor working set (sim engine, worker table, flag arena);
// defined in executor.cc — callers only see the counters surfaced below.
struct ExecutorScratch;

class PipelineExecutor {
 public:
  PipelineExecutor(const Cluster* cluster, Rng* rng);
  ~PipelineExecutor();
  PipelineExecutor(const PipelineExecutor&) = delete;
  PipelineExecutor& operator=(const PipelineExecutor&) = delete;

  // Runs one mini-batch: `schedule` on `placement` with per-stage `timings`
  // (micro-batch size is baked into the timings; `microbatch_size` is used
  // only for the examples count).
  MinibatchResult Run(const Schedule& schedule, const Placement& placement,
                      const std::vector<StageTiming>& timings, int microbatch_size,
                      const ExecutorOptions& options = {});

  // --- Perf counters, accumulated across Run() calls ------------------------
  // Simulation events fired on this executor's engine.
  uint64_t events_processed() const { return events_processed_; }
  // Scheduled callbacks that overflowed SmallCallback's inline buffer; the
  // executor's lambdas are sized to keep this at zero.
  uint64_t callback_heap_fallbacks() const { return callback_heap_fallbacks_; }
  // Runs whose working set outgrew the retained scratch capacity (each one
  // implies allocations); stays flat once the workload shape stabilises.
  uint64_t scratch_growths() const;

 private:
  const Cluster* cluster_;
  Rng* rng_;
  std::unique_ptr<ExecutorScratch> scratch_;
  uint64_t events_processed_ = 0;
  uint64_t callback_heap_fallbacks_ = 0;
};

}  // namespace varuna

#endif  // SRC_PIPELINE_EXECUTOR_H_
