#include "src/pipeline/memory.h"

#include <algorithm>
#include <sstream>

namespace varuna {

MemoryEstimate EstimateStageMemory(ScheduleKind kind, const MemoryModelInputs& inputs) {
  MemoryEstimate estimate;
  // fp16 param + fp16 grad + fp32 master + fp32 Adam m/v = 16 B/param; with
  // CPU offload only the fp16 param + grad stay resident.
  estimate.parameter_state_bytes =
      inputs.stage_params * (inputs.cpu_offload_optimizer ? 4.0 : 16.0);

  const double m = inputs.microbatch_size;
  const double input_act = inputs.input_activation_bytes_per_example * m;
  const double full_act = inputs.full_activation_bytes_per_example * m;

  switch (kind) {
    case ScheduleKind::kVaruna:
    case ScheduleKind::kGpipe:
    case ScheduleKind::kDeepSpeed: {
      // Gradient checkpointing: stash the input activation of every in-flight
      // micro-batch + one recomputed full working set (rule 2 of the Varuna
      // schedule guarantees at most one recomputed set). Backpressure keeps at
      // most ~2P micro-batches in flight on the GPU; stashes beyond that
      // window are boundary-sized tensors parked in host RAM (the 200B run
      // keeps bulky state CPU-side, §7.1.1).
      const int window = std::min(inputs.num_microbatches, 2 * inputs.pipeline_depth);
      estimate.input_stash_bytes = input_act * window;
      estimate.working_set_bytes = full_act;
      break;
    }
    case ScheduleKind::kOneFOneB:
      // Megatron-1F1B with checkpointing: at most P - stage in-flight
      // micro-batches hold stashed inputs; one recomputed working set.
      estimate.input_stash_bytes =
          input_act * std::min(inputs.num_microbatches,
                               inputs.pipeline_depth - inputs.stage_index);
      estimate.working_set_bytes = full_act;
      break;
  }
  return estimate;
}

MemoryEstimate EstimatePipeDreamStageMemory(const MemoryModelInputs& inputs) {
  MemoryEstimate estimate;
  estimate.parameter_state_bytes = inputs.stage_params * 16.0;
  const int in_flight =
      std::min(inputs.num_microbatches, inputs.pipeline_depth - inputs.stage_index);
  // One extra fp16 weight copy per in-flight micro-batch beyond the current.
  estimate.weight_versions_bytes = inputs.stage_params * 2.0 * std::max(0, in_flight - 1);
  const double m = inputs.microbatch_size;
  // Full activations stashed (no recompute) for each in-flight micro-batch.
  estimate.working_set_bytes = inputs.full_activation_bytes_per_example * m * in_flight;
  estimate.input_stash_bytes = inputs.input_activation_bytes_per_example * m * in_flight;
  return estimate;
}

bool Fits(const MemoryEstimate& estimate, const MemoryBudget& budget) {
  return estimate.total() <= budget.gpu_memory_bytes * budget.usable_fraction;
}

double BlockFullActivationBytes(const TransformerSpec& spec) {
  const double s = spec.seq_len;
  const double h = spec.hidden;
  // fp16 live tensors per block: input (1), QKV (3), attention scores
  // (s*s*heads, stored once), context (1), attn-out (1), LN outputs (2),
  // MLP intermediate (4), MLP out (1), residual adds (2) => ~15 s*h tensors
  // plus the score matrix.
  return 2.0 * (15.0 * s * h + s * s * spec.heads / 8.0);
}

Result<int> MinFittingDepth(ScheduleKind kind, const TransformerSpec& spec,
                            const ModelSections& sections, int microbatch_size,
                            int num_microbatches, const MemoryBudget& budget,
                            bool cpu_offload_optimizer) {
  const double block_full_act = BlockFullActivationBytes(spec);
  const double blocks_per_section =
      static_cast<double>(spec.num_layers) / sections.num_sections();
  for (int depth = 1; depth <= sections.num_sections(); ++depth) {
    Result<Partition> partition = PartitionModel(sections, depth);
    if (!partition.ok()) {
      continue;
    }
    bool fits = true;
    for (int stage = 0; stage < depth && fits; ++stage) {
      const int begin = partition.value().stage_begin[static_cast<size_t>(stage)];
      const int end = partition.value().stage_begin[static_cast<size_t>(stage) + 1];
      MemoryModelInputs inputs;
      inputs.stage_params = partition.value().stage_params[static_cast<size_t>(stage)];
      // Stage 0's stashed input is the token-id batch, not a hidden state.
      inputs.input_activation_bytes_per_example =
          stage == 0 ? 4.0 * spec.seq_len : spec.BoundaryActivationBytes();
      inputs.full_activation_bytes_per_example =
          block_full_act * blocks_per_section * (end - begin);
      inputs.microbatch_size = microbatch_size;
      inputs.num_microbatches = num_microbatches;
      inputs.pipeline_depth = depth;
      inputs.stage_index = stage;
      inputs.cpu_offload_optimizer = cpu_offload_optimizer;
      fits = Fits(EstimateStageMemory(kind, inputs), budget);
    }
    if (fits) {
      return depth;
    }
  }
  std::ostringstream message;
  message << spec.name << " does not fit at any pipeline depth up to "
          << sections.num_sections() << " with m=" << microbatch_size;
  return Result<int>::Error(message.str());
}

}  // namespace varuna
