// Per-stage GPU memory accounting (§2 "Memory optimization", §7.1.2).
// Mixed-precision training with Adam needs up to 16 bytes per parameter
// (fp16 param+grad, fp32 master+momentum+variance). Activation cost depends
// on the system: gradient checkpointing keeps only per-micro-batch input
// activations plus one recomputed working set; PipeDream additionally stashes
// P weight versions and full output activations, which is what makes it OOM
// on massive models (Table 6).
#ifndef SRC_PIPELINE_MEMORY_H_
#define SRC_PIPELINE_MEMORY_H_

#include "src/model/cutpoints.h"
#include "src/model/transformer.h"
#include "src/pipeline/schedule.h"

namespace varuna {

struct MemoryBudget {
  double gpu_memory_bytes = 0.0;
  // Fraction usable by the job (CUDA context, fragmentation, comm buffers).
  double usable_fraction = 0.92;
};

struct MemoryEstimate {
  double parameter_state_bytes = 0.0;  // 16 B per parameter (or 4 B with CPU offload).
  double weight_versions_bytes = 0.0;  // Extra stashed weight copies (PipeDream).
  double input_stash_bytes = 0.0;      // Stashed boundary activations.
  double working_set_bytes = 0.0;      // Live activations of in-flight micro-batches.
  double total() const {
    return parameter_state_bytes + weight_versions_bytes + input_stash_bytes +
           working_set_bytes;
  }
};

struct MemoryModelInputs {
  // Parameters resident on the stage.
  double stage_params = 0.0;
  // Boundary (input) activation bytes per example for the stage.
  double input_activation_bytes_per_example = 0.0;
  // Full forward activation footprint of the stage per example (what a
  // recompute materialises). Derived from the model spec + layers per stage.
  double full_activation_bytes_per_example = 0.0;
  int microbatch_size = 1;    // m
  int num_microbatches = 1;   // Nm
  int pipeline_depth = 1;     // P
  int stage_index = 0;        // 0-based
  // Varuna's 200B trick (§7.1.1): keep fp32 optimizer state in CPU memory.
  bool cpu_offload_optimizer = false;
};

// Memory footprint of one stage under the given pipeline system.
MemoryEstimate EstimateStageMemory(ScheduleKind kind, const MemoryModelInputs& inputs);

// PipeDream (asynchronous 1F1B): keeps one weight version per in-flight
// micro-batch — up to P at stage 0 — and stores full activations instead of
// recomputing. This is why "PipeDream, because of its storing P copies of
// parameters ... cannot fit massive models in GPU memory" (Table 6).
MemoryEstimate EstimatePipeDreamStageMemory(const MemoryModelInputs& inputs);

// True if the estimate fits the budget.
bool Fits(const MemoryEstimate& estimate, const MemoryBudget& budget);

// Full per-example activation footprint of a transformer block (live tensors
// during a forward pass): QKV, scores, context, MLP intermediate, residuals.
double BlockFullActivationBytes(const TransformerSpec& spec);

// Smallest pipeline depth at which every stage of the partitioned model fits
// the budget, or an error if even depth == sections.num_sections() does not
// fit. Uses the balanced partitioner internally.
Result<int> MinFittingDepth(ScheduleKind kind, const TransformerSpec& spec,
                            const ModelSections& sections, int microbatch_size,
                            int num_microbatches, const MemoryBudget& budget,
                            bool cpu_offload_optimizer = false);

}  // namespace varuna

#endif  // SRC_PIPELINE_MEMORY_H_
