#include "src/pipeline/schedule.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <tuple>

#include "src/common/check.h"
#include "src/common/gantt.h"
#include "src/pipeline/validate.h"

namespace varuna {
namespace {

// Unit times used for schedule generation and Figure-4 style accounting:
// forward and recompute take 1, backward takes 2 (paper Figure 4 caption).
constexpr double kUnitForward = 1.0;
constexpr double kUnitRecompute = 1.0;
constexpr double kUnitBackward = 2.0;

double UnitDuration(PipeOpType type) {
  switch (type) {
    case PipeOpType::kForward:
      return kUnitForward;
    case PipeOpType::kRecompute:
      return kUnitRecompute;
    case PipeOpType::kBackward:
      return kUnitBackward;
    case PipeOpType::kIdleForward:
      return kUnitForward;
    case PipeOpType::kIdleBackward:
      return kUnitRecompute + kUnitBackward;
  }
  return 0.0;
}

// --- Varuna generation (§3.2) --------------------------------------------
//
// The rule-based tool is realised as a unit-time simulation with zero
// communication latency. Rules:
//  1. Recompute at stage k-1 becomes *allowed* the moment stage k starts the
//     backward pass of that micro-batch (backward takes 2 units >= Tf, so a
//     promptly started recompute finishes before the gradient arrives).
//  2. Once a recompute finishes, the stage commits to that micro-batch's
//     backward before doing anything else (a second activation set would
//     double activation memory).
//  3. Backward is preferred over forward whenever ready.
// The last stage never recomputes: each forward is immediately followed by
// its backward, so activations are still live (this is what lets Varuna pack
// the LM head into the final stage).
class VarunaGenerator {
 public:
  VarunaGenerator(int depth, int num_microbatches)
      : depth_(depth), num_microbatches_(num_microbatches), stages_(static_cast<size_t>(depth)) {
    for (auto& stage : stages_) {
      stage.act_arrived.assign(static_cast<size_t>(num_microbatches), false);
      stage.grad_arrived.assign(static_cast<size_t>(num_microbatches), false);
      stage.recompute_allowed.assign(static_cast<size_t>(num_microbatches), false);
      stage.recompute_done.assign(static_cast<size_t>(num_microbatches), false);
      stage.backward_done.assign(static_cast<size_t>(num_microbatches), false);
    }
    // Stage 0 owns the input data.
    for (int m = 0; m < num_microbatches; ++m) {
      stages_[0].act_arrived[static_cast<size_t>(m)] = true;
    }
    remaining_backwards_ = static_cast<int64_t>(depth) * num_microbatches;
  }

  Schedule Run() {
    // Event loop over op completions: stages re-enter the ready worklist when
    // a completion targets them or their running op finishes; between bursts,
    // AdvanceTime jumps to the next interesting instant.
    for (int s = 0; s < depth_; ++s) {
      ready_.push_back(s);
    }
    while (!Done()) {
      bool progress = false;
      while (!ready_.empty()) {
        const int s = ready_.back();
        ready_.pop_back();
        // A stage may start several ops back-to-back at the same instant only
        // after time advances, so one attempt per wakeup suffices.
        progress |= TryStart(s);
      }
      if (!progress || ready_.empty()) {
        AdvanceTime();
      }
    }
    Schedule schedule;
    schedule.kind = ScheduleKind::kVaruna;
    schedule.depth = depth_;
    schedule.num_microbatches = num_microbatches_;
    schedule.opportunistic = true;
    schedule.ops.resize(static_cast<size_t>(depth_));
    for (int s = 0; s < depth_; ++s) {
      schedule.ops[static_cast<size_t>(s)] = stages_[static_cast<size_t>(s)].emitted;
    }
    return schedule;
  }

 private:
  struct StageState {
    std::vector<bool> act_arrived;
    std::vector<bool> grad_arrived;
    std::vector<bool> recompute_allowed;
    std::vector<bool> recompute_done;
    std::vector<bool> backward_done;
    int next_fwd = 0;
    int pending_backward = -1;  // Rule 2: micro-batch whose B must run next.
    bool owes_forward = false;  // Set after each backward: let one forward through.
    double busy_until = 0.0;
    // Micro-batches whose backward (gradient + recompute) is ready to run.
    std::set<int> ready_backward;
    // Micro-batches whose just-in-time recompute window has opened (rule 1).
    std::set<int> allowed_recompute;
    std::vector<PipeOp> emitted;
  };

  bool IsLast(int s) const { return s == depth_ - 1; }

  bool Done() const { return remaining_backwards_ == 0; }

  // Starts one op on stage s if it is free and something is runnable at now_.
  bool TryStart(int s) {
    StageState& stage = stages_[static_cast<size_t>(s)];
    if (stage.busy_until > now_) {
      return false;
    }

    // Rule 2: committed to a backward after its recompute.
    if (stage.pending_backward >= 0) {
      const int m = stage.pending_backward;
      if (stage.grad_arrived[static_cast<size_t>(m)]) {
        StartBackward(s, m);
        return true;
      }
      return false;  // Block until the gradient shows up.
    }

    const bool forward_ready = stage.next_fwd < num_microbatches_ &&
                               stage.act_arrived[static_cast<size_t>(stage.next_fwd)];

    // Steady-state interleave: after a backward completes, one pending forward
    // is let through before the next recompute+backward pair. Without this,
    // transient gradient backlogs make rule 3 drain backwards in bursts,
    // starving downstream stages of forwards and locking the pipeline into a
    // lossy oscillation; with it, each stage settles into the bubble-free
    // F-R-B cycle and forwards stay "interspersed throughout the schedule"
    // (§3.2) — which is also what opportunistic scheduling feeds on.
    if (forward_ready && stage.owes_forward) {
      StartForward(s, stage.next_fwd);
      return true;
    }

    // Rule 3: prefer a ready backward.
    if (!stage.ready_backward.empty()) {
      StartBackward(s, *stage.ready_backward.begin());
      return true;
    }

    // Rule 1: just-in-time recompute (enabled by downstream backward start).
    if (!IsLast(s) && !stage.allowed_recompute.empty()) {
      StartRecompute(s, *stage.allowed_recompute.begin());
      return true;
    }

    // Otherwise run the next forward if its activation arrived.
    if (forward_ready) {
      StartForward(s, stage.next_fwd);
      return true;
    }
    return false;
  }

  void StartForward(int s, int m) {
    StageState& stage = stages_[static_cast<size_t>(s)];
    stage.owes_forward = false;
    stage.emitted.push_back(PipeOp{PipeOpType::kForward, m});
    stage.busy_until = now_ + kUnitForward;
    stage.next_fwd = m + 1;
    const double completion = stage.busy_until;
    if (!IsLast(s)) {
      // Activation handed to the next stage at completion (zero latency).
      completions_.push(Completion{completion, s + 1, m, CompletionKind::kActivation});
    } else {
      // Last stage: loss gradient is local, and activations are still live, so
      // the backward is immediately ready (no recompute).
      completions_.push(Completion{completion, s, m, CompletionKind::kGradient});
      stage.recompute_done[static_cast<size_t>(m)] = true;
    }
  }

  void StartRecompute(int s, int m) {
    StageState& stage = stages_[static_cast<size_t>(s)];
    stage.allowed_recompute.erase(m);
    stage.emitted.push_back(PipeOp{PipeOpType::kRecompute, m});
    stage.busy_until = now_ + kUnitRecompute;
    completions_.push(Completion{stage.busy_until, s, m, CompletionKind::kRecompute});
  }

  void StartBackward(int s, int m) {
    StageState& stage = stages_[static_cast<size_t>(s)];
    stage.ready_backward.erase(m);
    stage.allowed_recompute.erase(m);
    --remaining_backwards_;
    stage.emitted.push_back(PipeOp{PipeOpType::kBackward, m});
    stage.busy_until = now_ + kUnitBackward;
    stage.pending_backward = -1;
    stage.owes_forward = true;
    stage.backward_done[static_cast<size_t>(m)] = true;  // Marked at start; completion event
                                                          // delivers the downstream gradient.
    if (s > 0) {
      // Rule 1, just-in-time: the upstream recompute should *complete* right
      // when this backward's gradient arrives, i.e. start one recompute-time
      // before this backward ends — not earlier, so the slot before it stays
      // free for a forward (this is what keeps the steady state bubble-free).
      completions_.push(Completion{stage.busy_until - kUnitRecompute, s - 1, m,
                                        CompletionKind::kRecomputeAllowed});
      completions_.push(Completion{stage.busy_until, s - 1, m, CompletionKind::kGradient});
    }
  }

  void AdvanceTime() {
    // Jump to the earliest pending completion or op finish, apply every
    // completion due at (or before) that instant, and wake the stages whose
    // state changed.
    double next = std::numeric_limits<double>::infinity();
    for (const auto& stage : stages_) {
      if (stage.busy_until > now_) {
        next = std::min(next, stage.busy_until);
      }
    }
    if (!completions_.empty()) {
      next = std::min(next, completions_.top().when);
    }
    VARUNA_CHECK(next < std::numeric_limits<double>::infinity()) << "Varuna generator deadlock";
    now_ = next;
    for (int s = 0; s < depth_; ++s) {
      if (stages_[static_cast<size_t>(s)].busy_until == now_) {
        Wake(s);
      }
    }
    while (!completions_.empty() && completions_.top().when <= now_) {
      const Completion completion = completions_.top();
      completions_.pop();
      ApplyCompletion(completion);
      Wake(completion.stage);
    }
  }

  void Wake(int s) {
    if (std::find(ready_.begin(), ready_.end(), s) == ready_.end()) {
      ready_.push_back(s);
    }
  }

  enum class CompletionKind { kActivation, kGradient, kRecompute, kRecomputeAllowed };
  struct Completion {
    double when;
    int stage;
    int microbatch;
    CompletionKind kind;

    bool operator>(const Completion& other) const { return when > other.when; }
  };

  void ApplyCompletion(const Completion& completion) {
    StageState& stage = stages_[static_cast<size_t>(completion.stage)];
    switch (completion.kind) {
      case CompletionKind::kActivation:
        stage.act_arrived[static_cast<size_t>(completion.microbatch)] = true;
        break;
      case CompletionKind::kGradient: {
        const size_t m = static_cast<size_t>(completion.microbatch);
        stage.grad_arrived[m] = true;
        const bool recompute_ok =
            completion.stage == depth_ - 1 || stage.recompute_done[m];
        if (recompute_ok && !stage.backward_done[m]) {
          stage.ready_backward.insert(completion.microbatch);
        }
        break;
      }
      case CompletionKind::kRecompute:
        stage.recompute_done[static_cast<size_t>(completion.microbatch)] = true;
        stage.pending_backward = completion.microbatch;  // Rule 2.
        if (stage.grad_arrived[static_cast<size_t>(completion.microbatch)] &&
            !stage.backward_done[static_cast<size_t>(completion.microbatch)]) {
          stage.ready_backward.insert(completion.microbatch);
        }
        break;
      case CompletionKind::kRecomputeAllowed:
        stage.recompute_allowed[static_cast<size_t>(completion.microbatch)] = true;
        if (!stage.recompute_done[static_cast<size_t>(completion.microbatch)] &&
            !stage.backward_done[static_cast<size_t>(completion.microbatch)]) {
          stage.allowed_recompute.insert(completion.microbatch);
        }
        break;
    }
  }

  int depth_;
  int num_microbatches_;
  std::vector<StageState> stages_;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> completions_;
  std::vector<int> ready_;  // Stages to re-examine before advancing time.
  int64_t remaining_backwards_ = 0;
  double now_ = 0.0;
};

Schedule GenerateGpipe(int depth, int num_microbatches) {
  Schedule schedule;
  schedule.kind = ScheduleKind::kGpipe;
  schedule.depth = depth;
  schedule.num_microbatches = num_microbatches;
  schedule.ops.resize(static_cast<size_t>(depth));
  for (int s = 0; s < depth; ++s) {
    auto& ops = schedule.ops[static_cast<size_t>(s)];
    for (int m = 0; m < num_microbatches; ++m) {
      ops.push_back(PipeOp{PipeOpType::kForward, m});
    }
    // Backwards in reverse micro-batch order (LIFO activation stack); the
    // most recent micro-batch skips recompute — its activations are live.
    for (int m = num_microbatches - 1; m >= 0; --m) {
      if (m != num_microbatches - 1) {
        ops.push_back(PipeOp{PipeOpType::kRecompute, m});
      }
      ops.push_back(PipeOp{PipeOpType::kBackward, m});
    }
  }
  return schedule;
}

Schedule GenerateOneFOneB(int depth, int num_microbatches) {
  Schedule schedule;
  schedule.kind = ScheduleKind::kOneFOneB;
  schedule.depth = depth;
  schedule.num_microbatches = num_microbatches;
  schedule.ops.resize(static_cast<size_t>(depth));
  for (int s = 0; s < depth; ++s) {
    auto& ops = schedule.ops[static_cast<size_t>(s)];
    const bool last = s == depth - 1;
    const int warmup = std::min(depth - 1 - s, num_microbatches);
    int next_f = 0;
    int next_b = 0;
    for (; next_f < warmup; ++next_f) {
      ops.push_back(PipeOp{PipeOpType::kForward, next_f});
    }
    while (next_b < num_microbatches) {
      if (next_f < num_microbatches) {
        ops.push_back(PipeOp{PipeOpType::kForward, next_f});
        ++next_f;
      }
      if (!last) {
        ops.push_back(PipeOp{PipeOpType::kRecompute, next_b});
      }
      ops.push_back(PipeOp{PipeOpType::kBackward, next_b});
      ++next_b;
    }
  }
  return schedule;
}

// DeepSpeed-style even/odd slotting: each stage alternates a forward slot and
// a backward slot (staggered by one slot per stage). Slots whose op is not
// ready are materialised as idle ops — this reproduces the engine's fixed
// slot grid, which idles through warmup backward slots and drain forward
// slots instead of compacting them.
Schedule GenerateDeepSpeed(int depth, int num_microbatches) {
  Schedule schedule;
  schedule.kind = ScheduleKind::kDeepSpeed;
  schedule.depth = depth;
  schedule.num_microbatches = num_microbatches;
  schedule.ops.resize(static_cast<size_t>(depth));

  std::vector<int> next_f(static_cast<size_t>(depth), 0);
  std::vector<int> next_b(static_cast<size_t>(depth), 0);
  // Global slot at which each stage finished F/B of each micro-batch.
  std::vector<std::vector<int>> f_slot(static_cast<size_t>(depth),
                                       std::vector<int>(static_cast<size_t>(num_microbatches), -1));
  std::vector<std::vector<int>> b_slot(static_cast<size_t>(depth),
                                       std::vector<int>(static_cast<size_t>(num_microbatches), -1));

  auto all_done = [&] {
    for (int s = 0; s < depth; ++s) {
      if (next_b[static_cast<size_t>(s)] < num_microbatches) {
        return false;
      }
    }
    return true;
  };

  for (int slot = 0; !all_done(); ++slot) {
    VARUNA_CHECK_LT(slot, 4 * (num_microbatches + depth) + 16) << "DeepSpeed generator stuck";
    for (int s = 0; s < depth; ++s) {
      if (slot < s || next_b[static_cast<size_t>(s)] >= num_microbatches) {
        continue;  // Not started yet / already finished: no idle padding.
      }
      auto& ops = schedule.ops[static_cast<size_t>(s)];
      const bool forward_slot = (slot - s) % 2 == 0;
      const bool last = s == depth - 1;
      if (forward_slot) {
        const int m = next_f[static_cast<size_t>(s)];
        const bool available =
            m < num_microbatches && (s == 0 || f_slot[static_cast<size_t>(s) - 1][static_cast<size_t>(m)] >= 0);
        if (available) {
          ops.push_back(PipeOp{PipeOpType::kForward, m});
          // Record completion *after* the whole stage row is processed; using
          // >= 0 visibility within the same slot would let a stage consume an
          // activation produced in the same slot. Stages are processed in
          // ascending order, so guard with < slot via a deferred write:
          f_slot[static_cast<size_t>(s)][static_cast<size_t>(m)] = slot;
          ++next_f[static_cast<size_t>(s)];
        } else if (next_f[static_cast<size_t>(s)] < num_microbatches ||
                   next_b[static_cast<size_t>(s)] < num_microbatches) {
          ops.push_back(PipeOp{PipeOpType::kIdleForward, -1});
        }
      } else {
        const int m = next_b[static_cast<size_t>(s)];
        const bool ready =
            m < num_microbatches &&
            (last ? f_slot[static_cast<size_t>(s)][static_cast<size_t>(m)] >= 0 &&
                        f_slot[static_cast<size_t>(s)][static_cast<size_t>(m)] < slot
                  : b_slot[static_cast<size_t>(s) + 1][static_cast<size_t>(m)] >= 0 &&
                        b_slot[static_cast<size_t>(s) + 1][static_cast<size_t>(m)] < slot);
        if (ready) {
          if (!last) {
            ops.push_back(PipeOp{PipeOpType::kRecompute, m});
          }
          ops.push_back(PipeOp{PipeOpType::kBackward, m});
          b_slot[static_cast<size_t>(s)][static_cast<size_t>(m)] = slot;
          ++next_b[static_cast<size_t>(s)];
        } else {
          ops.push_back(PipeOp{PipeOpType::kIdleBackward, -1});
        }
      }
    }
  }
  return schedule;
}

// --- Unit-time execution of an arbitrary schedule -------------------------

struct OpTrace {
  int stage;
  PipeOp op;
  double start;
  double end;
};

// Executes the schedule with unit times, strict per-stage op order and zero
// communication latency; returns per-op start/end times.
std::vector<OpTrace> ExecuteUnits(const Schedule& schedule) {
  const int depth = schedule.depth;
  const int microbatches = schedule.num_microbatches;
  std::vector<size_t> cursor(static_cast<size_t>(depth), 0);
  std::vector<double> free_at(static_cast<size_t>(depth), 0.0);
  std::vector<std::vector<double>> f_done(static_cast<size_t>(depth),
                                          std::vector<double>(static_cast<size_t>(microbatches), -1.0));
  std::vector<std::vector<double>> b_done(static_cast<size_t>(depth),
                                          std::vector<double>(static_cast<size_t>(microbatches), -1.0));
  std::vector<OpTrace> trace;

  auto ready_time = [&](int s, const PipeOp& op) -> double {
    // Returns the earliest time the op's inputs are available, or -1 if a
    // dependency has not even been scheduled yet.
    switch (op.type) {
      case PipeOpType::kForward:
        if (s == 0) {
          return 0.0;
        }
        return f_done[static_cast<size_t>(s) - 1][static_cast<size_t>(op.microbatch)];
      case PipeOpType::kRecompute:
        // Needs the stashed input activation: available once this stage's own
        // forward of the micro-batch completed, which strict order guarantees.
        return 0.0;
      case PipeOpType::kBackward:
        if (s == depth - 1) {
          return f_done[static_cast<size_t>(s)][static_cast<size_t>(op.microbatch)];
        }
        return b_done[static_cast<size_t>(s) + 1][static_cast<size_t>(op.microbatch)];
      case PipeOpType::kIdleForward:
      case PipeOpType::kIdleBackward:
        return 0.0;
    }
    return 0.0;
  };

  auto drain_stage = [&](int s) {
    bool progressed = false;
    while (cursor[static_cast<size_t>(s)] < schedule.ops[static_cast<size_t>(s)].size()) {
      const PipeOp& op = schedule.ops[static_cast<size_t>(s)][cursor[static_cast<size_t>(s)]];
      const double ready = ready_time(s, op);
      if (ready < 0.0) {
        break;  // Dependency not yet produced; revisit after other stages run.
      }
      const double start = std::max(free_at[static_cast<size_t>(s)], ready);
      const double end = start + UnitDuration(op.type);
      free_at[static_cast<size_t>(s)] = end;
      if (op.type == PipeOpType::kForward) {
        f_done[static_cast<size_t>(s)][static_cast<size_t>(op.microbatch)] = end;
      } else if (op.type == PipeOpType::kBackward) {
        b_done[static_cast<size_t>(s)][static_cast<size_t>(op.microbatch)] = end;
      }
      trace.push_back(OpTrace{s, op, start, end});
      ++cursor[static_cast<size_t>(s)];
      progressed = true;
    }
    return progressed;
  };
  // Ascending sweep resolves forward deps, descending sweep backward chains:
  // O(1) passes instead of O(P).
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (int s = 0; s < depth; ++s) {
      progressed |= drain_stage(s);
    }
    for (int s = depth - 1; s >= 0; --s) {
      progressed |= drain_stage(s);
    }
  }
  // Every op must have executed (otherwise the schedule has a dependency cycle).
  for (int s = 0; s < depth; ++s) {
    VARUNA_CHECK_EQ(cursor[static_cast<size_t>(s)], schedule.ops[static_cast<size_t>(s)].size())
        << "schedule deadlock at stage " << s;
  }
  return trace;
}

}  // namespace

std::string ToString(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kVaruna:
      return "Varuna";
    case ScheduleKind::kGpipe:
      return "GPipe";
    case ScheduleKind::kOneFOneB:
      return "1F1B";
    case ScheduleKind::kDeepSpeed:
      return "DeepSpeed";
  }
  return "?";
}

Schedule GenerateScheduleUncached(ScheduleKind kind, int depth, int num_microbatches) {
  switch (kind) {
    case ScheduleKind::kVaruna:
      return VarunaGenerator(depth, num_microbatches).Run();
    case ScheduleKind::kGpipe:
      return GenerateGpipe(depth, num_microbatches);
    case ScheduleKind::kOneFOneB:
      return GenerateOneFOneB(depth, num_microbatches);
    case ScheduleKind::kDeepSpeed:
      return GenerateDeepSpeed(depth, num_microbatches);
  }
  VARUNA_CHECK(false) << "unknown schedule kind";
  return {};
}

Schedule GenerateSchedule(ScheduleKind kind, int depth, int num_microbatches) {
  VARUNA_CHECK_GE(depth, 1);
  VARUNA_CHECK_GE(num_microbatches, 1);
  // Generation is deterministic; the manager regenerates the same schedules
  // on every morphing decision, so memoise. (Single-threaded simulator.)
  static std::map<std::tuple<ScheduleKind, int, int>, Schedule> cache;
  const auto key = std::make_tuple(kind, depth, num_microbatches);
  const auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  Schedule schedule = GenerateScheduleUncached(kind, depth, num_microbatches);
  // varuna-verify: a generator bug must never reach the executor — validate
  // once per (kind, depth, m) before the schedule enters the cache.
  const ScheduleValidation validation = ValidateSchedule(schedule);
  VARUNA_CHECK(validation.ok()) << "generated " << ToString(kind)
                                << " schedule violates invariants:\n"
                                << validation.ToString();
  if (cache.size() > 4096) {
    cache.erase(cache.begin());  // Bounded; evict an arbitrary entry.
  }
  cache[key] = schedule;
  return schedule;
}

std::string RenderScheduleGantt(const Schedule& schedule, int width) {
  const std::vector<OpTrace> trace = ExecuteUnits(schedule);
  GanttChart chart;
  std::vector<GanttRow> rows(static_cast<size_t>(schedule.depth));
  for (int s = 0; s < schedule.depth; ++s) {
    rows[static_cast<size_t>(s)].name = "S" + std::to_string(s + 1);
  }
  for (const auto& item : trace) {
    std::string label;
    switch (item.op.type) {
      case PipeOpType::kForward:
        label = "F" + std::to_string(item.op.microbatch + 1);
        break;
      case PipeOpType::kRecompute:
        label = "R" + std::to_string(item.op.microbatch + 1);
        break;
      case PipeOpType::kBackward:
        label = "B" + std::to_string(item.op.microbatch + 1);
        break;
      case PipeOpType::kIdleForward:
      case PipeOpType::kIdleBackward:
        label = "-";
        break;
    }
    rows[static_cast<size_t>(item.stage)].bars.push_back(GanttBar{item.start, item.end, label});
  }
  for (auto& row : rows) {
    chart.AddRow(std::move(row));
  }
  return chart.Render(width);
}

double ScheduleMakespanUnits(const Schedule& schedule) {
  double makespan = 0.0;
  for (const auto& item : ExecuteUnits(schedule)) {
    makespan = std::max(makespan, item.end);
  }
  return makespan;
}

}  // namespace varuna
