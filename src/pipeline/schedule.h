// Static pipeline schedules. A Schedule is a per-stage ordered list of
// micro-batch operations; generators produce the shapes of the systems the
// paper compares (§3.2, §7.1.2):
//   * Varuna  — rule-based generation (just-in-time recompute, backward
//               priority, no last-stage recompute), Figure 4 top.
//   * GPipe   — all forwards, then reverse-order recompute+backward,
//               Figure 4 bottom.
//   * 1F1B    — PipeDream/Megatron steady-state one-forward-one-backward with
//               warmup and drain (run synchronously, as Megatron-1F1B).
//   * DeepSpeed — even/odd slotted forward/backward alternation; idle slots
//               during warmup/drain are materialised as explicit idle ops.
#ifndef SRC_PIPELINE_SCHEDULE_H_
#define SRC_PIPELINE_SCHEDULE_H_

#include <string>
#include <vector>

namespace varuna {

enum class PipeOpType {
  kForward,
  kRecompute,
  kBackward,
  // DeepSpeed slot idles: occupy the stage for one forward / one
  // recompute+backward duration without doing work.
  kIdleForward,
  kIdleBackward,
};

struct PipeOp {
  PipeOpType type = PipeOpType::kForward;
  int microbatch = -1;  // -1 for idle ops.

  bool operator==(const PipeOp&) const = default;
};

enum class ScheduleKind { kVaruna, kGpipe, kOneFOneB, kDeepSpeed };

std::string ToString(ScheduleKind kind);

struct Schedule {
  ScheduleKind kind = ScheduleKind::kVaruna;
  int depth = 0;
  int num_microbatches = 0;
  // ops[stage] is the stage's op order. Stage depth-1 is the last stage.
  std::vector<std::vector<PipeOp>> ops;

  // True when the executor may deviate from the order to stay work-conserving
  // under jitter (§3.2: Varuna only).
  bool opportunistic = false;
};

// Generates the static schedule for `kind` with `depth` stages and
// `num_microbatches` micro-batches. Requires depth >= 1, num_microbatches >= 1.
Schedule GenerateSchedule(ScheduleKind kind, int depth, int num_microbatches);

// Renders a schedule as a unit-time ASCII Gantt (Tf = Tr = 1, Tb = 2), for
// Figure 4-style output and debugging.
std::string RenderScheduleGantt(const Schedule& schedule, int width = 120);

// Makespan of the schedule in unit times (Tf = Tr = 1, Tb = 2), assuming zero
// communication latency — the metric behind "Varuna uses 1 less time unit
// compared to Gpipe" in Figure 4.
double ScheduleMakespanUnits(const Schedule& schedule);

}  // namespace varuna

#endif  // SRC_PIPELINE_SCHEDULE_H_
