#include "src/pipeline/schedule_cache.h"

#include <utility>

namespace varuna {

const Schedule& ScheduleCache::Get(ScheduleKind kind, int depth, int num_microbatches) {
  const Key key{static_cast<int>(kind), depth, num_microbatches};
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    return *it->second;
  }
  ++stats_.misses;
  // Generation runs under the lock: concurrent first requests for the same
  // shape must not both generate, and a cold sweep's shapes are all distinct
  // anyway, so contention here is a non-issue.
  auto schedule = std::make_unique<Schedule>(GenerateSchedule(kind, depth, num_microbatches));
  const Schedule& ref = *schedule;
  entries_.emplace(key, std::move(schedule));
  return ref;
}

ScheduleCacheStats ScheduleCache::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

void ScheduleCache::Clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = ScheduleCacheStats();
}

}  // namespace varuna
