#include "src/pipeline/schedule_cache.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace varuna {

uint64_t ScheduleCache::PackKey(ScheduleKind kind, int depth, int num_microbatches) {
  VARUNA_CHECK_GT(depth, 0);
  VARUNA_CHECK_GT(num_microbatches, 0);
  VARUNA_CHECK_LT(depth, 1 << 30);
  VARUNA_CHECK_LT(num_microbatches, 1 << 30);
  return (static_cast<uint64_t>(kind) << 60) |
         (static_cast<uint64_t>(static_cast<uint32_t>(depth)) << 30) |
         static_cast<uint64_t>(static_cast<uint32_t>(num_microbatches));
}

const Schedule& ScheduleCache::Get(ScheduleKind kind, int depth, int num_microbatches) {
  const uint64_t key = PackKey(kind, depth, num_microbatches);
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& entry, uint64_t probe) { return entry.key < probe; });
  if (it != entries_.end() && it->key == key) {
    ++stats_.hits;
    return *it->schedule;
  }
  ++stats_.misses;
  // Generation runs under the lock: concurrent first requests for the same
  // shape must not both generate, and a cold sweep's shapes are all distinct
  // anyway, so contention here is a non-issue. The sorted insert is O(n) but
  // miss-only; the hit path is a binary search over flat memory.
  Entry entry;
  entry.key = key;
  entry.schedule = std::make_unique<Schedule>(GenerateSchedule(kind, depth, num_microbatches));
  const Schedule& ref = *entry.schedule;
  entries_.insert(it, std::move(entry));
  return ref;
}

ScheduleCacheStats ScheduleCache::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

void ScheduleCache::Clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = ScheduleCacheStats();
}

}  // namespace varuna
