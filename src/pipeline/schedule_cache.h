// Memoized schedule generation. GenerateSchedule() builds and validates a
// schedule from scratch on every call — O(P * Nm) work plus the full
// ValidateSchedule() contract check — yet the sweep and the manager keep
// asking for the same shapes: every morph event regenerates (kVaruna, P, Nm)
// for each candidate depth, and a spot trace revisits the same cluster sizes
// for hours. The cache keys on (kind, depth, num_microbatches) — the complete
// input of GenerateSchedule — so each shape is generated and validated exactly
// once per process.
//
// The index is a flat sorted vector of packed 64-bit keys (the sweep hot path
// may not touch node-based containers — varuna_lint rule "hot-path"): lookups
// binary-search, misses insert in key order (cold path only). Entries are
// heap-allocated, so returned references survive later insertions.
//
// Thread-safe: Get() may be called concurrently from ThreadPool workers during
// a pooled sweep. Entries are never evicted, so returned references stay valid
// for the cache's lifetime (Clear() is the exception and must only be called
// while no other thread is in Get()).
#ifndef SRC_PIPELINE_SCHEDULE_CACHE_H_
#define SRC_PIPELINE_SCHEDULE_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/pipeline/schedule.h"

namespace varuna {

struct ScheduleCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

class ScheduleCache {
 public:
  // Returns the cached schedule for the shape, generating (and validating) it
  // on first use. The reference is stable until Clear().
  const Schedule& Get(ScheduleKind kind, int depth, int num_microbatches);

  ScheduleCacheStats stats() const;

  // Drops every entry (and invalidates previously returned references). Only
  // safe while no concurrent Get() is running.
  void Clear();

 private:
  struct Entry {
    uint64_t key = 0;  // PackKey(kind, depth, num_microbatches).
    std::unique_ptr<Schedule> schedule;
  };

  // depth and num_microbatches are bounded far below 2^30 (depth <= cut-point
  // count, Nm <= M_total), so the packing is collision-free.
  static uint64_t PackKey(ScheduleKind kind, int depth, int num_microbatches);

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  // Sorted ascending by key.
  ScheduleCacheStats stats_;
};

}  // namespace varuna

#endif  // SRC_PIPELINE_SCHEDULE_CACHE_H_
