// Memoized schedule generation. GenerateSchedule() builds and validates a
// schedule from scratch on every call — O(P * Nm) work plus the full
// ValidateSchedule() contract check — yet the sweep and the manager keep
// asking for the same shapes: every morph event regenerates (kVaruna, P, Nm)
// for each candidate depth, and a spot trace revisits the same cluster sizes
// for hours. The cache keys on (kind, depth, num_microbatches) — the complete
// input of GenerateSchedule — so each shape is generated and validated exactly
// once per process.
//
// Thread-safe: Get() may be called concurrently from ThreadPool workers during
// a pooled sweep. Entries are heap-allocated and never evicted, so returned
// references stay valid for the cache's lifetime (Clear() is the exception and
// must only be called while no other thread is in Get()).
#ifndef SRC_PIPELINE_SCHEDULE_CACHE_H_
#define SRC_PIPELINE_SCHEDULE_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "src/pipeline/schedule.h"

namespace varuna {

struct ScheduleCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

class ScheduleCache {
 public:
  // Returns the cached schedule for the shape, generating (and validating) it
  // on first use. The reference is stable until Clear().
  const Schedule& Get(ScheduleKind kind, int depth, int num_microbatches);

  ScheduleCacheStats stats() const;

  // Drops every entry (and invalidates previously returned references). Only
  // safe while no concurrent Get() is running.
  void Clear();

 private:
  using Key = std::tuple<int, int, int>;  // (kind, depth, num_microbatches).

  mutable std::mutex mutex_;
  std::map<Key, std::unique_ptr<Schedule>> entries_;
  ScheduleCacheStats stats_;
};

}  // namespace varuna

#endif  // SRC_PIPELINE_SCHEDULE_CACHE_H_
