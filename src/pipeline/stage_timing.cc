#include "src/pipeline/stage_timing.h"

#include "src/common/check.h"

namespace varuna {

std::vector<StageTiming> ComputeStageTimings(const ModelSections& sections,
                                             const Partition& partition, const GpuSpec& gpu,
                                             int microbatch_size) {
  VARUNA_CHECK_GE(microbatch_size, 1);
  const int depth = partition.depth();
  std::vector<StageTiming> timings(static_cast<size_t>(depth));
  for (int stage = 0; stage < depth; ++stage) {
    StageTiming& timing = timings[static_cast<size_t>(stage)];
    const int begin = partition.stage_begin[static_cast<size_t>(stage)];
    const int end = partition.stage_begin[static_cast<size_t>(stage) + 1];
    for (int section = begin; section < end; ++section) {
      // Kernel granularity: one section (~one transformer block) launches as
      // a unit, so small micro-batches run below peak efficiency.
      const double fwd_work =
          sections.fwd_flops[static_cast<size_t>(section)] * microbatch_size;
      timing.forward_s += gpu.ComputeTime(fwd_work);
      timing.backward_s += gpu.ComputeTime(2.0 * fwd_work);
    }
    timing.recompute_s = timing.forward_s;
    if (stage + 1 < depth) {
      timing.send_activation_bytes =
          partition.send_activation_bytes[static_cast<size_t>(stage)] * microbatch_size;
    }
    // fp16 gradients (2 bytes/param) are what the data-parallel ring moves.
    timing.grad_allreduce_bytes = 2.0 * partition.stage_params[static_cast<size_t>(stage)];
  }
  return timings;
}

}  // namespace varuna
