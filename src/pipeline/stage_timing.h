// Deterministic per-stage compute/communication quantities used by the DES
// executor (the "testbed"). Times come from the GPU efficiency model applied
// at cut-point-section kernel granularity; communication volumes come from
// the partition's boundary activations and stage parameter counts.
#ifndef SRC_PIPELINE_STAGE_TIMING_H_
#define SRC_PIPELINE_STAGE_TIMING_H_

#include <vector>

#include "src/cluster/gpu.h"
#include "src/model/cutpoints.h"

namespace varuna {

struct StageTiming {
  double forward_s = 0.0;    // Per micro-batch.
  double recompute_s = 0.0;  // == forward (checkpointed recompute).
  double backward_s = 0.0;   // ~2x forward.
  // Activation bytes sent to the next stage per micro-batch (0 for the last
  // stage); the matching gradient sent upstream has the same size.
  double send_activation_bytes = 0.0;
  // fp16 gradient bytes allreduced across data-parallel replicas of the stage.
  double grad_allreduce_bytes = 0.0;
};

// Computes timings for every stage of `partition` (sections described by
// `sections`) at micro-batch size `m` on `gpu`.
std::vector<StageTiming> ComputeStageTimings(const ModelSections& sections,
                                             const Partition& partition, const GpuSpec& gpu,
                                             int microbatch_size);

}  // namespace varuna

#endif  // SRC_PIPELINE_STAGE_TIMING_H_
