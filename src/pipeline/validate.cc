#include "src/pipeline/validate.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace varuna {
namespace {

const char* OpName(PipeOpType type) {
  switch (type) {
    case PipeOpType::kForward:
      return "F";
    case PipeOpType::kRecompute:
      return "R";
    case PipeOpType::kBackward:
      return "B";
    case PipeOpType::kIdleForward:
      return "idleF";
    case PipeOpType::kIdleBackward:
      return "idleB";
  }
  return "?";
}

bool IsIdle(PipeOpType type) {
  return type == PipeOpType::kIdleForward || type == PipeOpType::kIdleBackward;
}

// Accumulates violations with a uniform "stage S: ..." prefix.
class Reporter {
 public:
  explicit Reporter(ScheduleValidation* out) : out_(out) {}

  template <typename... Parts>
  void Violation(int stage, const Parts&... parts) {
    std::ostringstream message;
    message << "stage " << stage << ": ";
    (message << ... << parts);
    out_->violations.push_back(message.str());
  }

  template <typename... Parts>
  void Global(const Parts&... parts) {
    std::ostringstream message;
    (message << ... << parts);
    out_->violations.push_back(message.str());
  }

 private:
  ScheduleValidation* out_;
};

// Per-stage, per-micro-batch op positions, gathered in one pass. Position -1
// means "not seen"; -2 means "seen more than once".
struct StageIndex {
  std::vector<int> forward_at;
  std::vector<int> recompute_at;
  std::vector<int> backward_at;

  explicit StageIndex(int num_microbatches)
      : forward_at(static_cast<size_t>(num_microbatches), -1),
        recompute_at(static_cast<size_t>(num_microbatches), -1),
        backward_at(static_cast<size_t>(num_microbatches), -1) {}

  static void Record(std::vector<int>* slots, int microbatch, int position) {
    int& slot = (*slots)[static_cast<size_t>(microbatch)];
    slot = slot == -1 ? position : -2;
  }
};

// --- Universal invariants --------------------------------------------------

// Checks shape, op legality, multiset completeness and F < R < B ordering for
// one stage; returns the index for the kind-specific passes.
StageIndex CheckStageUniversal(const Schedule& schedule, int s, Reporter* report) {
  const auto& ops = schedule.ops[static_cast<size_t>(s)];
  const int microbatches = schedule.num_microbatches;
  StageIndex index(microbatches);

  int last_forward = -1;
  for (size_t i = 0; i < ops.size(); ++i) {
    const PipeOp& op = ops[i];
    const int position = static_cast<int>(i);
    if (IsIdle(op.type)) {
      if (schedule.kind != ScheduleKind::kDeepSpeed) {
        report->Violation(s, "op ", position, ": idle op in a ", ToString(schedule.kind),
                          " schedule");
      }
      if (op.microbatch != -1) {
        report->Violation(s, "op ", position, ": idle op with micro-batch ", op.microbatch);
      }
      continue;
    }
    if (op.microbatch < 0 || op.microbatch >= microbatches) {
      report->Violation(s, "op ", position, ": ", OpName(op.type), " micro-batch ",
                        op.microbatch, " out of range [0, ", microbatches, ")");
      continue;
    }
    switch (op.type) {
      case PipeOpType::kForward:
        if (op.microbatch <= last_forward) {
          report->Violation(s, "op ", position, ": F", op.microbatch,
                            " out of ascending order (previous forward was F", last_forward,
                            ")");
        }
        last_forward = std::max(last_forward, op.microbatch);
        StageIndex::Record(&index.forward_at, op.microbatch, position);
        break;
      case PipeOpType::kRecompute:
        StageIndex::Record(&index.recompute_at, op.microbatch, position);
        break;
      case PipeOpType::kBackward:
        StageIndex::Record(&index.backward_at, op.microbatch, position);
        break;
      default:
        break;
    }
  }

  for (int m = 0; m < microbatches; ++m) {
    const int f = index.forward_at[static_cast<size_t>(m)];
    const int r = index.recompute_at[static_cast<size_t>(m)];
    const int b = index.backward_at[static_cast<size_t>(m)];
    if (f == -1) {
      report->Violation(s, "micro-batch ", m, ": forward missing");
    } else if (f == -2) {
      report->Violation(s, "micro-batch ", m, ": forward duplicated");
    }
    if (b == -1) {
      report->Violation(s, "micro-batch ", m, ": backward missing");
    } else if (b == -2) {
      report->Violation(s, "micro-batch ", m, ": backward duplicated");
    }
    if (r == -2) {
      report->Violation(s, "micro-batch ", m, ": recompute duplicated");
    }
    // Ordering: F before (optional) R before B.
    if (f >= 0 && b >= 0 && f > b) {
      report->Violation(s, "micro-batch ", m, ": forward (op ", f, ") after backward (op ", b,
                        ")");
    }
    if (r >= 0) {
      if (f >= 0 && f > r) {
        report->Violation(s, "micro-batch ", m, ": recompute (op ", r, ") before forward (op ",
                          f, ")");
      }
      if (b >= 0 && r > b) {
        report->Violation(s, "micro-batch ", m, ": recompute (op ", r, ") after backward (op ",
                          b, ")");
      }
    }
  }
  return index;
}

// --- Kind-specific invariants ----------------------------------------------

// A recompute must sit immediately before its own backward (Varuna rule 2;
// also how GPipe/1F1B/DeepSpeed emit their LIFO / steady-state pairs).
void CheckRecomputeAdjacent(const Schedule& schedule, int s, Reporter* report) {
  const auto& ops = schedule.ops[static_cast<size_t>(s)];
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].type != PipeOpType::kRecompute) {
      continue;
    }
    if (i + 1 >= ops.size() || ops[i + 1].type != PipeOpType::kBackward ||
        ops[i + 1].microbatch != ops[i].microbatch) {
      report->Violation(s, "op ", i, ": R", ops[i].microbatch,
                        " not immediately followed by B", ops[i].microbatch);
    }
  }
}

void CheckNoRecompute(const Schedule& schedule, int s, const char* why, Reporter* report) {
  for (size_t i = 0; i < schedule.ops[static_cast<size_t>(s)].size(); ++i) {
    const PipeOp& op = schedule.ops[static_cast<size_t>(s)][i];
    if (op.type == PipeOpType::kRecompute) {
      report->Violation(s, "op ", i, ": R", op.microbatch, " forbidden (", why, ")");
    }
  }
}

void CheckVaruna(const Schedule& schedule, Reporter* report) {
  const int last = schedule.depth - 1;
  // Last stage: no recompute (activations are live — §3.2), and strict
  // F(m),B(m) alternation: the loss gradient is local, so each forward's
  // backward runs immediately.
  CheckNoRecompute(schedule, last, "Varuna last stage never recomputes", report);
  const auto& last_ops = schedule.ops[static_cast<size_t>(last)];
  const size_t expected = 2 * static_cast<size_t>(schedule.num_microbatches);
  if (last_ops.size() != expected) {
    report->Violation(last, "expected ", expected, " ops (F,B alternation), found ",
                      last_ops.size());
  } else {
    for (int m = 0; m < schedule.num_microbatches; ++m) {
      const PipeOp want_f{PipeOpType::kForward, m};
      const PipeOp want_b{PipeOpType::kBackward, m};
      if (!(last_ops[static_cast<size_t>(2 * m)] == want_f) ||
          !(last_ops[static_cast<size_t>(2 * m) + 1] == want_b)) {
        report->Violation(last, "ops ", 2 * m, "-", 2 * m + 1, ": expected F", m, ",B", m,
                          " alternation");
        break;
      }
    }
  }
  // Interior stages: every micro-batch is recomputed, R immediately before B.
  for (int s = 0; s < last; ++s) {
    CheckRecomputeAdjacent(schedule, s, report);
    const auto& ops = schedule.ops[static_cast<size_t>(s)];
    std::vector<bool> recomputed(static_cast<size_t>(schedule.num_microbatches), false);
    for (const PipeOp& op : ops) {
      if (op.type == PipeOpType::kRecompute && op.microbatch >= 0 &&
          op.microbatch < schedule.num_microbatches) {
        recomputed[static_cast<size_t>(op.microbatch)] = true;
      }
    }
    for (int m = 0; m < schedule.num_microbatches; ++m) {
      if (!recomputed[static_cast<size_t>(m)]) {
        report->Violation(s, "micro-batch ", m, ": interior stage must recompute before its backward");
      }
    }
  }
}

void CheckGpipe(const Schedule& schedule, Reporter* report) {
  const int newest = schedule.num_microbatches - 1;
  for (int s = 0; s < schedule.depth; ++s) {
    const auto& ops = schedule.ops[static_cast<size_t>(s)];
    // Phase split: all forwards, then reverse-order recompute+backward.
    bool backward_phase = false;
    int previous_backward = schedule.num_microbatches;
    for (size_t i = 0; i < ops.size(); ++i) {
      const PipeOp& op = ops[i];
      if (op.type == PipeOpType::kForward) {
        if (backward_phase) {
          report->Violation(s, "op ", i, ": F", op.microbatch,
                            " after backward work began (GPipe runs all forwards first)");
        }
      } else {
        backward_phase = true;
      }
      if (op.type == PipeOpType::kBackward) {
        if (op.microbatch >= previous_backward) {
          report->Violation(s, "op ", i, ": B", op.microbatch,
                            " out of LIFO order (previous backward was B", previous_backward,
                            ")");
        }
        previous_backward = op.microbatch;
      }
      if (op.type == PipeOpType::kRecompute && op.microbatch == newest) {
        report->Violation(s, "op ", i, ": R", op.microbatch,
                          " — the most recent micro-batch's activations are still live");
      }
    }
    // All older micro-batches left the activation stack and must recompute.
    CheckRecomputeAdjacent(schedule, s, report);
    std::vector<bool> recomputed(static_cast<size_t>(schedule.num_microbatches), false);
    for (const PipeOp& op : ops) {
      if (op.type == PipeOpType::kRecompute && op.microbatch >= 0 &&
          op.microbatch < schedule.num_microbatches) {
        recomputed[static_cast<size_t>(op.microbatch)] = true;
      }
    }
    for (int m = 0; m < newest; ++m) {
      if (!recomputed[static_cast<size_t>(m)]) {
        report->Violation(s, "micro-batch ", m, ": GPipe must recompute evicted activations");
      }
    }
  }
}

void CheckOneFOneB(const Schedule& schedule, Reporter* report) {
  const int last = schedule.depth - 1;
  CheckNoRecompute(schedule, last, "1F1B last stage never recomputes", report);
  for (int s = 0; s < schedule.depth; ++s) {
    const auto& ops = schedule.ops[static_cast<size_t>(s)];
    // Warmup: min(depth - s, m) leading forwards (P-1-s pipeline-fill + the
    // first steady-state forward).
    const int expected_warmup = std::min(schedule.depth - s, schedule.num_microbatches);
    int warmup = 0;
    while (warmup < static_cast<int>(ops.size()) &&
           ops[static_cast<size_t>(warmup)].type == PipeOpType::kForward) {
      ++warmup;
    }
    if (warmup != expected_warmup) {
      report->Violation(s, "warmup of ", warmup, " leading forwards, expected ",
                        expected_warmup);
    }
    // Backwards drain in ascending (FIFO) order.
    int previous_backward = -1;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].type != PipeOpType::kBackward) {
        continue;
      }
      if (ops[i].microbatch <= previous_backward) {
        report->Violation(s, "op ", i, ": B", ops[i].microbatch,
                          " out of ascending order (previous backward was B", previous_backward,
                          ")");
      }
      previous_backward = ops[i].microbatch;
    }
    if (s != last) {
      CheckRecomputeAdjacent(schedule, s, report);
    }
  }
}

void CheckDeepSpeed(const Schedule& schedule, Reporter* report) {
  const int last = schedule.depth - 1;
  CheckNoRecompute(schedule, last, "DeepSpeed last stage never recomputes", report);
  for (int s = 0; s < schedule.depth; ++s) {
    const auto& ops = schedule.ops[static_cast<size_t>(s)];
    // Slot parity: the op list decomposes into strictly alternating
    // forward-slots and backward-slots, starting with a forward slot (the
    // engine's fixed grid staggers stage s by s slots but always begins on a
    // forward slot).
    bool expect_forward_slot = true;
    size_t i = 0;
    while (i < ops.size()) {
      const PipeOp& op = ops[i];
      if (expect_forward_slot) {
        if (op.type != PipeOpType::kForward && op.type != PipeOpType::kIdleForward) {
          report->Violation(s, "op ", i, ": ", OpName(op.type), " in a forward slot");
          break;
        }
        ++i;
      } else {
        if (op.type == PipeOpType::kIdleBackward) {
          ++i;
        } else if (op.type == PipeOpType::kRecompute) {
          // CheckRecomputeAdjacent reports malformed pairs; consume both.
          if (i + 1 < ops.size() && ops[i + 1].type == PipeOpType::kBackward) {
            i += 2;
          } else {
            break;
          }
        } else if (op.type == PipeOpType::kBackward) {
          if (s != last) {
            report->Violation(s, "op ", i, ": B", op.microbatch,
                              " without its recompute in a backward slot");
          }
          ++i;
        } else {
          report->Violation(s, "op ", i, ": ", OpName(op.type), " in a backward slot");
          break;
        }
      }
      expect_forward_slot = !expect_forward_slot;
    }
    CheckRecomputeAdjacent(schedule, s, report);
  }
}

}  // namespace

std::string ScheduleValidation::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) {
      out << "\n";
    }
    out << violations[i];
  }
  return out.str();
}

ScheduleValidation ValidateSchedule(const Schedule& schedule) {
  ScheduleValidation result;
  Reporter report(&result);

  if (schedule.depth < 1) {
    report.Global("depth ", schedule.depth, " < 1");
    return result;
  }
  if (schedule.num_microbatches < 1) {
    report.Global("num_microbatches ", schedule.num_microbatches, " < 1");
    return result;
  }
  if (schedule.ops.size() != static_cast<size_t>(schedule.depth)) {
    report.Global("ops has ", schedule.ops.size(), " stages, depth is ", schedule.depth);
    return result;
  }

  for (int s = 0; s < schedule.depth; ++s) {
    CheckStageUniversal(schedule, s, &report);
  }
  switch (schedule.kind) {
    case ScheduleKind::kVaruna:
      CheckVaruna(schedule, &report);
      break;
    case ScheduleKind::kGpipe:
      CheckGpipe(schedule, &report);
      break;
    case ScheduleKind::kOneFOneB:
      CheckOneFOneB(schedule, &report);
      break;
    case ScheduleKind::kDeepSpeed:
      CheckDeepSpeed(schedule, &report);
      break;
  }
  return result;
}

}  // namespace varuna
