// Runtime invariant validation for pipeline schedules (varuna-verify).
//
// Every generated Schedule is checked against the structural contract of its
// ScheduleKind before it is handed to the executor: the paper's Figure-4
// semantics (forward before recompute before backward, last-stage
// no-recompute, GPipe's LIFO drain, DeepSpeed's even/odd slot grid) are only
// as trustworthy as the generators, and the generators are event-driven code
// that is easy to break subtly. ValidateSchedule() returns a report listing
// every violation instead of aborting, so tests can assert that corrupted
// schedules are *rejected*; GenerateSchedule() CHECK-fails on a non-ok report.
#ifndef SRC_PIPELINE_VALIDATE_H_
#define SRC_PIPELINE_VALIDATE_H_

#include <string>
#include <vector>

#include "src/pipeline/schedule.h"

namespace varuna {

struct ScheduleValidation {
  // Human-readable descriptions of every invariant violation found. Empty
  // means the schedule satisfies its kind's full contract.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }

  // Violations joined with newlines (empty string when ok).
  std::string ToString() const;
};

// Checks the universal synchronous-pipeline invariants plus the kind-specific
// contract:
//   * shape: ops has exactly `depth` stages, depth/num_microbatches >= 1;
//   * per-stage op multiset completeness: every micro-batch runs exactly one
//     forward and one backward per stage, and at most one recompute;
//   * order: each micro-batch's forward precedes its recompute precedes its
//     backward; forwards are emitted in ascending micro-batch order;
//   * idle ops only appear in DeepSpeed schedules, and real ops carry a
//     micro-batch index in [0, num_microbatches);
//   * kVaruna — last stage never recomputes and strictly alternates
//     F(m),B(m); interior stages recompute every micro-batch with R(m)
//     immediately followed by B(m) (rule 2);
//   * kGpipe — all forwards precede all backward work, backwards drain in
//     LIFO (descending) order, and only the most recent micro-batch skips
//     recompute (its activations are still live) on every stage;
//   * kOneFOneB — min(depth - stage, m) leading warmup forwards, backwards in
//     ascending order, last stage never recomputes, interior stages pair
//     R(m) immediately before B(m);
//   * kDeepSpeed — even/odd slot parity: each stage's op list decomposes into
//     strictly alternating forward-slots (F or idle-F) and backward-slots
//     (R+B pair, bare B on the last stage, or idle-B), starting with a
//     forward slot; last stage never recomputes.
ScheduleValidation ValidateSchedule(const Schedule& schedule);

}  // namespace varuna

#endif  // SRC_PIPELINE_VALIDATE_H_
