// Small-buffer move-only callback for the per-event hot path. std::function
// heap-allocates any capture larger than its ~16-byte SSO, which made every
// scheduled pipeline op an allocation; the executor's lambdas capture up to
// four pointers/ints, so a 64-byte inline buffer keeps steady-state
// scheduling allocation-free. Callables that do not fit fall back to the heap
// transparently (the manager's bigger closures), so correctness never depends
// on the capture size. Move-only by design: events are scheduled exactly once
// and the engine moves the callback out of its pool slot before invoking it.
#ifndef SRC_SIM_CALLBACK_H_
#define SRC_SIM_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace varuna {

class SmallCallback {
 public:
  // Fits the executor's StartOp/FinishOp lambdas (<= 32 bytes) with headroom
  // for the manager's four-word closures; measured via heap_fallbacks() in
  // SimEngine so regressions surface in tests.
  static constexpr size_t kInlineBytes = 64;

  SmallCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && std::is_trivially_copyable_v<Fn>) {
      // The hot-path flavour (every executor lambda captures only pointers
      // and scalars): moves are a flat 64-byte copy, destruction is free.
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      vtable_ = &kTrivialVtable<Fn>;
    } else if constexpr (sizeof(Fn) <= kInlineBytes &&
                         alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      vtable_ = &kInlineVtable<Fn>;
    } else {
      heap_ = new Fn(std::forward<F>(fn));
      vtable_ = &kHeapVtable<Fn>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept { MoveFrom(&other); }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(&other);
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { Destroy(); }

  void operator()() { vtable_->invoke(Target()); }

  explicit operator bool() const { return vtable_ != nullptr; }

  // True when the callable lives in the inline buffer (no heap allocation).
  bool is_inline() const { return vtable_ != nullptr && vtable_->heap_target == nullptr; }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Moves the callable out of `src` storage into `dst` storage. Null means
    // memcpy suffices (trivially copyable inline flavour) or the payload is a
    // heap pointer (heap flavour).
    void (*relocate)(SmallCallback* dst, SmallCallback* src);
    void (*destroy)(void*);  // Null = trivially destructible or heap flavour.
    // Non-null marks the heap flavour; doubles as the heap deleter.
    void (*heap_target)(void*);
  };

  template <typename Fn>
  static void InvokeFn(void* target) {
    (*static_cast<Fn*>(target))();
  }
  template <typename Fn>
  static void DestroyInline(void* target) {
    static_cast<Fn*>(target)->~Fn();
  }
  template <typename Fn>
  static void RelocateInline(SmallCallback* dst, SmallCallback* src) {
    Fn* from = static_cast<Fn*>(static_cast<void*>(src->storage_));
    ::new (static_cast<void*>(dst->storage_)) Fn(std::move(*from));
    from->~Fn();
  }
  template <typename Fn>
  static void DeleteHeap(void* target) {
    delete static_cast<Fn*>(target);
  }

  template <typename Fn>
  static constexpr VTable kTrivialVtable{&InvokeFn<Fn>, nullptr, nullptr, nullptr};
  template <typename Fn>
  static constexpr VTable kInlineVtable{&InvokeFn<Fn>, &RelocateInline<Fn>,
                                        &DestroyInline<Fn>, nullptr};
  template <typename Fn>
  static constexpr VTable kHeapVtable{&InvokeFn<Fn>, nullptr, nullptr,
                                      &DeleteHeap<Fn>};

  void* Target() { return vtable_->heap_target != nullptr ? heap_ : storage_; }

  void MoveFrom(SmallCallback* other) {
    vtable_ = other->vtable_;
    if (vtable_ == nullptr) {
      return;
    }
    if (vtable_->heap_target != nullptr) {
      heap_ = other->heap_;
    } else if (vtable_->relocate != nullptr) {
      vtable_->relocate(this, other);
    } else {
      std::memcpy(storage_, other->storage_, kInlineBytes);
    }
    other->vtable_ = nullptr;
  }

  void Destroy() {
    if (vtable_ == nullptr) {
      return;
    }
    if (vtable_->heap_target != nullptr) {
      vtable_->heap_target(heap_);
    } else if (vtable_->destroy != nullptr) {
      vtable_->destroy(storage_);
    }
    vtable_ = nullptr;
  }

  union {
    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    void* heap_;
  };
  const VTable* vtable_ = nullptr;
};

}  // namespace varuna

#endif  // SRC_SIM_CALLBACK_H_
