#include "src/sim/engine.h"

#include <utility>

#include "src/common/check.h"

namespace varuna {
namespace {

constexpr uint32_t kSlotMask32 = 0xffffffffu;

uint32_t IdSlot(SimEngine::EventId id) { return static_cast<uint32_t>(id & kSlotMask32); }
uint32_t IdGeneration(SimEngine::EventId id) { return static_cast<uint32_t>(id >> 32); }

}  // namespace

void SimEngine::HeapPush(const HeapEntry& entry) {
  // 4-ary sift-up: child i has parent (i - 1) / 4. Bubbles a hole instead of
  // swapping, so each level moves one 24-byte entry, not three.
  size_t i = heap_.size();
  heap_.push_back(entry);
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (!EarlierThan(entry, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void SimEngine::HeapPopTop() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == 0) {
    return;
  }
  // 4-ary sift-down of the hole at the root: children of i are 4i+1 .. 4i+4.
  size_t i = 0;
  for (;;) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) {
      break;
    }
    size_t best = first_child;
    const size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (EarlierThan(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!EarlierThan(heap_[best], last)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void SimEngine::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  ++s.generation;  // Invalidates every outstanding id/heap entry for the slot.
  free_slots_.push_back(slot);
  --live_count_;
}

SimEngine::EventId SimEngine::Schedule(SimTime delay, Callback callback) {
  VARUNA_CHECK_GE(delay, 0.0);
  return ScheduleAt(now_ + delay, std::move(callback));
}

SimEngine::EventId SimEngine::ScheduleAt(SimTime when, Callback callback) {
  VARUNA_CHECK_GE(when, now_);
  VARUNA_CHECK(static_cast<bool>(callback));
  if (!callback.is_inline()) {
    ++callback_heap_fallbacks_;
  }
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.callback = std::move(callback);
  s.live = true;
  ++live_count_;
  const uint64_t seq = next_seq_++;
  HeapPush(HeapEntry{when, seq, slot, s.generation});
  return (static_cast<EventId>(s.generation) << 32) | slot;
}

void SimEngine::Cancel(EventId id) {
  const uint32_t slot = IdSlot(id);
  if (slot >= slots_.size()) {
    return;  // Never-issued id.
  }
  Slot& s = slots_[slot];
  if (!s.live || s.generation != IdGeneration(id)) {
    return;  // Already fired/cancelled, or the slot was reused since.
  }
  s.callback = Callback();  // Release the capture now, not when the tombstone pops.
  FreeSlot(slot);
  // The heap entry stays behind as a tombstone; its generation no longer
  // matches the slot, so Step() drops it in O(1) when it reaches the top.
}

bool SimEngine::Step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    HeapPopTop();
    Slot& slot = slots_[top.slot];
    if (!slot.live || slot.generation != top.generation) {
      continue;  // Cancelled while queued; tombstone purged here.
    }
    // Self-check: simulated time never goes backwards. ScheduleAt() enforces
    // when >= now() at insertion, so a violation here means heap corruption.
    VARUNA_CHECK_GE(top.when, now_) << "SimEngine time went backwards";
    now_ = top.when;
    ++events_processed_;
    // Move the callback out before invoking: the callback may Schedule() and
    // grow/reuse the pool, so the slot must be released first.
    Callback callback = std::move(slot.callback);
    FreeSlot(top.slot);
    callback();
    return true;
  }
  return false;
}

void SimEngine::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void SimEngine::RunUntil(SimTime until) {
  VARUNA_CHECK_GE(until, now_);
  stopped_ = false;
  // The gate reads the earliest *entry* (tombstones included) exactly like the
  // historical lazy-cancel queue did, so traces replay bit-identically.
  while (!stopped_ && !heap_.empty() && heap_[0].when <= until) {
    Step();
  }
  if (!stopped_) {
    now_ = until;
  }
}

void SimEngine::Reset() {
  heap_.clear();
  slots_.clear();  // Keeps capacity; per-slot inline callbacks free with them.
  free_slots_.clear();
  now_ = 0.0;
  next_seq_ = 1;
  events_processed_ = 0;
  callback_heap_fallbacks_ = 0;
  live_count_ = 0;
  stopped_ = false;
}

void SimEngine::CheckInvariants() const {
  // Tombstone hygiene: live events can never exceed queued entries (the
  // difference is exactly the cancelled tombstones awaiting their pop).
  VARUNA_CHECK_LE(live_count_, heap_.size())
      << "live events without queued entries (pool/heap drift)";
  // The queue only holds future (or present) entries.
  if (!heap_.empty()) {
    VARUNA_CHECK_GE(heap_[0].when, now_) << "queued event in the past";
  }
  // Heap order: every child sorts at-or-after its parent under (when, seq).
  size_t backed = 0;
  for (size_t i = 0; i < heap_.size(); ++i) {
    if (i > 0) {
      const size_t parent = (i - 1) / 4;
      VARUNA_CHECK(!EarlierThan(heap_[i], heap_[parent]))
          << "4-ary heap order violated at index " << i;
    }
    const HeapEntry& entry = heap_[i];
    VARUNA_CHECK_LT(entry.slot, slots_.size()) << "heap entry points outside the pool";
    const Slot& slot = slots_[entry.slot];
    if (slot.live && slot.generation == entry.generation) {
      ++backed;  // Current-generation entry backing a live slot.
    }
  }
  // Every live slot is backed by exactly one current-generation heap entry
  // (generations are bumped on free, so two matching entries cannot coexist).
  VARUNA_CHECK_EQ(backed, live_count_) << "live slot without a heap entry";
  // The free list and the live slots partition the pool.
  size_t live_slots = 0;
  for (const Slot& slot : slots_) {
    live_slots += slot.live ? 1 : 0;
  }
  VARUNA_CHECK_EQ(live_slots, live_count_) << "live slot count drifted";
  VARUNA_CHECK_EQ(live_slots + free_slots_.size(), slots_.size())
      << "pool slots neither live nor free";
}

}  // namespace varuna
