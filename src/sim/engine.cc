#include "src/sim/engine.h"

#include <limits>
#include <utility>

#include "src/common/check.h"

namespace varuna {
namespace {

constexpr uint32_t kSlotMask32 = 0xffffffffu;

uint32_t IdSlot(SimEngine::EventId id) { return static_cast<uint32_t>(id & kSlotMask32); }
uint32_t IdGeneration(SimEngine::EventId id) { return static_cast<uint32_t>(id >> 32); }

}  // namespace

void SimEngine::HeapPush(SimTime when, const HeapMeta& meta) {
  // 4-ary sift-up: child i has parent (i - 1) / 4. Bubbles a hole instead of
  // swapping, so each level moves one key + one metadata entry.
  size_t i = heap_when_.size();
  heap_when_.push_back(when);
  heap_meta_.push_back(meta);
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    const bool entry_earlier =
        when < heap_when_[parent] ||
        (when == heap_when_[parent] && meta.seq < heap_meta_[parent].seq);
    if (!entry_earlier) {
      break;
    }
    heap_when_[i] = heap_when_[parent];
    heap_meta_[i] = heap_meta_[parent];
    i = parent;
  }
  heap_when_[i] = when;
  heap_meta_[i] = meta;
}

void SimEngine::HeapPopTop() {
  const SimTime last_when = heap_when_.back();
  const HeapMeta last_meta = heap_meta_.back();
  heap_when_.pop_back();
  heap_meta_.pop_back();
  const size_t n = heap_when_.size();
  if (n == 0) {
    return;
  }
  // 4-ary sift-down of the hole at the root: children of i are 4i+1 .. 4i+4.
  // The four children's `when` keys are 32 contiguous bytes, so the common
  // (tie-free) comparison round reads a single cache line.
  size_t i = 0;
  for (;;) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) {
      break;
    }
    size_t best = first_child;
    const size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (EarlierThan(c, best)) {
        best = c;
      }
    }
    const bool best_earlier =
        heap_when_[best] < last_when ||
        (heap_when_[best] == last_when && heap_meta_[best].seq < last_meta.seq);
    if (!best_earlier) {
      break;
    }
    heap_when_[i] = heap_when_[best];
    heap_meta_[i] = heap_meta_[best];
    i = best;
  }
  heap_when_[i] = last_when;
  heap_meta_[i] = last_meta;
}

void SimEngine::PurgeTombstonesAtTop() {
  while (!heap_when_.empty()) {
    const HeapMeta& top = heap_meta_[0];
    const Slot& slot = slots_[top.slot];
    if (slot.live && slot.generation == top.generation) {
      return;
    }
    HeapPopTop();
  }
}

void SimEngine::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  ++s.generation;  // Invalidates every outstanding id/heap entry for the slot.
  free_slots_.push_back(slot);
  --live_count_;
}

SimEngine::EventId SimEngine::Schedule(SimTime delay, Callback callback) {
  VARUNA_CHECK_GE(delay, 0.0);
  return ScheduleAt(now_ + delay, std::move(callback));
}

SimEngine::EventId SimEngine::ScheduleAt(SimTime when, Callback callback) {
  return ScheduleInternal(when, next_seq_++, 0, std::move(callback));
}

SimEngine::EventId SimEngine::ScheduleAtKeyed(SimTime when, uint64_t key, uint32_t tag,
                                              Callback callback) {
  return ScheduleInternal(when, key, tag, std::move(callback));
}

SimEngine::EventId SimEngine::ScheduleInternal(SimTime when, uint64_t seq, uint32_t tag,
                                               Callback callback) {
  VARUNA_CHECK_GE(when, now_);
  VARUNA_CHECK(static_cast<bool>(callback));
  if (!callback.is_inline()) {
    ++callback_heap_fallbacks_;
  }
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.callback = std::move(callback);
  s.tag = tag;
  s.live = true;
  ++live_count_;
  HeapPush(when, HeapMeta{seq, slot, s.generation});
  return (static_cast<EventId>(s.generation) << 32) | slot;
}

void SimEngine::Cancel(EventId id) {
  const uint32_t slot = IdSlot(id);
  if (slot >= slots_.size()) {
    return;  // Never-issued id.
  }
  Slot& s = slots_[slot];
  if (!s.live || s.generation != IdGeneration(id)) {
    return;  // Already fired/cancelled, or the slot was reused since.
  }
  s.callback = Callback();  // Release the capture now, not when the tombstone pops.
  FreeSlot(slot);
  // The heap entry stays behind as a tombstone; its generation no longer
  // matches the slot, so Step() drops it in O(1) when it reaches the top.
}

bool SimEngine::Step() {
  while (!heap_when_.empty()) {
    const SimTime when = heap_when_[0];
    const HeapMeta top = heap_meta_[0];
    HeapPopTop();
    Slot& slot = slots_[top.slot];
    if (!slot.live || slot.generation != top.generation) {
      continue;  // Cancelled while queued; tombstone purged here.
    }
    // Self-check: simulated time never goes backwards. ScheduleAt() enforces
    // when >= now() at insertion, so a violation here means heap corruption.
    VARUNA_CHECK_GE(when, now_) << "SimEngine time went backwards";
    now_ = when;
    ++events_processed_;
    current_tag_ = slot.tag;
    // Move the callback out before invoking: the callback may Schedule() and
    // grow/reuse the pool, so the slot must be released first.
    Callback callback = std::move(slot.callback);
    FreeSlot(top.slot);
    callback();
    return true;
  }
  return false;
}

void SimEngine::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void SimEngine::RunUntil(SimTime until) {
  VARUNA_CHECK_GE(until, now_);
  stopped_ = false;
  // The gate reads the earliest *entry* (tombstones included) exactly like the
  // historical lazy-cancel queue did, so traces replay bit-identically.
  while (!stopped_ && !heap_when_.empty() && heap_when_[0] <= until) {
    Step();
  }
  if (!stopped_) {
    now_ = until;
  }
}

SimTime SimEngine::NextLiveWhen() {
  PurgeTombstonesAtTop();
  return heap_when_.empty() ? std::numeric_limits<SimTime>::infinity() : heap_when_[0];
}

void SimEngine::DrainTo(SimTime bound, bool inclusive) {
  stopped_ = false;
  for (;;) {
    PurgeTombstonesAtTop();
    if (heap_when_.empty()) {
      return;
    }
    const SimTime when = heap_when_[0];
    if (inclusive ? when > bound : when >= bound) {
      return;
    }
    Step();
    if (stopped_) {
      return;
    }
  }
}

void SimEngine::AdvanceTo(SimTime when) {
  VARUNA_CHECK_GE(when, now_);
  // No live event may be skipped over: the earliest live event (if any) must
  // sit at or after the new time.
  VARUNA_CHECK_GE(NextLiveWhen(), when) << "AdvanceTo would skip a live event";
  now_ = when;
}

void SimEngine::Reset() {
  heap_when_.clear();
  heap_meta_.clear();
  slots_.clear();  // Keeps capacity; per-slot inline callbacks free with them.
  free_slots_.clear();
  now_ = 0.0;
  next_seq_ = 1;
  events_processed_ = 0;
  callback_heap_fallbacks_ = 0;
  live_count_ = 0;
  current_tag_ = 0;
  stopped_ = false;
}

void SimEngine::CheckInvariants() const {
  // Tombstone hygiene: live events can never exceed queued entries (the
  // difference is exactly the cancelled tombstones awaiting their pop).
  VARUNA_CHECK_LE(live_count_, heap_when_.size())
      << "live events without queued entries (pool/heap drift)";
  VARUNA_CHECK_EQ(heap_when_.size(), heap_meta_.size()) << "SoA heap arrays drifted";
  // The queue only holds future (or present) entries.
  if (!heap_when_.empty()) {
    VARUNA_CHECK_GE(heap_when_[0], now_) << "queued event in the past";
  }
  // Heap order: every child sorts at-or-after its parent under (when, seq).
  size_t backed = 0;
  for (size_t i = 0; i < heap_when_.size(); ++i) {
    if (i > 0) {
      const size_t parent = (i - 1) / 4;
      VARUNA_CHECK(!EarlierThan(i, parent)) << "4-ary heap order violated at index " << i;
    }
    const HeapMeta& entry = heap_meta_[i];
    VARUNA_CHECK_LT(entry.slot, slots_.size()) << "heap entry points outside the pool";
    const Slot& slot = slots_[entry.slot];
    if (slot.live && slot.generation == entry.generation) {
      ++backed;  // Current-generation entry backing a live slot.
    }
  }
  // Every live slot is backed by exactly one current-generation heap entry
  // (generations are bumped on free, so two matching entries cannot coexist).
  VARUNA_CHECK_EQ(backed, live_count_) << "live slot without a heap entry";
  // The free list and the live slots partition the pool.
  size_t live_slots = 0;
  for (const Slot& slot : slots_) {
    live_slots += slot.live ? 1 : 0;
  }
  VARUNA_CHECK_EQ(live_slots, live_count_) << "live slot count drifted";
  VARUNA_CHECK_EQ(live_slots + free_slots_.size(), slots_.size())
      << "pool slots neither live nor free";
}

}  // namespace varuna
