#include "src/sim/engine.h"

#include <algorithm>

#include "src/common/check.h"

namespace varuna {

SimEngine::EventId SimEngine::Schedule(SimTime delay, Callback callback) {
  VARUNA_CHECK_GE(delay, 0.0);
  return ScheduleAt(now_ + delay, std::move(callback));
}

SimEngine::EventId SimEngine::ScheduleAt(SimTime when, Callback callback) {
  VARUNA_CHECK_GE(when, now_);
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(callback)});
  return id;
}

void SimEngine::Cancel(EventId id) { cancelled_.push_back(id); }

bool SimEngine::Step() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    const auto it = std::find(cancelled_.begin(), cancelled_.end(), event.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = event.when;
    ++events_processed_;
    event.callback();
    return true;
  }
  return false;
}

void SimEngine::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void SimEngine::RunUntil(SimTime until) {
  VARUNA_CHECK_GE(until, now_);
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().when <= until) {
    Step();
  }
  if (!stopped_) {
    now_ = until;
  }
}

}  // namespace varuna
