#include "src/sim/engine.h"

#include "src/common/check.h"

namespace varuna {

SimEngine::EventId SimEngine::Schedule(SimTime delay, Callback callback) {
  VARUNA_CHECK_GE(delay, 0.0);
  return ScheduleAt(now_ + delay, std::move(callback));
}

SimEngine::EventId SimEngine::ScheduleAt(SimTime when, Callback callback) {
  VARUNA_CHECK_GE(when, now_);
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(callback)});
  live_.insert(id);
  return id;
}

void SimEngine::Cancel(EventId id) {
  // Erase from the live set only: the queue entry (if any) is dropped lazily
  // when it reaches the front. Already-fired ids are no longer in the set, so
  // a late Cancel leaves nothing behind.
  live_.erase(id);
}

bool SimEngine::Step() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    if (live_.erase(event.id) == 0) {
      continue;  // Cancelled while queued; purged here on fire.
    }
    // Self-check: simulated time never goes backwards. ScheduleAt() enforces
    // when >= now() at insertion, so a violation here means heap corruption.
    VARUNA_CHECK_GE(event.when, now_) << "SimEngine time went backwards";
    now_ = event.when;
    ++events_processed_;
    event.callback();
    return true;
  }
  return false;
}

void SimEngine::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void SimEngine::RunUntil(SimTime until) {
  VARUNA_CHECK_GE(until, now_);
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().when <= until) {
    Step();
  }
  if (!stopped_) {
    now_ = until;
  }
}

void SimEngine::CheckInvariants() const {
  // Cancelled-set hygiene: every live id is backed by a queued event, so the
  // live set can never exceed the queue (a stale-id leak shows up here).
  VARUNA_CHECK_LE(live_.size(), queue_.size())
      << "live ids without queued events (stale-id leak)";
  // The queue only holds future (or present) events.
  if (!queue_.empty()) {
    VARUNA_CHECK_GE(queue_.top().when, now_) << "queued event in the past";
  }
}

}  // namespace varuna
