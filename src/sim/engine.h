// Deterministic discrete-event simulation kernel. Every distributed component
// in Varuna's testbed (pipeline stages, network transfers, the manager, the
// spot market) runs as callbacks scheduled on this engine.
//
// Determinism: events at equal timestamps fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so a fixed RNG seed
// yields a bit-identical execution.
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace varuna {

using SimTime = double;  // Seconds since simulation start.

class SimEngine {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  // Schedules `callback` to run `delay` seconds from now. Requires delay >= 0.
  EventId Schedule(SimTime delay, Callback callback);

  // Schedules `callback` at absolute time `when`. Requires when >= now().
  EventId ScheduleAt(SimTime when, Callback callback);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op (the manager cancels heartbeat timeouts that may have just fired).
  void Cancel(EventId id);

  // Runs events until the queue is empty or Stop() is called.
  void Run();

  // Runs events with timestamp <= `until`, then sets now() == until.
  void RunUntil(SimTime until);

  // Stops the current Run()/RunUntil() after the in-flight callback returns.
  void Stop() { stopped_ = true; }

  SimTime now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime when;
    EventId id;  // Also the tie-breaker: lower id fires first.
    Callback callback;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;  // Min-heap on time.
      }
      return a.id > b.id;
    }
  };

  // Pops and runs the next event. Returns false if the queue is empty.
  bool Step();

  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::vector<EventId> cancelled_;  // Sorted lazily; usually tiny.
  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  uint64_t events_processed_ = 0;
  bool stopped_ = false;
};

}  // namespace varuna

#endif  // SRC_SIM_ENGINE_H_
