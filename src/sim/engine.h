// Deterministic discrete-event simulation kernel. Every distributed component
// in Varuna's testbed (pipeline stages, network transfers, the manager, the
// spot market) runs as callbacks scheduled on this engine.
//
// Determinism: events at equal timestamps fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so a fixed RNG seed
// yields a bit-identical execution.
//
// Layout (the per-event hot path of every simulator in the repo):
//  * Events live in a slot pool; ids are generation-tagged slot handles, so
//    Cancel() is O(1) with no auxiliary set and a freed slot is reused by the
//    next Schedule() without invalidating stale ids.
//  * Ordering runs through a 4-ary implicit heap stored SoA: the 8-byte
//    `when` keys in one dense array (a sift-down's four-child comparison
//    reads one cache line) and the 16-byte (seq, slot, generation) metadata
//    in a parallel array touched only on moves and ties. The (when, seq)
//    order is exactly the historical (when, id) tie-break, so traces stay
//    bit-identical.
//  * Callbacks are SmallCallback (src/sim/callback.h): captures up to 64
//    bytes stay in the slot inline, so steady-state scheduling performs zero
//    heap allocations once the pool and heap vectors are warm.
//
// Sharded use (src/sim/sharded_engine.h): a node-sharded simulation runs one
// SimEngine per shard and needs (a) caller-supplied tie-break keys that are
// shard-count invariant — ScheduleAtKeyed — and (b) strict window drains that
// never overshoot a lookahead boundary — NextLiveWhen/DrainTo/AdvanceTo.
// RunUntil keeps the historical tombstone-gated behaviour for serial callers.
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/sim/callback.h"

namespace varuna {

using SimTime = double;  // Seconds since simulation start.

class SimEngine {
 public:
  using Callback = SmallCallback;
  // Generation-tagged slot handle: (generation << 32) | slot. Opaque to
  // callers; a stale or unknown id is always a safe no-op to Cancel().
  using EventId = uint64_t;

  // Schedules `callback` to run `delay` seconds from now. Requires delay >= 0.
  EventId Schedule(SimTime delay, Callback callback);

  // Schedules `callback` at absolute time `when`. Requires when >= now().
  EventId ScheduleAt(SimTime when, Callback callback);

  // Schedules with a caller-supplied tie-break key instead of the internal
  // sequence number, plus an opaque tag readable as current_tag() while the
  // callback fires. The sharded engine derives keys from (origin node,
  // per-node emission counter), which is invariant under re-sharding — the
  // property that makes parallel replays bit-identical. Does not consume a
  // sequence number; an engine should use either keyed or plain scheduling,
  // not both (the tie-break spaces are unrelated). Keys must be unique per
  // timestamp or firing order at equal (when, key) is unspecified.
  EventId ScheduleAtKeyed(SimTime when, uint64_t key, uint32_t tag, Callback callback);

  // Tag of the most recently fired event (0 before any fires or for untagged
  // events). Callbacks use it to learn which node's context they run in.
  uint32_t current_tag() const { return current_tag_; }

  // Cancels a pending event in O(1). Cancelling an already-fired, already-
  // cancelled or unknown id is a no-op (the generation tag disambiguates a
  // reused slot from the event the caller meant), and the slot is reusable
  // immediately — long sessions accumulate no residue.
  void Cancel(EventId id);

  // Runs events until the queue is empty or Stop() is called.
  void Run();

  // Runs events with timestamp <= `until`, then sets now() == until.
  void RunUntil(SimTime until);

  // --- Strict window primitives (sharded drains) ---------------------------
  // Timestamp of the earliest *live* event, purging any tombstones that sit
  // above it, or +infinity when no live event is pending. Unlike RunUntil's
  // historical gate this never reads a cancelled entry, so a window bound
  // computed from it cannot overshoot.
  SimTime NextLiveWhen();

  // Fires live events with when < `bound` (inclusive=false) or <= `bound`
  // (inclusive=true) and stops — never fires past the gate the way RunUntil's
  // tombstone quirk can, which matters when the bound is a cross-shard
  // lookahead horizon rather than a caller convenience. Leaves now() at the
  // last fired event; pair with AdvanceTo to close the window.
  void DrainTo(SimTime bound, bool inclusive);

  // Advances now() to `when` without firing anything. Requires when >= now()
  // and no pending live event earlier than `when` (checked via the heap min).
  void AdvanceTo(SimTime when);

  // Stops the current Run()/RunUntil() after the in-flight callback returns.
  void Stop() { stopped_ = true; }

  // Clears all state (time, counters, pending events) while keeping the pool
  // and heap capacity, so a reused engine reaches steady state with zero
  // allocations. Equivalent to destroying and re-constructing the engine.
  void Reset();

  SimTime now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }

  // Events scheduled but neither fired nor cancelled. After a completed Run()
  // this is 0; the regression tests for Cancel() hygiene key off it.
  size_t pending_events() const { return live_count_; }

  // Scheduled callbacks whose captures overflowed the SmallCallback inline
  // buffer onto the heap. The executor's zero-alloc contract asserts this
  // stays 0 for its workload.
  uint64_t callback_heap_fallbacks() const { return callback_heap_fallbacks_; }

  // Self-check (varuna-verify): aborts via VARUNA_CHECK if the engine state is
  // inconsistent — the heap must be a valid 4-ary min-heap on (when, seq),
  // every live slot must be backed by exactly one current-generation heap
  // entry, and the queue may only hold events at or after now(). O(queue) —
  // call from tests and validators, not hot loops (Step() enforces the same
  // invariants incrementally in O(1)).
  void CheckInvariants() const;

 private:
  struct Slot {
    Callback callback;
    // Bumped every time the slot is freed (fire or cancel); a heap entry or
    // EventId carrying an older generation is stale.
    uint32_t generation = 0;
    uint32_t tag = 0;  // ScheduleAtKeyed's opaque tag; 0 for plain events.
    bool live = false;
  };
  // Heap metadata parallel to heap_when_: what a sift moves but rarely reads
  // (seq only breaks when-ties, slot/generation resolve on pop).
  struct HeapMeta {
    uint64_t seq = 0;  // Tie-breaker: lower seq fires first (schedule order).
    uint32_t slot = 0;
    uint32_t generation = 0;
  };

  // (when, seq) strict weak order over heap indices.
  bool EarlierThan(size_t a, size_t b) const {
    if (heap_when_[a] != heap_when_[b]) {
      return heap_when_[a] < heap_when_[b];
    }
    return heap_meta_[a].seq < heap_meta_[b].seq;
  }

  void HeapPush(SimTime when, const HeapMeta& meta);
  void HeapPopTop();
  // Pops tombstoned entries off the top until a live one (or nothing) remains.
  void PurgeTombstonesAtTop();

  EventId ScheduleInternal(SimTime when, uint64_t seq, uint32_t tag, Callback callback);

  // Releases `slot` back to the free list (bumps the generation).
  void FreeSlot(uint32_t slot);

  // Pops and runs the next live event. Returns false if the queue is empty.
  bool Step();

  // 4-ary implicit min-heap on (when, seq), stored SoA: dense keys + metadata.
  std::vector<SimTime> heap_when_;
  std::vector<HeapMeta> heap_meta_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 1;
  uint64_t events_processed_ = 0;
  uint64_t callback_heap_fallbacks_ = 0;
  size_t live_count_ = 0;
  uint32_t current_tag_ = 0;
  bool stopped_ = false;
};

}  // namespace varuna

#endif  // SRC_SIM_ENGINE_H_
