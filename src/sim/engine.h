// Deterministic discrete-event simulation kernel. Every distributed component
// in Varuna's testbed (pipeline stages, network transfers, the manager, the
// spot market) runs as callbacks scheduled on this engine.
//
// Determinism: events at equal timestamps fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so a fixed RNG seed
// yields a bit-identical execution.
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace varuna {

using SimTime = double;  // Seconds since simulation start.

class SimEngine {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  // Schedules `callback` to run `delay` seconds from now. Requires delay >= 0.
  EventId Schedule(SimTime delay, Callback callback);

  // Schedules `callback` at absolute time `when`. Requires when >= now().
  EventId ScheduleAt(SimTime when, Callback callback);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op (the manager cancels heartbeat timeouts that may have just fired)
  // and leaves no residue — cancellation state is purged when events fire, so
  // long sessions do not accumulate stale ids.
  void Cancel(EventId id);

  // Runs events until the queue is empty or Stop() is called.
  void Run();

  // Runs events with timestamp <= `until`, then sets now() == until.
  void RunUntil(SimTime until);

  // Stops the current Run()/RunUntil() after the in-flight callback returns.
  void Stop() { stopped_ = true; }

  SimTime now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }

  // Events scheduled but neither fired nor cancelled. After a completed Run()
  // this is 0; the regression tests for Cancel() hygiene key off it.
  size_t pending_events() const { return live_.size(); }

  // Self-check (varuna-verify): aborts via VARUNA_CHECK if the engine state is
  // inconsistent — every live id must correspond to a queued event, and the
  // queue may only hold events at or after now(). O(queue) — call from tests
  // and validators, not hot loops (Step() enforces the same invariants
  // incrementally in O(1)).
  void CheckInvariants() const;

 private:
  struct Event {
    SimTime when;
    EventId id;  // Also the tie-breaker: lower id fires first.
    Callback callback;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;  // Min-heap on time.
      }
      return a.id > b.id;
    }
  };

  // Pops and runs the next event. Returns false if the queue is empty.
  bool Step();

  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  // Ids in queue_ that have not been cancelled. Cancel() erases from this set;
  // Step() drops popped events whose id is gone and erases fired ids, so the
  // set never outgrows the queue (no stale-id leak, O(1) per operation).
  std::unordered_set<EventId> live_;
  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  uint64_t events_processed_ = 0;
  bool stopped_ = false;
};

}  // namespace varuna

#endif  // SRC_SIM_ENGINE_H_
