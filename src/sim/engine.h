// Deterministic discrete-event simulation kernel. Every distributed component
// in Varuna's testbed (pipeline stages, network transfers, the manager, the
// spot market) runs as callbacks scheduled on this engine.
//
// Determinism: events at equal timestamps fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so a fixed RNG seed
// yields a bit-identical execution.
//
// Layout (the per-event hot path of every simulator in the repo):
//  * Events live in a slot pool; ids are generation-tagged slot handles, so
//    Cancel() is O(1) with no auxiliary set and a freed slot is reused by the
//    next Schedule() without invalidating stale ids.
//  * Ordering runs through a 4-ary implicit heap of 24-byte (when, seq, slot)
//    entries — shallower than a binary heap and sifting plain PODs instead of
//    owning callbacks. The (when, seq) order is exactly the historical
//    (when, id) tie-break, so traces stay bit-identical.
//  * Callbacks are SmallCallback (src/sim/callback.h): captures up to 64
//    bytes stay in the slot inline, so steady-state scheduling performs zero
//    heap allocations once the pool and heap vectors are warm.
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/sim/callback.h"

namespace varuna {

using SimTime = double;  // Seconds since simulation start.

class SimEngine {
 public:
  using Callback = SmallCallback;
  // Generation-tagged slot handle: (generation << 32) | slot. Opaque to
  // callers; a stale or unknown id is always a safe no-op to Cancel().
  using EventId = uint64_t;

  // Schedules `callback` to run `delay` seconds from now. Requires delay >= 0.
  EventId Schedule(SimTime delay, Callback callback);

  // Schedules `callback` at absolute time `when`. Requires when >= now().
  EventId ScheduleAt(SimTime when, Callback callback);

  // Cancels a pending event in O(1). Cancelling an already-fired, already-
  // cancelled or unknown id is a no-op (the generation tag disambiguates a
  // reused slot from the event the caller meant), and the slot is reusable
  // immediately — long sessions accumulate no residue.
  void Cancel(EventId id);

  // Runs events until the queue is empty or Stop() is called.
  void Run();

  // Runs events with timestamp <= `until`, then sets now() == until.
  void RunUntil(SimTime until);

  // Stops the current Run()/RunUntil() after the in-flight callback returns.
  void Stop() { stopped_ = true; }

  // Clears all state (time, counters, pending events) while keeping the pool
  // and heap capacity, so a reused engine reaches steady state with zero
  // allocations. Equivalent to destroying and re-constructing the engine.
  void Reset();

  SimTime now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }

  // Events scheduled but neither fired nor cancelled. After a completed Run()
  // this is 0; the regression tests for Cancel() hygiene key off it.
  size_t pending_events() const { return live_count_; }

  // Scheduled callbacks whose captures overflowed the SmallCallback inline
  // buffer onto the heap. The executor's zero-alloc contract asserts this
  // stays 0 for its workload.
  uint64_t callback_heap_fallbacks() const { return callback_heap_fallbacks_; }

  // Self-check (varuna-verify): aborts via VARUNA_CHECK if the engine state is
  // inconsistent — the heap must be a valid 4-ary min-heap on (when, seq),
  // every live slot must be backed by exactly one current-generation heap
  // entry, and the queue may only hold events at or after now(). O(queue) —
  // call from tests and validators, not hot loops (Step() enforces the same
  // invariants incrementally in O(1)).
  void CheckInvariants() const;

 private:
  struct Slot {
    Callback callback;
    // Bumped every time the slot is freed (fire or cancel); a heap entry or
    // EventId carrying an older generation is stale.
    uint32_t generation = 0;
    bool live = false;
  };
  // What the heap orders: plain 24-byte PODs, no callback ownership.
  struct HeapEntry {
    SimTime when = 0.0;
    uint64_t seq = 0;  // Tie-breaker: lower seq fires first (schedule order).
    uint32_t slot = 0;
    uint32_t generation = 0;
  };

  static bool EarlierThan(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }

  void HeapPush(const HeapEntry& entry);
  void HeapPopTop();

  // Releases `slot` back to the free list (bumps the generation).
  void FreeSlot(uint32_t slot);

  // Pops and runs the next live event. Returns false if the queue is empty.
  bool Step();

  std::vector<HeapEntry> heap_;  // 4-ary implicit min-heap on (when, seq).
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 1;
  uint64_t events_processed_ = 0;
  uint64_t callback_heap_fallbacks_ = 0;
  size_t live_count_ = 0;
  bool stopped_ = false;
};

}  // namespace varuna

#endif  // SRC_SIM_ENGINE_H_
