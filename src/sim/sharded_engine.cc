#include "src/sim/sharded_engine.h"

#include <limits>
#include <utility>

#include "src/common/check.h"
#include "src/net/topology.h"

namespace varuna {
namespace {

// Canonical keys pack (origin << 40) | emission: 24 bits of node id, 40 bits
// of per-node emissions.
constexpr int kNodeShift = 40;
constexpr uint64_t kMaxEmissions = 1ull << kNodeShift;
constexpr int kMaxNodes = 1 << (64 - kNodeShift);

}  // namespace

ShardedSimEngine::ShardedSimEngine(int num_nodes, int num_shards, SimTime lookahead,
                                   ThreadPool* pool)
    : num_nodes_(num_nodes), pool_(pool) {
  VARUNA_CHECK_GE(num_nodes, 1);
  VARUNA_CHECK_LT(num_nodes, kMaxNodes);
  num_shards_ = num_shards < 1 ? 1 : (num_shards > num_nodes ? num_nodes : num_shards);
  lookahead_ = lookahead;
  if (num_shards_ > 1) {
    // A non-positive lookahead leaves no conservative window to run in
    // parallel; ForTopology degrades to one shard instead of tripping this.
    VARUNA_CHECK_GT(lookahead_, 0.0) << "sharded simulation requires positive lookahead";
  }
  shard_of_node_.reserve(static_cast<size_t>(num_nodes_));
  for (int node = 0; node < num_nodes_; ++node) {
    // Contiguous balanced blocks: shard sizes differ by at most one.
    shard_of_node_.push_back(static_cast<int>(static_cast<int64_t>(node) * num_shards_ /
                                              num_nodes_));
  }
  engines_.resize(static_cast<size_t>(num_shards_));
  emissions_.assign(static_cast<size_t>(num_nodes_), 0);
  outbox_.resize(static_cast<size_t>(num_shards_) * static_cast<size_t>(num_shards_));
  parcels_sent_.assign(static_cast<size_t>(num_shards_), 0);
}

ShardedSimEngine ShardedSimEngine::ForTopology(const Topology& topology, int num_shards,
                                               ThreadPool* pool) {
  const int num_nodes = topology.num_nodes();
  int shards = num_shards < 1 ? 1 : (num_shards > num_nodes ? num_nodes : num_shards);
  SimTime lookahead = 0.0;
  if (shards > 1) {
    std::vector<int> shard_of;
    shard_of.reserve(static_cast<size_t>(num_nodes));
    for (int node = 0; node < num_nodes; ++node) {
      shard_of.push_back(static_cast<int>(static_cast<int64_t>(node) * shards / num_nodes));
    }
    lookahead = topology.MinCrossShardLatency(shard_of);
    if (lookahead <= 0.0) {
      shards = 1;  // Zero-latency cross-shard links: no window to exploit.
    }
  }
  return ShardedSimEngine(num_nodes, shards, lookahead, pool);
}

uint64_t ShardedSimEngine::NextKey(NodeId origin) {
  uint64_t& emission = emissions_[static_cast<size_t>(origin)];
  VARUNA_CHECK_LT(emission, kMaxEmissions);
  return (static_cast<uint64_t>(static_cast<uint32_t>(origin)) << kNodeShift) | emission++;
}

ShardedSimEngine::LocalEventId ShardedSimEngine::ScheduleLocal(NodeId node, SimTime delay,
                                                               Callback callback) {
  VARUNA_CHECK_GE(node, 0);
  VARUNA_CHECK_LT(node, num_nodes_);
  VARUNA_CHECK_GE(delay, 0.0);
  SimEngine& engine = engines_[static_cast<size_t>(shard_of(node))];
  const uint64_t key = NextKey(node);
  return LocalEventId{
      engine.ScheduleAtKeyed(engine.now() + delay, key, TagOf(node), std::move(callback)),
      node};
}

void ShardedSimEngine::Send(NodeId origin, NodeId target, SimTime delay, Callback callback) {
  VARUNA_CHECK_GE(origin, 0);
  VARUNA_CHECK_LT(origin, num_nodes_);
  VARUNA_CHECK_GE(target, 0);
  VARUNA_CHECK_LT(target, num_nodes_);
  VARUNA_CHECK_GE(delay, 0.0);
  const int src = shard_of(origin);
  const int dst = shard_of(target);
  const uint64_t key = NextKey(origin);
  const SimTime when = engines_[static_cast<size_t>(src)].now() + delay;
  if (src == dst || !running_) {
    // Same shard (or setup, where all clocks agree and nothing runs in
    // parallel): straight into the target heap, no mailbox round-trip.
    engines_[static_cast<size_t>(dst)].ScheduleAtKeyed(when, key, TagOf(target),
                                                       std::move(callback));
    return;
  }
  // The lookahead bound is what makes the conservative window sound: the
  // parcel lands at the next barrier, strictly before its due time.
  VARUNA_CHECK_GE(delay, lookahead_) << "cross-shard send below the lookahead bound";
  ++parcels_sent_[static_cast<size_t>(src)];
  outbox_[static_cast<size_t>(src) * static_cast<size_t>(num_shards_) +
          static_cast<size_t>(dst)]
      .push_back(Parcel{when, key, target, std::move(callback)});
}

void ShardedSimEngine::Cancel(const LocalEventId& id) {
  if (id.node < 0 || id.node >= num_nodes_) {
    return;
  }
  engines_[static_cast<size_t>(shard_of(id.node))].Cancel(id.inner);
}

void ShardedSimEngine::DeliverParcels() {
  for (int src = 0; src < num_shards_; ++src) {
    for (int dst = 0; dst < num_shards_; ++dst) {
      std::vector<Parcel>& box = outbox_[static_cast<size_t>(src) *
                                             static_cast<size_t>(num_shards_) +
                                         static_cast<size_t>(dst)];
      if (box.empty()) {
        continue;
      }
      SimEngine& engine = engines_[static_cast<size_t>(dst)];
      for (Parcel& parcel : box) {
        engine.ScheduleAtKeyed(parcel.when, parcel.key, TagOf(parcel.target),
                               std::move(parcel.callback));
      }
      box.clear();  // Keeps capacity: steady-state windows reuse the rows.
    }
  }
}

void ShardedSimEngine::RunWindow(SimTime bound, bool inclusive) {
  const auto drain_shard = [this, bound, inclusive](int shard, int /*worker*/) {
    SimEngine& engine = engines_[static_cast<size_t>(shard)];
    engine.DrainTo(bound, inclusive);
    engine.AdvanceTo(bound);
  };
  if (pool_ != nullptr && num_shards_ > 1) {
    pool_->ParallelFor(num_shards_, drain_shard);
  } else {
    for (int shard = 0; shard < num_shards_; ++shard) {
      drain_shard(shard, 0);
    }
  }
}

void ShardedSimEngine::RunUntil(SimTime until) {
  VARUNA_CHECK_GE(until, now_);
  if (num_shards_ == 1) {
    // One shard IS the serial engine, historical RunUntil quirk included.
    engines_[0].RunUntil(until);
    now_ = until;
    return;
  }
  running_ = true;
  for (;;) {
    DeliverParcels();
    SimTime start = std::numeric_limits<SimTime>::infinity();
    for (SimEngine& engine : engines_) {
      const SimTime live = engine.NextLiveWhen();
      start = live < start ? live : start;
    }
    if (start > until) {
      break;
    }
    const SimTime bound = start + lookahead_ < until ? start + lookahead_ : until;
    RunWindow(bound, /*inclusive=*/bound >= until);
    ++window_syncs_;
  }
  for (SimEngine& engine : engines_) {
    engine.AdvanceTo(until);
  }
  now_ = until;
  running_ = false;
}

uint64_t ShardedSimEngine::cross_shard_parcels() const {
  uint64_t total = 0;
  for (const uint64_t sent : parcels_sent_) {
    total += sent;
  }
  return total;
}

uint64_t ShardedSimEngine::events_processed() const {
  uint64_t total = 0;
  for (const SimEngine& engine : engines_) {
    total += engine.events_processed();
  }
  return total;
}

double ShardedSimEngine::shard_imbalance() const {
  uint64_t max_events = 0;
  uint64_t total = 0;
  for (const SimEngine& engine : engines_) {
    max_events = engine.events_processed() > max_events ? engine.events_processed() : max_events;
    total += engine.events_processed();
  }
  if (total == 0) {
    return 1.0;
  }
  const double mean = static_cast<double>(total) / static_cast<double>(num_shards_);
  return static_cast<double>(max_events) / mean;
}

size_t ShardedSimEngine::pending_events() const {
  size_t total = 0;
  for (const SimEngine& engine : engines_) {
    total += engine.pending_events();
  }
  return total;
}

uint64_t ShardedSimEngine::callback_heap_fallbacks() const {
  uint64_t total = 0;
  for (const SimEngine& engine : engines_) {
    total += engine.callback_heap_fallbacks();
  }
  return total;
}

void ShardedSimEngine::CheckInvariants() const {
  VARUNA_CHECK_EQ(static_cast<int>(engines_.size()), num_shards_);
  for (const SimEngine& engine : engines_) {
    engine.CheckInvariants();
    // Between runs every shard clock sits at the global time.
    VARUNA_CHECK_EQ(engine.now(), now_) << "shard clock drifted from the global time";
  }
  for (const std::vector<Parcel>& box : outbox_) {
    VARUNA_CHECK(box.empty()) << "cross-shard parcel stranded outside a window pass";
  }
  // Shard assignment is a total, monotone partition of the nodes.
  VARUNA_CHECK_EQ(static_cast<int>(shard_of_node_.size()), num_nodes_);
  for (size_t i = 1; i < shard_of_node_.size(); ++i) {
    VARUNA_CHECK_GE(shard_of_node_[i], shard_of_node_[i - 1]);
  }
  if (!shard_of_node_.empty()) {
    VARUNA_CHECK_EQ(shard_of_node_.front(), 0);
    VARUNA_CHECK_EQ(shard_of_node_.back(), num_shards_ - 1);
  }
}

}  // namespace varuna
