// Node-sharded deterministic discrete-event simulation: N simulated nodes are
// partitioned into S shards, each shard owning a private SimEngine (slot pool
// + 4-ary heap), advanced in parallel over conservative time windows.
//
// Window protocol (classic conservative PDES with a global lookahead):
//   1. window start W = min over shards of the earliest live event;
//   2. window bound B = min(W + lookahead, horizon) — `lookahead` is the
//      minimum cross-shard link latency (Topology::MinCrossShardLatency), so
//      nothing a remote shard does inside [W, B) can affect this window;
//   3. every shard drains its own events with when < B (strictly — see the
//      gate note below) and advances to B; cross-shard sends append to a
//      per-(src, dst) mailbox instead of touching the remote heap;
//   4. at the barrier, mailboxes are flushed in fixed (src, dst) order into
//      the target shards, and the loop repeats.
//
// Determinism across shard counts: every event carries a canonical 64-bit
// key, (origin node << 40) | per-node emission counter. A node's event
// emissions are a pure function of its own event stream (side effects are
// node-local by contract), so the keys — and therefore the global
// (when, key) firing order — are invariant under re-sharding: 1, 2, or 8
// shards replay bit-identically. Mailbox flush order is irrelevant to
// correctness (heaps order by key), it is fixed only so memory behaviour is
// reproducible.
//
// Gate note: with S > 1 the window drain is strictly bounded (DrainTo), so a
// shard can never fire an event at or past B before a smaller-keyed parcel
// from another shard lands at the barrier. With S == 1 RunUntil delegates to
// the serial engine unmodified — including its historical tombstone-gated
// RunUntil quirk — so one shard IS today's engine, not an emulation of it.
// The quirk can fire one event past a horizon at S == 1 that S > 1 defers to
// the next RunUntil; the global firing order is unaffected, which is what
// the fingerprint contract pins (streams filtered to the final horizon are
// bit-identical at every shard count).
//
// Workload contract (checked where stated, documented otherwise):
//   * Event side effects are node-local; cross-node interaction goes through
//     Send(). A cross-node cancel is a Send() whose callback cancels the
//     node-local id it finds — generation tags make a stale cancel a no-op.
//   * Cross-SHARD sends must have delay >= lookahead (VARUNA_CHECKed during
//     windows). To stay valid at every shard count, workloads must honour
//     the bound for every cross-NODE send: node pairs that share a shard at
//     S=2 may not at S=8.
//   * Randomness is per-node (fork one Rng per node); a shared stream drawn
//     in firing order would observe window interleaving.
#ifndef SRC_SIM_SHARDED_ENGINE_H_
#define SRC_SIM_SHARDED_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/sim/engine.h"

namespace varuna {

class Topology;

class ShardedSimEngine {
 public:
  using Callback = SmallCallback;
  using NodeId = int;

  // Handle to a node-local event (ScheduleLocal). Cancellable only from its
  // own node's context; stale handles are safe no-ops, like SimEngine ids.
  struct LocalEventId {
    SimEngine::EventId inner = 0;
    NodeId node = -1;
  };

  // `num_shards` is clamped to [1, num_nodes]. `lookahead` must be > 0 when
  // more than one shard results (the window loop cannot advance otherwise);
  // ForTopology degrades to one shard instead of aborting.
  ShardedSimEngine(int num_nodes, int num_shards, SimTime lookahead,
                   ThreadPool* pool = nullptr);

  // Partitions `topology`'s nodes into contiguous shard blocks and derives
  // the lookahead from its minimum cross-shard link latency. Falls back to a
  // single shard when that latency is 0 (e.g. a zero-latency fabric leaves
  // no conservative window to exploit).
  static ShardedSimEngine ForTopology(const Topology& topology, int num_shards,
                                      ThreadPool* pool = nullptr);

  // Schedules `callback` on `node`, `delay` seconds after the node's current
  // time. Node-local: callable at setup or from a callback running on the
  // same shard as `node`.
  LocalEventId ScheduleLocal(NodeId node, SimTime delay, Callback callback);

  // Schedules `callback` on `target`, `delay` seconds after `origin`'s
  // current time. `origin` must be the node whose callback (or setup code)
  // is calling. Cross-shard sends require delay >= lookahead() during runs.
  // Returns no id: remote events are cancelled by sending a cancel message,
  // never by reaching into another shard's heap.
  void Send(NodeId origin, NodeId target, SimTime delay, Callback callback);

  // Cancels a node-local event in O(1); stale/fired/unknown ids are no-ops.
  void Cancel(const LocalEventId& id);

  // Runs events with timestamp <= `until` in canonical (when, key) order,
  // then sets now() == until on every shard.
  void RunUntil(SimTime until);

  SimTime now() const { return now_; }
  int num_nodes() const { return num_nodes_; }
  int num_shards() const { return num_shards_; }
  SimTime lookahead() const { return lookahead_; }
  int shard_of(NodeId node) const { return shard_of_node_[static_cast<size_t>(node)]; }

  // --- Counters (observability; never fingerprinted) -----------------------
  // Window barriers executed across all RunUntil calls.
  uint64_t window_syncs() const { return window_syncs_; }
  // Cross-shard events routed through mailboxes.
  uint64_t cross_shard_parcels() const;
  uint64_t events_processed() const;
  uint64_t shard_events_processed(int shard) const {
    return engines_[static_cast<size_t>(shard)].events_processed();
  }
  // max/mean per-shard events processed; 1.0 = perfectly balanced. Guards
  // against a degenerate partition silently serializing the windows.
  double shard_imbalance() const;
  size_t pending_events() const;
  uint64_t callback_heap_fallbacks() const;

  // Self-check: per-shard engine invariants, empty mailboxes (outside a
  // window pass nothing may be in flight), and shard clocks agreeing with
  // now(). O(total queue); call from tests, not hot loops.
  void CheckInvariants() const;

 private:
  // A cross-shard event in flight between window barriers.
  struct Parcel {
    SimTime when = 0.0;
    uint64_t key = 0;
    NodeId target = -1;
    Callback callback;
  };

  // Canonical key for the next event emitted by `origin`.
  uint64_t NextKey(NodeId origin);
  // Engine tags are node + 1 so tag 0 keeps meaning "no tagged event".
  static uint32_t TagOf(NodeId node) { return static_cast<uint32_t>(node) + 1; }

  // Flushes every mailbox into its target shard, in fixed (src, dst) order.
  void DeliverParcels();
  // Parallel phase: each shard drains [*, bound) — or [*, bound] on the
  // final window — and advances its clock to the bound.
  void RunWindow(SimTime bound, bool inclusive);

  int num_nodes_ = 0;
  int num_shards_ = 1;
  SimTime lookahead_ = 0.0;
  ThreadPool* pool_ = nullptr;
  std::vector<int> shard_of_node_;
  std::vector<SimEngine> engines_;  // One per shard; touched only by its owner
                                    // during RunWindow, by the caller between.
  // Per-node emission counters behind the canonical keys. Written only by
  // the owning node's shard (or the caller at setup).
  std::vector<uint64_t> emissions_;
  // Mailboxes indexed src * num_shards + dst; row src written only by shard
  // src during RunWindow, drained by the caller at barriers.
  std::vector<std::vector<Parcel>> outbox_;
  // Cross-shard sends per source shard (summed by cross_shard_parcels()).
  // Split per shard: the parallel phase must not share a mutable counter
  // between workers, and the bench reports per-shard traffic anyway.
  std::vector<uint64_t> parcels_sent_;
  SimTime now_ = 0.0;
  uint64_t window_syncs_ = 0;
  bool running_ = false;
};

}  // namespace varuna

#endif  // SRC_SIM_SHARDED_ENGINE_H_
