#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace varuna {
namespace {

int64_t NumElements(const std::vector<int>& shape) {
  int64_t n = 1;
  for (const int d : shape) {
    VARUNA_CHECK_GT(d, 0);
    n *= d;
  }
  return n;
}

GemmKernel g_gemm_kernel = GemmKernel::kBlocked;

// Block sizes for the packed MatMul / MatMulTransposeA kernels. One packed
// B-panel is kGemmKB x kGemmNB floats = 32 KiB, sized to sit in L1 while a
// full sweep of A rows streams against it.
constexpr int kGemmKB = 64;
constexpr int kGemmNB = 128;
// Column-block width of MatMulTransposeB: the number of independent
// accumulator chains kept live per A row.
constexpr int kDotJB = 8;

// Eight lanes of element-wise float math. GCC lowers vector_size(32) to the
// widest ISA the target has (two SSE ops at the x86-64 baseline); each lane
// is an ordinary float mul/add — no reassociation, and the baseline target
// has no FMA so nothing fuses — so vector results are bit-identical to the
// scalar loops they replace. The psabi note (v8sf return ABI depends on
// -mavx) is moot: every helper is internal to this translation unit.
#pragma GCC diagnostic ignored "-Wpsabi"
typedef float v8sf __attribute__((vector_size(32)));
constexpr int kVecWidth = 8;

inline v8sf LoadU(const float* p) {
  v8sf v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreU(float* p, v8sf v) { __builtin_memcpy(p, &v, sizeof(v)); }

inline v8sf Broadcast(float x) { return v8sf{x, x, x, x, x, x, x, x}; }

// c[0..n) += alpha * b[0..n), vectorized with a scalar tail. Per element this
// is exactly `c[j] += alpha * b[j]` — the seed kernels' inner statement.
inline void AxpyRow(float* c, const float* b, float alpha, int64_t n) {
  const v8sf av = Broadcast(alpha);
  int64_t j = 0;
  for (; j + kVecWidth <= n; j += kVecWidth) {
    StoreU(c + j, LoadU(c + j) + av * LoadU(b + j));
  }
  for (; j < n; ++j) {
    c[j] += alpha * b[j];
  }
}

// out[0..n) = a[0..n) + b[0..n), vectorized (exact per lane).
inline void AddRow(float* out, const float* a, const float* b, int64_t n) {
  int64_t j = 0;
  for (; j + kVecWidth <= n; j += kVecWidth) {
    StoreU(out + j, LoadU(a + j) + LoadU(b + j));
  }
  for (; j < n; ++j) {
    out[j] = a[j] + b[j];
  }
}

}  // namespace

void SetGemmKernel(GemmKernel kernel) { g_gemm_kernel = kernel; }
GemmKernel GetGemmKernel() { return g_gemm_kernel; }

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(NumElements(shape_)), 0.0f);
}

Tensor Tensor::Zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Randn(std::vector<int> shape, Rng* rng, float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Gaussian(0.0, stddev));
  }
  return t;
}

void Tensor::ResizeTo(const std::vector<int>& shape) {
  const size_t n = static_cast<size_t>(NumElements(shape));
  if (shape_ != shape) {
    shape_ = shape;
  }
  // vector::resize never shrinks capacity, so steady-state reshaping between
  // the same set of shapes touches the heap zero times.
  data_.resize(n);
}

float& Tensor::at(int row, int col) {
  VARUNA_CHECK_EQ(shape_.size(), 2u);
  VARUNA_CHECK(row >= 0 && row < shape_[0] && col >= 0 && col < shape_[1]);
  return data_[static_cast<size_t>(row) * shape_[1] + static_cast<size_t>(col)];
}

float Tensor::at(int row, int col) const { return const_cast<Tensor*>(this)->at(row, col); }

void Tensor::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::AddInPlace(const Tensor& other) {
  VARUNA_CHECK(shape_ == other.shape_);
  AddRow(data_.data(), data_.data(), other.data_.data(), size());
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  VARUNA_CHECK(shape_ == other.shape_);
  AxpyRow(data_.data(), other.data_.data(), alpha, size());
}

void Tensor::Scale(float alpha) {
  const v8sf av = Broadcast(alpha);
  float* p = data_.data();
  const int64_t n = size();
  int64_t i = 0;
  for (; i + kVecWidth <= n; i += kVecWidth) {
    StoreU(p + i, LoadU(p + i) * av);
  }
  for (; i < n; ++i) {
    p[i] *= alpha;
  }
}

double Tensor::SquaredNorm() const {
  double sum = 0.0;
  for (const float x : data_) {
    sum += static_cast<double>(x) * x;
  }
  return sum;
}

// --- GEMM kernels ------------------------------------------------------------
//
// Bit-identity contract: for every output element, the blocked kernels add the
// same float32 products in the same ascending-p order as the seed loops, and
// keep the seed's aip==0 row skips. Blocking and SIMD only reorder *which
// elements* are computed when — every lane of a vector op is the exact scalar
// mul/add of one element (no reassociation; the baseline x86-64 target has no
// FMA, so nothing fuses) — so blocked == naive under operator==
// (tests/tensor_kernel_test.cc asserts this).

namespace {

void CheckMatMulShapes(const Tensor& a, const Tensor& b) {
  VARUNA_CHECK_EQ(a.shape().size(), 2u);
  VARUNA_CHECK_EQ(b.shape().size(), 2u);
  VARUNA_CHECK_EQ(a.dim(1), b.dim(0));
}

// The seed kernel body, writing into a zeroed out buffer.
void MatMulNaiveInto(Tensor* out, const Tensor& a, const Tensor& b) {
  const int m = a.dim(0);
  const int k = a.dim(1);
  const int n = b.dim(1);
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float aip = a.data()[static_cast<size_t>(i) * k + p];
      if (aip == 0.0f) {
        continue;
      }
      const float* b_row = b.data() + static_cast<size_t>(p) * n;
      float* c_row = out->data() + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        c_row[j] += aip * b_row[j];
      }
    }
  }
}

void MatMulTransposeBNaiveInto(Tensor* out, const Tensor& a, const Tensor& b) {
  const int m = a.dim(0);
  const int k = a.dim(1);
  const int n = b.dim(0);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const float* a_row = a.data() + static_cast<size_t>(i) * k;
      const float* b_row = b.data() + static_cast<size_t>(j) * k;
      float sum = 0.0f;
      for (int p = 0; p < k; ++p) {
        sum += a_row[p] * b_row[p];
      }
      out->data()[static_cast<size_t>(i) * n + j] = sum;
    }
  }
}

void MatMulTransposeANaiveInto(Tensor* out, const Tensor& a, const Tensor& b) {
  const int k = a.dim(0);
  const int m = a.dim(1);
  const int n = b.dim(1);
  for (int p = 0; p < k; ++p) {
    const float* a_row = a.data() + static_cast<size_t>(p) * m;
    const float* b_row = b.data() + static_cast<size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float api = a_row[i];
      if (api == 0.0f) {
        continue;
      }
      float* c_row = out->data() + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        c_row[j] += api * b_row[j];
      }
    }
  }
}

// One j-tile of one output row: R vector accumulators hold C[i][j .. j+8R) in
// registers across the full ascending-p sweep and are stored exactly once —
// no zero-fill pass, no C reloads. Each lane is the seed chain 0 + aip*b
// (nonzero aip, ascending p) for one element. `a` walks operand A's
// contribution for output row i at stride `a_stride`: 1 when A's row i is
// contiguous (MatMul), m when reading A's column i (TransposeA).
template <int R>
inline void GemmRowTile(float* c, const float* a, int64_t a_stride,
                        const float* b, int64_t b_stride, int k) {
  v8sf acc[R];
  for (int r = 0; r < R; ++r) {
    acc[r] = Broadcast(0.0f);
  }
  for (int p = 0; p < k; ++p) {
    const float aip = a[static_cast<size_t>(p) * a_stride];
    if (aip == 0.0f) {
      continue;
    }
    const v8sf av = Broadcast(aip);
    const float* b_row = b + static_cast<size_t>(p) * b_stride;
    for (int r = 0; r < R; ++r) {
      acc[r] += av * LoadU(b_row + r * kVecWidth);
    }
  }
  for (int r = 0; r < R; ++r) {
    StoreU(c + r * kVecWidth, acc[r]);
  }
}

// Register-tiled sweep of one output row, widest tier first. The 3/2-vector
// tiers matter: narrow outputs (e.g. n = 24) get one full-k sweep instead of
// repeating the p loop (and its per-p branch + broadcast) per 8 columns.
inline void GemmRow(float* c_row, const float* a, int64_t a_stride,
                    const float* b, int64_t b_stride, int k, int n) {
  int j = 0;
#ifdef __AVX2__
  // Wide tiers only when one v8sf is one register (16 ymm hold 12
  // accumulators + the broadcast); at baseline SSE they would spill.
  for (; j + 12 * kVecWidth <= n; j += 12 * kVecWidth) {
    GemmRowTile<12>(c_row + j, a, a_stride, b + j, b_stride, k);
  }
  if (n - j >= 8 * kVecWidth) {
    GemmRowTile<8>(c_row + j, a, a_stride, b + j, b_stride, k);
    j += 8 * kVecWidth;
  }
#endif
  for (; j + 4 * kVecWidth <= n; j += 4 * kVecWidth) {
    GemmRowTile<4>(c_row + j, a, a_stride, b + j, b_stride, k);
  }
  if (n - j >= 3 * kVecWidth) {
    GemmRowTile<3>(c_row + j, a, a_stride, b + j, b_stride, k);
    j += 3 * kVecWidth;
  }
  if (n - j >= 2 * kVecWidth) {
    GemmRowTile<2>(c_row + j, a, a_stride, b + j, b_stride, k);
    j += 2 * kVecWidth;
  }
  if (n - j >= kVecWidth) {
    GemmRowTile<1>(c_row + j, a, a_stride, b + j, b_stride, k);
    j += kVecWidth;
  }
  for (; j < n; ++j) {
    float acc = 0.0f;
    for (int p = 0; p < k; ++p) {
      const float aip = a[static_cast<size_t>(p) * a_stride];
      if (aip == 0.0f) {
        continue;
      }
      acc += aip * b[static_cast<size_t>(p) * b_stride + j];
    }
    c_row[j] = acc;
  }
}

}  // namespace

void MatMulInto(Tensor* out, const Tensor& a, const Tensor& b) {
  VARUNA_CHECK(out != &a && out != &b);
  CheckMatMulShapes(a, b);
  const int m = a.dim(0);
  const int k = a.dim(1);
  const int n = b.dim(1);
  out->ResizeTo({m, n});
  if (g_gemm_kernel == GemmKernel::kNaive) {
    out->Fill(0.0f);
    MatMulNaiveInto(out, a, b);
    return;
  }
  if (static_cast<int64_t>(k) * n <= static_cast<int64_t>(kGemmKB) * kGemmNB) {
    // B no larger than one packed panel (32 KiB, L1-resident): register-tiled
    // sweep per output row, reading A's row i contiguously (stride 1).
    for (int i = 0; i < m; ++i) {
      GemmRow(out->data() + static_cast<size_t>(i) * n,
              a.data() + static_cast<size_t>(i) * k, 1, b.data(), n, k, n);
    }
    return;
  }
  // Large B: pack one kb x nb panel contiguously, then stream every A row
  // against it. p0 blocks ascend, and p ascends within a block, so each
  // c[i][j] receives its k contributions in seed order.
  out->Fill(0.0f);
  thread_local std::vector<float> packed;
  packed.resize(static_cast<size_t>(kGemmKB) * kGemmNB);
  // Hoisted: thread_local .data() inside the hot loops costs a TLS-wrapper
  // call per access.
  float* const pk = packed.data();
  for (int j0 = 0; j0 < n; j0 += kGemmNB) {
    const int nb = std::min(kGemmNB, n - j0);
    for (int p0 = 0; p0 < k; p0 += kGemmKB) {
      const int kb = std::min(kGemmKB, k - p0);
      for (int p = 0; p < kb; ++p) {
        const float* src = b.data() + static_cast<size_t>(p0 + p) * n + j0;
        std::copy(src, src + nb, pk + static_cast<size_t>(p) * nb);
      }
      for (int i = 0; i < m; ++i) {
        const float* a_row = a.data() + static_cast<size_t>(i) * k + p0;
        float* c_row = out->data() + static_cast<size_t>(i) * n + j0;
        for (int p = 0; p < kb; ++p) {
          const float aip = a_row[p];
          if (aip == 0.0f) {
            continue;
          }
          AxpyRow(c_row, pk + static_cast<size_t>(p) * nb, aip, nb);
        }
      }
    }
  }
}

void MatMulTransposeBInto(Tensor* out, const Tensor& a, const Tensor& b) {
  VARUNA_CHECK(out != &a && out != &b);
  VARUNA_CHECK_EQ(a.shape().size(), 2u);
  VARUNA_CHECK_EQ(b.shape().size(), 2u);
  VARUNA_CHECK_EQ(a.dim(1), b.dim(1));
  const int m = a.dim(0);
  const int k = a.dim(1);
  const int n = b.dim(0);
  out->ResizeTo({m, n});
  if (g_gemm_kernel == GemmKernel::kNaive) {
    MatMulTransposeBNaiveInto(out, a, b);
    return;
  }
  // Each c[i][j] is a sequential dot product over p (same order as the seed
  // kernel). Two transpose-packed layouts keep the SIMD lanes on independent
  // dots: few A rows → pack A and vectorize across rows; otherwise pack
  // kDotJB B rows per panel and vectorize across columns. Either way each
  // lane's adds are exactly one element's ascending-p chain.
  static_assert(kDotJB == kVecWidth, "panel width is one SIMD vector");
  if (m <= kVecWidth) {
    // The micro-batch case (m = rows <= 8): pack A once into a [k][8] panel
    // (lanes past m zero-padded) — k*8 reads instead of n*k for the B-panel
    // pack — then one accumulator sweeps lane i over row i's dot with every
    // B row.
    thread_local std::vector<float> apanel;
    apanel.assign(static_cast<size_t>(k) * kVecWidth, 0.0f);
    // Hoisted: thread_local .data() inside the hot loops costs a TLS-wrapper
    // call per access.
    float* const ap = apanel.data();
    for (int i = 0; i < m; ++i) {
      const float* a_row = a.data() + static_cast<size_t>(i) * k;
      for (int p = 0; p < k; ++p) {
        ap[static_cast<size_t>(p) * kVecWidth + i] = a_row[p];
      }
    }
    float* const c = out->data();
    for (int j = 0; j < n; ++j) {
      const float* b_row = b.data() + static_cast<size_t>(j) * k;
      v8sf acc = Broadcast(0.0f);
      for (int p = 0; p < k; ++p) {
        acc += LoadU(ap + static_cast<size_t>(p) * kVecWidth) * Broadcast(b_row[p]);
      }
      float lanes[kVecWidth];
      StoreU(lanes, acc);
      for (int i = 0; i < m; ++i) {
        c[static_cast<size_t>(i) * n + j] = lanes[i];
      }
    }
    return;
  }
  const int n_full = n - n % kDotJB;
  thread_local std::vector<float> panel;
  panel.resize(static_cast<size_t>(k) * kDotJB);
  float* const bp = panel.data();
  for (int j0 = 0; j0 < n_full; j0 += kDotJB) {
    for (int jj = 0; jj < kDotJB; ++jj) {
      const float* b_row = b.data() + static_cast<size_t>(j0 + jj) * k;
      for (int p = 0; p < k; ++p) {
        bp[static_cast<size_t>(p) * kDotJB + jj] = b_row[p];
      }
    }
    for (int i = 0; i < m; ++i) {
      const float* a_row = a.data() + static_cast<size_t>(i) * k;
      v8sf acc = Broadcast(0.0f);
      for (int p = 0; p < k; ++p) {
        acc += Broadcast(a_row[p]) * LoadU(bp + static_cast<size_t>(p) * kDotJB);
      }
      StoreU(out->data() + static_cast<size_t>(i) * n + j0, acc);
    }
  }
  for (int i = 0; i < m; ++i) {
    const float* a_row = a.data() + static_cast<size_t>(i) * k;
    float* c_row = out->data() + static_cast<size_t>(i) * n;
    for (int j = n_full; j < n; ++j) {
      const float* b_row = b.data() + static_cast<size_t>(j) * k;
      float sum = 0.0f;
      for (int p = 0; p < k; ++p) {
        sum += a_row[p] * b_row[p];
      }
      c_row[j] = sum;
    }
  }
}

void MatMulTransposeAInto(Tensor* out, const Tensor& a, const Tensor& b) {
  VARUNA_CHECK(out != &a && out != &b);
  VARUNA_CHECK_EQ(a.shape().size(), 2u);
  VARUNA_CHECK_EQ(b.shape().size(), 2u);
  VARUNA_CHECK_EQ(a.dim(0), b.dim(0));
  const int k = a.dim(0);
  const int m = a.dim(1);
  const int n = b.dim(1);
  out->ResizeTo({m, n});
  if (g_gemm_kernel == GemmKernel::kNaive) {
    out->Fill(0.0f);
    MatMulTransposeANaiveInto(out, a, b);
    return;
  }
  // Few accumulation terms (k = micro-batch rows in the training hot path):
  // the seed's own p-outer loop order with the j loop vectorized. A reads are
  // contiguous and the per-output-row sweep setup of GemmRow — which would be
  // paid m times for only k products each — disappears. Ascending p outer
  // keeps every element's chain in seed order, and the api==0 skip matches
  // the seed kernel's.
  if (k <= 2 * kVecWidth) {
    out->Fill(0.0f);
    for (int p = 0; p < k; ++p) {
      const float* a_row = a.data() + static_cast<size_t>(p) * m;
      const float* b_row = b.data() + static_cast<size_t>(p) * n;
      for (int i = 0; i < m; ++i) {
        const float api = a_row[i];
        if (api == 0.0f) {
          continue;
        }
        AxpyRow(out->data() + static_cast<size_t>(i) * n, b_row, api, n);
      }
    }
    return;
  }
  // Otherwise: register-tiled sweep per output row, reading A's column i at
  // stride m. Per element this is the seed chain — ascending p, api==0
  // products skipped — only the (i, j) visit order changes, and output
  // elements are disjoint. B is re-swept per output row; every caller's B
  // panel is cache-resident (k*n of at most a few tens of KiB), so the
  // re-reads stay on chip.
  for (int i = 0; i < m; ++i) {
    GemmRow(out->data() + static_cast<size_t>(i) * n, a.data() + i, m,
            b.data(), n, k, n);
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor c;
  MatMulInto(&c, a, b);
  return c;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  Tensor c;
  MatMulTransposeBInto(&c, a, b);
  return c;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  Tensor c;
  MatMulTransposeAInto(&c, a, b);
  return c;
}

Tensor MatMulNaive(const Tensor& a, const Tensor& b) {
  CheckMatMulShapes(a, b);
  Tensor c({a.dim(0), b.dim(1)});
  MatMulNaiveInto(&c, a, b);
  return c;
}

Tensor MatMulTransposeBNaive(const Tensor& a, const Tensor& b) {
  VARUNA_CHECK_EQ(a.dim(1), b.dim(1));
  Tensor c({a.dim(0), b.dim(0)});
  MatMulTransposeBNaiveInto(&c, a, b);
  return c;
}

Tensor MatMulTransposeANaive(const Tensor& a, const Tensor& b) {
  VARUNA_CHECK_EQ(a.dim(0), b.dim(0));
  Tensor c({a.dim(1), b.dim(1)});
  MatMulTransposeANaiveInto(&c, a, b);
  return c;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  VARUNA_CHECK(a.shape() == b.shape());
  Tensor c = a;
  c.AddInPlace(b);
  return c;
}

void AddInto(Tensor* out, const Tensor& a, const Tensor& b) {
  VARUNA_CHECK(a.shape() == b.shape());
  out->ResizeTo(a.shape());
  AddRow(out->data(), a.data(), b.data(), a.size());
}

Tensor AddRowVector(const Tensor& a, const Tensor& row) {
  Tensor c = a;
  AddRowVectorInPlace(&c, row);
  return c;
}

void AddRowVectorInPlace(Tensor* m, const Tensor& row) {
  VARUNA_CHECK_EQ(m->shape().size(), 2u);
  VARUNA_CHECK_EQ(row.size(), m->dim(1));
  const int n = m->dim(1);
  for (int i = 0; i < m->dim(0); ++i) {
    float* m_row = m->data() + static_cast<size_t>(i) * n;
    AxpyRow(m_row, row.data(), 1.0f, n);
  }
}

void AccumulateRowSumsInto(Tensor* row_sum, const Tensor& m) {
  VARUNA_CHECK_EQ(m.shape().size(), 2u);
  VARUNA_CHECK_EQ(row_sum->size(), m.dim(1));
  const int n = m.dim(1);
  for (int i = 0; i < m.dim(0); ++i) {
    AxpyRow(row_sum->data(), m.data() + static_cast<size_t>(i) * n, 1.0f, n);
  }
}

Tensor Hadamard(const Tensor& a, const Tensor& b) {
  VARUNA_CHECK(a.shape() == b.shape());
  Tensor c = a;
  for (int64_t i = 0; i < c.size(); ++i) {
    c[i] *= b[i];
  }
  return c;
}

Tensor RowSoftmax(const Tensor& logits) {
  Tensor out;
  RowSoftmaxInto(&out, logits);
  return out;
}

void RowSoftmaxInto(Tensor* out, const Tensor& logits) {
  VARUNA_CHECK_EQ(logits.shape().size(), 2u);
  const int m = logits.dim(0);
  const int n = logits.dim(1);
  out->ResizeTo({m, n});
  for (int i = 0; i < m; ++i) {
    const float* row = logits.data() + static_cast<size_t>(i) * n;
    float* out_row = out->data() + static_cast<size_t>(i) * n;
    float max_logit = row[0];
    for (int j = 1; j < n; ++j) {
      max_logit = std::max(max_logit, row[j]);
    }
    float sum = 0.0f;
    for (int j = 0; j < n; ++j) {
      out_row[j] = std::exp(row[j] - max_logit);
      sum += out_row[j];
    }
    for (int j = 0; j < n; ++j) {
      out_row[j] /= sum;
    }
  }
}

void CopyRowsInto(Tensor* out, const Tensor& src, int row_begin, int rows) {
  VARUNA_CHECK_EQ(src.shape().size(), 2u);
  VARUNA_CHECK(row_begin >= 0 && rows > 0 && row_begin + rows <= src.dim(0));
  const int n = src.dim(1);
  out->ResizeTo({rows, n});
  const float* from = src.data() + static_cast<size_t>(row_begin) * n;
  std::copy(from, from + static_cast<size_t>(rows) * n, out->data());
}

bool Identical(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return false;
  }
  for (int64_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  VARUNA_CHECK(a.shape() == b.shape());
  float max_diff = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

}  // namespace varuna
