#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace varuna {
namespace {

int64_t NumElements(const std::vector<int>& shape) {
  int64_t n = 1;
  for (const int d : shape) {
    VARUNA_CHECK_GT(d, 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(NumElements(shape_)), 0.0f);
}

Tensor Tensor::Zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Randn(std::vector<int> shape, Rng* rng, float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Gaussian(0.0, stddev));
  }
  return t;
}

float& Tensor::at(int row, int col) {
  VARUNA_CHECK_EQ(shape_.size(), 2u);
  VARUNA_CHECK(row >= 0 && row < shape_[0] && col >= 0 && col < shape_[1]);
  return data_[static_cast<size_t>(row) * shape_[1] + static_cast<size_t>(col)];
}

float Tensor::at(int row, int col) const { return const_cast<Tensor*>(this)->at(row, col); }

void Tensor::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::AddInPlace(const Tensor& other) {
  VARUNA_CHECK(shape_ == other.shape_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  VARUNA_CHECK(shape_ == other.shape_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Tensor::Scale(float alpha) {
  for (float& x : data_) {
    x *= alpha;
  }
}

double Tensor::SquaredNorm() const {
  double sum = 0.0;
  for (const float x : data_) {
    sum += static_cast<double>(x) * x;
  }
  return sum;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  VARUNA_CHECK_EQ(a.shape().size(), 2u);
  VARUNA_CHECK_EQ(b.shape().size(), 2u);
  VARUNA_CHECK_EQ(a.dim(1), b.dim(0));
  const int m = a.dim(0);
  const int k = a.dim(1);
  const int n = b.dim(1);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float aip = a.data()[static_cast<size_t>(i) * k + p];
      if (aip == 0.0f) {
        continue;
      }
      const float* b_row = b.data() + static_cast<size_t>(p) * n;
      float* c_row = c.data() + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        c_row[j] += aip * b_row[j];
      }
    }
  }
  return c;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  VARUNA_CHECK_EQ(a.dim(1), b.dim(1));
  const int m = a.dim(0);
  const int k = a.dim(1);
  const int n = b.dim(0);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const float* a_row = a.data() + static_cast<size_t>(i) * k;
      const float* b_row = b.data() + static_cast<size_t>(j) * k;
      float sum = 0.0f;
      for (int p = 0; p < k; ++p) {
        sum += a_row[p] * b_row[p];
      }
      c.data()[static_cast<size_t>(i) * n + j] = sum;
    }
  }
  return c;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  VARUNA_CHECK_EQ(a.dim(0), b.dim(0));
  const int k = a.dim(0);
  const int m = a.dim(1);
  const int n = b.dim(1);
  Tensor c({m, n});
  for (int p = 0; p < k; ++p) {
    const float* a_row = a.data() + static_cast<size_t>(p) * m;
    const float* b_row = b.data() + static_cast<size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float api = a_row[i];
      if (api == 0.0f) {
        continue;
      }
      float* c_row = c.data() + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        c_row[j] += api * b_row[j];
      }
    }
  }
  return c;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  VARUNA_CHECK(a.shape() == b.shape());
  Tensor c = a;
  c.AddInPlace(b);
  return c;
}

Tensor AddRowVector(const Tensor& a, const Tensor& row) {
  VARUNA_CHECK_EQ(a.shape().size(), 2u);
  VARUNA_CHECK_EQ(row.size(), a.dim(1));
  Tensor c = a;
  const int n = a.dim(1);
  for (int i = 0; i < a.dim(0); ++i) {
    for (int j = 0; j < n; ++j) {
      c.data()[static_cast<size_t>(i) * n + j] += row[j];
    }
  }
  return c;
}

Tensor Hadamard(const Tensor& a, const Tensor& b) {
  VARUNA_CHECK(a.shape() == b.shape());
  Tensor c = a;
  for (int64_t i = 0; i < c.size(); ++i) {
    c[i] *= b[i];
  }
  return c;
}

Tensor RowSoftmax(const Tensor& logits) {
  VARUNA_CHECK_EQ(logits.shape().size(), 2u);
  const int m = logits.dim(0);
  const int n = logits.dim(1);
  Tensor out({m, n});
  for (int i = 0; i < m; ++i) {
    const float* row = logits.data() + static_cast<size_t>(i) * n;
    float* out_row = out.data() + static_cast<size_t>(i) * n;
    float max_logit = row[0];
    for (int j = 1; j < n; ++j) {
      max_logit = std::max(max_logit, row[j]);
    }
    float sum = 0.0f;
    for (int j = 0; j < n; ++j) {
      out_row[j] = std::exp(row[j] - max_logit);
      sum += out_row[j];
    }
    for (int j = 0; j < n; ++j) {
      out_row[j] /= sum;
    }
  }
  return out;
}

bool Identical(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return false;
  }
  for (int64_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  VARUNA_CHECK(a.shape() == b.shape());
  float max_diff = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

}  // namespace varuna
