// Minimal dense float tensor for the convergence experiments (§7.3, Fig. 9,
// Fig. 10). Deliberately small: row-major float32, shape-checked ops, no
// broadcasting magic — enough to build and train partitioned MLP-block
// models with exact, reproducible numerics.
#ifndef SRC_TENSOR_TENSOR_H_
#define SRC_TENSOR_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace varuna {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);

  static Tensor Zeros(std::vector<int> shape);
  // Gaussian init with the given standard deviation.
  static Tensor Randn(std::vector<int> shape, Rng* rng, float stddev);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int axis) const { return shape_[static_cast<size_t>(axis)]; }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int row, int col);
  float at(int row, int col) const;
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  // Elementwise in-place updates.
  void Fill(float value);
  void AddInPlace(const Tensor& other);          // this += other
  void Axpy(float alpha, const Tensor& other);   // this += alpha * other
  void Scale(float alpha);

  // Sum of squared elements (for global-norm style reductions).
  double SquaredNorm() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

// C = A([m,k]) * B([k,n]).
Tensor MatMul(const Tensor& a, const Tensor& b);
// C = A([m,k]) * B^T([n,k]).
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);
// C = A^T([k,m]) * B([k,n]).
Tensor MatMulTransposeA(const Tensor& a, const Tensor& b);

Tensor Add(const Tensor& a, const Tensor& b);
// Adds a [n] row vector to every row of a [m,n] matrix.
Tensor AddRowVector(const Tensor& a, const Tensor& row);
Tensor Hadamard(const Tensor& a, const Tensor& b);

// Row-wise softmax of a [m,n] matrix.
Tensor RowSoftmax(const Tensor& logits);

// True when shapes and every element match exactly.
bool Identical(const Tensor& a, const Tensor& b);
// Max |a-b| over elements; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace varuna

#endif  // SRC_TENSOR_TENSOR_H_
