// Minimal dense float tensor for the convergence experiments (§7.3, Fig. 9,
// Fig. 10). Deliberately small: row-major float32, shape-checked ops, no
// broadcasting magic — enough to build and train partitioned MLP-block
// models with exact, reproducible numerics.
//
// Two kernel tiers back the GEMM entry points:
//   * the seed kernels (MatMul*Naive) — straightforward triple loops, kept as
//     the golden reference and the perf baseline;
//   * cache-blocked, B-packed kernels (the default) that tile the M/N
//     dimensions while keeping every output element's k-accumulation order
//     exactly the seed's (ascending p, float32 adds, zero-skip preserved), so
//     blocked results are bit-identical to naive results.
// The *Into variants write into an explicit output tensor whose buffer is
// reused whenever capacity allows — the zero-allocation training hot path.
#ifndef SRC_TENSOR_TENSOR_H_
#define SRC_TENSOR_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace varuna {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);

  static Tensor Zeros(std::vector<int> shape);
  // Gaussian init with the given standard deviation.
  static Tensor Randn(std::vector<int> shape, Rng* rng, float stddev);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int axis) const { return shape_[static_cast<size_t>(axis)]; }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }
  // Heap capacity of the element buffer (for arena best-fit bookkeeping).
  int64_t capacity() const { return static_cast<int64_t>(data_.capacity()); }

  // Reshapes in place, reusing the existing heap buffer whenever its capacity
  // allows. Element contents are unspecified afterwards (callers overwrite).
  void ResizeTo(const std::vector<int>& shape);

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int row, int col);
  float at(int row, int col) const;
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  // Elementwise in-place updates.
  void Fill(float value);
  void AddInPlace(const Tensor& other);          // this += other
  void Axpy(float alpha, const Tensor& other);   // this += alpha * other
  void Scale(float alpha);

  // Sum of squared elements (for global-norm style reductions).
  double SquaredNorm() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

// Kernel tier used by the MatMul* entry points. kBlocked is the default; the
// switch exists so benchmarks and golden tests can drive the whole trainer
// through the seed kernels. Not thread-safe: flip only from single-threaded
// setup code, never while pool workers are running.
enum class GemmKernel { kBlocked, kNaive };
void SetGemmKernel(GemmKernel kernel);
GemmKernel GetGemmKernel();

// Explicit-output GEMM variants. `out` must not alias an operand; it is
// resized (buffer reused when capacity allows) and fully overwritten.
// C = A([m,k]) * B([k,n]).
void MatMulInto(Tensor* out, const Tensor& a, const Tensor& b);
// C = A([m,k]) * B^T([n,k]).
void MatMulTransposeBInto(Tensor* out, const Tensor& a, const Tensor& b);
// C = A^T([k,m]) * B([k,n]).
void MatMulTransposeAInto(Tensor* out, const Tensor& a, const Tensor& b);

// By-value wrappers over the *Into kernels.
Tensor MatMul(const Tensor& a, const Tensor& b);
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);
Tensor MatMulTransposeA(const Tensor& a, const Tensor& b);

// The seed kernels, always naive regardless of SetGemmKernel — the golden
// reference the blocked kernels are asserted bit-identical against.
Tensor MatMulNaive(const Tensor& a, const Tensor& b);
Tensor MatMulTransposeBNaive(const Tensor& a, const Tensor& b);
Tensor MatMulTransposeANaive(const Tensor& a, const Tensor& b);

Tensor Add(const Tensor& a, const Tensor& b);
// out = a + b elementwise; out may alias a or b.
void AddInto(Tensor* out, const Tensor& a, const Tensor& b);
// Adds a [n] row vector to every row of a [m,n] matrix.
Tensor AddRowVector(const Tensor& a, const Tensor& row);
// m += row broadcast over rows (the in-place bias add of the hot path).
void AddRowVectorInPlace(Tensor* m, const Tensor& row);
// row_sum([n]) += column sums of m([r,n]), accumulating row by row in
// ascending row order (the bias-gradient reduction of the hot path).
void AccumulateRowSumsInto(Tensor* row_sum, const Tensor& m);
Tensor Hadamard(const Tensor& a, const Tensor& b);

// Row-wise softmax of a [m,n] matrix.
Tensor RowSoftmax(const Tensor& logits);
// Explicit-output row softmax; out may alias logits.
void RowSoftmaxInto(Tensor* out, const Tensor& logits);

// Copies rows [row_begin, row_begin + rows) of src ([R,C]) into out ([rows,C]),
// reusing out's buffer — the view-based micro-batch split building block.
void CopyRowsInto(Tensor* out, const Tensor& src, int row_begin, int rows);

// True when shapes and every element match exactly.
bool Identical(const Tensor& a, const Tensor& b);
// Max |a-b| over elements; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace varuna

#endif  // SRC_TENSOR_TENSOR_H_
