#include "src/tensor/tensor_arena.h"

#include "src/common/check.h"

namespace varuna {
namespace {

int64_t NumElements(const std::vector<int>& shape) {
  int64_t n = 1;
  for (const int d : shape) {
    VARUNA_CHECK_GT(d, 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor* TensorArena::Acquire(const std::vector<int>& shape) {
  const int64_t needed = NumElements(shape);
  // Best fit: the free slot with the smallest capacity that still holds the
  // request, so big buffers stay available for big requests.
  Slot* best = nullptr;
  Slot* largest_free = nullptr;
  for (Slot& slot : slots_) {
    if (slot.in_use) {
      continue;
    }
    if (largest_free == nullptr || slot.tensor->capacity() > largest_free->tensor->capacity()) {
      largest_free = &slot;
    }
    if (slot.tensor->capacity() >= needed &&
        (best == nullptr || slot.tensor->capacity() < best->tensor->capacity())) {
      best = &slot;
    }
  }
  if (best == nullptr) {
    if (largest_free != nullptr) {
      // Grow an existing free slot rather than piling up new ones.
      best = largest_free;
    } else {
      slots_.push_back(Slot{std::make_unique<Tensor>(), false});
      best = &slots_.back();
    }
    ++heap_allocations_;
  }
  best->tensor->ResizeTo(shape);
  best->in_use = true;
  ++live_count_;
  return best->tensor.get();
}

void TensorArena::Release(Tensor* tensor) {
  for (Slot& slot : slots_) {
    if (slot.tensor.get() == tensor) {
      VARUNA_CHECK(slot.in_use) << "TensorArena::Release of a slot not in use";
      slot.in_use = false;
      --live_count_;
      return;
    }
  }
  VARUNA_CHECK(false) << "TensorArena::Release of a tensor this arena does not own";
}

void TensorArena::ReleaseAll() {
  for (Slot& slot : slots_) {
    slot.in_use = false;
  }
  live_count_ = 0;
}

}  // namespace varuna
