// Reusable tensor slots for the zero-allocation training hot path. A trainer
// (or pool worker) owns one arena; layers acquire within-call scratch from it
// and release before returning, and trainers park longer-lived buffers
// (per-micro-batch gradient slots) in it across steps. Slots keep their heap
// buffers when released, so once every shape in the step has been seen, the
// arena stops touching the allocator — heap_allocations() is the counter the
// zero-alloc tests assert stays flat after warmup.
//
// Not thread-safe by design: under the deterministic pool, each worker uses
// its own arena (sharing one would serialize or race the workers).
#ifndef SRC_TENSOR_TENSOR_ARENA_H_
#define SRC_TENSOR_TENSOR_ARENA_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/tensor/tensor.h"

namespace varuna {

class TensorArena {
 public:
  TensorArena() = default;
  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;
  // Moving is safe: slots are held through unique_ptr, so leased Tensor*
  // remain valid across a move of the arena itself.
  TensorArena(TensorArena&&) = default;
  TensorArena& operator=(TensorArena&&) = default;

  // Returns a tensor resized to `shape` (element contents unspecified), owned
  // by the arena and leased to the caller until Release. Reuses the free slot
  // with the smallest sufficient capacity; only when no free slot fits does it
  // grow one (or create one), bumping heap_allocations().
  Tensor* Acquire(const std::vector<int>& shape);
  // Returns a leased tensor to the free pool. The buffer is kept.
  void Release(Tensor* tensor);
  // Marks every slot free (buffers kept). For error-path cleanup.
  void ReleaseAll();

  int slot_count() const { return static_cast<int>(slots_.size()); }
  int live_count() const { return live_count_; }
  // Number of element-buffer heap allocations (slot creations and capacity
  // growths) performed so far. Flat across steps == zero-alloc steady state.
  int64_t heap_allocations() const { return heap_allocations_; }

 private:
  struct Slot {
    // unique_ptr so Tensor* leases stay stable as slots_ grows.
    std::unique_ptr<Tensor> tensor;
    bool in_use = false;
  };

  std::vector<Slot> slots_;
  int64_t heap_allocations_ = 0;
  int live_count_ = 0;
};

}  // namespace varuna

#endif  // SRC_TENSOR_TENSOR_ARENA_H_
