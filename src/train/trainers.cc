#include "src/train/trainers.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace varuna {

std::vector<Batch> SplitIntoMicrobatches(const Batch& batch, int microbatch_size) {
  VARUNA_CHECK_GE(microbatch_size, 1);
  const int total = batch.inputs.dim(0);
  VARUNA_CHECK_EQ(total % microbatch_size, 0)
      << "batch of " << total << " not divisible into micro-batches of " << microbatch_size;
  const int vocab = batch.inputs.dim(1);
  std::vector<Batch> microbatches;
  for (int begin = 0; begin < total; begin += microbatch_size) {
    Batch microbatch;
    microbatch.inputs = Tensor({microbatch_size, vocab});
    for (int i = 0; i < microbatch_size; ++i) {
      for (int j = 0; j < vocab; ++j) {
        microbatch.inputs.at(i, j) = batch.inputs.at(begin + i, j);
      }
      microbatch.targets.push_back(batch.targets[static_cast<size_t>(begin + i)]);
    }
    microbatches.push_back(std::move(microbatch));
  }
  return microbatches;
}

void SplitIntoMicrobatchViews(int total_rows, int microbatch_size,
                              std::vector<MicrobatchView>* views) {
  VARUNA_CHECK_GE(microbatch_size, 1);
  VARUNA_CHECK_EQ(total_rows % microbatch_size, 0)
      << "batch of " << total_rows << " not divisible into micro-batches of " << microbatch_size;
  views->clear();
  for (int begin = 0; begin < total_rows; begin += microbatch_size) {
    views->push_back(MicrobatchView{begin, microbatch_size});
  }
}

void CopyMicrobatchInto(const Batch& batch, const MicrobatchView& view, Batch* out) {
  CopyRowsInto(&out->inputs, batch.inputs, view.row_begin, view.rows);
  const auto begin = batch.targets.begin() + view.row_begin;
  out->targets.assign(begin, begin + view.rows);
}

ParameterCheckpoint SnapshotParameters(const std::vector<Tensor*>& params,
                                       const Optimizer& optimizer) {
  ParameterCheckpoint checkpoint;
  checkpoint.parameters.reserve(params.size());
  for (const Tensor* param : params) {
    checkpoint.parameters.push_back(*param);
  }
  checkpoint.optimizer_state = optimizer.ExportState();
  return checkpoint;
}

void RestoreParameters(const ParameterCheckpoint& checkpoint,
                       const std::vector<Tensor*>& params, Optimizer* optimizer) {
  VARUNA_CHECK_EQ(checkpoint.parameters.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    VARUNA_CHECK(checkpoint.parameters[i].shape() == params[i]->shape());
    *params[i] = checkpoint.parameters[i];
  }
  optimizer->ImportState(checkpoint.optimizer_state);
}

// --- ReferenceTrainer --------------------------------------------------------

ReferenceTrainer::ReferenceTrainer(std::unique_ptr<Sequential> model, MathOptions options)
    : model_(std::move(model)), options_(options) {
  model_params_ = model_->Parameters();
  model_grads_ = model_->Gradients();
}

double ReferenceTrainer::ForwardBackward(const Batch& batch, int microbatch_size) {
  const std::vector<Batch> microbatches = SplitIntoMicrobatches(batch, microbatch_size);
  const float scale = 1.0f / static_cast<float>(microbatches.size());
  double total_loss = 0.0;
  SoftmaxCrossEntropy loss;
  for (const Batch& microbatch : microbatches) {
    const Tensor logits = model_->Forward(microbatch.inputs);
    total_loss += loss.Loss(logits, microbatch.targets);
    Tensor grad = loss.Backward();
    grad.Scale(scale);  // Full-batch mean across micro-batches.
    model_->Backward(grad);
  }
  return total_loss / static_cast<double>(microbatches.size());
}

void ReferenceTrainer::EnsureWorkers() {
  if (!workers_.empty()) {
    return;
  }
  const int num_workers = std::max(1, options_.math_threads);
  if (num_workers == 1) {
    // Serial fast path: one scratch set, no replica — TrainStep runs the
    // canonical model inline and accumulates gradients directly, skipping the
    // per-step parameter copy, slot copies and merge the pooled path needs.
    workers_.push_back(std::make_unique<Worker>());
    return;
  }
  pool_ = std::make_unique<ThreadPool>(num_workers);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->replica = model_->CloneStack();
    worker->params = worker->replica->Parameters();
    worker->grads = worker->replica->Gradients();
    workers_.push_back(std::move(worker));
  }
  // One micro-batch, end to end, on one worker's private state. A pure
  // function of `item` (worker state is fully overwritten), so pooled
  // execution of distinct items is race-free and order-free; the slot write
  // plus ascending merge makes the result bit-identical to a serial loop.
  run_item_ = [this](int item, int worker_index) {
    Worker& w = *workers_[static_cast<size_t>(worker_index)];
    const size_t m = static_cast<size_t>(item);
    CopyMicrobatchInto(*batch_, views_[m], &w.microbatch);
    for (Tensor* grad : w.grads) {
      grad->Fill(0.0f);
    }
    w.replica->ForwardInto(w.microbatch.inputs, &w.logits, &w.arena);
    losses_[m] = w.loss.Loss(w.logits, w.microbatch.targets);
    w.loss.BackwardInto(&w.loss_grad);
    w.loss_grad.Scale(scale_);  // Full-batch mean across micro-batches.
    w.replica->BackwardInto(w.loss_grad, &w.input_grad, &w.arena);
    for (size_t g = 0; g < w.grads.size(); ++g) {
      *grad_slots_[m][g] = *w.grads[g];
    }
  };
}

void ReferenceTrainer::EnsureGradSlots(int num_microbatches) {
  if (static_cast<int>(grad_slots_.size()) == num_microbatches) {
    return;
  }
  for (auto& slots : grad_slots_) {
    for (Tensor* slot : slots) {
      slot_arena_.Release(slot);
    }
  }
  grad_slots_.clear();
  grad_slots_.resize(static_cast<size_t>(num_microbatches));
  for (auto& slots : grad_slots_) {
    slots.reserve(model_grads_.size());
    for (Tensor* grad : model_grads_) {
      slots.push_back(slot_arena_.Acquire(grad->shape()));
    }
  }
}

double ReferenceTrainer::TrainStep(const Batch& batch, int microbatch_size) {
  SplitIntoMicrobatchViews(batch.inputs.dim(0), microbatch_size, &views_);
  const int num_microbatches = static_cast<int>(views_.size());
  scale_ = 1.0f / static_cast<float>(num_microbatches);
  EnsureWorkers();
  if (pool_ == nullptr) {
    // Serial: same loop as ForwardBackward (ascending micro-batches,
    // gradients accumulated straight into the model — identical float order),
    // on view copies, member buffers and arena scratch instead of fresh heap.
    Worker& w = *workers_.front();
    double total_loss = 0.0;
    for (const MicrobatchView& view : views_) {
      CopyMicrobatchInto(batch, view, &w.microbatch);
      model_->ForwardInto(w.microbatch.inputs, &w.logits, &w.arena);
      total_loss += w.loss.Loss(w.logits, w.microbatch.targets);
      w.loss.BackwardInto(&w.loss_grad);
      w.loss_grad.Scale(scale_);  // Full-batch mean across micro-batches.
      model_->BackwardInto(w.loss_grad, &w.input_grad, &w.arena);
    }
    return total_loss / static_cast<double>(num_microbatches);
  }
  EnsureGradSlots(num_microbatches);
  // Replicas start every step from the canonical parameters (copy-assign into
  // existing buffers — no allocation).
  for (auto& worker : workers_) {
    for (size_t i = 0; i < worker->params.size(); ++i) {
      *worker->params[i] = *model_params_[i];
    }
  }
  losses_.assign(static_cast<size_t>(num_microbatches), 0.0);
  batch_ = &batch;
  if (!workers_warmed_) {
    // The pool hands items to workers dynamically, so a worker might not see
    // its first item (and warm its arena) until many steps in. Run one item
    // on every worker serially so all arenas allocate now; the pooled pass
    // below recomputes item 0 and overwrites its slot.
    for (size_t w = 0; w < workers_.size(); ++w) {
      run_item_(0, static_cast<int>(w));
    }
    workers_warmed_ = true;
  }
  pool_->ParallelFor(num_microbatches, run_item_);
  batch_ = nullptr;
  // Merge in ascending micro-batch order — the order ForwardBackward
  // accumulates in, so the float sums agree exactly.
  double total_loss = 0.0;
  for (int m = 0; m < num_microbatches; ++m) {
    total_loss += losses_[static_cast<size_t>(m)];
    for (size_t g = 0; g < model_grads_.size(); ++g) {
      model_grads_[g]->AddInPlace(*grad_slots_[static_cast<size_t>(m)][g]);
    }
  }
  return total_loss / static_cast<double>(num_microbatches);
}

int64_t ReferenceTrainer::heap_allocations() const {
  int64_t total = slot_arena_.heap_allocations();
  for (const auto& worker : workers_) {
    total += worker->arena.heap_allocations();
  }
  return total;
}

// --- SyncPipelineTrainer -----------------------------------------------------

SyncPipelineTrainer::SyncPipelineTrainer(std::unique_ptr<Sequential> model,
                                         std::vector<int> stage_begin, MathOptions options)
    : options_(options) {
  auto split = Sequential::Split(std::move(model), stage_begin);
  stages_.reserve(split.size());
  for (auto& stage : split) {
    stages_.emplace_back();
    stages_.back().stage = std::move(stage);
  }
}

std::vector<Tensor*> SyncPipelineTrainer::Parameters() {
  std::vector<Tensor*> params;
  for (auto& state : stages_) {
    for (Tensor* p : state.stage->Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

std::vector<Tensor*> SyncPipelineTrainer::Gradients() {
  std::vector<Tensor*> grads;
  for (auto& state : stages_) {
    for (Tensor* g : state.stage->Gradients()) {
      grads.push_back(g);
    }
  }
  return grads;
}

void SyncPipelineTrainer::EnsurePool() {
  if (pool_ != nullptr) {
    return;
  }
  pool_ = std::make_unique<ThreadPool>(std::max(1, options_.math_threads));
  exec_op_ = [this](int index, int) { ExecuteOp(ready_[static_cast<size_t>(index)]); };
}

bool SyncPipelineTrainer::OpReady(int s) const {
  const StageState& state = stages_[static_cast<size_t>(s)];
  const auto& ops = schedule_.ops[static_cast<size_t>(s)];
  if (state.cursor >= ops.size()) {
    return false;
  }
  const PipeOp& op = ops[state.cursor];
  const size_t m = static_cast<size_t>(op.microbatch);
  switch (op.type) {
    case PipeOpType::kForward:
      return has_input_[static_cast<size_t>(s)][m] != 0;
    case PipeOpType::kRecompute:
      return true;  // The stashed input is resident by schedule construction.
    case PipeOpType::kBackward:
      // The last stage feeds itself (loss gradient); others wait downstream.
      return s == depth() - 1 || has_grad_[static_cast<size_t>(s)][m] != 0;
  }
  return false;
}

void SyncPipelineTrainer::ExecuteOp(int s) {
  StageState& state = stages_[static_cast<size_t>(s)];
  Sequential& stage = *state.stage;
  const bool last = s == depth() - 1;
  const PipeOp& op = schedule_.ops[static_cast<size_t>(s)][state.cursor];
  const size_t m = static_cast<size_t>(op.microbatch);
  if (op.type == PipeOpType::kForward) {
    ++state.stash_count;
    state.peak_stash = std::max(state.peak_stash, state.stash_count);
    Tensor* out = last ? &logits_[m] : &stash_[static_cast<size_t>(s) + 1][m];
    stage.ForwardInto(stash_[static_cast<size_t>(s)][m], out, &state.arena);
    state.live_microbatch = op.microbatch;
    if (!last) {
      has_input_[static_cast<size_t>(s) + 1][m] = 1;
    }
  } else if (op.type == PipeOpType::kRecompute) {
    // Restore the stage's internal activations straight from the stashed
    // input — gradient checkpointing, exactly as on the GPU. The stash is
    // read in place; nothing is copied.
    stage.ForwardInto(stash_[static_cast<size_t>(s)][m], &state.recompute_out, &state.arena);
    state.live_microbatch = op.microbatch;
  } else {
    const Tensor* grad = nullptr;
    if (last) {
      VARUNA_CHECK_EQ(state.live_microbatch, op.microbatch)
          << "last stage must run backward on live activations (no recompute)";
      const MicrobatchView& view = views_[m];
      losses_[m] = loss_fns_[m].Loss(logits_[m], batch_->targets.data() + view.row_begin,
                                     view.rows);
      loss_fns_[m].BackwardInto(&state.loss_grad);
      state.loss_grad.Scale(scale_);
      grad = &state.loss_grad;
    } else {
      VARUNA_CHECK(has_grad_[static_cast<size_t>(s)][m] != 0);
      VARUNA_CHECK_EQ(state.live_microbatch, op.microbatch)
          << "recompute must immediately precede backward (rule 2)";
      grad = &grad_in_[static_cast<size_t>(s)][m];
    }
    Tensor* upstream =
        s > 0 ? &grad_in_[static_cast<size_t>(s) - 1][m] : &state.input_grad;
    stage.BackwardInto(*grad, upstream, &state.arena);
    state.live_microbatch = -1;
    --state.stash_count;  // Slot logically freed; the buffer is kept for reuse.
    if (s > 0) {
      has_grad_[static_cast<size_t>(s) - 1][m] = 1;
    }
  }
  ++state.cursor;
}

double SyncPipelineTrainer::ForwardBackward(const Batch& batch, int microbatch_size) {
  SplitIntoMicrobatchViews(batch.inputs.dim(0), microbatch_size, &views_);
  const int num_microbatches = static_cast<int>(views_.size());
  const int num_stages = depth();
  schedule_ = GenerateSchedule(ScheduleKind::kVaruna, num_stages, num_microbatches);
  scale_ = 1.0f / static_cast<float>(num_microbatches);
  batch_ = &batch;

  // Per-(stage, microbatch) grids, resized in place and reused across
  // mini-batches. stash_[s] rows keep their element buffers, so recompute and
  // the next mini-batch both run without reallocating.
  stash_.resize(static_cast<size_t>(num_stages));
  grad_in_.resize(static_cast<size_t>(num_stages));
  has_input_.resize(static_cast<size_t>(num_stages));
  has_grad_.resize(static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    stash_[static_cast<size_t>(s)].resize(static_cast<size_t>(num_microbatches));
    grad_in_[static_cast<size_t>(s)].resize(static_cast<size_t>(num_microbatches));
    has_input_[static_cast<size_t>(s)].assign(static_cast<size_t>(num_microbatches), 0);
    has_grad_[static_cast<size_t>(s)].assign(static_cast<size_t>(num_microbatches), 0);
  }
  logits_.resize(static_cast<size_t>(num_microbatches));
  loss_fns_.resize(static_cast<size_t>(num_microbatches));
  losses_.assign(static_cast<size_t>(num_microbatches), 0.0);
  for (int m = 0; m < num_microbatches; ++m) {
    const MicrobatchView& view = views_[static_cast<size_t>(m)];
    CopyRowsInto(&stash_[0][static_cast<size_t>(m)], batch.inputs, view.row_begin, view.rows);
    has_input_[0][static_cast<size_t>(m)] = 1;
  }
  for (auto& state : stages_) {
    state.cursor = 0;
    state.live_microbatch = -1;
    state.stash_count = 0;
    state.peak_stash = 0;
  }

  // Wavefront execution: between waves, collect the (at most one) ready op of
  // every stage; run the wave through the pool. Distinct stages touch
  // disjoint state — stage s writes only its own scratch, stash_[s+1][m] and
  // grad_in_[s-1][m] cells no other stage touches this wave — and each
  // stage's ops still run in schedule order, so per-layer gradient
  // accumulation order (the only order float math depends on) is exactly the
  // serial trainer's. ThreadPool(1) degenerates to the serial loop.
  EnsurePool();
  while (true) {
    ready_.clear();
    for (int s = 0; s < num_stages; ++s) {
      if (OpReady(s)) {
        ready_.push_back(s);
      }
    }
    if (ready_.empty()) {
      break;
    }
    pool_->ParallelFor(static_cast<int>(ready_.size()), exec_op_);
  }
  batch_ = nullptr;
  peak_stash_slots_ = 0;
  for (int s = 0; s < num_stages; ++s) {
    VARUNA_CHECK_EQ(stages_[static_cast<size_t>(s)].cursor,
                    schedule_.ops[static_cast<size_t>(s)].size())
        << "pipeline trainer deadlock at stage " << s;
    peak_stash_slots_ = std::max(peak_stash_slots_, stages_[static_cast<size_t>(s)].peak_stash);
  }
  // Ascending micro-batch order — matches the last stage's backward op order
  // and the reference trainer's accumulation.
  double total_loss = 0.0;
  for (int m = 0; m < num_microbatches; ++m) {
    total_loss += losses_[static_cast<size_t>(m)];
  }
  return total_loss / static_cast<double>(num_microbatches);
}

double SyncPipelineTrainer::ClipByGlobalNorm(float max_norm, bool sync_across_stages) {
  std::vector<double> stage_norms_sq;
  for (auto& state : stages_) {
    double sum = 0.0;
    for (Tensor* grad : state.stage->Gradients()) {
      sum += grad->SquaredNorm();
    }
    stage_norms_sq.push_back(sum);
  }
  if (sync_across_stages) {
    // The allreduce the tracer mandates: every stage sees the global norm.
    double total = 0.0;
    for (const double sq : stage_norms_sq) {
      total += sq;
    }
    const double norm = std::sqrt(total);
    if (norm > max_norm) {
      const float factor = static_cast<float>(max_norm / norm);
      for (auto& state : stages_) {
        for (Tensor* grad : state.stage->Gradients()) {
          grad->Scale(factor);
        }
      }
    }
    return norm;
  }
  // Buggy unsynchronized variant: each stage clips against its local norm.
  double max_seen = 0.0;
  for (size_t s = 0; s < stages_.size(); ++s) {
    const double norm = std::sqrt(stage_norms_sq[s]);
    max_seen = std::max(max_seen, norm);
    if (norm > max_norm) {
      const float factor = static_cast<float>(max_norm / norm);
      for (Tensor* grad : stages_[s].stage->Gradients()) {
        grad->Scale(factor);
      }
    }
  }
  return max_seen;
}

Tensor SyncPipelineTrainer::Forward(const Tensor& inputs) {
  Tensor x = inputs;
  for (auto& state : stages_) {
    x = state.stage->Forward(x);
  }
  return x;
}

// --- StaleGradientTrainer ------------------------------------------------------

StaleGradientTrainer::StaleGradientTrainer(std::unique_ptr<Sequential> model, int staleness,
                                           float learning_rate, float momentum,
                                           MathOptions options)
    : trainer_(std::move(model), options), staleness_(staleness) {
  VARUNA_CHECK_GE(staleness, 0);
  optimizer_ = std::make_unique<SgdOptimizer>(trainer_.Parameters(), trainer_.Gradients(),
                                              learning_rate, momentum);
}

double StaleGradientTrainer::Step(const Batch& batch) {
  optimizer_->ZeroGradients();
  // The whole batch as one micro-batch: scale is exactly 1, so the gradient
  // matches the seed single-forward semantics bit for bit, now on the
  // arena-backed fast path.
  const double value = trainer_.TrainStep(batch, batch.inputs.dim(0));

  // Snapshot the fresh gradient; apply the one computed `staleness_` steps
  // ago (in a P-deep pipeline, stage 0's gradient is that old by the time the
  // asynchronous update reaches it).
  std::vector<Tensor> snapshot;
  for (Tensor* grad : trainer_.Gradients()) {
    snapshot.push_back(*grad);
  }
  pending_.push_back(std::move(snapshot));
  if (static_cast<int>(pending_.size()) > staleness_) {
    const std::vector<Tensor> delayed = std::move(pending_.front());
    pending_.pop_front();
    std::vector<Tensor*> grads = trainer_.Gradients();
    VARUNA_CHECK_EQ(grads.size(), delayed.size());
    for (size_t i = 0; i < grads.size(); ++i) {
      *grads[i] = delayed[i];
    }
    optimizer_->Step();
  }
  return value;
}

}  // namespace varuna
