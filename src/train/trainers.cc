#include "src/train/trainers.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace varuna {

std::vector<Batch> SplitIntoMicrobatches(const Batch& batch, int microbatch_size) {
  VARUNA_CHECK_GE(microbatch_size, 1);
  const int total = batch.inputs.dim(0);
  VARUNA_CHECK_EQ(total % microbatch_size, 0)
      << "batch of " << total << " not divisible into micro-batches of " << microbatch_size;
  const int vocab = batch.inputs.dim(1);
  std::vector<Batch> microbatches;
  for (int begin = 0; begin < total; begin += microbatch_size) {
    Batch microbatch;
    microbatch.inputs = Tensor({microbatch_size, vocab});
    for (int i = 0; i < microbatch_size; ++i) {
      for (int j = 0; j < vocab; ++j) {
        microbatch.inputs.at(i, j) = batch.inputs.at(begin + i, j);
      }
      microbatch.targets.push_back(batch.targets[static_cast<size_t>(begin + i)]);
    }
    microbatches.push_back(std::move(microbatch));
  }
  return microbatches;
}

ParameterCheckpoint SnapshotParameters(const std::vector<Tensor*>& params,
                                       const Optimizer& optimizer) {
  ParameterCheckpoint checkpoint;
  checkpoint.parameters.reserve(params.size());
  for (const Tensor* param : params) {
    checkpoint.parameters.push_back(*param);
  }
  checkpoint.optimizer_state = optimizer.ExportState();
  return checkpoint;
}

void RestoreParameters(const ParameterCheckpoint& checkpoint,
                       const std::vector<Tensor*>& params, Optimizer* optimizer) {
  VARUNA_CHECK_EQ(checkpoint.parameters.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    VARUNA_CHECK(checkpoint.parameters[i].shape() == params[i]->shape());
    *params[i] = checkpoint.parameters[i];
  }
  optimizer->ImportState(checkpoint.optimizer_state);
}

// --- ReferenceTrainer --------------------------------------------------------

ReferenceTrainer::ReferenceTrainer(std::unique_ptr<Sequential> model)
    : model_(std::move(model)) {}

double ReferenceTrainer::ForwardBackward(const Batch& batch, int microbatch_size) {
  const std::vector<Batch> microbatches = SplitIntoMicrobatches(batch, microbatch_size);
  const float scale = 1.0f / static_cast<float>(microbatches.size());
  double total_loss = 0.0;
  SoftmaxCrossEntropy loss;
  for (const Batch& microbatch : microbatches) {
    const Tensor logits = model_->Forward(microbatch.inputs);
    total_loss += loss.Loss(logits, microbatch.targets);
    Tensor grad = loss.Backward();
    grad.Scale(scale);  // Full-batch mean across micro-batches.
    model_->Backward(grad);
  }
  return total_loss / static_cast<double>(microbatches.size());
}

// --- SyncPipelineTrainer -----------------------------------------------------

SyncPipelineTrainer::SyncPipelineTrainer(std::unique_ptr<Sequential> model,
                                         std::vector<int> stage_begin)
    : stages_(Sequential::Split(std::move(model), stage_begin)) {}

std::vector<Tensor*> SyncPipelineTrainer::Parameters() {
  std::vector<Tensor*> params;
  for (auto& stage : stages_) {
    for (Tensor* p : stage->Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

std::vector<Tensor*> SyncPipelineTrainer::Gradients() {
  std::vector<Tensor*> grads;
  for (auto& stage : stages_) {
    for (Tensor* g : stage->Gradients()) {
      grads.push_back(g);
    }
  }
  return grads;
}

double SyncPipelineTrainer::ForwardBackward(const Batch& batch, int microbatch_size) {
  const std::vector<Batch> microbatches = SplitIntoMicrobatches(batch, microbatch_size);
  const int num_microbatches = static_cast<int>(microbatches.size());
  const int num_stages = depth();
  const Schedule schedule =
      GenerateSchedule(ScheduleKind::kVaruna, num_stages, num_microbatches);
  const float scale = 1.0f / static_cast<float>(num_microbatches);

  // Per-(stage, microbatch) buffers. stash = the stage's input activation
  // (kept for recompute); grad = gradient arriving from downstream.
  std::vector<std::vector<Tensor>> stash(static_cast<size_t>(num_stages));
  std::vector<std::vector<bool>> has_input(static_cast<size_t>(num_stages));
  std::vector<std::vector<Tensor>> grad_in(static_cast<size_t>(num_stages));
  std::vector<std::vector<bool>> has_grad(static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    stash[static_cast<size_t>(s)].resize(static_cast<size_t>(num_microbatches));
    has_input[static_cast<size_t>(s)].assign(static_cast<size_t>(num_microbatches), false);
    grad_in[static_cast<size_t>(s)].resize(static_cast<size_t>(num_microbatches));
    has_grad[static_cast<size_t>(s)].assign(static_cast<size_t>(num_microbatches), false);
  }
  for (int m = 0; m < num_microbatches; ++m) {
    stash[0][static_cast<size_t>(m)] = microbatches[static_cast<size_t>(m)].inputs;
    has_input[0][static_cast<size_t>(m)] = true;
  }
  // Which micro-batch's forward state currently lives in each stage's layers.
  std::vector<int> live_state(static_cast<size_t>(num_stages), -1);
  std::vector<int> stash_count(static_cast<size_t>(num_stages), 0);
  std::vector<SoftmaxCrossEntropy> losses(static_cast<size_t>(num_microbatches));
  std::vector<Tensor> last_logits(static_cast<size_t>(num_microbatches));
  double total_loss = 0.0;
  peak_stash_slots_ = 0;

  std::vector<size_t> cursor(static_cast<size_t>(num_stages), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (int s = 0; s < num_stages; ++s) {
      Sequential& stage = *stages_[static_cast<size_t>(s)];
      const bool last = s == num_stages - 1;
      auto& ops = schedule.ops[static_cast<size_t>(s)];
      while (cursor[static_cast<size_t>(s)] < ops.size()) {
        const PipeOp& op = ops[cursor[static_cast<size_t>(s)]];
        const size_t m = static_cast<size_t>(op.microbatch);
        if (op.type == PipeOpType::kForward) {
          if (!has_input[static_cast<size_t>(s)][m]) {
            break;  // Activation not yet produced upstream.
          }
          ++stash_count[static_cast<size_t>(s)];
          peak_stash_slots_ =
              std::max(peak_stash_slots_, stash_count[static_cast<size_t>(s)]);
          const Tensor out = stage.Forward(stash[static_cast<size_t>(s)][m]);
          live_state[static_cast<size_t>(s)] = op.microbatch;
          if (last) {
            last_logits[m] = out;
          } else {
            stash[static_cast<size_t>(s) + 1][m] = out;
            has_input[static_cast<size_t>(s) + 1][m] = true;
          }
        } else if (op.type == PipeOpType::kRecompute) {
          // Restore the stage's internal activations from the stashed input —
          // gradient checkpointing, exactly as on the GPU.
          (void)stage.Forward(stash[static_cast<size_t>(s)][m]);
          live_state[static_cast<size_t>(s)] = op.microbatch;
        } else if (op.type == PipeOpType::kBackward) {
          Tensor grad;
          if (last) {
            VARUNA_CHECK_EQ(live_state[static_cast<size_t>(s)], op.microbatch)
                << "last stage must run backward on live activations (no recompute)";
            total_loss += losses[m].Loss(last_logits[m],
                                         microbatches[m].targets);
            grad = losses[m].Backward();
            grad.Scale(scale);
          } else {
            if (!has_grad[static_cast<size_t>(s)][m]) {
              break;  // Gradient not yet produced downstream.
            }
            VARUNA_CHECK_EQ(live_state[static_cast<size_t>(s)], op.microbatch)
                << "recompute must immediately precede backward (rule 2)";
            grad = std::move(grad_in[static_cast<size_t>(s)][m]);
          }
          Tensor upstream = stage.Backward(grad);
          live_state[static_cast<size_t>(s)] = -1;
          --stash_count[static_cast<size_t>(s)];
          stash[static_cast<size_t>(s)][m] = Tensor();  // Free the stash slot.
          if (s > 0) {
            grad_in[static_cast<size_t>(s) - 1][m] = std::move(upstream);
            has_grad[static_cast<size_t>(s) - 1][m] = true;
          }
        }
        ++cursor[static_cast<size_t>(s)];
        progressed = true;
      }
    }
  }
  for (int s = 0; s < num_stages; ++s) {
    VARUNA_CHECK_EQ(cursor[static_cast<size_t>(s)], schedule.ops[static_cast<size_t>(s)].size())
        << "pipeline trainer deadlock at stage " << s;
  }
  return total_loss / static_cast<double>(num_microbatches);
}

double SyncPipelineTrainer::ClipByGlobalNorm(float max_norm, bool sync_across_stages) {
  std::vector<double> stage_norms_sq;
  for (auto& stage : stages_) {
    double sum = 0.0;
    for (Tensor* grad : stage->Gradients()) {
      sum += grad->SquaredNorm();
    }
    stage_norms_sq.push_back(sum);
  }
  if (sync_across_stages) {
    // The allreduce the tracer mandates: every stage sees the global norm.
    double total = 0.0;
    for (const double sq : stage_norms_sq) {
      total += sq;
    }
    const double norm = std::sqrt(total);
    if (norm > max_norm) {
      const float factor = static_cast<float>(max_norm / norm);
      for (auto& stage : stages_) {
        for (Tensor* grad : stage->Gradients()) {
          grad->Scale(factor);
        }
      }
    }
    return norm;
  }
  // Buggy unsynchronized variant: each stage clips against its local norm.
  double max_seen = 0.0;
  for (size_t s = 0; s < stages_.size(); ++s) {
    const double norm = std::sqrt(stage_norms_sq[s]);
    max_seen = std::max(max_seen, norm);
    if (norm > max_norm) {
      const float factor = static_cast<float>(max_norm / norm);
      for (Tensor* grad : stages_[s]->Gradients()) {
        grad->Scale(factor);
      }
    }
  }
  return max_seen;
}

Tensor SyncPipelineTrainer::Forward(const Tensor& inputs) {
  Tensor x = inputs;
  for (auto& stage : stages_) {
    x = stage->Forward(x);
  }
  return x;
}

// --- StaleGradientTrainer ------------------------------------------------------

StaleGradientTrainer::StaleGradientTrainer(std::unique_ptr<Sequential> model, int staleness,
                                           float learning_rate, float momentum)
    : model_(std::move(model)), staleness_(staleness) {
  VARUNA_CHECK_GE(staleness, 0);
  optimizer_ = std::make_unique<SgdOptimizer>(model_->Parameters(), model_->Gradients(),
                                              learning_rate, momentum);
}

double StaleGradientTrainer::Step(const Batch& batch) {
  optimizer_->ZeroGradients();
  SoftmaxCrossEntropy loss;
  const double value = loss.Loss(model_->Forward(batch.inputs), batch.targets);
  model_->Backward(loss.Backward());

  // Snapshot the fresh gradient; apply the one computed `staleness_` steps
  // ago (in a P-deep pipeline, stage 0's gradient is that old by the time the
  // asynchronous update reaches it).
  std::vector<Tensor> snapshot;
  for (Tensor* grad : model_->Gradients()) {
    snapshot.push_back(*grad);
  }
  pending_.push_back(std::move(snapshot));
  if (static_cast<int>(pending_.size()) > staleness_) {
    const std::vector<Tensor> delayed = std::move(pending_.front());
    pending_.pop_front();
    std::vector<Tensor*> grads = model_->Gradients();
    VARUNA_CHECK_EQ(grads.size(), delayed.size());
    for (size_t i = 0; i < grads.size(); ++i) {
      *grads[i] = delayed[i];
    }
    optimizer_->Step();
  }
  return value;
}

}  // namespace varuna
