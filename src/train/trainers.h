// Trainers that realise the paper's update semantics on real numerics:
//  * ReferenceTrainer      — single-device micro-batched gradient accumulation
//                            (ground truth for sync-SGD).
//  * SyncPipelineTrainer   — executes the *generated Varuna schedule* over a
//                            stage-partitioned model with input stashing and
//                            recompute-before-backward; produces gradients
//                            bit-identical to the reference (the
//                            "correctness-preserving" claim, §4.2).
//  * StaleGradientTrainer  — PipeDream-style asynchronous semantics: the
//                            gradient applied at step t was computed
//                            `staleness` steps earlier (staleness ~ pipeline
//                            depth). Used for the Fig. 10 divergence study.
#ifndef SRC_TRAIN_TRAINERS_H_
#define SRC_TRAIN_TRAINERS_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/nn/layers.h"
#include "src/nn/optimizer.h"
#include "src/nn/synthetic_task.h"
#include "src/pipeline/schedule.h"

namespace varuna {

// Splits `batch` into consecutive micro-batches of `microbatch_size` rows.
std::vector<Batch> SplitIntoMicrobatches(const Batch& batch, int microbatch_size);

// Per-layer checkpoint payload (§4.5): parameter values in model order plus
// optimizer state. Because parameters are checkpointed per layer, the payload
// restores onto a trainer partitioned at a *different* pipeline depth, and
// training continues on the exact same trajectory.
struct ParameterCheckpoint {
  std::vector<Tensor> parameters;
  std::vector<Tensor> optimizer_state;
};

ParameterCheckpoint SnapshotParameters(const std::vector<Tensor*>& params,
                                       const Optimizer& optimizer);
void RestoreParameters(const ParameterCheckpoint& checkpoint,
                       const std::vector<Tensor*>& params, Optimizer* optimizer);

class ReferenceTrainer {
 public:
  explicit ReferenceTrainer(std::unique_ptr<Sequential> model);

  // Forward+backward over the mini-batch in micro-batch accumulation order;
  // gradients are left accumulated (scaled to the full-batch mean).
  // Returns the mean loss.
  double ForwardBackward(const Batch& batch, int microbatch_size);

  Sequential* model() { return model_.get(); }
  std::vector<Tensor*> Parameters() { return model_->Parameters(); }
  std::vector<Tensor*> Gradients() { return model_->Gradients(); }

 private:
  std::unique_ptr<Sequential> model_;
};

class SyncPipelineTrainer {
 public:
  // `stage_begin` has depth+1 entries over the model's layers (cut-points).
  SyncPipelineTrainer(std::unique_ptr<Sequential> model, std::vector<int> stage_begin);

  // Executes one mini-batch following the Varuna schedule's per-stage op
  // order (F/R/B per micro-batch), stashing stage inputs and recomputing
  // before each backward. Gradients accumulate exactly as in the reference.
  double ForwardBackward(const Batch& batch, int microbatch_size);

  int depth() const { return static_cast<int>(stages_.size()); }
  Sequential* stage(int s) { return stages_[static_cast<size_t>(s)].get(); }
  std::vector<Tensor*> Parameters();
  std::vector<Tensor*> Gradients();

  // Peak number of simultaneously stashed stage-input tensors across stages
  // during the last mini-batch (memory-model observability).
  int peak_stash_slots() const { return peak_stash_slots_; }

  // Global-norm gradient clipping (NVLAMB-style cross-partition state,
  // §5.2). With `sync_across_stages` the squared norms are allreduced over
  // the pipeline group before clipping — the tracer-mandated behaviour;
  // without it each stage clips against its local norm (the bug the tracer
  // prevents). Returns the norm used.
  double ClipByGlobalNorm(float max_norm, bool sync_across_stages);

  // Runs inference through all stages (for validation).
  Tensor Forward(const Tensor& inputs);

 private:
  std::vector<std::unique_ptr<Sequential>> stages_;
  int peak_stash_slots_ = 0;
};

class StaleGradientTrainer {
 public:
  // Applies each computed gradient `staleness` optimizer steps late. With
  // staleness == 0 this is plain synchronous SGD.
  StaleGradientTrainer(std::unique_ptr<Sequential> model, int staleness, float learning_rate,
                       float momentum);

  // One optimizer step on one batch; returns the loss at computation time.
  double Step(const Batch& batch);

  Sequential* model() { return model_.get(); }

 private:
  std::unique_ptr<Sequential> model_;
  std::unique_ptr<SgdOptimizer> optimizer_;
  int staleness_;
  // Pending gradients, oldest first; each entry is a snapshot of all grads.
  std::deque<std::vector<Tensor>> pending_;
};

}  // namespace varuna

#endif  // SRC_TRAIN_TRAINERS_H_
