// Trainers that realise the paper's update semantics on real numerics:
//  * ReferenceTrainer      — single-device micro-batched gradient accumulation
//                            (ground truth for sync-SGD). ForwardBackward is
//                            the seed by-value path; TrainStep is the
//                            arena-backed, optionally pooled fast path that
//                            produces bit-identical gradients and loss.
//  * SyncPipelineTrainer   — executes the *generated Varuna schedule* over a
//                            stage-partitioned model with input stashing and
//                            recompute-before-backward; produces gradients
//                            bit-identical to the reference (the
//                            "correctness-preserving" claim, §4.2). Ready ops
//                            of independent stages run as one wavefront
//                            through the deterministic pool.
//  * StaleGradientTrainer  — PipeDream-style asynchronous semantics: the
//                            gradient applied at step t was computed
//                            `staleness` steps earlier (staleness ~ pipeline
//                            depth). Used for the Fig. 10 divergence study.
//
// Pooled-equals-serial contract: every parallel region fans over work items
// that are pure functions of their index (micro-batch or stage op), writes
// results to item-indexed slots, and merges in fixed ascending order — the
// ThreadPool contract from src/common/thread_pool.h. math_threads == 1
// degenerates to the same code path run inline.
#ifndef SRC_TRAIN_TRAINERS_H_
#define SRC_TRAIN_TRAINERS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/nn/layers.h"
#include "src/nn/optimizer.h"
#include "src/nn/synthetic_task.h"
#include "src/pipeline/schedule.h"
#include "src/tensor/tensor_arena.h"

namespace varuna {

// Knobs shared by all trainers.
struct MathOptions {
  // Workers for micro-batch / stage-wavefront math (1 = serial inline).
  int math_threads = 1;
};

// Splits `batch` into consecutive micro-batches of `microbatch_size` rows.
std::vector<Batch> SplitIntoMicrobatches(const Batch& batch, int microbatch_size);

// View-based split: row ranges over the original batch, no copies. Clears and
// refills *views, reusing its capacity (zero-alloc at steady state).
struct MicrobatchView {
  int row_begin = 0;
  int rows = 0;
};
void SplitIntoMicrobatchViews(int total_rows, int microbatch_size,
                              std::vector<MicrobatchView>* views);

// Copies the viewed rows into *out, reusing its buffers.
void CopyMicrobatchInto(const Batch& batch, const MicrobatchView& view, Batch* out);

// Per-layer checkpoint payload (§4.5): parameter values in model order plus
// optimizer state. Because parameters are checkpointed per layer, the payload
// restores onto a trainer partitioned at a *different* pipeline depth, and
// training continues on the exact same trajectory.
struct ParameterCheckpoint {
  std::vector<Tensor> parameters;
  std::vector<Tensor> optimizer_state;
};

ParameterCheckpoint SnapshotParameters(const std::vector<Tensor*>& params,
                                       const Optimizer& optimizer);
void RestoreParameters(const ParameterCheckpoint& checkpoint,
                       const std::vector<Tensor*>& params, Optimizer* optimizer);

class ReferenceTrainer {
 public:
  explicit ReferenceTrainer(std::unique_ptr<Sequential> model, MathOptions options = {});

  // Forward+backward over the mini-batch in micro-batch accumulation order;
  // gradients are left accumulated (scaled to the full-batch mean).
  // Returns the mean loss. Seed by-value path, kept as the semantic anchor.
  double ForwardBackward(const Batch& batch, int microbatch_size);

  // Same math as ForwardBackward — bit-identical gradients and loss — on the
  // fast path: micro-batch views, arena-backed replicas, and (math_threads >
  // 1) pooled micro-batch execution with an ascending-index gradient merge.
  // After the first call with a given (batch shape, microbatch_size), repeat
  // calls perform zero tensor-buffer heap allocations (heap_allocations()
  // stays flat).
  double TrainStep(const Batch& batch, int microbatch_size);

  // Total element-buffer allocations by this trainer's arenas — flat across
  // steady-state TrainStep calls (asserted in tests/train_parallel_test.cc).
  int64_t heap_allocations() const;

  Sequential* model() { return model_.get(); }
  std::vector<Tensor*> Parameters() { return model_->Parameters(); }
  std::vector<Tensor*> Gradients() { return model_->Gradients(); }

 private:
  // One replica + scratch set per pool worker. Replicas make each micro-batch
  // a pure function of its index: workers never touch the canonical model,
  // whose gradients accumulate only in the ascending merge.
  struct Worker {
    std::unique_ptr<Sequential> replica;
    std::vector<Tensor*> params;  // Cached replica->Parameters().
    std::vector<Tensor*> grads;   // Cached replica->Gradients().
    TensorArena arena;
    Batch microbatch;
    Tensor logits;
    Tensor loss_grad;
    Tensor input_grad;  // Gradient w.r.t. inputs; discarded.
    SoftmaxCrossEntropy loss;
  };

  void EnsureWorkers();
  void EnsureGradSlots(int num_microbatches);

  std::unique_ptr<Sequential> model_;
  MathOptions options_;
  std::vector<Tensor*> model_params_;  // Cached model_->Parameters().
  std::vector<Tensor*> model_grads_;   // Cached model_->Gradients().
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool workers_warmed_ = false;
  // Item-indexed gradient slots: grad_slots_[m][g] holds micro-batch m's
  // gradient delta for model gradient g. Leased from slot_arena_ and kept
  // across steps so steady state never touches it.
  TensorArena slot_arena_;
  std::vector<std::vector<Tensor*>> grad_slots_;
  std::vector<double> losses_;
  std::vector<MicrobatchView> views_;
  const Batch* batch_ = nullptr;  // Valid only during TrainStep.
  float scale_ = 1.0f;
  // Built once (capturing only `this`) so steady-state ParallelFor calls do
  // not re-materialise a heap-backed std::function.
  std::function<void(int, int)> run_item_;
};

class SyncPipelineTrainer {
 public:
  // `stage_begin` has depth+1 entries over the model's layers (cut-points).
  SyncPipelineTrainer(std::unique_ptr<Sequential> model, std::vector<int> stage_begin,
                      MathOptions options = {});

  // Executes one mini-batch following the Varuna schedule's per-stage op
  // order (F/R/B per micro-batch), stashing stage inputs and recomputing
  // before each backward. Gradients accumulate exactly as in the reference.
  // With math_threads > 1, each wavefront of ready ops (at most one per
  // stage) runs through the pool; per-stage op order — the only order float
  // accumulation depends on — is preserved, so pooled == serial bit for bit.
  double ForwardBackward(const Batch& batch, int microbatch_size);

  int depth() const { return static_cast<int>(stages_.size()); }
  Sequential* stage(int s) { return stages_[static_cast<size_t>(s)].stage.get(); }
  std::vector<Tensor*> Parameters();
  std::vector<Tensor*> Gradients();

  // Peak number of simultaneously stashed stage-input tensors across stages
  // during the last mini-batch (memory-model observability).
  int peak_stash_slots() const { return peak_stash_slots_; }

  // Global-norm gradient clipping (NVLAMB-style cross-partition state,
  // §5.2). With `sync_across_stages` the squared norms are allreduced over
  // the pipeline group before clipping — the tracer-mandated behaviour;
  // without it each stage clips against its local norm (the bug the tracer
  // prevents). Returns the norm used.
  double ClipByGlobalNorm(float max_norm, bool sync_across_stages);

  // Runs inference through all stages (for validation).
  Tensor Forward(const Tensor& inputs);

 private:
  struct StageState {
    std::unique_ptr<Sequential> stage;
    TensorArena arena;      // Within-op scratch; private to this stage.
    Tensor recompute_out;   // Recompute's (discarded) output buffer.
    Tensor loss_grad;       // Last stage only: d(loss)/d(logits).
    Tensor input_grad;      // First stage only: gradient sink.
    size_t cursor = 0;      // Next op in this stage's schedule row.
    int live_microbatch = -1;
    int stash_count = 0;
    int peak_stash = 0;
  };

  // True when the op at `stage`'s cursor can run now.
  bool OpReady(int s) const;
  void ExecuteOp(int s);
  void EnsurePool();

  MathOptions options_;
  std::vector<StageState> stages_;
  std::unique_ptr<ThreadPool> pool_;
  int peak_stash_slots_ = 0;

  // Mini-batch execution state, reused in place across calls.
  Schedule schedule_;
  const Batch* batch_ = nullptr;
  std::vector<MicrobatchView> views_;
  // stash_[s][m]: stage s's input for micro-batch m, kept until backward and
  // reused across mini-batches (the recompute path reads it in place instead
  // of re-cloning the micro-batch). grad_in_[s][m]: gradient arriving from
  // stage s+1. Flags are uint8_t, not vector<bool>: workers set flags of
  // *different* cells during a wavefront, and vector<bool> packs bits of
  // neighbouring cells into one racy byte.
  std::vector<std::vector<Tensor>> stash_;
  std::vector<std::vector<Tensor>> grad_in_;
  std::vector<std::vector<uint8_t>> has_input_;
  std::vector<std::vector<uint8_t>> has_grad_;
  std::vector<Tensor> logits_;
  std::vector<SoftmaxCrossEntropy> loss_fns_;
  std::vector<double> losses_;
  std::vector<int> ready_;  // Stages with a runnable op this wavefront.
  float scale_ = 1.0f;
  std::function<void(int, int)> exec_op_;  // Built once in EnsurePool.
};

class StaleGradientTrainer {
 public:
  // Applies each computed gradient `staleness` optimizer steps late. With
  // staleness == 0 this is plain synchronous SGD.
  StaleGradientTrainer(std::unique_ptr<Sequential> model, int staleness, float learning_rate,
                       float momentum, MathOptions options = {});

  // One optimizer step on one batch; returns the loss at computation time.
  double Step(const Batch& batch);

  Sequential* model() { return trainer_.model(); }

 private:
  ReferenceTrainer trainer_;  // Runs the whole batch as one micro-batch.
  std::unique_ptr<SgdOptimizer> optimizer_;
  int staleness_;
  // Pending gradients, oldest first; each entry is a snapshot of all grads.
  std::deque<std::vector<Tensor>> pending_;
};

}  // namespace varuna

#endif  // SRC_TRAIN_TRAINERS_H_
