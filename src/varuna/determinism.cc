#include "src/varuna/determinism.h"

#include <cstring>
#include <memory>

#include "src/cluster/cluster.h"
#include "src/cluster/spot_market.h"
#include "src/cluster/vm.h"
#include "src/common/units.h"
#include "src/sim/engine.h"

namespace varuna {
namespace {

// FNV-1a, 64-bit.
class Fnv1a {
 public:
  void Bytes(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 1099511628211ULL;
    }
  }

  void U64(uint64_t value) { Bytes(&value, sizeof(value)); }

  void F64(double value) {
    // Hash the IEEE-754 bit pattern: the determinism contract is bit-identity,
    // not approximate equality.
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    U64(bits);
  }

  void Str(const std::string& value) {
    U64(value.size());
    Bytes(value.data(), value.size());
  }

  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ULL;
};

}  // namespace

DeterminismScenario DefaultDeterminismScenario(uint64_t seed) {
  DeterminismScenario scenario;
  scenario.spec = Gpt2_2_5B();
  scenario.options.total_batch = 2400;
  scenario.options.demand_vms = 30;
  scenario.options.checkpoint_every_minibatches = 5;
  scenario.options.seed = seed;
  return scenario;
}

uint64_t ElasticTrace::Fingerprint() const {
  Fnv1a fnv;
  fnv.U64(events_processed);
  fnv.F64(final_now_s);
  fnv.U64(static_cast<uint64_t>(minibatches_done));
  fnv.U64(static_cast<uint64_t>(morphs));
  fnv.U64(static_cast<uint64_t>(preemptions_hit));
  fnv.U64(static_cast<uint64_t>(checkpoints));
  fnv.F64(examples_processed);
  fnv.U64(static_cast<uint64_t>(preemptions_survived));
  fnv.U64(static_cast<uint64_t>(restarts));
  fnv.U64(static_cast<uint64_t>(heartbeat_timeouts));
  fnv.U64(static_cast<uint64_t>(morph_retries));
  fnv.U64(static_cast<uint64_t>(reprovision_retries));
  fnv.U64(static_cast<uint64_t>(degraded_intervals));
  fnv.U64(static_cast<uint64_t>(shards_lost));
  fnv.U64(static_cast<uint64_t>(minibatches_rolled_back));
  fnv.F64(examples_rolled_back);
  fnv.U64(static_cast<uint64_t>(last_restore_step));
  fnv.U64(static_cast<uint64_t>(proactive_morphs));
  fnv.U64(static_cast<uint64_t>(premigrated_shards));
  fnv.U64(static_cast<uint64_t>(live_handoffs));
  fnv.U64(event_times_s.size());
  for (const double t : event_times_s) {
    fnv.F64(t);
  }
  for (const std::string& kind : event_kinds) {
    fnv.Str(kind);
  }
  fnv.U64(sample_times_s.size());
  for (const double t : sample_times_s) {
    fnv.F64(t);
  }
  for (const double rate : sample_examples_per_s) {
    fnv.F64(rate);
  }
  return fnv.hash();
}

ElasticTrace CaptureElasticTrace(const SimEngine& engine, const ElasticTrainer& trainer) {
  ElasticTrace trace;
  trace.events_processed = engine.events_processed();
  trace.final_now_s = engine.now();
  const SessionStats& stats = trainer.stats();
  trace.minibatches_done = stats.minibatches_done;
  trace.morphs = stats.morphs;
  trace.preemptions_hit = stats.preemptions_hit;
  trace.checkpoints = stats.checkpoints;
  trace.examples_processed = stats.examples_processed;
  trace.preemptions_survived = stats.preemptions_survived;
  trace.restarts = stats.restarts;
  trace.heartbeat_timeouts = stats.heartbeat_timeouts;
  trace.morph_retries = stats.morph_retries;
  trace.reprovision_retries = stats.reprovision_retries;
  trace.degraded_intervals = stats.degraded_intervals;
  trace.shards_lost = stats.shards_lost;
  trace.minibatches_rolled_back = stats.minibatches_rolled_back;
  trace.examples_rolled_back = stats.examples_rolled_back;
  trace.last_restore_step = stats.last_restore_step;
  trace.proactive_morphs = stats.proactive_morphs;
  trace.premigrated_shards = stats.premigrated_shards;
  trace.live_handoffs = stats.live_handoffs;
  for (const TimelineEvent& event : stats.events) {
    trace.event_times_s.push_back(event.time_s);
    trace.event_kinds.push_back(event.kind);
  }
  for (const TimelineSample& sample : stats.samples) {
    trace.sample_times_s.push_back(sample.time_s);
    trace.sample_examples_per_s.push_back(sample.examples_per_s);
  }
  return trace;
}

ElasticTrace RunElasticScenario(const DeterminismScenario& scenario) {
  SimEngine engine;
  Cluster cluster(CommodityFabric());
  // The market's Rng fork derives from the scenario seed so that two runs of
  // the same scenario share every stochastic draw.
  SpotMarket market(&engine, Rng(scenario.options.seed * 7919 + 17), 60.0);

  SpotPoolDynamics dynamics;
  dynamics.mean_availability = scenario.mean_availability;
  dynamics.volatility = scenario.volatility;
  dynamics.preemption_hazard = scenario.preemption_hazard_per_s;
  dynamics.max_grants_per_tick = 64;
  const int pool = market.AddPool(Nc6V3(), scenario.max_vms, dynamics);

  ElasticTrainer trainer(&engine, &cluster, &market, pool, Nc6V3(), scenario.spec,
                         scenario.options);
  trainer.Start();
  market.Start();
  engine.RunUntil(scenario.horizon_s);
  engine.CheckInvariants();
  trainer.CheckInvariants();
  return CaptureElasticTrace(engine, trainer);
}

}  // namespace varuna
