// Determinism harness (varuna-verify). The DES contract — equal-timestamp
// events fire in scheduling order, all randomness flows from one seeded Rng —
// promises that a fixed seed yields a *bit-identical* execution. The paper's
// elasticity claims (§4.3, Figure 8) are measured on exactly such runs, so a
// nondeterminism bug (iteration over pointer-keyed maps, wall-clock reads,
// uninitialised floats) would silently invalidate every number downstream.
//
// RunElasticScenario() runs a full elastic-training session (spot market,
// preemptions, morphing, checkpoints) and captures a trace fingerprint that
// covers event counts, simulated times and the whole manager timeline at full
// double precision. Running the same scenario twice must produce traces for
// which `a == b` and `a.Fingerprint() == b.Fingerprint()` both hold.
#ifndef SRC_VARUNA_DETERMINISM_H_
#define SRC_VARUNA_DETERMINISM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/manager/elastic_trainer.h"
#include "src/model/transformer.h"
#include "src/sim/engine.h"

namespace varuna {

struct DeterminismScenario {
  TransformerSpec spec;
  // Spot-pool shape: churn on, so the trace exercises preemption + morph
  // paths, not just the steady state.
  int max_vms = 30;
  double mean_availability = 0.9;
  double volatility = 0.1;
  double preemption_hazard_per_s = 1.0 / (6.0 * 3600.0);
  // Session horizon in simulated seconds.
  double horizon_s = 2.0 * 3600.0;
  TrainerOptions options;  // options.seed seeds the whole run.
};

// Canned scenario used by tests and CI: GPT-2 2.5B on a churning 30-VM pool.
DeterminismScenario DefaultDeterminismScenario(uint64_t seed);

// Everything observable about one run, at full precision. Two runs of the
// same scenario must compare equal member-by-member.
struct ElasticTrace {
  uint64_t events_processed = 0;
  double final_now_s = 0.0;
  int64_t minibatches_done = 0;
  int morphs = 0;
  int preemptions_hit = 0;
  int checkpoints = 0;
  double examples_processed = 0.0;
  // Recovery counters (chaos campaigns replay these bit-identically too).
  int preemptions_survived = 0;
  int restarts = 0;
  int heartbeat_timeouts = 0;
  int morph_retries = 0;
  int reprovision_retries = 0;
  int degraded_intervals = 0;
  int64_t shards_lost = 0;
  int64_t minibatches_rolled_back = 0;
  double examples_rolled_back = 0.0;
  int64_t last_restore_step = -1;
  // Liveput-policy decisions (src/morph/liveput.h): reactive runs leave them
  // zero, proactive runs replay them bit-identically like everything else.
  int proactive_morphs = 0;
  int64_t premigrated_shards = 0;
  // Fast-recovery decisions: voluntary morphs that moved live state
  // peer-to-peer instead of a checkpoint-restore round trip.
  int live_handoffs = 0;
  // (time_s, kind) for every manager timeline event, in order.
  std::vector<double> event_times_s;
  std::vector<std::string> event_kinds;
  // Throughput samples, in order.
  std::vector<double> sample_times_s;
  std::vector<double> sample_examples_per_s;

  bool operator==(const ElasticTrace&) const = default;

  // FNV-1a over the raw bit patterns of every field (doubles hashed via their
  // IEEE-754 bits, so "bit-identical" means exactly that).
  uint64_t Fingerprint() const;
};

// Snapshots the observable state of a finished (or paused) session into a
// trace. Shared by RunElasticScenario and the chaos campaign runner, so both
// fingerprint runs the same way.
ElasticTrace CaptureElasticTrace(const SimEngine& engine, const ElasticTrainer& trainer);

ElasticTrace RunElasticScenario(const DeterminismScenario& scenario);

}  // namespace varuna

#endif  // SRC_VARUNA_DETERMINISM_H_
