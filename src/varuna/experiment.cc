#include "src/varuna/experiment.h"

#include <cmath>
#include <sstream>

#include "src/cluster/placement.h"
#include "src/common/check.h"
#include "src/model/cutpoints.h"
#include "src/model/op_graph.h"
#include "src/model/tracer.h"
#include "src/pipeline/memory.h"
#include "src/pipeline/stage_timing.h"

namespace varuna {
namespace {

ScheduleKind ScheduleFor(SystemUnderTest system) {
  switch (system) {
    case SystemUnderTest::kVaruna:
      return ScheduleKind::kVaruna;
    case SystemUnderTest::kGpipe:
      return ScheduleKind::kGpipe;
    case SystemUnderTest::kOneFOneB:
    case SystemUnderTest::kPipeDreamAsync:
      return ScheduleKind::kOneFOneB;
    case SystemUnderTest::kDeepSpeed:
      return ScheduleKind::kDeepSpeed;
  }
  return ScheduleKind::kVaruna;
}

}  // namespace

std::string ToString(SystemUnderTest system) {
  switch (system) {
    case SystemUnderTest::kVaruna:
      return "Varuna";
    case SystemUnderTest::kGpipe:
      return "GPipe";
    case SystemUnderTest::kOneFOneB:
      return "Megatron-1F1B";
    case SystemUnderTest::kDeepSpeed:
      return "DeepSpeed";
    case SystemUnderTest::kPipeDreamAsync:
      return "PipeDream";
  }
  return "?";
}

PipelineEvalResult EvaluatePipeline(const PipelineEvalRequest& request) {
  PipelineEvalResult result;
  const TransformerSpec& spec = request.spec;
  const int depth = request.pipeline_depth;
  const int replicas = request.data_parallel;
  const int m = request.microbatch_size;
  VARUNA_CHECK_GE(depth, 1);
  VARUNA_CHECK_GE(replicas, 1);

  const OpGraph graph = BuildTransformerOpGraph(spec);
  const Result<ModelSections> sections = IdentifyCutPoints(graph, spec.num_layers);
  if (!sections.ok()) {
    result.infeasible_reason = sections.error();
    return result;
  }
  const Result<Partition> partition = PartitionModel(sections.value(), depth);
  if (!partition.ok()) {
    result.infeasible_reason = partition.error();
    return result;
  }

  result.num_microbatches =
      static_cast<int>(std::ceil(request.total_batch / (static_cast<double>(m) * replicas)));
  result.gpus_used = depth * replicas;

  // --- Memory feasibility per stage.
  const double block_full_act = BlockFullActivationBytes(spec);
  const double blocks_per_section =
      static_cast<double>(spec.num_layers) / sections.value().num_sections();
  MemoryBudget budget;
  budget.gpu_memory_bytes = request.vm.gpu.memory_bytes;
  for (int stage = 0; stage < depth; ++stage) {
    const int begin = partition.value().stage_begin[static_cast<size_t>(stage)];
    const int end = partition.value().stage_begin[static_cast<size_t>(stage) + 1];
    MemoryModelInputs inputs;
    inputs.stage_params = partition.value().stage_params[static_cast<size_t>(stage)];
    inputs.input_activation_bytes_per_example =
        stage == 0 ? 4.0 * spec.seq_len : spec.BoundaryActivationBytes();
    inputs.full_activation_bytes_per_example = block_full_act * blocks_per_section * (end - begin);
    inputs.microbatch_size = m;
    inputs.num_microbatches = result.num_microbatches;
    inputs.pipeline_depth = depth;
    inputs.stage_index = stage;
    inputs.cpu_offload_optimizer = request.cpu_offload_optimizer;
    const MemoryEstimate estimate =
        request.system == SystemUnderTest::kPipeDreamAsync
            ? EstimatePipeDreamStageMemory(inputs)
            : EstimateStageMemory(ScheduleFor(request.system), inputs);
    if (!Fits(estimate, budget)) {
      std::ostringstream reason;
      reason << "OOM: stage " << stage << " needs "
             << estimate.total() / kGiB << " GiB (" << request.vm.gpu.memory_bytes / kGiB
             << " GiB available)";
      result.infeasible_reason = reason.str();
      return result;
    }
  }

  // --- Build the cluster and placement.
  FabricSpec fabric = request.fabric;
  fabric.per_flow_bandwidth_bps /= request.network_slowdown;
  Cluster cluster(fabric);
  VmType vm = request.vm;
  vm.node.nic_bandwidth_bps /= request.network_slowdown;
  const int vms_needed = (depth * replicas + vm.node.num_gpus - 1) / vm.node.num_gpus;
  cluster.AddVms(vm, vms_needed);
  const Result<Placement> placement = PlaceJob(cluster, depth, replicas);
  VARUNA_CHECK(placement.ok()) << placement.error();

  // --- Execute.
  const Schedule schedule =
      GenerateSchedule(ScheduleFor(request.system), depth, result.num_microbatches);
  const std::vector<StageTiming> timings =
      ComputeStageTimings(sections.value(), partition.value(), vm.gpu, m);
  const TraceReport trace = TraceCrossPartitionState(graph, sections.value(), TraceOptions());

  ExecutorOptions options;
  // The public GPipe and DeepSpeed's slotted engine send synchronously;
  // Varuna and Megatron overlap communication with compute.
  options.overlap_communication = request.system != SystemUnderTest::kGpipe &&
                                  request.system != SystemUnderTest::kDeepSpeed;
  options.shared_state_sync_bytes = depth > 1 ? trace.TotalSyncBytes() : 0.0;
  options.cpu_offload_optimizer = request.cpu_offload_optimizer;
  if (request.cpu_offload_optimizer) {
    options.cpu_offload_bytes_per_stage = 12.0 * spec.TotalParams() / depth;
  }
  options.record_trace = request.record_trace;

  Rng rng(request.seed);
  PipelineExecutor executor(&cluster, &rng);
  double total_time = 0.0;
  for (int run = 0; run < request.runs; ++run) {
    result.last_run = executor.Run(schedule, placement.value(), timings, m, options);
    total_time += result.last_run.total_time_s;
  }

  result.feasible = true;
  result.minibatch_s = total_time / request.runs;
  const double batch = static_cast<double>(m) * result.num_microbatches * replicas;
  result.examples_per_s = batch / result.minibatch_s;
  result.examples_per_s_per_gpu = result.examples_per_s / result.gpus_used;
  // Useful work: forward + backward only (the paper removes the 33% recompute).
  result.tflops_per_gpu =
      result.examples_per_s_per_gpu * 3.0 * spec.TotalFwdFlops() / 1e12;
  return result;
}

}  // namespace varuna
