// Shared experiment toolkit: evaluates a (system, model, cluster, P x D, m)
// combination end-to-end on the DES testbed, with the memory model deciding
// feasibility. All evaluation benches (Figures 5-7, Tables 3-6) go through
// this single entry point so that every system is treated identically.
#ifndef SRC_VARUNA_EXPERIMENT_H_
#define SRC_VARUNA_EXPERIMENT_H_

#include <string>

#include "src/cluster/cluster.h"
#include "src/cluster/vm.h"
#include "src/model/transformer.h"
#include "src/pipeline/executor.h"
#include "src/pipeline/schedule.h"

namespace varuna {

// The pipeline systems compared in §7. PipeDream executes 1F1B-style but
// stashes weight versions and full activations (its memory model), and runs
// asynchronously — for throughput purposes we only need its memory verdict.
enum class SystemUnderTest { kVaruna, kGpipe, kOneFOneB, kDeepSpeed, kPipeDreamAsync };

std::string ToString(SystemUnderTest system);

struct PipelineEvalRequest {
  TransformerSpec spec;
  SystemUnderTest system = SystemUnderTest::kVaruna;
  int pipeline_depth = 1;
  int data_parallel = 1;
  int microbatch_size = 4;
  double total_batch = 8192.0;
  VmType vm = Nc6V3();
  FabricSpec fabric = CommodityFabric();
  bool cpu_offload_optimizer = false;
  // Mini-batches to average over (testbed runs are noisy).
  int runs = 3;
  uint64_t seed = 1;
  bool record_trace = false;  // Gantt of replica 0 (Figure 7).
  // Scales cross-node bandwidth (Table 5's "1.5x / 2x slower net").
  double network_slowdown = 1.0;
};

struct PipelineEvalResult {
  bool feasible = false;      // False on OOM or too few cut-points.
  std::string infeasible_reason;
  int num_microbatches = 0;
  double minibatch_s = 0.0;
  double examples_per_s = 0.0;
  double examples_per_s_per_gpu = 0.0;
  // Useful TFLOP/s per GPU — recompute removed, as the paper reports.
  double tflops_per_gpu = 0.0;
  int gpus_used = 0;
  MinibatchResult last_run;  // Includes the trace when requested.
};

PipelineEvalResult EvaluatePipeline(const PipelineEvalRequest& request);

}  // namespace varuna

#endif  // SRC_VARUNA_EXPERIMENT_H_
