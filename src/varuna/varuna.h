// Umbrella header: the public Varuna API surface.
//
// Layered as in the paper:
//   * model description & auto-partitioning .... src/model
//   * pipeline schedules & execution ............ src/pipeline
//   * auto-config (calibrate + simulate) ........ src/morph
//   * elasticity (manager, checkpoints) ......... src/manager
//   * baselines (intra-layer, data-parallel) .... src/parallel
//   * simulated substrates ...................... src/sim, src/net, src/cluster
//   * real-numerics training semantics .......... src/tensor, src/nn, src/train
#ifndef SRC_VARUNA_VARUNA_H_
#define SRC_VARUNA_VARUNA_H_

#include "src/cluster/cluster.h"
#include "src/cluster/fail_stutter.h"
#include "src/cluster/placement.h"
#include "src/cluster/spot_market.h"
#include "src/cluster/vm.h"
#include "src/common/gantt.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/common/units.h"
#include "src/manager/checkpoint.h"
#include "src/manager/elastic_trainer.h"
#include "src/model/cutpoints.h"
#include "src/model/op_graph.h"
#include "src/model/tracer.h"
#include "src/model/transformer.h"
#include "src/morph/calibration.h"
#include "src/morph/config_search.h"
#include "src/morph/fast_sim.h"
#include "src/parallel/data_parallel.h"
#include "src/parallel/intra_layer.h"
#include "src/pipeline/executor.h"
#include "src/pipeline/memory.h"
#include "src/pipeline/schedule.h"
#include "src/pipeline/schedule_cache.h"
#include "src/pipeline/stage_timing.h"
#include "src/sim/engine.h"
#include "src/train/trainers.h"
#include "src/varuna/experiment.h"

#endif  // SRC_VARUNA_VARUNA_H_
