// Fixture (never compiled): half of a same-module include cycle.
#include "src/common/cycle_b.h"

namespace varuna {
inline int CycleA() { return 1; }
}  // namespace varuna
