// Fixture (never compiled): the other half of the include cycle.
#include "src/common/cycle_a.h"

namespace varuna {
inline int CycleB() { return 2; }
}  // namespace varuna
