// Fixture (never compiled): a src/sim file reaching UP into src/manager —
// the exact back-edge the layering pass must reject (acceptance criterion),
// plus a suppressed edge that must stay quiet.
#include "src/common/check.h"
#include "src/manager/elastic_trainer.h"
#include "src/manager/checkpoint.h"  // varuna-analyze: allow(layering)

namespace varuna {
inline int BadEngine() { return 0; }
}  // namespace varuna
