// Fixture (never compiled): a module directory that is missing from
// tools/analyze/layering.txt — adding a module must be a deliberate,
// reviewed layering decision.
#include "src/common/check.h"

namespace varuna {
inline int Rogue() { return 3; }
}  // namespace varuna
