// Fixture (never compiled): Rng copies outside Fork() silently duplicate a
// draw stream.
#include "src/common/rng.h"

namespace varuna {

void Run(Rng* rng) {
  Rng copy = *rng;                      // finding: rng-copy
  Rng other = copy;                     // finding: rng-copy
  Rng ok = copy.Fork();                 // allowed: deliberate fork
  Rng seeded = Rng(ok.NextUint64());    // allowed: fresh seed construction
  Rng waved = other;                    // varuna-analyze: allow(rng-copy)
  (void)seeded;
  (void)waved;
}

}  // namespace varuna
