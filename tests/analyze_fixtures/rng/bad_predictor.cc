// Fixture (never compiled): a liveput availability predictor that cheats.
// The predictor contract (src/morph/liveput.h) is that its state is a pure
// function of the observation stream — policy code draws no randomness, or
// replay stops being bit-identical. Each defect below is one way a "smarter"
// predictor might sneak a draw in.
#include "src/common/rng.h"

namespace varuna {

class JitteredPredictor {
 public:
  // Tie-breaking candidate configs with a by-value Rng: the caller's stream
  // never advances, so the "random" tie-break replays elsewhere.
  int BreakTie(Rng rng, int a, int b) {
    return rng.NextDouble() < 0.5 ? a : b;  // finding: rng-value-param
  }

  // Dithering the survival estimate on an unnamed temporary: the stream
  // exists for one expression, seeded off wall-clock-ish state.
  double DitheredSurvival(double base, uint64_t salt) {
    return base * (1.0 - 0.01 * Rng(salt).NextDouble());  // finding: rng-temp
  }

  // Stashing a duplicate of the session stream for "exploration" silently
  // forks it — both copies replay the same draws.
  void Explore(Rng* session_rng) {
    Rng exploration = *session_rng;  // finding: rng-copy
    (void)exploration;
  }
};

}  // namespace varuna
