// Fixture (never compiled): a draw on an unnamed Rng temporary lives outside
// every seeded scope — the stream exists for one expression only.
#include "src/common/rng.h"

namespace varuna {

double Sample(uint64_t seed) {
  return Rng(seed ^ 0x9e3779b97f4a7c15ULL).NextDouble();  // finding: rng-temp
}

}  // namespace varuna
