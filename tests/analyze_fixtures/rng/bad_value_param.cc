// Fixture (never compiled): draws on by-value Rng parameters — the caller's
// stream never advances, so the "random" values replay elsewhere.
#include "src/common/rng.h"

namespace varuna {

double JitterOnce(Rng rng, double scale) {
  return scale * rng.NextDouble();  // finding: rng-value-param
}

class Market {
 public:
  // Storing the by-value Rng is the allowed sink pattern, but the extra
  // NextUint64() draw on the dead copy is a fork.
  explicit Market(Rng rng) : rng_(rng), seed_(rng.NextUint64()) {}

 private:
  Rng rng_;
  uint64_t seed_;
};

}  // namespace varuna
