// Fixture (never compiled): every construct here is FINE and must produce
// zero findings — the raw strings, comments, and continuations are the exact
// false-positive traps a line-oriented regex linter falls into.
#include "src/common/rng.h"

#include <cstdint>

namespace varuna {

constexpr uint64_t kBig = 1'000'003;  // digit separators are not char literals

// Hazard-shaped *text*, not code:
const char* kDoc = R"doc(
  Rng t = other;
  Rng(42).NextDouble()
  #include "src/manager/elastic_trainer.h"
)doc";
const char* kContinued = "split across a continuation \
Rng bad = worse; still inside the literal";
// Rng in_comment = copy;
/* Rng in_block = copy;
   Rng(7).Gaussian(); */

struct Sink {
  // Store-only by-value Rng: the allowed ownership-transfer pattern.
  explicit Sink(Rng rng) : rng_(rng) {}
  Rng rng_;
};

double Draw(Rng* rng) { return rng->NextDouble(); }  // pointer param: fine
Rng MakeForked(Rng* rng) { return rng->Fork(); }     // deliberate fork: fine
void Reseed(uint64_t seed) { Rng fresh(seed); (void)fresh; }

}  // namespace varuna
