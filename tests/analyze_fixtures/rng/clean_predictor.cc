// Fixture (never compiled): the disciplined counterpart of
// bad_predictor.cc — an availability predictor whose state is a pure
// function of the observation stream. Zero findings expected: the only Rng
// mentions are the documentation traps a line-oriented linter trips on.
#include "src/common/rng.h"

#include <cstdint>

namespace varuna {

// The contract, stated in hazard-shaped *text*:
//   Rng jitter = *session_rng;   // this would be an rng-copy finding
const char* kContract = R"doc(
  Policy code draws no randomness: Rng(now).NextDouble() is forbidden.
)doc";

class ObservationPredictor {
 public:
  void ObserveGrant(double now_s) {
    ++grants_;
    last_now_s_ = now_s;
  }
  void ObservePreemption(double now_s) {
    ++preemptions_;
    last_now_s_ = now_s;
  }
  // Laplace-smoothed transition estimate: deterministic in the counts.
  double PreemptProbability() const {
    return (static_cast<double>(preemptions_) + 1.0) /
           (static_cast<double>(preemptions_ + grants_) + 2.0);
  }

 private:
  int64_t grants_ = 0;
  int64_t preemptions_ = 0;
  double last_now_s_ = 0.0;
};

// Seeding a *fresh* stream from an integer seed is fine (construction, not
// duplication), as is handing a stream over by pointer.
double DrawOnce(Rng* rng) { return rng->NextDouble(); }
Rng MakeStream(uint64_t seed) { return Rng(seed); }

}  // namespace varuna
