// Fixture (never compiled): the serializer half of the bad_stats.h pair.
namespace varuna {

void Capture(const SessionStats& stats, Trace* trace) {
  trace->minibatches_done = stats.minibatches_done;
  trace->stutters = stats.stutters;          // observability field serialized
  trace->zombie = stats.zombie_field;        // not a SessionStats field -> finding
}

}  // namespace varuna
