// Fixture (never compiled): a SessionStats whose classifications disagree
// with its serializer (bad_serializer.cc) in every way the coverage pass
// must catch.
#include <cstdint>
#include <vector>

namespace varuna {

struct SessionStats {
  int64_t minibatches_done = 0;  // fingerprint (serialized: clean)
  // fingerprint: but bad_serializer.cc never reads it -> finding.
  double examples_processed = 0.0;
  int stutters = 0;  // observability: yet it IS serialized -> finding.
  int orphan_counter = 0;  // no classification at all -> finding.
  // fingerprint
  // observability
  int confused = 0;  // (the two leading tags above conflict -> finding)
  uint64_t cache_hits = 0;  // observability (not serialized: clean)
  int waved_through = 0;  // varuna-analyze: allow(fingerprint-coverage)
};

}  // namespace varuna
