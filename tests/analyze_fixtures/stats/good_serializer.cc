// Fixture (never compiled): serializer consistent with good_stats.h.
namespace varuna {

void Capture(const SessionStats& stats, Trace* trace) {
  trace->minibatches_done = stats.minibatches_done;
  trace->examples_processed = stats.examples_processed;
  for (double t : stats.sample_times) trace->sample_times.push_back(t);
}

}  // namespace varuna
