// Fixture (never compiled): a fully-classified SessionStats consistent with
// good_serializer.cc — the coverage pass must stay silent.
#include <cstdint>
#include <vector>

namespace varuna {

struct SessionStats {
  int64_t minibatches_done = 0;       // fingerprint
  double examples_processed = 0.0;    // fingerprint: replay contract.
  uint64_t cache_hits = 0;            // observability: cache warmth only.
  std::vector<double> sample_times;   // fingerprint
};

}  // namespace varuna
