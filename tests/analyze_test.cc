// varuna_analyze battery: every seeded fixture defect is caught by its pass,
// the false-positive traps stay silent, and the real tree is clean.
//
// Fixtures live in tests/analyze_fixtures/ (never compiled — they are data
// for the analyzer). VARUNA_REPO_ROOT / VARUNA_ANALYZE_FIXTURES are injected
// by tests/CMakeLists.txt.
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/analyze/analyzer.h"
#include "tools/analyze/lexer.h"

namespace varuna {
namespace analyze {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing file: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Lexes a fixture file, using `rel` as its pretended repo-relative path.
LexedFile LexFixture(const std::string& fixture_rel, const std::string& rel) {
  const std::string path = std::string(VARUNA_ANALYZE_FIXTURES) + "/" + fixture_rel;
  return Lex(path, rel, ReadFileOrDie(path));
}

LayeringSpec RealLayeringSpec() {
  LayeringSpec spec;
  std::string error;
  const std::string path = std::string(VARUNA_REPO_ROOT) + "/tools/analyze/layering.txt";
  EXPECT_TRUE(ParseLayeringSpec(ReadFileOrDie(path), &spec, &error)) << error;
  return spec;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(std::count_if(findings.begin(), findings.end(),
                                        [&](const Finding& f) { return f.rule == rule; }));
}

std::string Dump(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) out += FormatFinding(f) + "\n";
  return out;
}

// --- Lexer -----------------------------------------------------------------

TEST(Lexer, DigitSeparatorsAreNotCharLiterals) {
  const LexedFile f = Lex("m", "m.cc", "uint64_t x = 1'000'003;");
  ASSERT_EQ(f.tokens.size(), 5u);
  EXPECT_EQ(f.tokens[3].kind, TokKind::kNumber);
  EXPECT_EQ(f.tokens[3].text, "1'000'003");
}

TEST(Lexer, RawStringSwallowsHazardText) {
  const LexedFile f =
      Lex("m", "m.cc", "auto s = R\"(line one\n\"quoted\" rand()\n)\";\nint y = 2;");
  int raw = 0;
  for (const Token& t : f.tokens) {
    if (t.kind == TokKind::kRawString) ++raw;
    EXPECT_NE(t.text, "rand") << "raw-string body leaked into the token stream";
    if (t.text == "y") {
      EXPECT_EQ(t.line, 4) << "line tracking lost across the raw string";
    }
  }
  EXPECT_EQ(raw, 1);
}

TEST(Lexer, CustomDelimiterRawString) {
  const LexedFile f = Lex("m", "m.cc", "auto s = R\"doc(x )\" still inside)doc\"; int z;");
  ASSERT_GE(f.tokens.size(), 4u);
  EXPECT_EQ(f.tokens[3].kind, TokKind::kRawString);
  bool saw_z = false;
  for (const Token& t : f.tokens) saw_z = saw_z || t.text == "z";
  EXPECT_TRUE(saw_z);
}

TEST(Lexer, LineContinuationSplicesTokens) {
  const LexedFile f = Lex("m", "m.cc", "int a\\\nb = 2;");
  ASSERT_GE(f.tokens.size(), 2u);
  EXPECT_EQ(f.tokens[1].text, "ab");
  EXPECT_EQ(f.tokens[1].line, 1);
}

TEST(Lexer, BlockCommentRetainedWithLineTracking) {
  const LexedFile f = Lex("m", "m.cc", "/* one\ntwo */ int z;");
  ASSERT_GE(f.tokens.size(), 3u);
  EXPECT_EQ(f.tokens[0].kind, TokKind::kComment);
  EXPECT_EQ(f.tokens[0].line, 1);
  EXPECT_EQ(f.tokens[1].text, "int");
  EXPECT_EQ(f.tokens[1].line, 2);
}

TEST(Lexer, HeaderNameAfterInclude) {
  const LexedFile f = Lex("m", "m.cc", "#include <chrono>\nbool lt = a < b;");
  ASSERT_GE(f.tokens.size(), 3u);
  EXPECT_EQ(f.tokens[2].kind, TokKind::kHeader);
  EXPECT_EQ(f.tokens[2].text, "<chrono>");
  // The `<` in `a < b` must stay ordinary punctuation.
  int headers = 0;
  for (const Token& t : f.tokens) headers += t.kind == TokKind::kHeader ? 1 : 0;
  EXPECT_EQ(headers, 1);
}

TEST(Lexer, CommentAllowsParsesRuleNames) {
  EXPECT_TRUE(CommentAllows("// varuna-analyze: allow(layering)", "layering"));
  EXPECT_TRUE(CommentAllows("// text varuna-analyze: allow(rng-copy)", "rng-copy"));
  EXPECT_FALSE(CommentAllows("// varuna-analyze: allow(layering)", "rng-copy"));
  EXPECT_FALSE(CommentAllows("// varuna-lint: allow(layering)", "layering"));
}

// --- Layering spec ----------------------------------------------------------

TEST(LayeringSpec, ParsesRealSpecBottomUp) {
  const LayeringSpec spec = RealLayeringSpec();
  ASSERT_FALSE(spec.layers.empty());
  EXPECT_EQ(spec.layers.front().front(), "common");
  EXPECT_LT(spec.layer_of.at("sim"), spec.layer_of.at("manager"));
  EXPECT_LT(spec.layer_of.at("manager"), spec.layer_of.at("varuna"));
  EXPECT_LT(spec.layer_of.at("varuna"), spec.layer_of.at("chaos"));
}

TEST(LayeringSpec, RejectsDuplicateModule) {
  LayeringSpec spec;
  std::string error;
  EXPECT_FALSE(ParseLayeringSpec("common\nsim common\n", &spec, &error));
  EXPECT_NE(error.find("common"), std::string::npos);
}

TEST(LayeringSpec, RejectsEmptySpec) {
  LayeringSpec spec;
  std::string error;
  EXPECT_FALSE(ParseLayeringSpec("# comments only\n", &spec, &error));
}

// --- Pass 1: include graph ---------------------------------------------------

TEST(IncludeGraph, FixtureBatteryCatchesEverySeededDefect) {
  const LayeringSpec spec = RealLayeringSpec();
  std::vector<LexedFile> files;
  files.push_back(LexFixture("layering/src/sim/bad_engine.h", "src/sim/bad_engine.h"));
  files.push_back(LexFixture("layering/src/common/cycle_a.h", "src/common/cycle_a.h"));
  files.push_back(LexFixture("layering/src/common/cycle_b.h", "src/common/cycle_b.h"));
  files.push_back(LexFixture("layering/src/widgets/rogue.h", "src/widgets/rogue.h"));

  std::vector<Finding> findings;
  CheckIncludeGraph(files, spec, &findings);

  // One sim->manager back-edge (the suppressed manager include stays quiet),
  // one unlisted module, one cycle.
  EXPECT_EQ(CountRule(findings, "layering"), 2) << Dump(findings);
  EXPECT_EQ(CountRule(findings, "include-cycle"), 1) << Dump(findings);

  bool saw_backedge = false;
  bool saw_unlisted = false;
  for (const Finding& f : findings) {
    if (f.rule == "layering" && f.rel == "src/sim/bad_engine.h") {
      saw_backedge = true;
      EXPECT_NE(f.message.find("src/manager"), std::string::npos) << f.message;
    }
    if (f.rule == "layering" && f.message.find("widgets") != std::string::npos) {
      saw_unlisted = true;
    }
    if (f.rule == "include-cycle") {
      EXPECT_NE(f.message.find("cycle_a.h"), std::string::npos) << f.message;
      EXPECT_NE(f.message.find("cycle_b.h"), std::string::npos) << f.message;
    }
  }
  EXPECT_TRUE(saw_backedge) << Dump(findings);
  EXPECT_TRUE(saw_unlisted) << Dump(findings);
}

TEST(IncludeGraph, SameLayerPeersMayNotIncludeEachOther) {
  const LayeringSpec spec = RealLayeringSpec();
  std::vector<LexedFile> files;
  files.push_back(
      Lex("mem", "src/tensor/x.h", "#include \"src/model/op_graph.h\"\n"));
  std::vector<Finding> findings;
  CheckIncludeGraph(files, spec, &findings);
  EXPECT_EQ(CountRule(findings, "layering"), 1) << Dump(findings);
}

TEST(IncludeGraph, DownwardIncludeIsClean) {
  const LayeringSpec spec = RealLayeringSpec();
  std::vector<LexedFile> files;
  files.push_back(Lex("mem", "src/manager/x.h",
                      "#include \"src/sim/engine.h\"\n#include \"src/common/rng.h\"\n"));
  std::vector<Finding> findings;
  CheckIncludeGraph(files, spec, &findings);
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

// --- Pass 2: Rng discipline --------------------------------------------------

std::vector<Finding> RngFindings(const std::string& fixture) {
  const LexedFile file = LexFixture("rng/" + fixture, "src/fixture/" + fixture);
  std::vector<Finding> findings;
  CheckRngDiscipline(file, &findings);
  return findings;
}

TEST(RngDiscipline, ByValueParamDrawsAreForks) {
  const std::vector<Finding> findings = RngFindings("bad_value_param.cc");
  EXPECT_EQ(CountRule(findings, "rng-value-param"), 2) << Dump(findings);
  EXPECT_EQ(findings.size(), 2u) << Dump(findings);
}

TEST(RngDiscipline, CopiesOutsideForkAreFlagged) {
  const std::vector<Finding> findings = RngFindings("bad_copy.cc");
  EXPECT_EQ(CountRule(findings, "rng-copy"), 2) << Dump(findings);
  EXPECT_EQ(findings.size(), 2u) << Dump(findings);
}

TEST(RngDiscipline, TemporaryDrawsAreFlagged) {
  const std::vector<Finding> findings = RngFindings("bad_temp.cc");
  EXPECT_EQ(CountRule(findings, "rng-temp"), 1) << Dump(findings);
  EXPECT_EQ(findings.size(), 1u) << Dump(findings);
}

TEST(RngDiscipline, RawStringsCommentsAndSinksStayClean) {
  const std::vector<Finding> findings = RngFindings("clean.cc");
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

// The liveput predictor contract (src/morph/liveput.h): policy code draws no
// randomness. The seeded-defect fixture shows one instance of each way a
// predictor might sneak a draw in; its disciplined counterpart (pure
// function of the observation stream) must stay clean.
TEST(RngDiscipline, JitteredPredictorPolicyDrawsAreFlagged) {
  const std::vector<Finding> findings = RngFindings("bad_predictor.cc");
  EXPECT_EQ(CountRule(findings, "rng-value-param"), 1) << Dump(findings);
  EXPECT_EQ(CountRule(findings, "rng-temp"), 1) << Dump(findings);
  EXPECT_EQ(CountRule(findings, "rng-copy"), 1) << Dump(findings);
  EXPECT_EQ(findings.size(), 3u) << Dump(findings);
}

TEST(RngDiscipline, ObservationDrivenPredictorIsClean) {
  const std::vector<Finding> findings = RngFindings("clean_predictor.cc");
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

// --- Pass 3: fingerprint coverage -------------------------------------------

TEST(FingerprintCoverage, BadPairYieldsEveryDefectClass) {
  const LexedFile header = LexFixture("stats/bad_stats.h", "src/manager/bad_stats.h");
  const LexedFile serializer =
      LexFixture("stats/bad_serializer.cc", "src/varuna/bad_serializer.cc");
  std::vector<Finding> findings;
  CheckFingerprintCoverage(header, serializer, &findings);

  EXPECT_EQ(findings.size(), 5u) << Dump(findings);
  auto has = [&](const std::string& needle) {
    return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
      return f.rule == "fingerprint-coverage" &&
             f.message.find(needle) != std::string::npos;
    });
  };
  EXPECT_TRUE(has("examples_processed")) << Dump(findings);  // fingerprint, unserialized
  EXPECT_TRUE(has("stutters")) << Dump(findings);            // observability, serialized
  EXPECT_TRUE(has("orphan_counter")) << Dump(findings);      // unclassified
  EXPECT_TRUE(has("confused")) << Dump(findings);            // conflicting tags
  EXPECT_TRUE(has("zombie_field")) << Dump(findings);        // stale serialization
  EXPECT_FALSE(has("waved_through")) << Dump(findings);      // suppressed
  EXPECT_FALSE(has("minibatches_done")) << Dump(findings);   // consistent
}

TEST(FingerprintCoverage, GoodPairIsClean) {
  const LexedFile header = LexFixture("stats/good_stats.h", "src/manager/good_stats.h");
  const LexedFile serializer =
      LexFixture("stats/good_serializer.cc", "src/varuna/good_serializer.cc");
  std::vector<Finding> findings;
  CheckFingerprintCoverage(header, serializer, &findings);
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(FingerprintCoverage, MissingStructIsAFinding) {
  const LexedFile header = Lex("mem", "src/manager/empty.h", "namespace varuna {}\n");
  const LexedFile serializer = Lex("mem", "src/varuna/empty.cc", "\n");
  std::vector<Finding> findings;
  CheckFingerprintCoverage(header, serializer, &findings);
  EXPECT_EQ(findings.size(), 1u) << Dump(findings);
}

// --- The real tree -----------------------------------------------------------

TEST(RealTree, FullAnalysisIsClean) {
  AnalyzerOptions options;
  options.root = VARUNA_REPO_ROOT;
  std::vector<Finding> findings;
  std::string error;
  const int status = RunAnalysis(options, &findings, &error);
  EXPECT_EQ(status, 0) << error << "\n" << Dump(findings);
}

}  // namespace
}  // namespace analyze
}  // namespace varuna
