// Property tests for the chaos campaign engine (src/chaos): dozens of seeded
// random fault campaigns against full elastic-training sessions, asserting
// the recovery invariants the manager must hold under ANY fault interleaving,
// plus scripted campaigns that pin each hardened recovery path (heartbeat
// timeout, mid-flush shard kill, mid-morph preemption, capacity collapse)
// and the bit-replayability of every campaign.
#include "src/chaos/chaos.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/model/transformer.h"

namespace varuna {
namespace {

// Recovery invariants every campaign must satisfy, whatever the plan did.
// (RunChaosCampaign already aborts the process if the engine's or manager's
// internal CheckInvariants fail; these are the observable-outcome properties
// on top.)
void ExpectRecoveryInvariants(const ChaosCampaignSpec& spec, const ChaosReport& report) {
  const SessionStats& stats = report.stats;
  // The session terminated: the engine drained to the horizon instead of
  // deadlocking or aborting.
  EXPECT_DOUBLE_EQ(report.trace.final_now_s, spec.horizon_s);
  // Conservation — no silent sample loss: every attempted mini-batch is
  // either committed or accounted as re-work, exactly.
  EXPECT_EQ(stats.minibatches_attempted,
            stats.minibatches_done + stats.minibatches_rolled_back);
  EXPECT_NEAR(stats.examples_attempted,
              stats.examples_processed + stats.examples_rolled_back,
              1e-6 * std::max(1.0, stats.examples_attempted));
  EXPECT_GE(stats.minibatches_done, 0);
  EXPECT_GE(stats.examples_processed, 0.0);
  // Re-work is bounded by the checkpoint cadence as long as no checkpoint
  // data was destroyed: resume then restarts from the newest checkpoint, so
  // no single rollback can exceed one cadence interval (plus the in-flight
  // mini-batch).
  if (stats.shards_lost == 0 && report.shards_corrupted_by_chaos == 0) {
    EXPECT_LE(stats.max_rollback_minibatches,
              spec.options.checkpoint_every_minibatches + 1);
  }
  // Survival accounting never exceeds the faults that occurred.
  EXPECT_LE(stats.preemptions_survived, stats.preemptions_hit + stats.heartbeat_timeouts);
  // A restore step is always a real checkpoint id (or -1 = from scratch).
  EXPECT_GE(stats.last_restore_step, -1);
}

TEST(ChaosPropertyTest, SeededRandomCampaignsHoldRecoveryInvariants) {
  // 50+ seeded campaigns, each a different random fault plan over a full
  // session. One process, deterministic: a failure names its seed.
  constexpr uint64_t kSeeds = 52;
  int64_t total_preemptions = 0;
  int64_t total_restarts = 0;
  int64_t total_rollbacks = 0;
  int64_t campaigns_with_progress = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("campaign seed " + std::to_string(seed));
    const ChaosCampaignSpec spec = RandomChaosCampaign(seed);
    const ChaosReport report = RunChaosCampaign(spec);
    ExpectRecoveryInvariants(spec, report);
    total_preemptions += report.stats.preemptions_hit + report.stats.heartbeat_timeouts;
    total_restarts += report.stats.restarts;
    total_rollbacks += report.stats.minibatches_rolled_back;
    campaigns_with_progress += report.stats.minibatches_done > 0 ? 1 : 0;
  }
  // The generator must actually be hostile — across the batch the recovery
  // machinery has to have been exercised, and sessions still made progress.
  EXPECT_GT(total_preemptions, 0);
  EXPECT_GT(total_restarts, 0);
  EXPECT_GT(total_rollbacks, 0);
  EXPECT_GT(campaigns_with_progress, static_cast<int64_t>(kSeeds) / 2);
}

TEST(ChaosReplayTest, SameSeedAndPlanBitIdentical) {
  for (const uint64_t seed : {3u, 17u, 41u}) {
    SCOPED_TRACE("campaign seed " + std::to_string(seed));
    const ChaosCampaignSpec spec = RandomChaosCampaign(seed);
    const ChaosReport first = RunChaosCampaign(spec);
    const ChaosReport second = RunChaosCampaign(spec);
    EXPECT_EQ(first.trace, second.trace);
    EXPECT_EQ(first.fingerprint, second.fingerprint);
  }
}

TEST(ChaosReplayTest, DifferentSeedsDiverge) {
  const ChaosReport a = RunChaosCampaign(RandomChaosCampaign(101));
  const ChaosReport b = RunChaosCampaign(RandomChaosCampaign(102));
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

// The acceptance storm: wait for checkpoint shards to be mid-flush, then kill
// every VM holding one — unannounced. The manager must discover the deaths
// via heartbeat timeouts, resume from the newest checkpoint that is still
// complete, and the whole campaign must replay bit-identically.
TEST(ChaosScriptedTest, MidFlushShardStormRecoversFromLastCompleteCheckpoint) {
  ChaosCampaignSpec spec = DefaultChaosCampaign(7);
  spec.plan = ChaosPlan::Scripted({
      {/*at_s=*/1200.0, ChaosActionKind::kTargetedShardKill, /*count=*/999,
       /*duration_s=*/1800.0, /*magnitude=*/0.0},
  });
  const ChaosReport report = RunChaosCampaign(spec);
  ExpectRecoveryInvariants(spec, report);
  // The storm actually landed on shard owners mid-flush...
  EXPECT_GT(report.vms_killed_by_chaos, 0);
  EXPECT_GT(report.stats.shards_lost, 0);
  // ...was discovered without an announcement...
  EXPECT_GT(report.stats.heartbeat_timeouts, 0);
  EXPECT_GT(report.stats.restarts, 0);
  // ...and training resumed past the restore point.
  EXPECT_GE(report.stats.last_restore_step, 0);
  EXPECT_GT(report.stats.minibatches_done, report.stats.last_restore_step);

  // Bit-replayable, storm and all.
  const ChaosReport replay = RunChaosCampaign(spec);
  EXPECT_EQ(report.fingerprint, replay.fingerprint);
  EXPECT_EQ(report.trace, replay.trace);
}

TEST(ChaosScriptedTest, HeartbeatLossTriggersTimeoutRecovery) {
  ChaosCampaignSpec spec = DefaultChaosCampaign(11);
  spec.plan = ChaosPlan::Scripted({
      {/*at_s=*/1500.0, ChaosActionKind::kHeartbeatLoss, /*count=*/2,
       /*duration_s=*/1200.0, /*magnitude=*/0.0},
  });
  const ChaosReport report = RunChaosCampaign(spec);
  ExpectRecoveryInvariants(spec, report);
  EXPECT_GT(report.stats.heartbeat_timeouts, 0);
  EXPECT_GT(report.stats.restarts, 0);
  // The muted VMs never died, so the session must keep committing after the
  // timeout-driven reconfiguration.
  EXPECT_GT(report.stats.minibatches_done, 0);
  bool saw_timeout_event = false;
  for (const std::string& kind : report.trace.event_kinds) {
    saw_timeout_event = saw_timeout_event || kind == "heartbeat-timeout";
  }
  EXPECT_TRUE(saw_timeout_event);
}

TEST(ChaosScriptedTest, PreemptionStormInsideCheckpointWindowIsSurvived) {
  ChaosCampaignSpec spec = DefaultChaosCampaign(13);
  spec.plan = ChaosPlan::Scripted({
      // Five announced evictions inside one minute — tighter than the
      // checkpoint cadence, so several mini-batches of progress are at risk.
      {/*at_s=*/1800.0, ChaosActionKind::kPreemptionStorm, /*count=*/5,
       /*duration_s=*/60.0, /*magnitude=*/0.0},
  });
  const ChaosReport report = RunChaosCampaign(spec);
  ExpectRecoveryInvariants(spec, report);
  EXPECT_GT(report.stats.preemptions_hit, 0);
  EXPECT_GT(report.stats.preemptions_survived, 0);
  EXPECT_GT(report.stats.minibatches_done, 0);
}

TEST(ChaosScriptedTest, MidMorphPreemptionRetriesWithinBudget) {
  ChaosCampaignSpec spec = DefaultChaosCampaign(19);
  spec.plan = ChaosPlan::Scripted({
      // A storm to force a morph, with mid-morph kills armed so the restore
      // window itself is attacked.
      {/*at_s=*/1500.0, ChaosActionKind::kMidMorphPreempt, /*count=*/2,
       /*duration_s=*/0.0, /*magnitude=*/0.0},
      {/*at_s=*/1510.0, ChaosActionKind::kPreemptionStorm, /*count=*/3,
       /*duration_s=*/30.0, /*magnitude=*/0.0},
  });
  const ChaosReport report = RunChaosCampaign(spec);
  ExpectRecoveryInvariants(spec, report);
  EXPECT_GT(report.stats.preemptions_hit, 0);
  // The session still ends in a consistent, progressing state.
  EXPECT_GT(report.stats.minibatches_done, 0);
}

TEST(ChaosScriptedTest, ShardCorruptionFallsBackToOlderCheckpoint) {
  ChaosCampaignSpec spec = DefaultChaosCampaign(23);
  spec.plan = ChaosPlan::Scripted({
      // Corrupt the newest usable checkpoint, then evict hard enough that the
      // manager must restore: it has to fall back past the damaged record.
      {/*at_s=*/2400.0, ChaosActionKind::kCorruptShard, /*count=*/2,
       /*duration_s=*/0.0, /*magnitude=*/0.0},
      {/*at_s=*/2460.0, ChaosActionKind::kPreemptionStorm, /*count=*/4,
       /*duration_s=*/30.0, /*magnitude=*/0.0},
  });
  const ChaosReport report = RunChaosCampaign(spec);
  ExpectRecoveryInvariants(spec, report);
  EXPECT_GT(report.shards_corrupted_by_chaos, 0);
  EXPECT_GT(report.stats.minibatches_done, 0);
}

TEST(ChaosScriptedTest, FailStutterBurstDetectedAndReplaced) {
  ChaosCampaignSpec spec = DefaultChaosCampaign(29);
  spec.plan = ChaosPlan::Scripted({
      {/*at_s=*/1800.0, ChaosActionKind::kFailStutterBurst, /*count=*/2,
       /*duration_s=*/1200.0, /*magnitude=*/0.3},
  });
  const ChaosReport report = RunChaosCampaign(spec);
  ExpectRecoveryInvariants(spec, report);
  EXPECT_GT(report.stats.stutters_detected, 0);
  EXPECT_GT(report.stats.minibatches_done, 0);
}

// Capacity collapse below what the normal memory model can place: the
// manager must fall back to the degraded (CPU-offload) configuration instead
// of stalling, then morph back out when capacity returns.
TEST(ChaosScriptedTest, CapacityCrashFallsBackToDegradedModeAndRecovers) {
  ChaosCampaignSpec spec = DefaultChaosCampaign(31);
  // A model that genuinely does not fit the crashed capacity without
  // offloading: 2.5B params across at most 2 surviving VMs (8 GPUs).
  spec.spec = Gpt2_2_5B();
  spec.options.total_batch = 2400;
  spec.horizon_s = 3.0 * 3600.0;
  spec.plan = ChaosPlan::Scripted({
      {/*at_s=*/3600.0, ChaosActionKind::kCapacityCrash, /*count=*/1,
       /*duration_s=*/2400.0, /*magnitude=*/0.10},
  });
  const ChaosReport report = RunChaosCampaign(spec);
  ExpectRecoveryInvariants(spec, report);
  EXPECT_GE(report.stats.degraded_intervals, 1);
  bool saw_degraded = false;
  bool saw_recover_after = false;
  for (const std::string& kind : report.trace.event_kinds) {
    if (kind == "degraded") {
      saw_degraded = true;
    } else if (kind == "recover" && saw_degraded) {
      saw_recover_after = true;
    }
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_TRUE(saw_recover_after);
  EXPECT_GT(report.stats.minibatches_done, 0);
}

}  // namespace
}  // namespace varuna
