// Numeric checkpoint-resume bit-identity (§4.5 meets varuna-verify): a
// training session snapshotted through the CheckpointStore and restored into
// a fresh trainer must continue on the *exact* trajectory of an unpreempted
// run — identical per-step losses (as doubles, bit for bit) and identical
// final parameters. The negative tests destroy shards (lost mid-flush,
// corrupted in cloud storage) and pin the fallback: resume restarts from the
// newest *complete* earlier checkpoint, never from a record with holes.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/manager/checkpoint.h"
#include "src/nn/optimizer.h"
#include "src/nn/synthetic_task.h"
#include "src/sim/engine.h"
#include "src/train/trainers.h"

namespace varuna {
namespace {

constexpr int kVocab = 12;
constexpr int kWidth = 16;
constexpr int kBlocks = 6;
constexpr uint64_t kModelSeed = 88;
constexpr uint64_t kDataSeed = 5000;
constexpr int kBatchRows = 16;
constexpr int kMicrobatch = 4;
constexpr int kTotalSteps = 20;
constexpr double kParams = 2.5e9;  // Checkpoint sizing only; not the nn model.

std::unique_ptr<Sequential> FreshModel() {
  Rng rng(kModelSeed);
  return BuildBlockModel(kVocab, kWidth, kBlocks, &rng);
}

// A resumable training session: the batch for global step t is regenerated
// from a per-step seed, exactly as a data loader seeks to a sample offset
// after restore.
struct Session {
  ReferenceTrainer trainer;
  AdamOptimizer opt;
  MarkovTask task;

  Session()
      : trainer(FreshModel()),
        opt(trainer.Parameters(), trainer.Gradients(), 3e-3f),
        task(kVocab, 9) {}

  double Step(int t) {
    Rng rng(kDataSeed + static_cast<uint64_t>(t));
    const Batch batch = task.Sample(kBatchRows, &rng);
    opt.ZeroGradients();
    const double loss = trainer.TrainStep(batch, kMicrobatch);
    opt.Step();
    return loss;
  }
};

std::vector<double> RunClean() {
  Session session;
  std::vector<double> losses;
  for (int t = 0; t < kTotalSteps; ++t) {
    losses.push_back(session.Step(t));
  }
  return losses;
}

void ExpectBitIdenticalTail(Session* clean, Session* resumed,
                            const std::vector<double>& clean_losses, int64_t restore_step) {
  std::vector<double> resumed_losses;
  for (int t = static_cast<int>(restore_step); t < kTotalSteps; ++t) {
    resumed_losses.push_back(resumed->Step(t));
  }
  for (size_t i = 0; i < resumed_losses.size(); ++i) {
    // Exact double equality: the trajectory is the same computation.
    EXPECT_EQ(resumed_losses[i],
              clean_losses[static_cast<size_t>(restore_step) + i])
        << "step " << restore_step + static_cast<int64_t>(i);
  }
  const auto clean_params = clean->trainer.Parameters();
  const auto restored = resumed->trainer.Parameters();
  ASSERT_EQ(clean_params.size(), restored.size());
  for (size_t i = 0; i < clean_params.size(); ++i) {
    EXPECT_TRUE(Identical(*clean_params[i], *restored[i])) << "param " << i;
  }
}

// Trains a victim session, snapshotting through `store` every 5 steps with
// the given owners and (optionally) letting each flush complete, up to
// `crash_step`. Payloads are keyed by checkpoint step.
void RunVictim(SimEngine* engine, CheckpointStore* store,
               std::map<int64_t, ParameterCheckpoint>* payloads, int crash_step,
               bool flush_last) {
  Session victim;
  for (int t = 0; t < crash_step; ++t) {
    if (t > 0 && t % 5 == 0) {
      store->BeginCheckpoint(t, kParams, /*data_parallel=*/2, {2 * (t / 5), 2 * (t / 5) + 1});
      (*payloads)[t] = SnapshotParameters(victim.trainer.Parameters(), victim.opt);
      const bool last = t + 5 > crash_step - 1;
      if (!last || flush_last) {
        engine->RunUntil(engine->now() + 3600.0);  // Cloud flush completes.
      }
    }
    victim.Step(t);
  }
}

TEST(CheckpointResumeTest, ResumeFromLatestUsableIsBitIdenticalToCleanRun) {
  Session clean;
  std::vector<double> clean_losses;
  for (int t = 0; t < kTotalSteps; ++t) {
    clean_losses.push_back(clean.Step(t));
  }

  SimEngine engine;
  CheckpointStore store(&engine, CheckpointOptions());
  std::map<int64_t, ParameterCheckpoint> payloads;
  RunVictim(&engine, &store, &payloads, /*crash_step=*/13, /*flush_last=*/true);

  // Crash at step 13: steps 10..12 are gone; the newest usable checkpoint is
  // the one written before step 10.
  const int64_t restore = store.LatestUsable();
  ASSERT_EQ(restore, 10);
  Session resumed;
  RestoreParameters(payloads.at(restore), resumed.trainer.Parameters(), &resumed.opt);
  ExpectBitIdenticalTail(&clean, &resumed, clean_losses, restore);
}

TEST(CheckpointResumeTest, ShardLostMidFlushFallsBackToPriorCompleteStep) {
  const std::vector<double> clean_losses = RunClean();
  Session clean;
  for (int t = 0; t < kTotalSteps; ++t) {
    clean.Step(t);
  }

  SimEngine engine;
  CheckpointStore store(&engine, CheckpointOptions());
  std::map<int64_t, ParameterCheckpoint> payloads;
  // The step-10 checkpoint's flush never completes: its owner VM dies with
  // the only local copy.
  RunVictim(&engine, &store, &payloads, /*crash_step=*/13, /*flush_last=*/false);
  ASSERT_EQ(store.LatestUsable(), 10);  // Alive owners => still readable...
  store.OnVmLost(4);                    // ...until the owner of shard 0 dies.
  EXPECT_EQ(store.LatestComplete(), 5);
  EXPECT_EQ(store.LatestUsable(), 5);
  EXPECT_GT(store.shards_lost(), 0);
  store.CheckInvariants();

  const int64_t restore = store.LatestUsable();
  Session resumed;
  RestoreParameters(payloads.at(restore), resumed.trainer.Parameters(), &resumed.opt);
  ExpectBitIdenticalTail(&clean, &resumed, clean_losses, restore);
}

TEST(CheckpointResumeTest, CorruptShardFallsBackToOlderCheckpoint) {
  const std::vector<double> clean_losses = RunClean();
  Session clean;
  for (int t = 0; t < kTotalSteps; ++t) {
    clean.Step(t);
  }

  SimEngine engine;
  CheckpointStore store(&engine, CheckpointOptions());
  std::map<int64_t, ParameterCheckpoint> payloads;
  RunVictim(&engine, &store, &payloads, /*crash_step=*/13, /*flush_last=*/true);
  ASSERT_EQ(store.LatestUsable(), 10);
  EXPECT_TRUE(store.CorruptShard(10, 0));
  EXPECT_FALSE(store.CorruptShard(10, 0));  // Already unusable.
  EXPECT_EQ(store.LatestUsable(), 5);
  store.CheckInvariants();

  const int64_t restore = store.LatestUsable();
  Session resumed;
  RestoreParameters(payloads.at(restore), resumed.trainer.Parameters(), &resumed.opt);
  ExpectBitIdenticalTail(&clean, &resumed, clean_losses, restore);
}

TEST(CheckpointResumeTest, AllCheckpointsDestroyedMeansRestartFromScratch) {
  const std::vector<double> clean_losses = RunClean();

  SimEngine engine;
  CheckpointStore store(&engine, CheckpointOptions());
  std::map<int64_t, ParameterCheckpoint> payloads;
  RunVictim(&engine, &store, &payloads, /*crash_step=*/13, /*flush_last=*/true);
  EXPECT_TRUE(store.CorruptShard(10, 0));
  EXPECT_TRUE(store.CorruptShard(5, 1));
  EXPECT_EQ(store.LatestUsable(), -1);
  store.CheckInvariants();

  // Nothing to restore: a fresh session must retrace the clean run exactly.
  Session restarted;
  for (int t = 0; t < kTotalSteps; ++t) {
    EXPECT_EQ(restarted.Step(t), clean_losses[static_cast<size_t>(t)]) << "step " << t;
  }
}

}  // namespace
}  // namespace varuna
