// Numeric checkpoint-resume bit-identity (§4.5 meets varuna-verify): a
// training session snapshotted through the CheckpointStore and restored into
// a fresh trainer must continue on the *exact* trajectory of an unpreempted
// run — identical per-step losses (as doubles, bit for bit) and identical
// final parameters. The negative tests destroy shards (lost mid-flush,
// corrupted in cloud storage) and pin the fallback: resume restarts from the
// newest *complete* earlier checkpoint, never from a record with holes.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/vm.h"
#include "src/common/rng.h"
#include "src/manager/checkpoint.h"
#include "src/nn/optimizer.h"
#include "src/nn/synthetic_task.h"
#include "src/sim/engine.h"
#include "src/train/trainers.h"

namespace varuna {
namespace {

constexpr int kVocab = 12;
constexpr int kWidth = 16;
constexpr int kBlocks = 6;
constexpr uint64_t kModelSeed = 88;
constexpr uint64_t kDataSeed = 5000;
constexpr int kBatchRows = 16;
constexpr int kMicrobatch = 4;
constexpr int kTotalSteps = 20;
constexpr double kParams = 2.5e9;  // Checkpoint sizing only; not the nn model.

std::unique_ptr<Sequential> FreshModel() {
  Rng rng(kModelSeed);
  return BuildBlockModel(kVocab, kWidth, kBlocks, &rng);
}

// A resumable training session: the batch for global step t is regenerated
// from a per-step seed, exactly as a data loader seeks to a sample offset
// after restore.
struct Session {
  ReferenceTrainer trainer;
  AdamOptimizer opt;
  MarkovTask task;

  Session()
      : trainer(FreshModel()),
        opt(trainer.Parameters(), trainer.Gradients(), 3e-3f),
        task(kVocab, 9) {}

  double Step(int t) {
    Rng rng(kDataSeed + static_cast<uint64_t>(t));
    const Batch batch = task.Sample(kBatchRows, &rng);
    opt.ZeroGradients();
    const double loss = trainer.TrainStep(batch, kMicrobatch);
    opt.Step();
    return loss;
  }
};

std::vector<double> RunClean() {
  Session session;
  std::vector<double> losses;
  for (int t = 0; t < kTotalSteps; ++t) {
    losses.push_back(session.Step(t));
  }
  return losses;
}

void ExpectBitIdenticalTail(Session* clean, Session* resumed,
                            const std::vector<double>& clean_losses, int64_t restore_step) {
  std::vector<double> resumed_losses;
  for (int t = static_cast<int>(restore_step); t < kTotalSteps; ++t) {
    resumed_losses.push_back(resumed->Step(t));
  }
  for (size_t i = 0; i < resumed_losses.size(); ++i) {
    // Exact double equality: the trajectory is the same computation.
    EXPECT_EQ(resumed_losses[i],
              clean_losses[static_cast<size_t>(restore_step) + i])
        << "step " << restore_step + static_cast<int64_t>(i);
  }
  const auto clean_params = clean->trainer.Parameters();
  const auto restored = resumed->trainer.Parameters();
  ASSERT_EQ(clean_params.size(), restored.size());
  for (size_t i = 0; i < clean_params.size(); ++i) {
    EXPECT_TRUE(Identical(*clean_params[i], *restored[i])) << "param " << i;
  }
}

// Trains a victim session, snapshotting through `store` every 5 steps with
// the given owners and (optionally) letting each flush complete, up to
// `crash_step`. Payloads are keyed by checkpoint step.
void RunVictim(SimEngine* engine, CheckpointStore* store,
               std::map<int64_t, ParameterCheckpoint>* payloads, int crash_step,
               bool flush_last) {
  Session victim;
  for (int t = 0; t < crash_step; ++t) {
    if (t > 0 && t % 5 == 0) {
      store->BeginCheckpoint(t, kParams, /*data_parallel=*/2, {2 * (t / 5), 2 * (t / 5) + 1});
      (*payloads)[t] = SnapshotParameters(victim.trainer.Parameters(), victim.opt);
      const bool last = t + 5 > crash_step - 1;
      if (!last || flush_last) {
        engine->RunUntil(engine->now() + 3600.0);  // Cloud flush completes.
      }
    }
    victim.Step(t);
  }
}

TEST(CheckpointResumeTest, ResumeFromLatestUsableIsBitIdenticalToCleanRun) {
  Session clean;
  std::vector<double> clean_losses;
  for (int t = 0; t < kTotalSteps; ++t) {
    clean_losses.push_back(clean.Step(t));
  }

  SimEngine engine;
  CheckpointStore store(&engine, CheckpointOptions());
  std::map<int64_t, ParameterCheckpoint> payloads;
  RunVictim(&engine, &store, &payloads, /*crash_step=*/13, /*flush_last=*/true);

  // Crash at step 13: steps 10..12 are gone; the newest usable checkpoint is
  // the one written before step 10.
  const int64_t restore = store.LatestUsable();
  ASSERT_EQ(restore, 10);
  Session resumed;
  RestoreParameters(payloads.at(restore), resumed.trainer.Parameters(), &resumed.opt);
  ExpectBitIdenticalTail(&clean, &resumed, clean_losses, restore);
}

TEST(CheckpointResumeTest, ShardLostMidFlushFallsBackToPriorCompleteStep) {
  const std::vector<double> clean_losses = RunClean();
  Session clean;
  for (int t = 0; t < kTotalSteps; ++t) {
    clean.Step(t);
  }

  SimEngine engine;
  CheckpointStore store(&engine, CheckpointOptions());
  std::map<int64_t, ParameterCheckpoint> payloads;
  // The step-10 checkpoint's flush never completes: its owner VM dies with
  // the only local copy.
  RunVictim(&engine, &store, &payloads, /*crash_step=*/13, /*flush_last=*/false);
  ASSERT_EQ(store.LatestUsable(), 10);  // Alive owners => still readable...
  store.OnVmLost(4);                    // ...until the owner of shard 0 dies.
  EXPECT_EQ(store.LatestComplete(), 5);
  EXPECT_EQ(store.LatestUsable(), 5);
  EXPECT_GT(store.shards_lost(), 0);
  store.CheckInvariants();

  const int64_t restore = store.LatestUsable();
  Session resumed;
  RestoreParameters(payloads.at(restore), resumed.trainer.Parameters(), &resumed.opt);
  ExpectBitIdenticalTail(&clean, &resumed, clean_losses, restore);
}

TEST(CheckpointResumeTest, CorruptShardFallsBackToOlderCheckpoint) {
  const std::vector<double> clean_losses = RunClean();
  Session clean;
  for (int t = 0; t < kTotalSteps; ++t) {
    clean.Step(t);
  }

  SimEngine engine;
  CheckpointStore store(&engine, CheckpointOptions());
  std::map<int64_t, ParameterCheckpoint> payloads;
  RunVictim(&engine, &store, &payloads, /*crash_step=*/13, /*flush_last=*/true);
  ASSERT_EQ(store.LatestUsable(), 10);
  EXPECT_TRUE(store.CorruptShard(10, 0));
  EXPECT_FALSE(store.CorruptShard(10, 0));  // Already unusable.
  EXPECT_EQ(store.LatestUsable(), 5);
  store.CheckInvariants();

  const int64_t restore = store.LatestUsable();
  Session resumed;
  RestoreParameters(payloads.at(restore), resumed.trainer.Parameters(), &resumed.opt);
  ExpectBitIdenticalTail(&clean, &resumed, clean_losses, restore);
}

TEST(CheckpointResumeTest, AllCheckpointsDestroyedMeansRestartFromScratch) {
  const std::vector<double> clean_losses = RunClean();

  SimEngine engine;
  CheckpointStore store(&engine, CheckpointOptions());
  std::map<int64_t, ParameterCheckpoint> payloads;
  RunVictim(&engine, &store, &payloads, /*crash_step=*/13, /*flush_last=*/true);
  EXPECT_TRUE(store.CorruptShard(10, 0));
  EXPECT_TRUE(store.CorruptShard(5, 1));
  EXPECT_EQ(store.LatestUsable(), -1);
  store.CheckInvariants();

  // Nothing to restore: a fresh session must retrace the clean run exactly.
  Session restarted;
  for (int t = 0; t < kTotalSteps; ++t) {
    EXPECT_EQ(restarted.Step(t), clean_losses[static_cast<size_t>(t)]) << "step " << t;
  }
}

// --- Fast recovery path: delta chains, locality tiers, live handoff. ---

CheckpointOptions FastRecoveryOptions(int full_every) {
  CheckpointOptions opts;
  opts.full_checkpoint_every = full_every;
  opts.delta_fraction = 0.25;
  opts.locality_aware_restore = true;
  return opts;
}

TEST(CheckpointResumeTest, DeltaChainCorruptionFallsBackBitIdentical) {
  const std::vector<double> clean_losses = RunClean();
  Session clean;
  for (int t = 0; t < kTotalSteps; ++t) {
    clean.Step(t);
  }

  SimEngine engine;
  CheckpointStore store(&engine, FastRecoveryOptions(/*full_every=*/2));
  std::map<int64_t, ParameterCheckpoint> payloads;
  Session victim;
  for (int t = 0; t < 18; ++t) {
    if (t > 0 && t % 5 == 0) {
      store.BeginCheckpoint(t, kParams, /*data_parallel=*/2, {2 * (t / 5), 2 * (t / 5) + 1});
      payloads[t] = SnapshotParameters(victim.trainer.Parameters(), victim.opt);
      engine.RunUntil(engine.now() + 3600.0);  // Cloud flush completes.
    }
    victim.Step(t);
  }
  // K=2 alternates: full at 5, delta chained on it at 10, full again at 15.
  ASSERT_NE(store.Record(10), nullptr);
  EXPECT_TRUE(store.Record(10)->is_delta);
  EXPECT_EQ(store.Record(10)->base_minibatch_id, 5);
  ASSERT_NE(store.Record(15), nullptr);
  EXPECT_FALSE(store.Record(15)->is_delta);
  ASSERT_EQ(store.LatestUsable(), 15);

  // Newest full corrupted: the delta chain ending at 10 is next, and resume
  // from it must retrace the clean run exactly.
  EXPECT_TRUE(store.CorruptShard(15, 0));
  EXPECT_EQ(store.LatestUsable(), 10);
  store.CheckInvariants();
  {
    Session resumed;
    RestoreParameters(payloads.at(10), resumed.trainer.Parameters(), &resumed.opt);
    ExpectBitIdenticalTail(&clean, &resumed, clean_losses, 10);
  }

  // Losing the BASE invalidates the whole chain: record 10 has no damaged
  // shard of its own but is unusable through its base, so nothing restorable
  // remains.
  EXPECT_TRUE(store.CorruptShard(5, 1));
  EXPECT_EQ(store.LatestUsable(), -1);
  store.CheckInvariants();
}

TEST(CheckpointResumeTest, LocalityAwareRestorePricesCheapestLiveSource) {
  SimEngine engine;
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc6V3(), 8);
  const CheckpointOptions opts = FastRecoveryOptions(/*full_every=*/1);
  CheckpointStore store(&engine, opts, &cluster);
  store.BeginCheckpoint(10, kParams, /*data_parallel=*/2, {0, 1});
  engine.RunUntil(engine.now() + 3600.0);  // Flush to cloud.

  const std::vector<VmId> owners = {0, 1};
  const std::vector<VmId> peers = {2, 3};

  // Owners inside the new placement: both shards read from local SSD, and a
  // fully-warm placement pays only the process-group rebuild.
  RestoreBreakdown ssd;
  const double ssd_total =
      store.RestoreSeconds(10, kParams, 2, owners, /*warm_vms=*/2, &ssd);
  EXPECT_EQ(ssd.shards_ssd, 2);
  EXPECT_EQ(ssd.shards_peer, 0);
  EXPECT_EQ(ssd.shards_cloud, 0);
  EXPECT_EQ(ssd.setup_s, opts.warm_restore_setup_s);
  EXPECT_GT(ssd.ssd_s, 0.0);
  EXPECT_EQ(ssd_total, ssd.Total());

  // Owners alive but outside the placement: peer pulls over the fabric, and
  // an all-cold placement pays the full setup.
  RestoreBreakdown peer;
  store.RestoreSeconds(10, kParams, 2, peers, /*warm_vms=*/0, &peer);
  EXPECT_EQ(peer.shards_peer, 2);
  EXPECT_EQ(peer.shards_ssd, 0);
  EXPECT_EQ(peer.setup_s, opts.restore_setup_s);

  // Owners dead (shards already safe in cloud): cloud reads, the slowest
  // tier; the record-aware price never exceeds the legacy flat price.
  cluster.Preempt(0);
  cluster.Preempt(1);
  RestoreBreakdown cloud;
  const double cloud_total = store.RestoreSeconds(10, kParams, 2, peers, 0, &cloud);
  EXPECT_EQ(cloud.shards_cloud, 2);
  EXPECT_GT(cloud.cloud_s, peer.peer_s);
  EXPECT_GT(cloud_total, ssd_total);
  EXPECT_LE(cloud_total, store.RestoreDuration(kParams, 2) + 1e-9);

  // A premigrated record restores free of data movement: the bytes already
  // travelled with the premigration trigger.
  store.BeginCheckpoint(20, kParams, 2, {2, 3}, /*premigrated=*/true);
  RestoreBreakdown premig;
  store.RestoreSeconds(20, kParams, 2, peers, /*warm_vms=*/2, &premig);
  EXPECT_EQ(premig.shards_premigrated, 2);
  EXPECT_EQ(premig.ssd_s + premig.peer_s + premig.cloud_s, 0.0);
  store.CheckInvariants();
}

TEST(CheckpointResumeTest, StallEstimateMatchesChargedStallForFullAndDelta) {
  SimEngine engine;
  CheckpointStore store(&engine, FastRecoveryOptions(/*full_every=*/4));
  // The estimate and the charged stall share one formula: bit-identical for
  // the full snapshot...
  const double full_estimate = store.CheckpointStallEstimate(kParams, 2);
  const double full_stall = store.BeginCheckpoint(5, kParams, 2, {0, 1});
  EXPECT_EQ(full_estimate, full_stall);
  engine.RunUntil(engine.now() + 3600.0);

  // ...and for the delta that follows it, which writes delta_fraction of the
  // bytes and therefore stalls for less.
  const double delta_estimate = store.CheckpointStallEstimate(kParams, 2);
  const double delta_stall = store.BeginCheckpoint(10, kParams, 2, {0, 1});
  EXPECT_EQ(delta_estimate, delta_stall);
  EXPECT_LT(delta_stall, full_stall);
  EXPECT_EQ(store.delta_checkpoints_written(), 1);
  store.CheckInvariants();
}

TEST(CheckpointResumeTest, GarbageCollectionPrunesFlushedOlderChains) {
  SimEngine engine;
  CheckpointStore store(&engine, CheckpointOptions());  // Legacy: all full.
  for (int i = 1; i <= 6; ++i) {
    store.BeginCheckpoint(5 * i, kParams, 2, {0, 1});
    engine.RunUntil(engine.now() + 3600.0);
  }
  // Fully-flushed records older than the fallback floor (the second-newest
  // complete full) are bookkeeping-inert and pruned; the floor itself and
  // everything newer survive, so one corruption-fallback level always
  // remains.
  EXPECT_EQ(store.LatestUsable(), 30);
  EXPECT_EQ(store.records_pruned(), 3);
  EXPECT_EQ(store.live_records(), 3);
  EXPECT_NE(store.Record(30), nullptr);
  EXPECT_NE(store.Record(20), nullptr);
  EXPECT_EQ(store.Record(5), nullptr);
  store.CheckInvariants();
}

TEST(CheckpointResumeTest, LiveHandoffResumesFromCurrentStateWithoutRollback) {
  const std::vector<double> clean_losses = RunClean();
  Session clean;
  for (int t = 0; t < kTotalSteps; ++t) {
    clean.Step(t);
  }

  // Voluntary morph at step 13: the outgoing placement streams its CURRENT
  // state to the incoming one. No rollback to the step-10 checkpoint — the
  // trajectory continues exactly where the outgoing placement stopped.
  Session victim;
  for (int t = 0; t < 13; ++t) {
    victim.Step(t);
  }
  const ParameterCheckpoint live =
      SnapshotParameters(victim.trainer.Parameters(), victim.opt);
  Session incoming;
  RestoreParameters(live, incoming.trainer.Parameters(), &incoming.opt);
  ExpectBitIdenticalTail(&clean, &incoming, clean_losses, 13);
}

}  // namespace
}  // namespace varuna
