#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/fail_stutter.h"
#include "src/cluster/placement.h"
#include "src/cluster/spot_market.h"
#include "src/cluster/vm.h"
#include "src/common/rng.h"
#include "src/sim/engine.h"

namespace varuna {
namespace {

TEST(GpuSpecTest, EfficiencyCurveMatchesPaperDatapoint) {
  // §4.1: "in BERT-large, m = 8 performs 26% better than m = 4" per example.
  // BERT-large block forward work per example ~= 24 s h^2 = 1.29e10 FLOPs.
  GpuSpec gpu;
  const double per_example = 1.29e10;
  const double t4 = gpu.ComputeTime(4 * per_example) / 4.0;
  const double t8 = gpu.ComputeTime(8 * per_example) / 8.0;
  EXPECT_NEAR(t4 / t8, 1.26, 0.12);
}

TEST(GpuSpecTest, ComputeTimeMonotone) {
  GpuSpec gpu;
  EXPECT_LT(gpu.ComputeTime(1e10), gpu.ComputeTime(2e10));
  EXPECT_DOUBLE_EQ(gpu.ComputeTime(0.0), 0.0);
}

TEST(GpuSpecTest, EfficiencySaturates) {
  GpuSpec gpu;
  EXPECT_LT(gpu.AchievedFlops(1e14), gpu.peak_flops * gpu.max_efficiency);
  EXPECT_GT(gpu.AchievedFlops(1e14), 0.95 * gpu.peak_flops * gpu.max_efficiency);
}

TEST(ClusterTest, AddAndPreemptVms) {
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc24V3(), 2);
  EXPECT_EQ(cluster.num_vms(), 2);
  EXPECT_EQ(cluster.NumActiveGpus(), 8);
  cluster.Preempt(0);
  EXPECT_EQ(cluster.NumActiveGpus(), 4);
  EXPECT_EQ(cluster.ActiveGpus(), (std::vector<GpuId>{4, 5, 6, 7}));
  EXPECT_FALSE(cluster.GpuActive(0));
  EXPECT_TRUE(cluster.GpuActive(4));
}

TEST(ClusterTest, SlowFactorPerVm) {
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc6V3(), 3);
  cluster.SetSlowFactor(1, 1.3);
  EXPECT_DOUBLE_EQ(cluster.SlowFactor(0), 1.0);
  EXPECT_DOUBLE_EQ(cluster.SlowFactor(1), 1.3);
}

TEST(PlacementTest, PipelineMajorNodePacking) {
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc24V3(), 4);  // 16 GPUs on 4 nodes.
  const auto placement = PlaceJob(cluster, 4, 4);
  ASSERT_TRUE(placement.ok());
  const Placement& p = placement.value();
  EXPECT_EQ(p.pipeline_depth, 4);
  EXPECT_EQ(p.data_parallel, 4);
  // Replica 0 occupies the 4 GPUs of node 0: consecutive stages co-located.
  EXPECT_EQ(p.gpus[0], (std::vector<GpuId>{0, 1, 2, 3}));
  // Stage ring crosses nodes.
  EXPECT_EQ(p.StageRing(2), (std::vector<GpuId>{2, 6, 10, 14}));
  EXPECT_EQ(p.AllGpus().size(), 16u);
}

TEST(PlacementTest, FailsWhenInsufficientGpus) {
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc6V3(), 5);
  const auto placement = PlaceJob(cluster, 3, 2);
  ASSERT_FALSE(placement.ok());
  EXPECT_NE(placement.error().find("only 5"), std::string::npos);
}

TEST(PlacementTest, ExcludesBlacklistedGpus) {
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc6V3(), 5);
  const auto placement = PlaceJob(cluster, 2, 2, {1});
  ASSERT_TRUE(placement.ok());
  for (const GpuId gpu : placement.value().AllGpus()) {
    EXPECT_NE(gpu, 1);
  }
}

TEST(PlacementTest, SkipsPreemptedVms) {
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc6V3(), 4);
  cluster.Preempt(1);
  const auto placement = PlaceJob(cluster, 3, 1);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement.value().gpus[0], (std::vector<GpuId>{0, 2, 3}));
}

TEST(SpotMarketTest, GrantsUpToDemandAndCapacity) {
  SimEngine engine;
  SpotMarket market(&engine, Rng(5), 60.0);
  SpotPoolDynamics dynamics;
  dynamics.mean_availability = 1.0;
  dynamics.volatility = 0.0;
  dynamics.preemption_hazard = 0.0;
  const int pool = market.AddPool(Nc6V3(), 10, dynamics);
  int grants = 0;
  market.set_grant_handler([&](SpotMarket::MarketVmId, const VmType&) { ++grants; });
  market.SetDemand(pool, 6);
  market.Start();
  engine.RunUntil(10 * 60.0);
  EXPECT_EQ(grants, 6);
  EXPECT_EQ(market.GrantedVms(pool), 6);
  EXPECT_EQ(market.GrantedGpus(pool), 6);
}

TEST(SpotMarketTest, PreemptsOnCapacityDrop) {
  SimEngine engine;
  Rng rng(7);
  SpotMarket market(&engine, rng, 60.0);
  SpotPoolDynamics dynamics;
  dynamics.mean_availability = 1.0;
  dynamics.volatility = 0.0;
  dynamics.preemption_hazard = 1.0 / 1800.0;  // Aggressive baseline hazard.
  const int pool = market.AddPool(Nc6V3(), 20, dynamics);
  int preempts = 0;
  market.set_preempt_handler([&](SpotMarket::MarketVmId) { ++preempts; });
  market.SetDemand(pool, 20);
  market.Start();
  engine.RunUntil(8 * 3600.0);
  EXPECT_GT(preempts, 10);  // ~8h at 30min mean lifetime across 20 VMs.
}

TEST(SpotMarketTest, OneGpuPoolMoreAvailableThanFourGpu) {
  // The Figure-3 effect: with the same total GPU budget, the 1-GPU pool
  // sustains more aggregate GPUs than the 4-GPU pool.
  SimEngine engine;
  SpotMarket market(&engine, Rng(11), 60.0);
  SpotPoolDynamics single;
  single.mean_availability = 0.85;
  SpotPoolDynamics quad;
  quad.mean_availability = 0.45;
  quad.volatility = 0.25;
  const int pool1 = market.AddPool(Nc6V3(), 320, single);
  const int pool4 = market.AddPool(Nc24V3(), 80, quad);
  market.SetDemand(pool1, 320);
  market.SetDemand(pool4, 80);
  market.Start();
  double gpus1 = 0.0;
  double gpus4 = 0.0;
  int ticks = 0;
  for (double t = 3600.0; t <= 16 * 3600.0; t += 3600.0) {
    engine.RunUntil(t);
    gpus1 += market.GrantedGpus(pool1);
    gpus4 += market.GrantedGpus(pool4);
    ++ticks;
  }
  EXPECT_GT(gpus1 / ticks, 1.3 * gpus4 / ticks);
}

TEST(SpotMarketTest, HysteresisAbsorbsSmallWiggles) {
  // With zero volatility and zero hazard, nothing should ever be evicted even
  // though capacity rounds up and down by a VM or two.
  SimEngine engine;
  SpotMarket market(&engine, Rng(3), 60.0);
  SpotPoolDynamics dynamics;
  dynamics.mean_availability = 0.9;
  dynamics.volatility = 0.02;  // Tiny wiggles only.
  dynamics.preemption_hazard = 0.0;
  dynamics.reclaim_slack_vms = 6;
  const int pool = market.AddPool(Nc6V3(), 100, dynamics);
  int preempts = 0;
  market.set_preempt_handler([&](SpotMarket::MarketVmId) { ++preempts; });
  market.SetDemand(pool, 100);
  market.Start();
  engine.RunUntil(8 * 3600.0);
  EXPECT_EQ(preempts, 0);
}

TEST(SpotMarketTest, BigCapacityDropEvictsBurst) {
  SimEngine engine;
  SpotMarket market(&engine, Rng(3), 60.0);
  SpotPoolDynamics dynamics;
  dynamics.mean_availability = 1.0;
  dynamics.volatility = 0.0;
  dynamics.preemption_hazard = 0.0;
  dynamics.reversion_rate = 1.0 / 600.0;  // Reverts within ~10 minutes.
  dynamics.reclaim_slack_vms = 4;
  dynamics.max_grants_per_tick = 64;
  const int pool = market.AddPool(Nc6V3(), 60, dynamics);
  int preempts = 0;
  market.set_preempt_handler([&](SpotMarket::MarketVmId) { ++preempts; });
  market.SetDemand(pool, 60);
  market.Start();
  engine.RunUntil(10 * 60.0);
  ASSERT_EQ(market.GrantedVms(pool), 60);
  // A datacenter load spike halves the obtainable capacity: the market must
  // evict a burst (well past the hysteresis slack) as availability reverts.
  market.SetMeanAvailability(pool, 0.5);
  engine.RunUntil(60 * 60.0);
  EXPECT_GT(preempts, 20);
  EXPECT_LE(market.GrantedVms(pool), 30 + 4);  // Capacity 30 + hysteresis slack.
}

TEST(FailStutterTest, InjectsAndRecovers) {
  SimEngine engine;
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc6V3(), 8);
  FailStutterOptions options;
  options.mean_onset_interval_s = 600.0;
  options.mean_duration_s = 1200.0;
  FailStutterInjector injector(&engine, &cluster, Rng(3), options);
  injector.Start();
  engine.RunUntil(1.0 * kHour);
  int slowed = 0;
  for (VmId vm = 0; vm < cluster.num_vms(); ++vm) {
    if (cluster.Vm(vm).slow_factor > 1.0) {
      ++slowed;
    }
  }
  EXPECT_GT(slowed, 0);
  // All episodes eventually end if injection stops (advance far without new
  // onsets is impossible here, so just sanity-check the factor bounds).
  for (VmId vm = 0; vm < cluster.num_vms(); ++vm) {
    EXPECT_LE(cluster.Vm(vm).slow_factor, options.max_slow_factor + 1e-9);
  }
}

// Regression: a VM preempted mid-episode must leave the injector's exclusion
// set immediately, and the episode's pending end event must become a no-op.
// Before the observer-based cleanup, dead VMs accumulated in the set forever
// and the stale EndEpisode fired against a reused/recycled id.
TEST(FailStutterTest, PreemptionMidEpisodeClearsExclusionSet) {
  SimEngine engine;
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc6V3(), 4);
  FailStutterOptions options;
  options.autonomous_onsets = false;  // Episodes only via Burst().
  FailStutterInjector injector(&engine, &cluster, Rng(5), options);
  injector.Start();

  ASSERT_EQ(injector.Burst(1, 1.3, /*duration_s=*/1200.0), 1);
  VmId victim = -1;
  for (VmId vm = 0; vm < cluster.num_vms(); ++vm) {
    if (injector.IsDegraded(vm)) {
      victim = vm;
    }
  }
  ASSERT_GE(victim, 0);
  EXPECT_EQ(injector.active_episodes(), 1);

  // Kill the victim mid-episode: the exclusion entry must clear at once.
  cluster.Preempt(victim);
  EXPECT_FALSE(injector.IsDegraded(victim));
  EXPECT_EQ(injector.active_episodes(), 0);
  EXPECT_EQ(injector.episodes_cleared_by_preemption(), 1);
  EXPECT_EQ(injector.episodes_ended(), 0);

  // The stale end-of-episode event fires against a cleared generation: no-op.
  engine.RunUntil(2400.0);
  EXPECT_EQ(injector.episodes_ended(), 0);
  EXPECT_EQ(injector.active_episodes(), 0);

  // The injector still works afterwards, picking a live, healthy VM.
  ASSERT_EQ(injector.Burst(1, 1.2, /*duration_s=*/60.0), 1);
  VmId second = -1;
  for (VmId vm = 0; vm < cluster.num_vms(); ++vm) {
    if (injector.IsDegraded(vm)) {
      second = vm;
    }
  }
  ASSERT_GE(second, 0);
  EXPECT_NE(second, victim);
  EXPECT_TRUE(cluster.IsActive(second));
  engine.RunUntil(engine.now() + 120.0);
  EXPECT_EQ(injector.episodes_ended(), 1);
  EXPECT_EQ(injector.active_episodes(), 0);
  EXPECT_DOUBLE_EQ(cluster.Vm(second).slow_factor, 1.0);
  engine.CheckInvariants();
}

}  // namespace
}  // namespace varuna
